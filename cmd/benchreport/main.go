// Command benchreport runs the canonical campaign and replay-engine
// benchmarks in-process and writes a machine-readable JSON report, so CI
// and before/after comparisons consume numbers instead of scraping `go
// test -bench` text. The workloads mirror the benchmarks in
// internal/core and internal/machine: the 32-layout 400.perlbench
// campaign at paper fidelity (sequential and batched) and the batched
// replay engine at steady state.
//
//	benchreport -out BENCH_campaign.json
//
// The report records per benchmark: iterations, ns/op, B/op, allocs/op
// and — for campaign-shaped workloads — layouts/s. Numbers are
// host-dependent; compare reports from the same machine only.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

// benchResult is one benchmark's measurement in the report.
type benchResult struct {
	Name          string  `json:"name"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_op"`
	BytesPerOp    int64   `json:"b_op"`
	AllocsPerOp   int64   `json:"allocs_op"`
	LayoutsPerSec float64 `json:"layouts_per_sec,omitempty"`
}

// report is the file schema. Host fields make a report self-describing:
// layouts/s is only comparable within one machine.
type report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Results     []benchResult `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_campaign.json", "report file path (- writes to stdout)")
	flag.Parse()

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
	}
	for _, bm := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"campaign/sequential", func(b *testing.B) { benchCampaign(b, 1) }},
		{"campaign/batched", func(b *testing.B) { benchCampaign(b, 0) }},
		{"campaign/delta", func(b *testing.B) { benchCampaignDelta(b, core.DeltaAuto) }},
		{"campaign/delta-off", func(b *testing.B) { benchCampaignDelta(b, core.DeltaOff) }},
		{"machine/batch-run/k=32", benchBatchRun},
		{"search/8x4", benchSearch},
	} {
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		res := benchResult{
			Name:          bm.name,
			Iterations:    r.N,
			NsPerOp:       float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:    r.AllocedBytesPerOp(),
			AllocsPerOp:   r.AllocsPerOp(),
			LayoutsPerSec: r.Extra["layouts/s"],
		}
		fmt.Fprintf(os.Stderr, "  %d iterations, %.0f ns/op, %.0f layouts/s, %d allocs/op\n",
			res.Iterations, res.NsPerOp, res.LayoutsPerSec, res.AllocsPerOp)
		rep.Results = append(rep.Results, res)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// benchCampaign is the 32-layout paper-fidelity campaign of
// internal/core's BenchmarkCampaignSequential / BenchmarkCampaignBatched:
// batch 1 pins the sequential path, 0 the automatic batched width.
func benchCampaign(b *testing.B, batch int) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	cfg := core.CampaignConfig{
		Program:   progen.MustGenerate(spec),
		InputSeed: 1,
		Budget:    200000,
		Layouts:   32,
		Fidelity:  pmc.FidelityPaper,
		BaseSeed:  42,
		BatchSize: batch,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.RunCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Obs) != cfg.Layouts {
			b.Fatalf("campaign returned %d observations", len(ds.Obs))
		}
	}
	b.ReportMetric(float64(cfg.Layouts)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
}

// benchCampaignDelta is the delta-replay regime workload of
// internal/core's BenchmarkCampaignDelta: a 32-layout 470.lbm campaign
// at a short budget, where the layout-sensitive cache events die out
// early and re-simulating only perturbed state beats walking the full
// trace per chunk. The delta-off companion runs the identical workload
// through the batched engine, so the report pair isolates the engine's
// contribution (DESIGN.md §15 has the regime analysis).
func benchCampaignDelta(b *testing.B, mode core.DeltaMode) {
	spec, ok := progen.ByName("470.lbm")
	if !ok {
		b.Fatal("missing spec")
	}
	cfg := core.CampaignConfig{
		Program:   progen.MustGenerate(spec),
		InputSeed: 1,
		Budget:    5000,
		Layouts:   32,
		Fidelity:  pmc.FidelityPaper,
		BaseSeed:  42,
		Delta:     mode,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.RunCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Obs) != cfg.Layouts {
			b.Fatalf("campaign returned %d observations", len(ds.Obs))
		}
	}
	b.ReportMetric(float64(cfg.Layouts)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
}

// benchSearch is the evolutionary layout search at paper fidelity: an
// 8-individual, 4-generation core.RunSearch over 400.perlbench. The
// throughput metric counts measured individuals (each is one layout
// build + one replay), so it is comparable to the campaign numbers;
// generations/s additionally captures the per-generation settle cost
// (breeding, hashing) that cmd/layoutopt pays.
func benchSearch(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	cfg := core.SearchConfig{
		Campaign: core.CampaignConfig{
			Program:   progen.MustGenerate(spec),
			InputSeed: 1,
			Budget:    200000,
			Layouts:   8,
			Fidelity:  pmc.FidelityPaper,
			BaseSeed:  42,
		},
		Population:  8,
		Generations: 4,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunSearch(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Generations) != cfg.Generations {
			b.Fatalf("search settled %d generations", len(res.Generations))
		}
	}
	individuals := float64(cfg.Population * cfg.Generations)
	b.ReportMetric(individuals*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
	b.ReportMetric(float64(cfg.Generations)*float64(b.N)/b.Elapsed().Seconds(), "generations/s")
}

// benchBatchRun is internal/machine's BenchmarkBatchRun/bump/k=32: the
// steady-state batched replay engine on the same 200k-instruction
// workload, 32 layouts per trace walk.
func benchBatchRun(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		b.Fatal(err)
	}
	const k = 32
	specs := make([]machine.RunSpec, k)
	for ki := range specs {
		exe, err := toolchain.BuildLayout(prog, uint64(ki+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			b.Fatal(err)
		}
		specs[ki] = machine.RunSpec{Exe: exe, Trace: tr, HeapSeed: 3}
	}
	batch, err := machine.NewBatch(machine.XeonE5440(), k)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := batch.Run(specs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := batch.Run(specs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
}
