// Command layoutview shows what layout perturbation actually does: for a
// benchmark and a set of seeds, it prints where the linker placed each
// procedure and how the placements differ — the raw material of program
// interferometry.
//
// Usage:
//
//	layoutview -bench 400.perlbench -seeds 3 -top 10
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"interferometry/internal/isa"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

func main() {
	bench := flag.String("bench", "400.perlbench", "benchmark name")
	seeds := flag.Int("seeds", 3, "number of layout seeds to compare")
	top := flag.Int("top", 12, "procedures to display")
	flag.Parse()

	spec, ok := progen.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prog := progen.MustGenerate(spec)

	exes := make([]*toolchain.Executable, *seeds)
	for i := range exes {
		exe, err := toolchain.BuildLayout(prog, uint64(i+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exes[i] = exe
	}

	fmt.Printf("%s: %d procedures, %d blocks, %d static branches, text %.1fKB\n",
		prog.Name, len(prog.Procs), len(prog.Blocks), prog.StaticBranchCount(),
		float64(exes[0].CodeBytes())/1024)

	// Show the first procedures in program order across layouts.
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "procedure")
	for i := range exes {
		fmt.Fprintf(w, "\tseed %d", i+1)
	}
	fmt.Fprintln(w)
	n := *top
	if n > len(prog.Procs) {
		n = len(prog.Procs)
	}
	for pid := 0; pid < n; pid++ {
		fmt.Fprintf(w, "%s", prog.Procs[pid].Name)
		for _, exe := range exes {
			fmt.Fprintf(w, "\t%#x", exe.ProcAddr[pid])
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	// Quantify the perturbation: how many procedures moved between
	// consecutive seeds, and how the link order changed.
	for i := 1; i < len(exes); i++ {
		moved := 0
		for pid := range prog.Procs {
			if exes[i].ProcAddr[pid] != exes[0].ProcAddr[pid] {
				moved++
			}
		}
		fmt.Printf("seed %d vs seed 1: %d/%d procedures at different addresses, link-order distance %d\n",
			i+1, moved, len(prog.Procs), orderDistance(exes[0].LinkOrder, exes[i].LinkOrder))
	}
}

// orderDistance counts pairwise order inversions between two permutations
// of the same procedures (a simple Kendall-tau style distance).
func orderDistance(a, b []isa.ProcID) int {
	posB := map[isa.ProcID]int{}
	for i, p := range b {
		posB[p] = i
	}
	seq := make([]int, len(a))
	for i, p := range a {
		seq[i] = posB[p]
	}
	inv := 0
	for i := 0; i < len(seq); i++ {
		for j := i + 1; j < len(seq); j++ {
			if seq[i] > seq[j] {
				inv++
			}
		}
	}
	return inv
}
