// Command calibrate runs a quick interferometry campaign over the whole
// benchmark suite and prints each benchmark's measured characteristics
// (CPI, MPKI, cache miss rates, CPI spread across layouts, regression r²
// and significance). It exists to tune the synthetic suite against the
// paper's Table 1 shapes and to sanity-check a machine configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
)

func main() {
	layouts := flag.Int("layouts", 30, "code reorderings per benchmark")
	budget := flag.Uint64("budget", 300000, "instructions per run")
	randomizeHeap := flag.Bool("heap", false, "use the randomizing allocator")
	only := flag.String("only", "", "run a single benchmark by name")
	sim := flag.Bool("sim", false, "use the simulation suite instead")
	paper := flag.Bool("paper", false, "use the median-of-five paper measurement protocol")
	footprint := flag.Bool("footprint", false, "print per-benchmark working-set footprints and exit")
	flag.Parse()

	suite := progen.Suite()
	if *sim {
		suite = progen.SimSuite()
	}
	if *footprint {
		printFootprints(suite, *budget, *only)
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tCPI\tMPKI\tsd(MPKI)\tL1I/KI\tL1D/KI\tL2/KI\tCPIspread%\tr2mpki\tr2l1i\tr2l2\tslope\ticept\tp\tsig")
	for _, spec := range suite {
		if *only != "" && spec.Name != *only {
			continue
		}
		prog := progen.MustGenerate(spec)
		mode := heap.ModeBump
		if *randomizeHeap {
			mode = heap.ModeRandomized
		}
		fid := pmc.FidelityFast
		if *paper {
			fid = pmc.FidelityPaper
		}
		ds, err := core.RunCampaign(core.CampaignConfig{
			Program:   prog,
			InputSeed: 1,
			Budget:    *budget,
			Layouts:   *layouts,
			HeapMode:  mode,
			Fidelity:  fid,
			BaseSeed:  42,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.Name, err)
			continue
		}
		cpis := ds.CPIs()
		sum, _ := stats.Summarize(cpis)
		meanMPKI := stats.Mean(ds.PKIs(pmc.EvBranchMispredicts))
		meanL1I := stats.Mean(ds.PKIs(pmc.EvL1IMisses))
		meanL1D := stats.Mean(ds.PKIs(pmc.EvL1DMisses))
		meanL2 := stats.Mean(ds.PKIs(pmc.EvL2Misses))
		model, err := ds.MPKIModel()
		r2, slope, icept, p, sig := 0.0, 0.0, 0.0, 1.0, "no"
		if err == nil {
			r2, slope, icept, p = model.Fit.R2, model.Fit.Slope, model.Fit.Intercept, model.Fit.PValue
			if model.Significant() {
				sig = "YES"
			}
		}
		blame := ds.BlameAnalysis()
		sdMPKI := stats.StdDev(ds.PKIs(pmc.EvBranchMispredicts))
		fmt.Fprintf(w, "%s\t%.3f\t%.2f\t%.3f\t%.2f\t%.2f\t%.2f\t%.2f\t%.3f\t%.3f\t%.3f\t%.4f\t%.3f\t%.3g\t%s\n",
			spec.Name, sum.Mean, meanMPKI, sdMPKI, meanL1I, meanL1D, meanL2,
			sum.PctSpreadRange, r2, blame.PerEvent[pmc.EvL1IMisses], blame.PerEvent[pmc.EvL2Misses],
			slope, icept, p, sig)
		w.Flush()
	}
}

// printFootprints reports each benchmark's hot code and data working set
// so specs can be positioned relative to the cache hierarchy (32KB L1s,
// 512KB L2).
func printFootprints(suite []progen.Spec, budget uint64, only string) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tstaticKB\thotCodeKB\tblocksRun\tdataKB\tobjects\tmem/KI")
	for _, spec := range suite {
		if only != "" && spec.Name != only {
			continue
		}
		prog := progen.MustGenerate(spec)
		tr, err := interp.Run(prog, 1, interp.StopRule{Budget: budget})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", spec.Name, err)
			continue
		}
		fp := tr.ComputeFootprint()
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%d\t%.1f\t%d\t%.1f\n",
			spec.Name,
			float64(prog.CodeBytes())/1024,
			float64(fp.HotCodeBytes)/1024,
			fp.BlocksExecuted,
			float64(fp.DataBytes())/1024,
			fp.ObjectsTouched,
			float64(tr.MemAccesses())/float64(tr.Instrs)*1000)
		w.Flush()
	}
}
