// Command predsim is the standalone Pin-style predictor comparison: it
// executes a benchmark once, replays the trace against one or more code
// layouts, and reports each candidate predictor's misprediction rate —
// the paper's §5.6/§7.1 tool as a CLI.
//
// Usage:
//
//	predsim -bench 429.mcf -layouts 5 -budget 500000
//	predsim -bench 400.perlbench -predictors gshare-4096x12,l-tage,perfect
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"interferometry/internal/interp"
	"interferometry/internal/pintool"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// factoryByName resolves a few human-friendly predictor names plus
// anything in the config space.
func factoryByName(name string) (branch.Factory, bool) {
	switch name {
	case "perfect":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.Perfect{} }}, true
	case "always-taken":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.AlwaysTaken{} }}, true
	case "never-taken":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.NeverTaken{} }}, true
	case "l-tage":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.NewLTAGEDefault() }}, true
	case "xeon":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.NewXeonE5440() }}, true
	case "perceptron":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.NewPerceptron(512, 40) }}, true
	case "gskew":
		return branch.Factory{Name: name, New: func() branch.Predictor { return branch.NewGskew(2048, 10) }}, true
	}
	for _, f := range branch.PaperPredictors() {
		if f.Name == name {
			return f, true
		}
	}
	for _, f := range branch.ConfigSpace(0) {
		if f.Name == name {
			return f, true
		}
	}
	return branch.Factory{}, false
}

func main() {
	bench := flag.String("bench", "400.perlbench", "benchmark name from the suite")
	layouts := flag.Int("layouts", 3, "number of code reorderings to average over")
	budget := flag.Uint64("budget", 300000, "instructions per run")
	preds := flag.String("predictors", "xeon,gas-2KB,gas-8KB,gas-16KB,l-tage,perfect",
		"comma-separated predictor names")
	warmup := flag.Bool("warmup", true, "train predictors with one extra pass before counting")
	flag.Parse()

	spec, ok := progen.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; available:\n", *bench)
		var names []string
		for _, s := range append(progen.Suite(), progen.SimSuite()...) {
			names = append(names, s.Name)
		}
		sort.Strings(names)
		fmt.Fprintln(os.Stderr, strings.Join(names, " "))
		os.Exit(2)
	}
	var factories []branch.Factory
	for _, name := range strings.Split(*preds, ",") {
		f, ok := factoryByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown predictor %q\n", name)
			os.Exit(2)
		}
		factories = append(factories, f)
	}

	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: *budget})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	mpkis := make([][]float64, len(factories))
	for li := 0; li < *layouts; li++ {
		exe, err := toolchain.BuildLayout(prog, uint64(li+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rs, err := pintool.Run(tr, exe, factories, pintool.Config{Warmup: *warmup})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for pi, r := range rs {
			mpkis[pi] = append(mpkis[pi], r.MPKI())
		}
	}

	fmt.Printf("%s: %d instructions, %d conditional branches (%0.1f/KI), %d layouts\n",
		spec.Name, tr.Instrs, tr.CondBranches,
		float64(tr.CondBranches)/float64(tr.Instrs)*1000, *layouts)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "predictor\tmean MPKI\tmin\tmax\tbudget bits")
	for pi, f := range factories {
		p := f.New()
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%d\n",
			f.Name, stats.Mean(mpkis[pi]), stats.Min(mpkis[pi]), stats.Max(mpkis[pi]), p.SizeBits())
	}
	w.Flush()
}
