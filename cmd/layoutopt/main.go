// Command layoutopt searches the layout space: a seeded evolutionary
// optimization over procedure orders and link orders (campaignd's
// "search" campaigns, core.RunSearch) that reports the best-found CPI
// against the paper's §6.3 random-sampling distribution — the median of
// n layouts drawn under a held-out seed, with a bootstrap confidence
// interval — so "the search beats sampling" is a statistical statement,
// not an anecdote.
//
// Usage:
//
//	layoutopt -bench 400.perlbench -population 12 -generations 6
//	layoutopt -bench 429.mcf -json report.json
//	layoutopt -server http://coordinator:8347 -bench 429.mcf
//
// With -server the search runs on a campaignd coordinator (and its
// workers) as a kind "search" campaign; the sampling baseline is still
// measured locally, under the held-out seed, so the comparison never
// shares a layout with the search's genome streams.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/progen"
	"interferometry/internal/results"
	"interferometry/internal/stats"
)

func main() {
	var (
		bench       = flag.String("bench", "400.perlbench", "benchmark name from the suite")
		scaleName   = flag.String("scale", "small", "experiment scale: small, medium or paper")
		population  = flag.Int("population", 0, "individuals per generation (0 = search default 16)")
		generations = flag.Int("generations", 0, "generations to run (0 = search default 8)")
		elite       = flag.Int("elite", 0, "best individuals surviving unchanged (0 = default 2)")
		tournament  = flag.Int("tournament", 0, "tournament size for parent selection (0 = default 3)")
		budget      = flag.Uint64("budget", 0, "instructions per run (0 = scale default)")
		seed        = flag.Uint64("seed", 0x1f2e3d4c, "base seed of the search's genome streams")
		workers     = flag.Int("workers", 0, "parallel measurement slots (0 = GOMAXPROCS, capped at the population)")
		baselineN   = flag.Int("baseline", 32, "random layouts in the held-out sampling baseline (0 disables)")
		bootstrapB  = flag.Int("bootstrap", 1000, "bootstrap resamples for the baseline median CI")
		jsonOut     = flag.String("json", "", "write the summary JSON to this file (\"-\" = stdout)")
		server      = flag.String("server", "", "run the search on this campaignd coordinator instead of locally")
	)
	flag.Parse()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small, medium or paper)\n", *scaleName)
		os.Exit(2)
	}
	ps, ok := progen.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	prog, err := progen.Generate(ps)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *budget == 0 {
		*budget = scale.Budget
	}
	campaign := core.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    *budget,
		Layouts:   scale.Layouts,
		Fidelity:  scale.Fidelity,
		BaseSeed:  *seed,
		Workers:   *workers,
	}

	var summary results.SearchSummary
	start := time.Now()
	if *server != "" {
		summary, err = runRemote(*server, *bench, *budget, *seed, *population, *generations, *elite, *tournament)
	} else {
		var res *core.SearchResult
		res, err = core.RunSearch(core.SearchConfig{
			Campaign:    campaign,
			Population:  *population,
			Generations: *generations,
			Elite:       *elite,
			TournamentK: *tournament,
		})
		if res != nil {
			summary = results.SummarizeSearch(res)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	// The baseline samples under a held-out seed: its layout stream
	// shares nothing with the search's genome streams, so the search
	// cannot win by having already measured the baseline's layouts.
	if *baselineN > 0 {
		held := campaign
		held.BaseSeed = core.HeldOutSeed(*seed)
		cpis, berr := core.SampleLayoutCPIs(held, *baselineN)
		if berr != nil {
			fmt.Fprintln(os.Stderr, berr)
			os.Exit(1)
		}
		ci, berr := stats.BootstrapQuantileCI(cpis, 0.5, *bootstrapB, held.BaseSeed, 0.95)
		if berr != nil {
			fmt.Fprintf(os.Stderr, "baseline CI: %v\n", berr)
			os.Exit(1)
		}
		median := stats.Median(cpis)
		summary.Baseline = &results.SamplingBaseline{
			Seed:        held.BaseSeed,
			N:           len(cpis),
			MedianCPI:   median,
			CILow:       ci.Low,
			CIHigh:      ci.High,
			Improvement: (median - summary.BestCPI) / median,
			Beats:       summary.BestCPI < median,
		}
	}

	report(summary, elapsed)
	if *jsonOut != "" {
		w := os.Stdout
		if *jsonOut != "-" {
			f, ferr := os.Create(*jsonOut)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, ferr)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := results.WriteJSON(w, summary); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if b := summary.Baseline; b != nil && !b.Beats {
		os.Exit(1) // scriptable verdict: the search failed to beat sampling
	}
}

// runRemote submits the search to a campaignd coordinator, waits for
// the trajectory to finish, and decodes the service's summary report.
func runRemote(base, bench string, budget, seed uint64, population, generations, elite, tournament int) (results.SearchSummary, error) {
	client := &campaignd.Client{Base: base}
	ctx := context.Background()
	spec := campaignd.JobSpec{
		Benchmark: bench,
		Budget:    budget,
		BaseSeed:  seed,
		Kind:      campaignd.KindSearch,
		Search: &campaignd.SearchSpec{
			Population:  population,
			Generations: generations,
			Elite:       elite,
			Tournament:  tournament,
		},
	}
	st, err := client.SubmitWait(ctx, spec)
	if err != nil {
		return results.SearchSummary{}, err
	}
	fmt.Printf("search %s running on %s (%d×%d)\n", st.ID, base, st.Layouts, st.Generations)
	if st, err = client.Wait(ctx, st.ID, 250*time.Millisecond); err != nil {
		return results.SearchSummary{}, err
	}
	if st.State != campaignd.StateDone {
		return results.SearchSummary{}, fmt.Errorf("search ended %s: %s", st.State, st.Error)
	}
	raw, err := client.SearchReport(ctx, st.ID)
	if err != nil {
		return results.SearchSummary{}, err
	}
	// Surface the fleet's trust state: quarantined workers mean the
	// coordinator rejected lies along the way (the trajectory is still
	// exact — rejected results never merge, requeues charge nothing).
	if health, herr := client.FleetHealth(ctx); herr == nil {
		for id, h := range health {
			if h.Quarantined {
				fmt.Printf("warning: worker %s quarantined by the coordinator (%d rejected, %d audit-failed)\n",
					id, h.Rejected, h.AuditFailed)
			}
		}
	}
	var summary results.SearchSummary
	if err := json.Unmarshal(raw, &summary); err != nil {
		return results.SearchSummary{}, fmt.Errorf("bad search report: %w", err)
	}
	return summary, nil
}

// report prints the trajectory and the verdict.
func report(s results.SearchSummary, elapsed time.Duration) {
	fmt.Printf("layoutopt %s: %d×%d search in %s (%.2f generations/s)\n",
		s.Benchmark, s.Population, s.Generations, elapsed.Round(time.Millisecond),
		float64(s.Generations)/elapsed.Seconds())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "gen\tbest CPI\tvalid\tfailed\tbest layout")
	for _, g := range s.Trajectory {
		fmt.Fprintf(tw, "%d\t%.4f\t%d\t%d\t%s\n", g.Gen, g.BestCPI, g.Valid, g.Failed, g.BestFingerprint)
	}
	tw.Flush()
	fmt.Printf("best: CPI %.4f at generation %d (layout %s, trajectory %s)\n",
		s.BestCPI, s.BestGen, s.BestFingerprint, s.TrajectoryHash[:12])
	if b := s.Baseline; b != nil {
		verdict := "BEATS"
		if !b.Beats {
			verdict = "does NOT beat"
		}
		fmt.Printf("baseline: median CPI %.4f over %d held-out random layouts (95%% CI [%.4f, %.4f], seed %#x)\n",
			b.MedianCPI, b.N, b.CILow, b.CIHigh, b.Seed)
		fmt.Printf("verdict: search %s the sampling median (improvement %.2f%%)\n", verdict, 100*b.Improvement)
	}
}
