// Command interferometry regenerates the paper's tables and figures from
// the Go reproduction. Each experiment prints the same rows or series the
// paper reports.
//
// Usage:
//
//	interferometry -exp fig2 -scale medium
//	interferometry -exp all -scale small
//	interferometry -list
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1 sig all.
// Scales: small (seconds per experiment), medium (the default), paper
// (the paper's own sample sizes; minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"interferometry/internal/experiments"
)

type runner struct {
	name string
	desc string
	run  func(ctx *experiments.Context) (fmt.Stringer, error)
}

// render adapts a Render() string method to fmt.Stringer.
type rendered struct{ s string }

func (r rendered) String() string { return r.s }

func wrap[T interface{ Render() string }](f func(*experiments.Context) (T, error)) func(*experiments.Context) (fmt.Stringer, error) {
	return func(ctx *experiments.Context) (fmt.Stringer, error) {
		res, err := f(ctx)
		if err != nil {
			return nil, err
		}
		return rendered{res.Render()}, nil
	}
}

func runners() []runner {
	return []runner{
		{"fig1", "violin plots of % CPI variation across code reorderings", wrap(experiments.Figure1)},
		{"fig2", "CPI vs MPKI regressions for perlbench and omnetpp", wrap(experiments.Figure2)},
		{"fig3", "cache-effect models for calculix under heap randomization", wrap(experiments.Figure3)},
		{"fig4", "regression extrapolation error over 145 predictor configs", wrap(experiments.Figure4)},
		{"fig5", "MPKI vs normalized CPI lines for the linearity extremes", func(ctx *experiments.Context) (fmt.Stringer, error) {
			res, err := experiments.Figure5(ctx, nil)
			if err != nil {
				return nil, err
			}
			return rendered{res.Render()}, nil
		}},
		{"fig6", "r² blame analysis per microarchitectural event", wrap(experiments.Figure6)},
		{"fig7", "MPKI of real and simulated predictors", wrap(experiments.Figure7)},
		{"fig8", "predicted CPI per predictor with prediction intervals", func(ctx *experiments.Context) (fmt.Stringer, error) {
			res, err := experiments.Figure8(ctx, nil)
			if err != nil {
				return nil, err
			}
			return rendered{res.Render()}, nil
		}},
		{"table1", "least-squares models per benchmark", wrap(experiments.Table1)},
		{"sig", "significance screen with sample escalation", wrap(experiments.Significance)},
		{"ablation", "design-choice ablations of the reproduction itself", wrap(experiments.Ablations)},
		{"ext-icache", "future-work extension: instruction-cache interferometry", wrap(experiments.ExtICache)},
		{"ext-dcache", "future-work extension: data-cache interferometry", wrap(experiments.ExtDCache)},
		{"ext-depth", "pipeline-depth sensitivity: the slope measures the flush cost", wrap(experiments.ExtDepth)},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1..fig8, table1, sig, all)")
	scaleName := flag.String("scale", "medium", "scale: small, medium or paper")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Printf("%-8s %s\n", r.name, r.desc)
		}
		return
	}
	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small, medium or paper)\n", *scaleName)
		os.Exit(2)
	}
	ctx := experiments.NewContext(scale)
	ctx.Workers = *workers

	ran := 0
	for _, r := range rs {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s scale, %s) ====\n%s\n", r.name, scale.Name, time.Since(start).Round(time.Millisecond), res)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
}
