// Command interferometry regenerates the paper's tables and figures from
// the Go reproduction. Each experiment prints the same rows or series the
// paper reports.
//
// Usage:
//
//	interferometry -exp fig2 -scale medium
//	interferometry -exp all -scale small
//	interferometry -list
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 table1 sig all.
// Scales: small (seconds per experiment), medium (the default), paper
// (the paper's own sample sizes; minutes).
//
// The -campaign mode runs one standalone, fault-tolerant campaign under
// the supervisor, checkpointing every completed observation:
//
//	interferometry -campaign 400.perlbench -layouts 100 -checkpoint run1/
//	interferometry -campaign 400.perlbench -layouts 100 -checkpoint run1/ -resume
//
// A killed campaign leaves run1/observations.jsonl behind; re-running
// with -resume measures only the missing layouts and produces a dataset
// bit-identical to an uninterrupted run.
//
// With -server the campaign runs on a campaignd service instead; the
// result CSV streams to stdout:
//
//	interferometry -campaign 429.mcf -layouts 100 -server http://localhost:8347 > run.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/obs"
	"interferometry/internal/obsflag"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
)

type runner struct {
	name string
	desc string
	run  func(ctx *experiments.Context) (fmt.Stringer, error)
}

// render adapts a Render() string method to fmt.Stringer.
type rendered struct{ s string }

func (r rendered) String() string { return r.s }

func wrap[T interface{ Render() string }](f func(*experiments.Context) (T, error)) func(*experiments.Context) (fmt.Stringer, error) {
	return func(ctx *experiments.Context) (fmt.Stringer, error) {
		res, err := f(ctx)
		if err != nil {
			return nil, err
		}
		return rendered{res.Render()}, nil
	}
}

func runners() []runner {
	return []runner{
		{"fig1", "violin plots of % CPI variation across code reorderings", wrap(experiments.Figure1)},
		{"fig2", "CPI vs MPKI regressions for perlbench and omnetpp", wrap(experiments.Figure2)},
		{"fig3", "cache-effect models for calculix under heap randomization", wrap(experiments.Figure3)},
		{"fig4", "regression extrapolation error over 145 predictor configs", wrap(experiments.Figure4)},
		{"fig5", "MPKI vs normalized CPI lines for the linearity extremes", func(ctx *experiments.Context) (fmt.Stringer, error) {
			res, err := experiments.Figure5(ctx, nil)
			if err != nil {
				return nil, err
			}
			return rendered{res.Render()}, nil
		}},
		{"fig6", "r² blame analysis per microarchitectural event", wrap(experiments.Figure6)},
		{"fig7", "MPKI of real and simulated predictors", wrap(experiments.Figure7)},
		{"fig8", "predicted CPI per predictor with prediction intervals", func(ctx *experiments.Context) (fmt.Stringer, error) {
			res, err := experiments.Figure8(ctx, nil)
			if err != nil {
				return nil, err
			}
			return rendered{res.Render()}, nil
		}},
		{"table1", "least-squares models per benchmark", wrap(experiments.Table1)},
		{"sig", "significance screen with sample escalation", wrap(experiments.Significance)},
		{"ablation", "design-choice ablations of the reproduction itself", wrap(experiments.Ablations)},
		{"ext-icache", "future-work extension: instruction-cache interferometry", wrap(experiments.ExtICache)},
		{"ext-dcache", "future-work extension: data-cache interferometry", wrap(experiments.ExtDCache)},
		{"ext-depth", "pipeline-depth sensitivity: the slope measures the flush cost", wrap(experiments.ExtDepth)},
	}
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (fig1..fig8, table1, sig, all)")
	scaleName := flag.String("scale", "medium", "scale: small, medium or paper")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiments and exit")
	campaign := flag.String("campaign", "", "run one supervised campaign for a benchmark (e.g. 400.perlbench) instead of an experiment")
	server := flag.String("server", "", "submit the campaign to a campaignd URL (e.g. http://localhost:8347) instead of running it in-process")
	layouts := flag.Int("layouts", 0, "campaign layouts (0 = the scale's default)")
	checkpointDir := flag.String("checkpoint", "", "campaign directory for JSONL observation checkpoints")
	resume := flag.Bool("resume", false, "reload the checkpoint and measure only missing layouts")
	batch := flag.Int("batch", 0, "batched-replay width: layouts sharing one trace walk per worker (0 = auto, 1 = sequential)")
	deltaMode := flag.String("delta", "auto", "delta replay: re-simulate only layout-perturbed state (auto = when the trace profile favors it, on, off)")
	retries := flag.Int("retries", 2, "max measurement attempts per layout")
	failureBudget := flag.Int("failure-budget", 0, "layouts allowed to fail before the campaign aborts")
	outlierMAD := flag.Float64("outlier-mad", 0, "re-measure observations further than this many MADs from the median CPI (0 = off)")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	rs := runners()
	if *list {
		for _, r := range rs {
			fmt.Printf("%-8s %s\n", r.name, r.desc)
		}
		return
	}
	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small, medium or paper)\n", *scaleName)
		os.Exit(2)
	}
	if *campaign != "" && *server != "" {
		if err := runRemoteCampaign(*server, *campaign, *layouts); err != nil {
			fmt.Fprintf(os.Stderr, "campaign %s: %v\n", *campaign, err)
			os.Exit(1)
		}
		return
	}
	dm, err := core.ParseDeltaMode(*deltaMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *campaign != "" {
		observer, err := obsFlags.Observer(*campaign)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := runSupervisedCampaign(campaignOptions{
			benchmark:     *campaign,
			scale:         scale,
			layouts:       *layouts,
			workers:       *workers,
			batch:         *batch,
			delta:         dm,
			checkpointDir: *checkpointDir,
			resume:        *resume,
			retries:       *retries,
			failureBudget: *failureBudget,
			outlierMAD:    *outlierMAD,
			observer:      observer,
		}); err != nil {
			obsFlags.Close(observer)
			fmt.Fprintf(os.Stderr, "campaign %s: %v\n", *campaign, err)
			os.Exit(1)
		}
		if err := obsFlags.Close(observer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	observer, err := obsFlags.Observer(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := experiments.NewContext(scale)
	ctx.Workers = *workers
	ctx.Obs = observer

	ran := 0
	for _, r := range rs {
		if *exp != "all" && *exp != r.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := r.run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s scale, %s) ====\n%s\n", r.name, scale.Name, time.Since(start).Round(time.Millisecond), res)
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	if err := obsFlags.Close(observer); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runRemoteCampaign is the campaignd client mode: submit the spec,
// honor backpressure, poll to completion and stream the result CSV to
// stdout. The summary goes to stderr so the CSV can be redirected clean.
func runRemoteCampaign(serverURL, benchmark string, layouts int) error {
	ctx := context.Background()
	client := &campaignd.Client{Base: serverURL}
	st, err := client.SubmitWait(ctx, campaignd.JobSpec{Benchmark: benchmark, Layouts: layouts})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "submitted campaign %s (%d layouts, %d restored from checkpoint)\n",
		st.ID, st.Layouts, st.Restored)
	start := time.Now()
	if st, err = client.Wait(ctx, st.ID, 200*time.Millisecond); err != nil {
		return err
	}
	if st.State != campaignd.StateDone {
		return fmt.Errorf("campaign ended %s: %s", st.State, st.Error)
	}
	fmt.Fprintf(os.Stderr, "campaign %s: %d layouts in %s (%d failed)\n",
		st.ID, st.Completed, time.Since(start).Round(time.Millisecond), st.Failed)
	// Stream the CSV page by page so a paper-scale result never sits
	// whole in this process; the bytes written equal the one-shot blob.
	return client.StreamResult(ctx, st.ID, 256, os.Stdout)
}

// campaignOptions collects the -campaign flags.
type campaignOptions struct {
	benchmark     string
	scale         experiments.Scale
	layouts       int
	workers       int
	batch         int
	delta         core.DeltaMode
	checkpointDir string
	resume        bool
	retries       int
	failureBudget int
	outlierMAD    float64
	observer      *obs.Observer
}

// runSupervisedCampaign measures one benchmark under the fault-tolerant
// supervisor and prints the dataset summary and its MPKI model.
func runSupervisedCampaign(opts campaignOptions) error {
	spec, ok := progen.ByName(opts.benchmark)
	if !ok {
		names := make([]string, 0, len(progen.Suite()))
		for _, s := range progen.Suite() {
			names = append(names, s.Name)
		}
		return fmt.Errorf("unknown benchmark (progen knows: %v)", names)
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		return err
	}
	layouts := opts.layouts
	if layouts <= 0 {
		layouts = opts.scale.Layouts
	}
	cfg := core.CampaignConfig{
		Program:       prog,
		InputSeed:     1,
		Budget:        opts.scale.Budget,
		Layouts:       layouts,
		Fidelity:      opts.scale.Fidelity,
		BaseSeed:      0x1f2e3d4c,
		Workers:       opts.workers,
		BatchSize:     opts.batch,
		Delta:         opts.delta,
		MaxAttempts:   opts.retries,
		FailureBudget: opts.failureBudget,
		OutlierMAD:    opts.outlierMAD,
		Checkpoint:    core.CheckpointConfig{Dir: opts.checkpointDir, Resume: opts.resume},
		Obs:           opts.observer,
	}
	start := time.Now()
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		if opts.checkpointDir != "" {
			fmt.Fprintf(os.Stderr, "completed observations remain in %s; re-run with -resume\n", opts.checkpointDir)
		}
		return err
	}
	retried := 0
	for _, o := range ds.Obs {
		if o.Status == core.StatusRetried {
			retried++
		}
	}
	fmt.Printf("campaign %s: %d layouts in %s (%d effective, %d retried, %d failed)\n",
		ds.Benchmark, len(ds.Obs), time.Since(start).Round(time.Millisecond),
		ds.EffectiveN(), retried, len(ds.Failures))
	for _, f := range ds.Failures {
		fmt.Printf("  layout %d (seed %#x) failed: %s\n", f.Index, f.LayoutSeed, f.Err)
	}
	if opts.checkpointDir != "" {
		fmt.Printf("checkpoint: %s\n", opts.checkpointDir)
	}
	model, err := ds.FitCPI(pmc.EvBranchMispredicts)
	if err != nil {
		return fmt.Errorf("model fit: %w", err)
	}
	fmt.Println(model)
	return nil
}
