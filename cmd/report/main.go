// Command report runs the full reproduction and writes a self-contained
// report directory: the rendered text of every experiment, JSON with the
// structured results, and per-benchmark CSVs of the raw observations so
// the paper's scatter plots can be redrawn in any plotting tool.
//
// Usage:
//
//	report -out report/ -scale medium
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"interferometry/internal/experiments"
	"interferometry/internal/obs"
	"interferometry/internal/obsflag"
	"interferometry/internal/results"
	"interferometry/internal/svgplot"
)

func main() {
	out := flag.String("out", "report", "output directory")
	scaleName := flag.String("scale", "medium", "scale: small, medium or paper")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	if err := os.MkdirAll(filepath.Join(*out, "datasets"), 0o755); err != nil {
		fatal(err)
	}
	observer, err := obsFlags.Observer("report")
	if err != nil {
		fatal(err)
	}
	// The report always collects metrics — report.md embeds them — even
	// when no -metrics-out dump was requested.
	if observer == nil {
		observer = &obs.Observer{}
	}
	if observer.Metrics == nil {
		observer.Metrics = obs.NewMetrics()
	}
	ctx := experiments.NewContext(scale)
	ctx.Workers = *workers
	ctx.Obs = observer

	var md strings.Builder
	fmt.Fprintf(&md, "# Program Interferometry — reproduction report\n\nscale: %s, generated %s\n\n",
		scale.Name, time.Now().Format(time.RFC3339))

	section := func(name string, render func() (string, any, error)) {
		start := time.Now()
		text, structured, err := render()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Fprintf(&md, "## %s\n\n```\n%s```\n\n", name, text)
		if structured != nil {
			f, err := os.Create(filepath.Join(*out, name+".json"))
			if err != nil {
				fatal(err)
			}
			if err := results.WriteJSON(f, structured); err != nil {
				fatal(err)
			}
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "%-8s done in %s\n", name, time.Since(start).Round(time.Millisecond))
	}

	var fig4 *experiments.Fig4Result
	var fig7 *experiments.Fig7Result

	section("fig1", func() (string, any, error) {
		r, err := experiments.Figure1(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("fig2", func() (string, any, error) {
		r, err := experiments.Figure2(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("fig3", func() (string, any, error) {
		r, err := experiments.Figure3(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("fig4", func() (string, any, error) {
		r, err := experiments.Figure4(ctx)
		if err != nil {
			return "", nil, err
		}
		fig4 = r
		return r.Render(), r, nil
	})
	section("fig5", func() (string, any, error) {
		r, err := experiments.Figure5(ctx, fig4)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("fig6", func() (string, any, error) {
		r, err := experiments.Figure6(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("fig7", func() (string, any, error) {
		r, err := experiments.Figure7(ctx)
		if err != nil {
			return "", nil, err
		}
		fig7 = r
		return r.Render(), r, nil
	})
	section("fig8", func() (string, any, error) {
		r, err := experiments.Figure8(ctx, fig7)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("table1", func() (string, any, error) {
		r, err := experiments.Table1(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("significance", func() (string, any, error) {
		r, err := experiments.Significance(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("ablation", func() (string, any, error) {
		r, err := experiments.Ablations(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("ext-icache", func() (string, any, error) {
		r, err := experiments.ExtICache(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("ext-dcache", func() (string, any, error) {
		r, err := experiments.ExtDCache(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})
	section("ext-depth", func() (string, any, error) {
		r, err := experiments.ExtDepth(ctx)
		if err != nil {
			return "", nil, err
		}
		return r.Render(), r, nil
	})

	// SVG renderings of the plot-shaped figures.
	if err := os.MkdirAll(filepath.Join(*out, "figs"), 0o755); err != nil {
		fatal(err)
	}
	if err := writeFigs(ctx, filepath.Join(*out, "figs")); err != nil {
		fatal(err)
	}

	// Raw observations behind the figures.
	for key, ds := range ctx.CachedDatasets() {
		name := strings.ReplaceAll(key, "/", "_") + ".csv"
		f, err := os.Create(filepath.Join(*out, "datasets", name))
		if err != nil {
			fatal(err)
		}
		if err := results.WriteDatasetCSV(f, ds); err != nil {
			fatal(err)
		}
		f.Close()
	}

	writeMetricsSection(&md, observer.Metrics)

	if err := os.WriteFile(filepath.Join(*out, "report.md"), []byte(md.String()), 0o644); err != nil {
		fatal(err)
	}
	if err := obsFlags.Close(observer); err != nil {
		fatal(err)
	}
	fmt.Printf("report written to %s (report.md, *.json, datasets/*.csv)\n", *out)
}

// writeMetricsSection embeds the run's own instrumentation — layout
// throughput, stage latencies, worker utilization — as the closing
// section of report.md.
func writeMetricsSection(md *strings.Builder, m *obs.Metrics) {
	samples := m.Summary()
	if len(samples) == 0 {
		return
	}
	fmt.Fprintf(md, "## metrics\n\n")
	fmt.Fprintf(md, "| metric | kind | value | detail |\n|---|---|---|---|\n")
	for _, s := range samples {
		fmt.Fprintf(md, "| %s | %s | %g | %s |\n", s.Name, s.Kind, s.Value, s.Detail)
	}
	fmt.Fprintf(md, "\n")
}

// writeFigs renders Figures 1-3 as SVG from the context's cached
// datasets (the drivers have already run, so these are cheap refits).
func writeFigs(ctx *experiments.Context, dir string) error {
	fig1, err := experiments.Figure1(ctx)
	if err != nil {
		return err
	}
	var v svgplot.Violins
	v.Title = "Figure 1: % CPI variation with code reordering"
	v.YLabel = "% deviation from mean CPI"
	for _, violin := range fig1.Violins {
		col := svgplot.ViolinColumn{Label: violin.Label}
		for _, p := range violin.Profile {
			col.Profile = append(col.Profile, [2]float64{p.Value, p.Density})
		}
		v.Cols = append(v.Cols, col)
	}
	if err := writeSVG(filepath.Join(dir, "fig1.svg"), func(w *os.File) error {
		return svgplot.WriteViolins(w, v)
	}); err != nil {
		return err
	}

	fig2, err := experiments.Figure2(ctx)
	if err != nil {
		return err
	}
	for _, s := range fig2.Series {
		s := s
		name := fmt.Sprintf("fig2-%s.svg", strings.ReplaceAll(s.Benchmark, ".", "_"))
		if err := writeSVG(filepath.Join(dir, name), func(w *os.File) error {
			return svgplot.WriteScatter(w, seriesToScatter(s, "Figure 2"))
		}); err != nil {
			return err
		}
	}

	fig3, err := experiments.Figure3(ctx)
	if err != nil {
		return err
	}
	for i, s := range []experiments.RegressionSeries{fig3.L1, fig3.L2} {
		s := s
		name := fmt.Sprintf("fig3-%c.svg", 'a'+i)
		if err := writeSVG(filepath.Join(dir, name), func(w *os.File) error {
			return svgplot.WriteScatter(w, seriesToScatter(s, "Figure 3"))
		}); err != nil {
			return err
		}
	}
	return nil
}

func seriesToScatter(s experiments.RegressionSeries, figure string) svgplot.Scatter {
	sc := svgplot.Scatter{
		Title:  fmt.Sprintf("%s: %s - CPI vs %s", figure, s.Benchmark, s.XLabel),
		XLabel: s.XLabel,
		YLabel: "CPI",
		X:      s.X,
		Y:      s.CPI,
	}
	for _, p := range s.Band {
		sc.Band = append(sc.Band, svgplot.BandPoint{
			X: p.X, Fit: p.Fit,
			CILow: p.Confidence.Low, CIHigh: p.Confidence.High,
			PILow: p.Prediction.Low, PIHigh: p.Prediction.High,
		})
	}
	return sc
}

func writeSVG(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
