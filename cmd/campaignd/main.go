// Command campaignd serves the resilient campaign job service: campaigns
// submitted as JSON are decomposed into per-layout tasks on a bounded
// priority queue and measured under worker leases, per-seam circuit
// breakers and seeded-backoff retries. Determinism makes the resilience
// free of caveats — whatever faults or restarts disturb the schedule, a
// finished campaign's dataset is byte-identical to a clean run.
//
// Serve mode:
//
//	campaignd -addr localhost:8347 -workers 4 -checkpoint-root /var/lib/campaignd
//
// Endpoints: POST /campaigns, GET /campaigns/{id}[/result|/measurements],
// /healthz, /readyz, /queuez, /metrics. SIGTERM drains gracefully: stop
// admission, finish leased tasks, flush checkpoints, exit.
//
// Scale-out: a server started with -workers 0 is a pure coordinator;
// any number of worker processes on other machines pull its leased
// layout tasks over HTTP and stream observations back. The merged
// dataset is byte-identical whatever the worker count or ordering:
//
//	campaignd -addr :8347 -workers 0 -checkpoint-root /var/lib/campaignd
//	campaignd -worker -coordinator http://coordinator:8347 -workers 4
//
// An artifact cache (-artifact-cache DIR) makes resubmitted, resumed
// and extended campaigns skip redundant layout builds; it helps both
// serve and worker modes.
//
// Chaos soak mode proves the byte-identity claim against the live
// service under injected error bursts, panics and latency spikes
// (-chaos-shard-workers N runs the rounds in sharded mode):
//
//	campaignd -chaos -chaos-benchmark 429.mcf -chaos-rounds 3
//
// -chaos-search soaks an evolutionary layout-search campaign the same
// way, comparing generation exports (and the summary report) against a
// clean single-process search; -chaos-coordinator-kill N additionally
// hard-kills and restarts the coordinator mid-trajectory.
//
// -chaos-byzantine K makes K of the sharded workers liars that corrupt
// every result they report (flipped counters, stale seeds, replays,
// bad or forged fingerprints). Attestation checks and spot-audit
// re-execution must reject every lie, quarantine the liars, and still
// finish the campaign byte-identical to the clean run:
//
//	campaignd -chaos -chaos-shard-workers 4 -chaos-byzantine 2 \
//	    -chaos-error 0 -chaos-panic 0 -chaos-spike 0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"interferometry/internal/artifactcache"
	"interferometry/internal/campaignd"
	"interferometry/internal/core"
	"interferometry/internal/experiments"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/obs"
	"interferometry/internal/obsflag"
	"interferometry/internal/toolchain"
)

func main() {
	var (
		addr           = flag.String("addr", "localhost:8347", "listen address")
		scaleName      = flag.String("scale", "small", "default campaign scale: small, medium or paper")
		workers        = flag.Int("workers", 2, "task worker pool size (serve: 0 = coordinator only; worker: concurrent tasks)")
		workerMode     = flag.Bool("worker", false, "run as a remote worker pulling tasks from -coordinator")
		coordinator    = flag.String("coordinator", "", "coordinator base URL for -worker mode, e.g. http://host:8347")
		workerBatch    = flag.Int("batch", 0, "worker mode: tasks leased per pull; same-campaign leases share one batched trace walk (<=1 leases singly)")
		workerDelta    = flag.String("delta", "auto", "worker mode: delta replay for batched leases (auto = when the trace profile favors it, on, off)")
		cacheDir       = flag.String("artifact-cache", "", "directory for the content-addressed layout artifact cache (empty = off)")
		cacheMB        = flag.Int64("artifact-cache-mb", 256, "artifact cache size bound in MiB")
		queueCap       = flag.Int("queue-capacity", 256, "max tasks in the system (queued + leased)")
		lease          = flag.Duration("lease", 30*time.Second, "task lease duration without a heartbeat")
		maxAttempts    = flag.Int("max-attempts", 3, "executions per layout before permanent failure")
		checkpointRoot = flag.String("checkpoint-root", "", "directory for per-campaign checkpoints (empty = off; defaults to <wal-dir>/checkpoints when -wal-dir is set)")
		walDir         = flag.String("wal-dir", "", "directory for the write-ahead log; submissions are replayed and resumed after a crash (empty = off)")
		workerID       = flag.String("worker-id", "", "worker mode: identity reported on leases for fleet health tracking (empty = <hostname>-<pid>)")

		auditRate     = flag.Float64("audit-rate", 0, "fraction of accepted remote results the coordinator re-executes and byte-compares (0 = off, 1 = all)")
		quarThreshold = flag.Int("quarantine-threshold", 0, "rejected results within a worker's health window before it is quarantined (0 = default 3)")

		tenantQueued    = flag.Int("tenant-max-queued", 0, "per-tenant cap on tasks in the system, queued + leased (0 = unlimited)")
		tenantCampaigns = flag.Int("tenant-max-campaigns", 0, "per-tenant cap on running campaigns (0 = unlimited)")
		fairQuantum     = flag.Int("fair-quantum", 0, "tasks a tenant pops per fair-scheduling turn (0 = 1)")

		backoffBase   = flag.Duration("backoff-base", 50*time.Millisecond, "first retry delay")
		backoffCap    = flag.Duration("backoff-cap", 2*time.Second, "max retry delay")
		backoffJitter = flag.Float64("backoff-jitter", 0.5, "seeded jitter fraction of each delay [0,1]")

		breakerTrip = flag.Int("breaker-trip", 5, "consecutive seam failures that open the breaker")
		breakerOpen = flag.Duration("breaker-open", 5*time.Second, "how long an open breaker rejects before probing")
		breakerSlow = flag.Duration("breaker-slow", 0, "seam calls at least this slow count as failures (0 = off)")

		chaos       = flag.Bool("chaos", false, "run the deterministic chaos soak instead of serving")
		chaosBench  = flag.String("chaos-benchmark", "429.mcf", "benchmark the soak measures")
		chaosLay    = flag.Int("chaos-layouts", 8, "layouts per soak campaign")
		chaosSearch = flag.Bool("chaos-search", false, "soak a layout-search campaign instead of a sampling sweep")
		chaosPop    = flag.Int("chaos-search-population", 5, "search soak: individuals per generation")
		chaosGens   = flag.Int("chaos-search-generations", 3, "search soak: generations per campaign")
		chaosRounds = flag.Int("chaos-rounds", 3, "faulted service rounds")
		chaosSeed   = flag.Uint64("chaos-seed", 0xc4a05, "root seed of the per-round fault schedules")
		chaosShard  = flag.Int("chaos-shard-workers", 0, "run soak rounds sharded across this many workers (0 = single process)")
		chaosKills  = flag.Int("chaos-coordinator-kill", 0, "hard-kill and restart a WAL-backed coordinator this many times per soak round (0 = off)")
		chaosBatch  = flag.Int("chaos-worker-batch", 0, "sharded soak workers lease this many tasks per pull (batched replay; <=1 leases singly)")
		chaosDelta  = flag.String("chaos-delta", "auto", "sharded soak workers' delta-replay mode (auto, on, off)")
		chaosByz    = flag.Int("chaos-byzantine", 0, "sharded soak rounds make this many workers liars: corrupted results must all be rejected or audit-disowned (0 = off)")
		chaosError  = flag.Float64("chaos-error", 0.2, "per-call injected error rate")
		chaosPanic  = flag.Float64("chaos-panic", 0.1, "per-call injected panic rate")
		chaosSpike  = flag.Float64("chaos-spike", 0.2, "per-call latency-spike rate")
		chaosP99    = flag.Duration("chaos-spike-p99", 10*time.Millisecond, "latency-spike p99")
	)
	obsFlags := obsflag.Register(flag.CommandLine)
	flag.Parse()

	scale, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small, medium or paper)\n", *scaleName)
		os.Exit(2)
	}

	if *chaos {
		dm, derr := core.ParseDeltaMode(*chaosDelta)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(2)
		}
		spec := campaignd.JobSpec{Benchmark: *chaosBench, Layouts: *chaosLay}
		if *chaosSearch {
			spec.Kind = campaignd.KindSearch
			spec.Search = &campaignd.SearchSpec{Population: *chaosPop, Generations: *chaosGens}
		}
		err := campaignd.Soak(campaignd.SoakConfig{
			Spec:             spec,
			Scale:            scale,
			Rounds:           *chaosRounds,
			Seed:             *chaosSeed,
			Workers:          *workers,
			ShardWorkers:     *chaosShard,
			WorkerBatch:      *chaosBatch,
			WorkerDelta:      dm,
			ByzantineWorkers: *chaosByz,
			AuditRate:        *auditRate,
			CoordinatorKills: *chaosKills,
			Rates: faultinject.Rates{
				Error: *chaosError, Panic: *chaosPanic,
				Spike: *chaosSpike, SpikeP99: *chaosP99,
			},
			Out: os.Stdout,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos soak: %v\n", err)
			os.Exit(1)
		}
		return
	}

	observer, err := obsFlags.Observer("campaignd")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if observer == nil {
		// The service always keeps a metrics registry: /metrics should
		// work without any -metrics-out flag.
		observer = &obs.Observer{Metrics: obs.NewMetrics()}
	} else if observer.Metrics == nil {
		observer.Metrics = obs.NewMetrics()
	}

	var cache toolchain.LayoutCache
	if *cacheDir != "" {
		c, cerr := artifactcache.Open(artifactcache.Config{
			Dir:      *cacheDir,
			MaxBytes: *cacheMB << 20,
			Obs:      observer,
		})
		if cerr != nil {
			fmt.Fprintln(os.Stderr, cerr)
			os.Exit(1)
		}
		cache = c
	}

	if *workerMode {
		if *coordinator == "" {
			fmt.Fprintln(os.Stderr, "-worker needs -coordinator URL")
			os.Exit(2)
		}
		dm, derr := core.ParseDeltaMode(*workerDelta)
		if derr != nil {
			fmt.Fprintln(os.Stderr, derr)
			os.Exit(2)
		}
		w := &campaignd.Worker{
			Coordinator: *coordinator,
			ID:          *workerID,
			Parallel:    *workers,
			Batch:       *workerBatch,
			Delta:       dm,
			Cache:       cache,
			Obs:         observer,
		}
		ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
		defer stop()
		fmt.Printf("campaignd worker pulling from %s (%d parallel)\n", *coordinator, *workers)
		if err := w.Run(ctx); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := obsFlags.Close(observer); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("campaignd worker stopped")
		return
	}

	if *walDir != "" && *checkpointRoot == "" {
		// Durability is only whole if results persist alongside intent:
		// a WAL without checkpoints would replay submissions but re-run
		// every layout from scratch.
		*checkpointRoot = filepath.Join(*walDir, "checkpoints")
	}
	srv, err := campaignd.New(campaignd.Config{
		Scale:                 scale,
		Workers:               *workers,
		NoLocalWorkers:        *workers == 0,
		LayoutCache:           cache,
		QueueCapacity:         *queueCap,
		Lease:                 *lease,
		MaxAttempts:           *maxAttempts,
		CheckpointRoot:        *checkpointRoot,
		WALDir:                *walDir,
		MaxQueuedPerTenant:    *tenantQueued,
		MaxCampaignsPerTenant: *tenantCampaigns,
		FairQuantum:           *fairQuantum,
		AuditRate:             *auditRate,
		QuarantineThreshold:   *quarThreshold,
		Backoff:               backoff.Policy{Base: *backoffBase, Cap: *backoffCap, Jitter: *backoffJitter},
		Breaker: jobqueue.BreakerConfig{
			TripAfter:     *breakerTrip,
			OpenFor:       *breakerOpen,
			SlowThreshold: *breakerSlow,
		},
		Obs: observer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.Start()
	stopSignals := srv.DrainOnSignal()
	defer stopSignals()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	httpSrv := campaignd.NewHTTPServer(srv.Handler())
	go func() {
		if serr := httpSrv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "campaignd: %v\n", serr)
			os.Exit(1)
		}
	}()
	fmt.Printf("campaignd listening on %s (scale %s, %d workers, queue %d)\n",
		ln.Addr(), scale.Name, *workers, *queueCap)

	// Serve until a signal starts the drain; exit once it finishes.
	<-srv.Done()
	httpSrv.Close()
	if err := obsFlags.Close(observer); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("campaignd drained cleanly")
}
