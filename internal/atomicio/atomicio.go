// Package atomicio is the shared crash-durability discipline behind
// every file the pipeline must not lose: campaign checkpoints, layout
// artifacts, and campaignd's write-ahead log. It fixes a subtle gap in
// the plain temp-write-then-rename idiom: rename makes the *content*
// switch atomic, but on many filesystems neither the new file's bytes
// nor the directory entry that names it are on stable storage until
// they are explicitly fsynced — a crash right after the rename can
// resurrect the old file or lose the entry entirely. WriteFile fsyncs
// the temp file before the rename and the parent directory after it,
// so a kill -9 at any instant leaves either the complete old file or
// the complete new one, both durably named.
//
// Appender is the complementary primitive for logs that grow a record
// at a time: every Append is written and fsynced before it returns, so
// an acknowledged record survives a crash, and a crash mid-Append
// leaves at most one truncated tail line for the reader to discard.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically and durably replaces path with data: write to a
// temp file in the same directory, fsync it, rename it over path, then
// fsync the directory so the rename itself is on stable storage. On any
// error the temp file is removed and path is untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	fail := func(stage string, err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: %s %s: %w", stage, path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return fail("write", err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail("chmod", err)
	}
	// The data must be stable before the rename publishes the name:
	// otherwise a crash can leave the new name pointing at missing bytes.
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making previously renamed or created
// entries durable. Filesystems that do not support fsync on directories
// report nothing to sync; that error is deliberately surfaced — callers
// relying on durability should know the platform cannot provide it.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync dir %s: %w", dir, err)
	}
	return nil
}

// Appender is an append-only file whose every Append is fsynced before
// returning. Not safe for concurrent use; callers serialize.
type Appender struct {
	f *os.File
}

// OpenAppender opens (creating if missing) path for durable appends.
// The parent directory entry is fsynced when the file is created, so a
// crash immediately after OpenAppender cannot lose the file itself.
func OpenAppender(path string, perm os.FileMode) (*Appender, error) {
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, perm)
	if err != nil {
		return nil, fmt.Errorf("atomicio: open append %s: %w", path, err)
	}
	if os.IsNotExist(statErr) {
		if err := SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &Appender{f: f}, nil
}

// Append writes data and fsyncs. When Append returns nil the record is
// on stable storage; when it errors the file may hold a partial tail,
// which the reader must treat as absent.
func (a *Appender) Append(data []byte) error {
	if _, err := a.f.Write(data); err != nil {
		return fmt.Errorf("atomicio: append %s: %w", a.f.Name(), err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", a.f.Name(), err)
	}
	return nil
}

// Close closes the underlying file. Appends after Close fail.
func (a *Appender) Close() error {
	return a.f.Close()
}
