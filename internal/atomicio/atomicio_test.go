package atomicio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.jsonl")
	if err := WriteFile(path, []byte("one\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("two\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("two\n")) {
		t.Fatalf("content = %q, want %q", got, "two\n")
	}
	// No temp residue: a crash-free write leaves exactly the target.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "state.jsonl" {
		t.Fatalf("directory holds %v, want only state.jsonl", entries)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

func TestAppenderAppendsDurably(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log.jsonl")
	a, err := OpenAppender(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("a\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.Append([]byte("b\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening appends after the existing tail.
	a2, err := OpenAppender(path, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := a2.Append([]byte("c\n")); err != nil {
		t.Fatal(err)
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := "a\nb\nc\n"; string(got) != want {
		t.Fatalf("log = %q, want %q", got, want)
	}
	if err := a2.Append([]byte("late\n")); err == nil {
		t.Fatal("append after Close succeeded")
	}
}

func TestSyncDir(t *testing.T) {
	if err := SyncDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("sync of a missing directory succeeded")
	}
}
