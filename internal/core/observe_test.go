package core_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/faultinject"
	"interferometry/internal/obs"
)

// observedCampaign runs a small campaign with full observability and
// returns the dataset, trace events and metrics registry.
func observedCampaign(t *testing.T, layouts int) (*core.Dataset, []obs.TraceEvent, *obs.Metrics) {
	t.Helper()
	var traceBuf, progBuf bytes.Buffer
	m := obs.NewMetrics()
	tr := obs.NewTracer(&traceBuf)
	cfg := smallCampaign(layouts)
	cfg.Obs = &obs.Observer{
		Metrics:  m,
		Tracer:   tr,
		Progress: obs.NewProgress(&progBuf, "test", 0, 0),
	}
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return ds, events, m
}

// TestObservedCampaignSpanTree pins the acceptance criterion: the trace
// covers every layout's compile→run→fit stages, each stage parented on
// its layout span, each layout parented on the campaign span.
func TestObservedCampaignSpanTree(t *testing.T) {
	const layouts = 8
	_, events, _ := observedCampaign(t, layouts)

	byID := map[uint64]obs.TraceEvent{}
	parentOf := map[uint64]uint64{}
	kids := map[uint64]map[string]int{} // parent -> stage name -> count
	var campID uint64
	for _, ev := range events {
		id, err := ev.SpanID()
		if err != nil {
			t.Fatalf("event %q has no span id: %v", ev.Name, err)
		}
		parent, err := ev.ParentID()
		if err != nil {
			t.Fatalf("event %q has no parent id: %v", ev.Name, err)
		}
		byID[id] = ev
		parentOf[id] = parent
		if kids[parent] == nil {
			kids[parent] = map[string]int{}
		}
		kids[parent][ev.Name]++
		if ev.Name == "campaign" {
			campID = id
		}
	}
	if campID == 0 {
		t.Fatal("no campaign span")
	}
	if got := kids[campID]["layout"]; got != layouts {
		t.Fatalf("campaign has %d layout spans, want %d", got, layouts)
	}
	layoutSpans := 0
	for id, ev := range byID {
		if ev.Name != "layout" {
			continue
		}
		layoutSpans++
		for _, stage := range []string{"compile", "run", "fit"} {
			if kids[id][stage] != 1 {
				t.Errorf("layout span %x has %d %q stages, want 1", id, kids[id][stage], stage)
			}
		}
		if parentOf[id] != campID {
			t.Errorf("layout span %x parented on %x, not the campaign", id, parentOf[id])
		}
	}
	if layoutSpans != layouts {
		t.Fatalf("got %d layout spans, want %d", layoutSpans, layouts)
	}
}

// TestObservedCampaignDeterministicSpanIDs pins the second half of the
// acceptance criterion: identical seeds produce identical span IDs, run
// to run, whatever the scheduling.
func TestObservedCampaignDeterministicSpanIDs(t *testing.T) {
	idSet := func() map[string]bool {
		_, events, _ := observedCampaign(t, 6)
		set := map[string]bool{}
		for _, ev := range events {
			set[ev.Name+"/"+ev.Args["span"]+"/"+ev.Args["parent"]] = true
		}
		return set
	}
	a, b := idSet(), idSet()
	if len(a) == 0 {
		t.Fatal("no spans recorded")
	}
	for k := range a {
		if !b[k] {
			t.Errorf("span %s present in first run only", k)
		}
	}
	for k := range b {
		if !a[k] {
			t.Errorf("span %s present in second run only", k)
		}
	}
}

func TestObservedCampaignMetrics(t *testing.T) {
	const layouts = 10
	ds, _, m := observedCampaign(t, layouts)
	if n := m.Counter("interferometry_layouts_done_total", "").Value(); n != layouts {
		t.Errorf("layouts_done = %d, want %d", n, layouts)
	}
	if n := m.Counter("interferometry_attempts_total", "").Value(); n != layouts {
		t.Errorf("attempts = %d, want %d (no retries in a clean campaign)", n, layouts)
	}
	if n := m.Counter("interferometry_builder_builds_total", "").Value(); n != layouts {
		t.Errorf("builder builds = %d, want %d", n, layouts)
	}
	if n := m.Counter("interferometry_pmc_measurements_total", "").Value(); n != layouts {
		t.Errorf("pmc measurements = %d, want %d", n, layouts)
	}
	if m.Histogram("interferometry_stage_run_seconds", "", obs.DurationBuckets).Count() != layouts {
		t.Error("run-stage histogram did not see every layout")
	}
	busy := m.Gauge("interferometry_worker_busy_seconds", "").Value()
	if busy <= 0 {
		t.Errorf("worker busy time %v, want > 0", busy)
	}
	if m.Histogram("interferometry_queue_wait_seconds", "", obs.DurationBuckets).Count() != layouts {
		t.Error("queue-wait histogram did not see every index")
	}
	if ds.EffectiveN() != layouts {
		t.Errorf("EffectiveN = %d", ds.EffectiveN())
	}
	// The JSON export round-trips.
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("metrics JSON export invalid")
	}
}

// TestObservedCampaignIdenticalToUnobserved pins the zero-interference
// contract: attaching an observer must not change a single measured bit.
func TestObservedCampaignIdenticalToUnobserved(t *testing.T) {
	plain, err := core.RunCampaign(smallCampaign(6))
	if err != nil {
		t.Fatal(err)
	}
	observed, _, _ := observedCampaign(t, 6)
	for i := range plain.Obs {
		if plain.Obs[i] != observed.Obs[i] {
			t.Fatalf("observation %d differs under observation:\n%+v\n%+v", i, plain.Obs[i], observed.Obs[i])
		}
	}
}

// TestObservedFaultyCampaign exercises the injected-fault counters and
// the retry/progress metrics together.
func TestObservedFaultyCampaign(t *testing.T) {
	var progBuf bytes.Buffer
	m := obs.NewMetrics()
	cfg := smallCampaign(12)
	cfg.MaxAttempts = 4
	cfg.FailureBudget = 12
	cfg.Faults = faultinject.New(99, faultinject.Config{
		Build:   faultinject.Rates{Error: 0.5, MaxFaults: 2},
		Measure: faultinject.Rates{Error: 0.3, MaxFaults: 2},
	})
	cfg.Obs = &obs.Observer{Metrics: m, Progress: obs.NewProgress(&progBuf, "faulty", 0, 0)}
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	injected := uint64(cfg.Faults.Injected())
	if injected == 0 {
		t.Fatal("fault injector fired nothing; raise the rates")
	}
	if n := m.Counter("interferometry_faults_injected_total", "").Value(); n != injected {
		t.Errorf("faults_injected metric %d, injector counted %d", n, injected)
	}
	retried := uint64(0)
	for _, o := range ds.Obs {
		if o.Status == core.StatusRetried {
			retried++
		}
	}
	if n := m.Counter("interferometry_layouts_retried_total", "").Value(); n != retried {
		t.Errorf("layouts_retried metric %d, dataset has %d retried observations", n, retried)
	}
	if n := m.Counter("interferometry_layouts_failed_total", "").Value(); n != uint64(len(ds.Failures)) {
		t.Errorf("layouts_failed metric %d, dataset has %d failures", n, len(ds.Failures))
	}
	attempts := m.Counter("interferometry_attempts_total", "").Value()
	if attempts <= uint64(len(ds.Obs)) {
		t.Errorf("attempts %d should exceed layouts %d when faults fire", attempts, len(ds.Obs))
	}
	// The final progress line reflects the supervisor's view.
	cfg.Obs.Prog().Finish()
	line := progBuf.String()
	if !strings.Contains(line, "faulty") {
		t.Errorf("missing progress output: %q", line)
	}
}

// TestObservedSweepsEmitSpans checks the campaign-level sweep spans
// (model fit, outlier screen) appear with deterministic identities.
func TestObservedSweepsEmitSpans(t *testing.T) {
	var traceBuf bytes.Buffer
	tr := obs.NewTracer(&traceBuf)
	cfg := smallCampaign(8)
	cfg.OutlierMAD = 0.001 // absurdly tight: flags almost everything
	cfg.Obs = &obs.Observer{Tracer: tr}
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The span is emitted whether or not the fit converges.
	_, _ = ds.MPKIModel()
	tr.Close()
	events, err := obs.ReadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]int{}
	for _, ev := range events {
		names[ev.Name]++
	}
	if names["outlier-screen"] != 1 {
		t.Errorf("outlier-screen spans = %d, want 1", names["outlier-screen"])
	}
	if names["model-fit"] != 1 {
		t.Errorf("model-fit spans = %d, want 1", names["model-fit"])
	}
}
