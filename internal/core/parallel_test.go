package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalizeWorkers(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ req, n, want int }{
		{4, 10, 4},
		{8, 3, 3},
		{0, 2, min(gmp, 2)},
		{-1, 1, 1},
		{3, 0, 1},
	} {
		if got := normalizeWorkers(tc.req, tc.n); got != tc.want {
			t.Errorf("normalizeWorkers(%d, %d) = %d, want %d", tc.req, tc.n, got, tc.want)
		}
	}
}

func TestParallelForVisitsEachIndexOnce(t *testing.T) {
	// More workers than items: the pool clamps and every index is still
	// visited exactly once.
	var visits [3]atomic.Int32
	if err := parallelFor(8, 3, func(w, i int) error {
		visits[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range visits {
		if n := visits[i].Load(); n != 1 {
			t.Errorf("index %d visited %d times", i, n)
		}
	}
	if err := parallelFor(4, 0, func(w, i int) error { return nil }); err != nil {
		t.Errorf("empty sweep: %v", err)
	}
}

func TestSuperviseForRecoversPanics(t *testing.T) {
	failed, err := superviseFor(nil, 4, 8, 0, func(w, i int) error {
		if i == 3 {
			panic("boom at 3")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic with zero budget did not abort the sweep")
	}
	if !errors.Is(err, ErrSweepAborted) {
		t.Errorf("error %v does not wrap ErrSweepAborted", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v carries no *PanicError", err)
	}
	if pe.Value != "boom at 3" || len(pe.Stack) == 0 {
		t.Errorf("PanicError value %v, stack %d bytes", pe.Value, len(pe.Stack))
	}
	if len(failed) != 1 || failed[0].Index != 3 {
		t.Errorf("failed = %v, want one entry at index 3", failed)
	}
}

func TestSuperviseForFailureBudget(t *testing.T) {
	bad := func(w, i int) error {
		if i%5 == 0 { // indices 0, 5, 10, 15: four failures in 20
			return fmt.Errorf("fail %d", i)
		}
		return nil
	}
	// Within budget: the sweep completes and reports the failures sorted.
	failed, err := superviseFor(nil, 4, 20, 4, bad)
	if err != nil {
		t.Fatalf("within budget: %v", err)
	}
	if len(failed) != 4 {
		t.Fatalf("%d failures recorded, want 4", len(failed))
	}
	for k, f := range failed {
		if f.Index != k*5 {
			t.Errorf("failed[%d].Index = %d, want %d (sorted)", k, f.Index, k*5)
		}
	}
	// Over budget: aborted, and the joined error names the failures.
	_, err = superviseFor(nil, 4, 20, 2, bad)
	if !errors.Is(err, ErrSweepAborted) {
		t.Errorf("over budget: %v, want ErrSweepAborted", err)
	}
}

func TestSuperviseForCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var visited atomic.Int32
	const n = 100000
	_, err := superviseFor(ctx, 4, n, 0, func(w, i int) error {
		if visited.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep returned %v", err)
	}
	if v := visited.Load(); v >= n {
		t.Errorf("cancellation did not stop the sweep (visited all %d)", v)
	}
}

func TestSuperviseForCancellationCause(t *testing.T) {
	cause := errors.New("deadline for the campaign")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	_, err := superviseFor(ctx, 2, 10, 0, func(w, i int) error { return nil })
	if !errors.Is(err, cause) {
		t.Errorf("error %v does not carry the cancellation cause", err)
	}
}

func TestSuperviseForNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	// Exercise every exit path: clean, aborted by panic, aborted by
	// budget, and canceled.
	parallelFor(8, 100, func(w, i int) error { return nil })
	superviseFor(nil, 8, 100, 0, func(w, i int) error {
		if i == 50 {
			panic("leak check")
		}
		return nil
	})
	superviseFor(nil, 8, 100, 1, func(w, i int) error { return errors.New("x") })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	superviseFor(ctx, 8, 100, 0, func(w, i int) error { return nil })

	// All pools claim to join their workers before returning; give the
	// runtime a moment to retire exiting goroutines, then compare.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines before %d, after %d: pool leaked workers", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

func TestSuperviseForFirstErrorAborts(t *testing.T) {
	// parallelFor semantics: zero tolerance, error carries the index.
	err := parallelFor(2, 10, func(w, i int) error {
		if i == 4 {
			return errors.New("broken layout")
		}
		return nil
	})
	var ie *IndexError
	if !errors.As(err, &ie) || ie.Index != 4 {
		t.Fatalf("error %v does not identify index 4", err)
	}
}
