package core

import (
	"errors"
	"fmt"
	"sort"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/toolchain"
)

// LayoutRunner exposes the campaign's per-layout pipeline to external
// schedulers — campaignd leases layout indices from its job queue and
// drives them through here. The shared work (trace interpretation, the
// one compile every layout reorders) happens once in NewLayoutRunner;
// after that any layout index can be built and measured independently on
// any worker slot, in any order, any number of times, and always yields
// the same observation: every per-layout input is re-derived from the
// campaign config, never from scheduler state.
//
// The build and measure seams are exposed separately (instead of one
// measure-layout call) so a scheduler can wrap each in its own circuit
// breaker and attribute failures to the seam that caused them. Fault
// injection, when configured, is already inside both seams.
type LayoutRunner struct {
	cfg   CampaignConfig
	co    *campaignObs
	trace *interp.Trace
	build buildSeam
	gb    genomeSeam
	meas  []measureSeam

	// slots lazily holds one batched-replay engine per worker slot for
	// MeasureBatch; nil entries mean the slot has not batched yet.
	slots []*batchSlot
	// harnesses are the bare per-slot harnesses behind meas, kept so
	// MeasureBatch can wire each harness's Det source on first use.
	harnesses []*pmc.Harness

	// attKey is the builder cache key observations are attested
	// against; see AttestationKey.
	attKey string
}

// NewLayoutRunner validates the config, interprets the trace and
// prepares the shared compile plus one measurement harness per worker
// slot (workers <= 0 means 1).
func NewLayoutRunner(cfg CampaignConfig, workers int) (*LayoutRunner, error) {
	if cfg.Program == nil {
		return nil, errors.New("core: campaign needs a program")
	}
	if cfg.Layouts <= 0 {
		return nil, errors.New("core: campaign needs at least one layout")
	}
	if cfg.Budget == 0 && cfg.Limiter.StopCount == 0 {
		return nil, errors.New("core: campaign needs a budget or limiter")
	}
	if workers <= 0 {
		workers = 1
	}
	trace, err := interp.Run(cfg.Program, cfg.InputSeed, cfg.stopRule())
	if err != nil {
		return nil, fmt.Errorf("core: trace generation failed: %w", err)
	}
	build, gb, meas, harnesses := newSeams(&cfg, workers)
	return &LayoutRunner{
		cfg:       cfg,
		co:        newCampaignObs(&cfg),
		trace:     trace,
		build:     build,
		gb:        gb,
		meas:      meas,
		slots:     make([]*batchSlot, workers),
		harnesses: harnesses,
		attKey:    toolchain.NewBuilder(cfg.Program, cfg.Compile, cfg.Link).CacheKey(),
	}, nil
}

// Layouts returns the campaign's layout count.
func (r *LayoutRunner) Layouts() int { return r.cfg.Layouts }

// Workers returns the number of worker slots.
func (r *LayoutRunner) Workers() int { return len(r.meas) }

// AttestationKey is the toolchain identity observations from this
// runner are fingerprinted against (ObsWire.Attest). Two runners built
// from the same campaign config — coordinator and remote worker —
// derive the same key, so fingerprints stamped on one side verify on
// the other.
func (r *LayoutRunner) AttestationKey() string { return r.attKey }

// BuildLayout runs one attempt through the build seam for layout i:
// reorder+link plus the executable integrity check. Panics from the
// seam (injected or real) propagate; callers run under Guard.
func (r *LayoutRunner) BuildLayout(i int) (*toolchain.Executable, error) {
	if err := r.checkIndex(i); err != nil {
		return nil, err
	}
	if r.co != nil {
		r.co.attempts.Inc()
	}
	return buildLayout(&r.cfg, r.co, r.build, i, 0)
}

// MeasureLayout runs one attempt through the measure seam on worker
// slot w (two concurrent calls must use distinct slots): the counter
// harness plus the plausibility check.
func (r *LayoutRunner) MeasureLayout(w, i int, exe *toolchain.Executable) (Observation, error) {
	if err := r.checkIndex(i); err != nil {
		return Observation{}, err
	}
	if w < 0 || w >= len(r.meas) {
		return Observation{}, fmt.Errorf("core: worker slot %d outside [0,%d)", w, len(r.meas))
	}
	return measureBuilt(&r.cfg, r.co, r.meas[w], r.trace, exe, i, w)
}

// PrimeBatch walks the trace once for a group of built layouts on worker
// slot w, priming the slot's harness so the following MeasureLayout
// calls synthesize their measurements from the shared walk instead of
// replaying per layout. Priming is a pure accelerator: the batched
// replay is pinned bit-identical to the sequential one, and a declined
// prime (unbatchable machine geometry, too many lanes, or a batch
// failure) costs nothing — MeasureLayout simply replays sequentially.
// The returned error is diagnostic only; callers may ignore it.
//
// Like MeasureLayout, two concurrent calls must use distinct slots, and
// the priming is consumed by the same slot's MeasureLayout.
func (r *LayoutRunner) PrimeBatch(w int, layouts []int, exes []*toolchain.Executable) error {
	if w < 0 || w >= len(r.meas) {
		return fmt.Errorf("core: worker slot %d outside [0,%d)", w, len(r.meas))
	}
	if len(layouts) != len(exes) {
		return fmt.Errorf("core: %d layouts with %d executables", len(layouts), len(exes))
	}
	if r.cfg.Fidelity == pmc.FidelityPaperNaive || len(layouts) < 2 || len(layouts) > 64 {
		return nil
	}
	for _, i := range layouts {
		if err := r.checkIndex(i); err != nil {
			return err
		}
	}
	slot := r.slots[w]
	if slot == nil || slot.batch.MaxLanes() < len(layouts) {
		b, err := machine.NewBatch(r.cfg.machineConfig(), len(layouts))
		if err != nil {
			return err
		}
		slot = &batchSlot{batch: b, cache: &detCache{}}
		if r.cfg.Delta != DeltaOff {
			slot.delta = getDelta(r.cfg.machineConfig(), len(layouts))
		}
		r.slots[w] = slot
		r.harnesses[w].Det = slot.cache
	}
	slot.cache.reset()
	slot.specs = slot.specs[:0]
	for j, i := range layouts {
		hs := uint64(0)
		if r.cfg.HeapMode == heap.ModeRandomized {
			hs = r.cfg.heapSeed(i)
		}
		slot.specs = append(slot.specs, machine.RunSpec{
			Exe:      exes[j],
			Trace:    r.trace,
			HeapMode: r.cfg.HeapMode,
			HeapSeed: hs,
		})
	}
	cs, dets, err := slot.run(&r.cfg)
	if err != nil {
		return err
	}
	for j := range slot.specs {
		slot.cache.put(slot.specs[j], cs[j], dets[j])
	}
	return nil
}

func (r *LayoutRunner) checkIndex(i int) error {
	if i < 0 || i >= r.cfg.Layouts {
		return fmt.Errorf("core: layout index %d outside campaign [0,%d)", i, r.cfg.Layouts)
	}
	return nil
}

// LayoutSeed returns the seed the campaign derives for layout i.
// Schedulers use it to validate that a result streamed back from a
// remote worker belongs to the layout it was leased for.
func (r *LayoutRunner) LayoutSeed(i int) uint64 { return r.cfg.layoutSeed(i) }

// CompletedObservation stamps retry provenance onto a successful
// observation the way the in-process supervisor does: Attempts is the
// number of executions the layout took, and any retry marks the status.
// Schedulers track attempts themselves, so the stamp is explicit here
// rather than buried in a retry loop they don't use.
func CompletedObservation(o Observation, attempts int) Observation {
	o.Attempts = attempts
	if attempts > 1 {
		o.Status = StatusRetried
	}
	return o
}

// FailedObservation is the observation recorded for a layout that
// exhausted its attempts: the derived seeds with zero counters and
// StatusFailed, exactly what the in-process supervisor records.
func (r *LayoutRunner) FailedObservation(i, attempts int) Observation {
	o := Observation{LayoutSeed: r.cfg.layoutSeed(i), Status: StatusFailed, Attempts: attempts}
	if r.cfg.HeapMode == heap.ModeRandomized {
		o.HeapSeed = r.cfg.heapSeed(i)
	}
	return o
}

// Dataset assembles the campaign dataset from per-layout observations
// (indexed by layout, one per configured layout) and the permanent
// failures. The result is interchangeable with RunCampaign's: same
// config, same trace, same observation order.
func (r *LayoutRunner) Dataset(observations []Observation, failures []LayoutFailure) (*Dataset, error) {
	if len(observations) != r.cfg.Layouts {
		return nil, fmt.Errorf("core: %d observations for a %d-layout campaign", len(observations), r.cfg.Layouts)
	}
	ds := &Dataset{
		Benchmark: r.cfg.Program.Name,
		Config:    r.cfg,
		Trace:     r.trace,
		Obs:       append([]Observation(nil), observations...),
	}
	ds.Failures = append([]LayoutFailure(nil), failures...)
	sort.Slice(ds.Failures, func(a, b int) bool { return ds.Failures[a].Index < ds.Failures[b].Index })
	return ds, nil
}

// Guard runs fn, converting a panic into a *PanicError — the same
// conversion the in-process supervisor applies, so an injected panic in
// a seam is one more retriable task failure instead of a dead process.
func Guard(fn func() error) error {
	return runGuarded(func(int, int) error { return fn() }, 0, 0)
}

// CheckpointSink exposes the campaign checkpoint machinery to external
// schedulers: the same directory layout, header validation and
// atomic-rename durability as RunCampaign's Checkpoint config, so a
// campaign interrupted under campaignd resumes under cmd/interferometry
// and vice versa.
type CheckpointSink struct {
	w        *checkpointWriter
	restored map[int]Observation
}

// OpenCheckpointSink prepares cfg.Checkpoint.Dir and, when
// cfg.Checkpoint.Resume is set, loads previously completed observations
// (failed records are not restored: a resume retries them).
func OpenCheckpointSink(cfg CampaignConfig) (*CheckpointSink, error) {
	if cfg.Checkpoint.Dir == "" {
		return nil, errors.New("core: checkpoint sink needs a directory")
	}
	w, loaded, err := openCheckpoint(&cfg)
	if err != nil {
		return nil, err
	}
	return &CheckpointSink{w: w, restored: loaded}, nil
}

// Restored returns the observations loaded on resume, keyed by
// campaign-local layout index.
func (s *CheckpointSink) Restored() map[int]Observation {
	return s.restored
}

// Put persists one completed observation. Safe for concurrent use;
// write failures surface at Close.
func (s *CheckpointSink) Put(i int, o Observation) {
	s.w.put(i, o)
}

// Close surfaces the first deferred write error.
func (s *CheckpointSink) Close() error {
	return s.w.close()
}
