package core

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strings"
)

// AttestationVersion prefixes every fingerprint so the codec can evolve
// without silently accepting stale workers.
const AttestationVersion = "pia1"

// ErrAttestation reports a fingerprint that does not match the
// observation it arrived with — a malformed, tampered or cross-campaign
// result.
var ErrAttestation = errors.New("core: attestation mismatch")

// Attest computes the observation's deterministic fingerprint: a hash
// chain over the builder cache key (toolchain identity — program,
// compile and link config) and every wire field, plus the derived CPI.
// Workers stamp it before reporting; the coordinator re-derives it from
// its own spec, so a result built by a different toolchain, for a
// different campaign, or with flipped counter bits fails the cheap
// structural check before any re-execution.
//
// The fingerprint is a checksum, not a MAC: there is no secret, so a
// worker that recomputes the hash over lied counters passes this check.
// Catching that class of lie is the audit sampler's job (spot re-runs
// through the coordinator's own runner); attestation only makes
// accidental corruption and lazy forgery free to reject.
func (w ObsWire) Attest(builderKey string) string {
	h := sha256.New()
	h.Write([]byte(AttestationVersion))
	h.Write([]byte{0})
	h.Write([]byte(builderKey))
	h.Write([]byte{0})
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(w.LayoutSeed)
	put(w.HeapSeed)
	put(w.Cycles)
	put(w.Instructions)
	put(uint64(len(w.Events)))
	for _, e := range w.Events {
		put(e)
	}
	put(uint64(w.Runs))
	put(uint64(w.Status))
	put(uint64(int64(w.Attempts)))
	cpi := 0.0
	if w.Instructions != 0 {
		cpi = float64(w.Cycles) / float64(w.Instructions)
	}
	put(math.Float64bits(cpi))
	sum := h.Sum(nil)
	return AttestationVersion + ":" + hex.EncodeToString(sum[:16])
}

// VerifyAttestation re-derives the fingerprint from builderKey and the
// wire fields and compares it to the one the observation carries.
// Missing, unversioned, wrong-version and mismatched fingerprints all
// return an error wrapping ErrAttestation.
func (w ObsWire) VerifyAttestation(builderKey string) error {
	if w.Fingerprint == "" {
		return fmt.Errorf("%w: missing fingerprint", ErrAttestation)
	}
	version, _, ok := strings.Cut(w.Fingerprint, ":")
	if !ok {
		return fmt.Errorf("%w: unversioned fingerprint %q", ErrAttestation, w.Fingerprint)
	}
	if version != AttestationVersion {
		return fmt.Errorf("%w: fingerprint version %q, want %q", ErrAttestation, version, AttestationVersion)
	}
	want := w.Attest(builderKey)
	if subtle.ConstantTimeCompare([]byte(w.Fingerprint), []byte(want)) != 1 {
		return fmt.Errorf("%w: fingerprint %s does not re-derive", ErrAttestation, w.Fingerprint)
	}
	return nil
}
