package core

import (
	"math"
	"strings"
	"testing"

	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/testprog"
)

// corruptSeam always returns a zero-instruction counter read — the
// invalid-measurement shape a faulty harness hands the screen.
type corruptSeam struct{}

func (corruptSeam) Measure(machine.RunSpec) (pmc.Measurement, error) {
	return pmc.Measurement{Cycles: 12345}, nil
}

func TestMeasurementValid(t *testing.T) {
	if measurementValid(pmc.Measurement{Cycles: 100}) {
		t.Error("zero-instruction read counted as valid")
	}
	if !measurementValid(pmc.Measurement{Cycles: 100, Instructions: 80}) {
		t.Error("ordinary read counted as invalid")
	}
}

// screenFixture runs a clean campaign and hands back everything
// screenOutliers needs to be re-driven against a tampered copy.
func screenFixture(t *testing.T, layouts int) (CampaignConfig, *Dataset) {
	t.Helper()
	cfg := CampaignConfig{
		Program:   testprog.ManyBranches(200, 400),
		InputSeed: 1,
		Budget:    120000,
		Layouts:   layouts,
		BaseSeed:  7,
	}
	ds, err := RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Obs {
		if !measurementValid(ds.Obs[i].Measurement) {
			t.Fatalf("clean campaign produced invalid measurement at layout %d", i)
		}
	}
	return cfg, ds
}

// TestScreenDegradesUnrepairableCorruption: an invalid measurement whose
// re-measurement is also invalid must leave the screen as StatusFailed
// with a recorded failure — never as data, and never as a NaN panic in
// the median/MAD pass.
func TestScreenDegradesUnrepairableCorruption(t *testing.T) {
	cfg, ds := screenFixture(t, 8)
	const victim = 3
	ds.Obs[victim].Measurement = pmc.Measurement{Cycles: 999}

	build, _, _, _ := newSeams(&cfg, 1)
	screenOutliers(&cfg, nil, ds, []measureSeam{corruptSeam{}}, build, ds.Trace, nil)

	got := ds.Obs[victim]
	if got.Status != StatusFailed {
		t.Fatalf("unrepairable corrupt layout has status %v, want StatusFailed", got.Status)
	}
	if got.LayoutSeed != cfg.layoutSeed(victim) {
		t.Errorf("degraded observation lost its layout seed")
	}
	found := false
	for _, f := range ds.Failures {
		if f.Index == victim {
			found = true
			if !strings.Contains(f.Err, "corrupt counters") {
				t.Errorf("failure cause %q does not name corrupt counters", f.Err)
			}
		}
	}
	if !found {
		t.Error("no LayoutFailure recorded for the degraded layout")
	}
}

// TestScreenRepairsCorruptionByRemeasuring: with a working measurement
// seam, a corrupt stored observation is re-measured back to the clean
// value and marked retried.
func TestScreenRepairsCorruptionByRemeasuring(t *testing.T) {
	cfg, ds := screenFixture(t, 8)
	const victim = 5
	want := ds.Obs[victim].Measurement
	ds.Obs[victim].Measurement = pmc.Measurement{Cycles: 999}

	build, _, measurers, _ := newSeams(&cfg, 1)
	screenOutliers(&cfg, nil, ds, measurers, build, ds.Trace, nil)

	got := ds.Obs[victim]
	if got.Status != StatusRetried {
		t.Fatalf("repaired layout has status %v, want StatusRetried", got.Status)
	}
	if got.Measurement != want {
		t.Fatal("re-measurement did not restore the clean counters")
	}
	if len(ds.Failures) != 0 {
		t.Fatalf("repairable corruption recorded failures: %v", ds.Failures)
	}
}

// TestScreenKeepsValidObservations: when every stored measurement is
// valid, a screen whose re-measurement seam is broken must not change a
// single observation — it improves datasets or leaves them alone.
func TestScreenKeepsValidObservations(t *testing.T) {
	cfg, ds := screenFixture(t, 8)
	before := append([]Observation(nil), ds.Obs...)

	build, _, _, _ := newSeams(&cfg, 1)
	screenOutliers(&cfg, nil, ds, []measureSeam{corruptSeam{}}, build, ds.Trace, nil)

	for i := range ds.Obs {
		if ds.Obs[i] != before[i] {
			t.Fatalf("layout %d changed: %+v -> %+v", i, before[i], ds.Obs[i])
		}
	}
	if len(ds.Failures) != 0 {
		t.Fatalf("screen of a valid dataset recorded failures: %v", ds.Failures)
	}
}

// TestScreenMedianExcludesInvalid: the invalid observation must not
// enter the median/MAD statistics. With an absurd corrupt CPI in a
// small spread of valid ones, a poisoned median would flag everything;
// the screen must re-measure only the corrupt entry.
func TestScreenMedianExcludesInvalid(t *testing.T) {
	cfg, ds := screenFixture(t, 8)
	const victim = 0
	ds.Obs[victim].Measurement = pmc.Measurement{Cycles: math.MaxUint64}

	build, _, measurers, _ := newSeams(&cfg, 1)
	screenOutliers(&cfg, nil, ds, measurers, build, ds.Trace, nil)

	retried := 0
	for i := range ds.Obs {
		if ds.Obs[i].Status == StatusRetried {
			retried++
			if i != victim {
				t.Errorf("valid layout %d was re-measured and replaced", i)
			}
		}
	}
	if retried == 0 {
		t.Error("corrupt layout was not repaired")
	}
}
