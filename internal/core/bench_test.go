package core_test

import (
	"io"
	"testing"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/obs"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
)

// benchCampaign runs a full campaign — trace generation amortized away,
// then layout build + measurement per layout — at the given fidelity.
// Comparing the PaperFidelity and PaperFidelityNaive targets quantifies
// the single-replay fast path; the shared-compile Builder and the
// allocation-free machine are in both paths.
func benchCampaign(b *testing.B, fid pmc.Fidelity, o *obs.Observer) {
	benchCampaignBatch(b, fid, o, 0)
}

// benchCampaignBatch is benchCampaign with an explicit batched-replay
// width: 1 pins the historic sequential path, 0 the automatic batch
// width (the default every caller now gets).
func benchCampaignBatch(b *testing.B, fid pmc.Fidelity, o *obs.Observer, batch int) {
	b.Helper()
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	cfg := core.CampaignConfig{
		Program:   progen.MustGenerate(spec),
		InputSeed: 1,
		Budget:    200000,
		Layouts:   32,
		Fidelity:  fid,
		BaseSeed:  42,
		Obs:       o,
		BatchSize: batch,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.RunCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Obs) != cfg.Layouts {
			b.Fatalf("campaign returned %d observations", len(ds.Obs))
		}
	}
	b.ReportMetric(float64(cfg.Layouts)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
}

// BenchmarkCampaignPaperFidelity is the campaign hot path at paper
// fidelity with the single-replay protocol (one simulation per layout).
func BenchmarkCampaignPaperFidelity(b *testing.B) {
	benchCampaign(b, pmc.FidelityPaper, nil)
}

// BenchmarkCampaignPaperFidelityObserved is the same campaign with every
// observability channel live — metrics registry, span tracer, progress
// reporter — quantifying instrumentation overhead against the nil-Obs
// baseline above (the budget is <3%).
func BenchmarkCampaignPaperFidelityObserved(b *testing.B) {
	benchCampaign(b, pmc.FidelityPaper, &obs.Observer{
		Metrics:  obs.NewMetrics(),
		Tracer:   obs.NewTracer(io.Discard),
		Progress: obs.NewProgress(io.Discard, "bench", 0, time.Hour),
	})
}

// BenchmarkCampaignPaperFidelityNaive runs the literal §5.5 protocol (15
// simulations per layout) for before/after comparison.
func BenchmarkCampaignPaperFidelityNaive(b *testing.B) {
	benchCampaign(b, pmc.FidelityPaperNaive, nil)
}

// BenchmarkCampaignFastFidelity is the single-run fidelity, the floor a
// paper-fidelity measurement can approach.
func BenchmarkCampaignFastFidelity(b *testing.B) {
	benchCampaign(b, pmc.FidelityFast, nil)
}

// BenchmarkCampaignSequential pins the pre-batching sequential path
// (BatchSize 1, one trace walk per layout) at paper fidelity: the
// before side of the batched-replay comparison.
func BenchmarkCampaignSequential(b *testing.B) {
	benchCampaignBatch(b, pmc.FidelityPaper, nil, 1)
}

// BenchmarkCampaignBatched is the batched replay on the same 32-layout
// workload: every worker chunk walks the trace once and fans the
// per-layout cycle scalars back through the measurement protocol. The
// results are byte-identical to BenchmarkCampaignSequential's; only the
// layouts/s metric should move.
func BenchmarkCampaignBatched(b *testing.B) {
	benchCampaignBatch(b, pmc.FidelityPaper, nil, 0)
}

// benchCampaignDelta runs the delta engine's design-regime workload: a
// streaming benchmark whose layout-sensitive cache events die out early
// in the trace (470.lbm at a short budget), so per-lane work collapses
// to the short sensitive prefix plus the skeleton sum. Dense traces
// (the perlbench workload above) are the opposite regime — there the
// auto mode's profitability preflight routes chunks to the batched
// walk, which measures faster; see DESIGN.md §15 for the regime
// analysis and measurements.
func benchCampaignDelta(b *testing.B, mode core.DeltaMode) {
	b.Helper()
	spec, ok := progen.ByName("470.lbm")
	if !ok {
		b.Fatal("missing spec")
	}
	cfg := core.CampaignConfig{
		Program:   progen.MustGenerate(spec),
		InputSeed: 1,
		Budget:    5000,
		Layouts:   32,
		Fidelity:  pmc.FidelityPaper,
		BaseSeed:  42,
		Delta:     mode,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := core.RunCampaign(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ds.Obs) != cfg.Layouts {
			b.Fatalf("campaign returned %d observations", len(ds.Obs))
		}
	}
	b.ReportMetric(float64(cfg.Layouts)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
}

// BenchmarkCampaignDelta measures the delta-replay campaign in the
// regime the engine is built for (auto mode picks delta here on its
// own). Results are byte-identical to BenchmarkCampaignDeltaOff's.
func BenchmarkCampaignDelta(b *testing.B) {
	benchCampaignDelta(b, core.DeltaAuto)
}

// BenchmarkCampaignDeltaOff is the apples-to-apples companion: the same
// lbm workload with delta replay disabled, so the pair isolates the
// engine's contribution from the workload change.
func BenchmarkCampaignDeltaOff(b *testing.B) {
	benchCampaignDelta(b, core.DeltaOff)
}
