package core_test

import (
	"fmt"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/faultinject"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
)

// runDelta runs cfg with the given batch width and delta mode.
func runDelta(t *testing.T, cfg core.CampaignConfig, batch int, mode core.DeltaMode, mutate func(*core.CampaignConfig)) *core.Dataset {
	t.Helper()
	dcfg := cfg
	dcfg.BatchSize = batch
	dcfg.Delta = mode
	if mutate != nil {
		mutate(&dcfg)
	}
	ds, err := core.RunCampaign(dcfg)
	if err != nil {
		t.Fatalf("delta(%s) campaign: %v", mode, err)
	}
	return ds
}

// TestDeltaCampaignIdenticalToSequential is the delta half of the
// determinism matrix: sequential ≡ batched ≡ delta-forced ≡ delta-auto,
// across heap modes, fidelities and batch widths. DeltaOn forces the
// delta engine onto every chunk (with its own per-spec declines falling
// back to the batched walk); DeltaAuto additionally exercises the
// profitability preflight, which on this dense trace routes everything
// to batch — both must be invisible in the bytes.
func TestDeltaCampaignIdenticalToSequential(t *testing.T) {
	for _, tc := range []struct {
		name     string
		mode     heap.Mode
		fidelity pmc.Fidelity
		batch    int
	}{
		{"bump/fast/b4", heap.ModeBump, pmc.FidelityFast, 4},
		{"bump/paper/b2", heap.ModeBump, pmc.FidelityPaper, 2},
		{"rand/fast/b7", heap.ModeRandomized, pmc.FidelityFast, 7},
		{"rand/paper/b4", heap.ModeRandomized, pmc.FidelityPaper, 4},
		{"bump/fast/auto", heap.ModeBump, pmc.FidelityFast, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCampaign(13)
			cfg.HeapMode = tc.mode
			cfg.Fidelity = tc.fidelity
			cfg.Workers = 2
			seq, bat := runPair(t, cfg, tc.batch, nil)
			assertDatasetsIdentical(t, seq, bat)
			forced := runDelta(t, cfg, tc.batch, core.DeltaOn, nil)
			assertDatasetsIdentical(t, seq, forced)
			auto := runDelta(t, cfg, tc.batch, core.DeltaAuto, nil)
			assertDatasetsIdentical(t, seq, auto)
		})
	}
}

// TestDeltaCampaignWithFaultsIdentical forces delta replay under the
// deterministic fault storm of TestBatchedCampaignWithFaultsIdentical:
// injected build/measure errors, panics and corruptions, with retries,
// a failure budget and the outlier screen engaged. The delta engine
// must fail, fall back, retry and recover in exactly the same places as
// the sequential supervisor.
func TestDeltaCampaignWithFaultsIdentical(t *testing.T) {
	seeds := []uint64{3, 17, 29, 101}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := smallCampaign(15)
			cfg.Workers = 2
			cfg.MaxAttempts = 3
			cfg.FailureBudget = 15
			cfg.OutlierMAD = 8
			mutate := func(c *core.CampaignConfig) {
				c.Faults = faultinject.New(seed, faultinject.Config{
					Build:   faultinject.Rates{Error: 0.15, Panic: 0.05, Corrupt: 0.1, MaxFaults: 2},
					Measure: faultinject.Rates{Error: 0.15, Corrupt: 0.1, MaxFaults: 2},
				})
			}
			seq, _ := runPair(t, cfg, 4, mutate)
			forced := runDelta(t, cfg, 4, core.DeltaOn, mutate)
			assertDatasetsIdentical(t, seq, forced)
		})
	}
}

// TestDeltaCampaignManySeeds sweeps base seeds, heap modes, worker
// counts and batch widths with the delta engine forced on — the
// campaign-level property sweep mirroring TestBatchedCampaignManySeeds.
func TestDeltaCampaignManySeeds(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		cfg := smallCampaign(9)
		cfg.BaseSeed = uint64(1000 + trial*7919)
		if trial%2 == 1 {
			cfg.HeapMode = heap.ModeRandomized
		}
		cfg.Workers = 1 + trial%3
		batch := []int{2, 3, 7, 9}[trial%4]
		seq := runDelta(t, cfg, 1, core.DeltaOff, nil)
		forced := runDelta(t, cfg, batch, core.DeltaOn, nil)
		assertDatasetsIdentical(t, seq, forced)
	}
}

// TestDeltaSearchIdentical pins the search path: an evolutionary
// layout-search campaign with the delta engine forced on must produce
// the same generations (fingerprints, measurements, provenance) as one
// with delta off — PrimeGenomes routes through the same engine choice
// as PrimeBatch.
func TestDeltaSearchIdentical(t *testing.T) {
	base := core.SearchConfig{
		Campaign:    smallCampaign(0),
		Population:  4,
		Generations: 3,
	}
	base.Campaign.Layouts = 1
	base.Campaign.Workers = 2

	off := base
	off.Campaign.Delta = core.DeltaOff
	want, err := core.RunSearch(off)
	if err != nil {
		t.Fatal(err)
	}
	on := base
	on.Campaign.Delta = core.DeltaOn
	got, err := core.RunSearch(on)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Generations) != len(got.Generations) {
		t.Fatalf("generation counts differ: %d vs %d", len(want.Generations), len(got.Generations))
	}
	for gi := range want.Generations {
		wg, gg := want.Generations[gi], got.Generations[gi]
		if len(wg.Individuals) != len(gg.Individuals) {
			t.Fatalf("gen %d: individual counts differ", gi)
		}
		for i := range wg.Individuals {
			wi, ci := wg.Individuals[i], gg.Individuals[i]
			if wi.Genome.Fingerprint() != ci.Genome.Fingerprint() {
				t.Errorf("gen %d idx %d: fingerprints differ", gi, i)
			}
			if wi.Obs != ci.Obs {
				t.Errorf("gen %d idx %d: observations differ:\noff %+v\non  %+v", gi, i, wi.Obs, ci.Obs)
			}
		}
	}
}
