package core

import (
	"interferometry/internal/pmc"
	"interferometry/internal/stats"
)

// Blame quantifies how much of the CPI variance a single event explains:
// "using r², the coefficient of determination, we can determine what
// portion of performance is due to a particular microarchitectural event"
// (§6.1). The Combined entry reports the three-event model's r², which
// need not equal the sum "because the three measurements are not
// altogether independent of one another".
type Blame struct {
	Benchmark string
	// PerEvent maps each blamed event to its r² against CPI; events whose
	// regression could not be fitted (constant predictor) get 0.
	PerEvent map[pmc.Event]float64
	// Significant marks events whose t test rejects the null at 0.05.
	Significant map[pmc.Event]bool
	// CombinedR2 is the r² of the joint model; CombinedSignificant is its
	// F-test verdict.
	CombinedR2          float64
	CombinedSignificant bool
}

// BlameEvents are the three candidates of §6.1: the events "most likely
// to be affected by code placement".
var BlameEvents = []pmc.Event{pmc.EvBranchMispredicts, pmc.EvL1IMisses, pmc.EvL2Misses}

// BlameAnalysis fits the three per-event models and the combined model.
func (d *Dataset) BlameAnalysis() Blame {
	b := Blame{
		Benchmark:   d.Benchmark,
		PerEvent:    make(map[pmc.Event]float64, len(BlameEvents)),
		Significant: make(map[pmc.Event]bool, len(BlameEvents)),
	}
	for _, ev := range BlameEvents {
		m, err := d.FitCPI(ev)
		if err != nil {
			b.PerEvent[ev] = 0
			continue
		}
		b.PerEvent[ev] = m.Fit.R2
		b.Significant[ev] = m.Significant()
	}
	if cm, ok := d.RobustCombined(); ok {
		b.CombinedR2 = cm.Fit.R2
		b.CombinedSignificant = cm.Significant()
	}
	return b
}

// RobustCombined fits the three-event combined model, dropping columns
// until the design matrix is well conditioned. Two degeneracies occur in
// practice: an event that is constant across layouts, and exact
// collinearity between events (compulsory-dominated instruction-side
// misses make the L2 code-miss count track L1I misses one for one). The
// returned model covers the surviving events; ok is false when not even
// a single-predictor model can be fitted.
func (d *Dataset) RobustCombined() (*CombinedModel, bool) {
	events := append([]pmc.Event(nil), BlameEvents...)
	// Drop exact duplicates first: a pair with |r| ~ 1 carries one
	// column's worth of information.
	for i := 0; i < len(events); i++ {
		for j := len(events) - 1; j > i; j-- {
			r, err := stats.Correlation(d.PKIs(events[i]), d.PKIs(events[j]))
			if err == nil && r*r > 0.9999 {
				events = append(events[:j], events[j+1:]...)
			}
		}
	}
	for len(events) > 0 {
		if cm, err := d.FitCombined(events...); err == nil {
			return cm, true
		}
		// Remove the event with the smallest variance and retry.
		worst, worstVar := 0, -1.0
		for i, ev := range events {
			v := variance(d.PKIs(ev))
			if worstVar < 0 || v < worstVar {
				worst, worstVar = i, v
			}
		}
		events = append(events[:worst], events[worst+1:]...)
	}
	return nil, false
}

func variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss
}
