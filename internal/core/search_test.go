package core

import (
	"bufio"
	"os"
	"path/filepath"
	"testing"

	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

// searchTestConfig is the shared small search every determinism test
// runs: big enough to exercise batching, elitism and tournament
// breeding, small enough to settle in milliseconds.
func searchTestConfig() SearchConfig {
	return SearchConfig{
		Campaign: CampaignConfig{
			Program:   testprog.ManyBranches(60, 300),
			InputSeed: 1,
			Budget:    60000,
			BaseSeed:  42,
		},
		Population:  8,
		Generations: 4,
	}
}

// trajectoryOf summarizes a search result for byte-for-byte comparison:
// the trajectory hash, every generation hash, and the best genome's
// canonical encoding.
func trajectoryOf(t *testing.T, res *SearchResult) string {
	t.Helper()
	out := res.TrajectoryHash + "\n"
	for _, g := range res.Generations {
		out += g.PopHash + "\n"
	}
	return out + string(toolchain.EncodeGenome(res.Best.Genome))
}

// TestSearchSmoke is the short-mode search smoke test: a small seeded
// search must settle every generation, produce a valid best individual
// and a stable trajectory hash.
func TestSearchSmoke(t *testing.T) {
	res, err := RunSearch(searchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generations) != 4 {
		t.Fatalf("settled %d generations, want 4", len(res.Generations))
	}
	if !res.Best.valid() {
		t.Fatal("best individual is not valid")
	}
	if res.TrajectoryHash == "" || len(res.TrajectoryHash) != 64 {
		t.Fatalf("malformed trajectory hash %q", res.TrajectoryHash)
	}
	for _, g := range res.Generations {
		if len(g.Individuals) != 8 {
			t.Fatalf("generation %d has %d individuals, want 8", g.Gen, len(g.Individuals))
		}
		if err := g.Best().Genome.Validate(toolchain.NewBuilder(res.Config.Campaign.Program, res.Config.Campaign.Compile, res.Config.Campaign.Link).Units()); err != nil {
			t.Fatalf("generation %d best genome invalid: %v", g.Gen, err)
		}
	}
}

// TestSearchTrajectoryDeterminism pins the tentpole guarantee: the same
// spec and seed walk a byte-identical trajectory — per-generation
// population hashes and the final best layout — whatever the worker
// count and whether replay is batched or sequential.
func TestSearchTrajectoryDeterminism(t *testing.T) {
	base := searchTestConfig()
	var want string
	for _, tc := range []struct {
		name     string
		workers  int
		batch    int
		fidelity pmc.Fidelity
	}{
		{name: "1-worker-batched", workers: 1},
		{name: "4-worker-batched", workers: 4},
		{name: "1-worker-sequential", workers: 1, batch: 1},
		{name: "4-worker-sequential", workers: 4, batch: 1},
		{name: "paper-naive", workers: 2, fidelity: pmc.FidelityPaperNaive},
	} {
		cfg := base
		cfg.Campaign.Workers = tc.workers
		cfg.Campaign.BatchSize = tc.batch
		cfg.Campaign.Fidelity = tc.fidelity
		res, err := RunSearch(cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := trajectoryOf(t, res)
		if tc.fidelity == pmc.FidelityPaperNaive {
			// Different fidelity measures differently; it only needs to
			// be self-consistent, which the next loop iteration of the
			// same config would show. Skip the cross-comparison.
			continue
		}
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%s: trajectory diverged from 1-worker-batched", tc.name)
		}
	}
}

// TestSearchTieBreakPinned mutation-verifies the determinism pin: the
// selection order is a package variable precisely so this test can
// flip its fingerprint tie-break and watch the trajectory move. If
// flipping the tie-break changes nothing, the pin has rotted into dead
// code and the determinism suite is vacuous.
func TestSearchTieBreakPinned(t *testing.T) {
	cfg := searchTestConfig()
	// Equal-CPI ties need to actually occur for the tie-break to
	// matter: a tiny budget and population make collisions likely, but
	// the flip below also reverses the valid-CPI ordering, which any
	// population with two distinct CPIs exercises.
	clean, err := RunSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	orig := searchBetter
	defer func() { searchBetter = orig }()
	searchBetter = func(a, b *Individual) bool {
		av, bv := a.valid(), b.valid()
		if av != bv {
			return av
		}
		if av {
			ac, bc := a.Obs.CPI(), b.Obs.CPI()
			if ac != bc {
				return ac > bc // flipped: prefer WORSE CPI
			}
		}
		return a.Genome.Fingerprint() > b.Genome.Fingerprint() // flipped
	}
	flipped, err := RunSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if clean.TrajectoryHash == flipped.TrajectoryHash {
		t.Fatal("flipping the selection order did not change the trajectory — the determinism pin is vacuous")
	}
}

// TestSearchDegradedIndividualCannotWin is the regression test for the
// selection-fitness bug: the campaign-wide MAD screen assumes i.i.d.
// layouts, and naively reusing it per-genome let a degraded individual
// (failed observation with leftover counters) outrank real ones. A
// failed individual must lose selection to every valid one regardless
// of its counters, and breeding must draw only from valid parents.
func TestSearchDegradedIndividualCannotWin(t *testing.T) {
	cfg := searchTestConfig()
	s, err := NewSearch(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	genomes, err := s.Genomes(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	observations, err := s.Evaluate(nil, genomes)
	if err != nil {
		t.Fatal(err)
	}
	// Degrade every individual but index 3 to StatusFailed — with
	// fabricated counters that would give them the best CPI in the
	// population if status were ignored.
	for i := range observations {
		if i == 3 {
			continue
		}
		observations[i].Status = StatusFailed
		observations[i].Cycles = 1
		observations[i].Instructions = 1000000
	}
	res, err := s.Settle(0, genomes, observations)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestIdx != 3 {
		t.Fatalf("degraded individual won selection: best index %d, want 3", res.BestIdx)
	}
	// Breeding must only ever draw the single valid parent: every elite
	// is its clone and every child is a self-crossover of it.
	next, err := s.Genomes(1, &res)
	if err != nil {
		t.Fatal(err)
	}
	if fp := next[0].Fingerprint(); fp != genomes[3].Fingerprint() {
		t.Errorf("elite 0 fingerprint %016x is not the sole valid parent %016x", fp, genomes[3].Fingerprint())
	}
}

// TestSearchScreenRepairsInvalidMeasurement: the per-generation screen
// re-measures an invalid (garbage-counter) observation back to the
// clean deterministic value, marked retried — and an individual whose
// re-measurement cannot be valid is degraded to StatusFailed rather
// than entering selection with garbage counters.
func TestSearchScreenRepairsInvalidMeasurement(t *testing.T) {
	cfg := searchTestConfig()
	s, err := NewSearch(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	genomes, err := s.Genomes(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	observations, err := s.Evaluate(nil, genomes)
	if err != nil {
		t.Fatal(err)
	}
	want := observations[2].Measurement
	observations[2].Measurement = pmc.Measurement{Cycles: 999} // invalid: zero instructions
	res, err := s.Settle(0, genomes, observations)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Individuals[2].Obs
	if got.Status != StatusRetried {
		t.Fatalf("repaired individual has status %v, want StatusRetried", got.Status)
	}
	if got.Measurement != want {
		t.Fatal("re-measurement did not restore the clean counters")
	}
}

// TestSearchResumeByteIdentical: a search killed after a settled
// generation and resumed on the same checkpoint directory walks the
// identical remaining trajectory — same generation hashes, same best
// layout, same trajectory hash.
func TestSearchResumeByteIdentical(t *testing.T) {
	cfg := searchTestConfig()
	cfg.Campaign.Checkpoint = CheckpointConfig{Dir: t.TempDir()}
	clean, err := RunSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a kill after generation 1: keep the header and the first
	// two generation records.
	src := filepath.Join(cfg.Campaign.Checkpoint.Dir, SearchCheckpointFile)
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	f.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1+4 {
		t.Fatalf("checkpoint has %d lines, want header + 4 generations", len(lines))
	}
	dir2 := t.TempDir()
	trunc := lines[0] + "\n" + lines[1] + "\n" + lines[2] + "\n"
	if err := os.WriteFile(filepath.Join(dir2, SearchCheckpointFile), []byte(trunc), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg2 := searchTestConfig()
	cfg2.Campaign.Checkpoint = CheckpointConfig{Dir: dir2, Resume: true}
	resumed, err := RunSearch(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := trajectoryOf(t, resumed), trajectoryOf(t, clean); got != want {
		t.Fatal("resumed search diverged from the uninterrupted one")
	}
}

// TestSearchCheckpointRefusesCorruption: a generation record whose
// content does not recompute to its recorded population hash must
// refuse to resume.
func TestSearchCheckpointRefusesCorruption(t *testing.T) {
	cfg := searchTestConfig()
	cfg.Generations = 2
	cfg.Campaign.Checkpoint = CheckpointConfig{Dir: t.TempDir()}
	if _, err := RunSearch(cfg); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(cfg.Campaign.Checkpoint.Dir, SearchCheckpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := []byte(string(data))
	// Flip a digit inside the first pop_hash occurrence.
	idx := -1
	for i := 0; i+10 < len(tampered); i++ {
		if string(tampered[i:i+10]) == `"pop_hash"` {
			idx = i + 12
			break
		}
	}
	if idx < 0 {
		t.Fatal("no pop_hash in checkpoint")
	}
	if tampered[idx] == 'a' {
		tampered[idx] = 'b'
	} else {
		tampered[idx] = 'a'
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := searchTestConfig()
	cfg2.Generations = 2
	cfg2.Campaign.Checkpoint = CheckpointConfig{Dir: cfg.Campaign.Checkpoint.Dir, Resume: true}
	if _, err := RunSearch(cfg2); err == nil {
		t.Fatal("corrupted checkpoint resumed without error")
	}
}

// TestSearchBeatsRandomSampling is the acceptance gate: a seeded search
// over 400.perlbench must find a layout whose CPI beats the median of
// an equal-budget random sample drawn under a held-out seed, and the
// margin is reported with a bootstrap confidence interval on the
// sampling median.
func TestSearchBeatsRandomSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("full perlbench search in -short mode")
	}
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("400.perlbench spec missing")
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := SearchConfig{
		Campaign: CampaignConfig{
			Program:   prog,
			InputSeed: 3,
			Budget:    150000,
			BaseSeed:  2026,
		},
		Population:  10,
		Generations: 6,
	}
	res, err := RunSearch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best := res.Best.Obs.CPI()

	// The baseline samples under a held-out seed: same budget in
	// measurements (population x generations layouts), disjoint seed
	// streams.
	base := cfg.Campaign
	base.BaseSeed = HeldOutSeed(cfg.Campaign.BaseSeed)
	cpis, err := SampleLayoutCPIs(base, cfg.Population*cfg.Generations)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(cpis)
	ci, err := stats.BootstrapQuantileCI(cpis, 0.5, 1000, base.BaseSeed, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("search best CPI %.6f vs sampling median %.6f (95%% CI [%.6f, %.6f], n=%d)",
		best, med, ci.Low, ci.High, len(cpis))
	if best >= med {
		t.Errorf("search best CPI %.6f does not beat the random-sampling median %.6f", best, med)
	}
	if best >= ci.Low {
		t.Logf("note: search best %.6f is inside the sampling median CI — margin is not significant at this budget", best)
	}
}

// BenchmarkSearch measures search throughput in generations per second
// for the perf log.
func BenchmarkSearch(b *testing.B) {
	cfg := searchTestConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunSearch(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(b.N*cfg.Generations)/b.Elapsed().Seconds(), "generations/s")
}
