package core

import (
	"errors"
	"strings"
	"testing"
)

func attestWire() ObsWire {
	return ObsWire{
		LayoutSeed:   0x1f2e3d4c5b6a7988,
		HeapSeed:     0xdeadbeefcafe,
		Cycles:       123_456_789,
		Instructions: 98_765_432,
		Events:       []uint64{7, 11, 13, 17, 19, 23},
		Runs:         5,
		Status:       1,
		Attempts:     2,
	}
}

func TestAttestRoundTrip(t *testing.T) {
	w := attestWire()
	w.Fingerprint = w.Attest("builder-key-v1")
	if !strings.HasPrefix(w.Fingerprint, AttestationVersion+":") {
		t.Fatalf("fingerprint %q lacks version prefix", w.Fingerprint)
	}
	if err := w.VerifyAttestation("builder-key-v1"); err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	// Attest must not depend on the Fingerprint field itself.
	if got := w.Attest("builder-key-v1"); got != w.Fingerprint {
		t.Fatalf("Attest is not a pure function of the payload: %s vs %s", got, w.Fingerprint)
	}
}

func TestAttestDetectsTampering(t *testing.T) {
	const key = "builder-key-v1"
	base := attestWire()
	base.Fingerprint = base.Attest(key)

	mutations := map[string]func(*ObsWire){
		"layout seed":  func(w *ObsWire) { w.LayoutSeed ^= 2 },
		"heap seed":    func(w *ObsWire) { w.HeapSeed++ },
		"cycles":       func(w *ObsWire) { w.Cycles ^= 1 << 40 },
		"instructions": func(w *ObsWire) { w.Instructions-- },
		"event value":  func(w *ObsWire) { w.Events[3] ^= 1 },
		"event count":  func(w *ObsWire) { w.Events = w.Events[:len(w.Events)-1] },
		"runs":         func(w *ObsWire) { w.Runs++ },
		"status":       func(w *ObsWire) { w.Status = 2 },
		"attempts":     func(w *ObsWire) { w.Attempts++ },
	}
	for name, mutate := range mutations {
		w := base
		w.Events = append([]uint64(nil), base.Events...)
		mutate(&w)
		if err := w.VerifyAttestation(key); !errors.Is(err, ErrAttestation) {
			t.Errorf("tampered %s verified (err=%v); fingerprint must cover it", name, err)
		}
	}

	// A different toolchain identity must not verify either.
	w := base
	if err := w.VerifyAttestation("builder-key-v2"); !errors.Is(err, ErrAttestation) {
		t.Errorf("cross-toolchain fingerprint verified (err=%v)", err)
	}
}

func TestVerifyAttestationStructure(t *testing.T) {
	w := attestWire()
	cases := map[string]string{
		"missing":       "",
		"unversioned":   "abcdef0123456789",
		"wrong version": "pia0:" + strings.Repeat("0", 32),
	}
	for name, fp := range cases {
		w.Fingerprint = fp
		if err := w.VerifyAttestation("k"); !errors.Is(err, ErrAttestation) {
			t.Errorf("%s fingerprint %q verified (err=%v)", name, fp, err)
		}
	}
}

// FuzzAttestationRoundTrip drives the codec with arbitrary payloads:
// every stamped fingerprint must verify against the same key, must have
// the version prefix, and must fail against a perturbed key or payload.
func FuzzAttestationRoundTrip(f *testing.F) {
	f.Add("k", uint64(1), uint64(2), uint64(3), uint64(4), 1, uint8(0), 1, []byte{1, 2, 3})
	f.Add("", uint64(0), uint64(0), uint64(0), uint64(0), 0, uint8(255), -1, []byte{})
	f.Add("builder\x00key", ^uint64(0), uint64(1)<<63, uint64(7), uint64(0), 1<<20, uint8(3), 42, []byte{0xff, 0x00, 0xaa})
	f.Fuzz(func(t *testing.T, key string, layoutSeed, heapSeed, cycles, instr uint64, runs int, status uint8, attempts int, raw []byte) {
		events := make([]uint64, len(raw))
		for i, b := range raw {
			events[i] = uint64(b) * 0x9e3779b97f4a7c15
		}
		w := ObsWire{
			LayoutSeed: layoutSeed, HeapSeed: heapSeed,
			Cycles: cycles, Instructions: instr,
			Events: events, Runs: runs, Status: status, Attempts: attempts,
		}
		w.Fingerprint = w.Attest(key)
		if !strings.HasPrefix(w.Fingerprint, AttestationVersion+":") {
			t.Fatalf("fingerprint %q lacks version prefix", w.Fingerprint)
		}
		if err := w.VerifyAttestation(key); err != nil {
			t.Fatalf("stamped fingerprint failed to verify: %v", err)
		}
		if err := w.VerifyAttestation(key + "x"); !errors.Is(err, ErrAttestation) {
			t.Fatalf("fingerprint verified under a different key (err=%v)", err)
		}
		w.Cycles ^= 1
		if err := w.VerifyAttestation(key); !errors.Is(err, ErrAttestation) {
			t.Fatalf("fingerprint verified after payload flip (err=%v)", err)
		}
	})
}
