package core_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/faultinject"
	"interferometry/internal/uarch/branch"
)

// TestCampaignRetriesClearInjectedFaults is the headline fault-tolerance
// acceptance test: a 100-layout campaign with injected build and
// measurement faults — at a rate the retry budget can absorb — completes
// without error, and every retried observation is bit-identical to the
// clean run's, because retries re-derive the same seeds through the same
// deterministic pipeline.
func TestCampaignRetriesClearInjectedFaults(t *testing.T) {
	clean, err := core.RunCampaign(smallCampaign(100))
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallCampaign(100)
	// Worst case per layout: a build fault on attempt 1, a measurement
	// fault on attempt 2, success on attempt 3 (MaxFaults bounds each
	// site's faults per layout at one).
	cfg.MaxAttempts = 3
	inj := faultinject.New(42, faultinject.Config{
		Build:   faultinject.Rates{Error: 0.15, Corrupt: 0.1},
		Measure: faultinject.Rates{Error: 0.15},
	})
	cfg.Faults = inj
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign did not absorb injected faults: %v", err)
	}
	if inj.Injected() == 0 {
		t.Fatal("injector fired no faults — the test exercised nothing")
	}
	if len(ds.Failures) != 0 || ds.EffectiveN() != 100 {
		t.Fatalf("faults within the retry budget degraded the dataset: %d failures, effective %d",
			len(ds.Failures), ds.EffectiveN())
	}
	retried := 0
	for i := range ds.Obs {
		if ds.Obs[i].Measurement != clean.Obs[i].Measurement {
			t.Fatalf("layout %d: retried measurement differs from clean run", i)
		}
		if ds.Obs[i].LayoutSeed != clean.Obs[i].LayoutSeed || ds.Obs[i].HeapSeed != clean.Obs[i].HeapSeed {
			t.Fatalf("layout %d: seeds differ from clean run", i)
		}
		if ds.Obs[i].Status == core.StatusRetried {
			retried++
			if ds.Obs[i].Attempts < 2 {
				t.Errorf("layout %d marked retried after %d attempts", i, ds.Obs[i].Attempts)
			}
		}
	}
	if retried == 0 {
		t.Error("no observation was marked retried despite injected faults")
	}
}

// TestCampaignSurvivesWorkerPanic: an injected panic in a worker surfaces
// as an error instead of killing the process.
func TestCampaignSurvivesWorkerPanic(t *testing.T) {
	cfg := smallCampaign(6)
	cfg.MaxAttempts = 1
	cfg.Faults = faultinject.New(1, faultinject.Config{
		Build: faultinject.Rates{Panic: 1},
	})
	ds, err := core.RunCampaign(cfg)
	if err == nil {
		t.Fatal("campaign with panicking builds reported success")
	}
	if ds != nil {
		t.Error("aborted campaign returned a dataset")
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not expose the recovered *PanicError", err)
	}
}

// TestCampaignDegradesWithinBudget: permanent failures within the failure
// budget mark their layouts StatusFailed; every consumer then works on
// the effective sample, and the surviving observations are bit-identical
// to an undisturbed campaign's.
func TestCampaignDegradesWithinBudget(t *testing.T) {
	clean, err := core.RunCampaign(smallCampaign(30))
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallCampaign(30)
	cfg.MaxAttempts = 1 // no retries: every injected fault is permanent
	cfg.FailureBudget = 30
	inj := faultinject.New(11, faultinject.Config{
		Measure: faultinject.Rates{Error: 0.2, Panic: 0.1},
	})
	cfg.Faults = inj
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatalf("campaign within failure budget aborted: %v", err)
	}
	if len(ds.Failures) == 0 {
		t.Fatal("no layout failed — the test exercised nothing")
	}
	failedIdx := map[int]bool{}
	for _, f := range ds.Failures {
		failedIdx[f.Index] = true
		if !strings.Contains(f.Err, "inject") && !strings.Contains(f.Err, "panic") {
			t.Errorf("failure %d does not name the injected cause: %s", f.Index, f.Err)
		}
	}
	if got := ds.EffectiveN(); got != 30-len(ds.Failures) {
		t.Fatalf("EffectiveN = %d with %d failures in 30", got, len(ds.Failures))
	}
	for i := range ds.Obs {
		if failedIdx[i] {
			if ds.Obs[i].Status != core.StatusFailed || ds.Obs[i].Cycles != 0 {
				t.Fatalf("failed layout %d: status %v, cycles %d", i, ds.Obs[i].Status, ds.Obs[i].Cycles)
			}
			continue
		}
		if ds.Obs[i].Measurement != clean.Obs[i].Measurement {
			t.Fatalf("surviving layout %d differs from clean run", i)
		}
	}
	if n := len(ds.CPIs()); n != ds.EffectiveN() {
		t.Fatalf("CPIs() returned %d values for effective sample %d", n, ds.EffectiveN())
	}
	model, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit.N != ds.EffectiveN() {
		t.Errorf("model fitted on %d points, effective sample is %d", model.Fit.N, ds.EffectiveN())
	}

	// Downstream sweeps run over the effective sample only: failed layouts
	// are skipped, not fabricated.
	evals, err := ds.EvaluatePredictors(model, []branch.Factory{
		{Name: "bimodal-64", New: func() branch.Predictor { return branch.NewBimodal(64) }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(evals[0].MPKIPerLayout); got != ds.EffectiveN() {
		t.Fatalf("MPKIPerLayout has %d entries, effective sample is %d", got, ds.EffectiveN())
	}
	for k, v := range evals[0].MPKIPerLayout {
		if math.IsNaN(v) {
			t.Fatalf("MPKIPerLayout[%d] is NaN with no eval-sweep failures", k)
		}
	}
}

// TestCampaignAbortsOverBudget: once more layouts fail than the budget
// allows, the campaign aborts with an error identifying both the abort
// and the injected cause.
func TestCampaignAbortsOverBudget(t *testing.T) {
	cfg := smallCampaign(10)
	cfg.MaxAttempts = 1
	cfg.FailureBudget = 2
	cfg.Faults = faultinject.New(2, faultinject.Config{
		Measure: faultinject.Rates{Error: 1, MaxFaults: 10},
	})
	_, err := core.RunCampaign(cfg)
	if !errors.Is(err, core.ErrSweepAborted) {
		t.Fatalf("error %v does not wrap ErrSweepAborted", err)
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error %v does not name the injected cause", err)
	}
}

// TestOutlierScreenRepairsCorruptMeasurements: a corrupted measurement is
// internally consistent (it passes Measurement.Check), so only the MAD
// screen can catch it. With the screen on, the corrupted observations are
// re-measured and the final dataset is bit-identical to the clean run.
func TestOutlierScreenRepairsCorruptMeasurements(t *testing.T) {
	clean, err := core.RunCampaign(smallCampaign(40))
	if err != nil {
		t.Fatal(err)
	}

	cfg := smallCampaign(40)
	cfg.MaxAttempts = 1
	cfg.OutlierMAD = 10
	inj := faultinject.New(8, faultinject.Config{
		Measure: faultinject.Rates{Corrupt: 0.1},
	})
	cfg.Faults = inj
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := inj.Counts(faultinject.SiteMeasure)[faultinject.KindCorrupt]
	if corrupted == 0 {
		t.Fatal("no measurement was corrupted — the test exercised nothing")
	}
	repaired := 0
	for i := range ds.Obs {
		if ds.Obs[i].Measurement != clean.Obs[i].Measurement {
			t.Fatalf("layout %d still corrupted after the outlier screen (CPI %.3f vs %.3f)",
				i, ds.Obs[i].CPI(), clean.Obs[i].CPI())
		}
		if ds.Obs[i].Status == core.StatusRetried {
			repaired++
		}
	}
	if repaired != corrupted {
		t.Errorf("%d observations marked retried, %d were corrupted", repaired, corrupted)
	}
}

// TestOutlierScreenKeepsGenuineOutliers: with no corruption, the screen
// re-measures anything it flags, gets the identical result back, and
// changes nothing — a heavy-tailed layout is data, not an artifact.
func TestOutlierScreenKeepsGenuineOutliers(t *testing.T) {
	base, err := core.RunCampaign(smallCampaign(40))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCampaign(40)
	cfg.OutlierMAD = 1 // aggressive: flags ordinary spread
	screened, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range screened.Obs {
		if screened.Obs[i] != base.Obs[i] {
			t.Fatalf("screen with no corruption changed observation %d", i)
		}
	}
}

// TestCampaignContextCancel: a canceled config context aborts the
// campaign with the cancellation as cause.
func TestCampaignContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallCampaign(10)
	cfg.Context = ctx
	_, err := core.RunCampaign(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled campaign returned %v", err)
	}
}
