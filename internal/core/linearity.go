package core

import (
	"context"
	"errors"
	"fmt"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/obs"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// LinearityConfig drives the §3 simulation study: a fixed layout, a sweep
// of predictor configurations through the timing simulator, and a
// regression test of how linearly CPI follows MPKI.
type LinearityConfig struct {
	Program   *isa.Program
	InputSeed uint64
	Budget    uint64
	// Configs is the predictor sweep; zero-length means
	// branch.ConfigSpace(branch.PaperConfigCount) — the paper's 145.
	Configs []branch.Factory
	// Machine overrides the simulator configuration.
	Machine machine.Config
	Workers int

	// Context cancels the sweep; nil means context.Background().
	Context context.Context
	// FailureBudget tolerates up to this many failed predictor
	// configurations: the fit proceeds over the surviving points and
	// Skipped records what was dropped. Zero aborts on the first failure.
	FailureBudget int

	// Obs optionally observes the sweep (metrics + a span). Nil disables.
	Obs *obs.Observer
}

// LinearityPoint is one simulated (MPKI, CPI) pair.
type LinearityPoint struct {
	Config string
	MPKI   float64
	CPI    float64
}

// LinearityResult quantifies regression extrapolation error for one
// benchmark, Figure 4's two bars: estimating perfect-prediction CPI and
// L-TAGE CPI from the imperfect-predictor sweep.
type LinearityResult struct {
	Benchmark string
	Points    []LinearityPoint
	// Skipped names the predictor configurations whose simulation failed
	// within the failure budget; Points holds only the survivors.
	Skipped []string
	Fit     *stats.LinearFit

	// PerfectCPI is the simulated truth with the oracle predictor;
	// EstPerfectCPI is the regression estimate at 0 MPKI.
	PerfectCPI    float64
	EstPerfectCPI float64
	PerfectErrPct float64

	// LTAGE metrics parallel the perfect ones at L-TAGE's simulated MPKI.
	LTAGEMPKI   float64
	LTAGECPI    float64
	EstLTAGECPI float64
	LTAGEErrPct float64
}

// RunLinearityStudy sweeps predictor configurations through the timing
// model with noise disabled (a simulator has no noise) and measures how
// well linear regression extrapolates to perfect prediction and to
// L-TAGE, as in §3.2.
func RunLinearityStudy(cfg LinearityConfig) (*LinearityResult, error) {
	if cfg.Program == nil {
		return nil, errors.New("core: linearity study needs a program")
	}
	if cfg.Budget == 0 {
		return nil, errors.New("core: linearity study needs a budget")
	}
	configs := cfg.Configs
	if len(configs) == 0 {
		configs = branch.ConfigSpace(branch.PaperConfigCount)
	}
	mcfg := cfg.Machine
	if mcfg.Name == "" {
		mcfg = machine.XeonE5440()
	}

	trace, err := interp.Run(cfg.Program, cfg.InputSeed, interp.StopRule{Budget: cfg.Budget})
	if err != nil {
		return nil, err
	}
	// One fixed layout: the sweep varies the predictor, not the code.
	exe, err := toolchain.NewBuilder(cfg.Program, toolchain.CompileConfig{}, toolchain.LinkConfig{}).Build(1)
	if err != nil {
		return nil, err
	}

	run := func(m *machine.Machine, p branch.Predictor) (machine.Counters, error) {
		return m.Run(machine.RunSpec{
			Exe: exe, Trace: trace, Predictor: p, DisableNoise: true,
		})
	}

	res := &LinearityResult{
		Benchmark: cfg.Program.Name,
		Points:    make([]LinearityPoint, len(configs)),
	}

	// Each worker reuses one machine; points are written at distinct
	// indices, so only the index counter is shared. The sweep runs
	// supervised: a panicking or failing configuration is dropped (within
	// the failure budget) instead of discarding the whole study.
	workers := normalizeWorkers(cfg.Workers, len(configs))
	machines := make([]*machine.Machine, workers)
	for w := range machines {
		machines[w] = machine.New(mcfg)
	}
	span := rootSpan(cfg.Obs, "linearity", obs.SpanID(cfg.InputSeed, tagLinearity, hashName(cfg.Program.Name)))
	defer span.End()
	failed, err := superviseForT(cfg.Context, workers, len(configs), cfg.FailureBudget, newSupTel(cfg.Obs), func(w, i int) error {
		c, err := run(machines[w], configs[i].New())
		if err != nil {
			return fmt.Errorf("core: linearity config %s: %w", configs[i].Name, err)
		}
		res.Points[i] = LinearityPoint{Config: configs[i].Name, MPKI: c.MPKI(), CPI: c.CPI()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(failed) > 0 {
		drop := make(map[int]bool, len(failed))
		for _, f := range failed {
			drop[f.Index] = true
			res.Skipped = append(res.Skipped, configs[f.Index].Name)
		}
		kept := res.Points[:0]
		for i, p := range res.Points {
			if !drop[i] {
				kept = append(kept, p)
			}
		}
		res.Points = kept
	}

	// Reference runs: perfect oracle and L-TAGE, on a private machine.
	m := machine.New(mcfg)
	perfect, err := run(m, branch.Perfect{})
	if err != nil {
		return nil, err
	}
	ltage, err := run(m, branch.NewLTAGEDefault())
	if err != nil {
		return nil, err
	}

	mpkis := make([]float64, len(res.Points))
	cpis := make([]float64, len(res.Points))
	for i, p := range res.Points {
		mpkis[i] = p.MPKI
		cpis[i] = p.CPI
	}
	fit, err := stats.FitLinear(mpkis, cpis)
	if err != nil {
		return nil, fmt.Errorf("core: linearity fit for %s: %w", cfg.Program.Name, err)
	}
	res.Fit = fit

	res.PerfectCPI = perfect.CPI()
	res.EstPerfectCPI = fit.Predict(0)
	res.PerfectErrPct = pctErr(res.EstPerfectCPI, res.PerfectCPI)

	res.LTAGEMPKI = ltage.MPKI()
	res.LTAGECPI = ltage.CPI()
	res.EstLTAGECPI = fit.Predict(res.LTAGEMPKI)
	res.LTAGEErrPct = pctErr(res.EstLTAGECPI, res.LTAGECPI)
	return res, nil
}

func pctErr(est, truth float64) float64 {
	if truth == 0 {
		return 0
	}
	e := (est - truth) / truth * 100
	if e < 0 {
		return -e
	}
	return e
}
