package core

import (
	"interferometry/internal/pmc"
	"interferometry/internal/stats"
)

// ScreenResult records the §6.3 adaptive sampling outcome for one
// benchmark: how many layouts were needed before the t test on the
// CPI-vs-MPKI regression rejected the null hypothesis, or that it never
// did ("for the other benchmarks, there was not enough range of MPKI to
// predict CPI", §4.6).
type ScreenResult struct {
	Benchmark string
	Layouts   int
	// EffectiveN is the number of layouts with a usable measurement: in
	// a degraded campaign (failures within the budget) the t test runs
	// on EffectiveN points, not Layouts.
	EffectiveN  int
	Significant bool
	PValue      float64
	// NormalityP is the Jarque-Bera p-value of the CPI sample. §5.8
	// conditions the t test on approximate normality ("the observed CPI
	// of most of the benchmarks roughly follow a normal distribution");
	// a small value flags a benchmark whose t-test verdict deserves
	// extra scrutiny.
	NormalityP float64
	Dataset    *Dataset
}

// ScreenSignificance runs the paper's escalation protocol: sample
// `step` layouts at a time (the paper uses 100) up to maxLayouts (the
// paper stops at 300), stopping early once the MPKI model is significant
// at p <= 0.05.
func ScreenSignificance(cfg CampaignConfig, step, maxLayouts int) (*ScreenResult, error) {
	if step <= 0 {
		step = 100
	}
	if maxLayouts < step {
		maxLayouts = step
	}
	cfg.Layouts = step
	ds, err := RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	for {
		res := &ScreenResult{
			Benchmark:  ds.Benchmark,
			Layouts:    len(ds.Obs),
			EffectiveN: ds.EffectiveN(),
			Dataset:    ds,
		}
		_, res.NormalityP = stats.JarqueBera(ds.CPIs())
		model, err := ds.FitCPI(pmc.EvBranchMispredicts)
		if err == nil {
			res.PValue = model.Fit.PValue
			res.Significant = model.Significant()
		} else {
			// A constant MPKI across layouts means no correlation can be
			// established — the benchmark fails the screen.
			res.PValue = 1
		}
		if res.Significant || len(ds.Obs)+step > maxLayouts {
			return res, nil
		}
		ds, err = ds.Extend(step)
		if err != nil {
			return nil, err
		}
	}
}
