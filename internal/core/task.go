package core

// ObsWire is the JSON wire form of an Observation, used by campaignd's
// coordinator/worker protocol to stream completed measurements back to
// the coordinator. It mirrors the checkpoint record (minus the campaign
// index, which the surrounding message carries), so anything the
// checkpoint can round-trip the wire can too.
type ObsWire struct {
	LayoutSeed   uint64   `json:"layout_seed"`
	HeapSeed     uint64   `json:"heap_seed"`
	Cycles       uint64   `json:"cycles"`
	Instructions uint64   `json:"instructions"`
	Events       []uint64 `json:"events"`
	Runs         int      `json:"runs"`
	Status       uint8    `json:"status"`
	Attempts     int      `json:"attempts"`

	// Fingerprint is the observation's attestation (see Attest): a
	// versioned hash chain over the toolchain identity and every wire
	// field, stamped worker-side and re-derived coordinator-side.
	// Omitted from checkpoints and local results, which never cross a
	// trust boundary.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Wire converts an observation for transport.
func (o Observation) Wire() ObsWire {
	return ObsWire{
		LayoutSeed:   o.LayoutSeed,
		HeapSeed:     o.HeapSeed,
		Cycles:       o.Cycles,
		Instructions: o.Instructions,
		Events:       append([]uint64(nil), o.Events[:]...),
		Runs:         o.Runs,
		Status:       uint8(o.Status),
		Attempts:     o.Attempts,
	}
}

// Observation rebuilds the in-memory observation.
func (w ObsWire) Observation() Observation {
	o := Observation{
		LayoutSeed: w.LayoutSeed,
		HeapSeed:   w.HeapSeed,
		Status:     ObsStatus(w.Status),
		Attempts:   w.Attempts,
	}
	o.Cycles = w.Cycles
	o.Instructions = w.Instructions
	o.Runs = w.Runs
	copy(o.Events[:], w.Events)
	return o
}
