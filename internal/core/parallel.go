package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// normalizeWorkers clamps a requested worker count to [1, n], defaulting
// to GOMAXPROCS.
func normalizeWorkers(requested, n int) int {
	workers := requested
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// PanicError is a worker panic recovered by the supervised pool. The
// sweep survives: the panic is converted into a per-index error instead
// of killing the process.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("worker panic: %v", e.Value)
}

// IndexError ties a sweep failure to the index that failed.
type IndexError struct {
	Index int
	Err   error
}

func (e *IndexError) Error() string { return fmt.Sprintf("index %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *IndexError) Unwrap() error { return e.Err }

// ErrSweepAborted marks a supervised sweep that stopped before visiting
// every index, because its failure budget was exhausted.
var ErrSweepAborted = errors.New("core: sweep aborted")

// superviseFor runs fn(worker, i) for every i in [0, n) across workers
// goroutines. Indices are handed out from a lock-free atomic counter and
// callers write results at distinct indices, so the only synchronized
// state is the counter and the failure list.
//
// Unlike a naive parallel loop, the pool is supervised:
//
//   - a panic in fn is recovered into a *PanicError and treated as that
//     index's failure — one bad layout cannot kill the process;
//   - failures do not abort the sweep immediately: up to budget failed
//     indices are tolerated and reported in the returned slice (sorted by
//     index), letting callers degrade instead of discarding completed work;
//   - once more than budget indices have failed the pool stops handing
//     out new indices and returns ErrSweepAborted joined with every
//     recorded failure;
//   - ctx cancellation (nil means context.Background()) likewise drains
//     the pool and returns the cancellation cause.
//
// All workers have exited when superviseFor returns, whatever the
// outcome: the pool never leaks goroutines.
func superviseFor(ctx context.Context, workers, n, budget int, fn func(worker, i int) error) ([]*IndexError, error) {
	return superviseForT(ctx, workers, n, budget, nil, fn)
}

// superviseForT is superviseFor with optional telemetry: per-worker
// busy/idle time and per-index queue wait flow into tel's instruments.
// A nil tel keeps the loop exactly as cheap as the untelemetered form —
// no clock is read.
func superviseForT(ctx context.Context, workers, n, budget int, tel *supTel, fn func(worker, i int) error) ([]*IndexError, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if budget < 0 {
		budget = 0
	}
	var (
		next   atomic.Int64
		stop   atomic.Bool
		mu     sync.Mutex
		failed []*IndexError
		wg     sync.WaitGroup
	)
	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Telemetry clocks: free marks when the worker last became
			// available (goroutine start, or the previous fn returning);
			// the gap to the next fn start is that index's queue wait,
			// and whatever is not busy time is idle time.
			var born, free time.Time
			var busy time.Duration
			if tel != nil {
				born = time.Now()
				free = born
				defer func() {
					tel.busy.Add(busy.Seconds())
					tel.idle.Add((time.Since(born) - busy).Seconds())
				}()
			}
			for {
				if stop.Load() || canceled() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				var t0 time.Time
				if tel != nil {
					t0 = time.Now()
					tel.wait.Observe(t0.Sub(free).Seconds())
				}
				err := runGuarded(fn, w, i)
				if tel != nil {
					free = time.Now()
					busy += free.Sub(t0)
				}
				if err != nil {
					mu.Lock()
					failed = append(failed, &IndexError{Index: i, Err: err})
					if len(failed) > budget {
						stop.Store(true)
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
	if canceled() {
		errs := make([]error, 0, len(failed)+1)
		errs = append(errs, context.Cause(ctx))
		for _, f := range failed {
			errs = append(errs, f)
		}
		return failed, errors.Join(errs...)
	}
	if len(failed) > budget {
		errs := make([]error, 0, len(failed)+1)
		errs = append(errs, fmt.Errorf("%w: %d failures exceed budget %d", ErrSweepAborted, len(failed), budget))
		for _, f := range failed {
			errs = append(errs, f)
		}
		return failed, errors.Join(errs...)
	}
	return failed, nil
}

// superviseChunksT is superviseForT with chunked dispatch: indices are
// handed out as contiguous chunks of up to chunk indices, and fn
// processes one chunk per call, reporting per-index failures through its
// fail callback. The chunk is a unit of dispatch, never of failure — one
// bad index fails alone and the rest of its chunk proceeds — so the
// failure budget, abort and cancellation semantics match superviseForT
// index for index. fn is expected to guard its own per-index work; a
// panic escaping fn itself is recovered and attributed to the chunk's
// first index.
func superviseChunksT(ctx context.Context, workers, n, chunk, budget int, tel *supTel, fn func(worker, lo, hi int, fail func(i int, err error))) ([]*IndexError, error) {
	if n <= 0 {
		return nil, nil
	}
	if chunk < 1 {
		chunk = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if budget < 0 {
		budget = 0
	}
	nChunks := (n + chunk - 1) / chunk
	var (
		next   atomic.Int64
		stop   atomic.Bool
		mu     sync.Mutex
		failed []*IndexError
		wg     sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		failed = append(failed, &IndexError{Index: i, Err: err})
		if len(failed) > budget {
			stop.Store(true)
		}
		mu.Unlock()
	}
	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var born, free time.Time
			var busy time.Duration
			if tel != nil {
				born = time.Now()
				free = born
				defer func() {
					tel.busy.Add(busy.Seconds())
					tel.idle.Add((time.Since(born) - busy).Seconds())
				}()
			}
			for {
				if stop.Load() || canceled() {
					return
				}
				ci := int(next.Add(1)) - 1
				if ci >= nChunks {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				var t0 time.Time
				if tel != nil {
					t0 = time.Now()
					// Every index in the chunk spent this gap queued
					// behind the worker, so the wait histogram keeps its
					// per-index cardinality under chunked dispatch.
					wait := t0.Sub(free).Seconds()
					for i := lo; i < hi; i++ {
						tel.wait.Observe(wait)
					}
				}
				if err := runGuarded(func(_, _ int) error {
					fn(w, lo, hi, fail)
					return nil
				}, w, lo); err != nil {
					fail(lo, err)
				}
				if tel != nil {
					free = time.Now()
					busy += free.Sub(t0)
				}
			}
		}(w)
	}
	wg.Wait()
	sort.Slice(failed, func(a, b int) bool { return failed[a].Index < failed[b].Index })
	if canceled() {
		errs := make([]error, 0, len(failed)+1)
		errs = append(errs, context.Cause(ctx))
		for _, f := range failed {
			errs = append(errs, f)
		}
		return failed, errors.Join(errs...)
	}
	if len(failed) > budget {
		errs := make([]error, 0, len(failed)+1)
		errs = append(errs, fmt.Errorf("%w: %d failures exceed budget %d", ErrSweepAborted, len(failed), budget))
		for _, f := range failed {
			errs = append(errs, f)
		}
		return failed, errors.Join(errs...)
	}
	return failed, nil
}

// runGuarded invokes fn(w, i), converting a panic into a *PanicError.
func runGuarded(fn func(worker, i int) error, w, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(w, i)
}

// parallelFor is the zero-tolerance form of superviseFor: the first
// failed index aborts the sweep and is returned (joined with
// ErrSweepAborted). Panics are still recovered, workers still drain.
func parallelFor(workers, n int, fn func(worker, i int) error) error {
	_, err := superviseFor(context.Background(), workers, n, 0, fn)
	return err
}
