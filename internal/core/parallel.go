package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// normalizeWorkers clamps a requested worker count to [1, n], defaulting
// to GOMAXPROCS.
func normalizeWorkers(requested, n int) int {
	workers := requested
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelFor runs fn(worker, i) for every i in [0, n) across workers
// goroutines. Indices are handed out from a lock-free atomic counter;
// callers write results at distinct indices, so the only synchronized
// state is the counter and the first-error capture. The first error stops
// the sweep and is returned. worker identifies the goroutine in
// [0, workers) so callers can give each its own machine or harness.
func parallelFor(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
