package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// fuzzHeader is the campaign identity used for valid corpus entries.
var fuzzHeader = ckptHeader{
	V: checkpointVersion, Benchmark: "fuzz.bench", BaseSeed: 42,
	InputSeed: 1, Budget: 100_000, FirstLayout: 0, Layouts: 64,
	HeapMode: 1, Fidelity: 1, RunsPerGroup: 5,
}

// fuzzCheckpointBytes renders a checkpoint file for the seed corpus.
func fuzzCheckpointBytes(recs ...ckptRecord) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	_ = enc.Encode(fuzzHeader)
	for _, r := range recs {
		_ = enc.Encode(r)
	}
	return buf.Bytes()
}

// FuzzCheckpointRoundTrip pins the checkpoint file format: parsing
// arbitrary bytes never panics, and anything readCheckpoint accepts
// survives a rewrite through checkpointWriter.flushLocked and a
// re-read with every record intact.
func FuzzCheckpointRoundTrip(f *testing.F) {
	full := fuzzCheckpointBytes(
		ckptRecord{Index: 0, LayoutSeed: 3, HeapSeed: 7, Cycles: 900, Instructions: 800,
			Events: []uint64{1, 2, 3, 4, 5}, Runs: 15, Status: uint8(StatusOK), Attempts: 1},
		ckptRecord{Index: 5, LayoutSeed: 11, HeapSeed: 13, Cycles: 1200, Instructions: 800,
			Events: []uint64{9, 8, 7, 6, 5}, Runs: 15, Status: uint8(StatusRetried), Attempts: 3},
		ckptRecord{Index: 6, LayoutSeed: 17, Status: uint8(StatusFailed), Attempts: 2},
	)
	f.Add(full)
	f.Add(full[:len(full)-9]) // torn final line (kill mid-write)
	f.Add(append(append([]byte{}, full...), []byte("{corrupt\n")...))
	f.Add([]byte(""))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"v":999}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, CheckpointFile)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Parse against the header the file itself claims, so valid
		// mutated headers still exercise the record path.
		want := fuzzHeader
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			var hdr ckptHeader
			if json.Unmarshal(data[:i], &hdr) == nil {
				want = hdr
			}
		}
		recs, err := readCheckpoint(path, want)
		if err != nil {
			return // rejected input: rejection must be graceful, nothing more
		}

		// Rewrite through the campaign's own writer and read it back.
		w := &checkpointWriter{
			path:   filepath.Join(dir, "rewritten.jsonl"),
			header: want,
			recs:   make(map[int]ckptRecord, len(recs)),
		}
		for _, r := range recs {
			w.recs[r.Index] = r
		}
		w.mu.Lock()
		err = w.flushLocked()
		w.mu.Unlock()
		if err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := readCheckpoint(w.path, want)
		if err != nil {
			t.Fatalf("rewritten checkpoint rejected: %v", err)
		}

		// Compare as maps keyed by index: the writer keeps the last
		// record per index, exactly like a resume would.
		first := make(map[int]ckptRecord, len(recs))
		for _, r := range recs {
			first[r.Index] = r
		}
		second := make(map[int]ckptRecord, len(again))
		for _, r := range again {
			second[r.Index] = r
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("round trip changed records:\nfirst  %+v\nsecond %+v", first, second)
		}
	})
}
