package core

import (
	"fmt"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// This file is the genome side of the per-layout pipeline: search
// campaigns measure explicit layout permutations (toolchain.Genome)
// instead of seed-derived reorderings, but everything downstream of the
// build — the counter harness, the plausibility check, the batched
// replay, fault injection — is shared with the seed path. A genome's
// stable identity is its fingerprint; it plays the role the layout seed
// plays for indexed layouts: it keys the fault streams, the heap and
// noise seed derivations, the artifact cache, and the provenance check
// on results streamed back from remote workers. Fingerprints are forced
// even and layout seeds forced odd, so the two keyspaces never collide
// in a shared cache or fault plan.

// genomeSeam is the build seam of the search path: an explicit
// permutation in, an executable out. Builder and CachedBuilder satisfy
// it.
type genomeSeam interface {
	BuildGenome(g toolchain.Genome) (*toolchain.Executable, error)
}

// genomeHeapSeed derives the heap-randomizer seed of a genome from its
// fingerprint, with the same nonzero guarantee as the indexed heapSeed.
func (c *CampaignConfig) genomeHeapSeed(fp uint64) uint64 {
	if s := xrand.Mix(c.BaseSeed, 0x68656170, fp); s != 0 {
		return s
	}
	return 0x68656170
}

// genomeNoiseSeed derives the noise stream of a genome from its
// fingerprint, nonzero like genomeHeapSeed.
func (c *CampaignConfig) genomeNoiseSeed(fp uint64) uint64 {
	if s := xrand.Mix(c.BaseSeed, 0x6e6f6973, fp); s != 0 {
		return s
	}
	return 0x6e6f6973
}

// genomeBuildAdapter presents one genome build as a seed-keyed Builder
// so the fault injector can wrap it: the injector keys its fault
// streams off the seed argument, and buildGenome passes the genome's
// fingerprint, giving every genome its own deterministic fault draw
// exactly as every layout seed gets one.
type genomeBuildAdapter struct {
	gb genomeSeam
	g  toolchain.Genome
}

func (a *genomeBuildAdapter) Build(uint64) (*toolchain.Executable, error) {
	return a.gb.BuildGenome(a.g)
}

// buildGenome is one attempt through the genome build seam: explicit
// reorder+link plus the executable integrity check. Faults, when
// configured, wrap per call and key off the fingerprint.
func buildGenome(cfg *CampaignConfig, co *campaignObs, gb genomeSeam, g toolchain.Genome, w int) (*toolchain.Executable, error) {
	fp := g.Fingerprint()
	st := co.stageStart("compile", fp, tagCompile, w)
	defer st.end()
	var build buildSeam = &genomeBuildAdapter{gb: gb, g: g}
	if cfg.Faults != nil {
		build = cfg.Faults.WrapBuilder(build)
	}
	exe, err := build.Build(fp)
	if err != nil {
		return nil, fmt.Errorf("core: genome %016x: %w", fp, err)
	}
	if err := toolchain.CheckExecutable(exe, -1); err != nil {
		return nil, fmt.Errorf("core: genome %016x: %w", fp, err)
	}
	return exe, nil
}

// BuildGenome runs one attempt through the genome build seam: explicit
// reorder+link plus the executable integrity check. Panics from the
// seam (injected or real) propagate; callers run under Guard.
func (r *LayoutRunner) BuildGenome(g toolchain.Genome) (*toolchain.Executable, error) {
	if r.co != nil {
		r.co.attempts.Inc()
	}
	return buildGenome(&r.cfg, r.co, r.gb, g, 0)
}

// MeasureGenome runs one attempt through the measure seam on worker
// slot w for a built genome. The heap and noise seeds derive from the
// genome's fingerprint, so any executable built for the genome measures
// identically wherever it runs; the plausibility check records the
// fingerprint as the run's layout seed with layout index -1 (genomes
// have no campaign-local index).
func (r *LayoutRunner) MeasureGenome(w int, g toolchain.Genome, exe *toolchain.Executable) (Observation, error) {
	if w < 0 || w >= len(r.meas) {
		return Observation{}, fmt.Errorf("core: worker slot %d outside [0,%d)", w, len(r.meas))
	}
	return measureGenomeBuilt(&r.cfg, r.co, r.meas[w], r.trace, exe, g.Fingerprint(), w)
}

// measureGenomeBuilt mirrors measureBuilt with the genome fingerprint
// standing in for the layout seed.
func measureGenomeBuilt(cfg *CampaignConfig, co *campaignObs, meas measureSeam, trace *interp.Trace, exe *toolchain.Executable, fp uint64, w int) (Observation, error) {
	hs := uint64(0)
	if cfg.HeapMode == heap.ModeRandomized {
		hs = cfg.genomeHeapSeed(fp)
	}
	ns := cfg.genomeNoiseSeed(fp)
	st := co.stageStart("run", fp, tagRun, w)
	m, err := meas.Measure(machine.RunSpec{
		Exe:       exe,
		Trace:     trace,
		HeapMode:  cfg.HeapMode,
		HeapSeed:  hs,
		NoiseSeed: ns,
	})
	st.end()
	if err != nil {
		return Observation{}, fmt.Errorf("core: genome %016x: %w", fp, err)
	}
	st = co.stageStart("fit", fp, tagFit, w)
	err = m.Check(trace.Instrs, pmc.RunID{
		Layout:     -1,
		LayoutSeed: fp,
		HeapSeed:   hs,
		NoiseSeed:  ns,
	})
	st.end()
	if err != nil {
		return Observation{}, fmt.Errorf("core: genome %016x: %w", fp, err)
	}
	return Observation{LayoutSeed: fp, HeapSeed: hs, Measurement: m}, nil
}

// PrimeGenomes walks the trace once for a group of built genomes on
// worker slot w, priming the slot's harness exactly like PrimeBatch
// does for indexed layouts. Priming is a pure accelerator: the batched
// replay is pinned bit-identical to the sequential one, and a declined
// prime costs nothing — MeasureGenome simply replays sequentially. The
// exe pointers passed here must be the same pointers later passed to
// MeasureGenome: the det cache matches on executable identity.
func (r *LayoutRunner) PrimeGenomes(w int, gs []toolchain.Genome, exes []*toolchain.Executable) error {
	if w < 0 || w >= len(r.meas) {
		return fmt.Errorf("core: worker slot %d outside [0,%d)", w, len(r.meas))
	}
	if len(gs) != len(exes) {
		return fmt.Errorf("core: %d genomes with %d executables", len(gs), len(exes))
	}
	if r.cfg.Fidelity == pmc.FidelityPaperNaive || len(gs) < 2 || len(gs) > 64 {
		return nil
	}
	slot := r.slots[w]
	if slot == nil || slot.batch.MaxLanes() < len(gs) {
		b, err := machine.NewBatch(r.cfg.machineConfig(), len(gs))
		if err != nil {
			return err
		}
		slot = &batchSlot{batch: b, cache: &detCache{}}
		if r.cfg.Delta != DeltaOff {
			slot.delta = getDelta(r.cfg.machineConfig(), len(gs))
		}
		r.slots[w] = slot
		r.harnesses[w].Det = slot.cache
	}
	slot.cache.reset()
	slot.specs = slot.specs[:0]
	for j := range gs {
		hs := uint64(0)
		if r.cfg.HeapMode == heap.ModeRandomized {
			hs = r.cfg.genomeHeapSeed(gs[j].Fingerprint())
		}
		slot.specs = append(slot.specs, machine.RunSpec{
			Exe:      exes[j],
			Trace:    r.trace,
			HeapMode: r.cfg.HeapMode,
			HeapSeed: hs,
		})
	}
	cs, dets, err := slot.run(&r.cfg)
	if err != nil {
		return err
	}
	for j := range slot.specs {
		slot.cache.put(slot.specs[j], cs[j], dets[j])
	}
	return nil
}

// FailedGenomeObservation is the observation recorded for a genome that
// exhausted its attempts: the fingerprint-derived seeds with zero
// counters and StatusFailed, mirroring FailedObservation.
func (r *LayoutRunner) FailedGenomeObservation(g toolchain.Genome, attempts int) Observation {
	fp := g.Fingerprint()
	o := Observation{LayoutSeed: fp, Status: StatusFailed, Attempts: attempts}
	if r.cfg.HeapMode == heap.ModeRandomized {
		o.HeapSeed = r.cfg.genomeHeapSeed(fp)
	}
	return o
}

// GenomeFingerprintSeed exposes the fingerprint a scheduler should
// expect on observations streamed back for a genome — the provenance
// check mirroring LayoutSeed for indexed layouts.
func GenomeFingerprintSeed(g toolchain.Genome) uint64 { return g.Fingerprint() }
