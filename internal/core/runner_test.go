package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"interferometry/internal/core"
	"interferometry/internal/faultinject"
	"interferometry/internal/jobqueue/backoff"
)

// TestLayoutRunnerMatchesRunCampaign drives every layout through the
// exported runner — out of order, on varying worker slots — and checks
// the assembled dataset is interchangeable with RunCampaign's.
func TestLayoutRunnerMatchesRunCampaign(t *testing.T) {
	cfg := smallCampaign(8)
	want, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	r, err := core.NewLayoutRunner(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Layouts() != 8 || r.Workers() != 3 {
		t.Fatalf("Layouts()=%d Workers()=%d", r.Layouts(), r.Workers())
	}
	obs := make([]core.Observation, 8)
	for n, i := range []int{5, 0, 7, 2, 1, 6, 3, 4} {
		exe, err := r.BuildLayout(i)
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		o, err := r.MeasureLayout(n%3, i, exe)
		if err != nil {
			t.Fatalf("measure %d: %v", i, err)
		}
		obs[i] = core.CompletedObservation(o, 1)
	}
	ds, err := r.Dataset(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Obs) != len(want.Obs) {
		t.Fatalf("got %d observations, want %d", len(ds.Obs), len(want.Obs))
	}
	for i := range want.Obs {
		if ds.Obs[i] != want.Obs[i] {
			t.Fatalf("observation %d differs: runner %+v vs campaign %+v", i, ds.Obs[i], want.Obs[i])
		}
	}
	if ds.Trace.Instrs != want.Trace.Instrs {
		t.Error("trace differs between runner and campaign")
	}
}

// TestLayoutRunnerRepeatedExecutionIdentical re-runs the same layout:
// duplicate executions (the lease-expiry case) must be byte-identical.
func TestLayoutRunnerRepeatedExecutionIdentical(t *testing.T) {
	r, err := core.NewLayoutRunner(smallCampaign(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	var prev core.Observation
	for n := 0; n < 3; n++ {
		exe, err := r.BuildLayout(1)
		if err != nil {
			t.Fatal(err)
		}
		o, err := r.MeasureLayout(n%2, 1, exe)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 && o != prev {
			t.Fatalf("execution %d of layout 1 differs: %+v vs %+v", n, o, prev)
		}
		prev = o
	}
}

func TestLayoutRunnerValidation(t *testing.T) {
	if _, err := core.NewLayoutRunner(core.CampaignConfig{}, 1); err == nil {
		t.Error("empty config accepted")
	}
	r, err := core.NewLayoutRunner(smallCampaign(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.BuildLayout(2); err == nil {
		t.Error("out-of-range layout accepted by BuildLayout")
	}
	if _, err := r.MeasureLayout(1, 0, nil); err == nil {
		t.Error("out-of-range worker slot accepted by MeasureLayout")
	}
	fo := r.FailedObservation(1, 3)
	if fo.Status != core.StatusFailed || fo.Attempts != 3 || fo.LayoutSeed == 0 || fo.Cycles != 0 {
		t.Errorf("FailedObservation = %+v", fo)
	}
	if _, err := r.Dataset(make([]core.Observation, 1), nil); err == nil {
		t.Error("short observation slice accepted by Dataset")
	}
}

// TestLayoutRunnerSeamsCarryFaults: the runner's seams include the
// configured injector, and Guard converts an injected panic into a
// retriable error exactly like the in-process supervisor.
func TestLayoutRunnerSeamsCarryFaults(t *testing.T) {
	cfg := smallCampaign(2)
	cfg.Faults = faultinject.New(11, faultinject.Config{
		Build: faultinject.Rates{Panic: 1, MaxFaults: 1},
	})
	r, err := core.NewLayoutRunner(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	var exeErr error
	err = core.Guard(func() error {
		_, exeErr = r.BuildLayout(0)
		return exeErr
	})
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("guarded injected panic returned %v, want *PanicError", err)
	}
	// MaxFaults exhausted: the retry goes clean.
	if _, err := r.BuildLayout(0); err != nil {
		t.Fatalf("retry after injected panic: %v", err)
	}
	if err := core.Guard(func() error { return nil }); err != nil {
		t.Fatalf("Guard(nil func) = %v", err)
	}
}

// TestCheckpointSinkRoundTrip writes observations through the sink and
// resumes them through a second sink and through RunCampaign itself.
func TestCheckpointSinkRoundTrip(t *testing.T) {
	cfg := smallCampaign(4)
	cfg.Checkpoint = core.CheckpointConfig{Dir: t.TempDir()}
	want, err := core.RunCampaign(smallCampaign(4))
	if err != nil {
		t.Fatal(err)
	}

	sink, err := core.OpenCheckpointSink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.Restored()) != 0 {
		t.Fatalf("fresh sink restored %d observations", len(sink.Restored()))
	}
	// Persist half the campaign, as a partial run would.
	sink.Put(0, want.Obs[0])
	sink.Put(2, want.Obs[2])
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint.Resume = true
	resumed, err := core.OpenCheckpointSink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.Restored()
	if len(got) != 2 || got[0] != want.Obs[0] || got[2] != want.Obs[2] {
		t.Fatalf("restored %+v, want layouts 0 and 2", got)
	}
	sink.Put(1, want.Obs[1]) // writes after Close surface at the writer; just finish the resumed sink
	resumed.Put(1, want.Obs[1])
	resumed.Put(3, want.Obs[3])
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}

	// The completed checkpoint resumes under RunCampaign byte-identically.
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Obs {
		if ds.Obs[i] != want.Obs[i] {
			t.Fatalf("observation %d differs after checkpoint resume", i)
		}
	}
	if _, err := core.OpenCheckpointSink(smallCampaign(1)); err == nil {
		t.Error("sink without a directory accepted")
	}
}

// TestCampaignBackoffSpacesRetries: a faulty campaign with a backoff
// policy still converges to the clean result, and cancellation during a
// backoff sleep aborts the campaign promptly.
func TestCampaignBackoffSpacesRetries(t *testing.T) {
	clean, err := core.RunCampaign(smallCampaign(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCampaign(6)
	cfg.MaxAttempts = 3
	cfg.Faults = faultinject.New(21, faultinject.Config{
		Measure: faultinject.Rates{Error: 0.5, MaxFaults: 2},
	})
	cfg.Backoff = backoff.Policy{Base: time.Millisecond, Cap: 4 * time.Millisecond, Jitter: 0.5}
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	retried := 0
	for i := range ds.Obs {
		if ds.Obs[i].Status == core.StatusRetried {
			retried++
		}
		if ds.Obs[i].Cycles != clean.Obs[i].Cycles || ds.Obs[i].LayoutSeed != clean.Obs[i].LayoutSeed {
			t.Fatalf("observation %d differs from clean run under backoff", i)
		}
	}
	if retried == 0 {
		t.Error("fault injection at 50% never forced a retry")
	}

	// A canceled context interrupts the backoff sleep with the cause.
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("operator stop"))
	cfg2 := smallCampaign(2)
	cfg2.Context = ctx
	cfg2.MaxAttempts = 3
	cfg2.Backoff = backoff.Policy{Base: time.Minute}
	cfg2.Faults = faultinject.New(3, faultinject.Config{
		Measure: faultinject.Rates{Error: 1, MaxFaults: 1},
	})
	start := time.Now()
	if _, err := core.RunCampaign(cfg2); err == nil {
		t.Fatal("canceled campaign succeeded")
	}
	if time.Since(start) > 10*time.Second {
		t.Error("cancellation did not interrupt the backoff sleep")
	}
}
