package core

import (
	"errors"
	"fmt"
	"math"

	"interferometry/internal/pmc"
	"interferometry/internal/stats"
)

// Model is a fitted single-event performance model: CPI = Slope*PKI + b,
// the paper's central artifact (§6.6, Table 1).
type Model struct {
	Benchmark string
	Event     pmc.Event
	Fit       *stats.LinearFit
}

// FitCPI regresses CPI on the given event's per-kilo-instruction rate.
// Failed layouts are excluded: the fit runs on the dataset's effective
// sample (Fit.N reports it).
func (d *Dataset) FitCPI(ev pmc.Event) (*Model, error) {
	span := sweepSpan(&d.Config, "model-fit", tagModelFit)
	defer span.End()
	if d.EffectiveN() < 3 {
		return nil, stats.ErrInsufficientData
	}
	fit, err := stats.FitLinear(d.PKIs(ev), d.CPIs())
	if err != nil {
		return nil, fmt.Errorf("core: %s vs %s: %w", d.Benchmark, ev, err)
	}
	return &Model{Benchmark: d.Benchmark, Event: ev, Fit: fit}, nil
}

// MPKIModel is FitCPI for branch mispredictions, the paper's headline
// model.
func (d *Dataset) MPKIModel() (*Model, error) {
	return d.FitCPI(pmc.EvBranchMispredicts)
}

// Significant reports whether the model rejects "no correlation" at the
// paper's p <= 0.05 level (§4.6).
func (m *Model) Significant() bool { return m.Fit.Significant(0.05) }

// PredictCPI returns the predicted CPI at an event rate with its 95%
// prediction interval — "we can be 95% sure that the CPI of 471.omnetpp
// with perfect branch prediction would be between 1.86 and 1.94" (§6.6).
func (m *Model) PredictCPI(pki float64) stats.Interval {
	return m.Fit.PredictionInterval(pki, 0.95)
}

// ConfidenceAt returns the 95% confidence interval of the mean CPI at an
// event rate.
func (m *Model) ConfidenceAt(pki float64) stats.Interval {
	return m.Fit.ConfidenceInterval(pki, 0.95)
}

// PerfectPrediction returns the model's extrapolation to a perfect
// structure (0 events per kilo-instruction) with its prediction interval:
// Table 1's "Low"/"High" columns.
func (m *Model) PerfectPrediction() stats.Interval {
	return m.PredictCPI(0)
}

// ReductionForCPIGain answers the paper's §1.4 planning question in
// reverse: what fractional reduction of the event rate (from the given
// current rate) is needed for a gainPct percent CPI improvement? For
// 400.perlbench the paper finds "a 10% improvement in CPI due to branch
// prediction improvement would require a 38% reduction in
// mispredictions". The result can exceed 1 (unachievable even at zero
// events) or be negative (gainPct <= 0); callers decide how to present
// those.
func (m *Model) ReductionForCPIGain(currentPKI, gainPct float64) float64 {
	if m.Fit.Slope == 0 || currentPKI == 0 {
		return math.Inf(1)
	}
	currentCPI := m.Fit.Predict(currentPKI)
	deltaCPI := currentCPI * gainPct / 100
	deltaPKI := deltaCPI / m.Fit.Slope
	return deltaPKI / currentPKI
}

// BootstrapCheck cross-checks the parametric confidence interval at an
// event rate with a paired-bootstrap percentile interval over the
// dataset the model was fitted from. §5.8 justifies the t machinery by
// approximate normality of the CPIs; when the two intervals agree, that
// assumption carried no risk. It returns (parametric, bootstrap).
func (m *Model) BootstrapCheck(d *Dataset, pki float64, reps int, seed uint64) (stats.Interval, stats.Interval, error) {
	param := m.ConfidenceAt(pki)
	boot, err := stats.BootstrapLineCI(d.PKIs(m.Event), d.CPIs(), pki, reps, seed, 0.95)
	if err != nil {
		return stats.Interval{}, stats.Interval{}, err
	}
	return param, boot, nil
}

// String renders the model like the paper quotes it: "CPI = 0.02799 *
// MPKI + 0.51667" (§4.5).
func (m *Model) String() string {
	return fmt.Sprintf("%s: CPI = %.5f * %s/KI + %.5f (r²=%.3f, p=%.4g, n=%d)",
		m.Benchmark, m.Fit.Slope, m.Event, m.Fit.Intercept, m.Fit.R2, m.Fit.PValue, m.Fit.N)
}

// CombinedModel is the multi-event regression of §6.1: CPI modeled on
// branch mispredictions, L1I misses and L2 misses together, judged by the
// F test (§6.2).
type CombinedModel struct {
	Benchmark string
	Events    []pmc.Event
	Fit       *stats.MultiFit
}

// FitCombined regresses CPI on several events jointly.
func (d *Dataset) FitCombined(evs ...pmc.Event) (*CombinedModel, error) {
	if len(evs) == 0 {
		return nil, errors.New("core: combined model needs events")
	}
	cols := make([][]float64, len(evs))
	for i, ev := range evs {
		cols[i] = d.PKIs(ev)
	}
	fit, err := stats.FitMultiple(cols, d.CPIs())
	if err != nil {
		return nil, fmt.Errorf("core: combined model for %s: %w", d.Benchmark, err)
	}
	return &CombinedModel{Benchmark: d.Benchmark, Events: evs, Fit: fit}, nil
}

// StandardCombined fits the paper's three-event combined model.
func (d *Dataset) StandardCombined() (*CombinedModel, error) {
	return d.FitCombined(pmc.EvBranchMispredicts, pmc.EvL1IMisses, pmc.EvL2Misses)
}

// Significant applies the F test at p <= 0.05.
func (c *CombinedModel) Significant() bool { return c.Fit.Significant(0.05) }
