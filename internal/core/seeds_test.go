package core

import (
	"fmt"
	"testing"
)

// TestSeedStreamsDisjoint pins the fix for the seed-derivation footgun:
// the three per-layout streams (layout, heap, noise) must never collide
// with each other, and the heap and noise streams must never produce 0 —
// heap seed 0 is the "no randomization" sentinel in recorded
// observations, so a derived 0 would silently disable randomization for
// one layout.
func TestSeedStreamsDisjoint(t *testing.T) {
	const indices = 10000
	for _, base := range []uint64{0, 1, 7, 0x1f2e3d4c, ^uint64(0)} {
		cfg := &CampaignConfig{BaseSeed: base}
		seen := make(map[uint64]string, 3*indices)
		for i := 0; i < indices; i++ {
			for _, s := range []struct {
				name string
				seed uint64
			}{
				{"layout", cfg.layoutSeed(i)},
				{"heap", cfg.heapSeed(i)},
				{"noise", cfg.noiseSeed(i)},
			} {
				if s.name != "layout" && s.seed == 0 {
					t.Fatalf("base %#x: %s seed 0 at index %d — zero must never reach the randomizer", base, s.name, i)
				}
				who := fmt.Sprintf("%s[%d]", s.name, i)
				if prev, dup := seen[s.seed]; dup {
					t.Fatalf("base %#x: seed %#x produced by both %s and %s", base, s.seed, prev, who)
				}
				seen[s.seed] = who
			}
		}
	}
}

// TestSeedStreamsExtendConsistent pins the property Extend depends on:
// offsetting FirstLayout shifts the streams, it does not reseed them.
func TestSeedStreamsExtendConsistent(t *testing.T) {
	a := &CampaignConfig{BaseSeed: 99}
	b := &CampaignConfig{BaseSeed: 99, FirstLayout: 40}
	for i := 0; i < 100; i++ {
		if a.layoutSeed(40+i) != b.layoutSeed(i) {
			t.Fatalf("layout stream breaks at offset %d", i)
		}
		if a.heapSeed(40+i) != b.heapSeed(i) {
			t.Fatalf("heap stream breaks at offset %d", i)
		}
		if a.noiseSeed(40+i) != b.noiseSeed(i) {
			t.Fatalf("noise stream breaks at offset %d", i)
		}
	}
}
