package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/faultinject"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/results"
)

// runPair runs the same campaign config twice — sequentially
// (BatchSize 1) and batched — and returns both datasets. mutate lets a
// caller attach per-run state (a fresh fault injector) to each config.
func runPair(t *testing.T, cfg core.CampaignConfig, batch int, mutate func(*core.CampaignConfig)) (seq, bat *core.Dataset) {
	t.Helper()
	scfg := cfg
	scfg.BatchSize = 1
	if mutate != nil {
		mutate(&scfg)
	}
	seq, err := core.RunCampaign(scfg)
	if err != nil {
		t.Fatalf("sequential campaign: %v", err)
	}
	bcfg := cfg
	bcfg.BatchSize = batch
	if mutate != nil {
		mutate(&bcfg)
	}
	bat, err = core.RunCampaign(bcfg)
	if err != nil {
		t.Fatalf("batched campaign: %v", err)
	}
	return seq, bat
}

// assertDatasetsIdentical compares two datasets observation by
// observation (exact struct equality, so every counter and cycle float
// must match bit for bit after Go's == on float64) and then through both
// canonical CSV exports byte for byte.
func assertDatasetsIdentical(t *testing.T, seq, bat *core.Dataset) {
	t.Helper()
	if len(seq.Obs) != len(bat.Obs) {
		t.Fatalf("observation counts differ: sequential %d, batched %d", len(seq.Obs), len(bat.Obs))
	}
	for i := range seq.Obs {
		if seq.Obs[i] != bat.Obs[i] {
			t.Fatalf("observation %d differs:\nsequential %+v\nbatched    %+v", i, seq.Obs[i], bat.Obs[i])
		}
	}
	if len(seq.Failures) != len(bat.Failures) {
		t.Fatalf("failure counts differ: sequential %d, batched %d", len(seq.Failures), len(bat.Failures))
	}
	for i := range seq.Failures {
		if seq.Failures[i] != bat.Failures[i] {
			t.Fatalf("failure %d differs:\nsequential %+v\nbatched    %+v", i, seq.Failures[i], bat.Failures[i])
		}
	}
	for _, export := range []struct {
		name  string
		write func(*bytes.Buffer, *core.Dataset) error
	}{
		{"measurements", func(b *bytes.Buffer, ds *core.Dataset) error { return results.WriteMeasurementsCSV(b, ds) }},
		{"dataset", func(b *bytes.Buffer, ds *core.Dataset) error { return results.WriteDatasetCSV(b, ds) }},
	} {
		var sb, bb bytes.Buffer
		if err := export.write(&sb, seq); err != nil {
			t.Fatalf("%s CSV (sequential): %v", export.name, err)
		}
		if err := export.write(&bb, bat); err != nil {
			t.Fatalf("%s CSV (batched): %v", export.name, err)
		}
		if !bytes.Equal(sb.Bytes(), bb.Bytes()) {
			t.Errorf("%s CSV differs between sequential and batched runs", export.name)
		}
	}
}

// TestBatchedCampaignIdenticalToSequential pins the acceptance
// criterion: a batched campaign's results are byte-identical to the
// sequential campaign's, across heap modes, fidelities and batch widths
// (including widths that do not divide the layout count).
func TestBatchedCampaignIdenticalToSequential(t *testing.T) {
	for _, tc := range []struct {
		name     string
		mode     heap.Mode
		fidelity pmc.Fidelity
		batch    int
	}{
		{"bump/fast/b4", heap.ModeBump, pmc.FidelityFast, 4},
		{"bump/paper/b2", heap.ModeBump, pmc.FidelityPaper, 2},
		{"rand/fast/b7", heap.ModeRandomized, pmc.FidelityFast, 7},
		{"rand/paper/b4", heap.ModeRandomized, pmc.FidelityPaper, 4},
		{"bump/fast/auto", heap.ModeBump, pmc.FidelityFast, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCampaign(13)
			cfg.HeapMode = tc.mode
			cfg.Fidelity = tc.fidelity
			cfg.Workers = 2
			seq, bat := runPair(t, cfg, tc.batch, nil)
			assertDatasetsIdentical(t, seq, bat)
		})
	}
}

// TestBatchedCampaignWithFaultsIdentical runs the comparison under a
// deterministic fault storm — build errors, build panics, corrupted
// executables, measurement errors and corrupted measurements — with
// retries, a failure budget and the outlier screen all engaged. The
// injector's decisions are a pure function of (seed, site, layout seed,
// attempt), so the batched campaign must fail, retry and recover in
// exactly the same places as the sequential one.
func TestBatchedCampaignWithFaultsIdentical(t *testing.T) {
	seeds := []uint64{3, 17, 29, 101}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := smallCampaign(15)
			cfg.Workers = 2
			cfg.MaxAttempts = 3
			cfg.FailureBudget = 15
			cfg.OutlierMAD = 8
			mutate := func(c *core.CampaignConfig) {
				c.Faults = faultinject.New(seed, faultinject.Config{
					Build:   faultinject.Rates{Error: 0.15, Panic: 0.05, Corrupt: 0.1, MaxFaults: 2},
					Measure: faultinject.Rates{Error: 0.15, Corrupt: 0.1, MaxFaults: 2},
				})
			}
			seq, bat := runPair(t, cfg, 4, mutate)
			assertDatasetsIdentical(t, seq, bat)
		})
	}
}

// TestBatchedCampaignManySeeds is the campaign-level property sweep:
// across many base seeds, heap modes and batch widths, batched results
// must stay bit-identical to sequential ones. The machine-level
// property test (TestBatchMatchesSequential) covers the replay engine
// itself, including predictor overrides; this sweep covers everything
// the campaign layers on top — seed derivation, noise synthesis,
// retries, recording.
func TestBatchedCampaignManySeeds(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		cfg := smallCampaign(9)
		cfg.BaseSeed = uint64(1000 + trial*7919)
		if trial%2 == 1 {
			cfg.HeapMode = heap.ModeRandomized
		}
		cfg.Workers = 1 + trial%3
		batch := []int{2, 3, 7, 9}[trial%4]
		seq, bat := runPair(t, cfg, batch, nil)
		assertDatasetsIdentical(t, seq, bat)
	}
}

// TestBatchSizeOneMatchesHistoric pins that BatchSize 1 and the
// pre-batching sequential path are the same code: a campaign with the
// default (auto) batch size and an explicitly sequential one agree.
// This is implied by the pair tests above but stated directly so a
// regression in the auto-width resolution cannot hide.
func TestBatchedCampaignPaperNaiveStaysSequential(t *testing.T) {
	cfg := smallCampaign(6)
	cfg.Fidelity = pmc.FidelityPaperNaive
	cfg.RunsPerGroup = 2
	seq, bat := runPair(t, cfg, 4, nil)
	assertDatasetsIdentical(t, seq, bat)
}
