package core

import (
	"errors"
	"fmt"
	"math"

	"interferometry/internal/pintool"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// PredictorEval is the §7 deliverable for one candidate predictor: its
// simulated MPKI averaged over the campaign's code reorderings (Figure 7)
// and the CPI the regression model predicts the real machine would
// achieve with it, with a 95% prediction interval (Figure 8).
type PredictorEval struct {
	Name string
	// MPKI is the mean mispredictions per kilo-instruction over all
	// evaluated layouts; MPKIPerLayout keeps the per-layout values
	// (NaN for a layout whose simulation failed within the failure
	// budget).
	MPKI          float64
	MPKIPerLayout []float64
	// PredictedCPI maps MPKI through the benchmark's regression model.
	PredictedCPI stats.Interval
}

// EvaluatePredictors simulates each candidate predictor over every usable
// layout of the dataset with the Pin-style tool (one deterministic run
// per layout, §7.2) and maps the resulting mean MPKI through the model.
// The model should come from the same dataset. Layouts marked
// StatusFailed in the campaign are skipped; the sweep runs under the
// supervisor with the config's context and failure budget.
func (d *Dataset) EvaluatePredictors(model *Model, factories []branch.Factory) ([]PredictorEval, error) {
	if model == nil {
		return nil, errors.New("core: EvaluatePredictors needs a model")
	}
	if len(factories) == 0 {
		return nil, errors.New("core: EvaluatePredictors needs predictors")
	}
	idx := d.usableIdx()
	if len(idx) == 0 {
		return nil, errors.New("core: EvaluatePredictors needs at least one usable layout")
	}
	perLayout := make([][]float64, len(factories)) // [pred][usable layout]
	for i := range perLayout {
		perLayout[i] = make([]float64, len(idx))
	}

	// One compile shared by every layout; each column of perLayout is
	// written at a distinct index, so no locking is needed.
	builder := toolchain.NewBuilder(d.Config.Program, d.Config.Compile, d.Config.Link)
	builder.Observe(builderMetrics(d.Config.Obs))
	span := sweepSpan(&d.Config, "predictor-eval", tagEvaluate)
	defer span.End()
	workers := normalizeWorkers(d.Config.Workers, len(idx))
	failed, err := superviseForT(d.Config.context(), workers, len(idx), d.Config.FailureBudget, newSupTel(d.Config.Obs), func(_, k int) error {
		i := idx[k]
		exe, err := builder.Build(d.Obs[i].LayoutSeed)
		if err != nil {
			return fmt.Errorf("core: predictor eval layout %d: %w", i, err)
		}
		rs, err := pintool.Run(d.Trace, exe, factories, pintool.Config{Warmup: true})
		if err != nil {
			return fmt.Errorf("core: predictor eval layout %d: %w", i, err)
		}
		for pi, r := range rs {
			perLayout[pi][k] = r.MPKI()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range failed {
		for pi := range perLayout {
			perLayout[pi][f.Index] = math.NaN()
		}
	}

	out := make([]PredictorEval, len(factories))
	for pi, f := range factories {
		mean := meanValid(perLayout[pi])
		out[pi] = PredictorEval{
			Name:          f.Name,
			MPKI:          mean,
			MPKIPerLayout: perLayout[pi],
			PredictedCPI:  model.PredictCPI(mean),
		}
	}
	return out, nil
}

// meanValid averages the non-NaN entries.
func meanValid(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// RealPredictorSummary reports the measured behaviour of the machine's
// own predictor over the campaign: mean MPKI and mean CPI with the
// tighter 95% confidence interval, "since the data are observations and
// not predictions" (§7.2).
type RealPredictorSummary struct {
	MPKI float64
	CPI  stats.Interval
}

// RealPredictor summarizes the dataset's own measurements.
func (d *Dataset) RealPredictor(model *Model) RealPredictorSummary {
	mean := stats.Mean(d.PKIs(model.Event))
	return RealPredictorSummary{
		MPKI: mean,
		CPI:  model.ConfidenceAt(mean),
	}
}
