package core

import (
	"errors"
	"fmt"
	"math"

	"interferometry/internal/cachetool"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/cache"
)

// CacheEval is the cache-side analog of PredictorEval: a candidate cache
// geometry's simulated miss rate over the campaign layouts and the CPI
// the regression model predicts the machine would achieve with it. This
// realizes the paper's stated future work — applying interferometry to
// the instruction and data caches (§1.4, §8).
type CacheEval struct {
	Name          string
	MPKI          float64
	MPKIPerLayout []float64
	PredictedCPI  stats.Interval
}

// EvaluateICaches simulates each candidate instruction-cache geometry
// over every usable layout of the dataset (with warmup) and maps the
// mean MPKI through the model, which should be a FitCPI(EvL1IMisses)
// model from the same dataset.
func (d *Dataset) EvaluateICaches(model *Model, candidates []cache.Config) ([]CacheEval, error) {
	return d.evaluateCaches(model, candidates, false)
}

// EvaluateDCaches is EvaluateICaches for the data side: candidates are
// simulated against the data-access stream, with heap objects placed the
// same way the campaign placed them for each layout.
func (d *Dataset) EvaluateDCaches(model *Model, candidates []cache.Config) ([]CacheEval, error) {
	return d.evaluateCaches(model, candidates, true)
}

func (d *Dataset) evaluateCaches(model *Model, candidates []cache.Config, data bool) ([]CacheEval, error) {
	if model == nil {
		return nil, errors.New("core: cache evaluation needs a model")
	}
	if len(candidates) == 0 {
		return nil, errors.New("core: cache evaluation needs candidate geometries")
	}
	idx := d.usableIdx()
	if len(idx) == 0 {
		return nil, errors.New("core: cache evaluation needs at least one usable layout")
	}
	perLayout := make([][]float64, len(candidates))
	for i := range perLayout {
		perLayout[i] = make([]float64, len(idx))
	}

	// One compile shared by every layout; each column of perLayout is
	// written at a distinct index, so no locking is needed. The sweep
	// runs supervised: failed layouts (within the campaign's failure
	// budget) become NaN columns excluded from the mean.
	builder := toolchain.NewBuilder(d.Config.Program, d.Config.Compile, d.Config.Link)
	builder.Observe(builderMetrics(d.Config.Obs))
	span := sweepSpan(&d.Config, "cache-eval", tagCacheEval)
	defer span.End()
	workers := normalizeWorkers(d.Config.Workers, len(idx))
	failed, err := superviseForT(d.Config.context(), workers, len(idx), d.Config.FailureBudget, newSupTel(d.Config.Obs), func(_, k int) error {
		i := idx[k]
		exe, err := builder.Build(d.Obs[i].LayoutSeed)
		if err != nil {
			return fmt.Errorf("core: cache eval layout %d: %w", i, err)
		}
		// No warmup: the measured counters that trained the model include
		// each run's cold misses, so the candidate simulation must replay
		// under the same protocol for its MPKI to be comparable.
		var rs []cachetool.Result
		cfg := cachetool.Config{}
		if data {
			cfg.Data = true
			cfg.HeapMode = d.Config.HeapMode
			cfg.HeapSeed = d.Obs[i].HeapSeed
			rs, err = cachetool.RunDCache(d.Trace, exe, candidates, cfg)
		} else {
			rs, err = cachetool.RunICache(d.Trace, exe, candidates, cfg)
		}
		if err != nil {
			return fmt.Errorf("core: cache eval layout %d: %w", i, err)
		}
		for ci, r := range rs {
			perLayout[ci][k] = r.MPKI()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range failed {
		for ci := range perLayout {
			perLayout[ci][f.Index] = math.NaN()
		}
	}

	out := make([]CacheEval, len(candidates))
	for ci, cc := range candidates {
		mean := meanValid(perLayout[ci])
		out[ci] = CacheEval{
			Name:          cc.Name,
			MPKI:          mean,
			MPKIPerLayout: perLayout[ci],
			PredictedCPI:  model.PredictCPI(mean),
		}
	}
	return out, nil
}
