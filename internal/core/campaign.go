// Package core implements program interferometry itself (§4): run a
// benchmark under many semantically equivalent layouts, measure each with
// performance counters, fit regression models relating adverse
// microarchitectural events to performance, screen them for statistical
// significance, and use the models to predict the performance of
// hypothetical hardware (§7) — all without a cycle-accurate simulation of
// anything but the structure under study.
//
// At §6.3 scale and beyond, partial failure is the normal case, not a
// crash: campaigns run under a supervisor that recovers worker panics,
// retries failed layouts with bounded attempts, screens implausible
// observations with robust statistics, tolerates a failure budget by
// degrading the dataset instead of discarding it, and checkpoints
// completed observations so an interrupted campaign resumes bit-identical
// to an uninterrupted one.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"interferometry/internal/faultinject"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/jobqueue/backoff"
	"interferometry/internal/machine"
	"interferometry/internal/obs"
	"interferometry/internal/pmc"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// CampaignConfig describes one interferometry campaign: a benchmark
// observed through many layout "telescopes" (§4.3).
type CampaignConfig struct {
	// Program is the benchmark. Traces are produced with InputSeed and
	// the stop rule below.
	Program   *isa.Program
	InputSeed uint64
	// Budget stops each run after this many retired instructions (at a
	// block boundary). If Limiter is non-zero it takes precedence and
	// reproduces the paper's run-limiter instrumentation.
	Budget  uint64
	Limiter toolchain.Limiter

	// Layouts is the number of code reorderings to measure. FirstLayout
	// offsets the layout seed sequence so campaigns can be extended
	// (§6.3 samples "in multiples of 100").
	Layouts     int
	FirstLayout int

	// HeapMode selects data-layout perturbation: ModeBump is code
	// reordering only (the paper's default); ModeRandomized adds DieHard
	// heap randomization (§1.3). Under ModeRandomized each layout gets
	// its own heap seed.
	HeapMode heap.Mode

	// Machine is the hardware model. Zero value means machine.XeonE5440().
	Machine machine.Config
	// Fidelity and RunsPerGroup configure the counter harness (§5.5).
	Fidelity     pmc.Fidelity
	RunsPerGroup int

	// BaseSeed keys every derived random stream; the same config is
	// bit-reproducible.
	BaseSeed uint64

	// Workers bounds parallelism. Zero means GOMAXPROCS.
	Workers int

	// BatchSize is the batched-replay width: each worker leases a
	// contiguous chunk of up to BatchSize layouts and walks the trace
	// once for the whole chunk (machine.Batch), synthesizing every
	// layout's measurement from the shared walk. Batching is pinned
	// bit-identical to sequential replay, so this knob changes only
	// throughput, never results. Zero picks a width automatically
	// (each worker's fair share of the campaign, capped at 32); 1
	// disables batching. FidelityPaperNaive always runs sequentially.
	BatchSize int

	// Delta selects the delta-replay engine (machine.Delta) for the
	// batched phase: the trace is walked once per campaign into a
	// classified recording, and each chunk's layouts replay only their
	// perturbed state. Like batching it is pinned bit-identical to the
	// sequential path, so the knob changes only throughput. DeltaAuto
	// (the default) uses it when the recording's profitability estimate
	// says the delta walk beats the batched one — which is rare: it pays
	// off only on traces whose layout-sensitive events die out early.
	// DeltaOn always tries it (falling back to the batched walk when the
	// engine declines the trace or layout), DeltaOff never does.
	Delta DeltaMode

	// Compile and Link override toolchain defaults when non-zero.
	Compile toolchain.CompileConfig
	Link    toolchain.LinkConfig

	// Context cancels or deadlines the campaign's sweeps, including the
	// dataset sweeps derived from it (EvaluatePredictors, cache
	// evaluation). Nil means context.Background().
	Context context.Context

	// MaxAttempts bounds how many times one layout is built and measured
	// before it counts as failed: build errors, measurement errors,
	// corrupt executables and implausible measurements all trigger a
	// seeded re-measurement of the same layout. Every attempt derives
	// the same seeds, so a retry that succeeds is bit-identical to a
	// first-attempt success. Zero means 2 (one retry).
	MaxAttempts int

	// Backoff spaces retry attempts for one layout: attempt a+1 starts
	// Backoff.Delay(a, BaseSeed, layoutSeed) after attempt a failed,
	// with deterministic seeded jitter. The zero value retries
	// immediately, the historic behavior. campaignd shares the same
	// policy type for its queue-level requeue delays, so in-process and
	// service campaigns space retries identically.
	Backoff backoff.Policy

	// FailureBudget is how many layouts may fail permanently (after
	// retries) before the sweep aborts. Within the budget the campaign
	// completes with those layouts marked StatusFailed and excluded from
	// model fitting; the abort path returns every recorded failure
	// joined into one error. Zero tolerates no failures, the historic
	// behaviour.
	FailureBudget int

	// OutlierMAD enables the robust outlier screen: after the sweep, an
	// observation whose CPI deviates from the campaign median by more
	// than OutlierMAD median absolute deviations (the observations are
	// already per-group medians under the §5.5 protocol) is flagged and
	// re-measured before it can poison the regression. Zero disables
	// the screen; 10 is a reasonable value for real campaigns.
	OutlierMAD float64

	// Checkpoint persists completed observations under a campaign
	// directory and supports resuming. Zero value disables.
	Checkpoint CheckpointConfig

	// LayoutCache optionally backs the build seam with a store of
	// encoded layouts keyed by (builder fingerprint, layout seed), so a
	// resubmitted, resumed or extended campaign skips redundant
	// Reorder+Link work. Linking is deterministic, so a hit is
	// bit-identical to a rebuild and the cache never changes results.
	// internal/artifactcache provides the bounded on-disk
	// implementation. Nil disables caching.
	LayoutCache toolchain.LayoutCache

	// Faults optionally injects deterministic faults at the build and
	// measure seams. It exists for the fault-injection test harness;
	// production campaigns leave it nil. Faults wrap outside the layout
	// cache, so an injected build fault corrupts only the returned copy,
	// never the cached artifact.
	Faults *faultinject.Injector

	// Obs optionally observes the campaign: metrics, span tracing and
	// progress reporting (DESIGN.md §8). Nil disables all three; the
	// campaign then pays only nil checks.
	Obs *obs.Observer
}

// DeltaMode selects how the campaign uses the delta-replay engine.
type DeltaMode uint8

// Delta-replay modes.
const (
	// DeltaAuto uses delta replay when its profitability preflight says
	// the recording beats the batched walk on this trace.
	DeltaAuto DeltaMode = iota
	// DeltaOff never uses delta replay.
	DeltaOff
	// DeltaOn always attempts delta replay first, falling back to the
	// batched walk when the engine declines the trace or a layout.
	DeltaOn
)

func (m DeltaMode) String() string {
	switch m {
	case DeltaAuto:
		return "auto"
	case DeltaOff:
		return "off"
	case DeltaOn:
		return "on"
	default:
		return fmt.Sprintf("DeltaMode(%d)", uint8(m))
	}
}

// ParseDeltaMode parses the CLI spelling of a DeltaMode.
func ParseDeltaMode(s string) (DeltaMode, error) {
	switch s {
	case "auto", "":
		return DeltaAuto, nil
	case "off":
		return DeltaOff, nil
	case "on":
		return DeltaOn, nil
	}
	return DeltaAuto, fmt.Errorf("core: unknown delta mode %q (want auto, on or off)", s)
}

func (c *CampaignConfig) machineConfig() machine.Config {
	if c.Machine.Name == "" {
		return machine.XeonE5440()
	}
	return c.Machine
}

func (c *CampaignConfig) stopRule() interp.StopRule {
	if c.Limiter.StopCount > 0 {
		return c.Limiter.Rule()
	}
	return interp.StopRule{Budget: c.Budget}
}

func (c *CampaignConfig) context() context.Context {
	if c.Context == nil {
		return context.Background()
	}
	return c.Context
}

func (c *CampaignConfig) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 2
	}
	return c.MaxAttempts
}

// ObsStatus records how an observation was obtained.
type ObsStatus uint8

// Observation statuses.
const (
	// StatusOK is a first-attempt success.
	StatusOK ObsStatus = iota
	// StatusRetried marks an observation that needed more than one
	// attempt, or was re-measured by the outlier screen. Its measurement
	// is bit-identical to what a clean first attempt produces.
	StatusRetried
	// StatusFailed marks a layout with no valid measurement. Failed
	// observations carry their seeds but zero counters, and every
	// consumer (model fitting, evaluation sweeps, CSV export) skips or
	// flags them.
	StatusFailed
)

func (s ObsStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusRetried:
		return "retried"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("ObsStatus(%d)", uint8(s))
	}
}

// Observation is the measurement of one layout.
type Observation struct {
	LayoutSeed uint64
	HeapSeed   uint64
	pmc.Measurement
	// Status distinguishes clean, retried and failed layouts; Attempts
	// counts the measurement attempts that produced the observation.
	Status   ObsStatus
	Attempts int
}

// LayoutFailure records one layout that failed permanently.
type LayoutFailure struct {
	Index      int
	LayoutSeed uint64
	Err        string
}

// Dataset is the outcome of a campaign.
type Dataset struct {
	Benchmark string
	Config    CampaignConfig
	// Trace is the shared layout-independent execution record.
	Trace *interp.Trace
	Obs   []Observation
	// Failures lists the layouts that exhausted their retry budget,
	// sorted by index. Their Obs entries are marked StatusFailed. A
	// non-empty list means the dataset is degraded: fitting and
	// evaluation skip those layouts and report the effective N.
	Failures []LayoutFailure
}

// EffectiveN is the number of layouts with a usable measurement.
func (d *Dataset) EffectiveN() int {
	n := 0
	for i := range d.Obs {
		if d.Obs[i].Status != StatusFailed {
			n++
		}
	}
	return n
}

// usableIdx lists the indices of non-failed observations.
func (d *Dataset) usableIdx() []int {
	idx := make([]int, 0, len(d.Obs))
	for i := range d.Obs {
		if d.Obs[i].Status != StatusFailed {
			idx = append(idx, i)
		}
	}
	return idx
}

// layoutSeed derives the seed of the i-th layout. Layout index 0 uses a
// nonzero seed too: the identity layout is available via Reorder(seed 0)
// but campaigns sample random layouts only, like the paper.
func (c *CampaignConfig) layoutSeed(i int) uint64 {
	return xrand.Mix(c.BaseSeed, 0x6c61796f, uint64(c.FirstLayout+i)) | 1
}

// heapSeed derives the heap-randomizer seed of the i-th layout. Heap seed
// zero is the sentinel for "no randomization" in recorded observations
// (ModeBump), so the derived stream must never produce it: a Mix output
// of zero is remapped to the stream tag.
func (c *CampaignConfig) heapSeed(i int) uint64 {
	if s := xrand.Mix(c.BaseSeed, 0x68656170, uint64(c.FirstLayout+i)); s != 0 {
		return s
	}
	return 0x68656170
}

// noiseSeed derives the noise stream of the i-th layout, with the same
// nonzero guarantee as heapSeed so the three per-layout streams stay
// disjoint from each mode's zero sentinel.
func (c *CampaignConfig) noiseSeed(i int) uint64 {
	if s := xrand.Mix(c.BaseSeed, 0x6e6f6973, uint64(c.FirstLayout+i)); s != 0 {
		return s
	}
	return 0x6e6f6973
}

// buildSeam and measureSeam are the two narrow interfaces every
// measurement passes through; the fault injector wraps them and the
// supervisor retries across them.
type buildSeam interface {
	Build(seed uint64) (*toolchain.Executable, error)
}

type measureSeam interface {
	Measure(spec machine.RunSpec) (pmc.Measurement, error)
}

// newSeams prepares the campaign's two measurement seams: one compile
// shared by every layout and worker (only Reorder+Link depend on the
// layout seed) and one counter harness per worker slot, both wrapped by
// the fault injector when one is configured. The bare harnesses are
// returned alongside the (possibly fault-wrapped) seams so the batched
// replay path can wire each harness's Det source. The genome seam is
// the same builder (cached when a layout cache is configured) exposed
// by explicit permutation instead of seed; fault wrapping for genome
// builds happens per call, keyed by fingerprint, in buildGenome.
func newSeams(cfg *CampaignConfig, workers int) (buildSeam, genomeSeam, []measureSeam, []*pmc.Harness) {
	builder := toolchain.NewBuilder(cfg.Program, cfg.Compile, cfg.Link)
	builder.Observe(builderMetrics(cfg.Obs))
	var build buildSeam = builder
	var gb genomeSeam = builder
	if cfg.LayoutCache != nil {
		cb := toolchain.NewCachedBuilder(builder, cfg.LayoutCache)
		build = cb
		gb = cb
	}
	if cfg.Faults != nil {
		cfg.Faults.Observe(cfg.Obs)
		build = cfg.Faults.WrapBuilder(build)
	}
	mcfg := cfg.machineConfig()
	hmetrics := harnessMetrics(cfg.Obs)
	measurers := make([]measureSeam, workers)
	harnesses := make([]*pmc.Harness, workers)
	for w := range measurers {
		h := &pmc.Harness{
			Machine:      machine.New(mcfg),
			Fidelity:     cfg.Fidelity,
			RunsPerGroup: cfg.RunsPerGroup,
			Metrics:      hmetrics,
		}
		harnesses[w] = h
		if cfg.Faults != nil {
			measurers[w] = cfg.Faults.WrapMeasurer(h)
		} else {
			measurers[w] = h
		}
	}
	return build, gb, measurers, harnesses
}

// RunCampaign executes the campaign under the supervisor: one trace,
// Layouts executables, one measurement each, with retries, failure
// budget, outlier screening and checkpointing per the config.
func RunCampaign(cfg CampaignConfig) (*Dataset, error) {
	if cfg.Program == nil {
		return nil, errors.New("core: campaign needs a program")
	}
	if cfg.Layouts <= 0 {
		return nil, errors.New("core: campaign needs at least one layout")
	}
	if cfg.Budget == 0 && cfg.Limiter.StopCount == 0 {
		return nil, errors.New("core: campaign needs a budget or limiter")
	}

	trace, err := interp.Run(cfg.Program, cfg.InputSeed, cfg.stopRule())
	if err != nil {
		return nil, fmt.Errorf("core: trace generation failed: %w", err)
	}
	return runWithTrace(cfg, trace)
}

// runWithTrace is the supervised sweep behind RunCampaign and Extend:
// the trace is layout-independent, so extensions reuse it instead of
// re-interpreting the program.
func runWithTrace(cfg CampaignConfig, trace *interp.Trace) (*Dataset, error) {
	ds := &Dataset{
		Benchmark: cfg.Program.Name,
		Config:    cfg,
		Trace:     trace,
		Obs:       make([]Observation, cfg.Layouts),
	}

	co := newCampaignObs(&cfg)
	campSpan := obs.Span{}
	if co != nil {
		campSpan = co.o.StartSpan("campaign", co.campID, 0, 0)
		co.o.Prog().AddTotal(cfg.Layouts)
	}

	workers := normalizeWorkers(cfg.Workers, cfg.Layouts)
	build, _, measurers, harnesses := newSeams(&cfg, workers)

	// Batched replay: when the effective batch width exceeds 1, each
	// worker takes contiguous chunks of layouts and walks the trace once
	// per chunk, priming its harness's Det source. Results are pinned
	// bit-identical to the sequential path, so everything downstream —
	// retries, failure budget, outlier screen, checkpoints — is shared.
	bs := cfg.batchSize(workers)
	var slots []*batchSlot
	if bs > 1 {
		slots = newBatchSlots(cfg.machineConfig(), harnesses, bs, cfg.Delta)
		defer releaseBatchSlots(slots)
	}

	// Checkpoint: load completed observations on resume, then persist
	// every newly completed one.
	var ckpt *checkpointWriter
	done := make([]bool, cfg.Layouts)
	if cfg.Checkpoint.Dir != "" {
		var loaded map[int]Observation
		var err error
		ckpt, loaded, err = openCheckpoint(&cfg)
		if err != nil {
			return nil, err
		}
		for i, o := range loaded {
			ds.Obs[i] = o
			done[i] = true
		}
		if co != nil {
			co.restored.Add(uint64(len(loaded)))
		}
	}

	var mu sync.Mutex
	record := func(i int, o Observation) {
		mu.Lock()
		ds.Obs[i] = o
		mu.Unlock()
		if ckpt != nil {
			ckpt.put(i, o)
		}
		if co != nil {
			co.layoutsDone.Inc()
			if o.Status == StatusRetried {
				co.layoutsRetried.Inc()
			}
			co.o.Prog().Done()
		}
	}
	var failed []*IndexError
	var err error
	if slots != nil {
		failed, err = superviseChunksT(cfg.context(), workers, cfg.Layouts, bs, cfg.FailureBudget, newSupTel(cfg.Obs), func(w, lo, hi int, fail func(i int, err error)) {
			measureChunk(&cfg, co, slots[w], measurers[w], build, trace, lo, hi, w, done, record, fail)
		})
	} else {
		failed, err = superviseForT(cfg.context(), workers, cfg.Layouts, cfg.FailureBudget, newSupTel(cfg.Obs), func(w, i int) error {
			if done[i] {
				if co != nil {
					co.o.Prog().Done()
				}
				return nil
			}
			o, merr := measureLayout(&cfg, co, measurers[w], build, trace, i, w)
			if merr != nil {
				return merr
			}
			record(i, o)
			return nil
		})
	}
	for _, f := range failed {
		o := Observation{LayoutSeed: cfg.layoutSeed(f.Index), Status: StatusFailed}
		if cfg.HeapMode == heap.ModeRandomized {
			o.HeapSeed = cfg.heapSeed(f.Index)
		}
		o.Attempts = cfg.maxAttempts()
		ds.Obs[f.Index] = o
		ds.Failures = append(ds.Failures, LayoutFailure{Index: f.Index, LayoutSeed: o.LayoutSeed, Err: f.Err.Error()})
		if err == nil && ckpt != nil {
			ckpt.put(f.Index, o)
		}
		if co != nil {
			co.layoutsFailed.Inc()
			co.o.Prog().Fail()
		}
	}
	if err != nil {
		// Aborted (budget exceeded or canceled): completed observations
		// stay checkpointed for a future --resume.
		campSpan.End()
		return nil, fmt.Errorf("core: campaign %s aborted: %w", ds.Benchmark, err)
	}

	if cfg.OutlierMAD > 0 {
		screenOutliers(&cfg, co, ds, measurers, build, trace, ckpt)
	}
	campSpan.End()
	if co != nil {
		co.o.Prog().Finish()
	}
	if ckpt != nil {
		if err := ckpt.close(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// measureLayout builds and measures one layout with bounded attempts.
// All attempts derive identical seeds — the pipeline is deterministic, so
// a transient fault cleared by retrying yields the exact observation an
// undisturbed run produces.
func measureLayout(cfg *CampaignConfig, co *campaignObs, meas measureSeam, build buildSeam, trace *interp.Trace, i, w int) (Observation, error) {
	attempts := cfg.maxAttempts()
	layoutStage := stage{}
	if co != nil {
		layID := co.layoutID(cfg, i)
		layoutStage = stage{
			co:   co,
			span: co.o.StartSpan("layout", layID, co.campID, w+1),
			hist: co.layoutSec,
			t0:   time.Now(),
		}
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		obs, err := measureLayoutOnce(cfg, co, meas, build, trace, i, w)
		if err == nil {
			obs.Attempts = a + 1
			if a > 0 {
				obs.Status = StatusRetried
			}
			layoutStage.end()
			return obs, nil
		}
		lastErr = err
		if a < attempts-1 {
			if co != nil {
				co.o.Prog().Retry()
			}
			// Space the next attempt per the campaign's backoff policy
			// (zero policy: no delay, no cancellation point). The jitter
			// keys off the layout seed, so a resumed or replayed
			// campaign backs off by identical amounts.
			if serr := cfg.Backoff.Sleep(cfg.context(), a+1, cfg.BaseSeed, cfg.layoutSeed(i)); serr != nil {
				layoutStage.end()
				return Observation{}, fmt.Errorf("core: layout %d: retry backoff interrupted: %w", i, serr)
			}
		}
	}
	layoutStage.end()
	return Observation{}, fmt.Errorf("core: layout %d failed after %d attempts: %w", i, attempts, lastErr)
}

func measureLayoutOnce(cfg *CampaignConfig, co *campaignObs, meas measureSeam, build buildSeam, trace *interp.Trace, i, w int) (Observation, error) {
	if co != nil {
		co.attempts.Inc()
	}
	exe, err := buildLayout(cfg, co, build, i, w)
	if err != nil {
		return Observation{}, err
	}
	return measureBuilt(cfg, co, meas, trace, exe, i, w)
}

// buildLayout is one attempt through the build seam: reorder+link for
// layout i plus the executable integrity check that catches silent
// corruption before it can be measured.
func buildLayout(cfg *CampaignConfig, co *campaignObs, build buildSeam, i, w int) (*toolchain.Executable, error) {
	var layID uint64
	if co != nil {
		layID = co.layoutID(cfg, i)
	}
	st := co.stageStart("compile", layID, tagCompile, w)
	defer st.end()
	exe, err := build.Build(cfg.layoutSeed(i))
	if err != nil {
		return nil, fmt.Errorf("core: layout %d: %w", i, err)
	}
	if err := toolchain.CheckExecutable(exe, cfg.FirstLayout+i); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return exe, nil
}

// measureBuilt is one attempt through the measure seam: the counter
// harness run plus the plausibility check on its readings. The heap and
// noise seeds are re-derived from the config, so any executable built
// for layout i measures identically wherever and whenever it runs.
func measureBuilt(cfg *CampaignConfig, co *campaignObs, meas measureSeam, trace *interp.Trace, exe *toolchain.Executable, i, w int) (Observation, error) {
	var layID uint64
	if co != nil {
		layID = co.layoutID(cfg, i)
	}
	seed := cfg.layoutSeed(i)
	hs := uint64(0)
	if cfg.HeapMode == heap.ModeRandomized {
		hs = cfg.heapSeed(i)
	}
	ns := cfg.noiseSeed(i)
	st := co.stageStart("run", layID, tagRun, w)
	m, err := meas.Measure(machine.RunSpec{
		Exe:       exe,
		Trace:     trace,
		HeapMode:  cfg.HeapMode,
		HeapSeed:  hs,
		NoiseSeed: ns,
	})
	st.end()
	if err != nil {
		return Observation{}, fmt.Errorf("core: layout %d: %w", i, err)
	}
	st = co.stageStart("fit", layID, tagFit, w)
	err = m.Check(trace.Instrs, pmc.RunID{
		Layout:     cfg.FirstLayout + i,
		LayoutSeed: seed,
		HeapSeed:   hs,
		NoiseSeed:  ns,
	})
	st.end()
	if err != nil {
		return Observation{}, fmt.Errorf("core: %w", err)
	}
	return Observation{LayoutSeed: seed, HeapSeed: hs, Measurement: m}, nil
}

// measurementValid reports whether a measurement's counters can enter
// the outlier screen's robust statistics: a zero instruction count or a
// non-finite CPI is not a slow layout, it is a corrupt counter read, and
// feeding it to stats.Median/MAD would violate their NaN contract (and,
// before that contract existed, silently poison the screen's threshold).
func measurementValid(m pmc.Measurement) bool {
	if m.Instructions == 0 {
		return false
	}
	cpi := m.CPI()
	return !math.IsNaN(cpi) && !math.IsInf(cpi, 0)
}

// screenOutliers is the robust-statistics screen: observations whose CPI
// sits further than cfg.OutlierMAD median absolute deviations from the
// campaign median are re-measured. In a deterministic pipeline the
// re-measurement reproduces a genuine outlier exactly (it is then kept —
// a real heavy-tailed layout, not an artifact); a corrupted measurement
// comes back different and is replaced, marked StatusRetried. The screen
// is best-effort for valid observations: re-measurement failures keep
// the original. Invalid measurements (NaN/zero-instruction counter
// reads) are excluded from the median and MAD, always re-measured, and
// degraded to StatusFailed when the re-measurement cannot produce a
// valid reading — garbage counters must not pose as data.
func screenOutliers(cfg *CampaignConfig, co *campaignObs, ds *Dataset, measurers []measureSeam, build buildSeam, trace *interp.Trace, ckpt *checkpointWriter) {
	idx := ds.usableIdx()
	var valid, flagged []int
	var cpis []float64
	for _, i := range idx {
		if !measurementValid(ds.Obs[i].Measurement) {
			flagged = append(flagged, i)
			continue
		}
		valid = append(valid, i)
		cpis = append(cpis, ds.Obs[i].CPI())
	}
	if len(valid) >= 5 {
		med := stats.Median(cpis)
		if mad := stats.MAD(cpis); mad > 0 {
			thresh := cfg.OutlierMAD * mad
			for k, i := range valid {
				if math.Abs(cpis[k]-med) > thresh {
					flagged = append(flagged, i)
				}
			}
		}
	}
	if len(flagged) == 0 {
		return
	}
	sort.Ints(flagged)
	screenSpan := obs.Span{}
	if co != nil {
		co.outliersFlagged.Add(uint64(len(flagged)))
		screenSpan = co.o.StartSpan("outlier-screen", obs.SpanID(co.campID, tagOutlier), co.campID, 0)
	}
	var mu sync.Mutex
	workers := normalizeWorkers(cfg.Workers, len(flagged))
	// Tolerate every re-measurement failing: the screen improves the
	// dataset when it can and never degrades it.
	superviseForT(cfg.context(), workers, len(flagged), len(flagged), newSupTel(cfg.Obs), func(w, fi int) error {
		i := flagged[fi]
		o, err := measureLayout(cfg, co, measurers[w], build, trace, i, w)
		mu.Lock()
		defer mu.Unlock()
		prev := ds.Obs[i]
		if err == nil && measurementValid(o.Measurement) {
			if o.Measurement != prev.Measurement {
				o.Status = StatusRetried
				o.Attempts += prev.Attempts
				ds.Obs[i] = o
				if ckpt != nil {
					ckpt.put(i, o)
				}
				if co != nil {
					co.outliersRepaired.Inc()
					co.o.Prog().Repair()
				}
			}
			return nil
		}
		if measurementValid(prev.Measurement) {
			// A valid outlier whose re-measurement failed: keep it, the
			// screen never degrades a usable observation.
			return nil
		}
		// The stored observation is a corrupt counter read and it could
		// not be re-measured into a valid one: degrade it to failed so
		// fitting and evaluation exclude it.
		cause := fmt.Errorf("core: layout %d: invalid measurement (corrupt counters) and re-measurement produced no valid reading", i)
		if err != nil {
			cause = fmt.Errorf("core: layout %d: invalid measurement (corrupt counters): re-measurement failed: %w", i, err)
		}
		failed := Observation{LayoutSeed: cfg.layoutSeed(i), Status: StatusFailed, Attempts: prev.Attempts + cfg.maxAttempts()}
		if cfg.HeapMode == heap.ModeRandomized {
			failed.HeapSeed = cfg.heapSeed(i)
		}
		ds.Obs[i] = failed
		ds.Failures = append(ds.Failures, LayoutFailure{Index: i, LayoutSeed: failed.LayoutSeed, Err: cause.Error()})
		if ckpt != nil {
			ckpt.put(i, failed)
		}
		if co != nil {
			co.layoutsFailed.Inc()
		}
		return nil
	})
	sort.Slice(ds.Failures, func(a, b int) bool { return ds.Failures[a].Index < ds.Failures[b].Index })
	screenSpan.End()
}

// Extend runs additional layouts (the §6.3 escalation: "we sample a
// number of code reorderings in multiples of 100") and returns a new
// dataset containing all observations. The already-computed trace is
// reused — the trace is layout-independent, so re-interpreting the
// program would be wasted work and a second failure surface. The nested
// sweep never touches the parent's checkpoint directory.
func (d *Dataset) Extend(more int) (*Dataset, error) {
	cfg := d.Config
	cfg.FirstLayout += cfg.Layouts
	cfg.Layouts = more
	cfg.Checkpoint = CheckpointConfig{}
	extra, err := runWithTrace(cfg, d.Trace)
	if err != nil {
		return nil, err
	}
	merged := &Dataset{
		Benchmark: d.Benchmark,
		Config:    d.Config,
		Trace:     d.Trace,
		Obs:       append(append([]Observation(nil), d.Obs...), extra.Obs...),
		Failures:  append([]LayoutFailure(nil), d.Failures...),
	}
	for _, f := range extra.Failures {
		f.Index += len(d.Obs)
		merged.Failures = append(merged.Failures, f)
	}
	merged.Config.Layouts = len(merged.Obs)
	return merged, nil
}

// CPIs returns the CPI of every usable observation; layouts marked
// StatusFailed are skipped, so a degraded dataset fits its models on the
// effective sample. The order matches PKIs.
func (d *Dataset) CPIs() []float64 {
	idx := d.usableIdx()
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = d.Obs[i].CPI()
	}
	return out
}

// PKIs returns the per-1000-instruction rate of an event for every
// usable observation, skipping failed layouts like CPIs.
func (d *Dataset) PKIs(ev pmc.Event) []float64 {
	idx := d.usableIdx()
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = d.Obs[i].PKI(ev)
	}
	return out
}
