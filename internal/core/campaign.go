// Package core implements program interferometry itself (§4): run a
// benchmark under many semantically equivalent layouts, measure each with
// performance counters, fit regression models relating adverse
// microarchitectural events to performance, screen them for statistical
// significance, and use the models to predict the performance of
// hypothetical hardware (§7) — all without a cycle-accurate simulation of
// anything but the structure under study.
package core

import (
	"errors"
	"fmt"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// CampaignConfig describes one interferometry campaign: a benchmark
// observed through many layout "telescopes" (§4.3).
type CampaignConfig struct {
	// Program is the benchmark. Traces are produced with InputSeed and
	// the stop rule below.
	Program   *isa.Program
	InputSeed uint64
	// Budget stops each run after this many retired instructions (at a
	// block boundary). If Limiter is non-zero it takes precedence and
	// reproduces the paper's run-limiter instrumentation.
	Budget  uint64
	Limiter toolchain.Limiter

	// Layouts is the number of code reorderings to measure. FirstLayout
	// offsets the layout seed sequence so campaigns can be extended
	// (§6.3 samples "in multiples of 100").
	Layouts     int
	FirstLayout int

	// HeapMode selects data-layout perturbation: ModeBump is code
	// reordering only (the paper's default); ModeRandomized adds DieHard
	// heap randomization (§1.3). Under ModeRandomized each layout gets
	// its own heap seed.
	HeapMode heap.Mode

	// Machine is the hardware model. Zero value means machine.XeonE5440().
	Machine machine.Config
	// Fidelity and RunsPerGroup configure the counter harness (§5.5).
	Fidelity     pmc.Fidelity
	RunsPerGroup int

	// BaseSeed keys every derived random stream; the same config is
	// bit-reproducible.
	BaseSeed uint64

	// Workers bounds parallelism. Zero means GOMAXPROCS.
	Workers int

	// Compile and Link override toolchain defaults when non-zero.
	Compile toolchain.CompileConfig
	Link    toolchain.LinkConfig
}

func (c *CampaignConfig) machineConfig() machine.Config {
	if c.Machine.Name == "" {
		return machine.XeonE5440()
	}
	return c.Machine
}

func (c *CampaignConfig) stopRule() interp.StopRule {
	if c.Limiter.StopCount > 0 {
		return c.Limiter.Rule()
	}
	return interp.StopRule{Budget: c.Budget}
}

// Observation is the measurement of one layout.
type Observation struct {
	LayoutSeed uint64
	HeapSeed   uint64
	pmc.Measurement
}

// Dataset is the outcome of a campaign.
type Dataset struct {
	Benchmark string
	Config    CampaignConfig
	// Trace is the shared layout-independent execution record.
	Trace *interp.Trace
	Obs   []Observation
}

// layoutSeed derives the seed of the i-th layout. Layout index 0 uses a
// nonzero seed too: the identity layout is available via Reorder(seed 0)
// but campaigns sample random layouts only, like the paper.
func (c *CampaignConfig) layoutSeed(i int) uint64 {
	return xrand.Mix(c.BaseSeed, 0x6c61796f, uint64(c.FirstLayout+i)) | 1
}

func (c *CampaignConfig) heapSeed(i int) uint64 {
	return xrand.Mix(c.BaseSeed, 0x68656170, uint64(c.FirstLayout+i))
}

func (c *CampaignConfig) noiseSeed(i int) uint64 {
	return xrand.Mix(c.BaseSeed, 0x6e6f6973, uint64(c.FirstLayout+i))
}

// RunCampaign executes the campaign: one trace, Layouts executables, one
// measurement each.
func RunCampaign(cfg CampaignConfig) (*Dataset, error) {
	if cfg.Program == nil {
		return nil, errors.New("core: campaign needs a program")
	}
	if cfg.Layouts <= 0 {
		return nil, errors.New("core: campaign needs at least one layout")
	}
	if cfg.Budget == 0 && cfg.Limiter.StopCount == 0 {
		return nil, errors.New("core: campaign needs a budget or limiter")
	}

	trace, err := interp.Run(cfg.Program, cfg.InputSeed, cfg.stopRule())
	if err != nil {
		return nil, fmt.Errorf("core: trace generation failed: %w", err)
	}

	ds := &Dataset{
		Benchmark: cfg.Program.Name,
		Config:    cfg,
		Trace:     trace,
		Obs:       make([]Observation, cfg.Layouts),
	}

	// One compile shared by every layout and worker: only Reorder+Link
	// depend on the layout seed.
	builder := toolchain.NewBuilder(cfg.Program, cfg.Compile, cfg.Link)
	workers := normalizeWorkers(cfg.Workers, cfg.Layouts)
	mcfg := cfg.machineConfig()
	harnesses := make([]*pmc.Harness, workers)
	for w := range harnesses {
		harnesses[w] = &pmc.Harness{
			Machine:      machine.New(mcfg),
			Fidelity:     cfg.Fidelity,
			RunsPerGroup: cfg.RunsPerGroup,
		}
	}
	err = parallelFor(workers, cfg.Layouts, func(w, i int) error {
		obs, err := measureLayout(&cfg, harnesses[w], builder, trace, i)
		if err != nil {
			return err
		}
		ds.Obs[i] = obs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

func measureLayout(cfg *CampaignConfig, h *pmc.Harness, builder *toolchain.Builder, trace *interp.Trace, i int) (Observation, error) {
	seed := cfg.layoutSeed(i)
	exe, err := builder.Build(seed)
	if err != nil {
		return Observation{}, fmt.Errorf("core: layout %d: %w", i, err)
	}
	hs := uint64(0)
	if cfg.HeapMode == heap.ModeRandomized {
		hs = cfg.heapSeed(i)
	}
	m, err := h.Measure(machine.RunSpec{
		Exe:       exe,
		Trace:     trace,
		HeapMode:  cfg.HeapMode,
		HeapSeed:  hs,
		NoiseSeed: cfg.noiseSeed(i),
	})
	if err != nil {
		return Observation{}, fmt.Errorf("core: layout %d: %w", i, err)
	}
	return Observation{LayoutSeed: seed, HeapSeed: hs, Measurement: m}, nil
}

// Extend runs additional layouts (the §6.3 escalation: "we sample a
// number of code reorderings in multiples of 100") and returns a new
// dataset containing all observations.
func (d *Dataset) Extend(more int) (*Dataset, error) {
	cfg := d.Config
	cfg.FirstLayout += cfg.Layouts
	cfg.Layouts = more
	extra, err := RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	merged := &Dataset{
		Benchmark: d.Benchmark,
		Config:    d.Config,
		Trace:     d.Trace,
		Obs:       append(append([]Observation(nil), d.Obs...), extra.Obs...),
	}
	merged.Config.Layouts = len(merged.Obs)
	return merged, nil
}

// CPIs returns the CPI of every observation.
func (d *Dataset) CPIs() []float64 {
	out := make([]float64, len(d.Obs))
	for i := range d.Obs {
		out[i] = d.Obs[i].CPI()
	}
	return out
}

// PKIs returns the per-1000-instruction rate of an event for every
// observation.
func (d *Dataset) PKIs(ev pmc.Event) []float64 {
	out := make([]float64, len(d.Obs))
	for i := range d.Obs {
		out[i] = d.Obs[i].PKI(ev)
	}
	return out
}
