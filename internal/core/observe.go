package core

import (
	"time"

	"interferometry/internal/obs"
	"interferometry/internal/pmc"
	"interferometry/internal/toolchain"
)

// Span-path tags: the deterministic span tree is keyed by BaseSeed and
// these constants, so identical campaign seeds yield identical span IDs
// whatever the timing or worker schedule.
const (
	tagCampaign  uint64 = 0x63616d70 // "camp"
	tagLayout    uint64 = 0x6c61796f // "layo"
	tagCompile   uint64 = 0x636f6d70 // "comp"
	tagRun       uint64 = 0x72756e   // "run"
	tagFit       uint64 = 0x666974   // "fit"
	tagOutlier   uint64 = 0x6f75746c // "outl"
	tagModelFit  uint64 = 0x6d6f6466 // "modf"
	tagEvaluate  uint64 = 0x6576616c // "eval"
	tagCacheEval uint64 = 0x63616368 // "cach"
	tagLinearity uint64 = 0x6c696e65 // "line"
)

// hashName folds a benchmark name into the span-ID chain (FNV-1a 64).
func hashName(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// campSpanID derives the campaign's root span ID. The chain mixes the
// base seed, benchmark and heap mode so campaigns sharing a base seed
// (Figure 2 runs two benchmarks with one seed) never collide, while
// identical configurations reproduce identical IDs run to run.
func campSpanID(cfg *CampaignConfig) uint64 {
	return obs.SpanID(cfg.BaseSeed, tagCampaign, hashName(cfg.Program.Name), uint64(cfg.HeapMode))
}

// campaignObs holds the campaign's resolved instruments. All instrument
// lookups happen once here, at campaign start; the per-layout hot path
// touches only held pointers. A nil *campaignObs (unobserved campaign)
// makes every method a no-op without a single time.Now call.
type campaignObs struct {
	o      *obs.Observer
	campID uint64

	layoutsDone      *obs.Counter
	layoutsFailed    *obs.Counter
	layoutsRetried   *obs.Counter
	attempts         *obs.Counter
	restored         *obs.Counter
	outliersFlagged  *obs.Counter
	outliersRepaired *obs.Counter

	compileSec *obs.Histogram
	runSec     *obs.Histogram
	fitSec     *obs.Histogram
	layoutSec  *obs.Histogram
}

// newCampaignObs resolves the campaign instruments, or nil when the
// config carries no observer.
func newCampaignObs(cfg *CampaignConfig) *campaignObs {
	o := cfg.Obs
	if o == nil {
		return nil
	}
	return &campaignObs{
		o:                o,
		campID:           campSpanID(cfg),
		layoutsDone:      o.Counter("interferometry_layouts_done_total", "layouts measured successfully"),
		layoutsFailed:    o.Counter("interferometry_layouts_failed_total", "layouts that exhausted their retry budget"),
		layoutsRetried:   o.Counter("interferometry_layouts_retried_total", "layouts that needed more than one attempt"),
		attempts:         o.Counter("interferometry_attempts_total", "build+measure attempts, including retries"),
		restored:         o.Counter("interferometry_checkpoint_restored_total", "observations restored from a checkpoint on resume"),
		outliersFlagged:  o.Counter("interferometry_outliers_flagged_total", "observations flagged by the MAD screen"),
		outliersRepaired: o.Counter("interferometry_outliers_repaired_total", "flagged observations replaced by re-measurement"),
		compileSec:       o.Histogram("interferometry_stage_compile_seconds", "reorder+link+check stage latency", obs.DurationBuckets),
		runSec:           o.Histogram("interferometry_stage_run_seconds", "measurement stage latency", obs.DurationBuckets),
		fitSec:           o.Histogram("interferometry_stage_fit_seconds", "plausibility-check+record stage latency", obs.DurationBuckets),
		layoutSec:        o.Histogram("interferometry_layout_seconds", "whole-layout latency including retries", obs.DurationBuckets),
	}
}

// layoutID derives the deterministic span ID of campaign-local layout i.
func (co *campaignObs) layoutID(cfg *CampaignConfig, i int) uint64 {
	return obs.SpanID(co.campID, tagLayout, uint64(cfg.FirstLayout+i))
}

// stage is one timed, traced step of a layout measurement.
type stage struct {
	co   *campaignObs
	span obs.Span
	hist *obs.Histogram
	t0   time.Time
}

// stageStart opens a stage span in the worker's tid lane (lane w+1; lane
// 0 is reserved for campaign-level spans) and starts its latency timer.
// The stage tag selects both the span identity and the latency histogram.
func (co *campaignObs) stageStart(name string, layoutID, tag uint64, w int) stage {
	if co == nil {
		return stage{}
	}
	var hist *obs.Histogram
	switch tag {
	case tagCompile:
		hist = co.compileSec
	case tagRun:
		hist = co.runSec
	case tagFit:
		hist = co.fitSec
	}
	return stage{
		co:   co,
		span: co.o.StartSpan(name, obs.SpanID(layoutID, tag), layoutID, w+1),
		hist: hist,
		t0:   time.Now(),
	}
}

// end closes the span and records the stage latency.
func (s stage) end() {
	if s.co == nil {
		return
	}
	s.hist.Observe(time.Since(s.t0).Seconds())
	s.span.End()
}

// supTel is superviseFor's telemetry sink: per-worker busy/idle time and
// per-index queue wait (the gap between a worker freeing up and its next
// index's work starting). A nil *supTel keeps the supervisor free of any
// clock reads.
type supTel struct {
	busy *obs.Gauge
	idle *obs.Gauge
	wait *obs.Histogram
}

// newSupTel resolves the supervisor instruments, or nil without an
// observer. The gauges accumulate across sweeps and workers; the report
// reader compares busy against busy+idle for utilization.
func newSupTel(o *obs.Observer) *supTel {
	if o == nil {
		return nil
	}
	return &supTel{
		busy: o.Gauge("interferometry_worker_busy_seconds", "total worker time spent inside sweep bodies"),
		idle: o.Gauge("interferometry_worker_idle_seconds", "total worker time spent waiting for work or draining"),
		wait: o.Histogram("interferometry_queue_wait_seconds", "per-index wait between a worker freeing up and its next index starting", obs.DurationBuckets),
	}
}

// harnessMetrics builds the pmc instrument set from the observer.
func harnessMetrics(o *obs.Observer) *pmc.HarnessMetrics {
	if o == nil {
		return nil
	}
	return &pmc.HarnessMetrics{
		Measurements: o.Counter("interferometry_pmc_measurements_total", "layout measurements performed"),
		Simulations:  o.Counter("interferometry_pmc_simulations_total", "full machine simulations executed"),
		SynthRuns:    o.Counter("interferometry_pmc_synth_runs_total", "protocol runs synthesized from a shared simulation"),
	}
}

// builderMetrics builds the toolchain instrument set from the observer.
func builderMetrics(o *obs.Observer) *toolchain.BuilderMetrics {
	if o == nil {
		return nil
	}
	return &toolchain.BuilderMetrics{
		Builds:       o.Counter("interferometry_builder_builds_total", "layout links performed"),
		BuildSeconds: o.Histogram("interferometry_builder_build_seconds", "reorder+link latency", obs.DurationBuckets),
	}
}

// sweepSpan opens a campaign-level span for one of the dataset sweeps
// (model fit, predictor eval, cache eval), parented on the campaign
// span; it is inert without an observer.
func sweepSpan(cfg *CampaignConfig, name string, tag uint64) obs.Span {
	if cfg.Obs == nil {
		return obs.Span{}
	}
	campID := campSpanID(cfg)
	return cfg.Obs.StartSpan(name, obs.SpanID(campID, tag), campID, 0)
}

// rootSpan opens a parentless span for studies that run outside a
// campaign (the linearity study).
func rootSpan(o *obs.Observer, name string, id uint64) obs.Span {
	if o == nil {
		return obs.Span{}
	}
	return o.StartSpan(name, id, 0, 0)
}
