package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"interferometry/internal/atomicio"
)

// CheckpointConfig configures campaign checkpointing.
type CheckpointConfig struct {
	// Dir is the campaign directory. When non-empty, every completed
	// observation is persisted to Dir/observations.jsonl; each flush
	// writes a temp file and renames it over the previous checkpoint, so
	// a kill at any instant leaves a complete, parseable file.
	Dir string
	// Resume reloads an existing checkpoint and measures only the
	// layouts it is missing. Because every layout is an independent
	// deterministic function of the config, the resumed dataset is
	// bit-identical to an uninterrupted run. Without Resume an existing
	// checkpoint is overwritten.
	Resume bool
}

// CheckpointFile is the name of the observation log inside the campaign
// directory.
const CheckpointFile = "observations.jsonl"

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// ckptHeader is the first JSONL line: the campaign identity. A resume
// whose config derives a different header refuses to mix observations.
type ckptHeader struct {
	V            int    `json:"v"`
	Benchmark    string `json:"benchmark"`
	BaseSeed     uint64 `json:"base_seed"`
	InputSeed    uint64 `json:"input_seed"`
	Budget       uint64 `json:"budget"`
	LimiterStop  uint64 `json:"limiter_stop,omitempty"`
	FirstLayout  int    `json:"first_layout"`
	Layouts      int    `json:"layouts"`
	HeapMode     uint8  `json:"heap_mode"`
	Fidelity     uint8  `json:"fidelity"`
	RunsPerGroup int    `json:"runs_per_group"`
}

func campaignHeader(cfg *CampaignConfig) ckptHeader {
	return ckptHeader{
		V:            checkpointVersion,
		Benchmark:    cfg.Program.Name,
		BaseSeed:     cfg.BaseSeed,
		InputSeed:    cfg.InputSeed,
		Budget:       cfg.Budget,
		LimiterStop:  cfg.Limiter.StopCount,
		FirstLayout:  cfg.FirstLayout,
		Layouts:      cfg.Layouts,
		HeapMode:     uint8(cfg.HeapMode),
		Fidelity:     uint8(cfg.Fidelity),
		RunsPerGroup: cfg.RunsPerGroup,
	}
}

// ckptRecord is one observation line.
type ckptRecord struct {
	Index        int      `json:"index"`
	LayoutSeed   uint64   `json:"layout_seed"`
	HeapSeed     uint64   `json:"heap_seed"`
	Cycles       uint64   `json:"cycles"`
	Instructions uint64   `json:"instructions"`
	Events       []uint64 `json:"events"`
	Runs         int      `json:"runs"`
	Status       uint8    `json:"status"`
	Attempts     int      `json:"attempts"`
}

func recordOf(i int, o Observation) ckptRecord {
	return ckptRecord{
		Index:        i,
		LayoutSeed:   o.LayoutSeed,
		HeapSeed:     o.HeapSeed,
		Cycles:       o.Cycles,
		Instructions: o.Instructions,
		Events:       append([]uint64(nil), o.Events[:]...),
		Runs:         o.Runs,
		Status:       uint8(o.Status),
		Attempts:     o.Attempts,
	}
}

func (r ckptRecord) observation() Observation {
	o := Observation{
		LayoutSeed: r.LayoutSeed,
		HeapSeed:   r.HeapSeed,
		Status:     ObsStatus(r.Status),
		Attempts:   r.Attempts,
	}
	o.Cycles = r.Cycles
	o.Instructions = r.Instructions
	o.Runs = r.Runs
	copy(o.Events[:], r.Events)
	return o
}

// checkpointWriter persists campaign progress. Workers call put
// concurrently; every put rewrites the whole file and atomically renames
// it into place. Campaigns are hundreds of layouts, so the rewrite is a
// few kilobytes — durability is worth far more here than write
// throughput.
type checkpointWriter struct {
	path   string
	header ckptHeader

	mu   sync.Mutex
	recs map[int]ckptRecord
	err  error // first write failure, surfaced at campaign end
}

// openCheckpoint prepares the campaign directory and, when resuming,
// loads previously completed observations keyed by campaign-local index.
// Failed records are not treated as done: a resume retries them.
func openCheckpoint(cfg *CampaignConfig) (*checkpointWriter, map[int]Observation, error) {
	dir := cfg.Checkpoint.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	w := &checkpointWriter{
		path:   filepath.Join(dir, CheckpointFile),
		header: campaignHeader(cfg),
		recs:   make(map[int]ckptRecord),
	}
	loaded := make(map[int]Observation)
	if cfg.Checkpoint.Resume {
		recs, err := readCheckpoint(w.path, w.header)
		if err != nil {
			return nil, nil, err
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= cfg.Layouts {
				return nil, nil, fmt.Errorf("core: checkpoint record index %d outside campaign [0,%d)", rec.Index, cfg.Layouts)
			}
			if rec.LayoutSeed != cfg.layoutSeed(rec.Index) {
				return nil, nil, fmt.Errorf("core: checkpoint record %d has layout seed %#x, campaign derives %#x — checkpoint belongs to a different campaign", rec.Index, rec.LayoutSeed, cfg.layoutSeed(rec.Index))
			}
			w.recs[rec.Index] = rec
			if ObsStatus(rec.Status) != StatusFailed {
				loaded[rec.Index] = rec.observation()
			}
		}
	}
	// Establish (or truncate) the on-disk checkpoint immediately so a
	// campaign that dies before its first observation still leaves a
	// well-formed file.
	if err := w.flushLocked(); err != nil {
		return nil, nil, err
	}
	return w, loaded, nil
}

// readCheckpoint parses a checkpoint file and validates its header
// against want. A missing file is not an error: resuming a campaign that
// never started is just a fresh start.
func readCheckpoint(path string, want ckptHeader) ([]ckptRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: open checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("core: read checkpoint: %w", err)
		}
		return nil, nil // empty file: nothing done yet
	}
	var hdr ckptHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("core: checkpoint header: %w", err)
	}
	if hdr != want {
		return nil, fmt.Errorf("core: checkpoint header %+v does not match campaign %+v", hdr, want)
	}
	var recs []ckptRecord
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec ckptRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("core: checkpoint record: %w", err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read checkpoint: %w", err)
	}
	return recs, nil
}

// put records one completed observation and flushes the checkpoint.
func (w *checkpointWriter) put(i int, o Observation) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.recs[i] = recordOf(i, o)
	if err := w.flushLocked(); err != nil && w.err == nil {
		w.err = err
	}
}

// flushLocked writes header + records (sorted by index) to a temp file
// and renames it over the checkpoint. Callers hold w.mu.
func (w *checkpointWriter) flushLocked() error {
	idxs := make([]int, 0, len(w.recs))
	for i := range w.recs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(w.header); err != nil {
		return fmt.Errorf("core: checkpoint encode: %w", err)
	}
	for _, i := range idxs {
		if err := enc.Encode(w.recs[i]); err != nil {
			return fmt.Errorf("core: checkpoint encode: %w", err)
		}
	}
	// atomicio fsyncs the temp file before the rename and the directory
	// after it: without those a crash right after the rename can lose
	// the checkpoint entry on some filesystems even though the rename
	// itself "succeeded".
	if err := atomicio.WriteFile(w.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: checkpoint write: %w", err)
	}
	return nil
}

// close surfaces the first deferred write error.
func (w *checkpointWriter) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}
