package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sort"

	"interferometry/internal/obs"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// Layout search (§6.3 turned inside out): instead of sampling random
// layouts to measure how much layout matters, a search campaign
// optimizes over the layout space — a seeded evolutionary loop breeding
// procedure orders and link orders toward low CPI. The search is an
// ordinary campaign underneath: every individual goes through the same
// build and measure seams, the same batched replay, the same retry and
// outlier machinery, so a search result carries exactly the provenance
// a sampling campaign's does. Everything is keyed off BaseSeed; the
// same spec and seed reproduce the same trajectory byte for byte,
// whatever the worker count, batching, or scheduler.

// SearchConfig describes one layout-search campaign. The embedded
// CampaignConfig supplies the benchmark, machine, fidelity, seeds,
// retries, workers and checkpointing; Layouts is ignored (the
// population is the per-generation layout count).
type SearchConfig struct {
	Campaign CampaignConfig

	// Population is the number of individuals per generation. Zero
	// means 16.
	Population int
	// Generations is the number of generations to run. Zero means 8.
	Generations int
	// Elite is how many of the best individuals survive unchanged into
	// the next generation. Zero means 2.
	Elite int
	// TournamentK is the tournament size for parent selection. Zero
	// means 3.
	TournamentK int
}

func (c *SearchConfig) population() int {
	if c.Population <= 0 {
		return 16
	}
	return c.Population
}

func (c *SearchConfig) generations() int {
	if c.Generations <= 0 {
		return 8
	}
	return c.Generations
}

func (c *SearchConfig) elite() int {
	if c.Elite <= 0 {
		return 2
	}
	return c.Elite
}

func (c *SearchConfig) tournamentK() int {
	if c.TournamentK <= 0 {
		return 3
	}
	return c.TournamentK
}

// Resolved returns the config with the search defaults filled in, so
// callers hashing or validating the search shape see effective values
// rather than spellings of them.
func (c SearchConfig) Resolved() SearchConfig {
	c.Population = c.population()
	c.Generations = c.generations()
	c.Elite = c.elite()
	c.TournamentK = c.tournamentK()
	return c
}

// Search seed tags: generation-zero genomes and the per-generation
// evolution stream.
const (
	tagGenZero uint64 = 0x67656e30 // "gen0"
	tagEvolve  uint64 = 0x65766f6c // "evol"
)

// genomeSeed derives the seed of the i-th generation-zero genome.
func (c *SearchConfig) genomeSeed(i int) uint64 {
	return xrand.Mix(c.Campaign.BaseSeed, tagGenZero, uint64(i)) | 1
}

// evolveRand returns the evolution stream of one generation: selection,
// crossover and mutation draw from it in a fixed order, so the bred
// population depends only on (BaseSeed, gen, parent population).
func (c *SearchConfig) evolveRand(gen int) *xrand.Rand {
	return xrand.New(xrand.Mix(c.Campaign.BaseSeed, tagEvolve, uint64(gen)))
}

// Individual is one measured genome of a generation.
type Individual struct {
	Genome toolchain.Genome
	Obs    Observation
}

// valid reports whether the individual's measurement can compete in
// selection: failed or garbage-counter observations never breed.
func (in *Individual) valid() bool {
	return in.Obs.Status != StatusFailed && measurementValid(in.Obs.Measurement)
}

// searchBetter is the total order selection uses: valid individuals
// before invalid, then ascending CPI, then ascending fingerprint so
// equal-CPI individuals rank identically on every worker topology. It
// is a package variable, not an inline closure, so the determinism
// suite can flip the tie-break and watch the trajectory change
// (mutation-verification of the pin).
var searchBetter = func(a, b *Individual) bool {
	av, bv := a.valid(), b.valid()
	if av != bv {
		return av
	}
	if av {
		ac, bc := a.Obs.CPI(), b.Obs.CPI()
		if ac != bc {
			return ac < bc
		}
	}
	return a.Genome.Fingerprint() < b.Genome.Fingerprint()
}

// GenerationResult is one settled generation.
type GenerationResult struct {
	Gen         int
	Individuals []Individual
	// BestIdx is the index of the generation's best individual under
	// the selection order.
	BestIdx int
	// PopHash is the SHA-256 of the settled population: every
	// individual's genome encoding and measurement counters, in
	// population order. Status and attempt counts are excluded, so a
	// retried individual hashes identically to a first-attempt success
	// and the hash pins results, not schedules.
	PopHash string
}

// Best returns the generation's best individual.
func (g *GenerationResult) Best() Individual {
	return g.Individuals[g.BestIdx]
}

// SearchResult is the outcome of a search campaign.
type SearchResult struct {
	Benchmark   string
	Config      SearchConfig
	Generations []GenerationResult
	// Best is the best individual across all generations; BestGen is
	// the generation that produced it.
	Best    Individual
	BestGen int
	// TrajectoryHash is the SHA-256 over the per-generation population
	// hashes: two searches with equal trajectory hashes walked the
	// identical sequence of populations and measurements.
	TrajectoryHash string
}

// Search runs a layout-search campaign generation by generation. It is
// driven either by RunSearch (in-process) or by a scheduler that farms
// each generation's individuals out to workers and hands the settled
// observations back to Settle.
type Search struct {
	cfg    SearchConfig
	runner *LayoutRunner
	units  []toolchain.Unit
	so     *searchObs
}

// searchObs holds the search-level instruments.
type searchObs struct {
	generations *obs.Counter
	bestCPI     *obs.Gauge
}

func newSearchObs(o *obs.Observer) *searchObs {
	if o == nil {
		return nil
	}
	return &searchObs{
		generations: o.Counter("interferometry_search_generations_total", "search generations settled"),
		bestCPI:     o.Gauge("interferometry_search_best_cpi", "best CPI found so far by the layout search"),
	}
}

// NewSearch validates the config and prepares the shared trace, seams
// and per-worker harnesses (workers <= 0 means 1). The embedded
// campaign's Layouts is overridden with the population size.
func NewSearch(cfg SearchConfig, workers int) (*Search, error) {
	if cfg.Population < 0 || cfg.Generations < 0 {
		return nil, errors.New("core: search population and generations must be non-negative")
	}
	if cfg.elite() >= cfg.population() {
		return nil, fmt.Errorf("core: elite %d must be smaller than population %d", cfg.elite(), cfg.population())
	}
	cfg.Campaign.Layouts = cfg.population()
	cfg.Campaign.FirstLayout = 0
	runner, err := NewLayoutRunner(cfg.Campaign, workers)
	if err != nil {
		return nil, err
	}
	units := toolchain.NewBuilder(cfg.Campaign.Program, cfg.Campaign.Compile, cfg.Campaign.Link).Units()
	return &Search{
		cfg:    cfg,
		runner: runner,
		units:  units,
		so:     newSearchObs(cfg.Campaign.Obs),
	}, nil
}

// Config returns the search configuration with defaults resolved into
// the embedded campaign (Layouts = population).
func (s *Search) Config() SearchConfig { return s.cfg }

// Generations returns the configured generation count.
func (s *Search) Generations() int { return s.cfg.generations() }

// Population returns the configured population size.
func (s *Search) Population() int { return s.cfg.population() }

// Runner exposes the per-genome pipeline for external schedulers.
func (s *Search) Runner() *LayoutRunner { return s.runner }

// Genomes derives generation gen's population. Generation zero is
// seeded directly from the base seed; later generations breed from the
// previous settled generation: the elite individuals survive unchanged
// and the rest are tournament-selected crossovers with mutation. Only
// valid individuals compete — a failed or degraded individual can
// neither survive as an elite nor be drawn as a parent.
func (s *Search) Genomes(gen int, prev *GenerationResult) ([]toolchain.Genome, error) {
	pop := s.cfg.population()
	out := make([]toolchain.Genome, 0, pop)
	if gen == 0 {
		for i := 0; i < pop; i++ {
			out = append(out, toolchain.GenomeOf(s.units, s.cfg.genomeSeed(i)))
		}
		return out, nil
	}
	if prev == nil {
		return nil, fmt.Errorf("core: generation %d needs the settled generation %d", gen, gen-1)
	}
	// Rank the parents; the valid prefix is the breeding pool.
	ranked := make([]*Individual, len(prev.Individuals))
	for i := range prev.Individuals {
		ranked[i] = &prev.Individuals[i]
	}
	sort.SliceStable(ranked, func(a, b int) bool { return searchBetter(ranked[a], ranked[b]) })
	nValid := 0
	for _, in := range ranked {
		if !in.valid() {
			break
		}
		nValid++
	}
	if nValid == 0 {
		return nil, fmt.Errorf("core: generation %d has no valid parent", gen-1)
	}
	rng := s.cfg.evolveRand(gen)
	pick := func() toolchain.Genome {
		best := nValid
		for k := 0; k < s.cfg.tournamentK(); k++ {
			if c := rng.Intn(nValid); c < best {
				best = c
			}
		}
		return ranked[best].Genome
	}
	for e := 0; e < s.cfg.elite() && e < nValid; e++ {
		out = append(out, ranked[e].Genome.Clone())
	}
	for len(out) < pop {
		child := toolchain.CrossoverGenomes(pick(), pick(), rng)
		out = append(out, toolchain.MutateGenome(child, rng))
	}
	return out, nil
}

// Evaluate measures one generation's population in-process: chunked
// across the runner's workers, each chunk built, batch-primed and
// measured through the exact per-layout pipeline, with the campaign's
// retry budget per genome. Failures never abort the generation — an
// individual that exhausts its attempts becomes a StatusFailed
// observation and loses selection. The only error is cancellation.
func (s *Search) Evaluate(ctx context.Context, genomes []toolchain.Genome) ([]Observation, error) {
	if ctx == nil {
		ctx = s.cfg.Campaign.context()
	}
	n := len(genomes)
	workers := s.runner.Workers()
	out := make([]Observation, n)
	chunk := s.cfg.Campaign.batchSize(workers)
	_, err := superviseChunksT(ctx, workers, n, chunk, n, newSupTel(s.cfg.Campaign.Obs), func(w, lo, hi int, _ func(int, error)) {
		s.evaluateChunk(w, lo, hi, genomes, out)
	})
	if err != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("core: search evaluation canceled: %w", context.Cause(ctx))
	}
	return out, err
}

// evaluateChunk drives genomes [lo, hi) on worker w: one guarded build
// attempt each, one batched trace walk over the built ones, then the
// per-genome measure with the sequential retry tail. Mirrors
// measureChunk's phases; failures degrade to StatusFailed observations
// instead of sweeping failures because a search individual that cannot
// be measured simply loses selection.
func (s *Search) evaluateChunk(w, lo, hi int, genomes []toolchain.Genome, out []Observation) {
	r := s.runner
	cfg := &r.cfg
	n := hi - lo
	exes := make([]*toolchain.Executable, n)
	errs := make([]error, n)

	// Phase A: attempt one's build for every genome in the chunk.
	for j := 0; j < n; j++ {
		g := genomes[lo+j]
		if r.co != nil {
			r.co.attempts.Inc()
		}
		var exe *toolchain.Executable
		err := runGuarded(func(_, _ int) error {
			var berr error
			exe, berr = buildGenome(cfg, r.co, r.gb, g, w)
			return berr
		}, w, lo+j)
		if err != nil {
			exe = nil
		}
		exes[j] = exe
		errs[j] = err
	}

	// Phase B: one trace walk for the built genomes. The same exe
	// pointers flow into MeasureGenome below, which the det cache
	// matches on.
	var builtG []toolchain.Genome
	var builtE []*toolchain.Executable
	for j := 0; j < n; j++ {
		if exes[j] != nil {
			builtG = append(builtG, genomes[lo+j])
			builtE = append(builtE, exes[j])
		}
	}
	if len(builtG) >= 2 {
		runGuarded(func(_, _ int) error {
			return r.PrimeGenomes(w, builtG, builtE)
		}, w, lo)
	}

	// Phase C: the per-genome pipeline with the sequential retry tail.
	for j := 0; j < n; j++ {
		g := genomes[lo+j]
		var o Observation
		err := errs[j]
		if err == nil {
			err = runGuarded(func(_, _ int) error {
				var merr error
				o, merr = measureGenomeBuilt(cfg, r.co, r.meas[w], r.trace, exes[j], g.Fingerprint(), w)
				return merr
			}, w, lo+j)
		}
		if err == nil {
			o.Attempts = 1
			out[lo+j] = o
			continue
		}
		o, err = s.retryGenome(g, w, err)
		if err != nil {
			out[lo+j] = r.FailedGenomeObservation(g, cfg.maxAttempts())
			continue
		}
		out[lo+j] = o
	}
}

// retryGenome is the genome retry tail: attempt one already failed, so
// run attempts 2..maxAttempts with the campaign's backoff keyed by the
// fingerprint. Panics count as attempt failures — a search individual
// is never worth killing the generation over.
func (s *Search) retryGenome(g toolchain.Genome, w int, firstErr error) (Observation, error) {
	r := s.runner
	cfg := &r.cfg
	fp := g.Fingerprint()
	attempts := cfg.maxAttempts()
	lastErr := firstErr
	for a := 1; a < attempts; a++ {
		if r.co != nil {
			r.co.o.Prog().Retry()
		}
		if serr := cfg.Backoff.Sleep(cfg.context(), a, cfg.BaseSeed, fp); serr != nil {
			return Observation{}, fmt.Errorf("core: genome %016x: retry backoff interrupted: %w", fp, serr)
		}
		var o Observation
		err := runGuarded(func(_, _ int) error {
			if r.co != nil {
				r.co.attempts.Inc()
			}
			exe, berr := buildGenome(cfg, r.co, r.gb, g, w)
			if berr != nil {
				return berr
			}
			var merr error
			o, merr = measureGenomeBuilt(cfg, r.co, r.meas[w], r.trace, exe, fp, w)
			return merr
		}, w, a)
		if err == nil {
			o.Attempts = a + 1
			o.Status = StatusRetried
			return o, nil
		}
		lastErr = err
	}
	return Observation{}, fmt.Errorf("core: genome %016x failed after %d attempts: %w", fp, attempts, lastErr)
}

// Settle turns one generation's raw observations into a settled
// GenerationResult: the per-generation outlier screen re-measures
// flagged individuals, invalid-but-unfailed measurements are degraded
// to StatusFailed so garbage counters can never win selection (the
// i.i.d. assumption behind the campaign-wide screen does not hold
// within a converging population, so the screen here flags only
// invalid counter reads, never slow-but-real CPIs), the best
// individual is ranked, and the population hash is computed. An error
// means the generation produced no valid individual.
func (s *Search) Settle(gen int, genomes []toolchain.Genome, observations []Observation) (GenerationResult, error) {
	if len(genomes) != len(observations) {
		return GenerationResult{}, fmt.Errorf("core: %d genomes with %d observations", len(genomes), len(observations))
	}
	inds := make([]Individual, len(genomes))
	for i := range genomes {
		inds[i] = Individual{Genome: genomes[i], Obs: observations[i]}
	}
	s.screenGeneration(inds)
	best := -1
	for i := range inds {
		if !inds[i].valid() {
			continue
		}
		if best < 0 || searchBetter(&inds[i], &inds[best]) {
			best = i
		}
	}
	if best < 0 {
		return GenerationResult{}, fmt.Errorf("core: search generation %d: no valid individual", gen)
	}
	res := GenerationResult{
		Gen:         gen,
		Individuals: inds,
		BestIdx:     best,
		PopHash:     populationHash(inds),
	}
	if s.so != nil {
		s.so.generations.Inc()
	}
	return res, nil
}

// screenGeneration is the search-side counterpart of screenOutliers,
// adapted for a non-i.i.d. population: individuals of a converging
// generation legitimately cluster, so CPI distance from the median is
// evidence of a corrupt counter read only when the measurement is
// already invalid. Invalid unfailed measurements are re-measured once
// on slot 0; a re-measurement that comes back valid replaces the
// observation (StatusRetried, attempts accumulated), anything else is
// degraded to StatusFailed. Failed individuals are left alone.
func (s *Search) screenGeneration(inds []Individual) {
	r := s.runner
	cfg := &r.cfg
	for i := range inds {
		in := &inds[i]
		if in.Obs.Status == StatusFailed || measurementValid(in.Obs.Measurement) {
			continue
		}
		prev := in.Obs
		var o Observation
		err := runGuarded(func(_, _ int) error {
			if r.co != nil {
				r.co.attempts.Inc()
			}
			exe, berr := buildGenome(cfg, r.co, r.gb, in.Genome, 0)
			if berr != nil {
				return berr
			}
			var merr error
			o, merr = measureGenomeBuilt(cfg, r.co, r.meas[0], r.trace, exe, in.Genome.Fingerprint(), 0)
			return merr
		}, 0, i)
		if err == nil && measurementValid(o.Measurement) {
			o.Status = StatusRetried
			o.Attempts = prev.Attempts + 1
			in.Obs = o
			continue
		}
		in.Obs = r.FailedGenomeObservation(in.Genome, prev.Attempts+1)
	}
}

// populationHash hashes the settled population: genome encodings and
// measurement counters, in order. Status and Attempts are deliberately
// excluded — a retried measurement is bit-identical to a clean one, so
// the hash pins what was measured, not how many tries it took.
func populationHash(inds []Individual) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := range inds {
		enc := toolchain.EncodeGenome(inds[i].Genome)
		word(uint64(len(enc)))
		h.Write(enc)
		o := &inds[i].Obs
		word(o.LayoutSeed)
		word(o.HeapSeed)
		word(o.Cycles)
		word(o.Instructions)
		for _, ev := range o.Events {
			word(ev)
		}
		word(uint64(o.Runs))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Finalize assembles the search result from the settled generations:
// the best individual across the whole trajectory (earliest generation
// wins ties) and the trajectory hash.
func (s *Search) Finalize(gens []GenerationResult) (*SearchResult, error) {
	if len(gens) == 0 {
		return nil, errors.New("core: search finished with no settled generation")
	}
	h := sha256.New()
	bestGen := 0
	for k := range gens {
		h.Write([]byte(gens[k].PopHash))
		b := gens[k].Best()
		cur := gens[bestGen].Best()
		if k > 0 && searchBetter(&b, &cur) {
			bestGen = k
		}
	}
	best := gens[bestGen].Best()
	if s.so != nil && best.valid() {
		s.so.bestCPI.Set(best.Obs.CPI())
	}
	return &SearchResult{
		Benchmark:      s.cfg.Campaign.Program.Name,
		Config:         s.cfg,
		Generations:    append([]GenerationResult(nil), gens...),
		Best:           best,
		BestGen:        gens[bestGen].Gen,
		TrajectoryHash: hex.EncodeToString(h.Sum(nil)),
	}, nil
}

// RunSearch executes the search campaign in-process: generation by
// generation through Genomes → Evaluate → Settle, checkpointing each
// settled generation when the embedded campaign configures a
// checkpoint directory, and resuming a prefix of settled generations
// bit-identically on restart.
func RunSearch(cfg SearchConfig) (*SearchResult, error) {
	workers := normalizeWorkers(cfg.Campaign.Workers, cfg.population())
	s, err := NewSearch(cfg, workers)
	if err != nil {
		return nil, err
	}
	var sink *SearchCheckpointSink
	var gens []GenerationResult
	if cfg.Campaign.Checkpoint.Dir != "" {
		sink, err = OpenSearchCheckpointSink(s)
		if err != nil {
			return nil, err
		}
		gens = sink.Restored()
	}
	ctx := cfg.Campaign.context()
	for gen := len(gens); gen < s.Generations(); gen++ {
		var prev *GenerationResult
		if gen > 0 {
			prev = &gens[gen-1]
		}
		genomes, err := s.Genomes(gen, prev)
		if err != nil {
			return nil, err
		}
		observations, err := s.Evaluate(ctx, genomes)
		if err != nil {
			return nil, err
		}
		res, err := s.Settle(gen, genomes, observations)
		if err != nil {
			return nil, err
		}
		if sink != nil {
			if err := sink.Put(res); err != nil {
				return nil, err
			}
		}
		gens = append(gens, res)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return nil, err
		}
	}
	return s.Finalize(gens)
}

// HeldOutSeed derives a base seed disjoint from every stream seed
// derives: baselines sampled under it share nothing with the search's
// genome, layout, heap or noise streams, so a search-vs-sampling
// comparison is out-of-sample by construction.
func HeldOutSeed(seed uint64) uint64 {
	return xrand.Mix(seed, 0x68656c64) // "held"
}

// SampleLayoutCPIs measures n random layouts of the search's campaign
// config (the §6.3 sampling the search is compared against) and
// returns the CPIs of the usable observations. The layout seeds derive
// from the campaign's BaseSeed exactly as RunCampaign's do, so a
// baseline run under a held-out seed shares nothing with the search's
// genome streams.
func SampleLayoutCPIs(cfg CampaignConfig, n int) ([]float64, error) {
	cfg.Layouts = n
	cfg.Checkpoint = CheckpointConfig{}
	ds, err := RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	cpis := ds.CPIs()
	valid := cpis[:0]
	for _, c := range cpis {
		if !math.IsNaN(c) && !math.IsInf(c, 0) {
			valid = append(valid, c)
		}
	}
	if len(valid) == 0 {
		return nil, stats.ErrInsufficientData
	}
	return valid, nil
}
