package core

import (
	"fmt"
	"sync"
	"time"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/toolchain"
)

// This file is the campaign side of batched replay (machine.Batch): a
// worker takes a contiguous chunk of layout indices, builds each
// executable, walks the trace ONCE for the whole chunk, and then drives
// every layout through the exact per-layout pipeline the sequential path
// uses — measureBuilt, plausibility check, retry tail, checkpoint. The
// batch primes a per-worker detCache that the worker's pmc.Harness
// consults through the pmc.DetSource seam, so the harness synthesizes
// each measurement from the batch's deterministic replay instead of
// re-simulating. Batch.Run is pinned bit-identical to
// Machine.RunDeterministic lane by lane, which makes the whole batched
// campaign byte-identical to the sequential one: same observations, same
// statuses, same CSV bytes.

// batchSize resolves the campaign's effective batch width for a worker
// count: 0 is automatic (each worker's fair share of the campaign,
// capped at 32 lanes), 1 disables batching. FidelityPaperNaive always
// runs sequentially — that fidelity exists to literally execute every
// protocol run, so serving it from a shared replay would defeat its
// purpose as the equivalence reference.
func (c *CampaignConfig) batchSize(workers int) int {
	if c.Fidelity == pmc.FidelityPaperNaive {
		return 1
	}
	b := c.BatchSize
	if b == 0 {
		if workers < 1 {
			workers = 1
		}
		b = (c.Layouts + workers - 1) / workers
		if b > 32 {
			b = 32
		}
	}
	if b < 1 {
		b = 1
	}
	if b > 64 {
		b = 64 // machine.Batch lane-mask limit
	}
	return b
}

// detCache holds the deterministic replays of one batch chunk, keyed by
// the run spec fields that determine the deterministic outcome. It backs
// the worker's pmc.Harness through the pmc.DetSource seam. Entries are
// only ever written from a successful machine.Batch.Run, whose results
// are pinned bit-identical to the scalar path, so a hit can never change
// a measurement. The cache is per worker slot and reset at every chunk;
// lookups are a linear scan over at most one chunk of entries.
type detCache struct {
	specs []machine.RunSpec
	cs    []machine.Counters
	dets  []float64
}

func (dc *detCache) reset() {
	dc.specs = dc.specs[:0]
	dc.cs = dc.cs[:0]
	dc.dets = dc.dets[:0]
}

func (dc *detCache) put(spec machine.RunSpec, c machine.Counters, det float64) {
	dc.specs = append(dc.specs, spec)
	dc.cs = append(dc.cs, c)
	dc.dets = append(dc.dets, det)
}

// Det implements pmc.DetSource. NoiseSeed and DisableNoise are ignored:
// noise perturbs only the final cycle scalar, never the deterministic
// replay. A non-nil Predictor never matches — the batch ran with the
// built-in predictor.
func (dc *detCache) Det(spec machine.RunSpec) (machine.Counters, float64, bool) {
	if spec.Predictor != nil {
		return machine.Counters{}, 0, false
	}
	for j := range dc.specs {
		s := &dc.specs[j]
		if s.Exe == spec.Exe && s.Trace == spec.Trace &&
			s.HeapMode == spec.HeapMode && s.HeapSeed == spec.HeapSeed {
			return dc.cs[j], dc.dets[j], true
		}
	}
	return machine.Counters{}, 0, false
}

// batchSlot is one worker's batched-replay state: the batch engine, the
// optional delta engine tried before it, the det cache its harness
// reads, and per-chunk scratch.
type batchSlot struct {
	batch *machine.Batch
	// delta is the delta-replay engine, present only when the campaign's
	// DeltaMode allows it and the machine config passes its geometry
	// gates; nil otherwise. run tries it before the batched walk.
	delta *machine.Delta
	cache *detCache

	idxs  []int // pending layout indices of the current chunk
	exes  []*toolchain.Executable
	errs  []error
	specs []machine.RunSpec
}

// run measures the slot's pending specs, choosing the engine per the
// campaign's DeltaMode: DeltaOn tries delta replay and falls back to the
// batched walk on any decline; DeltaAuto additionally requires the
// recording's profitability preflight to pass. Both engines are pinned
// bit-identical to the scalar path, so the choice never changes results.
func (s *batchSlot) run(cfg *CampaignConfig) ([]machine.Counters, []float64, error) {
	if s.delta != nil && len(s.specs) > 0 {
		use := cfg.Delta == DeltaOn
		if cfg.Delta == DeltaAuto {
			ok, err := s.delta.Preflight(s.specs[0])
			use = err == nil && ok
		}
		if use {
			if cs, dets, err := s.delta.Run(s.specs); err == nil {
				return cs, dets, nil
			}
			// A decline (unsupported layout shape, spec mix, or a
			// defensive divergence check) costs only the preflight;
			// the batched walk below measures the same specs.
		}
	}
	return s.batch.Run(s.specs)
}

// batchPool recycles batch engines across campaigns: a Batch's SoA state
// is megabytes of bank tables, and allocating (and zeroing) it per
// campaign costs more than any single campaign's walk shortcut saves at
// small layout counts. Run re-derives all layout-dependent state and
// flushes every bank, so a recycled engine is indistinguishable from a
// fresh one; only engines matching the campaign's exact machine config
// and lane need are reused.
var batchPool = sync.Pool{}

// getBatch returns a pooled or fresh engine for the config, or an error
// when the configuration cannot be batched.
func getBatch(mcfg machine.Config, lanes int) (*machine.Batch, error) {
	if v := batchPool.Get(); v != nil {
		b := v.(*machine.Batch)
		if b.Config() == mcfg && b.MaxLanes() >= lanes {
			return b, nil
		}
		// Wrong geometry: drop it rather than chaining Gets.
	}
	return machine.NewBatch(mcfg, lanes)
}

// deltaPool recycles delta engines the same way batchPool recycles batch
// engines: the per-lane replay state is sized by the machine config, and
// Invalidate drops everything program-keyed, so a recycled engine is
// indistinguishable from a fresh one.
var deltaPool = sync.Pool{}

// getDelta returns a pooled or fresh delta engine for the config, or nil
// when the configuration fails the delta geometry gates (the campaign
// then simply never tries delta replay — never an error).
func getDelta(mcfg machine.Config, lanes int) *machine.Delta {
	if v := deltaPool.Get(); v != nil {
		d := v.(*machine.Delta)
		if d.Config() == mcfg && d.MaxLanes() >= lanes {
			return d
		}
	}
	d, err := machine.NewDelta(mcfg, lanes)
	if err != nil {
		return nil
	}
	return d
}

// newBatchSlots builds one batchSlot per worker and wires each harness's
// Det source. It returns nil when the machine configuration cannot be
// batched (a cache or BTB geometry over 8 ways); the caller falls back
// to the sequential path. Unless the campaign disabled delta replay,
// each slot also carries a delta engine for run to try first. The slots'
// engines must be released back to their pools with releaseBatchSlots
// when the campaign finishes.
func newBatchSlots(mcfg machine.Config, harnesses []*pmc.Harness, lanes int, dm DeltaMode) []*batchSlot {
	slots := make([]*batchSlot, len(harnesses))
	for w := range slots {
		b, err := getBatch(mcfg, lanes)
		if err != nil {
			return nil
		}
		slots[w] = &batchSlot{batch: b, cache: &detCache{}}
		if dm != DeltaOff {
			slots[w].delta = getDelta(mcfg, lanes)
		}
		harnesses[w].Det = slots[w].cache
	}
	return slots
}

// releaseBatchSlots returns every slot's engines to their pools.
// Invalidate drops the engines' program-keyed tables so a pooled engine
// does not pin the campaign's program in memory.
func releaseBatchSlots(slots []*batchSlot) {
	for _, s := range slots {
		if s == nil {
			continue
		}
		if s.batch != nil {
			s.batch.Invalidate()
			batchPool.Put(s.batch)
			s.batch = nil
		}
		if s.delta != nil {
			s.delta.Invalidate()
			deltaPool.Put(s.delta)
			s.delta = nil
		}
	}
}

// measureChunk drives the layouts of one chunk [lo, hi) on worker w,
// phase by phase:
//
//	A. one guarded build attempt per layout (exactly attempt one of
//	   measureLayout);
//	B. one batched trace walk over every successfully built layout,
//	   priming the worker's det cache — a batch failure just leaves the
//	   cache empty and phase C simulates sequentially;
//	C. per layout, the sequential pipeline: measureBuilt through the
//	   (possibly fault-wrapped) measure seam, then on any failure the
//	   same retry tail measureLayout runs — full build+measure attempts
//	   with the campaign's backoff, identical error wrapping, identical
//	   attempt accounting.
//
// A panic in a per-layout phase is that layout's final failure (the
// sequential supervisor does not retry panics); a panic in the shared
// batch walk is treated as a batch failure, costing only the shortcut.
// deliver and fail receive each layout's outcome exactly as the
// sequential sweep body would produce it.
func measureChunk(cfg *CampaignConfig, co *campaignObs, slot *batchSlot, meas measureSeam, build buildSeam, trace *interp.Trace, lo, hi, w int, done []bool, deliver func(i int, o Observation), fail func(i int, err error)) {
	slot.idxs = slot.idxs[:0]
	for i := lo; i < hi; i++ {
		if done[i] {
			if co != nil {
				co.o.Prog().Done()
			}
			continue
		}
		slot.idxs = append(slot.idxs, i)
	}
	if len(slot.idxs) == 0 {
		return
	}
	slot.exes = slot.exes[:0]
	slot.errs = slot.errs[:0]
	slot.cache.reset()

	// Phase A: attempt one's build for every layout in the chunk.
	for _, i := range slot.idxs {
		if co != nil {
			co.attempts.Inc()
		}
		var exe *toolchain.Executable
		err := runGuarded(func(_, _ int) error {
			var berr error
			exe, berr = buildLayout(cfg, co, build, i, w)
			return berr
		}, w, i)
		if err != nil {
			exe = nil
		}
		slot.exes = append(slot.exes, exe)
		slot.errs = append(slot.errs, err)
	}

	// Phase B: one trace walk for every built layout. The spec mirrors
	// measureBuilt's exactly (Batch.Run ignores the noise fields).
	slot.specs = slot.specs[:0]
	for j, i := range slot.idxs {
		if slot.exes[j] == nil {
			continue
		}
		hs := uint64(0)
		if cfg.HeapMode == heap.ModeRandomized {
			hs = cfg.heapSeed(i)
		}
		slot.specs = append(slot.specs, machine.RunSpec{
			Exe:      slot.exes[j],
			Trace:    trace,
			HeapMode: cfg.HeapMode,
			HeapSeed: hs,
		})
	}
	if len(slot.specs) > 0 {
		runGuarded(func(_, _ int) error {
			cs, dets, err := slot.run(cfg)
			if err != nil {
				return err
			}
			for j := range slot.specs {
				slot.cache.put(slot.specs[j], cs[j], dets[j])
			}
			return nil
		}, w, lo)
	}

	// Phase C: the per-layout pipeline, sequential semantics verbatim.
	for j, i := range slot.idxs {
		layoutStage := newLayoutStage(cfg, co, i, w)
		var o Observation
		err := slot.errs[j]
		if err == nil {
			err = runGuarded(func(_, _ int) error {
				var merr error
				o, merr = measureBuilt(cfg, co, meas, trace, slot.exes[j], i, w)
				return merr
			}, w, i)
		}
		if err == nil {
			o.Attempts = 1
		} else if _, isPanic := err.(*PanicError); isPanic {
			// A recovered panic is the layout's final failure: the
			// sequential supervisor never retries across a panic.
			layoutStage.end()
			fail(i, err)
			continue
		} else {
			firstErr := err
			err = runGuarded(func(_, _ int) error {
				var rerr error
				o, rerr = resumeLayout(cfg, co, meas, build, trace, i, w, firstErr)
				return rerr
			}, w, i)
			if err != nil {
				layoutStage.end()
				fail(i, err)
				continue
			}
		}
		layoutStage.end()
		deliver(i, o)
	}
}

// resumeLayout is measureLayout's retry tail: attempt one already failed
// with firstErr, so run attempts 2..maxAttempts with the same backoff
// spacing, retry telemetry, status stamping and error wrapping as the
// sequential loop.
func resumeLayout(cfg *CampaignConfig, co *campaignObs, meas measureSeam, build buildSeam, trace *interp.Trace, i, w int, firstErr error) (Observation, error) {
	attempts := cfg.maxAttempts()
	lastErr := firstErr
	for a := 1; a < attempts; a++ {
		if co != nil {
			co.o.Prog().Retry()
		}
		if serr := cfg.Backoff.Sleep(cfg.context(), a, cfg.BaseSeed, cfg.layoutSeed(i)); serr != nil {
			return Observation{}, fmt.Errorf("core: layout %d: retry backoff interrupted: %w", i, serr)
		}
		obs, err := measureLayoutOnce(cfg, co, meas, build, trace, i, w)
		if err == nil {
			obs.Attempts = a + 1
			obs.Status = StatusRetried
			return obs, nil
		}
		lastErr = err
	}
	return Observation{}, fmt.Errorf("core: layout %d failed after %d attempts: %w", i, attempts, lastErr)
}

// newLayoutStage opens the per-layout observability stage the sequential
// measureLayout opens: a "layout" span on the worker and the layout
// duration histogram.
func newLayoutStage(cfg *CampaignConfig, co *campaignObs, i, w int) stage {
	if co == nil {
		return stage{}
	}
	layID := co.layoutID(cfg, i)
	return stage{
		co:   co,
		span: co.o.StartSpan("layout", layID, co.campID, w+1),
		hist: co.layoutSec,
		t0:   time.Now(),
	}
}
