package core_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/faultinject"
	"interferometry/internal/results"
)

// datasetCSV renders a dataset to its canonical CSV bytes, the byte-level
// identity the resume tests compare.
func datasetCSV(t *testing.T, ds *core.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := results.WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkpointPath(dir string) string {
	return filepath.Join(dir, core.CheckpointFile)
}

// TestResumeAfterKillIsByteIdentical simulates a kill by truncating the
// checkpoint to a prefix of its records (exactly what an interrupted
// campaign leaves behind, thanks to the atomic-rename flush), then
// resumes. Both the resumed dataset and the final on-disk checkpoint must
// be byte-for-byte identical to an uninterrupted run's.
func TestResumeAfterKillIsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCampaign(20)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	full, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullFile, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" the campaign after 7 observations: keep the header line plus
	// the first 7 records.
	lines := bytes.SplitAfter(fullFile, []byte("\n"))
	if len(lines) < 9 {
		t.Fatalf("checkpoint has %d lines, want header + 20 records", len(lines))
	}
	truncated := bytes.Join(lines[:8], nil)
	if err := os.WriteFile(checkpointPath(dir), truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint.Resume = true
	resumed, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(datasetCSV(t, resumed), datasetCSV(t, full)) {
		t.Fatal("resumed dataset differs from the uninterrupted run")
	}
	for i := range resumed.Obs {
		if resumed.Obs[i] != full.Obs[i] {
			t.Fatalf("observation %d differs after resume", i)
		}
	}
	resumedFile, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumedFile, fullFile) {
		t.Fatal("resumed checkpoint file differs from the uninterrupted run's")
	}
}

// TestResumeAfterAbortedCampaign aborts a checkpointing campaign via
// injected faults (budget zero), then resumes without the injector: the
// result must match a clean uninterrupted campaign exactly.
func TestResumeAfterAbortedCampaign(t *testing.T) {
	clean, err := core.RunCampaign(smallCampaign(20))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := smallCampaign(20)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	cfg.MaxAttempts = 1
	cfg.Workers = 4
	cfg.Faults = faultinject.New(17, faultinject.Config{
		Measure: faultinject.Rates{Error: 0.3, MaxFaults: 10},
	})
	if _, err := core.RunCampaign(cfg); err == nil {
		t.Fatal("faulty campaign with zero budget did not abort")
	}
	if _, err := os.Stat(checkpointPath(dir)); err != nil {
		t.Fatalf("aborted campaign left no checkpoint: %v", err)
	}

	cfg = smallCampaign(20)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir, Resume: true}
	resumed, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range resumed.Obs {
		if resumed.Obs[i] != clean.Obs[i] {
			t.Fatalf("observation %d differs between resumed and clean campaigns", i)
		}
	}
}

// TestResumeRetriesFailedRecords: StatusFailed records are checkpointed
// (the degraded dataset is durable) but a resume does not trust them — it
// retries those layouts, so a transient outage heals on the next run.
func TestResumeRetriesFailedRecords(t *testing.T) {
	clean, err := core.RunCampaign(smallCampaign(15))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := smallCampaign(15)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	cfg.MaxAttempts = 1
	cfg.FailureBudget = 15
	cfg.Faults = faultinject.New(11, faultinject.Config{
		Measure: faultinject.Rates{Error: 0.25, MaxFaults: 10},
	})
	degraded, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded.Failures) == 0 {
		t.Fatal("no failures — the test exercised nothing")
	}

	cfg = smallCampaign(15)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir, Resume: true}
	healed, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(healed.Failures) != 0 || healed.EffectiveN() != 15 {
		t.Fatalf("resume did not heal the failed layouts: %d failures, effective %d",
			len(healed.Failures), healed.EffectiveN())
	}
	for i := range healed.Obs {
		if healed.Obs[i].Measurement != clean.Obs[i].Measurement {
			t.Fatalf("healed observation %d differs from clean run", i)
		}
	}
}

// TestResumeSkipsCompletedWork: resuming a complete checkpoint performs
// no builds or measurements at all — proven by attaching an injector that
// would fail every call.
func TestResumeSkipsCompletedWork(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCampaign(10)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	full, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint.Resume = true
	inj := faultinject.New(1, faultinject.Config{
		Build:   faultinject.Rates{Error: 1, MaxFaults: 1 << 30},
		Measure: faultinject.Rates{Error: 1, MaxFaults: 1 << 30},
	})
	cfg.Faults = inj
	resumed, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatalf("resume of a complete checkpoint re-measured something: %v", err)
	}
	if inj.Injected() != 0 {
		t.Errorf("resume made %d seam calls for a complete checkpoint", inj.Injected())
	}
	for i := range resumed.Obs {
		if resumed.Obs[i] != full.Obs[i] {
			t.Fatalf("observation %d differs after no-op resume", i)
		}
	}
}

// TestResumeRejectsDifferentCampaign: a checkpoint only resumes under the
// exact campaign config that wrote it.
func TestResumeRejectsDifferentCampaign(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCampaign(8)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	if _, err := core.RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}

	other := smallCampaign(8)
	other.Budget += 1000
	other.Checkpoint = core.CheckpointConfig{Dir: dir, Resume: true}
	if _, err := core.RunCampaign(other); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched header accepted: %v", err)
	}
}

// TestResumeRejectsTamperedRecord: a record whose layout seed is not what
// the campaign derives for its index is refused — it belongs to some
// other campaign (or was corrupted on disk).
func TestResumeRejectsTamperedRecord(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCampaign(8)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	if _, err := core.RunCampaign(cfg); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(checkpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	var rec map[string]any
	if err := json.Unmarshal(lines[1], &rec); err != nil {
		t.Fatal(err)
	}
	rec["layout_seed"] = 12345
	tampered, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	lines[1] = tampered
	if err := os.WriteFile(checkpointPath(dir), append(bytes.Join(lines, []byte("\n")), '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint.Resume = true
	if _, err := core.RunCampaign(cfg); err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("tampered record accepted: %v", err)
	}
}

// TestCheckpointWithoutResumeOverwrites: running without Resume starts
// fresh even when a checkpoint exists.
func TestCheckpointWithoutResumeOverwrites(t *testing.T) {
	dir := t.TempDir()
	cfg := smallCampaign(5)
	cfg.Checkpoint = core.CheckpointConfig{Dir: dir}
	a, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Obs {
		if a.Obs[i] != b.Obs[i] {
			t.Fatalf("overwrite run differs at observation %d", i)
		}
	}
}
