package core

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"interferometry/internal/atomicio"
	"interferometry/internal/toolchain"
)

// Search checkpointing: each settled generation is one JSONL record in
// Dir/generations.jsonl, next to (never inside) the campaign
// observation log. A generation is the unit of durability — a search
// killed mid-generation resumes from the last settled one, re-derives
// the next population from the restored parents, and the deterministic
// pipeline makes the resumed trajectory byte-identical to an
// uninterrupted run. Restore is paranoid: genomes are decoded through
// the validating codec, the population hash is recomputed from the
// restored individuals, and any mismatch refuses the checkpoint rather
// than resuming a corrupted search.

// SearchCheckpointFile is the name of the generation log inside the
// campaign directory.
const SearchCheckpointFile = "generations.jsonl"

// searchHeader is the first JSONL line: the search identity. It embeds
// the campaign header (population = layouts) plus the search shape, so
// a resume under different search parameters is refused.
type searchHeader struct {
	ckptHeader
	Population  int `json:"population"`
	Generations int `json:"generations"`
	Elite       int `json:"elite"`
	TournamentK int `json:"tournament_k"`
}

func searchHeaderOf(s *Search) searchHeader {
	return searchHeader{
		ckptHeader:  campaignHeader(&s.cfg.Campaign),
		Population:  s.cfg.population(),
		Generations: s.cfg.generations(),
		Elite:       s.cfg.elite(),
		TournamentK: s.cfg.tournamentK(),
	}
}

// genRecord is one settled generation: the genome encodings
// (base64-wrapped binary codec) with their observations in population
// order, plus the ranked best and the population hash for integrity
// checking on restore.
type genRecord struct {
	Gen     int       `json:"gen"`
	Best    int       `json:"best"`
	PopHash string    `json:"pop_hash"`
	Genomes []string  `json:"genomes"`
	Obs     []ObsWire `json:"obs"`
}

func genRecordOf(res GenerationResult) genRecord {
	rec := genRecord{
		Gen:     res.Gen,
		Best:    res.BestIdx,
		PopHash: res.PopHash,
		Genomes: make([]string, 0, len(res.Individuals)),
		Obs:     make([]ObsWire, 0, len(res.Individuals)),
	}
	for i := range res.Individuals {
		rec.Genomes = append(rec.Genomes, base64.StdEncoding.EncodeToString(toolchain.EncodeGenome(res.Individuals[i].Genome)))
		rec.Obs = append(rec.Obs, res.Individuals[i].Obs.Wire())
	}
	return rec
}

// generation rebuilds the settled generation, validating genome
// encodings through the codec and the population hash against the
// restored content.
func (rec genRecord) generation(pop int) (GenerationResult, error) {
	if len(rec.Genomes) != pop || len(rec.Obs) != pop {
		return GenerationResult{}, fmt.Errorf("core: generation %d checkpoint has %d genomes and %d observations for population %d", rec.Gen, len(rec.Genomes), len(rec.Obs), pop)
	}
	if rec.Best < 0 || rec.Best >= pop {
		return GenerationResult{}, fmt.Errorf("core: generation %d checkpoint best index %d outside population %d", rec.Gen, rec.Best, pop)
	}
	res := GenerationResult{
		Gen:         rec.Gen,
		BestIdx:     rec.Best,
		PopHash:     rec.PopHash,
		Individuals: make([]Individual, pop),
	}
	for i := 0; i < pop; i++ {
		raw, err := base64.StdEncoding.DecodeString(rec.Genomes[i])
		if err != nil {
			return GenerationResult{}, fmt.Errorf("core: generation %d genome %d: %w", rec.Gen, i, err)
		}
		g, err := toolchain.DecodeGenome(raw)
		if err != nil {
			return GenerationResult{}, fmt.Errorf("core: generation %d genome %d: %w", rec.Gen, i, err)
		}
		res.Individuals[i] = Individual{Genome: g, Obs: rec.Obs[i].Observation()}
	}
	if got := populationHash(res.Individuals); got != rec.PopHash {
		return GenerationResult{}, fmt.Errorf("core: generation %d checkpoint corrupt: population hash %s, recorded %s", rec.Gen, got, rec.PopHash)
	}
	return res, nil
}

// SearchCheckpointSink persists settled generations. Like the campaign
// checkpoint, every Put rewrites the whole file and atomically renames
// it into place; a search is tens of generations of a few kilobytes
// each, so durability wins over write throughput.
type SearchCheckpointSink struct {
	path   string
	header searchHeader

	mu       sync.Mutex
	recs     []genRecord
	restored []GenerationResult
}

// OpenSearchCheckpointSink prepares the campaign directory and, when
// the embedded campaign's Checkpoint.Resume is set, loads the settled
// generation prefix. Records must be contiguous from generation zero;
// anything else refuses the checkpoint.
func OpenSearchCheckpointSink(s *Search) (*SearchCheckpointSink, error) {
	dir := s.cfg.Campaign.Checkpoint.Dir
	if dir == "" {
		return nil, fmt.Errorf("core: search checkpoint sink needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	sink := &SearchCheckpointSink{
		path:   filepath.Join(dir, SearchCheckpointFile),
		header: searchHeaderOf(s),
	}
	if s.cfg.Campaign.Checkpoint.Resume {
		recs, err := readSearchCheckpoint(sink.path, sink.header)
		if err != nil {
			return nil, err
		}
		pop := s.cfg.population()
		for k, rec := range recs {
			if rec.Gen != k {
				return nil, fmt.Errorf("core: search checkpoint generation %d at position %d — generations must be contiguous from zero", rec.Gen, k)
			}
			res, err := rec.generation(pop)
			if err != nil {
				return nil, err
			}
			sink.recs = append(sink.recs, rec)
			sink.restored = append(sink.restored, res)
		}
	}
	if err := sink.flushLocked(); err != nil {
		return nil, err
	}
	return sink, nil
}

// readSearchCheckpoint parses a generation log and validates its
// header. A missing file is a fresh start.
func readSearchCheckpoint(path string, want searchHeader) ([]genRecord, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: open search checkpoint: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("core: read search checkpoint: %w", err)
		}
		return nil, nil
	}
	var hdr searchHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("core: search checkpoint header: %w", err)
	}
	if hdr != want {
		return nil, fmt.Errorf("core: search checkpoint header %+v does not match search %+v", hdr, want)
	}
	var recs []genRecord
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec genRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("core: search checkpoint record: %w", err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("core: read search checkpoint: %w", err)
	}
	return recs, nil
}

// Restored returns the settled generation prefix loaded on resume, in
// generation order.
func (s *SearchCheckpointSink) Restored() []GenerationResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]GenerationResult(nil), s.restored...)
}

// Put persists one settled generation. Generations must arrive in
// order, each exactly once.
func (s *SearchCheckpointSink) Put(res GenerationResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if res.Gen != len(s.recs) {
		return fmt.Errorf("core: search checkpoint expects generation %d, got %d", len(s.recs), res.Gen)
	}
	s.recs = append(s.recs, genRecordOf(res))
	return s.flushLocked()
}

// flushLocked writes header + generation records to a temp file and
// renames it over the checkpoint. Callers hold s.mu.
func (s *SearchCheckpointSink) flushLocked() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(s.header); err != nil {
		return fmt.Errorf("core: search checkpoint encode: %w", err)
	}
	for i := range s.recs {
		if err := enc.Encode(s.recs[i]); err != nil {
			return fmt.Errorf("core: search checkpoint encode: %w", err)
		}
	}
	if err := atomicio.WriteFile(s.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("core: search checkpoint write: %w", err)
	}
	return nil
}

// Close is the durability bookend; all writes are already flushed.
func (s *SearchCheckpointSink) Close() error { return nil }
