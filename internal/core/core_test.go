package core_test

import (
	"strings"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// smallCampaign returns a fast campaign config over a layout-sensitive
// test program.
func smallCampaign(layouts int) core.CampaignConfig {
	return core.CampaignConfig{
		Program:   testprog.ManyBranches(200, 400),
		InputSeed: 1,
		Budget:    120000,
		Layouts:   layouts,
		BaseSeed:  7,
	}
}

func TestRunCampaignBasic(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(12))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Obs) != 12 {
		t.Fatalf("got %d observations", len(ds.Obs))
	}
	seeds := map[uint64]bool{}
	for _, o := range ds.Obs {
		if o.Instructions != ds.Trace.Instrs {
			t.Error("observation instruction count differs from trace")
		}
		if o.Cycles == 0 {
			t.Error("observation has no cycles")
		}
		seeds[o.LayoutSeed] = true
	}
	if len(seeds) != 12 {
		t.Error("layout seeds not distinct")
	}
}

func TestRunCampaignReproducible(t *testing.T) {
	a, err := core.RunCampaign(smallCampaign(6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.RunCampaign(smallCampaign(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Obs {
		if a.Obs[i] != b.Obs[i] {
			t.Fatalf("observation %d differs between identical campaigns", i)
		}
	}
}

func TestRunCampaignWorkerCountIrrelevant(t *testing.T) {
	cfg := smallCampaign(8)
	cfg.Workers = 1
	serial, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.Obs {
		if serial.Obs[i] != parallel.Obs[i] {
			t.Fatalf("worker count changed observation %d", i)
		}
	}
}

func TestRunCampaignValidation(t *testing.T) {
	cfg := smallCampaign(4)
	cfg.Program = nil
	if _, err := core.RunCampaign(cfg); err == nil {
		t.Error("nil program accepted")
	}
	cfg = smallCampaign(0)
	if _, err := core.RunCampaign(cfg); err == nil {
		t.Error("zero layouts accepted")
	}
	cfg = smallCampaign(4)
	cfg.Budget = 0
	if _, err := core.RunCampaign(cfg); err == nil {
		t.Error("missing stop rule accepted")
	}
}

func TestCampaignWithLimiter(t *testing.T) {
	prog := testprog.CallChain(40)
	lim, err := toolchain.FindLimiter(prog, 1, toolchain.LimiterConfig{Budget: 30000})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := core.RunCampaign(core.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Limiter:   lim,
		Layouts:   3,
		BaseSeed:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Trace.Instrs != lim.Instrs {
		t.Fatalf("limited campaign retired %d instructions, want %d", ds.Trace.Instrs, lim.Instrs)
	}
}

func TestExtend(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(5))
	if err != nil {
		t.Fatal(err)
	}
	big, err := ds.Extend(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Obs) != 9 {
		t.Fatalf("extended dataset has %d observations", len(big.Obs))
	}
	// The trace is layout-independent: Extend must reuse it, not re-run
	// the interpreter.
	if big.Trace != ds.Trace {
		t.Error("Extend re-interpreted the program instead of reusing the trace")
	}
	// Original observations are preserved verbatim.
	for i := range ds.Obs {
		if big.Obs[i] != ds.Obs[i] {
			t.Fatalf("Extend changed original observation %d", i)
		}
	}
	// New layouts are fresh.
	seeds := map[uint64]int{}
	for _, o := range big.Obs {
		seeds[o.LayoutSeed]++
	}
	for s, n := range seeds {
		if n != 1 {
			t.Fatalf("layout seed %d repeated %d times after Extend", s, n)
		}
	}
}

func TestFitCPIAndModel(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(40))
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	if model.Fit.N != 40 {
		t.Errorf("model fitted on %d points", model.Fit.N)
	}
	if model.Fit.Slope <= 0 {
		t.Errorf("MPKI-CPI slope %v should be positive", model.Fit.Slope)
	}
	// The slope approximates the misprediction penalty per kilo-instruction:
	// 25 cycles / 1000 = 0.025 CPI per MPKI, within a loose factor.
	if model.Fit.Slope < 0.005 || model.Fit.Slope > 0.1 {
		t.Errorf("slope %v implausible for a 25-cycle flush penalty", model.Fit.Slope)
	}
	pred := model.PredictCPI(0)
	if pred.Low >= pred.High {
		t.Error("degenerate prediction interval")
	}
	ci := model.ConfidenceAt(0)
	if ci.Half() >= pred.Half() {
		t.Error("confidence interval should be tighter than prediction interval")
	}
	if s := model.String(); !strings.Contains(s, "CPI = ") {
		t.Errorf("model string %q", s)
	}
}

func TestReductionForCPIGain(t *testing.T) {
	// Hand-built model: CPI = 0.028*MPKI + 0.517 (the paper's perlbench
	// line). At MPKI 6.5, CPI = 0.699; a 10% CPI gain needs
	// 0.0699/0.028 = 2.50 MPKI less, i.e. a 38% reduction — the paper's
	// §1.4 statement.
	fit, err := stats.FitLinear(
		[]float64{0, 5, 10},
		[]float64{0.517, 0.517 + 5*0.028, 0.517 + 10*0.028},
	)
	if err != nil {
		t.Fatal(err)
	}
	m := &core.Model{Benchmark: "400.perlbench", Event: pmc.EvBranchMispredicts, Fit: fit}
	got := m.ReductionForCPIGain(6.5, 10)
	if got < 0.36 || got > 0.40 {
		t.Fatalf("ReductionForCPIGain = %.3f, paper says ~0.38", got)
	}
	// Unachievable gains exceed 1.
	if m.ReductionForCPIGain(6.5, 50) <= 1 {
		t.Error("a 50%% CPI gain from branch prediction alone should be unachievable")
	}
}

func TestCombinedModel(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(40))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := ds.StandardCombined()
	if err != nil {
		t.Fatal(err)
	}
	single, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	if cm.Fit.R2 < single.Fit.R2-1e-9 {
		t.Errorf("combined R² %v below single-event R² %v", cm.Fit.R2, single.Fit.R2)
	}
	if len(cm.Fit.Beta) != 4 {
		t.Errorf("combined model has %d coefficients", len(cm.Fit.Beta))
	}
}

func TestBlameAnalysis(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(40))
	if err != nil {
		t.Fatal(err)
	}
	b := ds.BlameAnalysis()
	for _, ev := range core.BlameEvents {
		r2 := b.PerEvent[ev]
		if r2 < 0 || r2 > 1 {
			t.Errorf("%s r² = %v out of range", ev, r2)
		}
	}
	if b.CombinedR2 < b.PerEvent[pmc.EvBranchMispredicts]-1e-9 {
		t.Error("combined R² below branch R²")
	}
}

func TestEvaluatePredictors(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(15))
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	evals, err := ds.EvaluatePredictors(model, []branch.Factory{
		{Name: "perfect", New: func() branch.Predictor { return branch.Perfect{} }},
		{Name: "bimodal-64", New: func() branch.Predictor { return branch.NewBimodal(64) }},
		{Name: "l-tage", New: func() branch.Predictor { return branch.NewLTAGEDefault() }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) != 3 {
		t.Fatalf("%d evals", len(evals))
	}
	if evals[0].MPKI != 0 {
		t.Errorf("perfect predictor MPKI %v", evals[0].MPKI)
	}
	if evals[2].MPKI >= evals[1].MPKI {
		t.Errorf("L-TAGE MPKI %v should beat bimodal-64 %v", evals[2].MPKI, evals[1].MPKI)
	}
	// Predicted CPI ordering follows MPKI ordering through the linear map.
	if model.Fit.Slope > 0 && evals[0].PredictedCPI.Center >= evals[1].PredictedCPI.Center {
		t.Error("perfect prediction should have the lowest predicted CPI")
	}
	if len(evals[1].MPKIPerLayout) != len(ds.Obs) {
		t.Error("per-layout MPKIs missing")
	}
}

func TestEvaluatePredictorsErrors(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.EvaluatePredictors(nil, branch.PaperPredictors()); err == nil {
		t.Error("nil model accepted")
	}
	model, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.EvaluatePredictors(model, nil); err == nil {
		t.Error("empty factories accepted")
	}
}

func TestRealPredictorSummary(t *testing.T) {
	ds, err := core.RunCampaign(smallCampaign(20))
	if err != nil {
		t.Fatal(err)
	}
	model, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	real := ds.RealPredictor(model)
	if real.MPKI <= 0 {
		t.Error("real predictor MPKI should be positive")
	}
	if !real.CPI.Contains(model.Fit.Predict(real.MPKI)) {
		t.Error("real CPI interval should contain the fitted value at mean MPKI")
	}
}

func TestHeapModeCampaign(t *testing.T) {
	cfg := core.CampaignConfig{
		Program:   testprog.CacheStress(200, 4000),
		InputSeed: 1,
		Budget:    100000,
		Layouts:   8,
		HeapMode:  heap.ModeRandomized,
		BaseSeed:  3,
	}
	ds, err := core.RunCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Randomized mode gives every layout its own heap seed.
	hs := map[uint64]bool{}
	for _, o := range ds.Obs {
		hs[o.HeapSeed] = true
	}
	if len(hs) != len(ds.Obs) {
		t.Error("heap seeds not distinct under ModeRandomized")
	}
	// L1D miss counts must vary across heap placements.
	l1d := map[uint64]bool{}
	for _, o := range ds.Obs {
		l1d[o.Events[pmc.EvL1DMisses]] = true
	}
	if len(l1d) < 2 {
		t.Error("heap randomization did not perturb L1D misses")
	}
}

func TestScreenSignificance(t *testing.T) {
	// A benchmark with aliasing-sensitive branches passes the screen
	// quickly under the paper's median-of-five protocol.
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("missing perlbench spec")
	}
	cfg := core.CampaignConfig{
		Program:   progen.MustGenerate(spec),
		InputSeed: 1,
		Budget:    120000,
		BaseSeed:  7,
		Fidelity:  pmc.FidelityPaper,
	}
	res, err := core.ScreenSignificance(cfg, 25, 75)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Errorf("ManyBranches failed the significance screen (p=%v, n=%d)", res.PValue, res.Layouts)
	}
	if res.Layouts%25 != 0 {
		t.Errorf("screen used %d layouts, not a multiple of the step", res.Layouts)
	}
	if res.Dataset == nil || len(res.Dataset.Obs) != res.Layouts {
		t.Error("screen dataset inconsistent")
	}
}

func TestScreenSignificanceGivesUp(t *testing.T) {
	// Counting has a single perfectly-predictable loop branch: MPKI ~0 and
	// no layout sensitivity, so the screen must escalate to the cap and
	// report failure.
	cfg := core.CampaignConfig{
		Program:   testprog.Counting(50),
		InputSeed: 1,
		Budget:    20000,
		Layouts:   0,
		BaseSeed:  5,
	}
	res, err := core.ScreenSignificance(cfg, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("perfectly predictable program passed the screen")
	}
	if res.Layouts != 30 {
		t.Errorf("screen stopped at %d layouts, want the 30 cap", res.Layouts)
	}
}

func TestLinearityStudySmall(t *testing.T) {
	spec, _ := progen.ByName("473.astar")
	prog := progen.MustGenerate(spec)
	res, err := core.RunLinearityStudy(core.LinearityConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    80000,
		Configs:   branch.ConfigSpace(24),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 24 {
		t.Fatalf("%d points", len(res.Points))
	}
	if res.Fit.Slope <= 0 {
		t.Errorf("linearity fit slope %v", res.Fit.Slope)
	}
	// Perfect CPI must be below every simulated imperfect CPI.
	for _, p := range res.Points {
		if res.PerfectCPI > p.CPI {
			t.Fatalf("perfect CPI %v above config %s (%v)", res.PerfectCPI, p.Config, p.CPI)
		}
	}
	// Extrapolation error should be modest for a linear machine.
	if res.PerfectErrPct > 25 {
		t.Errorf("perfect extrapolation error %v%% too large", res.PerfectErrPct)
	}
	if res.LTAGEErrPct > 15 {
		t.Errorf("L-TAGE estimation error %v%% too large", res.LTAGEErrPct)
	}
	// Interpolation (L-TAGE) should not be much worse than extrapolation
	// to zero; typically it is far better.
	if res.LTAGEMPKI <= 0 {
		t.Error("L-TAGE MPKI should be positive")
	}
}

func TestLinearityStudyValidation(t *testing.T) {
	if _, err := core.RunLinearityStudy(core.LinearityConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := core.RunLinearityStudy(core.LinearityConfig{Program: testprog.Counting(3)}); err == nil {
		t.Error("missing budget accepted")
	}
}
