package stats

import (
	"math"
	"testing"
	"testing/quick"

	"interferometry/internal/xrand"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(got) || math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "Mean")
	approx(t, Mean(nil), 0, 0, "Mean(nil)")
	approx(t, Mean([]float64{-5}), -5, 0, "Mean single")
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 = 32/7.
	approx(t, Variance(xs), 32.0/7, 1e-12, "Variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "StdDev")
	approx(t, Variance([]float64{3}), 0, 0, "Variance single")
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	approx(t, Min(xs), -1, 0, "Min")
	approx(t, Max(xs), 5, 0, "Max")
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestMedian(t *testing.T) {
	approx(t, Median([]float64{1, 3, 2}), 2, 1e-12, "Median odd")
	approx(t, Median([]float64{1, 2, 3, 4}), 2.5, 1e-12, "Median even")
	approx(t, Median([]float64{9}), 9, 0, "Median single")
}

func TestMAD(t *testing.T) {
	// Deviations from median 3: {2, 1, 0, 1, 2} → MAD 1.
	approx(t, MAD([]float64{1, 2, 3, 4, 5}), 1, 1e-12, "MAD odd")
	approx(t, MAD([]float64{7, 7, 7}), 0, 0, "MAD constant")
	// Robustness: one wild corruption moves the MAD very little.
	approx(t, MAD([]float64{1, 2, 3, 4, 1e9}), 1, 1e-12, "MAD corrupted")
	defer func() {
		if recover() == nil {
			t.Error("MAD(nil) should panic like Median")
		}
	}()
	MAD(nil)
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Quantile(xs, 0), 1, 0, "q0")
	approx(t, Quantile(xs, 1), 5, 0, "q1")
	approx(t, Quantile(xs, 0.25), 2, 1e-12, "q25")
	approx(t, Quantile(xs, 0.1), 1.4, 1e-12, "q10 interpolated")
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestMedianIndex(t *testing.T) {
	xs := []float64{10, 30, 20, 50, 40}
	if got := MedianIndex(xs); got != 2 { // value 30 at index 1? sorted: 10,20,30,40,50; median 30 at index 1
		// Sorted order of indices: 0(10), 2(20), 1(30), 4(40), 3(50); median index (5-1)/2=2 -> idx[2]=1.
		if got != 1 {
			t.Fatalf("MedianIndex = %d", got)
		}
	}
	if xs[MedianIndex(xs)] != 30 {
		t.Fatalf("MedianIndex picks value %v, want 30", xs[MedianIndex(xs)])
	}
	// Even length: lower median.
	ys := []float64{4, 1, 3, 2}
	if ys[MedianIndex(ys)] != 2 {
		t.Fatalf("even-length MedianIndex picks %v, want 2", ys[MedianIndex(ys)])
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, 1, 1e-12, "perfect positive r")
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r, -1, 1e-12, "perfect negative r")
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch not detected")
	}
	if _, err := Correlation([]float64{1}, []float64{1}); err == nil {
		t.Error("insufficient data not detected")
	}
	if _, err := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3}); err == nil {
		t.Error("constant variable not detected")
	}
}

func TestCorrelationBounds(t *testing.T) {
	rng := xrand.New(2024)
	check := func(seed uint16) bool {
		r := rng.Derive(uint64(seed))
		n := 5 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		c, err := Correlation(xs, ys)
		if err != nil {
			return true // degenerate draw, acceptable
		}
		return c >= -1-1e-12 && c <= 1+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, s.Mean, 3, 1e-12, "Mean")
	approx(t, s.Median, 3, 1e-12, "Median")
	approx(t, s.Min, 1, 0, "Min")
	approx(t, s.Max, 5, 0, "Max")
	approx(t, s.PctSpreadRange, (5.0-1.0)/3*100, 1e-9, "PctSpreadRange")
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
}

func TestPercentDeviations(t *testing.T) {
	d := PercentDeviations([]float64{90, 100, 110})
	approx(t, d[0], -10, 1e-12, "dev low")
	approx(t, d[1], 0, 1e-12, "dev mid")
	approx(t, d[2], 10, 1e-12, "dev high")
	approx(t, Mean(d), 0, 1e-9, "dev mean")
}

func TestPercentDeviationsZeroMean(t *testing.T) {
	d := PercentDeviations([]float64{-1, 1})
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("zero-mean deviations should be zeros, got %v", d)
	}
}
