package stats

import (
	"math"
	"testing"

	"interferometry/internal/xrand"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 3, 1e-10, "slope")
	approx(t, fit.Intercept, 7, 1e-10, "intercept")
	approx(t, fit.R2, 1, 1e-10, "r2")
	if !fit.Significant(0.05) {
		t.Error("perfect linear fit should be significant")
	}
}

func TestFitLinearKnownDataset(t *testing.T) {
	// Small dataset with hand-computed regression:
	// x: 1..5, y: 2, 3, 5, 4, 6 -> slope 0.9, intercept 1.3.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 3, 5, 4, 6}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 0.9, 1e-10, "slope")
	approx(t, fit.Intercept, 1.3, 1e-10, "intercept")
	// r = 0.9*sqrt(10/ (Syy)) with Sxx=10, Syy=10, Sxy=9 -> r=0.9.
	approx(t, fit.R, 0.9, 1e-10, "r")
	approx(t, fit.R2, 0.81, 1e-10, "r2")
	// SSE = Syy - slope*Sxy = 10 - 8.1 = 1.9, s = sqrt(1.9/3).
	approx(t, fit.ResidualSE, math.Sqrt(1.9/3), 1e-10, "residual SE")
	// Slope SE = s/sqrt(10).
	approx(t, fit.SlopeSE, math.Sqrt(1.9/3)/math.Sqrt(10), 1e-10, "slope SE")
	tstat := 0.9 / (math.Sqrt(1.9/3) / math.Sqrt(10))
	approx(t, fit.TStat, tstat, 1e-9, "t stat")
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch not detected")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("n<3 not detected")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant predictor not detected")
	}
}

func TestFitLinearRecoversNoisyTruth(t *testing.T) {
	r := xrand.New(404)
	const n = 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 10
		ys[i] = 0.028*xs[i] + 0.517 + 0.01*r.NormFloat64()
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Slope, 0.028, 0.001, "recovered slope")
	approx(t, fit.Intercept, 0.517, 0.002, "recovered intercept")
	if !fit.Significant(0.05) {
		t.Error("strong relationship should be significant")
	}
}

func TestFitLinearNoRelationship(t *testing.T) {
	// Pure noise should usually fail the t-test. Run several seeds and
	// require the rejection rate near alpha.
	rejections := 0
	const trials = 200
	base := xrand.New(88)
	for trial := 0; trial < trials; trial++ {
		r := base.Derive(uint64(trial))
		xs := make([]float64, 30)
		ys := make([]float64, 30)
		for i := range xs {
			xs[i] = r.Float64()
			ys[i] = r.Float64()
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Significant(0.05) {
			rejections++
		}
	}
	// Expected ~5% of 200 = 10; allow generous slack.
	if rejections > 30 {
		t.Errorf("null rejected %d/%d times, expected ~10", rejections, trials)
	}
}

func TestConfidenceIntervalCoverage(t *testing.T) {
	// Simulate many datasets from a known line; the 95% CI at x0 should
	// contain the true mean response roughly 95% of the time.
	const trials = 400
	covered := 0
	base := xrand.New(7)
	const x0 = 5.0
	trueY := 2*x0 + 1
	for trial := 0; trial < trials; trial++ {
		r := base.Derive(uint64(trial))
		xs := make([]float64, 40)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = r.Float64() * 10
			ys[i] = 2*xs[i] + 1 + r.NormFloat64()
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if fit.ConfidenceInterval(x0, 0.95).Contains(trueY) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("CI coverage %v, want ~0.95", rate)
	}
}

func TestPredictionIntervalCoverage(t *testing.T) {
	// A 95% PI at x0 should contain a fresh observation ~95% of the time.
	const trials = 400
	covered := 0
	base := xrand.New(9)
	const x0 = 3.0
	for trial := 0; trial < trials; trial++ {
		r := base.Derive(uint64(trial))
		xs := make([]float64, 40)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = r.Float64() * 10
			ys[i] = -1.5*xs[i] + 4 + 0.7*r.NormFloat64()
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		fresh := -1.5*x0 + 4 + 0.7*r.NormFloat64()
		if fit.PredictionInterval(x0, 0.95).Contains(fresh) {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("PI coverage %v, want ~0.95", rate)
	}
}

func TestPredictionWiderThanConfidence(t *testing.T) {
	r := xrand.New(17)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = r.Float64() * 8
		ys[i] = 0.5*xs[i] + 2 + 0.3*r.NormFloat64()
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 2, 4, 8, 12} {
		ci := fit.ConfidenceInterval(x, 0.95)
		pi := fit.PredictionInterval(x, 0.95)
		if pi.Half() <= ci.Half() {
			t.Errorf("at x=%v PI half %v should exceed CI half %v", x, pi.Half(), ci.Half())
		}
		if math.Abs(ci.Center-pi.Center) > 1e-12 {
			t.Errorf("interval centers disagree at x=%v", x)
		}
	}
}

func TestIntervalsWidenAwayFromMean(t *testing.T) {
	r := xrand.New(23)
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = 4 + r.Float64()*2 // mean ~5
		ys[i] = xs[i] + 0.2*r.NormFloat64()
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	nearMean := fit.ConfidenceInterval(fit.XMean, 0.95).Half()
	far := fit.ConfidenceInterval(fit.XMean+10, 0.95).Half()
	if far <= nearMean {
		t.Errorf("CI should widen away from x̄: near %v far %v", nearMean, far)
	}
}

func TestSlopeConfidenceInterval(t *testing.T) {
	r := xrand.New(29)
	xs := make([]float64, 100)
	ys := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 10
		ys[i] = 3*xs[i] + 1 + r.NormFloat64()
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	iv := fit.SlopeConfidenceInterval(0.95)
	if !iv.Contains(3) {
		t.Errorf("slope CI %+v should contain 3", iv)
	}
	if iv.Contains(0) {
		t.Errorf("slope CI %+v should exclude 0 for a strong slope", iv)
	}
}

func TestPredict(t *testing.T) {
	fit := &LinearFit{Slope: 2, Intercept: -1}
	approx(t, fit.Predict(3), 5, 1e-12, "Predict")
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Center: 5, Low: 3, High: 7}
	approx(t, iv.Half(), 2, 1e-12, "Half")
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(7.01) || iv.Contains(2.99) {
		t.Error("Contains boundary behaviour wrong")
	}
}
