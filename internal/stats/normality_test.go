package stats

import (
	"math"
	"testing"

	"interferometry/internal/xrand"
)

func TestSkewnessSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	approx(t, Skewness(xs), 0, 1e-12, "symmetric skewness")
}

func TestSkewnessSign(t *testing.T) {
	right := []float64{0, 0, 0, 0, 0, 0, 0, 10} // long right tail
	if Skewness(right) <= 0 {
		t.Errorf("right-tailed skewness %v should be positive", Skewness(right))
	}
	left := []float64{0, 0, 0, 0, 0, 0, 0, -10}
	if Skewness(left) >= 0 {
		t.Errorf("left-tailed skewness %v should be negative", Skewness(left))
	}
}

func TestExcessKurtosisNormal(t *testing.T) {
	r := xrand.New(61)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	if k := ExcessKurtosis(xs); math.Abs(k) > 0.1 {
		t.Errorf("normal sample excess kurtosis %v, want ~0", k)
	}
	approx(t, Skewness(xs), 0, 0.05, "normal sample skewness")
}

func TestExcessKurtosisHeavyTails(t *testing.T) {
	// A two-point mixture with rare large outliers is leptokurtic.
	r := xrand.New(62)
	xs := make([]float64, 20000)
	for i := range xs {
		if r.Bool(0.01) {
			xs[i] = 20 * r.NormFloat64()
		} else {
			xs[i] = r.NormFloat64()
		}
	}
	if k := ExcessKurtosis(xs); k < 1 {
		t.Errorf("outlier mixture kurtosis %v should be clearly positive", k)
	}
}

func TestJarqueBeraAcceptsNormal(t *testing.T) {
	base := xrand.New(63)
	rejections := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		r := base.Derive(uint64(trial))
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = 3 + 0.5*r.NormFloat64()
		}
		if _, p := JarqueBera(xs); p <= 0.05 {
			rejections++
		}
	}
	// ~5% expected; the asymptotic approximation can over-reject a bit.
	if rejections > 15 {
		t.Errorf("JB rejected normal data %d/%d times", rejections, trials)
	}
}

func TestJarqueBeraRejectsExponential(t *testing.T) {
	r := xrand.New(64)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	if stat, p := JarqueBera(xs); p > 0.01 {
		t.Errorf("JB failed to reject exponential data (stat %v, p %v)", stat, p)
	}
}

func TestJarqueBeraTinySample(t *testing.T) {
	if _, p := JarqueBera([]float64{1, 2, 3}); p != 1 {
		t.Errorf("tiny sample p = %v, want 1 (no evidence)", p)
	}
}

func TestMomentsDegenerate(t *testing.T) {
	con := []float64{5, 5, 5, 5, 5}
	if Skewness(con) != 0 || ExcessKurtosis(con) != 0 {
		t.Error("constant sample moments should be 0")
	}
}
