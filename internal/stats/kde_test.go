package stats

import (
	"math"
	"testing"

	"interferometry/internal/xrand"
)

func TestNewKDEErrors(t *testing.T) {
	if _, err := NewKDE([]float64{1}); err == nil {
		t.Error("NewKDE with one point should error")
	}
}

func TestKDEConstantSample(t *testing.T) {
	kde, err := NewKDE([]float64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if kde.Bandwidth <= 0 {
		t.Fatalf("bandwidth %v not positive", kde.Bandwidth)
	}
	if d := kde.Density(2); d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
		t.Fatalf("density at mode = %v", d)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	r := xrand.New(50)
	sample := make([]float64, 300)
	for i := range sample {
		sample[i] = r.NormFloat64()
	}
	kde, err := NewKDE(sample)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const step = 0.01
	for x := -8.0; x <= 8; x += step {
		sum += kde.Density(x) * step
	}
	approx(t, sum, 1, 0.01, "kde integral")
}

func TestKDEPeaksNearMode(t *testing.T) {
	r := xrand.New(51)
	sample := make([]float64, 500)
	for i := range sample {
		sample[i] = 5 + 0.5*r.NormFloat64()
	}
	kde, err := NewKDE(sample)
	if err != nil {
		t.Fatal(err)
	}
	if kde.Density(5) <= kde.Density(8) {
		t.Error("density at mode should exceed density in the tail")
	}
}

func TestKDEBimodal(t *testing.T) {
	r := xrand.New(52)
	sample := make([]float64, 600)
	for i := range sample {
		if i%2 == 0 {
			sample[i] = -3 + 0.3*r.NormFloat64()
		} else {
			sample[i] = 3 + 0.3*r.NormFloat64()
		}
	}
	kde, err := NewKDE(sample)
	if err != nil {
		t.Fatal(err)
	}
	if kde.Density(-3) <= kde.Density(0) || kde.Density(3) <= kde.Density(0) {
		t.Error("bimodal density should dip between modes")
	}
}

func TestMakeViolin(t *testing.T) {
	r := xrand.New(53)
	sample := make([]float64, 100)
	for i := range sample {
		sample[i] = r.NormFloat64()
	}
	v, err := MakeViolin("test", sample, 64)
	if err != nil {
		t.Fatal(err)
	}
	if v.Label != "test" {
		t.Errorf("label %q", v.Label)
	}
	if len(v.Profile) != 64 {
		t.Fatalf("profile length %d", len(v.Profile))
	}
	// Profile values must be increasing and span at least the sample range.
	for i := 1; i < len(v.Profile); i++ {
		if v.Profile[i].Value <= v.Profile[i-1].Value {
			t.Fatal("profile values not increasing")
		}
	}
	if v.Profile[0].Value > v.Summary.Min || v.Profile[len(v.Profile)-1].Value < v.Summary.Max {
		t.Error("profile does not span sample range")
	}
	if v.MaxDensity() <= 0 {
		t.Error("max density should be positive")
	}
}

func TestMakeViolinErrors(t *testing.T) {
	if _, err := MakeViolin("x", []float64{1, 2, 3}, 1); err == nil {
		t.Error("points<2 not rejected")
	}
	if _, err := MakeViolin("x", []float64{1}, 16); err == nil {
		t.Error("tiny sample not rejected")
	}
}
