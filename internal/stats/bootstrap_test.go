package stats

import (
	"math"
	"testing"

	"interferometry/internal/xrand"
)

func TestBootstrapAgreesWithParametric(t *testing.T) {
	// On well-behaved normal data the percentile bootstrap CI for the
	// line at x should approximately match the Student-t CI.
	r := xrand.New(71)
	const n = 120
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 10
		ys[i] = 0.03*xs[i] + 0.5 + 0.02*r.NormFloat64()
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	const x0 = 2.0
	param := fit.ConfidenceInterval(x0, 0.95)
	boot, err := BootstrapLineCI(xs, ys, x0, 2000, 7, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(boot.Center-param.Center) > 0.002 {
		t.Errorf("bootstrap center %v vs parametric %v", boot.Center, param.Center)
	}
	ratio := boot.Half() / param.Half()
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("bootstrap half-width %v vs parametric %v (ratio %v)",
			boot.Half(), param.Half(), ratio)
	}
}

func TestBootstrapReproducible(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{1.1, 2.2, 2.9, 4.1, 5.2, 5.8, 7.1, 8.2}
	a, err := BootstrapLineCI(xs, ys, 4, 500, 42, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapLineCI(xs, ys, 4, 500, 42, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed gave different bootstrap intervals")
	}
	c, err := BootstrapLineCI(xs, ys, 4, 500, 43, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds gave identical intervals")
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := BootstrapLineCI([]float64{1, 2}, []float64{1}, 0, 100, 1, 0.95); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BootstrapLineCI([]float64{1, 2}, []float64{1, 2}, 0, 100, 1, 0.95); err == nil {
		t.Error("n<3 accepted")
	}
	// A constant predictor makes every resample degenerate.
	if _, err := BootstrapLineCI([]float64{2, 2, 2, 2}, []float64{1, 2, 3, 4}, 0, 100, 1, 0.95); err == nil {
		t.Error("constant predictor accepted")
	}
}
