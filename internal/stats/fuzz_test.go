package stats

import (
	"math"
	"testing"
)

// FuzzRegIncBeta checks the regularized incomplete beta function's
// invariants over arbitrary inputs: range [0,1], monotonicity in x, and
// the reflection identity I_x(a,b) = 1 - I_{1-x}(b,a).
func FuzzRegIncBeta(f *testing.F) {
	f.Add(1.0, 1.0, 0.5)
	f.Add(2.5, 3.5, 0.25)
	f.Add(0.5, 0.5, 0.9)
	f.Add(50.0, 2.0, 0.99)
	f.Fuzz(func(t *testing.T, a, b, x float64) {
		// Constrain to the function's domain.
		if !(a > 0.01 && a < 1e4) || !(b > 0.01 && b < 1e4) {
			t.Skip()
		}
		if !(x >= 0 && x <= 1) {
			t.Skip()
		}
		v := RegIncBeta(a, b, x)
		if math.IsNaN(v) || v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("RegIncBeta(%v,%v,%v) = %v out of [0,1]", a, b, x, v)
		}
		// Reflection identity.
		refl := 1 - RegIncBeta(b, a, 1-x)
		if math.Abs(v-refl) > 1e-7 {
			t.Fatalf("reflection identity violated: %v vs %v (a=%v b=%v x=%v)", v, refl, a, b, x)
		}
		// Monotonicity against a slightly larger x.
		x2 := x + 1e-3
		if x2 <= 1 {
			if v2 := RegIncBeta(a, b, x2); v2 < v-1e-9 {
				t.Fatalf("not monotone: I(%v)=%v > I(%v)=%v", x, v, x2, v2)
			}
		}
	})
}

// FuzzFitLinear checks that the regression never panics and satisfies
// basic identities (residual orthogonality: the fitted line passes
// through the mean point) for arbitrary small datasets.
func FuzzFitLinear(f *testing.F) {
	f.Add(int64(1), uint8(8))
	f.Add(int64(99), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, nRaw uint8) {
		n := int(nRaw%60) + 3
		// Derive a deterministic dataset from the seed.
		xs := make([]float64, n)
		ys := make([]float64, n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		for i := range xs {
			xs[i] = next() * 100
			ys[i] = next()*10 - 5
		}
		fit, err := FitLinear(xs, ys)
		if err != nil {
			return // constant predictor draws are fine
		}
		// The least-squares line passes through (x̄, ȳ).
		if math.Abs(fit.Predict(Mean(xs))-Mean(ys)) > 1e-6 {
			t.Fatalf("line misses the mean point")
		}
		if fit.R2 < -1e-9 || fit.R2 > 1+1e-9 {
			t.Fatalf("r² = %v out of range", fit.R2)
		}
		if fit.PValue < 0 || fit.PValue > 1 {
			t.Fatalf("p = %v out of range", fit.PValue)
		}
	})
}
