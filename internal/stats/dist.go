package stats

import "math"

// Distributions used by the paper's inference procedures (§5.8): the
// standard normal (noise modeling and sanity checks), Student's t
// (regression slope tests and interval half-widths), and Fisher's F
// (overall significance of the combined multi-linear model, §6.2).

// Normal is a normal distribution with mean Mu and standard deviation
// Sigma.
type Normal struct {
	Mu, Sigma float64
}

// StdNormal is the standard normal distribution.
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-th quantile. It panics for p outside (0, 1).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: Normal.Quantile needs p in (0,1)")
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*p-1)
}

// StudentT is Student's t distribution with Nu degrees of freedom.
type StudentT struct {
	Nu float64
}

// PDF returns the density at x.
func (t StudentT) PDF(x float64) float64 {
	nu := t.Nu
	lg := LogGamma((nu+1)/2) - LogGamma(nu/2) - 0.5*math.Log(nu*math.Pi)
	return math.Exp(lg - (nu+1)/2*math.Log(1+x*x/nu))
}

// CDF returns P(T <= x) via the regularized incomplete beta function.
func (t StudentT) CDF(x float64) float64 {
	if t.Nu <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0.5
	}
	ib := RegIncBeta(t.Nu/2, 0.5, t.Nu/(t.Nu+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// Quantile returns the p-th quantile via bisection on the CDF; accuracy is
// better than 1e-10, ample for interval construction.
func (t StudentT) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: StudentT.Quantile needs p in (0,1)")
	}
	if p == 0.5 {
		return 0
	}
	// The t quantile is bounded in magnitude by a generous bracket; expand
	// until the CDF straddles p.
	lo, hi := -1.0, 1.0
	for t.CDF(lo) > p {
		lo *= 2
		if lo < -1e8 {
			break
		}
	}
	for t.CDF(hi) < p {
		hi *= 2
		if hi > 1e8 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if t.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+math.Abs(hi)) {
			break
		}
	}
	return (lo + hi) / 2
}

// TwoSidedP returns the two-sided p-value for an observed t statistic.
func (t StudentT) TwoSidedP(stat float64) float64 {
	return 2 * (1 - t.CDF(math.Abs(stat)))
}

// FDist is Fisher's F distribution with D1 numerator and D2 denominator
// degrees of freedom.
type FDist struct {
	D1, D2 float64
}

// CDF returns P(F <= x).
func (f FDist) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncBeta(f.D1/2, f.D2/2, f.D1*x/(f.D1*x+f.D2))
}

// UpperTailP returns P(F > x), the p-value for an observed F statistic.
func (f FDist) UpperTailP(x float64) float64 {
	return 1 - f.CDF(x)
}

// Quantile returns the p-th quantile via bisection. It panics for p
// outside (0, 1).
func (f FDist) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: FDist.Quantile needs p in (0,1)")
	}
	lo, hi := 0.0, 1.0
	for f.CDF(hi) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if f.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
