package stats

import (
	"errors"
	"math"
)

// MultiFit is the result of multiple least-squares linear regression
// y = β0 + β1 x1 + ... + βk xk, the paper's "combined model" relating CPI
// to branch mispredictions, L1 instruction cache misses and L2 cache
// misses together (§6.1). Overall significance uses the F test rather than
// the t test, "as the t-test is appropriate for single-variable linear
// regression models" (§6.2).
type MultiFit struct {
	N          int       // observations
	K          int       // predictors (excluding the intercept)
	Beta       []float64 // coefficients: Beta[0] intercept, Beta[i] for xi
	R2         float64   // coefficient of determination
	AdjustedR2 float64
	ResidualSE float64 // df = n - k - 1
	FStat      float64 // F statistic for H0: all slopes zero
	PValue     float64 // upper-tail p-value of the F test
}

// FitMultiple regresses ys on the predictor columns xss. Each xss[j] must
// have the same length as ys. At least k+2 observations are required.
func FitMultiple(xss [][]float64, ys []float64) (*MultiFit, error) {
	k := len(xss)
	if k == 0 {
		return nil, errors.New("stats: FitMultiple needs at least one predictor")
	}
	n := len(ys)
	for _, col := range xss {
		if len(col) != n {
			return nil, errors.New("stats: FitMultiple column length mismatch")
		}
	}
	if n < k+2 {
		return nil, ErrInsufficientData
	}

	// Build the normal equations XᵀX β = Xᵀy with an intercept column.
	p := k + 1
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	col := func(j, row int) float64 {
		if j == 0 {
			return 1
		}
		return xss[j-1][row]
	}
	for row := 0; row < n; row++ {
		for i := 0; i < p; i++ {
			ci := col(i, row)
			xty[i] += ci * ys[row]
			for j := i; j < p; j++ {
				xtx[i][j] += ci * col(j, row)
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}

	beta, err := solveSPD(xtx, xty)
	if err != nil {
		return nil, err
	}

	my := Mean(ys)
	var sse, sst float64
	for row := 0; row < n; row++ {
		pred := beta[0]
		for j := 1; j < p; j++ {
			pred += beta[j] * xss[j-1][row]
		}
		r := ys[row] - pred
		sse += r * r
		d := ys[row] - my
		sst += d * d
	}
	fit := &MultiFit{N: n, K: k, Beta: beta}
	dfE := float64(n - k - 1)
	fit.ResidualSE = math.Sqrt(sse / dfE)
	if sst > 0 {
		fit.R2 = 1 - sse/sst
		if fit.R2 < 0 {
			fit.R2 = 0
		}
		fit.AdjustedR2 = 1 - (1-fit.R2)*float64(n-1)/dfE
	}
	// F = (R²/k) / ((1-R²)/(n-k-1)).
	if fit.R2 >= 1 {
		fit.FStat = math.Inf(1)
		fit.PValue = 0
	} else {
		fit.FStat = (fit.R2 / float64(k)) / ((1 - fit.R2) / dfE)
		fit.PValue = FDist{D1: float64(k), D2: dfE}.UpperTailP(fit.FStat)
	}
	return fit, nil
}

// Predict evaluates the fitted model at the predictor vector xs, which must
// have K entries.
func (f *MultiFit) Predict(xs []float64) float64 {
	if len(xs) != f.K {
		panic("stats: MultiFit.Predict dimension mismatch")
	}
	y := f.Beta[0]
	for i, x := range xs {
		y += f.Beta[i+1] * x
	}
	return y
}

// Significant reports whether the overall F test rejects the null
// hypothesis that every slope is zero at level alpha.
func (f *MultiFit) Significant(alpha float64) bool {
	return f.PValue <= alpha
}

// solveSPD solves A x = b for a symmetric positive (semi)definite matrix A
// using Gaussian elimination with partial pivoting. A and b are modified.
func solveSPD(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for c := 0; c < n; c++ {
		// Partial pivot.
		pivot := c
		for r := c + 1; r < n; r++ {
			if math.Abs(a[r][c]) > math.Abs(a[pivot][c]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][c]) < 1e-12 {
			return nil, errors.New("stats: singular design matrix (collinear predictors)")
		}
		a[c], a[pivot] = a[pivot], a[c]
		b[c], b[pivot] = b[pivot], b[c]
		inv := 1 / a[c][c]
		for r := c + 1; r < n; r++ {
			f := a[r][c] * inv
			if f == 0 {
				continue
			}
			for j := c; j < n; j++ {
				a[r][j] -= f * a[c][j]
			}
			b[r] -= f * b[c]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for j := r + 1; j < n; j++ {
			sum -= a[r][j] * x[j]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}
