package stats

import (
	"errors"
	"math"
)

// Gaussian kernel density estimation, used to render the paper's Figure 1
// violin plots: "the thickness at each CPI value is proportional to the
// number of CPIs observed in that neighborhood" (§1.1).

// KDE is a Gaussian kernel density estimate over a sample.
type KDE struct {
	sample    []float64
	Bandwidth float64
}

// NewKDE builds a KDE with Silverman's rule-of-thumb bandwidth
// h = 0.9 * min(σ, IQR/1.34) * n^(-1/5). At least two observations are
// required. If the sample is constant a tiny bandwidth is substituted so
// the density remains well defined.
func NewKDE(sample []float64) (*KDE, error) {
	if len(sample) < 2 {
		return nil, ErrInsufficientData
	}
	sigma := StdDev(sample)
	iqr := Quantile(sample, 0.75) - Quantile(sample, 0.25)
	spread := sigma
	if iqr > 0 && iqr/1.34 < spread {
		spread = iqr / 1.34
	}
	h := 0.9 * spread * math.Pow(float64(len(sample)), -0.2)
	if h <= 0 {
		h = 1e-9
	}
	return &KDE{sample: append([]float64(nil), sample...), Bandwidth: h}, nil
}

// Density returns the estimated probability density at x.
func (k *KDE) Density(x float64) float64 {
	sum := 0.0
	inv := 1 / k.Bandwidth
	for _, s := range k.sample {
		z := (x - s) * inv
		sum += math.Exp(-z * z / 2)
	}
	return sum * inv / (float64(len(k.sample)) * math.Sqrt(2*math.Pi))
}

// ViolinPoint is one (value, thickness) pair of a violin outline.
type ViolinPoint struct {
	Value   float64 // position along the measured axis
	Density float64 // estimated density (violin half-width)
}

// Violin is the render-ready description of one violin: a density profile
// over the sample range plus the summary statistics drawn on top.
type Violin struct {
	Label   string
	Summary Summary
	Profile []ViolinPoint
}

// MakeViolin computes a violin for the sample with the given number of
// profile points (>= 2), spanning the sample range extended by one
// bandwidth on each side.
func MakeViolin(label string, sample []float64, points int) (Violin, error) {
	if points < 2 {
		return Violin{}, errors.New("stats: MakeViolin needs at least 2 points")
	}
	kde, err := NewKDE(sample)
	if err != nil {
		return Violin{}, err
	}
	sum, err := Summarize(sample)
	if err != nil {
		return Violin{}, err
	}
	lo := sum.Min - kde.Bandwidth
	hi := sum.Max + kde.Bandwidth
	prof := make([]ViolinPoint, points)
	step := (hi - lo) / float64(points-1)
	for i := range prof {
		v := lo + float64(i)*step
		prof[i] = ViolinPoint{Value: v, Density: kde.Density(v)}
	}
	return Violin{Label: label, Summary: sum, Profile: prof}, nil
}

// MaxDensity returns the peak density of the violin profile.
func (v Violin) MaxDensity() float64 {
	m := 0.0
	for _, p := range v.Profile {
		if p.Density > m {
			m = p.Density
		}
	}
	return m
}
