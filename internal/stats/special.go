package stats

import "math"

// This file implements the special functions underlying the t and F
// distributions: the log-gamma function and the regularized incomplete
// beta function. Both follow the classical Lanczos / continued-fraction
// formulations (Press et al., Numerical Recipes §6.1–6.4), implemented
// from scratch on math only.

// lanczosCoef are the Lanczos approximation coefficients (g=5, n=6).
var lanczosCoef = [6]float64{
	76.18009172947146,
	-86.50532032941677,
	24.01409824083091,
	-1.231739572450155,
	0.1208650973866179e-2,
	-0.5395239384953e-5,
}

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	y := x
	tmp := x + 5.5
	tmp -= (x + 0.5) * math.Log(tmp)
	ser := 1.000000000190015
	for j := 0; j < 6; j++ {
		y++
		ser += lanczosCoef[j] / y
	}
	return -tmp + math.Log(2.5066282746310005*ser/x)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// ln of the prefactor x^a (1-x)^b / (a B(a,b)).
	lbeta := LogGamma(a+b) - LogGamma(a) - LogGamma(b) +
		a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
