package stats

import "math"

// The paper's hypothesis testing leans on approximate normality:
// "Student's t-test gives a meaningful result in the presence of normally
// distributed data. The observed CPI of most of the benchmarks roughly
// follow a normal distribution, thus in most cases hypothesis testing can
// give us additional confidence in our results" (§5.8 item 4). This file
// provides the moments and the Jarque-Bera test used to check that
// premise per benchmark.

// Skewness returns the sample skewness (biased, moment-based estimator).
// It returns 0 for degenerate samples.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// ExcessKurtosis returns the sample excess kurtosis (0 for a normal
// distribution). It returns 0 for degenerate samples.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// JarqueBera returns the Jarque-Bera normality statistic and its p-value.
// Under the null hypothesis of normality the statistic is asymptotically
// χ² with two degrees of freedom, whose survival function has the closed
// form exp(-x/2). Small p rejects normality.
func JarqueBera(xs []float64) (stat, p float64) {
	n := float64(len(xs))
	if n < 8 {
		return 0, 1 // too few observations to say anything
	}
	s := Skewness(xs)
	k := ExcessKurtosis(xs)
	stat = n / 6 * (s*s + k*k/4)
	p = math.Exp(-stat / 2)
	return stat, p
}
