package stats

import (
	"sort"

	"interferometry/internal/xrand"
)

// Bootstrap resampling provides a nonparametric cross-check of the
// parametric intervals the paper relies on: if the paired bootstrap's
// percentile interval for the regression line at x agrees with the
// Student-t confidence interval, the normality assumption (§5.8 item 4)
// was not doing dangerous work.

// BootstrapLineCI returns the percentile bootstrap confidence interval
// for the fitted mean response at x, from B paired resamples of (xs, ys).
// seed makes the interval reproducible. At least three observations and
// B >= 100 are required.
func BootstrapLineCI(xs, ys []float64, x float64, b int, seed uint64, level float64) (Interval, error) {
	if len(xs) != len(ys) || len(xs) < 3 {
		return Interval{}, ErrInsufficientData
	}
	if b < 100 {
		b = 100
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	n := len(xs)
	rng := xrand.New(xrand.Mix(seed, 0x626f6f74))
	rx := make([]float64, n)
	ry := make([]float64, n)
	preds := make([]float64, 0, b)
	for rep := 0; rep < b; rep++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			rx[i] = xs[j]
			ry[i] = ys[j]
		}
		fit, err := FitLinear(rx, ry)
		if err != nil {
			// A degenerate resample (constant predictor); skip it.
			continue
		}
		preds = append(preds, fit.Predict(x))
	}
	if len(preds) < b/2 {
		return Interval{}, ErrInsufficientData
	}
	sort.Float64s(preds)
	alpha := (1 - level) / 2
	lo := preds[int(alpha*float64(len(preds)))]
	hi := preds[min(int((1-alpha)*float64(len(preds))), len(preds)-1)]
	center := Mean(preds)
	return Interval{Center: center, Low: lo, High: hi}, nil
}
