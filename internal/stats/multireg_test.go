package stats

import (
	"math"
	"testing"

	"interferometry/internal/xrand"
)

func TestFitMultipleExact(t *testing.T) {
	// y = 1 + 2a + 3b, exactly.
	a := []float64{0, 1, 2, 3, 4, 5}
	b := []float64{5, 3, 1, 4, 2, 0}
	ys := make([]float64, len(a))
	for i := range ys {
		ys[i] = 1 + 2*a[i] + 3*b[i]
	}
	fit, err := FitMultiple([][]float64{a, b}, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Beta[0], 1, 1e-8, "intercept")
	approx(t, fit.Beta[1], 2, 1e-8, "beta a")
	approx(t, fit.Beta[2], 3, 1e-8, "beta b")
	approx(t, fit.R2, 1, 1e-10, "R2")
	if !fit.Significant(0.05) {
		t.Error("exact fit should be significant")
	}
}

func TestFitMultipleMatchesSimpleRegression(t *testing.T) {
	r := xrand.New(3)
	xs := make([]float64, 80)
	ys := make([]float64, 80)
	for i := range xs {
		xs[i] = r.Float64() * 5
		ys[i] = 1.7*xs[i] - 2 + 0.5*r.NormFloat64()
	}
	mf, err := FitMultiple([][]float64{xs}, ys)
	if err != nil {
		t.Fatal(err)
	}
	lf, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, mf.Beta[0], lf.Intercept, 1e-8, "intercept agreement")
	approx(t, mf.Beta[1], lf.Slope, 1e-8, "slope agreement")
	approx(t, mf.R2, lf.R2, 1e-8, "r2 agreement")
	// F = t² for a single predictor.
	approx(t, mf.FStat, lf.TStat*lf.TStat, 1e-6, "F = t²")
	approx(t, mf.PValue, lf.PValue, 1e-6, "p-value agreement")
}

func TestFitMultipleRecoversNoisyTruth(t *testing.T) {
	r := xrand.New(5)
	const n = 3000
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64() * 10
		b[i] = r.Float64() * 4
		c[i] = r.NormFloat64()
		ys[i] = 0.9 + 0.028*a[i] + 0.4*b[i] - 0.2*c[i] + 0.05*r.NormFloat64()
	}
	fit, err := FitMultiple([][]float64{a, b, c}, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fit.Beta[0], 0.9, 0.01, "b0")
	approx(t, fit.Beta[1], 0.028, 0.002, "b1")
	approx(t, fit.Beta[2], 0.4, 0.005, "b2")
	approx(t, fit.Beta[3], -0.2, 0.005, "b3")
}

func TestFitMultipleCombinedR2AtLeastSingle(t *testing.T) {
	// Adding predictors can never decrease R² (least squares property).
	r := xrand.New(8)
	const n = 200
	a := make([]float64, n)
	b := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = r.Float64()
		b[i] = r.Float64()
		ys[i] = a[i] + 0.3*b[i] + 0.2*r.NormFloat64()
	}
	single, err := FitMultiple([][]float64{a}, ys)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := FitMultiple([][]float64{a, b}, ys)
	if err != nil {
		t.Fatal(err)
	}
	if combined.R2 < single.R2-1e-10 {
		t.Errorf("combined R2 %v < single R2 %v", combined.R2, single.R2)
	}
}

func TestFitMultipleErrors(t *testing.T) {
	if _, err := FitMultiple(nil, []float64{1, 2, 3}); err == nil {
		t.Error("no predictors not detected")
	}
	if _, err := FitMultiple([][]float64{{1, 2}}, []float64{1, 2, 3}); err == nil {
		t.Error("column length mismatch not detected")
	}
	if _, err := FitMultiple([][]float64{{1, 2, 3}}, []float64{1, 2, 3}[:2]); err == nil {
		t.Error("length mismatch not detected")
	}
	// Collinear predictors.
	a := []float64{1, 2, 3, 4, 5, 6}
	b := []float64{2, 4, 6, 8, 10, 12}
	ys := []float64{1, 2, 3, 4, 5, 6}
	if _, err := FitMultiple([][]float64{a, b}, ys); err == nil {
		t.Error("collinearity not detected")
	}
}

func TestFitMultiplePredictPanicsOnDimension(t *testing.T) {
	fit := &MultiFit{K: 2, Beta: []float64{1, 2, 3}}
	defer func() {
		if recover() == nil {
			t.Fatal("Predict with wrong dimension did not panic")
		}
	}()
	fit.Predict([]float64{1})
}

func TestFitMultipleNullNotSignificant(t *testing.T) {
	falsePositives := 0
	const trials = 150
	base := xrand.New(33)
	for trial := 0; trial < trials; trial++ {
		r := base.Derive(uint64(trial))
		const n = 40
		a := make([]float64, n)
		b := make([]float64, n)
		c := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = r.Float64(), r.Float64(), r.Float64()
			ys[i] = r.Float64()
		}
		fit, err := FitMultiple([][]float64{a, b, c}, ys)
		if err != nil {
			t.Fatal(err)
		}
		if fit.Significant(0.05) {
			falsePositives++
		}
	}
	if falsePositives > 25 { // expected ~7.5
		t.Errorf("F test false positive rate too high: %d/%d", falsePositives, trials)
	}
}

func TestSolveSPD(t *testing.T) {
	a := [][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 2},
	}
	// x = (1, 2, 3): b = A x.
	b := []float64{4*1 + 1*2, 1 + 6 + 3, 2 + 6}
	x, err := solveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
}

func TestSolveSPDSingular(t *testing.T) {
	a := [][]float64{
		{1, 2},
		{2, 4},
	}
	if _, err := solveSPD(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix not detected")
	}
}
