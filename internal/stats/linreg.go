package stats

import (
	"errors"
	"math"
)

// LinearFit is the result of simple least-squares linear regression
// y = Slope*x + Intercept, together with the inference quantities the
// paper reports: Pearson r, the coefficient of determination r², the
// Student t test of the "no correlation" null hypothesis (§4.6), and the
// ingredients for 95% confidence and prediction intervals (§5.8 item 5).
type LinearFit struct {
	N                int     // number of observations
	Slope, Intercept float64 // least-squares coefficients
	R                float64 // Pearson correlation coefficient
	R2               float64 // coefficient of determination
	ResidualSE       float64 // s, the residual standard error (df = n-2)
	SlopeSE          float64 // standard error of the slope
	InterceptSE      float64 // standard error of the intercept
	TStat            float64 // t statistic for H0: slope == 0
	PValue           float64 // two-sided p-value for the t test
	XMean            float64 // mean of the predictor
	Sxx              float64 // Σ (x - x̄)², needed for intervals
}

// FitLinear performs simple least-squares regression of ys on xs.
// At least three observations are required (inference needs n-2 ≥ 1) and
// the predictor must not be constant.
func FitLinear(xs, ys []float64) (*LinearFit, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("stats: FitLinear length mismatch")
	}
	n := len(xs)
	if n < 3 {
		return nil, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 {
		return nil, errors.New("stats: FitLinear predictor is constant")
	}
	slope := sxy / sxx
	intercept := my - slope*mx

	// Residual sum of squares via the identity SSE = Syy - slope*Sxy,
	// clamped at zero against floating point cancellation.
	sse := syy - slope*sxy
	if sse < 0 {
		sse = 0
	}
	df := float64(n - 2)
	s := math.Sqrt(sse / df)

	fit := &LinearFit{
		N:          n,
		Slope:      slope,
		Intercept:  intercept,
		ResidualSE: s,
		XMean:      mx,
		Sxx:        sxx,
	}
	if syy > 0 {
		fit.R = sxy / math.Sqrt(sxx*syy)
		fit.R2 = fit.R * fit.R
	}
	fit.SlopeSE = s / math.Sqrt(sxx)
	fit.InterceptSE = s * math.Sqrt(1/float64(n)+mx*mx/sxx)
	if fit.SlopeSE > 0 {
		fit.TStat = slope / fit.SlopeSE
		fit.PValue = StudentT{Nu: df}.TwoSidedP(fit.TStat)
	} else {
		// A perfect fit: the slope is estimated without error, so the null
		// hypothesis is rejected at any level when the slope is nonzero.
		fit.TStat = math.Inf(1)
		if slope == 0 {
			fit.TStat = 0
			fit.PValue = 1
		}
	}
	return fit, nil
}

// Predict returns the fitted value Slope*x + Intercept.
func (f *LinearFit) Predict(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// Interval is a symmetric interval around a center value.
type Interval struct {
	Center, Low, High float64
}

// Half returns the half-width of the interval.
func (iv Interval) Half() float64 { return (iv.High - iv.Low) / 2 }

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Low && v <= iv.High }

// tCrit returns the two-sided critical t value for the given confidence
// level (e.g. 0.95) and this fit's residual degrees of freedom.
func (f *LinearFit) tCrit(level float64) float64 {
	if level <= 0 || level >= 1 {
		panic("stats: confidence level must be in (0,1)")
	}
	return StudentT{Nu: float64(f.N - 2)}.Quantile(1 - (1-level)/2)
}

// ConfidenceInterval returns the confidence interval for the mean response
// at x: "a 95% confidence interval has a 95% chance of containing the true
// regression line" (§5.8).
func (f *LinearFit) ConfidenceInterval(x, level float64) Interval {
	c := f.Predict(x)
	h := f.tCrit(level) * f.ResidualSE *
		math.Sqrt(1/float64(f.N)+(x-f.XMean)*(x-f.XMean)/f.Sxx)
	return Interval{Center: c, Low: c - h, High: c + h}
}

// PredictionInterval returns the prediction interval for a new observation
// at x: "the larger 95% prediction interval has a 95% chance of containing
// the observations that would be encountered" (§5.8).
func (f *LinearFit) PredictionInterval(x, level float64) Interval {
	c := f.Predict(x)
	h := f.tCrit(level) * f.ResidualSE *
		math.Sqrt(1+1/float64(f.N)+(x-f.XMean)*(x-f.XMean)/f.Sxx)
	return Interval{Center: c, Low: c - h, High: c + h}
}

// SlopeConfidenceInterval returns the confidence interval for the slope.
func (f *LinearFit) SlopeConfidenceInterval(level float64) Interval {
	h := f.tCrit(level) * f.SlopeSE
	return Interval{Center: f.Slope, Low: f.Slope - h, High: f.Slope + h}
}

// Significant reports whether the "no correlation" null hypothesis is
// rejected at significance level alpha (the paper uses alpha = 0.05).
func (f *LinearFit) Significant(alpha float64) bool {
	return f.PValue <= alpha
}
