package stats

import (
	"math"
	"strings"
	"testing"
)

// The order statistics sort their input, and sort.Float64s leaves NaN
// placement unspecified — a NaN element would silently return an
// arbitrary quantile. The contract is therefore a panic naming the
// function, so the corrupt upstream counter is found at the source.

func wantNaNPanic(t *testing.T, fn string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s of NaN input did not panic", fn)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, fn) {
			t.Fatalf("%s panic = %v, want message naming %s", fn, r, fn)
		}
	}()
	f()
}

func TestOrderStatisticsPanicOnNaN(t *testing.T) {
	nan := math.NaN()
	wantNaNPanic(t, "Quantile", func() { Quantile([]float64{1, nan, 3}, 0.5) })
	wantNaNPanic(t, "Quantile", func() { Median([]float64{nan}) })
	wantNaNPanic(t, "Quantile", func() { MAD([]float64{1, 2, nan}) })
	wantNaNPanic(t, "MedianIndex", func() { MedianIndex([]float64{1, nan, 3}) })
}

func TestOrderStatisticsAcceptInfinity(t *testing.T) {
	// Infinities sort fine; only NaN breaks the ordering contract.
	xs := []float64{1, 2, math.Inf(1)}
	if got := Median(xs); got != 2 {
		t.Errorf("Median with +Inf = %v, want 2", got)
	}
	if got := MedianIndex(xs); got != 1 {
		t.Errorf("MedianIndex with +Inf = %d, want 1", got)
	}
}
