package stats

import (
	"math"
	"testing"
)

func TestLogGamma(t *testing.T) {
	// Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
	approx(t, LogGamma(1), 0, 1e-10, "lnΓ(1)")
	approx(t, LogGamma(2), 0, 1e-10, "lnΓ(2)")
	approx(t, LogGamma(5), math.Log(24), 1e-9, "lnΓ(5)")
	approx(t, LogGamma(0.5), math.Log(math.Sqrt(math.Pi)), 1e-9, "lnΓ(0.5)")
	if !math.IsNaN(LogGamma(-1)) {
		t.Error("LogGamma of negative should be NaN")
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// I_x(2,1) = x².
	approx(t, RegIncBeta(2, 1, 0.5), 0.25, 1e-10, "I_0.5(2,1)")
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	got := RegIncBeta(3.2, 1.7, 0.3)
	want := 1 - RegIncBeta(1.7, 3.2, 0.7)
	approx(t, got, want, 1e-10, "symmetry")
}

func TestRegIncBetaMonotone(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := RegIncBeta(2.5, 3.5, math.Min(x, 1))
		if v < prev-1e-12 {
			t.Fatalf("RegIncBeta not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestNormalCDF(t *testing.T) {
	n := StdNormal
	approx(t, n.CDF(0), 0.5, 1e-12, "Φ(0)")
	approx(t, n.CDF(1.959963985), 0.975, 1e-6, "Φ(1.96)")
	approx(t, n.CDF(-1.959963985), 0.025, 1e-6, "Φ(-1.96)")
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 2}
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
		approx(t, n.CDF(n.Quantile(p)), p, 1e-9, "normal quantile roundtrip")
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 0.5}
	sum := 0.0
	const step = 0.001
	for x := -5.0; x <= 7; x += step {
		sum += n.PDF(x) * step
	}
	approx(t, sum, 1, 1e-3, "normal pdf integral")
}

func TestStudentTCDF(t *testing.T) {
	// Known critical values: t_{0.975, 10} = 2.2281, t_{0.975, 5} = 2.5706.
	approx(t, StudentT{Nu: 10}.CDF(2.228139), 0.975, 1e-5, "t10 CDF")
	approx(t, StudentT{Nu: 5}.CDF(2.570582), 0.975, 1e-5, "t5 CDF")
	approx(t, StudentT{Nu: 7}.CDF(0), 0.5, 1e-12, "t CDF at 0")
	// Symmetry.
	tt := StudentT{Nu: 4}
	approx(t, tt.CDF(-1.3)+tt.CDF(1.3), 1, 1e-10, "t symmetry")
}

func TestStudentTQuantile(t *testing.T) {
	approx(t, StudentT{Nu: 10}.Quantile(0.975), 2.228139, 1e-4, "t10 q975")
	approx(t, StudentT{Nu: 98}.Quantile(0.975), 1.984467, 1e-4, "t98 q975")
	approx(t, StudentT{Nu: 3}.Quantile(0.5), 0, 1e-12, "t q50")
	// Large nu approaches normal.
	approx(t, StudentT{Nu: 1e6}.Quantile(0.975), 1.959964, 1e-3, "t large nu")
}

func TestStudentTTwoSidedP(t *testing.T) {
	p := StudentT{Nu: 10}.TwoSidedP(2.228139)
	approx(t, p, 0.05, 1e-4, "two-sided p")
	if p2 := (StudentT{Nu: 10}).TwoSidedP(-2.228139); math.Abs(p-p2) > 1e-12 {
		t.Error("TwoSidedP should be symmetric in sign")
	}
}

func TestStudentTPDFIntegral(t *testing.T) {
	tt := StudentT{Nu: 6}
	sum := 0.0
	const step = 0.002
	for x := -30.0; x <= 30; x += step {
		sum += tt.PDF(x) * step
	}
	approx(t, sum, 1, 2e-3, "t pdf integral")
}

func TestFDistCDF(t *testing.T) {
	// F_{0.95}(3, 20) = 3.0984.
	approx(t, FDist{D1: 3, D2: 20}.CDF(3.098391), 0.95, 1e-5, "F(3,20)")
	// F_{0.95}(1, 10) = t_{0.975,10}² = 4.9646.
	approx(t, FDist{D1: 1, D2: 10}.CDF(4.964603), 0.95, 1e-5, "F(1,10)")
	if (FDist{D1: 2, D2: 2}).CDF(-1) != 0 {
		t.Error("F CDF of negative should be 0")
	}
}

func TestFDistQuantileRoundTrip(t *testing.T) {
	f := FDist{D1: 3, D2: 96}
	for _, p := range []float64{0.05, 0.5, 0.95, 0.99} {
		approx(t, f.CDF(f.Quantile(p)), p, 1e-8, "F quantile roundtrip")
	}
}

func TestFDistVsStudentT(t *testing.T) {
	// If T ~ t(nu) then T² ~ F(1, nu): P(F <= x²) = P(|T| <= x).
	tt := StudentT{Nu: 12}
	f := FDist{D1: 1, D2: 12}
	for _, x := range []float64{0.5, 1, 2, 3} {
		want := tt.CDF(x) - tt.CDF(-x)
		approx(t, f.CDF(x*x), want, 1e-9, "F vs t relation")
	}
}
