// Package stats implements the statistical machinery the paper relies on
// (§5.8): descriptive statistics, Pearson correlation, least-squares simple
// and multiple linear regression with Student t and F hypothesis tests, 95%
// confidence and prediction intervals, and Gaussian kernel density
// estimation for violin plots. Everything is implemented from first
// principles on the standard library so the module carries no dependencies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more
// observations than were supplied.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance.
// It returns 0 when fewer than two observations are supplied.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median (average of middle two for even n).
// It panics on empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics (type-7, the R default).
// It panics on empty input, NaN input or q outside [0, 1]: sort.Float64s
// leaves the ordering of NaN unspecified, so a NaN element would make
// every order statistic silently garbage. The panic is consistent with
// the empty-slice contract — callers screen their data first.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile fraction out of [0,1]")
	}
	checkNoNaN(xs, "Quantile")
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// checkNoNaN panics when xs contains a NaN, naming the order-statistic
// function whose contract it violates.
func checkNoNaN(xs []float64, fn string) {
	for _, x := range xs {
		if math.IsNaN(x) {
			panic("stats: " + fn + " of NaN input")
		}
	}
}

// MAD returns the median absolute deviation from the median, the robust
// scale estimate behind the campaign supervisor's outlier screen: unlike
// the standard deviation, up to half the sample can be wildly corrupted
// without moving it. It panics on empty or NaN input (via Median: a NaN
// deviation would corrupt the order statistics). The raw MAD is returned
// (no 1.4826 normal-consistency factor); callers choose thresholds in
// MAD units.
func MAD(xs []float64) float64 {
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// MedianIndex returns the index into xs of the element whose value is the
// lower median. The paper keeps "the measurements given by the run with the
// median number of cycles" (§5.5); this helper identifies which run that
// was so all of its counters can be kept together.
func MedianIndex(xs []float64) int {
	if len(xs) == 0 {
		panic("stats: MedianIndex of empty slice")
	}
	checkNoNaN(xs, "MedianIndex")
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx[(len(xs)-1)/2]
}

// Correlation returns Pearson's r between xs and ys (§5.8 item 1).
// It returns an error when the lengths differ, fewer than two pairs are
// given, or either variable has zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Correlation length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: Correlation undefined for constant variable")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Summary bundles the descriptive statistics reported alongside violin
// plots and campaign datasets.
type Summary struct {
	N              int
	Mean, StdDev   float64
	Min, Max       float64
	Median         float64
	Q1, Q3         float64 // first and third quartiles
	PctSpreadRange float64 // (Max-Min)/Mean * 100, the paper's "% variation"
}

// Summarize computes a Summary of xs. It returns an error on empty input.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrInsufficientData
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		Q1:     Quantile(xs, 0.25),
		Q3:     Quantile(xs, 0.75),
	}
	if s.Mean != 0 {
		s.PctSpreadRange = (s.Max - s.Min) / s.Mean * 100
	}
	return s, nil
}

// PercentDeviations maps xs to percent difference from their mean, the
// quantity plotted in the paper's Figure 1 violins.
func PercentDeviations(xs []float64) []float64 {
	m := Mean(xs)
	out := make([]float64, len(xs))
	if m == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = (x - m) / m * 100
	}
	return out
}
