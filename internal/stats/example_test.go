package stats_test

import (
	"fmt"

	"interferometry/internal/stats"
)

// The paper's perlbench model (§4.5): fit a line through three exact
// points of CPI = 0.028*MPKI + 0.517 and read back the coefficients.
func ExampleFitLinear() {
	mpki := []float64{2, 5, 8}
	cpi := []float64{0.573, 0.657, 0.741}
	fit, err := stats.FitLinear(mpki, cpi)
	if err != nil {
		panic(err)
	}
	fmt.Printf("CPI = %.3f*MPKI + %.3f (r=%.2f)\n", fit.Slope, fit.Intercept, fit.R)
	// Output: CPI = 0.028*MPKI + 0.517 (r=1.00)
}

// Prediction intervals are wider than confidence intervals at every
// position (§5.8 item 5).
func ExampleLinearFit_PredictionInterval() {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{1.1, 1.9, 3.2, 3.8, 5.1, 5.9}
	fit, err := stats.FitLinear(xs, ys)
	if err != nil {
		panic(err)
	}
	ci := fit.ConfidenceInterval(3.5, 0.95)
	pi := fit.PredictionInterval(3.5, 0.95)
	fmt.Printf("fit at 3.5: %.2f; CI half-width %.2f < PI half-width %.2f: %v\n",
		ci.Center, ci.Half(), pi.Half(), ci.Half() < pi.Half())
	// Output: fit at 3.5: 3.50; CI half-width 0.19 < PI half-width 0.50: true
}

// Student's t critical value for 98 residual degrees of freedom, the
// quantity behind every 95% interval of a 100-layout campaign.
func ExampleStudentT_Quantile() {
	tcrit := stats.StudentT{Nu: 98}.Quantile(0.975)
	fmt.Printf("t(0.975, 98) = %.3f\n", tcrit)
	// Output: t(0.975, 98) = 1.984
}

// Pearson's r for astar as quoted in §5.8: "MPKI and CPI of 473.astar
// have a sample correlation coefficient of 0.80", with r² giving the share of
// CPI variability attributable to branch mispredictions.
func ExampleCorrelation() {
	mpki := []float64{5.0, 5.2, 5.1, 5.4, 5.3, 5.6, 5.5, 5.8}
	cpi := []float64{2.30, 2.35, 2.36, 2.38, 2.36, 2.42, 2.38, 2.44}
	r, err := stats.Correlation(mpki, cpi)
	if err != nil {
		panic(err)
	}
	fmt.Printf("r = %.2f, r^2 = %.2f\n", r, r*r)
	// Output: r = 0.95, r^2 = 0.89
}
