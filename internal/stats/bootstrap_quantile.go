package stats

import (
	"sort"

	"interferometry/internal/xrand"
)

// BootstrapQuantileCI returns the percentile bootstrap confidence
// interval for the q-th quantile of xs, from B resamples with
// replacement. The layout-search report uses it to put an interval on
// the random-sampling median that a searched layout is compared
// against. seed makes the interval reproducible. At least three
// observations and B >= 100 are required; level defaults to 0.95.
func BootstrapQuantileCI(xs []float64, q float64, b int, seed uint64, level float64) (Interval, error) {
	if len(xs) < 3 || q < 0 || q > 1 {
		return Interval{}, ErrInsufficientData
	}
	if b < 100 {
		b = 100
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	n := len(xs)
	rng := xrand.New(xrand.Mix(seed, 0x71626f6f)) // "qboo"
	rs := make([]float64, n)
	qs := make([]float64, 0, b)
	for rep := 0; rep < b; rep++ {
		for i := 0; i < n; i++ {
			rs[i] = xs[rng.Intn(n)]
		}
		qs = append(qs, Quantile(rs, q))
	}
	sort.Float64s(qs)
	alpha := (1 - level) / 2
	lo := qs[int(alpha*float64(len(qs)))]
	hi := qs[min(int((1-alpha)*float64(len(qs))), len(qs)-1)]
	return Interval{Center: Quantile(xs, q), Low: lo, High: hi}, nil
}
