package isa_test

import (
	"strings"
	"testing"

	"interferometry/internal/isa"
	"interferometry/internal/testprog"
	"interferometry/internal/xrand"
)

func TestBlockNInstr(t *testing.T) {
	b := isa.Block{
		ClassCounts: [isa.NumInstrClasses]uint16{3, 1, 0, 2},
		Mems:        []isa.MemOp{{}, {}},
		Allocs:      []isa.AllocOp{{Pool: []isa.ObjectID{0}}},
		Term:        isa.Terminator{Kind: isa.TermCondBranch},
	}
	// 6 body + 2 mem + 1 alloc + 1 terminator.
	if got := b.NInstr(); got != 10 {
		t.Fatalf("NInstr = %d, want 10", got)
	}
	b.Term.Kind = isa.TermFallthrough
	if got := b.NInstr(); got != 9 {
		t.Fatalf("NInstr with fallthrough = %d, want 9", got)
	}
}

func TestProgramHelpers(t *testing.T) {
	p := testprog.CallChain(3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Proc(3) != 1 {
		t.Errorf("Proc(3) = %d, want 1", p.Proc(3))
	}
	if next, ok := p.NextInProc(0); !ok || next != 1 {
		t.Errorf("NextInProc(0) = %d,%v", next, ok)
	}
	if _, ok := p.NextInProc(2); ok {
		t.Error("NextInProc(last of main) should be false")
	}
	if _, ok := p.NextInProc(3); ok {
		t.Error("NextInProc(only block of helper) should be false")
	}
	if got := p.StaticBranchCount(); got != 1 {
		t.Errorf("StaticBranchCount = %d, want 1", got)
	}
	if got := p.CodeBytes(); got != 12+10+6+16 {
		t.Errorf("CodeBytes = %d", got)
	}
	if s := p.String(); !strings.Contains(s, "callchain") {
		t.Errorf("String = %q", s)
	}
}

func TestValidatePasses(t *testing.T) {
	for _, p := range []*isa.Program{
		testprog.Counting(5),
		testprog.CallChain(5),
		testprog.Memory(5),
		testprog.Branchy(),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// mutate clones the Counting program and applies f, returning the clone.
func mutate(t *testing.T, f func(p *isa.Program)) *isa.Program {
	t.Helper()
	p := testprog.Counting(3)
	f(p)
	return p
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog *isa.Program
		want string
	}{
		{
			"no procedures",
			&isa.Program{Name: "x"},
			"no procedures",
		},
		{
			"main out of range",
			mutate(t, func(p *isa.Program) { p.Main = 9 }),
			"out of range",
		},
		{
			"fallthrough off end",
			mutate(t, func(p *isa.Program) {
				p.Blocks[1].Term = isa.Terminator{Kind: isa.TermFallthrough}
			}),
			"falls through",
		},
		{
			"cond branch in last block",
			mutate(t, func(p *isa.Program) {
				p.Blocks[1].Term = isa.Terminator{
					Kind: isa.TermCondBranch, Target: 0, Behavior: isa.Biased{P: 0.5},
				}
			}),
			"no fallthrough",
		},
		{
			"branch target outside proc",
			mutate(t, func(p *isa.Program) { p.Blocks[0].Term.Target = 5 }),
			"outside",
		},
		{
			"nil behaviour",
			mutate(t, func(p *isa.Program) { p.Blocks[0].Term.Behavior = nil }),
			"no behaviour",
		},
		{
			"zero bytes",
			mutate(t, func(p *isa.Program) { p.Blocks[0].Bytes = 0 }),
			"zero code bytes",
		},
		{
			"call to missing proc",
			mutate(t, func(p *isa.Program) {
				p.Blocks[0].Term = isa.Terminator{Kind: isa.TermCall, Callee: 7}
			}),
			"missing procedure",
		},
		{
			"call in last block",
			mutate(t, func(p *isa.Program) {
				p.Blocks[1].Term = isa.Terminator{Kind: isa.TermCall, Callee: 0}
			}),
			"no return point",
		},
		{
			"mem with nil pattern",
			mutate(t, func(p *isa.Program) {
				p.Blocks[0].Mems = []isa.MemOp{{Kind: isa.MemLoad}}
			}),
			"no pattern",
		},
		{
			"stream past object",
			mutate(t, func(p *isa.Program) {
				p.Objects = []isa.ObjectMeta{{Size: 64}}
				p.Blocks[0].Mems = []isa.MemOp{{
					Kind:    isa.MemLoad,
					Pattern: isa.Stream{Object: 0, Stride: 8, Size: 128},
				}}
			}),
			"smaller than pattern",
		},
		{
			"stream zero stride",
			mutate(t, func(p *isa.Program) {
				p.Objects = []isa.ObjectMeta{{Size: 64}}
				p.Blocks[0].Mems = []isa.MemOp{{
					Kind:    isa.MemLoad,
					Pattern: isa.Stream{Object: 0, Stride: 0, Size: 64},
				}}
			}),
			"stride is zero",
		},
		{
			"alloc empty pool",
			mutate(t, func(p *isa.Program) {
				p.Blocks[0].Allocs = []isa.AllocOp{{Kind: isa.AllocNew}}
			}),
			"empty pool",
		},
		{
			"alloc non-heap object",
			mutate(t, func(p *isa.Program) {
				p.Objects = []isa.ObjectMeta{{Size: 64, Heap: false}}
				p.Blocks[0].Allocs = []isa.AllocOp{{Kind: isa.AllocNew, Pool: []isa.ObjectID{0}}}
			}),
			"non-heap",
		},
		{
			"recursion",
			func() *isa.Program {
				p := testprog.CallChain(3)
				// helper calls main: cycle. helper has a single block, so
				// first give it a second block to return from.
				p.Blocks[3].Term = isa.Terminator{Kind: isa.TermCall, Callee: 0}
				p.Blocks = append(p.Blocks, isa.Block{
					Proc: 1, Bytes: 4,
					Term: isa.Terminator{Kind: isa.TermReturn},
				})
				p.Procs[1].Blocks = append(p.Procs[1].Blocks, 4)
				return p
			}(),
			"recursive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.prog.Validate()
			if err == nil {
				t.Fatalf("Validate accepted bad program")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateIndirectCall(t *testing.T) {
	p := testprog.Branchy()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Blocks[2].Term.Callees = nil
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "no targets") {
		t.Errorf("empty indirect targets: %v", err)
	}
	p.Blocks[2].Term.Callees = []isa.ProcID{9}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("bad indirect target: %v", err)
	}
}

func newCtx(seed uint64) *isa.BehaviorCtx {
	var hist uint64
	return &isa.BehaviorCtx{Rand: xrand.New(seed), History: &hist}
}

func TestBiasedBehavior(t *testing.T) {
	ctx := newCtx(1)
	b := isa.Biased{P: 0.8}
	taken := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if b.Next(ctx) {
			taken++
		}
		ctx.Count++
	}
	rate := float64(taken) / n
	if rate < 0.77 || rate > 0.83 {
		t.Errorf("biased 0.8 branch taken rate %v", rate)
	}
}

func TestLoopBehavior(t *testing.T) {
	ctx := newCtx(2)
	l := isa.Loop{Trip: 4}
	want := []bool{true, true, true, false, true, true, true, false}
	for i, w := range want {
		got := l.Next(ctx)
		ctx.Count++
		if got != w {
			t.Fatalf("loop outcome %d = %v, want %v", i, got, w)
		}
	}
	// Trip 1 is never taken.
	ctx2 := newCtx(3)
	one := isa.Loop{Trip: 1}
	for i := 0; i < 5; i++ {
		if one.Next(ctx2) {
			t.Fatal("Loop{1} should never be taken")
		}
		ctx2.Count++
	}
}

func TestPatternBehavior(t *testing.T) {
	ctx := newCtx(4)
	p := isa.Pattern{Bits: 0b1011, Len: 4}
	want := []bool{true, true, false, true, true, true, false, true}
	for i, w := range want {
		got := p.Next(ctx)
		ctx.Count++
		if got != w {
			t.Fatalf("pattern outcome %d = %v, want %v", i, got, w)
		}
	}
}

func TestCorrelatedBehaviorFollowsHistory(t *testing.T) {
	ctx := newCtx(5)
	c := isa.Correlated{Mask: 0x1, Noise: 0}
	// Outcome equals the previous outcome bit (mask 0x1 = last outcome).
	*ctx.History = 1
	if !c.Next(ctx) {
		t.Error("history parity 1 should be taken")
	}
	*ctx.History = 0
	if c.Next(ctx) {
		t.Error("history parity 0 should be not-taken")
	}
	flip := isa.Correlated{Mask: 0x1, Noise: 0, Flip: true}
	*ctx.History = 1
	if flip.Next(ctx) {
		t.Error("flipped parity 1 should be not-taken")
	}
}

func TestCorrelatedDeterministicWithoutNoise(t *testing.T) {
	c := isa.Correlated{Mask: 0b1101, Noise: 0}
	for trial := 0; trial < 10; trial++ {
		ctx := newCtx(uint64(trial))
		*ctx.History = 0b1010
		first := c.Next(ctx)
		ctx2 := newCtx(uint64(trial + 100))
		*ctx2.History = 0b1010
		if c.Next(ctx2) != first {
			t.Fatal("noise-free correlated outcome should not depend on rng")
		}
	}
}

func TestSelectBounds(t *testing.T) {
	behaviors := []isa.BranchBehavior{
		isa.Biased{P: 0.3},
		isa.Loop{Trip: 3},
		isa.Pattern{Bits: 0b10, Len: 2},
		isa.Correlated{Mask: 0x7},
	}
	for bi, b := range behaviors {
		ctx := newCtx(uint64(bi))
		for n := 1; n <= 5; n++ {
			for i := 0; i < 200; i++ {
				got := b.Select(ctx, n)
				ctx.Count++
				if got < 0 || got >= n {
					t.Fatalf("behavior %d Select(%d) = %d out of range", bi, n, got)
				}
			}
		}
	}
}

func TestStreamPattern(t *testing.T) {
	s := isa.Stream{Object: 3, Stride: 8, Size: 32}
	st := isa.PatternState{Rand: xrand.New(1)}
	wantOffs := []uint64{0, 8, 16, 24, 0, 8}
	for i, w := range wantOffs {
		obj, off := s.Next(&st)
		if obj != 3 || off != w {
			t.Fatalf("stream access %d = (%d,%d), want (3,%d)", i, obj, off, w)
		}
	}
}

func TestRandomInObjectPattern(t *testing.T) {
	p := isa.RandomInObject{Object: 1, Size: 64, Granule: 8}
	st := isa.PatternState{Rand: xrand.New(2)}
	seen := map[uint64]bool{}
	for i := 0; i < 200; i++ {
		obj, off := p.Next(&st)
		if obj != 1 {
			t.Fatalf("wrong object %d", obj)
		}
		if off >= 64 || off%8 != 0 {
			t.Fatalf("offset %d not aligned in object", off)
		}
		seen[off] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected all 8 slots touched, saw %d", len(seen))
	}
}

func TestPoolChasePattern(t *testing.T) {
	pool := []isa.ObjectID{10, 11, 12}
	p := isa.PoolChase{Pool: pool, ObjSize: 128, Skew: 0.8, Granule: 16}
	st := isa.PatternState{Rand: xrand.New(3)}
	seen := map[isa.ObjectID]int{}
	for i := 0; i < 3000; i++ {
		obj, off := p.Next(&st)
		if off >= 128 || off%16 != 0 {
			t.Fatalf("bad offset %d", off)
		}
		seen[obj]++
	}
	for _, o := range pool {
		if seen[o] == 0 {
			t.Errorf("object %d never touched", o)
		}
	}
	if seen[10] <= seen[12] {
		t.Errorf("zipf skew should favor first pool member: %v", seen)
	}
}

func TestBlockedPattern(t *testing.T) {
	p := isa.Blocked{Objects: []isa.ObjectID{1, 2}, Stride: 8, Span: 16}
	st := isa.PatternState{Rand: xrand.New(4)}
	type acc struct {
		obj isa.ObjectID
		off uint64
	}
	want := []acc{{1, 0}, {1, 8}, {2, 0}, {2, 8}, {1, 0}}
	for i, w := range want {
		obj, off := p.Next(&st)
		if obj != w.obj || off != w.off {
			t.Fatalf("blocked access %d = (%d,%d), want (%d,%d)", i, obj, off, w.obj, w.off)
		}
	}
}
