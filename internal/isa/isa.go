// Package isa defines the virtual instruction set architecture that stands
// in for x86_64 in this reproduction. A Program is a layout-free
// description of computation: procedures made of basic blocks, each block
// carrying an instruction mix, memory operations expressed against
// abstract data objects, and a control-flow terminator whose dynamic
// behaviour is a deterministic function of the program's behaviour seed.
//
// The central property of program interferometry (§1, §4) is that every
// perturbed executable is semantically equivalent: "each code and data
// placement is semantically equivalent, but because the instruction
// addresses are different, different conflicts will arise among
// microarchitectural structures". Package isa enforces that property by
// construction — nothing in a Program mentions an address. Addresses are
// assigned later by internal/toolchain (code) and internal/heap (data),
// and only the microarchitectural models in internal/machine ever see
// them.
package isa

import "fmt"

// ProcID identifies a procedure within a Program.
type ProcID uint32

// BlockID identifies a basic block with a program-global index.
type BlockID uint32

// ObjectID identifies an abstract data object (global or heap).
type ObjectID uint32

// InstrClass categorizes non-control instructions for the timing model.
type InstrClass uint8

// Instruction classes. Loads and stores are represented separately as
// MemOps because they carry access-pattern state; the class counts below
// cover only the non-memory body of a block.
const (
	ClassIntALU InstrClass = iota // simple integer ops
	ClassIntMul                   // integer multiply/divide
	ClassFPAdd                    // FP add/sub/convert
	ClassFPMul                    // FP multiply/divide/sqrt
	NumInstrClasses
)

// MemKind distinguishes loads from stores.
type MemKind uint8

// Kinds of memory operation.
const (
	MemLoad MemKind = iota
	MemStore
)

// MemOp is one static memory instruction inside a block. Its dynamic
// address stream is produced by the access pattern, expressed as
// (object, offset) pairs; concrete addresses do not exist until a data
// layout is chosen.
type MemOp struct {
	Kind    MemKind
	Pattern AccessPattern
}

// AllocKind distinguishes heap allocation from release.
type AllocKind uint8

// Kinds of allocation event.
const (
	AllocNew AllocKind = iota
	AllocFree
)

// AllocOp is a static allocation-site instruction. Which object it
// (re)allocates or frees is decided dynamically by the site's selector so
// that heap churn is part of program behaviour.
type AllocOp struct {
	Kind AllocKind
	// Pool is the set of heap objects this site operates on.
	Pool []ObjectID
}

// TermKind enumerates block terminators.
type TermKind uint8

// Terminator kinds.
const (
	// TermFallthrough continues to the next block in the procedure.
	TermFallthrough TermKind = iota
	// TermCondBranch consults Behavior: taken goes to Target, not-taken
	// falls through to the next block.
	TermCondBranch
	// TermJump transfers unconditionally to Target.
	TermJump
	// TermCall invokes Callee and resumes at the next block on return.
	TermCall
	// TermIndirectCall selects a callee from Callees via Behavior and
	// resumes at the next block on return; it exercises the BTB.
	TermIndirectCall
	// TermReturn leaves the current procedure.
	TermReturn
)

// Terminator describes how control leaves a block.
type Terminator struct {
	Kind     TermKind
	Target   BlockID        // TermCondBranch (taken), TermJump
	Callee   ProcID         // TermCall
	Callees  []ProcID       // TermIndirectCall
	Behavior BranchBehavior // TermCondBranch outcome / TermIndirectCall selector
}

// Block is one basic block. ClassCounts describes the non-memory,
// non-control instruction body; Mems and Allocs are the memory-side
// instructions; the terminator is one further instruction (except
// fallthrough, which is free).
type Block struct {
	Proc        ProcID
	ClassCounts [NumInstrClasses]uint16
	Bytes       uint32 // static code size of the block, for fetch modeling
	Mems        []MemOp
	Allocs      []AllocOp
	Term        Terminator
}

// NInstr returns the number of retired instructions one execution of the
// block contributes.
func (b *Block) NInstr() int {
	n := 0
	for _, c := range b.ClassCounts {
		n += int(c)
	}
	n += len(b.Mems) + len(b.Allocs)
	if b.Term.Kind != TermFallthrough {
		n++
	}
	return n
}

// Procedure is a contiguous range of blocks. Blocks[0] is the entry.
type Procedure struct {
	Name   string
	Blocks []BlockID // contiguous, ascending program-global IDs
}

// Entry returns the entry block of the procedure.
func (p *Procedure) Entry() BlockID { return p.Blocks[0] }

// ObjectMeta describes a data object.
type ObjectMeta struct {
	Size uint64 // bytes
	Heap bool   // heap-allocated (placed by the allocator) vs global (placed by the linker)
}

// Program is a complete layout-free benchmark.
type Program struct {
	Name    string
	Seed    uint64 // behaviour seed: drives every stochastic choice during execution
	Procs   []Procedure
	Blocks  []Block
	Objects []ObjectMeta
	// Main is the procedure where execution starts.
	Main ProcID
}

// Proc returns the procedure containing block id.
func (p *Program) Proc(id BlockID) ProcID { return p.Blocks[id].Proc }

// NextInProc returns the block following id inside its procedure and true,
// or 0 and false if id is the last block of its procedure.
func (p *Program) NextInProc(id BlockID) (BlockID, bool) {
	proc := &p.Procs[p.Blocks[id].Proc]
	last := proc.Blocks[len(proc.Blocks)-1]
	if id == last {
		return 0, false
	}
	return id + 1, true
}

// StaticBranchCount returns the number of static conditional branches.
func (p *Program) StaticBranchCount() int {
	n := 0
	for i := range p.Blocks {
		if p.Blocks[i].Term.Kind == TermCondBranch {
			n++
		}
	}
	return n
}

// CodeBytes returns the total static code size.
func (p *Program) CodeBytes() uint64 {
	var n uint64
	for i := range p.Blocks {
		n += uint64(p.Blocks[i].Bytes)
	}
	return n
}

// String identifies the program.
func (p *Program) String() string {
	return fmt.Sprintf("%s{procs=%d blocks=%d objects=%d}",
		p.Name, len(p.Procs), len(p.Blocks), len(p.Objects))
}
