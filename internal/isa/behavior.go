package isa

import "interferometry/internal/xrand"

// BranchBehavior is the deterministic dynamic-outcome model of a static
// conditional branch or indirect-call selector. Outcomes must be a pure
// function of the behaviour context so that every execution of a program
// with the same seed produces the same trace regardless of code or data
// layout — the semantic-equivalence invariant of interferometry.
type BranchBehavior interface {
	// Next returns the branch outcome (for conditionals: taken) or, for
	// selectors, an index derived from the same mechanism. ctx carries the
	// per-site PRNG and the global outcome history.
	Next(ctx *BehaviorCtx) bool
	// Select returns an index in [0, n) for indirect-call selection.
	Select(ctx *BehaviorCtx, n int) int
}

// BehaviorCtx is the runtime context handed to behaviour models. One
// context exists per static site; History is shared program-global state
// maintained by the interpreter (most recent outcome in bit 0).
type BehaviorCtx struct {
	Rand    *xrand.Rand
	History *uint64
	// Count is the number of times this site has executed before the
	// current invocation.
	Count uint64
}

// Biased takes the branch with fixed probability P.
type Biased struct {
	P float64
}

// Next implements BranchBehavior.
func (b Biased) Next(ctx *BehaviorCtx) bool { return ctx.Rand.Bool(b.P) }

// Select implements BranchBehavior; it picks uniformly when P >= 0.5 and
// skews toward target 0 otherwise.
func (b Biased) Select(ctx *BehaviorCtx, n int) int {
	if n <= 1 {
		return 0
	}
	if ctx.Rand.Bool(b.P) {
		return 0
	}
	return 1 + ctx.Rand.Intn(n-1)
}

// Loop models a loop-back branch: taken Trip-1 times, then not taken,
// repeating. Perfectly predictable by loop predictors and by history
// predictors whose history covers the trip count.
type Loop struct {
	Trip uint64 // iterations per loop instance; must be >= 1
}

// Next implements BranchBehavior.
func (l Loop) Next(ctx *BehaviorCtx) bool {
	if l.Trip <= 1 {
		return false
	}
	return ctx.Count%l.Trip != l.Trip-1
}

// Select implements BranchBehavior by rotating through targets.
func (l Loop) Select(ctx *BehaviorCtx, n int) int {
	if n <= 0 {
		return 0
	}
	trip := l.Trip
	if trip == 0 {
		trip = 1
	}
	return int((ctx.Count / trip) % uint64(n))
}

// Pattern replays a fixed bit pattern of outcomes. Short patterns are
// captured by two-level predictors with sufficient history.
type Pattern struct {
	Bits uint64 // outcome bits, LSB first
	Len  uint8  // pattern length in bits, 1..64
}

// Next implements BranchBehavior.
func (p Pattern) Next(ctx *BehaviorCtx) bool {
	l := uint64(p.Len)
	if l == 0 {
		l = 1
	}
	return (p.Bits>>(ctx.Count%l))&1 == 1
}

// Select implements BranchBehavior.
func (p Pattern) Select(ctx *BehaviorCtx, n int) int {
	if n <= 0 {
		return 0
	}
	if p.Next(ctx) {
		return int(ctx.Count) % n
	}
	return 0
}

// Correlated computes the outcome from the global branch history: the
// parity of (history & Mask), flipped with probability Noise. History
// predictors with enough history bits learn it; a bimodal predictor sees a
// roughly balanced, unpredictable branch. This is what separates gshare
// and L-TAGE from bimodal in our synthetic suite.
type Correlated struct {
	Mask  uint64  // which history bits determine the outcome
	Noise float64 // probability the deterministic outcome is flipped
	Flip  bool    // invert the parity
}

// Next implements BranchBehavior.
func (c Correlated) Next(ctx *BehaviorCtx) bool {
	h := *ctx.History & c.Mask
	// Parity of the masked history.
	h ^= h >> 32
	h ^= h >> 16
	h ^= h >> 8
	h ^= h >> 4
	h ^= h >> 2
	h ^= h >> 1
	out := h&1 == 1
	if c.Flip {
		out = !out
	}
	if c.Noise > 0 && ctx.Rand.Bool(c.Noise) {
		out = !out
	}
	return out
}

// Select implements BranchBehavior.
func (c Correlated) Select(ctx *BehaviorCtx, n int) int {
	if n <= 0 {
		return 0
	}
	if c.Next(ctx) {
		return 1 % n
	}
	return 0
}

// Compile-time interface checks.
var (
	_ BranchBehavior = Biased{}
	_ BranchBehavior = Loop{}
	_ BranchBehavior = Pattern{}
	_ BranchBehavior = Correlated{}
)
