package isa

import "fmt"

// Validate checks the structural invariants a Program must satisfy before
// it can be compiled, linked or executed. The generator in
// internal/progen always produces valid programs; Validate exists so that
// hand-written programs in tests and examples fail loudly instead of
// corrupting a campaign.
func (p *Program) Validate() error {
	if len(p.Procs) == 0 {
		return fmt.Errorf("isa: %s has no procedures", p.Name)
	}
	if int(p.Main) >= len(p.Procs) {
		return fmt.Errorf("isa: main procedure %d out of range", p.Main)
	}
	if err := p.validateBlockPartition(); err != nil {
		return err
	}
	for id := range p.Blocks {
		if err := p.validateBlock(BlockID(id)); err != nil {
			return err
		}
	}
	return p.validateCallGraph()
}

// validateBlockPartition checks that procedures partition the block array
// into contiguous ascending ranges and that back-pointers agree.
func (p *Program) validateBlockPartition() error {
	next := BlockID(0)
	for pi := range p.Procs {
		proc := &p.Procs[pi]
		if len(proc.Blocks) == 0 {
			return fmt.Errorf("isa: procedure %q has no blocks", proc.Name)
		}
		for _, id := range proc.Blocks {
			if id != next {
				return fmt.Errorf("isa: procedure %q blocks not contiguous at %d (want %d)",
					proc.Name, id, next)
			}
			if int(id) >= len(p.Blocks) {
				return fmt.Errorf("isa: procedure %q references missing block %d", proc.Name, id)
			}
			if p.Blocks[id].Proc != ProcID(pi) {
				return fmt.Errorf("isa: block %d back-pointer %d, want %d", id, p.Blocks[id].Proc, pi)
			}
			next++
		}
	}
	if int(next) != len(p.Blocks) {
		return fmt.Errorf("isa: %d blocks not owned by any procedure", len(p.Blocks)-int(next))
	}
	return nil
}

func (p *Program) validateBlock(id BlockID) error {
	b := &p.Blocks[id]
	proc := &p.Procs[b.Proc]
	last := proc.Blocks[len(proc.Blocks)-1]
	inProc := func(t BlockID) bool {
		return t >= proc.Blocks[0] && t <= last
	}
	_, hasNext := p.NextInProc(id)

	switch b.Term.Kind {
	case TermFallthrough:
		if !hasNext {
			return fmt.Errorf("isa: block %d falls through past end of %q", id, proc.Name)
		}
	case TermCondBranch:
		if !hasNext {
			return fmt.Errorf("isa: conditional branch in last block %d of %q has no fallthrough", id, proc.Name)
		}
		if !inProc(b.Term.Target) {
			return fmt.Errorf("isa: block %d branch target %d outside %q", id, b.Term.Target, proc.Name)
		}
		if b.Term.Behavior == nil {
			return fmt.Errorf("isa: block %d conditional branch has no behaviour", id)
		}
	case TermJump:
		if !inProc(b.Term.Target) {
			return fmt.Errorf("isa: block %d jump target %d outside %q", id, b.Term.Target, proc.Name)
		}
	case TermCall:
		if !hasNext {
			return fmt.Errorf("isa: call in last block %d of %q has no return point", id, proc.Name)
		}
		if int(b.Term.Callee) >= len(p.Procs) {
			return fmt.Errorf("isa: block %d calls missing procedure %d", id, b.Term.Callee)
		}
	case TermIndirectCall:
		if !hasNext {
			return fmt.Errorf("isa: indirect call in last block %d of %q has no return point", id, proc.Name)
		}
		if len(b.Term.Callees) == 0 {
			return fmt.Errorf("isa: block %d indirect call has no targets", id)
		}
		for _, c := range b.Term.Callees {
			if int(c) >= len(p.Procs) {
				return fmt.Errorf("isa: block %d indirect target %d missing", id, c)
			}
		}
		if b.Term.Behavior == nil {
			return fmt.Errorf("isa: block %d indirect call has no selector", id)
		}
	case TermReturn:
		// Always legal.
	default:
		return fmt.Errorf("isa: block %d has unknown terminator %d", id, b.Term.Kind)
	}

	if b.Bytes == 0 {
		return fmt.Errorf("isa: block %d has zero code bytes", id)
	}
	for mi, m := range b.Mems {
		if m.Pattern == nil {
			return fmt.Errorf("isa: block %d mem %d has no pattern", id, mi)
		}
		if err := p.validatePattern(m.Pattern); err != nil {
			return fmt.Errorf("isa: block %d mem %d: %w", id, mi, err)
		}
	}
	for ai, a := range b.Allocs {
		if len(a.Pool) == 0 {
			return fmt.Errorf("isa: block %d alloc %d has empty pool", id, ai)
		}
		for _, obj := range a.Pool {
			if int(obj) >= len(p.Objects) {
				return fmt.Errorf("isa: block %d alloc %d references missing object %d", id, ai, obj)
			}
			if !p.Objects[obj].Heap {
				return fmt.Errorf("isa: block %d alloc %d operates on non-heap object %d", id, ai, obj)
			}
		}
	}
	return nil
}

func (p *Program) validatePattern(pat AccessPattern) error {
	checkObj := func(obj ObjectID, need uint64) error {
		if int(obj) >= len(p.Objects) {
			return fmt.Errorf("missing object %d", obj)
		}
		if need > p.Objects[obj].Size {
			return fmt.Errorf("object %d size %d smaller than pattern span %d",
				obj, p.Objects[obj].Size, need)
		}
		return nil
	}
	switch pt := pat.(type) {
	case Stream:
		if pt.Stride == 0 {
			return fmt.Errorf("stream stride is zero")
		}
		return checkObj(pt.Object, pt.Start+pt.Size)
	case RandomInObject:
		return checkObj(pt.Object, pt.Start+pt.Size)
	case PoolChase:
		if len(pt.Pool) == 0 {
			return fmt.Errorf("pool chase with empty pool")
		}
		for _, obj := range pt.Pool {
			if err := checkObj(obj, pt.ObjSize); err != nil {
				return err
			}
		}
		return nil
	case Blocked:
		if len(pt.Objects) == 0 {
			return fmt.Errorf("blocked pattern with no objects")
		}
		if pt.Stride == 0 {
			return fmt.Errorf("blocked stride is zero")
		}
		for _, obj := range pt.Objects {
			if err := checkObj(obj, pt.Span); err != nil {
				return err
			}
		}
		return nil
	default:
		// Custom patterns are allowed; they take responsibility for their
		// own bounds.
		return nil
	}
}

// validateCallGraph rejects recursion: the static call graph (including
// all indirect-call targets) must be acyclic so execution terminates.
func (p *Program) validateCallGraph() error {
	adj := make([][]ProcID, len(p.Procs))
	for id := range p.Blocks {
		b := &p.Blocks[id]
		from := b.Proc
		switch b.Term.Kind {
		case TermCall:
			adj[from] = append(adj[from], b.Term.Callee)
		case TermIndirectCall:
			adj[from] = append(adj[from], b.Term.Callees...)
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(p.Procs))
	var visit func(ProcID) error
	visit = func(v ProcID) error {
		color[v] = gray
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				return fmt.Errorf("isa: recursive call cycle through %q", p.Procs[w].Name)
			case white:
				if err := visit(w); err != nil {
					return err
				}
			}
		}
		color[v] = black
		return nil
	}
	for v := range p.Procs {
		if color[v] == white {
			if err := visit(ProcID(v)); err != nil {
				return err
			}
		}
	}
	return nil
}
