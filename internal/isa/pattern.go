package isa

import "interferometry/internal/xrand"

// AccessPattern is the deterministic address-stream model of a static
// memory instruction, expressed as (object, offset) pairs. Like branch
// behaviours, patterns are layout-free: the machine model resolves the
// pair to a concrete address through the current code/data layout.
type AccessPattern interface {
	// Next returns the object and byte offset touched by the next dynamic
	// execution of this memory instruction. st is this site's private
	// state; rng is this site's private generator.
	Next(st *PatternState) (ObjectID, uint64)
}

// PatternState is the per-site mutable state for an access pattern.
type PatternState struct {
	Rand    *xrand.Rand
	Counter uint64
	Cursor  uint64 // running offset for streaming patterns
	Zipf    *xrand.Zipfian
}

// Stream walks a window of one object with a fixed stride, wrapping at
// the window's end: the archetypal array sweep (libquantum-like
// streaming). Start offsets the window inside the object, so many sites
// can stream disjoint (or deliberately shared) regions.
type Stream struct {
	Object ObjectID
	Stride uint64 // bytes per access; must be > 0
	Size   uint64 // window bytes to cover before wrapping
	Start  uint64 // window base offset inside the object
}

// Next implements AccessPattern.
func (s Stream) Next(st *PatternState) (ObjectID, uint64) {
	off := st.Cursor
	size := s.Size
	if size == 0 {
		size = s.Stride
	}
	st.Cursor += s.Stride
	if st.Cursor >= size {
		st.Cursor = 0
	}
	return s.Object, s.Start + off
}

// RandomInObject touches uniformly random cache lines within a window of
// one object: hash-table or sparse-matrix style access. Granule is the
// access alignment in bytes; Start offsets the window.
type RandomInObject struct {
	Object  ObjectID
	Size    uint64
	Granule uint64
	Start   uint64
}

// Next implements AccessPattern.
func (r RandomInObject) Next(st *PatternState) (ObjectID, uint64) {
	g := r.Granule
	if g == 0 {
		g = 8
	}
	slots := r.Size / g
	if slots == 0 {
		slots = 1
	}
	return r.Object, r.Start + st.Rand.Uint64n(slots)*g
}

// PoolChase hops across a pool of heap objects, picking the next object by
// a Zipf draw (hot objects touched more) and a random offset inside it:
// pointer-chasing data structures (mcf/omnetpp-like).
type PoolChase struct {
	Pool    []ObjectID
	ObjSize uint64 // assumed uniform object size for offset selection
	Skew    float64
	Granule uint64
}

// Next implements AccessPattern.
func (p PoolChase) Next(st *PatternState) (ObjectID, uint64) {
	if st.Zipf == nil {
		st.Zipf = xrand.NewZipf(st.Rand, len(p.Pool), p.Skew)
	}
	obj := p.Pool[st.Zipf.Next()]
	g := p.Granule
	if g == 0 {
		g = 8
	}
	slots := p.ObjSize / g
	if slots == 0 {
		slots = 1
	}
	return obj, st.Rand.Uint64n(slots) * g
}

// Blocked alternates among a small set of arrays with unit-stride bursts,
// the classic loop-nest pattern of dense FP codes (calculix-like). The
// relative cache alignment of the arrays decides conflict misses, which is
// exactly what heap randomization perturbs.
type Blocked struct {
	Objects []ObjectID
	Stride  uint64
	Span    uint64 // bytes swept per object before moving to the next
}

// Next implements AccessPattern.
func (b Blocked) Next(st *PatternState) (ObjectID, uint64) {
	span := b.Span
	if span == 0 {
		span = b.Stride
	}
	perObj := span / b.Stride
	if perObj == 0 {
		perObj = 1
	}
	idx := (st.Counter / perObj) % uint64(len(b.Objects))
	off := (st.Counter % perObj) * b.Stride
	st.Counter++
	return b.Objects[idx], off
}

// Compile-time interface checks.
var (
	_ AccessPattern = Stream{}
	_ AccessPattern = RandomInObject{}
	_ AccessPattern = PoolChase{}
	_ AccessPattern = Blocked{}
)
