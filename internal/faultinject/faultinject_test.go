package faultinject_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"interferometry/internal/faultinject"
	"interferometry/internal/machine"
	"interferometry/internal/pmc"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

// stubMeasurer returns a fixed plausible measurement, counting calls.
type stubMeasurer struct{ calls int }

func (s *stubMeasurer) Measure(spec machine.RunSpec) (pmc.Measurement, error) {
	s.calls++
	return pmc.Measurement{Cycles: 1000, Instructions: 500, Runs: 1}, nil
}

func measureSpec(seed uint64) machine.RunSpec {
	return machine.RunSpec{Exe: &toolchain.Executable{Seed: seed}}
}

// outcome classifies one wrapped Measure call: "error", "panic",
// "corrupt", or "ok".
func outcome(m faultinject.Measurer, seed uint64) (result string) {
	defer func() {
		if recover() != nil {
			result = "panic"
		}
	}()
	meas, err := m.Measure(measureSpec(seed))
	switch {
	case err != nil:
		return "error"
	case meas.Cycles != 1000:
		return "corrupt"
	default:
		return "ok"
	}
}

func TestDeterministicDecisions(t *testing.T) {
	cfg := faultinject.Config{Measure: faultinject.Rates{
		Error: 0.2, Panic: 0.1, Corrupt: 0.2, MaxFaults: 1000,
	}}
	seq := func(seed uint64) []string {
		m := faultinject.New(seed, cfg).WrapMeasurer(&stubMeasurer{})
		var out []string
		for key := uint64(1); key <= 200; key++ {
			out = append(out, outcome(m, key))
		}
		return out
	}
	a, b := seq(42), seq(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := seq(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds made identical decisions for 200 keys")
	}
	kinds := map[string]bool{}
	for _, o := range a {
		kinds[o] = true
	}
	for _, want := range []string{"ok", "error", "panic", "corrupt"} {
		if !kinds[want] {
			t.Errorf("200 calls at 50%% fault rate never produced %q", want)
		}
	}
}

func TestMaxFaultsBoundsInjection(t *testing.T) {
	in := faultinject.New(7, faultinject.Config{Measure: faultinject.Rates{
		Error: 1, MaxFaults: 2,
	}})
	m := in.WrapMeasurer(&stubMeasurer{})
	for call := 0; call < 2; call++ {
		if _, err := m.Measure(measureSpec(99)); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("call %d: want injected error, got %v", call, err)
		}
	}
	// The attempt counter for this key is exhausted: every later call is
	// clean, so a caller with MaxFaults+1 attempts always succeeds.
	for call := 2; call < 5; call++ {
		if _, err := m.Measure(measureSpec(99)); err != nil {
			t.Fatalf("call %d after MaxFaults: %v", call, err)
		}
	}
	// Other keys have their own counters.
	if _, err := m.Measure(measureSpec(100)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fresh key: want injected error, got %v", err)
	}
	if got := in.Counts(faultinject.SiteMeasure)[faultinject.KindError]; got != 3 {
		t.Errorf("KindError count = %d, want 3", got)
	}
	if got := in.Injected(); got != 3 {
		t.Errorf("Injected() = %d, want 3", got)
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	in := faultinject.New(1, faultinject.Config{})
	stub := &stubMeasurer{}
	m := in.WrapMeasurer(stub)
	for key := uint64(0); key < 100; key++ {
		if _, err := m.Measure(measureSpec(key)); err != nil {
			t.Fatal(err)
		}
	}
	if stub.calls != 100 || in.Injected() != 0 {
		t.Errorf("calls=%d injected=%d, want 100 and 0", stub.calls, in.Injected())
	}
}

func TestCorruptBuildFailsCheckAndPreservesOriginal(t *testing.T) {
	builder := toolchain.NewBuilder(testprog.CallChain(10), toolchain.CompileConfig{}, toolchain.LinkConfig{})
	in := faultinject.New(3, faultinject.Config{Build: faultinject.Rates{Corrupt: 1}})
	fb := in.WrapBuilder(builder)

	bad, err := fb.Build(21)
	if err != nil {
		t.Fatal(err)
	}
	if err := toolchain.CheckExecutable(bad, -1); err == nil {
		t.Error("corrupted executable passed CheckExecutable")
	}
	// The wrapper corrupts a copy: a fresh build from the underlying
	// builder must still be clean.
	clean, err := builder.Build(21)
	if err != nil {
		t.Fatal(err)
	}
	if err := toolchain.CheckExecutable(clean, -1); err != nil {
		t.Errorf("underlying builder contaminated: %v", err)
	}
	// Past MaxFaults the wrapper itself returns clean builds.
	ok, err := fb.Build(21)
	if err != nil {
		t.Fatal(err)
	}
	if err := toolchain.CheckExecutable(ok, -1); err != nil {
		t.Errorf("build after MaxFaults still corrupt: %v", err)
	}
}

func TestCorruptMeasureScalesCycles(t *testing.T) {
	in := faultinject.New(5, faultinject.Config{Measure: faultinject.Rates{Corrupt: 1}})
	m := in.WrapMeasurer(&stubMeasurer{})
	meas, err := m.Measure(measureSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if meas.Cycles != 1000*1024 {
		t.Errorf("corrupt cycles = %d, want %d", meas.Cycles, 1000*1024)
	}
	// Instructions stay exact: the corruption models a disturbed cycle
	// count that only a statistical screen can flag.
	if meas.Instructions != 500 {
		t.Errorf("corrupt measurement changed instructions: %d", meas.Instructions)
	}
}

func TestSlowDelaysButSucceeds(t *testing.T) {
	in := faultinject.New(5, faultinject.Config{Measure: faultinject.Rates{
		Slow: 1, SlowDelay: time.Millisecond,
	}})
	m := in.WrapMeasurer(&stubMeasurer{})
	start := time.Now()
	if _, err := m.Measure(measureSpec(1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < time.Millisecond {
		t.Errorf("slow call returned in %v", d)
	}
	if got := in.Counts(faultinject.SiteMeasure)[faultinject.KindSlow]; got != 1 {
		t.Errorf("KindSlow count = %d", got)
	}
}

// TestSpikeDelaysDeterministically: the latency-spike fault delays the
// call by a seeded exponential draw, so the same (seed, site, key,
// attempt) always spikes by the same amount and the distribution's tail
// is calibrated by SpikeP99.
func TestSpikeDelaysDeterministically(t *testing.T) {
	p99 := 20 * time.Millisecond
	in := faultinject.New(5, faultinject.Config{Measure: faultinject.Rates{
		Spike: 1, SpikeP99: p99,
	}})
	in2 := faultinject.New(5, faultinject.Config{Measure: faultinject.Rates{
		Spike: 1, SpikeP99: p99,
	}})
	over, n := 0, 2000
	for key := uint64(1); key <= uint64(n); key++ {
		d := in.SpikeDelay(faultinject.SiteMeasure, key, 0)
		if d2 := in2.SpikeDelay(faultinject.SiteMeasure, key, 0); d2 != d {
			t.Fatalf("key %d: same seed drew %v then %v", key, d, d2)
		}
		if d < 0 || d > 4*p99 {
			t.Fatalf("key %d: spike %v outside [0, 4×p99]", key, d)
		}
		if d > p99 {
			over++
		}
	}
	// ~1% of draws should exceed the p99 calibration point.
	if over < n/400 || over > n/25 {
		t.Errorf("%d of %d spikes exceeded p99; want about %d", over, n, n/100)
	}
	if dflt := faultinject.New(9, faultinject.Config{}).SpikeDelay(faultinject.SiteBuild, 1, 0); dflt < 0 || dflt > 40*time.Millisecond {
		t.Errorf("zero-config spike delay %v outside the 10ms-p99 default envelope", dflt)
	}
}

func TestSpikeSleepsButSucceeds(t *testing.T) {
	in := faultinject.New(7, faultinject.Config{Measure: faultinject.Rates{
		Spike: 1, SpikeP99: 5 * time.Millisecond,
	}})
	m := in.WrapMeasurer(&stubMeasurer{})
	want := in.SpikeDelay(faultinject.SiteMeasure, 1, 0)
	start := time.Now()
	if _, err := m.Measure(measureSpec(1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < want {
		t.Errorf("spiked call returned in %v, spike was %v", d, want)
	}
	if got := in.Counts(faultinject.SiteMeasure)[faultinject.KindSpike]; got != 1 {
		t.Errorf("KindSpike count = %d", got)
	}
}

func TestPanicKind(t *testing.T) {
	in := faultinject.New(5, faultinject.Config{Build: faultinject.Rates{Panic: 1}})
	builder := toolchain.NewBuilder(testprog.Counting(5), toolchain.CompileConfig{}, toolchain.LinkConfig{})
	fb := in.WrapBuilder(builder)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("KindPanic did not panic")
			}
		}()
		fb.Build(1)
	}()
	if got := in.Counts(faultinject.SiteBuild)[faultinject.KindPanic]; got != 1 {
		t.Errorf("KindPanic count = %d", got)
	}
}

func TestStrings(t *testing.T) {
	for _, tc := range []struct {
		s    fmt.Stringer
		want string
	}{
		{faultinject.SiteBuild, "build"},
		{faultinject.SiteMeasure, "measure"},
		{faultinject.KindError, "error"},
		{faultinject.KindPanic, "panic"},
		{faultinject.KindCorrupt, "corrupt"},
		{faultinject.KindSlow, "slow"},
		{faultinject.KindSpike, "spike"},
		{faultinject.KindNone, "none"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}
