package faultinject

import (
	"reflect"
	"testing"
)

func liarResult(seed uint64) WireResult {
	return WireResult{
		LayoutSeed:   seed,
		HeapSeed:     seed * 3,
		Cycles:       1000 + seed,
		Instructions: 900 + seed,
		Events:       []uint64{seed, seed + 1},
		Runs:         3,
		Status:       1,
		Attempts:     1,
		Fingerprint:  "pia1:feedface",
	}
}

// TestLiarDeterministic pins the byzantine-soak contract: the lie a
// result gets depends only on (liar seed, layout seed), so two liars
// with the same seed fed the same results tell byte-identical lies in
// any order.
func TestLiarDeterministic(t *testing.T) {
	refinger := func(r WireResult) string { return "pia1:forged" }
	a, b := NewLiar(7), NewLiar(7)
	seeds := []uint64{11, 13, 15, 17, 19, 21, 23, 25}
	for _, s := range seeds {
		ra := a.Corrupt(liarResult(s), refinger)
		rb := b.Corrupt(liarResult(s), refinger)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("same seed, same input, different lies:\n%+v\n%+v", ra, rb)
		}
	}
	if !reflect.DeepEqual(a.Counts(), b.Counts()) {
		t.Fatalf("lie counts diverged: %v vs %v", a.Counts(), b.Counts())
	}
	// A different liar seed reshuffles the schedule.
	c := NewLiar(8)
	diff := false
	for _, s := range seeds {
		if !reflect.DeepEqual(c.Corrupt(liarResult(s), refinger), a.Corrupt(liarResult(s), refinger)) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("liar seed had no effect over 8 results")
	}
}

// TestLiarLies checks each mode's corruption is visible and that the
// honest input is never mutated in place.
func TestLiarLies(t *testing.T) {
	refinger := func(r WireResult) string { return "pia1:forged-valid" }
	for _, lie := range []Lie{LieBitFlip, LieStaleSeed, LieBadFingerprint, LieForge} {
		l := NewLiar(1, lie)
		in := liarResult(41)
		orig := in.clone()
		out := l.Corrupt(in, refinger)
		if !reflect.DeepEqual(in, orig) {
			t.Fatalf("%v mutated the input in place", lie)
		}
		switch lie {
		case LieBitFlip:
			if out.Cycles == in.Cycles {
				t.Errorf("bit-flip left cycles untouched")
			}
		case LieStaleSeed:
			if out.LayoutSeed == in.LayoutSeed || out.LayoutSeed%2 == 0 {
				t.Errorf("stale-seed lie produced seed %d from %d", out.LayoutSeed, in.LayoutSeed)
			}
		case LieBadFingerprint:
			if out.Fingerprint == in.Fingerprint || out.Cycles != in.Cycles {
				t.Errorf("bad-fingerprint lie: fp %q cycles %d", out.Fingerprint, out.Cycles)
			}
		case LieForge:
			if out.Fingerprint != "pia1:forged-valid" || out.Cycles == in.Cycles {
				t.Errorf("forge lie: fp %q cycles %d", out.Fingerprint, out.Cycles)
			}
		}
	}

	// Replay returns the previous honest result, not the previous lie.
	l := NewLiar(1, LieReplay)
	first := l.Corrupt(liarResult(41), refinger) // nothing to replay: falls back to bit-flip
	if first.Cycles == liarResult(41).Cycles {
		t.Fatal("first replay call should fall back to a bit flip")
	}
	second := l.Corrupt(liarResult(43), refinger)
	if !reflect.DeepEqual(second, liarResult(41)) {
		t.Fatalf("replay returned %+v, want the honest first result", second)
	}
	if n := l.Counts()[LieReplay]; n != 1 {
		t.Fatalf("replay count = %d, want 1", n)
	}
}
