package faultinject

import (
	"fmt"
	"sync"

	"interferometry/internal/xrand"
)

// Lie enumerates the corrupt-worker modes: the ways a byzantine worker
// misreports a correctly leased task. Unlike the fault Kinds — which
// break execution — a lie produces a structurally complete result whose
// bytes are wrong, exercising the coordinator's verification instead of
// its retry machinery.
type Lie uint8

const (
	// LieNone reports the honest result.
	LieNone Lie = iota
	// LieBitFlip flips one seeded bit of the cycle counter after the
	// fingerprint was stamped — attestation catches it structurally.
	LieBitFlip
	// LieStaleSeed shifts the layout seed, impersonating a result for a
	// different layout (a worker running a stale binary or replaying a
	// neighbouring task's bytes).
	LieStaleSeed
	// LieReplay resends the previous honest result the liar saw,
	// whatever task it was for. The first call has nothing to replay
	// and falls back to a bit flip.
	LieReplay
	// LieBadFingerprint keeps the honest payload but replaces the
	// fingerprint with seeded garbage.
	LieBadFingerprint
	// LieForge flips a counter bit and then recomputes a valid
	// fingerprint over the lie. Attestation cannot catch it — it is a
	// checksum, not a MAC — so only the audit sampler's re-execution
	// does.
	LieForge

	numLies
)

// String names the lie for reports.
func (l Lie) String() string {
	switch l {
	case LieNone:
		return "none"
	case LieBitFlip:
		return "bit-flip"
	case LieStaleSeed:
		return "stale-seed"
	case LieReplay:
		return "replay"
	case LieBadFingerprint:
		return "bad-fingerprint"
	case LieForge:
		return "forge"
	default:
		return fmt.Sprintf("lie(%d)", uint8(l))
	}
}

// WireResult is the neutral image of one observation as it crosses the
// worker→coordinator wire. faultinject cannot import core (core imports
// faultinject), so the worker converts core's wire form to and from
// this struct around Corrupt.
type WireResult struct {
	LayoutSeed   uint64
	HeapSeed     uint64
	Cycles       uint64
	Instructions uint64
	Events       []uint64
	Runs         int
	Status       uint8
	Attempts     int
	Fingerprint  string
}

func (r WireResult) clone() WireResult {
	r.Events = append([]uint64(nil), r.Events...)
	return r
}

// Liar deterministically corrupts a worker's outgoing results. Which
// lie a result gets is a pure function of (liar seed, the result's
// layout seed) — independent of scheduling, retries and worker count —
// so a byzantine soak round replays the exact same lies every run.
type Liar struct {
	seed uint64
	lies []Lie

	mu     sync.Mutex
	last   *WireResult // honest copy of the previous result, for LieReplay
	counts map[Lie]int
}

// NewLiar seeds a liar. With no explicit lies it cycles through every
// mode (bit-flip, stale-seed, replay, bad-fingerprint, forge).
func NewLiar(seed uint64, lies ...Lie) *Liar {
	if len(lies) == 0 {
		lies = []Lie{LieBitFlip, LieStaleSeed, LieReplay, LieBadFingerprint, LieForge}
	}
	return &Liar{seed: seed, lies: lies, counts: make(map[Lie]int)}
}

// Corrupt returns the lied-about version of r. refinger recomputes a
// valid fingerprint over a forged payload (LieForge); the worker passes
// a closure over its runner's attestation key. The honest r is kept as
// replay bait for the next call and is never aliased into the result.
func (l *Liar) Corrupt(r WireResult, refinger func(WireResult) string) WireResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	honest := r.clone()
	lie := l.lies[xrand.Mix(l.seed, 0x11e5, r.LayoutSeed)%uint64(len(l.lies))]
	if lie == LieReplay && l.last == nil {
		lie = LieBitFlip
	}
	out := honest.clone()
	switch lie {
	case LieNone:
	case LieBitFlip:
		out.Cycles ^= 1 << (xrand.Mix(l.seed, 0xb17, r.LayoutSeed) % 40)
	case LieStaleSeed:
		out.LayoutSeed += 2 // stays odd: plausible, but another layout's
	case LieReplay:
		out = l.last.clone()
	case LieBadFingerprint:
		out.Fingerprint = fmt.Sprintf("pia1:%032x", xrand.Mix(l.seed, 0xf1f0, r.LayoutSeed))
	case LieForge:
		out.Cycles ^= 1 << (xrand.Mix(l.seed, 0xf0e6e, r.LayoutSeed) % 40)
		if refinger != nil {
			out.Fingerprint = refinger(out)
		}
	}
	l.last = &honest
	l.counts[lie]++
	return out
}

// Counts snapshots how many times each lie was told.
func (l *Liar) Counts() map[Lie]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[Lie]int, len(l.counts))
	for k, v := range l.counts {
		out[k] = v
	}
	return out
}
