// Package faultinject is a seeded, deterministic fault injector for the
// campaign supervisor's test harness. It wraps the two seams every
// measurement passes through — Build (layout linking) and Measure
// (counter harness) — and injects errors, panics, corrupted results and
// slow calls at configurable rates.
//
// Determinism is the whole point: the decision for a given call is a pure
// function of (injector seed, site, key, attempt), where the key is the
// layout seed and the attempt counts prior calls for that (site, key).
// The same campaign run with the same injector therefore fails in exactly
// the same places regardless of worker count or goroutine scheduling, and
// a bounded retry deterministically clears an injected fault once the
// attempt number exceeds MaxFaults. That is what lets the test suite
// assert bit-identical recovery: a faulty campaign with retries must
// reproduce the clean campaign's measurements exactly.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"interferometry/internal/machine"
	"interferometry/internal/obs"
	"interferometry/internal/pmc"
	"interferometry/internal/toolchain"
	"interferometry/internal/xrand"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests
// can distinguish injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected failure")

// Site identifies an injection seam.
type Site uint8

// Injection sites.
const (
	// SiteBuild is the toolchain Build seam (one call per layout link).
	SiteBuild Site = iota
	// SiteMeasure is the pmc Measure seam (one call per observation).
	SiteMeasure
	numSites
)

func (s Site) String() string {
	switch s {
	case SiteBuild:
		return "build"
	case SiteMeasure:
		return "measure"
	default:
		return fmt.Sprintf("Site(%d)", uint8(s))
	}
}

// Kind is the fault injected into one call.
type Kind uint8

// Fault kinds. At most one fault fires per call.
const (
	KindNone Kind = iota
	// KindError makes the call return an error wrapping ErrInjected.
	KindError
	// KindPanic makes the call panic, exercising worker panic recovery.
	KindPanic
	// KindCorrupt lets the call succeed but corrupts its result: a build
	// gets an out-of-segment block address (caught by
	// toolchain.CheckExecutable), a measurement gets its cycle count
	// scaled ×1024 (caught by the campaign's MAD outlier screen).
	KindCorrupt
	// KindSlow delays the call by Rates.SlowDelay, then lets it through.
	KindSlow
	// KindSpike delays the call by a seeded exponential draw calibrated
	// so its 99th percentile is Rates.SpikeP99, then lets it through —
	// the tail-latency fault that circuit breakers with slow-call
	// thresholds exist to catch.
	KindSpike
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindCorrupt:
		return "corrupt"
	case KindSlow:
		return "slow"
	case KindSpike:
		return "spike"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Rates configures per-call fault probabilities for one site. The
// probabilities are evaluated cumulatively (Error first, then Panic,
// Corrupt, Slow, Spike), so their sum must be <= 1.
type Rates struct {
	Error   float64
	Panic   float64
	Corrupt float64
	Slow    float64
	Spike   float64
	// SlowDelay is the latency of a KindSlow fault. Zero means 1ms.
	SlowDelay time.Duration
	// SpikeP99 calibrates KindSpike: delays are drawn from a seeded
	// exponential distribution whose 99th percentile is SpikeP99, so
	// most spikes are mild and a deterministic few are the tail events
	// that trip a breaker's slow-call threshold. Zero means 10ms.
	SpikeP99 time.Duration
	// MaxFaults bounds how many calls for the same (site, key) may fault
	// before the injector lets every later call through, so a caller with
	// MaxFaults+1 attempts always eventually succeeds. Zero means 1.
	MaxFaults int
}

func (r Rates) maxFaults() int {
	if r.MaxFaults <= 0 {
		return 1
	}
	return r.MaxFaults
}

func (r Rates) spikeP99() time.Duration {
	if r.SpikeP99 <= 0 {
		return 10 * time.Millisecond
	}
	return r.SpikeP99
}

// Config sets the per-site rates of an injector.
type Config struct {
	Build   Rates
	Measure Rates
}

// Injector decides, deterministically, which calls fault. It is safe for
// concurrent use.
type Injector struct {
	seed uint64
	cfg  Config

	mu       sync.Mutex
	attempts map[attemptKey]uint64
	counts   [numSites][numKinds]int
	metrics  [numSites][numKinds]*obs.Counter
	total    *obs.Counter
}

type attemptKey struct {
	site Site
	key  uint64
}

// New returns an injector keyed by seed. Two injectors with the same seed
// and config make identical decisions.
func New(seed uint64, cfg Config) *Injector {
	return &Injector{seed: seed, cfg: cfg, attempts: make(map[attemptKey]uint64)}
}

// Observe mirrors every future injected fault into per-site, per-kind
// counters of o's registry (interferometry_faults_injected_total plus
// interferometry_fault_<site>_<kind>_total), so a fault-injection
// campaign's metrics dump shows exactly what was thrown at it. Call
// before the injector is shared across workers.
func (in *Injector) Observe(o *obs.Observer) {
	if o == nil {
		return
	}
	total := o.Counter("interferometry_faults_injected_total", "faults injected across all sites and kinds")
	in.mu.Lock()
	defer in.mu.Unlock()
	for s := Site(0); s < numSites; s++ {
		for k := KindNone + 1; k < numKinds; k++ {
			name := fmt.Sprintf("interferometry_fault_%s_%s_total", s, Kind(k))
			help := fmt.Sprintf("%s faults injected at the %s seam", Kind(k), s)
			in.metrics[s][k] = o.Counter(name, help)
		}
	}
	in.total = total
}

// Counts returns how many faults of each kind have fired at a site.
func (in *Injector) Counts(site Site) map[Kind]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int)
	for k := KindNone + 1; k < numKinds; k++ {
		if n := in.counts[site][k]; n > 0 {
			out[k] = n
		}
	}
	return out
}

// Injected returns the total number of faults fired across all sites.
func (in *Injector) Injected() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	total := 0
	for s := Site(0); s < numSites; s++ {
		for k := KindNone + 1; k < numKinds; k++ {
			total += in.counts[s][k]
		}
	}
	return total
}

func (in *Injector) rates(site Site) Rates {
	if site == SiteBuild {
		return in.cfg.Build
	}
	return in.cfg.Measure
}

// decide draws the fault for the next call at (site, key), returning
// the kind and the call's attempt number (kind-specific draws, like the
// spike duration, key off it). The attempt number is the count of prior
// calls for that pair, so the decision sequence per key is stable under
// any goroutine interleaving as long as calls for one key are not
// concurrent with each other (the supervisor measures each layout on a
// single worker at a time).
func (in *Injector) decide(site Site, key uint64) (Kind, uint64) {
	r := in.rates(site)
	in.mu.Lock()
	ak := attemptKey{site, key}
	attempt := in.attempts[ak]
	in.attempts[ak] = attempt + 1
	in.mu.Unlock()
	if attempt >= uint64(r.maxFaults()) {
		return KindNone, attempt
	}
	p := xrand.New(xrand.Mix(in.seed, 0xfa017+uint64(site), key, attempt)).Float64()
	kind := KindNone
	switch {
	case p < r.Error:
		kind = KindError
	case p < r.Error+r.Panic:
		kind = KindPanic
	case p < r.Error+r.Panic+r.Corrupt:
		kind = KindCorrupt
	case p < r.Error+r.Panic+r.Corrupt+r.Slow:
		kind = KindSlow
	case p < r.Error+r.Panic+r.Corrupt+r.Slow+r.Spike:
		kind = KindSpike
	}
	if kind != KindNone {
		in.mu.Lock()
		in.counts[site][kind]++
		c, total := in.metrics[site][kind], in.total
		in.mu.Unlock()
		c.Inc()
		total.Inc()
	}
	return kind, attempt
}

func (in *Injector) sleep(site Site) {
	d := in.rates(site).SlowDelay
	if d <= 0 {
		d = time.Millisecond
	}
	time.Sleep(d)
}

// SpikeDelay returns the deterministic latency of the KindSpike fault at
// (site, key, attempt): an inverse-CDF exponential draw scaled so that
// P(delay <= SpikeP99) = 0.99. The draw is a pure function of the
// injector seed and the call coordinates, so a replayed campaign spikes
// by exactly the same amounts in exactly the same places.
func (in *Injector) SpikeDelay(site Site, key, attempt uint64) time.Duration {
	p99 := in.rates(site).spikeP99()
	u := xrand.New(xrand.Mix(in.seed, 0x5b1ce+uint64(site), key, attempt)).Float64()
	// Exponential quantile: -ln(1-u)/λ with λ chosen so q(0.99) = p99.
	d := time.Duration(-math.Log1p(-u) / math.Ln10 / 2 * float64(p99))
	// Clamp the unbounded tail at 4×p99 so one unlucky draw cannot stall
	// a worker past any realistic lease; the clamp is itself
	// deterministic, so replays still agree.
	if max := 4 * p99; d > max {
		d = max
	}
	return d
}

func (in *Injector) spike(site Site, key, attempt uint64) {
	time.Sleep(in.SpikeDelay(site, key, attempt))
}

// Builder is the narrow build seam: toolchain.Builder satisfies it.
type Builder interface {
	Build(seed uint64) (*toolchain.Executable, error)
}

// Measurer is the narrow measurement seam: pmc.Harness satisfies it.
type Measurer interface {
	Measure(spec machine.RunSpec) (pmc.Measurement, error)
}

// WrapBuilder returns a Builder that injects faults keyed by the layout
// seed before delegating to b.
func (in *Injector) WrapBuilder(b Builder) Builder {
	return &faultyBuilder{in: in, b: b}
}

// WrapMeasurer returns a Measurer that injects faults keyed by the
// executable's layout seed before delegating to m.
func (in *Injector) WrapMeasurer(m Measurer) Measurer {
	return &faultyMeasurer{in: in, m: m}
}

type faultyBuilder struct {
	in *Injector
	b  Builder
}

func (f *faultyBuilder) Build(seed uint64) (*toolchain.Executable, error) {
	kind, attempt := f.in.decide(SiteBuild, seed)
	switch kind {
	case KindError:
		return nil, fmt.Errorf("%w: build for layout seed %#x", ErrInjected, seed)
	case KindPanic:
		panic(fmt.Sprintf("faultinject: build panic for layout seed %#x", seed))
	case KindSlow:
		f.in.sleep(SiteBuild)
	case KindSpike:
		f.in.spike(SiteBuild, seed, attempt)
	case KindCorrupt:
		exe, err := f.b.Build(seed)
		if err != nil {
			return nil, err
		}
		return corruptExecutable(exe), nil
	}
	return f.b.Build(seed)
}

// corruptExecutable returns a shallow copy of exe with one block address
// pushed past the text segment — the kind of silent build corruption
// toolchain.CheckExecutable exists to catch. The input is not modified
// (the builder's other consumers must keep seeing a clean executable).
func corruptExecutable(exe *toolchain.Executable) *toolchain.Executable {
	cp := *exe
	cp.BlockAddr = append([]uint64(nil), exe.BlockAddr...)
	if len(cp.BlockAddr) > 0 {
		cp.BlockAddr[0] = cp.CodeLimit + 0x1000
	}
	return &cp
}

type faultyMeasurer struct {
	in *Injector
	m  Measurer
}

func (f *faultyMeasurer) Measure(spec machine.RunSpec) (pmc.Measurement, error) {
	key := uint64(0)
	if spec.Exe != nil {
		key = spec.Exe.Seed
	}
	kind, attempt := f.in.decide(SiteMeasure, key)
	switch kind {
	case KindError:
		return pmc.Measurement{}, fmt.Errorf("%w: measurement for layout seed %#x", ErrInjected, key)
	case KindPanic:
		panic(fmt.Sprintf("faultinject: measurement panic for layout seed %#x", key))
	case KindSlow:
		f.in.sleep(SiteMeasure)
	case KindSpike:
		f.in.spike(SiteMeasure, key, attempt)
	case KindCorrupt:
		m, err := f.m.Measure(spec)
		if err != nil {
			return pmc.Measurement{}, err
		}
		// A wildly implausible cycle count models a disturbed measurement
		// (SMI storm, co-scheduled noise): the counters are internally
		// consistent, so only a robust statistical screen can flag it.
		m.Cycles *= 1024
		return m, nil
	}
	return f.m.Measure(spec)
}
