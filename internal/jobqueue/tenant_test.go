package jobqueue_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
	"interferometry/internal/obs"
)

// popAll drains every immediately-eligible task and returns the
// payloads in dispatch order, completing each lease.
func popAll(t *testing.T, q *jobqueue.Queue[string], n int) []string {
	t.Helper()
	var out []string
	ctx := context.Background()
	for i := 0; i < n; i++ {
		l, err := q.Pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, l.Payload())
		if err := l.Complete(); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestFairSchedulingInterleavesTenants: a tenant that floods the queue
// cannot monopolize dispatch — with quantum 1 the scheduler round-robins
// tenants within a priority class, so the second tenant's first task
// dispatches second, not after the flood.
func TestFairSchedulingInterleavesTenants(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 64})
	if err := q.PushBatchTenant("flood", 0, []string{"f1", "f2", "f3", "f4"}); err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatchTenant("small", 0, []string{"s1", "s2"}); err != nil {
		t.Fatal(err)
	}
	got := popAll(t, q, 6)
	want := []string{"f1", "s1", "f2", "s2", "f3", "f4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestFairSchedulingQuantum: quantum N lets a tenant dispatch N tasks
// per turn before the pointer moves on — deficit round-robin, not strict
// alternation.
func TestFairSchedulingQuantum(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 64, Quantum: 2})
	if err := q.PushBatchTenant("a", 0, []string{"a1", "a2", "a3", "a4"}); err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatchTenant("b", 0, []string{"b1", "b2", "b3"}); err != nil {
		t.Fatal(err)
	}
	got := popAll(t, q, 7)
	want := []string{"a1", "a2", "b1", "b2", "a3", "a4", "b3"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestPriorityClassesAreStrictAcrossTenants: a lower class always
// dispatches before a higher one, whatever tenant holds it; fairness
// applies only among tenants with work in the minimal class.
func TestPriorityClassesAreStrictAcrossTenants(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 64})
	if err := q.PushBatchTenant("bulk", 1, []string{"bulk1", "bulk2"}); err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatchTenant("urgent", 0, []string{"u1"}); err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatchTenant("urgent2", 0, []string{"v1"}); err != nil {
		t.Fatal(err)
	}
	got := popAll(t, q, 4)
	if got[0] != "u1" && got[0] != "v1" {
		t.Fatalf("first dispatch %q, want a class-0 task", got[0])
	}
	if got[1] != "u1" && got[1] != "v1" || got[1] == got[0] {
		t.Fatalf("second dispatch %q, want the other class-0 task", got[1])
	}
	if got[2] != "bulk1" || got[3] != "bulk2" {
		t.Fatalf("class-1 tasks dispatched %v, want [bulk1 bulk2] last", got[2:])
	}
}

// TestTenantQuotaShedsAtomically: a batch that would push one tenant
// over its quota is rejected whole with ErrTenantQuota while the queue
// still has global room, and other tenants are unaffected.
func TestTenantQuotaShedsAtomically(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{
		Capacity:     100,
		MaxPerTenant: 3,
		TenantQuotas: map[string]int{"vip": 0}, // explicit 0 = unlimited
	})
	if err := q.PushBatchTenant("a", 0, []string{"a1", "a2"}); err != nil {
		t.Fatal(err)
	}
	err := q.PushBatchTenant("a", 0, []string{"a3", "a4"})
	if !errors.Is(err, jobqueue.ErrTenantQuota) {
		t.Fatalf("over-quota batch returned %v, want ErrTenantQuota", err)
	}
	if d := q.Depth(); d != 2 {
		t.Fatalf("depth %d after rejected batch, want 2 (nothing admitted)", d)
	}
	// Another tenant still has its full quota.
	if err := q.PushBatchTenant("b", 0, []string{"b1", "b2", "b3"}); err != nil {
		t.Fatal(err)
	}
	// The quota-exempt tenant can exceed the uniform bound.
	if err := q.PushBatchTenant("vip", 0, []string{"v1", "v2", "v3", "v4", "v5"}); err != nil {
		t.Fatal(err)
	}
	// Quota counts leased tasks too: leasing does not free tenant room.
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatchTenant("a", 0, []string{"a3", "a4"}); !errors.Is(err, jobqueue.ErrTenantQuota) {
		t.Fatalf("quota ignored a leased task: %v", err)
	}
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}

	counts := q.Tenants()
	if counts["a"].Quota != 3 || counts["vip"].Quota != 0 {
		t.Fatalf("tenant quotas %v, want a=3 vip=unlimited", counts)
	}
}

// TestTenantMetricsTrackDepthAndLeases: the lazily-resolved per-tenant
// gauges follow each tenant's queued and leased counts and return to
// zero after a drain.
func TestTenantMetricsTrackDepthAndLeases(t *testing.T) {
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	tm := func(tenant string) *jobqueue.TenantMetrics {
		return &jobqueue.TenantMetrics{
			Depth:  o.Gauge(`q_tenant_depth{tenant="`+tenant+`"}`, ""),
			Leased: o.Gauge(`q_tenant_leased{tenant="`+tenant+`"}`, ""),
		}
	}
	q := jobqueue.New[string](jobqueue.Config{Capacity: 16, TenantMetrics: tm})
	if err := q.PushBatchTenant("a", 0, []string{"a1", "a2"}); err != nil {
		t.Fatal(err)
	}
	if v := o.Gauge(`q_tenant_depth{tenant="a"}`, "").Value(); v != 2 {
		t.Fatalf("tenant depth gauge %v, want 2", v)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l.Tenant() != "a" {
		t.Fatalf("lease tenant %q, want a", l.Tenant())
	}
	if v := o.Gauge(`q_tenant_leased{tenant="a"}`, "").Value(); v != 1 {
		t.Fatalf("tenant leased gauge %v, want 1", v)
	}
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}
	q.Close()
	if v := o.Gauge(`q_tenant_depth{tenant="a"}`, "").Value(); v != 0 {
		t.Fatalf("tenant depth gauge %v after close, want 0", v)
	}
	if v := o.Gauge(`q_tenant_leased{tenant="a"}`, "").Value(); v != 0 {
		t.Fatalf("tenant leased gauge %v after close, want 0", v)
	}
}

// TestLeaseExpiryRacingDrain pins the drain/expiry race on a manual
// clock: a lease that expires is requeued exactly once without charging
// an attempt, the loser's late Requeue is refused, and once the queue
// closes a straggler Requeue drops the task instead of resurrecting it
// into a queue no Pop will ever drain.
func TestLeaseExpiryRacingDrain(t *testing.T) {
	clk := newFakeClock()
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	q := jobqueue.New[string](jobqueue.Config{
		Capacity: 4,
		Lease:    time.Second,
		Now:      clk.Now,
		Metrics:  jobqueue.ObserveMetrics(o, "q"),
	})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// First owner leases the task, stalls past its lease, and the next
	// Pop reaps and re-leases it: requeued exactly once, and the expiry
	// requeue charges no attempt.
	first, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	second, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if second.Payload() != "task" {
		t.Fatalf("reaped pop got %q", second.Payload())
	}
	if second.Attempt() != 0 {
		t.Fatalf("expiry charged an attempt: Attempt() = %d, want 0", second.Attempt())
	}
	if v := o.Counter("q_lease_expiries_total", "").Value(); v != 1 {
		t.Fatalf("expiries = %d, want exactly 1", v)
	}
	// The stalled first owner wakes up and tries to requeue: its lease
	// is lost, and the task must not be double-inserted.
	if err := first.Requeue(time.Time{}); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("stale requeue returned %v, want ErrLeaseLost", err)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth %d after stale requeue, want 0 (no double insert)", d)
	}

	// Drain begins while the second lease is live. A failure-path
	// Requeue now must drop the task, not resurrect it.
	q.Close()
	if err := second.Requeue(clk.Now().Add(time.Minute)); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("requeue on closed queue returned %v, want ErrClosed", err)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth %d after drain requeue, want 0", d)
	}
	if l := q.Leased(); l != 0 {
		t.Fatalf("leased %d after drain requeue, want 0", l)
	}
	if v := o.Gauge("q_queue_depth", "").Value(); v != 0 {
		t.Fatalf("depth gauge %v after drain, want 0", v)
	}
	if v := o.Gauge("q_leases_active", "").Value(); v != 0 {
		t.Fatalf("lease gauge %v after drain, want 0", v)
	}
	if v := o.Counter("q_tasks_requeued_total", "").Value(); v != 0 {
		t.Fatalf("requeued counter %v; expiry and drain must not count as requeues", v)
	}
}
