package jobqueue_test

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
	"interferometry/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestQueueMetricsGolden drives a scripted queue + breaker scenario on a
// fake clock and pins the whole Prometheus export. Because every
// duration comes from the fake clock, even the wait histogram is
// deterministic, so the service's metric names, help strings and
// semantics (depth and leases back to zero after the drain, expiry and
// shed counts, breaker transition counters) are all golden-checked.
func TestQueueMetricsGolden(t *testing.T) {
	clk := newFakeClock()
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	q := jobqueue.New[string](jobqueue.Config{
		Capacity: 3,
		Lease:    time.Second,
		Now:      clk.Now,
		Metrics:  jobqueue.ObserveMetrics(o, "campaignd"),
	})
	shed := o.Counter("campaignd_shed_total", "submissions rejected by admission control (429)")

	// Admit three tasks; a fourth is shed.
	if err := q.PushBatch(0, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(0, "d"); err == nil {
		t.Fatal("over-capacity push admitted")
	} else {
		shed.Inc()
	}

	ctx := context.Background()
	// a: waits 100ms, completes.
	clk.Advance(100 * time.Millisecond)
	la, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := la.Complete(); err != nil {
		t.Fatal(err)
	}
	// b: fails once (requeued with a 300ms delay), then completes.
	lb, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := lb.Requeue(clk.Now().Add(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// c: leased, never heartbeats, expires after 1s and is reaped.
	lc, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_ = lc
	clk.Advance(time.Second)
	// b (unparked) pops first and is released once — the no-fault,
	// no-attempt-charged requeue the trust layer uses when a worker, not
	// its task, is to blame — then c (reaped) and b complete.
	lr, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.Release(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // c (reaped) and b (re-released)
		l, err := q.Pop(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Complete(); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()

	// Tenant-labeled gauges: a second queue exercises the per-tenant
	// metrics hook so the labeled-family export (one HELP/TYPE header,
	// one sample per tenant) is golden-pinned alongside the globals.
	tq := jobqueue.New[string](jobqueue.Config{
		Capacity:     4,
		MaxPerTenant: 3,
		Now:          clk.Now,
		TenantMetrics: func(tenant string) *jobqueue.TenantMetrics {
			return &jobqueue.TenantMetrics{
				Depth:  o.Gauge(`campaignd_tenant_queue_depth{tenant="`+tenant+`"}`, "queued tasks per tenant"),
				Leased: o.Gauge(`campaignd_tenant_leases_active{tenant="`+tenant+`"}`, "leased tasks per tenant"),
			}
		},
	})
	if err := tq.PushBatchTenant("acme", 0, []string{"t1", "t2"}); err != nil {
		t.Fatal(err)
	}
	if err := tq.PushBatchTenant("umbrella", 0, []string{"t3"}); err != nil {
		t.Fatal(err)
	}
	lt, err := tq.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := lt.Complete(); err != nil {
		t.Fatal(err)
	}

	// Breaker: trip on a burst, recover through a half-open probe.
	b := jobqueue.NewBreaker(jobqueue.BreakerConfig{
		TripAfter: 2, OpenFor: time.Second, Now: clk.Now,
		OnTransition: jobqueue.ObserveBreaker(o, "campaignd", "measure"),
	})
	call(t, b, 0, errBoom)
	call(t, b, 0, errBoom)
	clk.Advance(time.Second)
	call(t, b, 0, nil)

	var buf bytes.Buffer
	if err := o.WriteMetricsPrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden.prom")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("metrics export drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
