package jobqueue_test

import (
	"errors"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
)

func TestLeaseReleaseNoAttemptCharge(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	l := popLease(t, q)
	if l.Attempt() != 0 {
		t.Fatalf("fresh lease attempt = %d, want 0", l.Attempt())
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	if d := q.Depth(); d != 1 {
		t.Fatalf("depth after release = %d, want 1", d)
	}
	// The released task pops again with the attempt count untouched — a
	// release is indistinguishable from a reaped lease.
	l2 := popLease(t, q)
	if l2.Attempt() != 0 {
		t.Fatalf("released task came back with attempt %d, want 0", l2.Attempt())
	}
	// The old lease is settled: every further operation reports lost.
	if err := l.Release(); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("second release = %v, want ErrLeaseLost", err)
	}
	if err := l.Complete(); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("complete after release = %v, want ErrLeaseLost", err)
	}
	if err := l2.Complete(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseReleaseOnClosedQueue(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	l := popLease(t, q)
	q.Close()
	// Close dropped every queued task; resurrecting this one would leak
	// it into a queue no Pop will drain. The drop is reported.
	if err := l.Release(); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("release on closed queue = %v, want ErrClosed", err)
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth after release on closed queue = %d, want 0", d)
	}
}

func TestWorkerHealthScore(t *testing.T) {
	reg := jobqueue.NewRegistry[string]()
	reg.SetPolicy(jobqueue.RegistryPolicy{Window: 4, QuarantineAfter: 3})

	for i := 0; i < 3; i++ {
		reg.Accept("w1")
	}
	if crossed := reg.Reject("w1"); crossed {
		t.Fatal("one rejection in a window of 4 crossed a threshold of 3")
	}
	h := reg.Workers()["w1"]
	if h.Accepted != 3 || h.Rejected != 1 || h.Quarantined {
		t.Fatalf("health = %+v, want 3 accepted / 1 rejected, not quarantined", h)
	}
	if h.Score != 0.75 {
		t.Fatalf("score = %v, want 0.75 (3 of 4 window verdicts accepted)", h.Score)
	}

	// The window slides: four more accepts push the rejection out.
	for i := 0; i < 4; i++ {
		reg.Accept("w1")
	}
	if h := reg.Workers()["w1"]; h.Score != 1.0 {
		t.Fatalf("score after window slid = %v, want 1.0", h.Score)
	}

	// Anonymous workers are never tracked.
	reg.Accept("")
	reg.Reject("")
	if _, ok := reg.Workers()[""]; ok {
		t.Fatal("anonymous worker grew a health record")
	}
}

func TestQuarantineAfterRejections(t *testing.T) {
	reg := jobqueue.NewRegistry[string]()
	reg.SetPolicy(jobqueue.RegistryPolicy{Window: 8, QuarantineAfter: 3})

	if reg.Reject("w1") || reg.Reject("w1") {
		t.Fatal("crossed the threshold before 3 rejections")
	}
	if !reg.Reject("w1") {
		t.Fatal("third rejection did not cross the threshold")
	}
	// Crossing is reported, but condemnation is the caller's move.
	if reg.Quarantined("w1") {
		t.Fatal("Reject alone quarantined the worker")
	}
	if _, first := reg.Condemn("w1"); !first {
		t.Fatal("first condemnation not reported as first")
	}
	if !reg.Quarantined("w1") {
		t.Fatal("condemned worker not quarantined")
	}
	if reg.QuarantinedCount() != 1 {
		t.Fatalf("QuarantinedCount = %d, want 1", reg.QuarantinedCount())
	}
	// Further rejections on a condemned worker never re-cross.
	if reg.Reject("w1") {
		t.Fatal("rejection on a quarantined worker re-crossed the threshold")
	}
	if _, first := reg.Condemn("w1"); first {
		t.Fatal("second condemnation reported as first")
	}

	// An audit failure counts as a rejection and is tracked separately.
	reg.FailAudit("w2")
	h := reg.Workers()["w2"]
	if h.AuditFailed != 1 || h.Rejected != 1 {
		t.Fatalf("w2 health after audit failure = %+v", h)
	}
}

func TestCondemnReleasesLeasesOnce(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 8})
	for _, s := range []string{"a", "b", "c"} {
		if err := q.Push(0, s); err != nil {
			t.Fatal(err)
		}
	}
	reg := jobqueue.NewRegistry[string]()
	reg.Register(popLease(t, q), "bad")
	reg.Register(popLease(t, q), "bad")
	reg.Register(popLease(t, q), "good")

	leases, first := reg.Condemn("bad")
	if !first || len(leases) != 2 {
		t.Fatalf("Condemn = %d leases, first=%v; want 2 leases, first", len(leases), first)
	}
	for _, l := range leases {
		if err := l.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if d := q.Depth(); d != 2 {
		t.Fatalf("depth after condemnation = %d, want 2", d)
	}
	// Only the good worker's entry survives.
	if reg.Len() != 1 {
		t.Fatalf("registry Len = %d, want 1 (good worker's lease)", reg.Len())
	}
	// A second condemnation finds nothing to release.
	if leases, first := reg.Condemn("bad"); first || len(leases) != 0 {
		t.Fatalf("second Condemn = %d leases, first=%v; want none", len(leases), first)
	}
	// The condemned worker's tasks pop again with no attempt charged.
	for i := 0; i < 2; i++ {
		if l := popLease(t, q); l.Attempt() != 0 {
			t.Fatalf("released task popped with attempt %d, want 0", l.Attempt())
		}
	}
}

// TestLeaseExpiryRacingQuarantine pins the expiry-vs-quarantine race
// (mirroring the expiry-vs-drain test): a lease that expires while its
// worker is being condemned must be requeued exactly once — whichever
// of the reap and the Release settles first wins, the loser no-ops —
// and the task is never charged an attempt by either path.
func TestLeaseExpiryRacingQuarantine(t *testing.T) {
	clock := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clock.Now})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	reg := jobqueue.NewRegistry[string]()
	reg.Register(popLease(t, q), "bad")

	// The lease expires, and a Pop reaps it (requeue #1, no attempt
	// charged) before the condemnation runs.
	clock.Advance(2 * time.Second)
	l2 := popLease(t, q)
	if l2.Attempt() != 0 {
		t.Fatalf("reaped task popped with attempt %d, want 0", l2.Attempt())
	}

	// The condemnation arrives late: it still collects the stale entry,
	// but Release reports the lease lost instead of requeuing again.
	leases, first := reg.Condemn("bad")
	if !first || len(leases) != 1 {
		t.Fatalf("Condemn = %d leases, first=%v; want the stale lease", len(leases), first)
	}
	if err := leases[0].Release(); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("release of an expired lease = %v, want ErrLeaseLost", err)
	}
	// Exactly one copy of the task exists: l2 owns it, nothing is queued.
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth = %d, want 0 — the task was requeued twice", d)
	}
	if err := l2.Complete(); err != nil {
		t.Fatal(err)
	}
	if d, lsd := q.Depth(), q.Leased(); d != 0 || lsd != 0 {
		t.Fatalf("queue not empty after completion: depth=%d leased=%d", d, lsd)
	}

	// The opposite interleaving: condemnation settles first, then the
	// reap must find nothing.
	if err := q.Push(0, "task2"); err != nil {
		t.Fatal(err)
	}
	reg2 := jobqueue.NewRegistry[string]()
	reg2.Register(popLease(t, q), "bad")
	leases, _ = reg2.Condemn("bad")
	if err := leases[0].Release(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second) // past the (settled) lease's deadline
	l3 := popLease(t, q)           // a reap here must not duplicate the task
	if l3.Attempt() != 0 {
		t.Fatalf("task2 popped with attempt %d, want 0", l3.Attempt())
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("depth = %d, want 0 — release then reap duplicated the task", d)
	}
}
