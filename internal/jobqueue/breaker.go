package jobqueue

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"interferometry/internal/obs"
)

// ErrOpen rejects a call while the breaker refuses traffic.
var ErrOpen = errors.New("jobqueue: circuit open")

// State is a breaker state.
type State uint8

// Breaker states, the classic three.
const (
	// Closed passes every call, counting failures.
	Closed State = iota
	// Open rejects every call until OpenFor has elapsed.
	Open
	// HalfOpen admits a bounded number of probe calls: enough successes
	// close the breaker, one failure reopens it.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// BreakerConfig parameterizes a breaker.
type BreakerConfig struct {
	// TripAfter is the number of consecutive failures that opens the
	// breaker. Zero means 5.
	TripAfter int
	// OpenFor is how long the breaker rejects before admitting probes.
	// Zero means 5s.
	OpenFor time.Duration
	// Probes is how many half-open calls may be in flight at once, and
	// how many must succeed (without any failing) to close. Zero means 1.
	Probes int
	// SlowThreshold, when positive, counts a call at least this slow as
	// a failure even if it returned nil — the latency-spike trip wire.
	SlowThreshold time.Duration
	// Now is the clock. Nil means time.Now.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change under the
	// breaker's lock; keep it fast (campaignd bumps counters).
	OnTransition func(from, to State)
}

func (c BreakerConfig) tripAfter() int {
	if c.TripAfter <= 0 {
		return 5
	}
	return c.TripAfter
}

func (c BreakerConfig) openFor() time.Duration {
	if c.OpenFor <= 0 {
		return 5 * time.Second
	}
	return c.OpenFor
}

func (c BreakerConfig) probes() int {
	if c.Probes <= 0 {
		return 1
	}
	return c.Probes
}

// Breaker is a closed/open/half-open circuit breaker. Callers bracket
// the protected call with Allow and Record:
//
//	if err := b.Allow(); err != nil { ... back off ... }
//	start := now()
//	res, err := call()
//	b.Record(now().Sub(start), err)
//
// All methods are safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     State
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last opened
	inFlight  int       // admitted probes not yet recorded (half-open)
	probeOKs  int       // successful probes this half-open episode
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg}
}

func (b *Breaker) now() time.Time {
	if b.cfg.Now != nil {
		return b.cfg.Now()
	}
	return time.Now()
}

func (b *Breaker) transitionLocked(to State) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnTransition != nil {
		b.cfg.OnTransition(from, to)
	}
}

// State returns the breaker's current state (advancing Open to HalfOpen
// if its window has elapsed).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	return b.state
}

// advanceLocked moves Open to HalfOpen once OpenFor has elapsed.
func (b *Breaker) advanceLocked() {
	if b.state == Open && !b.now().Before(b.openedAt.Add(b.cfg.openFor())) {
		b.transitionLocked(HalfOpen)
		b.inFlight = 0
		b.probeOKs = 0
	}
}

// Allow reports whether a call may proceed. ErrOpen means the caller
// should not attempt the call now; retrying after RetryIn is reasonable.
// Every nil return must be matched by exactly one Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	switch b.state {
	case Closed:
		return nil
	case HalfOpen:
		if b.inFlight >= b.cfg.probes() {
			return ErrOpen
		}
		b.inFlight++
		return nil
	default:
		return ErrOpen
	}
}

// RetryIn suggests how long until the breaker may admit traffic again:
// the remainder of the open window, or zero when calls are admissible.
func (b *Breaker) RetryIn() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advanceLocked()
	if b.state != Open {
		return 0
	}
	d := b.openedAt.Add(b.cfg.openFor()).Sub(b.now())
	if d < 0 {
		d = 0
	}
	return d
}

// Record reports the outcome of an allowed call. A call that errored —
// or outlived SlowThreshold — counts as a failure.
func (b *Breaker) Record(d time.Duration, err error) {
	failed := err != nil || (b.cfg.SlowThreshold > 0 && d >= b.cfg.SlowThreshold)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if !failed {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.tripAfter() {
			b.trip()
		}
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if failed {
			// One failed probe reopens: the seam is still sick.
			b.trip()
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.probes() {
			b.transitionLocked(Closed)
			b.failures = 0
		}
	case Open:
		// A straggler from before the trip; its outcome is stale.
	}
}

// trip opens the breaker and stamps the open window. Callers hold b.mu.
func (b *Breaker) trip() {
	b.transitionLocked(Open)
	b.openedAt = b.now()
	b.failures = 0
	b.inFlight = 0
	b.probeOKs = 0
}

// BreakerMetrics counts a breaker's state transitions and mirrors its
// current state into a gauge (0 closed, 1 open, 2 half-open).
type BreakerMetrics struct {
	State    *obs.Gauge
	Opened   *obs.Counter
	HalfOpen *obs.Counter
	Closed   *obs.Counter
}

// ObserveBreaker resolves the standard transition instruments for the
// named seam under prefix and returns an OnTransition callback wired to
// them. Nil-safe: with a nil observer the callback still runs, updating
// nil instruments (no-ops).
func ObserveBreaker(o *obs.Observer, prefix, seam string) func(from, to State) {
	var m BreakerMetrics
	if o != nil {
		m = BreakerMetrics{
			State:    o.Gauge(fmt.Sprintf("%s_breaker_%s_state", prefix, seam), "breaker state for the "+seam+" seam (0 closed, 1 open, 2 half-open)"),
			Opened:   o.Counter(fmt.Sprintf("%s_breaker_%s_opened_total", prefix, seam), "transitions to open for the "+seam+" seam"),
			HalfOpen: o.Counter(fmt.Sprintf("%s_breaker_%s_half_open_total", prefix, seam), "transitions to half-open for the "+seam+" seam"),
			Closed:   o.Counter(fmt.Sprintf("%s_breaker_%s_closed_total", prefix, seam), "transitions back to closed for the "+seam+" seam"),
		}
	}
	return func(from, to State) {
		m.State.Set(float64(to))
		switch to {
		case Open:
			m.Opened.Inc()
		case HalfOpen:
			m.HalfOpen.Inc()
		case Closed:
			m.Closed.Inc()
		}
	}
}
