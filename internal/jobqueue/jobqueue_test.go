package jobqueue_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
)

// fakeClock is a mutex-guarded manual clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestQueuePriorityAndFIFOOrder(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 10})
	for _, s := range []string{"b1", "b2"} {
		if err := q.Push(2, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push(1, "a1"); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(2, "b3"); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "b2", "b3"}
	for _, w := range want {
		l, err := q.Pop(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if l.Payload() != w {
			t.Fatalf("popped %q, want %q", l.Payload(), w)
		}
		if err := l.Complete(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueueCapacityBound(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 3})
	if err := q.PushBatch(0, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	// An atomic batch that does not fit is rejected whole.
	if err := q.PushBatch(0, []int{3, 4}); !errors.Is(err, jobqueue.ErrFull) {
		t.Fatalf("over-capacity batch: %v, want ErrFull", err)
	}
	if q.Depth() != 2 {
		t.Fatalf("rejected batch leaked tasks: depth %d", q.Depth())
	}
	// Leased tasks still count against admission: capacity bounds the
	// whole system, not just the backlog.
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := q.PushBatch(0, []int{3, 4}); !errors.Is(err, jobqueue.ErrFull) {
		t.Fatalf("batch exceeding queued+leased: %v, want ErrFull", err)
	}
	if err := q.Push(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseExpiryRequeuesSamePayload(t *testing.T) {
	clk := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clk.Now})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	l1, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second) // lease expires
	l2, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l2.Payload() != "task" {
		t.Fatalf("requeued payload %q changed", l2.Payload())
	}
	if l2.Attempt() != 0 {
		t.Fatalf("expiry bumped attempt to %d; only failed executions count", l2.Attempt())
	}
	// The expired lease is dead: its owner must not report a result.
	if err := l1.Complete(); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("expired lease Complete: %v, want ErrLeaseLost", err)
	}
	if err := l1.Heartbeat(); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("expired lease Heartbeat: %v, want ErrLeaseLost", err)
	}
	if err := l2.Complete(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatKeepsLeaseAlive(t *testing.T) {
	clk := newFakeClock()
	q := jobqueue.New[int](jobqueue.Config{Capacity: 2, Lease: time.Second, Now: clk.Now})
	if err := q.Push(0, 7); err != nil {
		t.Fatal(err)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		clk.Advance(800 * time.Millisecond)
		if err := l.Heartbeat(); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	if n := q.Depth(); n != 0 {
		t.Fatalf("heartbeated lease was reaped: depth %d", n)
	}
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}
	if q.Leased() != 0 {
		t.Fatalf("completed lease still counted: %d", q.Leased())
	}
}

func TestRequeueDelaysAndCountsAttempts(t *testing.T) {
	clk := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 2, Lease: time.Minute, Now: clk.Now})
	if err := q.Push(0, "flaky"); err != nil {
		t.Fatal(err)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Requeue(clk.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// Parked: not eligible yet.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parked task was eligible early: %v", err)
	}
	clk.Advance(11 * time.Second)
	l2, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l2.Attempt() != 1 {
		t.Fatalf("attempt %d after one requeue, want 1", l2.Attempt())
	}
	if err := l2.Complete(); err != nil {
		t.Fatal(err)
	}
}

func TestPopBlocksUntilPush(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 2})
	got := make(chan int, 1)
	go func() {
		l, err := q.Pop(context.Background())
		if err != nil {
			close(got)
			return
		}
		l.Complete()
		got <- l.Payload()
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Push(0, 42); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 42 {
			t.Fatalf("popped %d, want 42", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Pop never woke after Push")
	}
}

func TestCloseDrainsBlockedPops(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 4})
	if err := q.Push(0, 1); err != nil {
		t.Fatal(err)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			_, err := q.Pop(context.Background())
			errs <- err
		}()
	}
	time.Sleep(10 * time.Millisecond)
	q.Close()
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, jobqueue.ErrClosed) {
				t.Fatalf("blocked Pop after Close: %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Pop did not return after Close")
		}
	}
	if err := q.Push(0, 2); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("Push after Close: %v, want ErrClosed", err)
	}
	// The in-flight lease survives the close so drain can finish it.
	if err := l.Complete(); err != nil {
		t.Fatalf("leased task Complete after Close: %v", err)
	}
	if q.Depth() != 0 || q.Leased() != 0 {
		t.Fatalf("closed queue not empty: depth %d leased %d", q.Depth(), q.Leased())
	}
}

// TestQueueConcurrentStress hammers the queue from many producers and
// consumers under -race: every task admitted is completed exactly once.
func TestQueueConcurrentStress(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 1 << 20, Lease: time.Minute})
	const producers, perProducer, consumers = 8, 200, 8
	var completed atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Push(i%3, p*perProducer+i); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(p)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				l, err := q.Pop(ctx)
				if err != nil {
					return
				}
				if err := l.Complete(); err == nil {
					completed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for completed.Load() < producers*perProducer && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	cg.Wait()
	if got := completed.Load(); got != producers*perProducer {
		t.Fatalf("completed %d of %d tasks", got, producers*perProducer)
	}
	if q.Depth() != 0 || q.Leased() != 0 {
		t.Fatalf("stress left residue: depth %d leased %d", q.Depth(), q.Leased())
	}
}
