// Package backoff computes retry delays: exponential growth from a base
// delay, capped, with deterministic seeded jitter. It is shared by the
// campaign supervisor's in-process retry loop and campaignd's task
// requeue path, so both sides of the system space retries identically.
//
// Determinism matters here for the same reason it matters everywhere
// else in the pipeline: a retry schedule derived from (policy, seed
// tuple, attempt) is reproducible run to run, so a chaos soak that
// exercises the retry path still converges to a bit-identical dataset
// and a flaky-looking delay can always be replayed.
package backoff

import (
	"context"
	"time"

	"interferometry/internal/xrand"
)

// Policy describes an exponential backoff schedule. The zero value is
// the "retry immediately" policy: every delay is zero, and Sleep returns
// without touching a timer — exactly the supervisor's historic behavior.
type Policy struct {
	// Base is the delay before the first retry (attempt 1). Zero
	// disables backoff entirely.
	Base time.Duration
	// Cap bounds the grown delay. Zero means no cap.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier. Values below 1 are
	// treated as the default 2.
	Factor float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the delay becomes d*(1-Jitter) + u*d*Jitter with u drawn
	// deterministically from the seed tuple and attempt. Zero means no
	// jitter. Values outside [0, 1] are clamped.
	Jitter float64
}

// Delay returns the delay before retry number attempt (1-based; attempt
// 0 and negative return 0). The jitter draw is a pure function of
// (seeds, attempt), so identical seed tuples reproduce identical
// schedules whatever goroutine asks.
func (p Policy) Delay(attempt int, seeds ...uint64) time.Duration {
	if p.Base <= 0 || attempt <= 0 {
		return 0
	}
	factor := p.Factor
	if factor < 1 {
		factor = 2
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= factor
		if p.Cap > 0 && d >= float64(p.Cap) {
			d = float64(p.Cap)
			break
		}
	}
	if p.Cap > 0 && d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if j := p.jitter(); j > 0 {
		key := make([]uint64, 0, len(seeds)+2)
		key = append(key, 0x6261636b6f6666) // "backoff"
		key = append(key, seeds...)
		key = append(key, uint64(attempt))
		u := xrand.New(xrand.Mix(key...)).Float64()
		d = d*(1-j) + u*d*j
	}
	return time.Duration(d)
}

func (p Policy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter > 1:
		return 1
	default:
		return p.Jitter
	}
}

// Sleep blocks for Delay(attempt, seeds...) or until ctx is done,
// returning ctx's cause in that case. A zero delay returns immediately
// without consulting the context, so the zero Policy adds no overhead
// and no cancellation point to the historic retry loop.
func (p Policy) Sleep(ctx context.Context, attempt int, seeds ...uint64) error {
	d := p.Delay(attempt, seeds...)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return context.Cause(ctx)
	case <-t.C:
		return nil
	}
}
