package backoff_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"interferometry/internal/jobqueue/backoff"
)

func TestZeroPolicyIsImmediate(t *testing.T) {
	var p backoff.Policy
	for a := 0; a < 5; a++ {
		if d := p.Delay(a, 1, 2); d != 0 {
			t.Fatalf("zero policy attempt %d: delay %v, want 0", a, d)
		}
	}
	// Sleep on the zero policy must not consult the context: even a
	// canceled one returns nil.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, 3, 7); err != nil {
		t.Fatalf("zero policy Sleep: %v", err)
	}
}

func TestExponentialGrowthAndCap(t *testing.T) {
	p := backoff.Policy{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond}
	want := []time.Duration{0, 10, 20, 40, 50, 50}
	for a, w := range want {
		if d := p.Delay(a); d != w*time.Millisecond {
			t.Errorf("attempt %d: delay %v, want %v", a, d, w*time.Millisecond)
		}
	}
}

func TestCustomFactor(t *testing.T) {
	p := backoff.Policy{Base: time.Millisecond, Factor: 3}
	if d := p.Delay(3); d != 9*time.Millisecond {
		t.Fatalf("factor-3 attempt 3: %v, want 9ms", d)
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	p := backoff.Policy{Base: 10 * time.Millisecond, Jitter: 0.5}
	d1 := p.Delay(2, 0xabc, 7)
	d2 := p.Delay(2, 0xabc, 7)
	if d1 != d2 {
		t.Fatalf("same seed tuple produced different delays: %v vs %v", d1, d2)
	}
	// A 20ms grown delay with jitter 0.5 lands in [10ms, 20ms).
	if d1 < 10*time.Millisecond || d1 >= 20*time.Millisecond {
		t.Fatalf("jittered delay %v outside [10ms, 20ms)", d1)
	}
	if d3 := p.Delay(2, 0xabc, 8); d3 == d1 {
		t.Fatalf("different seed tuple reproduced the same jitter draw %v", d3)
	}
	if d4 := p.Delay(3, 0xabc, 7); d4 == d1 {
		t.Fatalf("different attempt reproduced the same delay %v", d4)
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	p := backoff.Policy{Base: time.Hour}
	cause := errors.New("drained")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	if err := p.Sleep(ctx, 1, 42); !errors.Is(err, cause) {
		t.Fatalf("Sleep under canceled ctx: %v, want %v", err, cause)
	}
}

func TestSleepReturnsAfterDelay(t *testing.T) {
	p := backoff.Policy{Base: time.Millisecond}
	if err := p.Sleep(context.Background(), 1, 1); err != nil {
		t.Fatal(err)
	}
}
