// Generation barriers: the queue's support for dependent task graphs.
// A search campaign's generation N+1 cannot be derived, let alone
// admitted, until every individual of generation N has settled — the
// first non-embarrassingly-parallel workload the queue carries. The
// queue itself stays workload-agnostic: a Barrier just counts one push
// batch's tasks out of the system, distinguishing completed work from
// work the queue dropped, and the caller decides what settlement means.
//
// Settlement interacts with every failure path the queue already has,
// and the rules keep the count exact:
//
//   - Complete settles the task. Exactly-once: a lease that already
//     expired cannot Complete (ErrLeaseLost), so a task reaped from a
//     dead worker and re-executed elsewhere settles once, from the
//     execution that owns it.
//   - Lease expiry does NOT settle. A reaped task goes back to its
//     tenant's ready heap with its attempt count untouched —
//     indistinguishable from never popped — and the barrier still
//     counts it as pending.
//   - Requeue does NOT settle: the task is still in the system.
//   - Close (and Requeue racing Close) settles the task as dropped.
//     The barrier still releases — a waiter must never deadlock on a
//     queue that no longer dispatches — and Dropped() tells the caller
//     the generation did not finish.
package jobqueue

import "sync"

// Barrier tracks one atomically-pushed batch of dependent tasks until
// every one of them has left the queue for good. Done() unblocks only
// then; Dropped() distinguishes a finished generation from one the
// queue abandoned mid-flight.
type Barrier struct {
	mu      sync.Mutex
	pending int
	dropped int
	done    chan struct{}
}

// Done returns a channel closed once every task in the batch has
// settled (completed or dropped).
func (b *Barrier) Done() <-chan struct{} {
	return b.done
}

// Pending returns how many of the batch's tasks are still in the
// system (queued, parked or leased).
func (b *Barrier) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pending
}

// Dropped returns how many of the batch's tasks left the system
// without completing — dropped by Close or by a Requeue that raced it.
// A nonzero count means the barrier released without the generation
// finishing.
func (b *Barrier) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// settle counts one task out of the barrier. Callers hold q.mu; the
// barrier has its own lock (acquired strictly after q.mu, never the
// reverse) so Done/Pending/Dropped don't contend with queue traffic.
func (b *Barrier) settle(dropped bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pending == 0 {
		return
	}
	if dropped {
		b.dropped++
	}
	b.pending--
	if b.pending == 0 {
		close(b.done)
	}
}

// PushBarrierTenant admits every payload atomically on behalf of
// tenant, exactly like PushBatchTenant — same ErrFull / ErrTenantQuota
// / ErrClosed admission decision, same scheduling — and additionally
// returns a Barrier that releases when every task in the batch has
// settled. A rejected push creates nothing: a tenant-quota or capacity
// shed leaves no half-registered barrier behind, so the caller can
// simply retry the whole generation.
func (q *Queue[T]) PushBarrierTenant(tenant string, priority int, payloads []T) (*Barrier, error) {
	bar := &Barrier{pending: len(payloads), done: make(chan struct{})}
	if len(payloads) == 0 {
		close(bar.done)
		return bar, nil
	}
	if err := q.pushBatch(tenant, priority, payloads, bar); err != nil {
		return nil, err
	}
	return bar, nil
}

// Seal stops admission without stopping dispatch: every Push variant
// returns ErrClosed, but Pop keeps serving queued and requeued work
// until the system is empty, and only then reports ErrClosed. This is
// the drain primitive dependent task graphs need — Close would drop
// the in-flight generation's queued siblings, while Seal lets the
// generation settle and merely refuses the next one. Sealing an
// already-closed queue is a no-op; Close may follow Seal.
func (q *Queue[T]) Seal() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.sealed {
		return
	}
	q.sealed = true
	// Wake blocked Pops: with an empty system they must now observe
	// ErrClosed instead of waiting for work that can never arrive.
	q.notifyLocked()
}

// Sealed reports whether the queue still dispatches but no longer
// admits.
func (q *Queue[T]) Sealed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sealed && !q.closed
}

// sealNotifyLocked wakes Pops when a settled task empties a sealed
// queue — the moment they must return ErrClosed.
func (q *Queue[T]) sealNotifyLocked() {
	if q.sealed && q.inSystemLocked() == 0 {
		q.notifyLocked()
	}
}
