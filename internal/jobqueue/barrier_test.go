package jobqueue_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
)

func barrierReleased(b *jobqueue.Barrier) bool {
	select {
	case <-b.Done():
		return true
	default:
		return false
	}
}

// A barrier releases exactly when every task of its batch completes,
// and counts none as dropped.
func TestBarrierReleasesOnCompletion(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 8})
	bar, err := q.PushBarrierTenant("t", 0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if barrierReleased(bar) {
			t.Fatalf("barrier released with %d tasks unfinished", 3-i)
		}
		l, err := q.Pop(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Complete(); err != nil {
			t.Fatal(err)
		}
	}
	if !barrierReleased(bar) {
		t.Fatal("barrier not released after all completions")
	}
	if bar.Dropped() != 0 || bar.Pending() != 0 {
		t.Fatalf("dropped=%d pending=%d after clean completion", bar.Dropped(), bar.Pending())
	}
}

// Lease expiry inside a generation requeues the task without charging
// an attempt and without settling the barrier: the individual is still
// pending and re-executes with the identical payload.
func TestBarrierLeaseExpiryDoesNotSettle(t *testing.T) {
	clk := newFakeClock()
	q := jobqueue.New[int](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clk.Now})
	bar, err := q.PushBarrierTenant("t", 0, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	l1, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second) // worker died mid-generation
	l2, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l2.Attempt() != 0 {
		t.Fatalf("expiry charged an attempt: %d", l2.Attempt())
	}
	if barrierReleased(bar) || bar.Pending() != 1 {
		t.Fatalf("expiry settled the barrier (pending=%d)", bar.Pending())
	}
	// The dead lease cannot settle the barrier either.
	if err := l1.Complete(); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("dead lease Complete: %v, want ErrLeaseLost", err)
	}
	if barrierReleased(bar) {
		t.Fatal("dead lease settled the barrier")
	}
	if err := l2.Complete(); err != nil {
		t.Fatal(err)
	}
	if !barrierReleased(bar) || bar.Dropped() != 0 {
		t.Fatalf("barrier not cleanly released after re-execution (dropped=%d)", bar.Dropped())
	}
}

// A requeue (failed execution, breaker denial) keeps the task pending:
// the barrier settles only when the retry completes, and the retry
// carries the incremented attempt.
func TestBarrierRequeueDoesNotSettle(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 4})
	bar, err := q.PushBarrierTenant("t", 0, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Requeue(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if barrierReleased(bar) {
		t.Fatal("requeue settled the barrier")
	}
	l, err = q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if l.Attempt() != 1 {
		t.Fatalf("requeue attempt = %d, want 1", l.Attempt())
	}
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}
	if !barrierReleased(bar) {
		t.Fatal("barrier not released after retried completion")
	}
}

// A tenant-quota shed of a mid-search generation is atomic: the push
// reports ErrTenantQuota (campaignd's 429), no tasks leak into the
// queue, no barrier is half-registered, and the already-admitted
// generation's barrier still settles exactly.
func TestBarrierQuotaShedLeavesBarrierIntact(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 16, MaxPerTenant: 3})
	bar, err := q.PushBarrierTenant("t", 0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// The next generation does not fit under the tenant's quota while
	// the current one is still in the system.
	if _, err := q.PushBarrierTenant("t", 0, []int{3, 4, 5}); !errors.Is(err, jobqueue.ErrTenantQuota) {
		t.Fatalf("over-quota generation: %v, want ErrTenantQuota", err)
	}
	if q.Depth() != 3 {
		t.Fatalf("shed generation leaked tasks: depth %d", q.Depth())
	}
	// Capacity shed is equally atomic.
	if _, err := q.PushBarrierTenant("u", 0, make([]int, 16)); !errors.Is(err, jobqueue.ErrFull) {
		t.Fatalf("over-capacity generation: %v, want ErrFull", err)
	}
	for i := 0; i < 3; i++ {
		l, err := q.Pop(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Complete(); err != nil {
			t.Fatal(err)
		}
	}
	if !barrierReleased(bar) || bar.Dropped() != 0 {
		t.Fatalf("shed corrupted the admitted barrier (dropped=%d)", bar.Dropped())
	}
	// With the generation settled the tenant's quota frees up.
	if _, err := q.PushBarrierTenant("t", 0, []int{3, 4, 5}); err != nil {
		t.Fatalf("post-settlement generation rejected: %v", err)
	}
}

// Seal is the drain contract for dependent task graphs: admission stops
// immediately, but the in-flight generation — including requeued
// retries — runs to completion before Pop reports closure.
func TestSealFinishesInFlightGeneration(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 8})
	bar, err := q.PushBarrierTenant("t", 0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	q.Seal()
	if !q.Sealed() {
		t.Fatal("queue not sealed")
	}
	// Admission is stopped for every push variant.
	if err := q.Push(0, 9); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("push after seal: %v, want ErrClosed", err)
	}
	if _, err := q.PushBarrierTenant("t", 0, []int{9}); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("barrier push after seal: %v, want ErrClosed", err)
	}
	// Dispatch continues: the sealed queue serves all three tasks, one
	// of them through a retry.
	retried := false
	done := 0
	for done < 3 {
		l, err := q.Pop(context.Background())
		if err != nil {
			t.Fatalf("pop under seal: %v", err)
		}
		if !retried {
			retried = true
			if err := l.Requeue(time.Time{}); err != nil {
				t.Fatalf("requeue under seal: %v", err)
			}
			continue
		}
		if err := l.Complete(); err != nil {
			t.Fatal(err)
		}
		done++
	}
	if !barrierReleased(bar) || bar.Dropped() != 0 {
		t.Fatalf("generation did not settle under seal (dropped=%d)", bar.Dropped())
	}
	// Only now, with the system empty, does Pop report closure.
	if _, err := q.Pop(context.Background()); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("pop on drained sealed queue: %v, want ErrClosed", err)
	}
}

// A Pop blocked on an empty-but-working sealed queue must wake and
// return ErrClosed the moment the last in-flight task settles.
func TestSealWakesBlockedPopOnSettle(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 4})
	if err := q.Push(0, 1); err != nil {
		t.Fatal(err)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q.Seal()
	popErr := make(chan error, 1)
	go func() {
		_, err := q.Pop(context.Background())
		popErr <- err
	}()
	// The queue is empty but the lease is still in flight; the Pop must
	// keep waiting (the lease could Requeue).
	select {
	case err := <-popErr:
		t.Fatalf("pop returned %v with a lease in flight", err)
	case <-time.After(20 * time.Millisecond):
	}
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-popErr:
		if !errors.Is(err, jobqueue.ErrClosed) {
			t.Fatalf("pop after final settle: %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake after the sealed queue emptied")
	}
}

// Close releases barriers rather than deadlocking them: queued tasks
// settle as dropped, and a Requeue racing Close settles its task as
// dropped too.
func TestBarrierCloseSettlesAsDropped(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 8})
	bar, err := q.PushBarrierTenant("t", 0, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	l, err := q.Pop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if barrierReleased(bar) {
		t.Fatal("barrier released with a lease still in flight")
	}
	if err := l.Requeue(time.Time{}); !errors.Is(err, jobqueue.ErrClosed) {
		t.Fatalf("requeue on closed queue: %v, want ErrClosed", err)
	}
	if !barrierReleased(bar) {
		t.Fatal("barrier not released after close")
	}
	if bar.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", bar.Dropped())
	}
}

// An empty barrier push is already settled.
func TestBarrierEmptyBatch(t *testing.T) {
	q := jobqueue.New[int](jobqueue.Config{Capacity: 1})
	bar, err := q.PushBarrierTenant("t", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !barrierReleased(bar) {
		t.Fatal("empty barrier not released")
	}
}
