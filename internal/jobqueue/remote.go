package jobqueue

import (
	"fmt"
	"sync"
)

// RegistryPolicy parameterizes per-worker health scoring.
type RegistryPolicy struct {
	// Window is the sliding window of recent verdicts (accepts and
	// rejects) the health score is computed over. Zero or negative
	// means 32.
	Window int
	// QuarantineAfter condemns a worker once this many rejections land
	// inside the window. Zero or negative means 3. Audit failures
	// condemn immediately regardless.
	QuarantineAfter int
}

func (p RegistryPolicy) window() int {
	if p.Window <= 0 {
		return 32
	}
	return p.Window
}

func (p RegistryPolicy) quarantineAfter() int {
	if p.QuarantineAfter <= 0 {
		return 3
	}
	return p.QuarantineAfter
}

// WorkerHealth is one worker's externally visible health record.
type WorkerHealth struct {
	Accepted    uint64  `json:"accepted"`     // results merged
	Rejected    uint64  `json:"rejected"`     // results refused at verification
	AuditFailed uint64  `json:"audit_failed"` // spot-audit mismatches
	Score       float64 `json:"score"`        // accepted fraction of the verdict window (1.0 when empty)
	Quarantined bool    `json:"quarantined"`  // condemned; future leases refused
}

// workerState tracks one worker's verdict history. window is a ring of
// recent verdicts (true = accepted) so a long-lived worker's early
// history cannot dilute a fresh burst of garbage.
type workerState struct {
	accepted    uint64
	rejected    uint64
	auditFailed uint64
	window      []bool
	wn          int // verdicts recorded, saturating at len(window)
	wi          int // next ring slot
	quarantined bool
}

func (w *workerState) record(ok bool) {
	w.window[w.wi] = ok
	w.wi = (w.wi + 1) % len(w.window)
	if w.wn < len(w.window) {
		w.wn++
	}
}

func (w *workerState) windowRejects() int {
	n := 0
	for i := 0; i < w.wn; i++ {
		if !w.window[i] {
			n++
		}
	}
	return n
}

func (w *workerState) health() WorkerHealth {
	score := 1.0
	if w.wn > 0 {
		score = float64(w.wn-w.windowRejects()) / float64(w.wn)
	}
	return WorkerHealth{
		Accepted:    w.accepted,
		Rejected:    w.rejected,
		AuditFailed: w.auditFailed,
		Score:       score,
		Quarantined: w.quarantined,
	}
}

// regEntry pairs a registered lease with the worker holding it, so a
// completion resolves its worker server-side — the coordinator never
// trusts a completion's claim about who executed it.
type regEntry[T any] struct {
	l      *Lease[T]
	worker string
}

// Registry names leases with opaque string IDs so they can cross a
// process boundary. A Lease is a pointer into its queue — fine for
// in-process workers, useless over HTTP — so campaignd's coordinator
// registers each lease it hands to a remote worker and resolves the ID
// on every heartbeat and completion. The registry adds no ownership
// semantics of its own: the queue's lease remains the single source of
// truth, and a registry entry whose lease has lapsed resolves to
// ErrLeaseLost exactly as the in-process API would.
//
// Because the registry already sees every lease a remote worker holds,
// it is also where per-worker health lives: accepted/rejected/audit
// verdict counters, a sliding-window score, and the quarantine bit. A
// worker that identifies itself with the empty string is anonymous and
// tracked under no health record (legacy workers keep working; they
// just cannot be individually condemned).
type Registry[T any] struct {
	mu      sync.Mutex
	n       uint64
	policy  RegistryPolicy
	leases  map[string]regEntry[T]
	workers map[string]*workerState
}

// NewRegistry returns an empty registry with the default policy.
func NewRegistry[T any]() *Registry[T] {
	return &Registry[T]{
		leases:  make(map[string]regEntry[T]),
		workers: make(map[string]*workerState),
	}
}

// SetPolicy replaces the health policy. Existing verdict windows are
// kept (they only shrink lazily as new verdicts land).
func (r *Registry[T]) SetPolicy(p RegistryPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.policy = p
}

// state returns the named worker's record, creating it on first sight.
// Callers hold r.mu; the empty worker name must be filtered out first.
func (r *Registry[T]) state(worker string) *workerState {
	w, ok := r.workers[worker]
	if !ok {
		w = &workerState{window: make([]bool, r.policy.window())}
		r.workers[worker] = w
	}
	return w
}

// Register names a lease held by worker and returns its ID.
func (r *Registry[T]) Register(l *Lease[T], worker string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	id := fmt.Sprintf("lease-%d", r.n)
	r.leases[id] = regEntry[T]{l: l, worker: worker}
	return id
}

// Heartbeat extends the named lease. An unknown ID or a lapsed lease
// returns ErrLeaseLost (and drops the entry): the worker must abandon
// the task, whose next owner will derive an identical result.
func (r *Registry[T]) Heartbeat(id string) error {
	r.mu.Lock()
	e, ok := r.leases[id]
	r.mu.Unlock()
	if !ok {
		return ErrLeaseLost
	}
	if err := e.l.Heartbeat(); err != nil {
		r.drop(id)
		return err
	}
	return nil
}

// Take removes and returns the named lease and the worker it was
// registered to, for settlement: the caller completes, requeues or
// releases it through the normal Lease API. A second Take of the same
// ID misses, so duplicate completions settle once.
func (r *Registry[T]) Take(id string) (*Lease[T], string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.leases[id]
	if ok {
		delete(r.leases, id)
	}
	return e.l, e.worker, ok
}

// Sweep drops every entry whose lease has lapsed. It deliberately does
// not heartbeat — that would keep dead workers' leases alive forever —
// so a periodic sweep bounds the registry to live leases even when
// workers die without a word.
func (r *Registry[T]) Sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.leases {
		if e.l.Lost() {
			delete(r.leases, id)
		}
	}
}

// Len returns the number of registered leases (for introspection).
func (r *Registry[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.leases)
}

// Accept records a verified, merged result from worker. Anonymous
// workers ("") are not tracked.
func (r *Registry[T]) Accept(worker string) {
	if worker == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.state(worker)
	w.accepted++
	w.record(true)
}

// Reject records a result refused at verification and reports whether
// the worker just crossed the quarantine threshold: at least
// QuarantineAfter rejections inside the verdict window on a worker not
// already condemned. The caller decides what crossing means (campaignd
// condemns). Anonymous workers are never condemned.
func (r *Registry[T]) Reject(worker string) bool {
	if worker == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.state(worker)
	w.rejected++
	w.record(false)
	return !w.quarantined && w.windowRejects() >= r.policy.quarantineAfter()
}

// FailAudit records a spot-audit mismatch: the worker reported a
// structurally valid result whose bytes its own re-execution disowns.
// It also counts as a rejection in the verdict window.
func (r *Registry[T]) FailAudit(worker string) {
	if worker == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.state(worker)
	w.auditFailed++
	w.rejected++
	w.record(false)
}

// Condemn quarantines worker and removes its live registry entries,
// returning their leases so the caller can Release each one (requeue
// with no attempt charged). first reports whether this call flipped the
// quarantine bit — exactly one condemnation per worker observes true,
// so condemnation side effects (metrics, logging) run once even when
// racing completions condemn concurrently. Condemning the anonymous
// worker "" is a no-op.
func (r *Registry[T]) Condemn(worker string) (leases []*Lease[T], first bool) {
	if worker == "" {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.state(worker)
	first = !w.quarantined
	w.quarantined = true
	for id, e := range r.leases {
		if e.worker == worker {
			delete(r.leases, id)
			leases = append(leases, e.l)
		}
	}
	return leases, first
}

// Quarantined reports whether worker has been condemned. The anonymous
// worker "" never is.
func (r *Registry[T]) Quarantined(worker string) bool {
	if worker == "" {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[worker]
	return ok && w.quarantined
}

// Workers snapshots every tracked worker's health record.
func (r *Registry[T]) Workers() map[string]WorkerHealth {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]WorkerHealth, len(r.workers))
	for name, w := range r.workers {
		out[name] = w.health()
	}
	return out
}

// QuarantinedCount returns the number of condemned workers.
func (r *Registry[T]) QuarantinedCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.workers {
		if w.quarantined {
			n++
		}
	}
	return n
}

func (r *Registry[T]) drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.leases, id)
}
