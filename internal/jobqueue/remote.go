package jobqueue

import (
	"fmt"
	"sync"
)

// Registry names leases with opaque string IDs so they can cross a
// process boundary. A Lease is a pointer into its queue — fine for
// in-process workers, useless over HTTP — so campaignd's coordinator
// registers each lease it hands to a remote worker and resolves the ID
// on every heartbeat and completion. The registry adds no ownership
// semantics of its own: the queue's lease remains the single source of
// truth, and a registry entry whose lease has lapsed resolves to
// ErrLeaseLost exactly as the in-process API would.
type Registry[T any] struct {
	mu     sync.Mutex
	n      uint64
	leases map[string]*Lease[T]
}

// NewRegistry returns an empty registry.
func NewRegistry[T any]() *Registry[T] {
	return &Registry[T]{leases: make(map[string]*Lease[T])}
}

// Register names a lease and returns its ID.
func (r *Registry[T]) Register(l *Lease[T]) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	id := fmt.Sprintf("lease-%d", r.n)
	r.leases[id] = l
	return id
}

// Heartbeat extends the named lease. An unknown ID or a lapsed lease
// returns ErrLeaseLost (and drops the entry): the worker must abandon
// the task, whose next owner will derive an identical result.
func (r *Registry[T]) Heartbeat(id string) error {
	r.mu.Lock()
	l, ok := r.leases[id]
	r.mu.Unlock()
	if !ok {
		return ErrLeaseLost
	}
	if err := l.Heartbeat(); err != nil {
		r.drop(id)
		return err
	}
	return nil
}

// Take removes and returns the named lease for settlement: the caller
// completes or requeues it through the normal Lease API. A second Take
// of the same ID misses, so duplicate completions settle once.
func (r *Registry[T]) Take(id string) (*Lease[T], bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.leases[id]
	if ok {
		delete(r.leases, id)
	}
	return l, ok
}

// Sweep drops every entry whose lease has lapsed. It deliberately does
// not heartbeat — that would keep dead workers' leases alive forever —
// so a periodic sweep bounds the registry to live leases even when
// workers die without a word.
func (r *Registry[T]) Sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, l := range r.leases {
		if l.Lost() {
			delete(r.leases, id)
		}
	}
}

// Len returns the number of registered leases (for introspection).
func (r *Registry[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.leases)
}

func (r *Registry[T]) drop(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.leases, id)
}
