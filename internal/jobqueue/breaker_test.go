package jobqueue_test

import (
	"errors"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
)

var errBoom = errors.New("boom")

// breakerUnderTest returns a 3-failure breaker on a fake clock plus the
// recorded transition log.
func breakerUnderTest(clk *fakeClock, cfg jobqueue.BreakerConfig) (*jobqueue.Breaker, *[]string) {
	log := &[]string{}
	cfg.Now = clk.Now
	cfg.OnTransition = func(from, to jobqueue.State) {
		*log = append(*log, from.String()+"->"+to.String())
	}
	return jobqueue.NewBreaker(cfg), log
}

// call drives one allowed call through the breaker.
func call(t *testing.T, b *jobqueue.Breaker, d time.Duration, err error) {
	t.Helper()
	if aerr := b.Allow(); aerr != nil {
		t.Fatalf("Allow: %v", aerr)
	}
	b.Record(d, err)
}

func TestBreakerTripsOnErrorBurst(t *testing.T) {
	clk := newFakeClock()
	b, log := breakerUnderTest(clk, jobqueue.BreakerConfig{TripAfter: 3, OpenFor: time.Second})
	call(t, b, 0, nil)
	call(t, b, 0, errBoom)
	call(t, b, 0, nil) // success resets the consecutive count
	call(t, b, 0, errBoom)
	call(t, b, 0, errBoom)
	if b.State() != jobqueue.Closed {
		t.Fatalf("breaker tripped before TripAfter consecutive failures")
	}
	call(t, b, 0, errBoom)
	if b.State() != jobqueue.Open {
		t.Fatalf("state %v after 3 consecutive failures, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, jobqueue.ErrOpen) {
		t.Fatalf("open breaker Allow: %v, want ErrOpen", err)
	}
	if d := b.RetryIn(); d != time.Second {
		t.Fatalf("RetryIn %v, want 1s", d)
	}
	if len(*log) != 1 || (*log)[0] != "closed->open" {
		t.Fatalf("transition log %v", *log)
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	clk := newFakeClock()
	b, log := breakerUnderTest(clk, jobqueue.BreakerConfig{TripAfter: 1, OpenFor: time.Second, Probes: 2})
	call(t, b, 0, errBoom) // trips
	clk.Advance(time.Second)
	if b.State() != jobqueue.HalfOpen {
		t.Fatalf("state %v after open window, want half-open", b.State())
	}
	// Only Probes calls are admitted concurrently.
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); !errors.Is(err, jobqueue.ErrOpen) {
		t.Fatalf("third concurrent probe admitted: %v", err)
	}
	b.Record(0, nil)
	b.Record(0, nil)
	if b.State() != jobqueue.Closed {
		t.Fatalf("state %v after successful probes, want closed", b.State())
	}
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(*log) != len(want) {
		t.Fatalf("transition log %v, want %v", *log, want)
	}
	for i := range want {
		if (*log)[i] != want[i] {
			t.Fatalf("transition log %v, want %v", *log, want)
		}
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clk := newFakeClock()
	b, _ := breakerUnderTest(clk, jobqueue.BreakerConfig{TripAfter: 1, OpenFor: time.Second})
	call(t, b, 0, errBoom)
	clk.Advance(time.Second)
	call(t, b, 0, errBoom) // the probe fails
	if b.State() != jobqueue.Open {
		t.Fatalf("state %v after failed probe, want open", b.State())
	}
	// The new open window starts at the failed probe, not the original trip.
	if d := b.RetryIn(); d != time.Second {
		t.Fatalf("RetryIn %v after reopen, want 1s", d)
	}
}

// TestBreakerSlowCallsTrip is the latency-spike path: calls that return
// nil but outlive SlowThreshold count as failures, so a burst of
// latency spikes opens the seam and slow half-open probes keep it open.
func TestBreakerSlowCallsTrip(t *testing.T) {
	clk := newFakeClock()
	b, _ := breakerUnderTest(clk, jobqueue.BreakerConfig{
		TripAfter: 2, OpenFor: time.Second, SlowThreshold: 100 * time.Millisecond,
	})
	call(t, b, 150*time.Millisecond, nil)
	call(t, b, 99*time.Millisecond, nil) // fast success resets
	call(t, b, 150*time.Millisecond, nil)
	call(t, b, 200*time.Millisecond, nil)
	if b.State() != jobqueue.Open {
		t.Fatalf("state %v after slow-call burst, want open", b.State())
	}
	// A still-slow probe reopens; a fast one closes.
	clk.Advance(time.Second)
	call(t, b, time.Second, nil)
	if b.State() != jobqueue.Open {
		t.Fatalf("slow probe did not reopen: %v", b.State())
	}
	clk.Advance(time.Second)
	call(t, b, time.Millisecond, nil)
	if b.State() != jobqueue.Closed {
		t.Fatalf("fast probe did not close: %v", b.State())
	}
}

func TestBreakerStaleRecordIgnoredWhileOpen(t *testing.T) {
	clk := newFakeClock()
	b, _ := breakerUnderTest(clk, jobqueue.BreakerConfig{TripAfter: 1, OpenFor: time.Minute})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(0, errBoom) // trips
	b.Record(0, nil)     // straggler from before the trip: no effect
	if b.State() != jobqueue.Open {
		t.Fatalf("stale success closed the breaker: %v", b.State())
	}
}
