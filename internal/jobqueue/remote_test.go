package jobqueue_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"interferometry/internal/jobqueue"
)

func popLease(t *testing.T, q *jobqueue.Queue[string]) *jobqueue.Lease[string] {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	l, err := q.Pop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLeaseLost(t *testing.T) {
	clock := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clock.Now})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	l := popLease(t, q)
	if l.Lost() {
		t.Fatal("fresh lease reports lost")
	}
	clock.Advance(999 * time.Millisecond)
	if l.Lost() {
		t.Fatal("lease lost before its duration elapsed")
	}
	clock.Advance(time.Millisecond)
	if !l.Lost() {
		t.Fatal("expired lease reports held")
	}
}

func TestLeaseLostAfterComplete(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	l := popLease(t, q)
	if err := l.Complete(); err != nil {
		t.Fatal(err)
	}
	if !l.Lost() {
		t.Fatal("settled lease reports held")
	}
}

func TestRegistryRegisterAndTake(t *testing.T) {
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	reg := jobqueue.NewRegistry[string]()
	l := popLease(t, q)
	id := reg.Register(l, "w1")
	if id == "" {
		t.Fatal("empty lease ID")
	}
	if reg.Len() != 1 {
		t.Fatalf("Len = %d, want 1", reg.Len())
	}

	got, worker, ok := reg.Take(id)
	if !ok || got != l || worker != "w1" {
		t.Fatalf("Take(%q) = %v, %q, %v; want the registered lease for w1", id, got, worker, ok)
	}
	// Settlement is single-shot: a duplicate completion finds nothing.
	if _, _, ok := reg.Take(id); ok {
		t.Fatal("second Take of the same ID succeeded")
	}
	if reg.Len() != 0 {
		t.Fatalf("Len after Take = %d, want 0", reg.Len())
	}
	if err := got.Complete(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryHeartbeatExtends(t *testing.T) {
	clock := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clock.Now})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	reg := jobqueue.NewRegistry[string]()
	id := reg.Register(popLease(t, q), "w1")

	// Three extensions carry the lease well past its original expiry.
	for i := 0; i < 3; i++ {
		clock.Advance(600 * time.Millisecond)
		if err := reg.Heartbeat(id); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}
	l, _, ok := reg.Take(id)
	if !ok || l.Lost() {
		t.Fatal("heartbeated lease should still be held")
	}
}

func TestRegistryHeartbeatLost(t *testing.T) {
	clock := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clock.Now})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	reg := jobqueue.NewRegistry[string]()
	id := reg.Register(popLease(t, q), "w1")

	// Expire the lease and let a Pop reap it — the task now belongs to a
	// new lease, so the old one is unrecoverable.
	clock.Advance(2 * time.Second)
	if l := popLease(t, q); l.Payload() != "task" {
		t.Fatalf("reaped pop returned %q", l.Payload())
	}
	if err := reg.Heartbeat(id); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("heartbeat after reap = %v, want ErrLeaseLost", err)
	}
	if reg.Len() != 0 {
		t.Fatal("lapsed entry not dropped on failed heartbeat")
	}
	if err := reg.Heartbeat("lease-999"); !errors.Is(err, jobqueue.ErrLeaseLost) {
		t.Fatalf("heartbeat of unknown ID = %v, want ErrLeaseLost", err)
	}
}

func TestRegistrySweepDropsOnlyLapsed(t *testing.T) {
	clock := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clock.Now})
	for _, s := range []string{"a", "b"} {
		if err := q.Push(0, s); err != nil {
			t.Fatal(err)
		}
	}
	reg := jobqueue.NewRegistry[string]()
	idA := reg.Register(popLease(t, q), "w1")
	clock.Advance(800 * time.Millisecond)
	idB := reg.Register(popLease(t, q), "w1") // fresh: expires 800ms after A

	clock.Advance(400 * time.Millisecond) // A lapsed, B alive
	reg.Sweep()
	if reg.Len() != 1 {
		t.Fatalf("Len after sweep = %d, want 1", reg.Len())
	}
	if _, _, ok := reg.Take(idA); ok {
		t.Fatal("sweep kept the lapsed lease")
	}
	if _, _, ok := reg.Take(idB); !ok {
		t.Fatal("sweep dropped the live lease")
	}
}

func TestRegistrySweepDoesNotHeartbeat(t *testing.T) {
	clock := newFakeClock()
	q := jobqueue.New[string](jobqueue.Config{Capacity: 4, Lease: time.Second, Now: clock.Now})
	if err := q.Push(0, "task"); err != nil {
		t.Fatal(err)
	}
	reg := jobqueue.NewRegistry[string]()
	id := reg.Register(popLease(t, q), "w1")

	// A sweep just before expiry must not extend the lease: the original
	// deadline still stands, so a second sweep just after it drops the
	// entry.
	clock.Advance(999 * time.Millisecond)
	reg.Sweep()
	if reg.Len() != 1 {
		t.Fatal("sweep dropped a live lease")
	}
	clock.Advance(2 * time.Millisecond)
	reg.Sweep()
	if reg.Len() != 0 {
		t.Fatalf("lease %s survived its deadline after a sweep", id)
	}
}
