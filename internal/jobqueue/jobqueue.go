// Package jobqueue provides the queueing primitives behind campaignd: a
// bounded, multi-tenant priority queue with worker leases and
// heartbeats, and a closed/open/half-open circuit breaker. Both are
// deliberately generic — they know nothing about layouts or campaigns —
// and both take an injectable clock, so every timing-dependent behavior
// (lease expiry, breaker reopen, delayed requeue) is testable without
// sleeping.
//
// Determinism is preserved across failures by construction: a task's
// payload never changes once pushed, so a lease that expires (worker
// stall, crash, lost heartbeat) requeues the exact same seed tuple and a
// re-execution derives the exact same result. Scheduling is a pure
// function of the push and pop history, never of goroutine timing:
// priority classes dispatch strictly in order, and within a class the
// queue runs deficit round-robin across tenants — each tenant in turn
// dispatches up to a quantum of tasks, so no tenant's flood can starve
// another's trickle, and a replayed history reproduces the identical
// schedule.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"

	"interferometry/internal/obs"
)

// Queue errors.
var (
	// ErrFull rejects a push that would exceed the queue's global
	// capacity — the admission-control signal campaignd turns into 429.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrTenantQuota rejects a push that would exceed the submitting
	// tenant's quota while the queue itself still has room — the
	// per-tenant 429.
	ErrTenantQuota = errors.New("jobqueue: tenant over quota")
	// ErrClosed rejects operations on a closed queue.
	ErrClosed = errors.New("jobqueue: queue closed")
	// ErrLeaseLost reports a heartbeat, complete or requeue on a lease
	// the queue no longer recognizes: it expired and the task was handed
	// to someone else (or the queue was closed).
	ErrLeaseLost = errors.New("jobqueue: lease lost")
)

// Metrics is the queue's instrument set; any field (or the whole struct)
// may be nil. Gauges track the live state — after a drain both return
// to zero, which is exactly what the leak tests assert.
type Metrics struct {
	Depth    *obs.Gauge     // tasks queued (ready + parked), not leased
	Leased   *obs.Gauge     // tasks currently leased to workers
	Pushed   *obs.Counter   // tasks admitted
	Requeued *obs.Counter   // tasks put back after a failed execution
	Expired  *obs.Counter   // leases reaped after missing heartbeats
	Released *obs.Counter   // tasks returned with no attempt charged
	Waits    *obs.Histogram // seconds from ready to leased
}

// TenantMetrics is one tenant's instrument set; any field (or the whole
// struct) may be nil.
type TenantMetrics struct {
	Depth  *obs.Gauge // tenant's tasks queued and not yet leased
	Leased *obs.Gauge // tenant's tasks currently leased
}

// ObserveMetrics resolves the standard queue instruments under prefix
// (e.g. "campaignd") from o's registry. Nil-safe: a nil observer yields
// nil instruments and the queue runs unobserved.
func ObserveMetrics(o *obs.Observer, prefix string) *Metrics {
	if o == nil {
		return nil
	}
	return &Metrics{
		Depth:    o.Gauge(prefix+"_queue_depth", "tasks queued and not yet leased"),
		Leased:   o.Gauge(prefix+"_leases_active", "tasks currently leased to workers"),
		Pushed:   o.Counter(prefix+"_tasks_pushed_total", "tasks admitted to the queue"),
		Requeued: o.Counter(prefix+"_tasks_requeued_total", "tasks requeued after a failed execution"),
		Expired:  o.Counter(prefix+"_lease_expiries_total", "leases reaped after missing heartbeats"),
		Released: o.Counter(prefix+"_tasks_released_total", "tasks returned to the queue with no attempt charged"),
		Waits:    o.Histogram(prefix+"_queue_wait_seconds", "seconds between a task becoming ready and being leased", obs.DurationBuckets),
	}
}

// Config parameterizes a queue.
type Config struct {
	// Capacity bounds the number of tasks in the system (queued plus
	// leased) counted at admission time; Push beyond it returns ErrFull.
	// Requeues are exempt — a task that was admitted can always come
	// back. Zero or negative means 1.
	Capacity int
	// MaxPerTenant bounds one tenant's tasks in the system (queued plus
	// leased) the same way; a push beyond it returns ErrTenantQuota.
	// Zero or negative means unlimited. Requeues are exempt.
	MaxPerTenant int
	// TenantQuotas overrides MaxPerTenant for specific tenants; a
	// present entry <= 0 means that tenant is unlimited.
	TenantQuotas map[string]int
	// Quantum is the deficit-round-robin burst: how many consecutive
	// tasks one tenant may dispatch before the scheduler moves on to the
	// next tenant with eligible work in the same priority class. Zero or
	// negative means 1 (pure round-robin).
	Quantum int
	// Lease is how long a popped task stays owned without a heartbeat
	// before it is reaped and requeued. Zero means 30s.
	Lease time.Duration
	// Now is the clock. Nil means time.Now.
	Now func() time.Time
	// Metrics optionally observes the queue.
	Metrics *Metrics
	// TenantMetrics optionally resolves one tenant's instruments the
	// first time that tenant pushes; nil runs without per-tenant gauges.
	TenantMetrics func(tenant string) *TenantMetrics
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return 1
	}
	return c.Capacity
}

func (c Config) quantum() int {
	if c.Quantum <= 0 {
		return 1
	}
	return c.Quantum
}

func (c Config) lease() time.Duration {
	if c.Lease <= 0 {
		return 30 * time.Second
	}
	return c.Lease
}

// quotaOf returns tenant's in-system bound; 0 means unlimited.
func (c Config) quotaOf(tenant string) int {
	if q, ok := c.TenantQuotas[tenant]; ok {
		if q <= 0 {
			return 0
		}
		return q
	}
	if c.MaxPerTenant <= 0 {
		return 0
	}
	return c.MaxPerTenant
}

// task is one queued entry.
type task[T any] struct {
	payload   T
	priority  int
	seq       uint64    // push order, the FIFO tiebreak within a priority
	attempt   int       // failed executions so far
	notBefore time.Time // zero = ready now
	readyAt   time.Time // when the task last became eligible (for Waits)
	index     int       // heap index
	ts        *tenantState[T]
	bar       *Barrier // generation barrier, nil for independent tasks
}

// readyHeap orders eligible tasks by (priority, seq).
type readyHeap[T any] []*task[T]

func (h readyHeap[T]) Len() int { return len(h) }
func (h readyHeap[T]) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority < h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h readyHeap[T]) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index, h[b].index = a, b
}
func (h *readyHeap[T]) Push(x any) {
	t := x.(*task[T])
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *readyHeap[T]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// parkedHeap orders delayed tasks by notBefore.
type parkedHeap[T any] []*task[T]

func (h parkedHeap[T]) Len() int           { return len(h) }
func (h parkedHeap[T]) Less(a, b int) bool { return h[a].notBefore.Before(h[b].notBefore) }
func (h parkedHeap[T]) Swap(a, b int)      { h[a], h[b] = h[b], h[a]; h[a].index, h[b].index = a, b }
func (h *parkedHeap[T]) Push(x any)        { t := x.(*task[T]); t.index = len(*h); *h = append(*h, t) }
func (h *parkedHeap[T]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// tenantState is one tenant's slice of the queue: its own ready heap
// (ordered by priority class, then push order), its quota accounting,
// and its deficit-round-robin budget. Tenants join the scheduling ring
// in first-push order and never leave it, so the ring order — and with
// it the whole schedule — is a pure function of the push history.
type tenantState[T any] struct {
	name    string
	ready   readyHeap[T]
	deficit int
	queued  int // ready + parked tasks
	leased  int
	m       *TenantMetrics
}

func (ts *tenantState[T]) inSystem() int { return ts.queued + ts.leased }

// headClass returns the priority class at the head of the tenant's
// ready heap; ok is false when the tenant has nothing ready.
func (ts *tenantState[T]) headClass() (int, bool) {
	if len(ts.ready) == 0 {
		return 0, false
	}
	return ts.ready[0].priority, true
}

// Queue is a bounded, multi-tenant priority queue with leases. All
// methods are safe for concurrent use.
type Queue[T any] struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenantState[T]
	ring    []*tenantState[T] // first-push order; never shrinks
	cur     int               // ring index of the DRR pointer
	nready  int               // ready tasks across all tenants
	parked  parkedHeap[T]
	leases  map[*Lease[T]]*task[T]
	seq     uint64
	closed  bool
	sealed  bool          // admission stopped, dispatch continues (Seal)
	wake    chan struct{} // closed-and-replaced to broadcast state changes
}

// New returns an empty queue.
func New[T any](cfg Config) *Queue[T] {
	if cfg.Metrics == nil {
		// Every obs instrument is nil-safe, so an empty set makes the
		// whole metrics path unconditional no-ops.
		cfg.Metrics = &Metrics{}
	}
	return &Queue[T]{
		cfg:     cfg,
		tenants: make(map[string]*tenantState[T]),
		leases:  make(map[*Lease[T]]*task[T]),
		wake:    make(chan struct{}),
	}
}

func (q *Queue[T]) now() time.Time {
	if q.cfg.Now != nil {
		return q.cfg.Now()
	}
	return time.Now()
}

// notifyLocked wakes every blocked Pop. Callers hold q.mu.
func (q *Queue[T]) notifyLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// tenantLocked returns (creating on first use) one tenant's state.
func (q *Queue[T]) tenantLocked(name string) *tenantState[T] {
	ts, ok := q.tenants[name]
	if !ok {
		ts = &tenantState[T]{name: name}
		if q.cfg.TenantMetrics != nil {
			ts.m = q.cfg.TenantMetrics(name)
		}
		if ts.m == nil {
			ts.m = &TenantMetrics{}
		}
		q.tenants[name] = ts
		q.ring = append(q.ring, ts)
	}
	return ts
}

// inSystemLocked is the admission-control count: queued plus leased.
func (q *Queue[T]) inSystemLocked() int {
	return q.nready + len(q.parked) + len(q.leases)
}

// Push admits one task for the anonymous tenant at the given priority
// (lower runs sooner; equal priorities run in push order). It returns
// ErrFull when the system already holds Capacity tasks and ErrClosed
// after Close.
func (q *Queue[T]) Push(priority int, payload T) error {
	return q.PushBatchTenant("", priority, []T{payload})
}

// PushBatch admits every payload atomically for the anonymous tenant:
// either all fit under the capacity or none are queued. campaignd uses
// it to admit a whole campaign's task fan-out as one decision.
func (q *Queue[T]) PushBatch(priority int, payloads []T) error {
	return q.PushBatchTenant("", priority, payloads)
}

// PushBatchTenant admits every payload atomically on behalf of tenant:
// all of them fit under both the global capacity and the tenant's quota,
// or none are queued and ErrFull / ErrTenantQuota says which bound was
// hit.
func (q *Queue[T]) PushBatchTenant(tenant string, priority int, payloads []T) error {
	return q.pushBatch(tenant, priority, payloads, nil)
}

// pushBatch is the shared admission path behind PushBatchTenant and
// PushBarrierTenant; bar, when non-nil, is attached to every admitted
// task.
func (q *Queue[T]) pushBatch(tenant string, priority int, payloads []T, bar *Barrier) error {
	if len(payloads) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.sealed {
		return ErrClosed
	}
	if q.inSystemLocked()+len(payloads) > q.cfg.capacity() {
		return ErrFull
	}
	ts := q.tenantLocked(tenant)
	if quota := q.cfg.quotaOf(tenant); quota > 0 && ts.inSystem()+len(payloads) > quota {
		return ErrTenantQuota
	}
	now := q.now()
	for _, p := range payloads {
		q.seq++
		t := &task[T]{payload: p, priority: priority, seq: q.seq, readyAt: now, ts: ts, bar: bar}
		heap.Push(&ts.ready, t)
		q.nready++
		ts.queued++
	}
	q.cfg.Metrics.Pushed.Add(uint64(len(payloads)))
	q.updateGaugesLocked(ts)
	q.notifyLocked()
	return nil
}

// Lease is one worker's ownership of a task. The worker must finish
// with Complete or Requeue, heartbeating in between if the work outlives
// the lease duration.
type Lease[T any] struct {
	q       *Queue[T]
	payload T
	attempt int
	tenant  string
}

// Payload returns the leased task's payload.
func (l *Lease[T]) Payload() T { return l.payload }

// Attempt returns how many failed executions preceded this lease.
func (l *Lease[T]) Attempt() int { return l.attempt }

// Tenant returns the tenant the leased task was pushed for.
func (l *Lease[T]) Tenant() string { return l.tenant }

// Pop blocks until a task is eligible, then leases it. It returns ctx's
// cause when the context ends and ErrClosed once the queue is closed
// (even if tasks remain — a closed queue is draining, not dispatching).
func (q *Queue[T]) Pop(ctx context.Context) (*Lease[T], error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		now := q.now()
		q.reapLocked(now)
		q.unparkLocked(now)
		if t := q.scheduleLocked(); t != nil {
			l := &Lease[T]{q: q, payload: t.payload, attempt: t.attempt, tenant: t.ts.name}
			t.notBefore = now.Add(q.cfg.lease()) // reused as the lease deadline
			q.leases[l] = t
			t.ts.leased++
			q.cfg.Metrics.Waits.Observe(now.Sub(t.readyAt).Seconds())
			q.updateGaugesLocked(t.ts)
			q.mu.Unlock()
			return l, nil
		}
		// A sealed queue dispatches until the system empties, then
		// reports closure: nothing queued, nothing leased that could
		// requeue — no work can ever arrive again.
		if q.sealed && q.inSystemLocked() == 0 {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		// Nothing eligible: wait for a push/requeue/close, or for the
		// next timed event (a parked task coming due, a lease expiring).
		wake := q.wake
		var timer *time.Timer
		var timeout <-chan time.Time
		if next, ok := q.nextEventLocked(); ok {
			d := next.Sub(now)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, context.Cause(ctx)
		case <-wake:
		case <-timeout:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// scheduleLocked picks the next task to dispatch, or nil when nothing
// is ready. Priority classes are strict: only tenants whose best ready
// task is in the minimal class are eligible this pick. Among them the
// deficit-round-robin pointer walks the ring in first-push order; the
// tenant under the pointer dispatches up to a quantum of tasks before
// the pointer moves on. Everything here is integer state mutated only
// by push/pop history, so identical histories schedule identically.
func (q *Queue[T]) scheduleLocked() *task[T] {
	if q.nready == 0 || len(q.ring) == 0 {
		return nil
	}
	minClass, found := 0, false
	for _, ts := range q.ring {
		if c, ok := ts.headClass(); ok && (!found || c < minClass) {
			minClass, found = c, true
		}
	}
	if !found {
		return nil
	}
	// At least one ring tenant heads the minimal class, so this walk
	// dispatches within len(ring) steps.
	for range q.ring {
		ts := q.ring[q.cur%len(q.ring)]
		if c, ok := ts.headClass(); ok && c == minClass {
			if ts.deficit <= 0 {
				ts.deficit = q.cfg.quantum()
			}
			ts.deficit--
			t := heap.Pop(&ts.ready).(*task[T])
			q.nready--
			ts.queued--
			if ts.deficit <= 0 {
				q.cur = (q.cur + 1) % len(q.ring)
			}
			return t
		}
		// Not eligible at this class: no banking while idle (classic
		// DRR zeroes an idle flow's deficit) and the pointer moves on.
		ts.deficit = 0
		q.cur = (q.cur + 1) % len(q.ring)
	}
	return nil
}

// nextEventLocked returns the earliest time at which the queue's state
// changes by itself: a parked task coming due or a lease expiring.
func (q *Queue[T]) nextEventLocked() (time.Time, bool) {
	var next time.Time
	ok := false
	if len(q.parked) > 0 {
		next, ok = q.parked[0].notBefore, true
	}
	for _, t := range q.leases {
		if !ok || t.notBefore.Before(next) {
			next, ok = t.notBefore, true
		}
	}
	return next, ok
}

// unparkLocked moves due parked tasks back into their tenants' ready
// heaps.
func (q *Queue[T]) unparkLocked(now time.Time) {
	for len(q.parked) > 0 && !q.parked[0].notBefore.After(now) {
		t := heap.Pop(&q.parked).(*task[T])
		t.readyAt = now
		heap.Push(&t.ts.ready, t)
		q.nready++
	}
}

// reapLocked requeues every expired lease. The task's payload, priority
// and attempt count are untouched: a reaped task is indistinguishable
// from one that was never popped, so its re-execution derives the same
// seed tuple and produces the same result.
func (q *Queue[T]) reapLocked(now time.Time) {
	for l, t := range q.leases {
		if t.notBefore.After(now) {
			continue
		}
		delete(q.leases, l)
		t.ts.leased--
		t.readyAt = now
		t.notBefore = time.Time{}
		heap.Push(&t.ts.ready, t)
		q.nready++
		t.ts.queued++
		q.cfg.Metrics.Expired.Inc()
		q.updateGaugesLocked(t.ts)
	}
	q.updateGaugesLocked(nil)
}

// Heartbeat extends the lease by the queue's lease duration. It returns
// ErrLeaseLost if the lease already expired and was requeued.
func (l *Lease[T]) Heartbeat() error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	if !ok {
		return ErrLeaseLost
	}
	t.notBefore = q.now().Add(q.cfg.lease())
	return nil
}

// Lost reports whether the lease no longer owns its task: the queue
// reaped it (or will at the next Pop — an expired-but-unreaped lease is
// already lost, Heartbeat cannot revive ownership guarantees that have
// lapsed), it completed, or it was requeued. Registry.Sweep uses it to
// drop dead remote workers' entries without extending them.
func (l *Lease[T]) Lost() bool {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	return !ok || !t.notBefore.After(q.now())
}

// Complete removes the task from the queue for good. ErrLeaseLost means
// the lease expired first and the task is running (or queued) elsewhere;
// the caller must discard its result — the duplicate owner's will be
// identical anyway, but only one execution gets to report.
func (l *Lease[T]) Complete() error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	if !ok {
		return ErrLeaseLost
	}
	delete(q.leases, l)
	t.ts.leased--
	t.bar.settle(false)
	q.updateGaugesLocked(t.ts)
	q.sealNotifyLocked()
	return nil
}

// Requeue puts the task back with its attempt count incremented, not
// eligible before notBefore (the caller computes it from its backoff
// policy; the zero time means immediately). Capacity-exempt: an admitted
// task can always return. On a closed queue the task is dropped instead
// — Close already dropped every queued task (a drain recovers them from
// checkpoints), so resurrecting this one would leak it into a queue no
// Pop will ever drain — and ErrClosed reports the drop.
func (l *Lease[T]) Requeue(notBefore time.Time) error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	if !ok {
		return ErrLeaseLost
	}
	delete(q.leases, l)
	t.ts.leased--
	if q.closed {
		t.bar.settle(true)
		q.updateGaugesLocked(t.ts)
		return ErrClosed
	}
	t.attempt++
	now := q.now()
	if notBefore.After(now) {
		t.notBefore = notBefore
		heap.Push(&q.parked, t)
	} else {
		t.notBefore = time.Time{}
		t.readyAt = now
		heap.Push(&t.ts.ready, t)
		q.nready++
	}
	t.ts.queued++
	q.cfg.Metrics.Requeued.Inc()
	q.updateGaugesLocked(t.ts)
	q.notifyLocked()
	return nil
}

// Release puts the task back with no attempt charged and immediately
// eligible — the lease-holder was at fault, not the task, so the requeue
// must be indistinguishable from a reaped lease (same no-charge rule as
// reapLocked). campaignd uses it when a worker is condemned: the
// worker's live leases return to the queue exactly once and their next
// owners derive identical results with unchanged provenance. Settlement
// semantics match Requeue: ErrLeaseLost if the lease already expired or
// settled (whoever settles first wins — a racing reap has already
// requeued the task, so this call must not do it again), ErrClosed with
// the task dropped on a closed queue.
func (l *Lease[T]) Release() error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	if !ok {
		return ErrLeaseLost
	}
	delete(q.leases, l)
	t.ts.leased--
	if q.closed {
		t.bar.settle(true)
		q.updateGaugesLocked(t.ts)
		return ErrClosed
	}
	now := q.now()
	t.notBefore = time.Time{}
	t.readyAt = now
	heap.Push(&t.ts.ready, t)
	q.nready++
	t.ts.queued++
	q.cfg.Metrics.Released.Inc()
	q.updateGaugesLocked(t.ts)
	q.notifyLocked()
	return nil
}

// Depth returns the number of queued (ready plus parked) tasks.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.nready + len(q.parked)
}

// Leased returns the number of tasks currently leased.
func (q *Queue[T]) Leased() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leases)
}

// Capacity returns the admission bound.
func (q *Queue[T]) Capacity() int { return q.cfg.capacity() }

// TenantCounts is one tenant's live footprint in the queue.
type TenantCounts struct {
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Quota  int `json:"quota,omitempty"` // in-system bound; 0 = unlimited
}

// Tenants snapshots every tenant the queue has seen, keyed by name.
func (q *Queue[T]) Tenants() map[string]TenantCounts {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]TenantCounts, len(q.tenants))
	for name, ts := range q.tenants {
		out[name] = TenantCounts{Queued: ts.queued, Leased: ts.leased, Quota: q.cfg.quotaOf(name)}
	}
	return out
}

// Close stops the queue: every queued task is dropped (campaignd drains
// by finishing leased work and recovering the rest from checkpoints),
// every blocked Pop returns ErrClosed, and future pushes are rejected.
// Outstanding leases stay valid so in-flight work can still Complete.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	for _, ts := range q.ring {
		// Dropped tasks settle their barriers as dropped: a waiter must
		// never deadlock on a queue that will not dispatch again.
		for _, t := range ts.ready {
			t.bar.settle(true)
		}
		ts.ready = nil
		ts.queued = 0
		q.updateGaugesLocked(ts)
	}
	for _, t := range q.parked {
		t.bar.settle(true)
	}
	q.nready = 0
	q.parked = nil
	q.updateGaugesLocked(nil)
	q.notifyLocked()
}

// updateGaugesLocked refreshes the global gauges and, when ts is
// non-nil, that tenant's gauges.
func (q *Queue[T]) updateGaugesLocked(ts *tenantState[T]) {
	q.cfg.Metrics.Depth.Set(float64(q.nready + len(q.parked)))
	q.cfg.Metrics.Leased.Set(float64(len(q.leases)))
	if ts != nil {
		ts.m.Depth.Set(float64(ts.queued))
		ts.m.Leased.Set(float64(ts.leased))
	}
}
