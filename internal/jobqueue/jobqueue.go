// Package jobqueue provides the queueing primitives behind campaignd: a
// bounded priority queue with worker leases and heartbeats, and a
// closed/open/half-open circuit breaker. Both are deliberately generic —
// they know nothing about layouts or campaigns — and both take an
// injectable clock, so every timing-dependent behavior (lease expiry,
// breaker reopen, delayed requeue) is testable without sleeping.
//
// Determinism is preserved across failures by construction: a task's
// payload never changes once pushed, so a lease that expires (worker
// stall, crash, lost heartbeat) requeues the exact same seed tuple and a
// re-execution derives the exact same result. The queue orders strictly
// by (priority, sequence), never by timing, so which task runs next is a
// pure function of the push history, not of goroutine scheduling.
package jobqueue

import (
	"container/heap"
	"context"
	"errors"
	"sync"
	"time"

	"interferometry/internal/obs"
)

// Queue errors.
var (
	// ErrFull rejects a push that would exceed the queue's capacity —
	// the admission-control signal campaignd turns into 429.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed rejects operations on a closed queue.
	ErrClosed = errors.New("jobqueue: queue closed")
	// ErrLeaseLost reports a heartbeat, complete or requeue on a lease
	// the queue no longer recognizes: it expired and the task was handed
	// to someone else (or the queue was closed).
	ErrLeaseLost = errors.New("jobqueue: lease lost")
)

// Metrics is the queue's instrument set; any field (or the whole struct)
// may be nil. Gauges track the live state — after a drain both return
// to zero, which is exactly what the leak tests assert.
type Metrics struct {
	Depth    *obs.Gauge     // tasks queued (ready + parked), not leased
	Leased   *obs.Gauge     // tasks currently leased to workers
	Pushed   *obs.Counter   // tasks admitted
	Requeued *obs.Counter   // tasks put back after a failed execution
	Expired  *obs.Counter   // leases reaped after missing heartbeats
	Waits    *obs.Histogram // seconds from ready to leased
}

// ObserveMetrics resolves the standard queue instruments under prefix
// (e.g. "campaignd") from o's registry. Nil-safe: a nil observer yields
// nil instruments and the queue runs unobserved.
func ObserveMetrics(o *obs.Observer, prefix string) *Metrics {
	if o == nil {
		return nil
	}
	return &Metrics{
		Depth:    o.Gauge(prefix+"_queue_depth", "tasks queued and not yet leased"),
		Leased:   o.Gauge(prefix+"_leases_active", "tasks currently leased to workers"),
		Pushed:   o.Counter(prefix+"_tasks_pushed_total", "tasks admitted to the queue"),
		Requeued: o.Counter(prefix+"_tasks_requeued_total", "tasks requeued after a failed execution"),
		Expired:  o.Counter(prefix+"_lease_expiries_total", "leases reaped after missing heartbeats"),
		Waits:    o.Histogram(prefix+"_queue_wait_seconds", "seconds between a task becoming ready and being leased", obs.DurationBuckets),
	}
}

// Config parameterizes a queue.
type Config struct {
	// Capacity bounds the number of tasks in the system (queued plus
	// leased) counted at admission time; Push beyond it returns ErrFull.
	// Requeues are exempt — a task that was admitted can always come
	// back. Zero or negative means 1.
	Capacity int
	// Lease is how long a popped task stays owned without a heartbeat
	// before it is reaped and requeued. Zero means 30s.
	Lease time.Duration
	// Now is the clock. Nil means time.Now.
	Now func() time.Time
	// Metrics optionally observes the queue.
	Metrics *Metrics
}

func (c Config) capacity() int {
	if c.Capacity <= 0 {
		return 1
	}
	return c.Capacity
}

func (c Config) lease() time.Duration {
	if c.Lease <= 0 {
		return 30 * time.Second
	}
	return c.Lease
}

// task is one queued entry.
type task[T any] struct {
	payload   T
	priority  int
	seq       uint64    // push order, the FIFO tiebreak within a priority
	attempt   int       // failed executions so far
	notBefore time.Time // zero = ready now
	readyAt   time.Time // when the task last became eligible (for Waits)
	index     int       // heap index
}

// readyHeap orders eligible tasks by (priority, seq).
type readyHeap[T any] []*task[T]

func (h readyHeap[T]) Len() int { return len(h) }
func (h readyHeap[T]) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority < h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h readyHeap[T]) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index, h[b].index = a, b
}
func (h *readyHeap[T]) Push(x any) {
	t := x.(*task[T])
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *readyHeap[T]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// parkedHeap orders delayed tasks by notBefore.
type parkedHeap[T any] []*task[T]

func (h parkedHeap[T]) Len() int            { return len(h) }
func (h parkedHeap[T]) Less(a, b int) bool  { return h[a].notBefore.Before(h[b].notBefore) }
func (h parkedHeap[T]) Swap(a, b int)       { h[a], h[b] = h[b], h[a]; h[a].index, h[b].index = a, b }
func (h *parkedHeap[T]) Push(x any)         { t := x.(*task[T]); t.index = len(*h); *h = append(*h, t) }
func (h *parkedHeap[T]) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Queue is a bounded priority queue with leases. All methods are safe
// for concurrent use.
type Queue[T any] struct {
	cfg Config

	mu      sync.Mutex
	ready   readyHeap[T]
	parked  parkedHeap[T]
	leases  map[*Lease[T]]*task[T]
	seq     uint64
	closed  bool
	wake    chan struct{} // closed-and-replaced to broadcast state changes
}

// New returns an empty queue.
func New[T any](cfg Config) *Queue[T] {
	if cfg.Metrics == nil {
		// Every obs instrument is nil-safe, so an empty set makes the
		// whole metrics path unconditional no-ops.
		cfg.Metrics = &Metrics{}
	}
	return &Queue[T]{
		cfg:    cfg,
		leases: make(map[*Lease[T]]*task[T]),
		wake:   make(chan struct{}),
	}
}

func (q *Queue[T]) now() time.Time {
	if q.cfg.Now != nil {
		return q.cfg.Now()
	}
	return time.Now()
}

// notifyLocked wakes every blocked Pop. Callers hold q.mu.
func (q *Queue[T]) notifyLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// inSystemLocked is the admission-control count: queued plus leased.
func (q *Queue[T]) inSystemLocked() int {
	return len(q.ready) + len(q.parked) + len(q.leases)
}

// Push admits one task at the given priority (lower runs sooner; equal
// priorities run in push order). It returns ErrFull when the system
// already holds Capacity tasks and ErrClosed after Close.
func (q *Queue[T]) Push(priority int, payload T) error {
	return q.PushBatch(priority, []T{payload})
}

// PushBatch admits every payload atomically: either all fit under the
// capacity or none are queued and ErrFull is returned. campaignd uses it
// to admit a whole campaign's task fan-out as one decision.
func (q *Queue[T]) PushBatch(priority int, payloads []T) error {
	if len(payloads) == 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.inSystemLocked()+len(payloads) > q.cfg.capacity() {
		return ErrFull
	}
	now := q.now()
	for _, p := range payloads {
		q.seq++
		t := &task[T]{payload: p, priority: priority, seq: q.seq, readyAt: now}
		heap.Push(&q.ready, t)
	}
	q.cfg.Metrics.Pushed.Add(uint64(len(payloads)))
	q.updateGaugesLocked()
	q.notifyLocked()
	return nil
}

// Lease is one worker's ownership of a task. The worker must finish
// with Complete or Requeue, heartbeating in between if the work outlives
// the lease duration.
type Lease[T any] struct {
	q       *Queue[T]
	payload T
	attempt int
}

// Payload returns the leased task's payload.
func (l *Lease[T]) Payload() T { return l.payload }

// Attempt returns how many failed executions preceded this lease.
func (l *Lease[T]) Attempt() int { return l.attempt }

// Pop blocks until a task is eligible, then leases it. It returns ctx's
// cause when the context ends and ErrClosed once the queue is closed
// (even if tasks remain — a closed queue is draining, not dispatching).
func (q *Queue[T]) Pop(ctx context.Context) (*Lease[T], error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		now := q.now()
		q.reapLocked(now)
		q.unparkLocked(now)
		if len(q.ready) > 0 {
			t := heap.Pop(&q.ready).(*task[T])
			l := &Lease[T]{q: q, payload: t.payload, attempt: t.attempt}
			t.notBefore = now.Add(q.cfg.lease()) // reused as the lease deadline
			q.leases[l] = t
			q.cfg.Metrics.Waits.Observe(now.Sub(t.readyAt).Seconds())
			q.updateGaugesLocked()
			q.mu.Unlock()
			return l, nil
		}
		// Nothing eligible: wait for a push/requeue/close, or for the
		// next timed event (a parked task coming due, a lease expiring).
		wake := q.wake
		var timer *time.Timer
		var timeout <-chan time.Time
		if next, ok := q.nextEventLocked(); ok {
			d := next.Sub(now)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timeout = timer.C
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, context.Cause(ctx)
		case <-wake:
		case <-timeout:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// nextEventLocked returns the earliest time at which the queue's state
// changes by itself: a parked task coming due or a lease expiring.
func (q *Queue[T]) nextEventLocked() (time.Time, bool) {
	var next time.Time
	ok := false
	if len(q.parked) > 0 {
		next, ok = q.parked[0].notBefore, true
	}
	for _, t := range q.leases {
		if !ok || t.notBefore.Before(next) {
			next, ok = t.notBefore, true
		}
	}
	return next, ok
}

// unparkLocked moves due parked tasks into the ready heap.
func (q *Queue[T]) unparkLocked(now time.Time) {
	for len(q.parked) > 0 && !q.parked[0].notBefore.After(now) {
		t := heap.Pop(&q.parked).(*task[T])
		t.readyAt = now
		heap.Push(&q.ready, t)
	}
}

// reapLocked requeues every expired lease. The task's payload, priority
// and attempt count are untouched: a reaped task is indistinguishable
// from one that was never popped, so its re-execution derives the same
// seed tuple and produces the same result.
func (q *Queue[T]) reapLocked(now time.Time) {
	for l, t := range q.leases {
		if t.notBefore.After(now) {
			continue
		}
		delete(q.leases, l)
		t.readyAt = now
		t.notBefore = time.Time{}
		heap.Push(&q.ready, t)
		q.cfg.Metrics.Expired.Inc()
	}
	q.updateGaugesLocked()
}

// Heartbeat extends the lease by the queue's lease duration. It returns
// ErrLeaseLost if the lease already expired and was requeued.
func (l *Lease[T]) Heartbeat() error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	if !ok {
		return ErrLeaseLost
	}
	t.notBefore = q.now().Add(q.cfg.lease())
	return nil
}

// Lost reports whether the lease no longer owns its task: the queue
// reaped it (or will at the next Pop — an expired-but-unreaped lease is
// already lost, Heartbeat cannot revive ownership guarantees that have
// lapsed), it completed, or it was requeued. Registry.Sweep uses it to
// drop dead remote workers' entries without extending them.
func (l *Lease[T]) Lost() bool {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	return !ok || !t.notBefore.After(q.now())
}

// Complete removes the task from the queue for good. ErrLeaseLost means
// the lease expired first and the task is running (or queued) elsewhere;
// the caller must discard its result — the duplicate owner's will be
// identical anyway, but only one execution gets to report.
func (l *Lease[T]) Complete() error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.leases[l]; !ok {
		return ErrLeaseLost
	}
	delete(q.leases, l)
	q.updateGaugesLocked()
	return nil
}

// Requeue puts the task back with its attempt count incremented, not
// eligible before notBefore (the caller computes it from its backoff
// policy; the zero time means immediately). Capacity-exempt: an admitted
// task can always return.
func (l *Lease[T]) Requeue(notBefore time.Time) error {
	q := l.q
	q.mu.Lock()
	defer q.mu.Unlock()
	t, ok := q.leases[l]
	if !ok {
		return ErrLeaseLost
	}
	delete(q.leases, l)
	t.attempt++
	now := q.now()
	if notBefore.After(now) {
		t.notBefore = notBefore
		heap.Push(&q.parked, t)
	} else {
		t.notBefore = time.Time{}
		t.readyAt = now
		heap.Push(&q.ready, t)
	}
	q.cfg.Metrics.Requeued.Inc()
	q.updateGaugesLocked()
	q.notifyLocked()
	return nil
}

// Depth returns the number of queued (ready plus parked) tasks.
func (q *Queue[T]) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.ready) + len(q.parked)
}

// Leased returns the number of tasks currently leased.
func (q *Queue[T]) Leased() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.leases)
}

// Capacity returns the admission bound.
func (q *Queue[T]) Capacity() int { return q.cfg.capacity() }

// Close stops the queue: every queued task is dropped (campaignd drains
// by finishing leased work and recovering the rest from checkpoints),
// every blocked Pop returns ErrClosed, and future pushes are rejected.
// Outstanding leases stay valid so in-flight work can still Complete.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.ready = nil
	q.parked = nil
	q.updateGaugesLocked()
	q.notifyLocked()
}

func (q *Queue[T]) updateGaugesLocked() {
	q.cfg.Metrics.Depth.Set(float64(len(q.ready) + len(q.parked)))
	q.cfg.Metrics.Leased.Set(float64(len(q.leases)))
}
