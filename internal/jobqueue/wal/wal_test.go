package wal_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"interferometry/internal/jobqueue/wal"
	"interferometry/internal/obs"
)

func openLog(t *testing.T, path string, o *obs.Observer) (*wal.Log, []*wal.CampaignState) {
	t.Helper()
	l, states, err := wal.Open(wal.Config{Path: path, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	return l, states
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaignd.wal")
	l, states := openLog(t, path, nil)
	if len(states) != 0 {
		t.Fatalf("fresh log replayed %d campaigns", len(states))
	}
	spec := json.RawMessage(`{"benchmark":"429.mcf","layouts":3}`)
	if err := l.Submit("c1", "acme", 0, spec); err != nil {
		t.Fatal(err)
	}
	if err := l.Task("c1", 0, wal.TaskCompleted); err != nil {
		t.Fatal(err)
	}
	if err := l.Task("c1", 2, wal.TaskFailed); err != nil {
		t.Fatal(err)
	}
	if err := l.Submit("c2", "umbrella", 1, spec); err != nil {
		t.Fatal(err)
	}
	if err := l.Final("c2", "done"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(wal.Record{Op: wal.OpFinal, Campaign: "c1"}); err == nil {
		t.Fatal("append after Close succeeded")
	}

	_, states = openLog(t, path, nil)
	if len(states) != 2 {
		t.Fatalf("replayed %d campaigns, want 2", len(states))
	}
	c1, c2 := states[0], states[1]
	if c1.ID != "c1" || c2.ID != "c2" {
		t.Fatalf("replay order %q,%q — want first-submit order c1,c2", c1.ID, c2.ID)
	}
	if !c1.Live() || c1.Tenant != "acme" || string(c1.Spec) != string(spec) {
		t.Fatalf("c1 state %+v", c1)
	}
	if c1.Tasks[0] != wal.TaskCompleted || c1.Tasks[2] != wal.TaskFailed || len(c1.Tasks) != 2 {
		t.Fatalf("c1 tasks %v", c1.Tasks)
	}
	if c2.Live() || c2.Final != "done" || c2.Priority != 1 {
		t.Fatalf("c2 state %+v", c2)
	}
}

// TestTornTailIsDroppedAndRepaired: a crash mid-append leaves a partial
// line; reopen must replay everything before it, drop the torn record,
// and leave the file appendable on a clean line boundary.
func TestTornTailIsDroppedAndRepaired(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaignd.wal")
	l, _ := openLog(t, path, nil)
	if err := l.Submit("c1", "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Task("c1", 0, wal.TaskCompleted); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"task","campaign":"c1","lay`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	o := &obs.Observer{Metrics: obs.NewMetrics()}
	l2, states := openLog(t, path, o)
	if len(states) != 1 || states[0].Tasks[0] != wal.TaskCompleted || len(states[0].Tasks) != 1 {
		t.Fatalf("replay after torn tail: %+v", states)
	}
	if v := o.Counter("campaignd_wal_torn_tails_total", "").Value(); v != 1 {
		t.Fatalf("torn tail counter %d, want 1", v)
	}
	if v := o.Counter("campaignd_wal_records_replayed_total", "").Value(); v != 2 {
		t.Fatalf("replayed counter %d, want 2", v)
	}
	// The next append lands on its own line, not glued to the torn one.
	if err := l2.Task("c1", 1, wal.TaskFailed); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, states = openLog(t, path, nil)
	if len(states[0].Tasks) != 2 || states[0].Tasks[1] != wal.TaskFailed {
		t.Fatalf("post-repair replay tasks %v", states[0].Tasks)
	}
}

// TestUnterminatedTailIsKept: if only the trailing newline was lost,
// the record itself is whole and must survive replay.
func TestUnterminatedTailIsKept(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaignd.wal")
	l, _ := openLog(t, path, nil)
	if err := l.Submit("c1", "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, states := openLog(t, path, nil)
	if len(states) != 1 || states[0].ID != "c1" {
		t.Fatalf("unterminated-tail replay: %+v", states)
	}
	if err := l2.Task("c1", 0, wal.TaskCompleted); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, states = openLog(t, path, nil)
	if states[0].Tasks[0] != wal.TaskCompleted {
		t.Fatalf("append after unterminated repair: %v", states[0].Tasks)
	}
}

func TestMidFileCorruptionRefusesToOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaignd.wal")
	content := `{"op":"submit","campaign":"c1","layout":0}` + "\n" +
		"not json\n" +
		`{"op":"final","campaign":"c1","layout":0,"state":"done"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := wal.Open(wal.Config{Path: path})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption opened: %v", err)
	}
}

// TestCompactDropsFinalizedCampaigns: compaction keeps only live
// campaigns (with their task states) and the log stays appendable.
func TestCompactDropsFinalizedCampaigns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaignd.wal")
	o := &obs.Observer{Metrics: obs.NewMetrics()}
	l, _ := openLog(t, path, o)
	if err := l.Submit("done", "", 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Task("done", 0, wal.TaskCompleted); err != nil {
		t.Fatal(err)
	}
	if err := l.Final("done", "done"); err != nil {
		t.Fatal(err)
	}
	if err := l.Submit("live", "acme", 2, json.RawMessage(`{"layouts":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Task("live", 1, wal.TaskCompleted); err != nil {
		t.Fatal(err)
	}
	if g := o.Gauge("campaignd_wal_live_campaigns", "").Value(); g != 1 {
		t.Fatalf("live gauge %v, want 1", g)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if v := o.Counter("campaignd_wal_compactions_total", "").Value(); v != 1 {
		t.Fatalf("compactions %d, want 1", v)
	}
	// The compacted file holds exactly the live campaign.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"done"`) {
		t.Fatalf("compacted log still mentions finalized campaign:\n%s", data)
	}
	// Still appendable after compaction.
	if err := l.Task("live", 0, wal.TaskFailed); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, states := openLog(t, path, nil)
	if len(states) != 1 {
		t.Fatalf("replayed %d campaigns after compact, want 1", len(states))
	}
	s := states[0]
	if s.ID != "live" || s.Tenant != "acme" || s.Priority != 2 || !s.Live() {
		t.Fatalf("compacted state %+v", s)
	}
	if s.Tasks[0] != wal.TaskFailed || s.Tasks[1] != wal.TaskCompleted {
		t.Fatalf("compacted tasks %v", s.Tasks)
	}
}

// TestResubmitReopensFinalizedCampaign: a submit for a finalized id
// makes it live again with the new spec but keeps earlier task states —
// the campaign is the same deterministic function, so they still hold.
func TestResubmitReopensFinalizedCampaign(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaignd.wal")
	l, _ := openLog(t, path, nil)
	if err := l.Submit("c1", "a", 0, json.RawMessage(`{"layouts":2}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Task("c1", 0, wal.TaskCompleted); err != nil {
		t.Fatal(err)
	}
	if err := l.Final("c1", "done"); err != nil {
		t.Fatal(err)
	}
	if err := l.Submit("c1", "a", 1, json.RawMessage(`{"layouts":4}`)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, states := openLog(t, path, nil)
	if len(states) != 1 {
		t.Fatalf("replayed %d campaigns, want 1", len(states))
	}
	s := states[0]
	if !s.Live() || s.Priority != 1 || string(s.Spec) != `{"layouts":4}` {
		t.Fatalf("reopened state %+v", s)
	}
	if s.Tasks[0] != wal.TaskCompleted {
		t.Fatalf("reopened tasks %v, want layout 0 kept", s.Tasks)
	}
}
