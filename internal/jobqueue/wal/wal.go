// Package wal is the durability layer under campaignd: an append-only
// JSONL write-ahead log of campaign submissions, per-layout task state
// transitions and campaign finalizations. Every append is fsynced
// before it is acknowledged, so a coordinator killed at any instant can
// replay the log on restart and resume exactly the work that was
// admitted and not yet finished.
//
// The log is deliberately small-vocabulary — three record kinds — and
// the replayed state is reconciled against per-campaign checkpoint
// directories by campaignd, not here: the WAL records *intent* (this
// campaign was admitted, this layout finished once), the checkpoint
// records *results*. Because every measurement is a pure function of
// the spec's seed tuple, replaying a task whose checkpoint record was
// lost re-derives byte-identical results, so the WAL never needs to
// store observations.
//
// Crash tolerance: a crash mid-append leaves at most one torn line at
// the tail. Open detects it, drops it, truncates the file back to the
// last complete record and counts the repair; a torn line anywhere
// else is real corruption and refuses to open. Compaction rewrites the
// live state through the same temp-file + fsync + rename + dir-fsync
// discipline as checkpoints (internal/atomicio), so the log never
// grows without bound and never loses acknowledged records.
package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"interferometry/internal/atomicio"
	"interferometry/internal/obs"
)

// Record ops. A submit admits a campaign, a task marks one layout's
// terminal state, a gen marks one search generation settled (the state
// field carries its population hash), a final closes the campaign.
const (
	OpSubmit = "submit"
	OpTask   = "task"
	OpGen    = "gen"
	OpFinal  = "final"
)

// Task states recorded by OpTask.
const (
	TaskCompleted = "completed"
	TaskFailed    = "failed"
)

// Record is one log line. Which fields are meaningful depends on Op:
// submit carries tenant/priority/spec, task carries layout/state, final
// carries state.
type Record struct {
	Op       string          `json:"op"`
	Campaign string          `json:"campaign"`
	Tenant   string          `json:"tenant,omitempty"`
	Priority int             `json:"priority,omitempty"`
	Spec     json.RawMessage `json:"spec,omitempty"`
	Layout   int             `json:"layout"`
	State    string          `json:"state,omitempty"`
}

// CampaignState is the replayed view of one campaign: what was admitted
// and how far it got. Tasks maps layout index to its last recorded
// terminal state (TaskCompleted or TaskFailed); Final is empty while
// the campaign is live.
type CampaignState struct {
	ID       string
	Tenant   string
	Priority int
	Spec     json.RawMessage
	Tasks    map[int]string
	// Gens maps a search campaign's settled generation index to the
	// population hash journaled for it. Resume cross-checks these
	// against the generation checkpoint: the hash was fsynced only
	// after the checkpoint flushed, so a checkpoint that is missing a
	// journaled generation (or disagrees on its hash) is corrupt.
	Gens  map[int]string
	Final string
}

// Live reports whether the campaign has not been finalized.
func (s *CampaignState) Live() bool { return s.Final == "" }

// Config parameterizes a log.
type Config struct {
	// Path is the log file. Required; created if missing. The parent
	// directory must exist.
	Path string
	// Obs optionally observes the log (<prefix>_wal_* instruments).
	Obs *obs.Observer
	// Prefix namespaces the instruments. Empty means "campaignd".
	Prefix string
}

// Log is an open write-ahead log. Append-side methods are safe for
// concurrent use.
type Log struct {
	path string

	appended, replayed, compactions, torn *obs.Counter
	liveG                                 *obs.Gauge

	mu    sync.Mutex
	app   *atomicio.Appender
	state map[string]*CampaignState
	order []string // campaign IDs in first-submit order
}

// Open replays an existing log (tolerating one torn tail line), opens
// it for appending and returns the replayed campaigns in first-submit
// order — finalized ones included, so the caller can distinguish "done,
// drop at next compaction" from "live, resume now" via Live().
func Open(cfg Config) (*Log, []*CampaignState, error) {
	if cfg.Path == "" {
		return nil, nil, fmt.Errorf("wal: log needs a path")
	}
	prefix := cfg.Prefix
	if prefix == "" {
		prefix = "campaignd"
	}
	l := &Log{
		path:  cfg.Path,
		state: make(map[string]*CampaignState),
	}
	if o := cfg.Obs; o != nil {
		l.appended = o.Counter(prefix+"_wal_records_appended_total", "WAL records durably appended")
		l.replayed = o.Counter(prefix+"_wal_records_replayed_total", "WAL records replayed at startup")
		l.compactions = o.Counter(prefix+"_wal_compactions_total", "WAL snapshot compactions")
		l.torn = o.Counter(prefix+"_wal_torn_tails_total", "torn tail records dropped during replay")
		l.liveG = o.Gauge(prefix+"_wal_live_campaigns", "campaigns in the WAL not yet finalized")
	}
	if err := l.replay(); err != nil {
		return nil, nil, err
	}
	app, err := atomicio.OpenAppender(cfg.Path, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	l.app = app
	l.updateLiveGauge()
	states := make([]*CampaignState, 0, len(l.order))
	for _, id := range l.order {
		states = append(states, l.state[id])
	}
	return l, states, nil
}

// replay reads the log, applies every complete record, and truncates a
// torn tail (a crash mid-append) back to the last complete record so
// subsequent appends do not concatenate onto garbage. A malformed line
// that is not the tail is corruption and fails the open.
func (l *Log) replay() error {
	data, err := os.ReadFile(l.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: replay: %w", err)
	}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		line := data[off:]
		complete := nl >= 0
		if complete {
			line = data[off : off+nl]
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Op == "" {
			if complete && off+nl+1 < len(data) {
				return fmt.Errorf("wal: corrupt record at offset %d: %q", off, truncateForErr(line))
			}
			// Torn tail: drop it and cut the file back so the next
			// append starts on a clean line boundary.
			l.torn.Inc()
			if err := os.Truncate(l.path, int64(off)); err != nil {
				return fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			return nil
		}
		if !complete {
			// Parseable but unterminated: the newline itself was lost in
			// the crash. The record is whole, keep it, but square up the
			// file so the next append is newline-separated.
			l.apply(rec)
			l.replayed.Inc()
			if err := os.WriteFile(l.path, append(data[:off+len(line):off+len(line)], '\n'), 0o644); err != nil {
				return fmt.Errorf("wal: repair unterminated tail: %w", err)
			}
			return nil
		}
		l.apply(rec)
		l.replayed.Inc()
		off += nl + 1
	}
	return nil
}

func truncateForErr(line []byte) []byte {
	if len(line) > 80 {
		return line[:80]
	}
	return line
}

// apply folds one record into the replayed state. Unknown-campaign task
// and final records are dropped: they can only follow a compaction bug
// or hand-edited log, and refusing the whole log over them would lose
// the rest of the recovery.
func (l *Log) apply(rec Record) {
	switch rec.Op {
	case OpSubmit:
		if s, ok := l.state[rec.Campaign]; ok {
			// Resubmission of a known campaign: reopen it with the fresh
			// spec. Earlier task records stay — the campaign is the same
			// deterministic function, so prior terminal states hold.
			s.Tenant, s.Priority, s.Spec, s.Final = rec.Tenant, rec.Priority, rec.Spec, ""
			return
		}
		l.state[rec.Campaign] = &CampaignState{
			ID:       rec.Campaign,
			Tenant:   rec.Tenant,
			Priority: rec.Priority,
			Spec:     rec.Spec,
			Tasks:    make(map[int]string),
		}
		l.order = append(l.order, rec.Campaign)
	case OpTask:
		if s, ok := l.state[rec.Campaign]; ok {
			s.Tasks[rec.Layout] = rec.State
		}
	case OpGen:
		if s, ok := l.state[rec.Campaign]; ok {
			if s.Gens == nil {
				s.Gens = make(map[int]string)
			}
			s.Gens[rec.Layout] = rec.State
		}
	case OpFinal:
		if s, ok := l.state[rec.Campaign]; ok {
			s.Final = rec.State
		}
	}
}

// Append durably writes one record: it is fsynced before Append
// returns. The in-memory replay state is updated in the same critical
// section so Compact always snapshots exactly what the log holds.
func (l *Log) Append(rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.app == nil {
		return fmt.Errorf("wal: log is closed")
	}
	if err := l.app.Append(append(data, '\n')); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.apply(rec)
	l.appended.Inc()
	l.updateLiveGauge()
	return nil
}

// Submit records a campaign admission.
func (l *Log) Submit(id, tenant string, priority int, spec json.RawMessage) error {
	return l.Append(Record{Op: OpSubmit, Campaign: id, Tenant: tenant, Priority: priority, Spec: spec})
}

// Task records one layout reaching a terminal state.
func (l *Log) Task(id string, layout int, state string) error {
	return l.Append(Record{Op: OpTask, Campaign: id, Layout: layout, State: state})
}

// Gen records one search generation settled with the given population
// hash. Callers must flush the generation checkpoint first, so the
// journal never claims a generation the checkpoint does not hold.
func (l *Log) Gen(id string, gen int, popHash string) error {
	return l.Append(Record{Op: OpGen, Campaign: id, Layout: gen, State: popHash})
}

// Final records a campaign finishing in the given state. The campaign
// is dropped from the log at the next Compact.
func (l *Log) Final(id, state string) error {
	return l.Append(Record{Op: OpFinal, Campaign: id, State: state})
}

// Compact rewrites the log as a minimal snapshot of its live campaigns
// — one submit plus one task record per terminal layout, finalized
// campaigns dropped — through an atomic, fsynced rename, then reopens
// the appender on the fresh file.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.app == nil {
		return fmt.Errorf("wal: log is closed")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	live := make([]string, 0, len(l.order))
	for _, id := range l.order {
		s := l.state[id]
		if !s.Live() {
			delete(l.state, id)
			continue
		}
		live = append(live, id)
		if err := enc.Encode(Record{Op: OpSubmit, Campaign: id, Tenant: s.Tenant, Priority: s.Priority, Spec: s.Spec}); err != nil {
			return fmt.Errorf("wal: compact encode: %w", err)
		}
		layouts := make([]int, 0, len(s.Tasks))
		for i := range s.Tasks {
			layouts = append(layouts, i)
		}
		sort.Ints(layouts)
		for _, i := range layouts {
			if err := enc.Encode(Record{Op: OpTask, Campaign: id, Layout: i, State: s.Tasks[i]}); err != nil {
				return fmt.Errorf("wal: compact encode: %w", err)
			}
		}
		gens := make([]int, 0, len(s.Gens))
		for g := range s.Gens {
			gens = append(gens, g)
		}
		sort.Ints(gens)
		for _, g := range gens {
			if err := enc.Encode(Record{Op: OpGen, Campaign: id, Layout: g, State: s.Gens[g]}); err != nil {
				return fmt.Errorf("wal: compact encode: %w", err)
			}
		}
	}
	if err := l.app.Close(); err != nil {
		return fmt.Errorf("wal: compact: close old log: %w", err)
	}
	l.app = nil
	if err := atomicio.WriteFile(l.path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("wal: compact: %w", err)
	}
	app, err := atomicio.OpenAppender(l.path, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact: reopen: %w", err)
	}
	l.app = app
	l.order = live
	l.compactions.Inc()
	l.updateLiveGauge()
	return nil
}

// Live returns how many campaigns in the log have not been finalized.
func (l *Log) Live() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.liveLocked()
}

func (l *Log) liveLocked() int {
	n := 0
	for _, s := range l.state {
		if s.Live() {
			n++
		}
	}
	return n
}

func (l *Log) updateLiveGauge() {
	l.liveG.Set(float64(l.liveLocked()))
}

// Close closes the appender. Further appends fail; the file stays.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.app == nil {
		return nil
	}
	err := l.app.Close()
	l.app = nil
	return err
}
