// Package results persists campaign measurements and experiment outputs
// in analysis-friendly formats: per-observation CSV (for plotting the
// paper's scatter figures in any tool) and JSON for structured results.
// Command report uses it to write a complete reproduction report.
package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"interferometry/internal/core"
	"interferometry/internal/pmc"
)

// csvEvents is the column order of exported per-event rates.
var csvEvents = []pmc.Event{
	pmc.EvBranchMispredicts,
	pmc.EvL1IMisses,
	pmc.EvL1DMisses,
	pmc.EvL2Misses,
}

// WriteDatasetCSV writes one row per observation: the layout and heap
// seeds, raw cycle/instruction counts, CPI, each event's
// per-kilo-instruction rate, and the supervisor's status/attempts
// columns. Failed layouts are written too (zero counters, status
// "failed") so a degraded campaign's gaps are visible in the export. The
// format round-trips through ReadDatasetCSV.
func WriteDatasetCSV(w io.Writer, ds *core.Dataset) error {
	return WriteDatasetCSVRange(w, ds, 0, len(ds.Obs), true)
}

// WriteDatasetCSVRange writes the dataset rows [offset, offset+n)
// (clamped to the dataset), preceded by the header when withHeader is
// set. Pages written with the header only at offset 0 concatenate to
// exactly the bytes of WriteDatasetCSV — each observation is one CSV
// line, so a row range is a byte range — which is what lets campaignd
// stream a large result without buffering the whole export.
func WriteDatasetCSVRange(w io.Writer, ds *core.Dataset, offset, n int, withHeader bool) error {
	return writeCSVRange(w, ds, offset, n, withHeader, true)
}

// WriteMeasurementsCSV writes the measurement-only canonical form of a
// dataset: the seed tuples and counters without the status/attempts
// provenance columns. Measurements are pure functions of their seeds, so
// a campaign disturbed by faults and retries and an undisturbed one
// produce byte-identical measurement exports even though their
// provenance columns legitimately differ — the chaos soak compares
// exactly this form.
func WriteMeasurementsCSV(w io.Writer, ds *core.Dataset) error {
	return WriteMeasurementsCSVRange(w, ds, 0, len(ds.Obs), true)
}

// WriteMeasurementsCSVRange is WriteDatasetCSVRange for the
// measurement-only canonical form.
func WriteMeasurementsCSVRange(w io.Writer, ds *core.Dataset, offset, n int, withHeader bool) error {
	return writeCSVRange(w, ds, offset, n, withHeader, false)
}

// writeCSVRange is the shared row emitter behind both CSV forms; the
// provenance flag adds the status/attempts columns.
func writeCSVRange(w io.Writer, ds *core.Dataset, offset, n int, withHeader, provenance bool) error {
	if offset < 0 {
		offset = 0
	}
	end := offset + n
	if n < 0 || end > len(ds.Obs) {
		end = len(ds.Obs)
	}
	cw := csv.NewWriter(w)
	if withHeader {
		header := []string{"benchmark", "layout_seed", "heap_seed", "cycles", "instructions", "cpi"}
		for _, ev := range csvEvents {
			header = append(header, ev.String()+"_pki")
		}
		if provenance {
			header = append(header, "status", "attempts")
		}
		if err := cw.Write(header); err != nil {
			return err
		}
	}
	for i := offset; i < end; i++ {
		o := ds.Obs[i]
		row := []string{
			ds.Benchmark,
			strconv.FormatUint(o.LayoutSeed, 10),
			strconv.FormatUint(o.HeapSeed, 10),
			strconv.FormatUint(o.Cycles, 10),
			strconv.FormatUint(o.Instructions, 10),
			strconv.FormatFloat(o.CPI(), 'g', 10, 64),
		}
		for _, ev := range csvEvents {
			row = append(row, strconv.FormatFloat(o.PKI(ev), 'g', 10, 64))
		}
		if provenance {
			row = append(row, o.Status.String(), strconv.Itoa(o.Attempts))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Row is one parsed observation row of a dataset CSV.
type Row struct {
	Benchmark    string
	LayoutSeed   uint64
	HeapSeed     uint64
	Cycles       uint64
	Instructions uint64
	CPI          float64
	PKI          map[string]float64
	// Status and Attempts are the supervisor columns; CSVs written
	// before the supervisor existed parse with Status "" and Attempts 0.
	Status   string
	Attempts int
}

// ReadDatasetCSV parses a CSV written by WriteDatasetCSV.
func ReadDatasetCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("results: empty CSV")
	}
	header := records[0]
	if len(header) < 6 {
		return nil, fmt.Errorf("results: malformed header %v", header)
	}
	var rows []Row
	for _, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("results: row width %d, header width %d", len(rec), len(header))
		}
		row := Row{Benchmark: rec[0], PKI: map[string]float64{}}
		var errs [5]error
		row.LayoutSeed, errs[0] = strconv.ParseUint(rec[1], 10, 64)
		row.HeapSeed, errs[1] = strconv.ParseUint(rec[2], 10, 64)
		row.Cycles, errs[2] = strconv.ParseUint(rec[3], 10, 64)
		row.Instructions, errs[3] = strconv.ParseUint(rec[4], 10, 64)
		row.CPI, errs[4] = strconv.ParseFloat(rec[5], 64)
		for _, e := range errs {
			if e != nil {
				return nil, fmt.Errorf("results: bad row %v: %w", rec, e)
			}
		}
		for i := 6; i < len(header); i++ {
			switch header[i] {
			case "status":
				row.Status = rec[i]
			case "attempts":
				n, err := strconv.Atoi(rec[i])
				if err != nil {
					return nil, fmt.Errorf("results: bad attempts %q: %w", rec[i], err)
				}
				row.Attempts = n
			default:
				v, err := strconv.ParseFloat(rec[i], 64)
				if err != nil {
					return nil, fmt.Errorf("results: bad value %q in column %s: %w", rec[i], header[i], err)
				}
				row.PKI[header[i]] = v
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ModelSummary is the JSON-stable form of a fitted model.
type ModelSummary struct {
	Benchmark  string  `json:"benchmark"`
	Event      string  `json:"event"`
	Slope      float64 `json:"slope"`
	Intercept  float64 `json:"intercept"`
	R          float64 `json:"r"`
	R2         float64 `json:"r2"`
	PValue     float64 `json:"p_value"`
	N          int     `json:"n"`
	PerfectLow float64 `json:"perfect_low"`
	PerfectHi  float64 `json:"perfect_high"`
}

// SummarizeModel extracts the JSON-stable fields of a model.
func SummarizeModel(m *core.Model) ModelSummary {
	pi := m.PerfectPrediction()
	return ModelSummary{
		Benchmark:  m.Benchmark,
		Event:      m.Event.String(),
		Slope:      m.Fit.Slope,
		Intercept:  m.Fit.Intercept,
		R:          m.Fit.R,
		R2:         m.Fit.R2,
		PValue:     m.Fit.PValue,
		N:          m.Fit.N,
		PerfectLow: pi.Low,
		PerfectHi:  pi.High,
	}
}

// WriteJSON writes v as indented JSON.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
