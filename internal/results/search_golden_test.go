package results_test

import (
	"bytes"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/isa"
	"interferometry/internal/pmc"
	"interferometry/internal/results"
	"interferometry/internal/toolchain"
)

// goldenSearchResult is hand-built so the golden files pin the export
// format alone. Two generations of three individuals over a 2-unit
// program; one individual of generation 1 failed permanently.
func goldenSearchResult() *core.SearchResult {
	genome := func(units []int, procs ...[]isa.ProcID) toolchain.Genome {
		return toolchain.Genome{Units: units, Procs: procs}
	}
	obs := func(extra uint64, st core.ObsStatus, attempts int) core.Observation {
		o := core.Observation{LayoutSeed: 2000 + 2*extra, Status: st, Attempts: attempts}
		if st != core.StatusFailed {
			o.Instructions = 500_000
			o.Cycles = 300_000 + 40*extra
			o.Events[pmc.EvBranchMispredicts] = 800 * extra
			o.Events[pmc.EvL1IMisses] = 300 + 2*extra
			o.Events[pmc.EvL1DMisses] = 1100 + 5*extra
			o.Events[pmc.EvL2Misses] = 70 + extra
			o.Runs = 15
		}
		return o
	}
	g0 := core.GenerationResult{
		Gen:     0,
		BestIdx: 1,
		Individuals: []core.Individual{
			{Genome: genome([]int{0, 1}, []isa.ProcID{0, 1}, []isa.ProcID{2, 3}), Obs: obs(5, core.StatusOK, 1)},
			{Genome: genome([]int{1, 0}, []isa.ProcID{1, 0}, []isa.ProcID{2, 3}), Obs: obs(1, core.StatusOK, 1)},
			{Genome: genome([]int{0, 1}, []isa.ProcID{0, 1}, []isa.ProcID{3, 2}), Obs: obs(9, core.StatusRetried, 2)},
		},
	}
	g1 := core.GenerationResult{
		Gen:     1,
		BestIdx: 0,
		Individuals: []core.Individual{
			{Genome: genome([]int{1, 0}, []isa.ProcID{1, 0}, []isa.ProcID{2, 3}), Obs: obs(1, core.StatusOK, 1)},
			{Genome: genome([]int{1, 0}, []isa.ProcID{1, 0}, []isa.ProcID{3, 2}), Obs: obs(3, core.StatusOK, 1)},
			{Genome: genome([]int{0, 1}, []isa.ProcID{1, 0}, []isa.ProcID{2, 3}), Obs: obs(0, core.StatusFailed, 4)},
		},
	}
	g0.PopHash = "a0a0"
	g1.PopHash = "b1b1"
	return &core.SearchResult{
		Benchmark:      "golden.bench",
		Generations:    []core.GenerationResult{g0, g1},
		Best:           g1.Individuals[0],
		BestGen:        1,
		TrajectoryHash: "c2c2",
	}
}

func TestGoldenGenerationsCSV(t *testing.T) {
	res := goldenSearchResult()
	var buf bytes.Buffer
	if err := results.WriteGenerationsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "generations.golden.csv", buf.Bytes())

	// The paged form with the header only on the first page must
	// concatenate to the whole-trajectory bytes.
	var paged bytes.Buffer
	for gi := range res.Generations {
		if err := results.WriteGenerationsCSVRange(&paged, res.Benchmark, res.Generations[gi:gi+1], gi == 0, true); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), paged.Bytes()) {
		t.Error("paged generation export differs from the whole-trajectory export")
	}
}

// TestGoldenGenerationMeasurementsCSV pins the canonical form the chaos
// soak compares: scrubbing provenance must not change a byte.
func TestGoldenGenerationMeasurementsCSV(t *testing.T) {
	res := goldenSearchResult()
	var buf bytes.Buffer
	if err := results.WriteGenerationMeasurementsCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "generation_measurements.golden.csv", buf.Bytes())

	scrubbed := goldenSearchResult()
	for gi := range scrubbed.Generations {
		for i := range scrubbed.Generations[gi].Individuals {
			o := &scrubbed.Generations[gi].Individuals[i].Obs
			if o.Status == core.StatusRetried {
				o.Status = core.StatusOK
				o.Attempts = 1
			}
		}
	}
	var buf2 bytes.Buffer
	if err := results.WriteGenerationMeasurementsCSV(&buf2, scrubbed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("measurement export depends on provenance columns")
	}
}

func TestGoldenSearchSummaryJSON(t *testing.T) {
	res := goldenSearchResult()
	s := results.SummarizeSearch(res)
	if s.BestGen != 1 || s.Trajectory[1].Failed != 1 || s.Trajectory[1].Valid != 2 {
		t.Fatalf("summary miscounts: %+v", s)
	}
	s.Baseline = &results.SamplingBaseline{
		Seed: 99, N: 6, MedianCPI: 0.62, CILow: 0.60, CIHigh: 0.64,
		Improvement: 0.03, Beats: true,
	}
	var buf bytes.Buffer
	if err := results.WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "search_summary.golden.json", buf.Bytes())
}
