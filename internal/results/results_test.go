package results_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/pmc"
	"interferometry/internal/results"
	"interferometry/internal/testprog"
)

func dataset(t *testing.T) *core.Dataset {
	t.Helper()
	ds, err := core.RunCampaign(core.CampaignConfig{
		Program:   testprog.ManyBranches(100, 200),
		InputSeed: 1,
		Budget:    60000,
		Layouts:   8,
		BaseSeed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestCSVRoundTrip(t *testing.T) {
	ds := dataset(t)
	var buf bytes.Buffer
	if err := results.WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	rows, err := results.ReadDatasetCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ds.Obs) {
		t.Fatalf("%d rows, want %d", len(rows), len(ds.Obs))
	}
	for i, row := range rows {
		o := ds.Obs[i]
		if row.Benchmark != ds.Benchmark {
			t.Errorf("row %d benchmark %q", i, row.Benchmark)
		}
		if row.LayoutSeed != o.LayoutSeed || row.HeapSeed != o.HeapSeed {
			t.Errorf("row %d seeds differ", i)
		}
		if row.Cycles != o.Cycles || row.Instructions != o.Instructions {
			t.Errorf("row %d counts differ", i)
		}
		if math.Abs(row.CPI-o.CPI()) > 1e-9 {
			t.Errorf("row %d CPI %v vs %v", i, row.CPI, o.CPI())
		}
		if math.Abs(row.PKI["BR_MISP_RETIRED_pki"]-o.PKI(pmc.EvBranchMispredicts)) > 1e-6 {
			t.Errorf("row %d MPKI mismatch", i)
		}
	}
}

func TestReadDatasetCSVErrors(t *testing.T) {
	if _, err := results.ReadDatasetCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	bad := "benchmark,layout_seed,heap_seed,cycles,instructions,cpi\nx,notanumber,0,1,1,1.0\n"
	if _, err := results.ReadDatasetCSV(strings.NewReader(bad)); err == nil {
		t.Error("bad seed accepted")
	}
	short := "a,b\n1,2\n"
	if _, err := results.ReadDatasetCSV(strings.NewReader(short)); err == nil {
		t.Error("short header accepted")
	}
}

func TestSummarizeModel(t *testing.T) {
	ds := dataset(t)
	m, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	s := results.SummarizeModel(m)
	if s.Benchmark != ds.Benchmark || s.Event != "BR_MISP_RETIRED" {
		t.Errorf("summary identity wrong: %+v", s)
	}
	if s.Slope != m.Fit.Slope || s.N != len(ds.Obs) {
		t.Errorf("summary fields wrong: %+v", s)
	}
	if s.PerfectLow >= s.PerfectHi {
		t.Error("degenerate perfect interval")
	}
	var buf bytes.Buffer
	if err := results.WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var back results.ModelSummary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("JSON round trip changed summary")
	}
}
