package results

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"interferometry/internal/core"
)

// Layout-search exports: one CSV row per individual per generation, and
// a JSON summary of the trajectory. Like the dataset exports, the CSV
// comes in two forms — the full form with provenance columns, and a
// measurement-only canonical form whose bytes depend only on what was
// measured, which is what the chaos soak compares across a coordinator
// kill and restart.

// WriteGenerationsCSV writes every generation of a search result, one
// row per individual, with the status/attempts provenance columns.
func WriteGenerationsCSV(w io.Writer, res *core.SearchResult) error {
	return WriteGenerationsCSVRange(w, res.Benchmark, res.Generations, true, true)
}

// WriteGenerationMeasurementsCSV writes the measurement-only canonical
// form: fingerprints and counters without provenance, so a search
// disturbed by faults and retries exports byte-identical rows to an
// undisturbed one.
func WriteGenerationMeasurementsCSV(w io.Writer, res *core.SearchResult) error {
	return WriteGenerationsCSVRange(w, res.Benchmark, res.Generations, true, false)
}

// WriteGenerationsCSVRange writes a contiguous run of settled
// generations. Pages written with the header only on the first
// generation concatenate to exactly the bytes of the whole-trajectory
// export, which lets campaignd stream a search's generations as they
// settle.
func WriteGenerationsCSVRange(w io.Writer, benchmark string, gens []core.GenerationResult, withHeader, provenance bool) error {
	cw := csv.NewWriter(w)
	if withHeader {
		cols := []string{"benchmark", "gen", "idx", "fingerprint", "cycles", "instructions", "cpi"}
		for _, ev := range csvEvents {
			cols = append(cols, ev.String()+"_pki")
		}
		if provenance {
			cols = append(cols, "status", "attempts")
		}
		if err := cw.Write(cols); err != nil {
			return err
		}
	}
	for gi := range gens {
		g := &gens[gi]
		for i := range g.Individuals {
			in := &g.Individuals[i]
			o := &in.Obs
			row := []string{
				benchmark,
				strconv.Itoa(g.Gen),
				strconv.Itoa(i),
				fmt.Sprintf("%016x", in.Genome.Fingerprint()),
				strconv.FormatUint(o.Cycles, 10),
				strconv.FormatUint(o.Instructions, 10),
				strconv.FormatFloat(o.CPI(), 'g', 10, 64),
			}
			for _, ev := range csvEvents {
				row = append(row, strconv.FormatFloat(o.PKI(ev), 'g', 10, 64))
			}
			if provenance {
				row = append(row, o.Status.String(), strconv.Itoa(o.Attempts))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SearchSummary is the JSON-stable form of a search result: the best
// layout found, the sampling baseline it is compared against when one
// was run, and the per-generation trajectory.
type SearchSummary struct {
	Benchmark   string `json:"benchmark"`
	Population  int    `json:"population"`
	Generations int    `json:"generations"`

	BestFingerprint string  `json:"best_fingerprint"`
	BestGen         int     `json:"best_gen"`
	BestCPI         float64 `json:"best_cpi"`
	TrajectoryHash  string  `json:"trajectory_hash"`

	Trajectory []GenerationSummary `json:"trajectory"`

	// Baseline is the random-sampling comparison, present when the
	// caller ran one (layoutopt does; the service report omits it).
	Baseline *SamplingBaseline `json:"baseline,omitempty"`
}

// GenerationSummary is one settled generation's JSON row.
type GenerationSummary struct {
	Gen             int     `json:"gen"`
	BestFingerprint string  `json:"best_fingerprint"`
	BestCPI         float64 `json:"best_cpi"`
	Valid           int     `json:"valid"`
	Failed          int     `json:"failed"`
	PopHash         string  `json:"pop_hash"`
}

// SamplingBaseline reports the random-sampling distribution a search is
// measured against: the median CPI of n held-out-seed layouts with its
// bootstrap confidence interval, and the search's improvement over it.
type SamplingBaseline struct {
	Seed        uint64  `json:"seed"`
	N           int     `json:"n"`
	MedianCPI   float64 `json:"median_cpi"`
	CILow       float64 `json:"ci_low"`
	CIHigh      float64 `json:"ci_high"`
	Improvement float64 `json:"improvement"` // (median - best) / median
	Beats       bool    `json:"beats_median"`
}

// SummarizeSearch extracts the JSON-stable fields of a search result.
func SummarizeSearch(res *core.SearchResult) SearchSummary {
	s := SearchSummary{
		Benchmark:       res.Benchmark,
		Population:      len(res.Generations[0].Individuals),
		Generations:     len(res.Generations),
		BestFingerprint: fmt.Sprintf("%016x", res.Best.Genome.Fingerprint()),
		BestGen:         res.BestGen,
		BestCPI:         res.Best.Obs.CPI(),
		TrajectoryHash:  res.TrajectoryHash,
	}
	for gi := range res.Generations {
		g := &res.Generations[gi]
		valid, failed := 0, 0
		for i := range g.Individuals {
			if g.Individuals[i].Obs.Status == core.StatusFailed {
				failed++
			} else {
				valid++
			}
		}
		best := g.Best()
		s.Trajectory = append(s.Trajectory, GenerationSummary{
			Gen:             g.Gen,
			BestFingerprint: fmt.Sprintf("%016x", best.Genome.Fingerprint()),
			BestCPI:         best.Obs.CPI(),
			Valid:           valid,
			Failed:          failed,
			PopHash:         g.PopHash,
		})
	}
	return s
}
