package results_test

import (
	"strings"
	"testing"

	"interferometry/internal/results"
)

// FuzzReadDatasetCSV ensures arbitrary byte soup never panics the parser:
// it either parses or returns an error.
func FuzzReadDatasetCSV(f *testing.F) {
	f.Add("benchmark,layout_seed,heap_seed,cycles,instructions,cpi\nx,1,2,3,4,5.0\n")
	f.Add("")
	f.Add("a,b,c\n1,2\n")
	f.Add("benchmark,layout_seed,heap_seed,cycles,instructions,cpi,MPKI_pki\nx,1,2,3,4,5.0,nan\n")
	f.Fuzz(func(t *testing.T, input string) {
		rows, err := results.ReadDatasetCSV(strings.NewReader(input))
		if err == nil {
			// Parsed rows must carry the declared widths.
			for _, r := range rows {
				if r.PKI == nil {
					t.Fatal("parsed row with nil PKI map")
				}
			}
		}
	})
}
