package results_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"interferometry/internal/core"
	"interferometry/internal/pmc"
	"interferometry/internal/results"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenDataset is hand-built rather than measured so the golden files
// pin the export format alone, not the interpreter or machine model.
// Two layouts failed permanently: their rows carry zeroed counters,
// status "failed" and the attempts that were burned, and the fit must
// exclude them (EffectiveN = 6).
func goldenDataset() *core.Dataset {
	obs := func(layout, heap, extra uint64, st core.ObsStatus, attempts int) core.Observation {
		o := core.Observation{LayoutSeed: layout, HeapSeed: heap, Status: st, Attempts: attempts}
		if st != core.StatusFailed {
			o.Instructions = 1_000_000
			o.Cycles = 600_000 + 30*extra + 5*(extra%3)
			o.Events[pmc.EvBranchMispredicts] = 1000 * extra
			o.Events[pmc.EvL1IMisses] = 400 + 3*extra
			o.Events[pmc.EvL1DMisses] = 2200 + 7*extra
			o.Events[pmc.EvL2Misses] = 90 + extra
			o.Runs = 15
		}
		return o
	}
	return &core.Dataset{
		Benchmark: "golden.bench",
		Obs: []core.Observation{
			obs(101, 11, 4, core.StatusOK, 1),
			obs(103, 13, 9, core.StatusOK, 1),
			obs(105, 15, 2, core.StatusRetried, 3),
			obs(107, 17, 0, core.StatusFailed, 4),
			obs(109, 19, 7, core.StatusOK, 1),
			obs(111, 21, 5, core.StatusOK, 2),
			obs(113, 23, 0, core.StatusFailed, 4),
			obs(115, 25, 12, core.StatusOK, 1),
		},
		Failures: []core.LayoutFailure{
			{Index: 3, LayoutSeed: 107, Err: "run: counter overflow"},
			{Index: 6, LayoutSeed: 113, Err: "compile: fault injected"},
		},
	}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenDatasetCSV(t *testing.T) {
	ds := goldenDataset()
	if n := ds.EffectiveN(); n != 6 {
		t.Fatalf("EffectiveN = %d, want 6", n)
	}
	var buf bytes.Buffer
	if err := results.WriteDatasetCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "dataset.golden.csv", buf.Bytes())

	// The degraded rows must still round-trip through the reader.
	rows, err := results.ReadDatasetCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, r := range rows {
		if r.Status == core.StatusFailed.String() {
			failed++
			if r.Cycles != 0 || r.CPI != 0 {
				t.Errorf("failed row %d carries counters: %+v", r.LayoutSeed, r)
			}
			if r.Attempts != 4 {
				t.Errorf("failed row %d attempts = %d, want 4", r.LayoutSeed, r.Attempts)
			}
		}
	}
	if failed != 2 {
		t.Errorf("%d failed rows in export, want 2", failed)
	}
}

// TestGoldenMeasurementsCSV pins the measurement-only canonical export:
// the same rows as the full dataset CSV but without the status/attempts
// provenance columns, so a retried row is indistinguishable from a
// first-attempt one — the byte-identity form the campaignd chaos soak
// compares.
func TestGoldenMeasurementsCSV(t *testing.T) {
	ds := goldenDataset()
	var buf bytes.Buffer
	if err := results.WriteMeasurementsCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "measurements.golden.csv", buf.Bytes())

	// Scrubbing provenance must be the only difference: a dataset whose
	// retried/failed statuses are rewritten exports identical bytes.
	scrubbed := goldenDataset()
	for i := range scrubbed.Obs {
		scrubbed.Obs[i].Status = core.StatusOK
		scrubbed.Obs[i].Attempts = 1
	}
	var buf2 bytes.Buffer
	if err := results.WriteMeasurementsCSV(&buf2, scrubbed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("measurement export depends on provenance columns")
	}
}

func TestGoldenModelJSON(t *testing.T) {
	ds := goldenDataset()
	m, err := ds.MPKIModel()
	if err != nil {
		t.Fatal(err)
	}
	s := results.SummarizeModel(m)
	// The fit must run on the effective sample, not the raw row count.
	if s.N != ds.EffectiveN() {
		t.Fatalf("model N = %d, want EffectiveN %d", s.N, ds.EffectiveN())
	}
	var buf bytes.Buffer
	if err := results.WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "model.golden.json", buf.Bytes())
}
