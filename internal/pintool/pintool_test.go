package pintool_test

import (
	"reflect"
	"testing"

	"interferometry/internal/interp"
	"interferometry/internal/pintool"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

func fixtures(t *testing.T) (*interp.Trace, *toolchain.Executable) {
	t.Helper()
	p := testprog.ManyBranches(120, 300)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 150000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 3, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, exe
}

func facs() []branch.Factory {
	return []branch.Factory{
		{Name: "perfect", New: func() branch.Predictor { return branch.Perfect{} }},
		{Name: "bimodal-64", New: func() branch.Predictor { return branch.NewBimodal(64) }},
		{Name: "l-tage", New: func() branch.Predictor { return branch.NewLTAGEDefault() }},
	}
}

func TestRunBasic(t *testing.T) {
	tr, exe := fixtures(t)
	rs, err := pintool.Run(tr, exe, facs(), pintool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	for _, r := range rs {
		if r.Instructions != tr.Instrs {
			t.Errorf("%s: instructions %d != trace %d", r.Name, r.Instructions, tr.Instrs)
		}
		if r.CondBranches != tr.CondBranches {
			t.Errorf("%s: cond branches %d != trace %d", r.Name, r.CondBranches, tr.CondBranches)
		}
	}
	if rs[0].CondMispredicts != 0 || rs[0].MPKI() != 0 {
		t.Error("perfect predictor should have zero mispredictions")
	}
	if rs[1].CondMispredicts == 0 {
		t.Error("tiny bimodal should mispredict")
	}
	if rs[2].CondMispredicts >= rs[1].CondMispredicts {
		t.Errorf("L-TAGE (%d) should beat bimodal-64 (%d)",
			rs[2].CondMispredicts, rs[1].CondMispredicts)
	}
}

func TestRunNoVariance(t *testing.T) {
	// "Pin runs only once for each reordering; since we control the
	// initial conditions... there is no variance in the simulation
	// result" (§7.2).
	tr, exe := fixtures(t)
	a, err := pintool.Run(tr, exe, facs(), pintool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pintool.Run(tr, exe, facs(), pintool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("pintool results vary between identical runs")
	}
}

func TestRunLayoutSensitivity(t *testing.T) {
	// Different code layouts must yield different misprediction counts
	// for a finite predictor (aliasing changes), but identical branch
	// counts (semantics unchanged).
	p := testprog.ManyBranches(300, 300)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		t.Fatal(err)
	}
	fac := []branch.Factory{{Name: "gas-2KB", New: func() branch.Predictor { return branch.GAsBudget(2048) }}}
	counts := map[uint64]bool{}
	for seed := uint64(1); seed <= 10; seed++ {
		exe, err := toolchain.BuildLayout(p, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := pintool.Run(tr, exe, fac, pintool.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].CondBranches != tr.CondBranches {
			t.Fatal("layout changed branch count")
		}
		counts[rs[0].CondMispredicts] = true
	}
	if len(counts) < 2 {
		t.Error("10 layouts gave identical misprediction counts; no aliasing sensitivity")
	}
}

func TestRunErrors(t *testing.T) {
	tr, exe := fixtures(t)
	if _, err := pintool.Run(nil, exe, facs(), pintool.Config{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := pintool.Run(tr, nil, facs(), pintool.Config{}); err == nil {
		t.Error("nil exe accepted")
	}
	if _, err := pintool.Run(tr, exe, nil, pintool.Config{}); err == nil {
		t.Error("empty factory list accepted")
	}
	other := testprog.Counting(3)
	otherTr, err := interp.Run(other, 1, interp.StopRule{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pintool.Run(otherTr, exe, facs(), pintool.Config{}); err == nil {
		t.Error("cross-program trace accepted")
	}
}

func TestIndirectHandling(t *testing.T) {
	p := testprog.Branchy() // has an indirect call
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 30000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := pintool.Run(tr, exe, facs(), pintool.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rs[1].IndirectBranches != tr.IndirectCalls {
		t.Errorf("indirect count %d != trace %d", rs[1].IndirectBranches, tr.IndirectCalls)
	}
	// The Branchy indirect call is polymorphic (two targets), so a BTB
	// must mispredict sometimes.
	if rs[1].IndirectMispreds == 0 {
		t.Error("polymorphic indirect call never mispredicted")
	}
	// The perfect predictor reports no indirect mispredictions either.
	if rs[0].IndirectMispreds != 0 {
		t.Error("perfect predictor should report zero indirect mispredictions")
	}
}

func TestResultDerived(t *testing.T) {
	r := pintool.Result{
		Instructions:    1000,
		CondBranches:    100,
		CondMispredicts: 10,
	}
	if r.MPKI() != 10 {
		t.Errorf("MPKI = %v", r.MPKI())
	}
	if r.CondAccuracy() != 0.9 {
		t.Errorf("CondAccuracy = %v", r.CondAccuracy())
	}
	var zero pintool.Result
	if zero.MPKI() != 0 || zero.CondAccuracy() != 1 {
		t.Error("zero-value result derived metrics wrong")
	}
}
