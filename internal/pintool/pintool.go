// Package pintool is the functional (no-timing) branch instrumentation
// layer, modeled on the paper's Pin tool: "our Pin tool instruments each
// branch with a callback to code that simulates a set of branch
// predictors. The tool counts the number of branches executed and the
// number of branches mispredicted for each predictor simulated" (§5.6,
// §7.1). Because it replays the deterministic trace with no noise model,
// "there is no variance in the simulation result" (§7.2) — a property the
// tests assert.
package pintool

import (
	"errors"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// Result is the misprediction outcome for one simulated predictor on one
// executable.
type Result struct {
	Name             string
	Instructions     uint64
	CondBranches     uint64
	CondMispredicts  uint64
	IndirectBranches uint64
	IndirectMispreds uint64
}

// MPKI returns total branch mispredictions (conditional direction plus
// indirect target) per 1000 instructions, comparable to the machine's
// "retired branches mispredicted" counter.
func (r Result) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.CondMispredicts+r.IndirectMispreds) / float64(r.Instructions) * 1000
}

// CondAccuracy returns the fraction of conditional branches predicted
// correctly.
func (r Result) CondAccuracy() float64 {
	if r.CondBranches == 0 {
		return 1
	}
	return 1 - float64(r.CondMispredicts)/float64(r.CondBranches)
}

// Config controls the shared indirect-target model.
type Config struct {
	// BTBSets/BTBWays size the BTB simulated alongside every conditional
	// predictor. Zeros mean 512x4, matching the machine model.
	BTBSets, BTBWays int
	// Warmup replays the trace once, training the predictors without
	// counting, before the measured pass. Large tables (a 16KB GAs, a
	// full L-TAGE) need far more training than a short trace provides;
	// warmup removes the cold-start bias so predictor comparisons reflect
	// steady state, as the paper's minutes-long Pin runs did.
	Warmup bool
}

func (c *Config) fillDefaults() {
	if c.BTBSets == 0 {
		c.BTBSets = 512
	}
	if c.BTBWays == 0 {
		c.BTBWays = 4
	}
}

// Run replays the trace once, feeding every conditional branch to each
// predictor built by the factories and every indirect call to a BTB
// (shared across predictors, since the conditional predictor does not
// influence it). Oracle predictors record zero mispredictions.
func Run(tr *interp.Trace, exe *toolchain.Executable, factories []branch.Factory, cfg Config) ([]Result, error) {
	if tr == nil || exe == nil {
		return nil, errors.New("pintool: nil trace or executable")
	}
	if tr.Program != exe.Program {
		return nil, errors.New("pintool: trace and executable are from different programs")
	}
	if len(factories) == 0 {
		return nil, errors.New("pintool: no predictors to simulate")
	}
	cfg.fillDefaults()

	preds := make([]branch.Predictor, len(factories))
	oracle := make([]bool, len(factories))
	results := make([]Result, len(factories))
	for i, f := range factories {
		preds[i] = f.New()
		_, oracle[i] = preds[i].(branch.Oracle)
		results[i].Name = f.Name
		results[i].Instructions = tr.Instrs
	}
	btb := branch.NewBTB(cfg.BTBSets, cfg.BTBWays)

	prog := exe.Program
	var cond, indirect, indirectMiss uint64
	passes := 1
	if cfg.Warmup {
		passes = 2
	}
	for pass := 0; pass < passes; pass++ {
		counting := pass == passes-1
		cur := tr.NewCursor()
		for {
			bid, ok := cur.NextBlock()
			if !ok {
				break
			}
			b := &prog.Blocks[bid]
			switch b.Term.Kind {
			case isa.TermCondBranch:
				taken := cur.NextTaken()
				pc := exe.TermAddr(bid)
				if counting {
					cond++
				}
				for i, p := range preds {
					if oracle[i] {
						continue
					}
					if p.Predict(pc) != taken && counting {
						results[i].CondMispredicts++
					}
					p.Update(pc, taken)
				}
			case isa.TermIndirectCall:
				sel := cur.NextIndirect()
				target := exe.ProcAddr[b.Term.Callees[sel]]
				correct := btb.Predict(exe.TermAddr(bid), target)
				if counting {
					indirect++
					if !correct {
						indirectMiss++
					}
				}
			}
		}
	}
	for i := range results {
		results[i].CondBranches = cond
		results[i].IndirectBranches = indirect
		results[i].IndirectMispreds = indirectMiss
		if oracle[i] {
			results[i].IndirectMispreds = 0
		}
	}
	return results, nil
}
