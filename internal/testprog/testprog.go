// Package testprog builds small hand-written isa.Programs for tests and
// documentation examples. The programs are deliberately tiny and fully
// understood, unlike the generated suite in internal/progen, so tests can
// assert exact behaviour.
package testprog

import "interferometry/internal/isa"

// Counting returns a program with a single procedure:
//
//	main:
//	  b0: 4 ALU instrs; cond loop-back branch to b0 (trip = trip)
//	  b1: 1 ALU instr; return
//
// Each loop iteration retires 5 instructions (4 ALU + branch); the final
// not-taken iteration flows into b1 which retires 2 more (ALU + return),
// and main restarts.
func Counting(trip uint64) *isa.Program {
	return &isa.Program{
		Name: "testprog.counting",
		Seed: 1,
		Procs: []isa.Procedure{
			{Name: "main", Blocks: []isa.BlockID{0, 1}},
		},
		Blocks: []isa.Block{
			{
				Proc:        0,
				ClassCounts: counts(4, 0, 0, 0),
				Bytes:       20,
				Term: isa.Terminator{
					Kind:     isa.TermCondBranch,
					Target:   0,
					Behavior: isa.Loop{Trip: trip},
				},
			},
			{
				Proc:        0,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       8,
				Term:        isa.Terminator{Kind: isa.TermReturn},
			},
		},
		Main: 0,
	}
}

// CallChain returns a program where main calls helper in a loop:
//
//	main:   b0: call helper; b1: cond loop-back to b0 (trip), b2: return
//	helper: b3: 3 ALU; return
func CallChain(trip uint64) *isa.Program {
	return &isa.Program{
		Name: "testprog.callchain",
		Seed: 2,
		Procs: []isa.Procedure{
			{Name: "main", Blocks: []isa.BlockID{0, 1, 2}},
			{Name: "helper", Blocks: []isa.BlockID{3}},
		},
		Blocks: []isa.Block{
			{
				Proc:        0,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       12,
				Term:        isa.Terminator{Kind: isa.TermCall, Callee: 1},
			},
			{
				Proc:        0,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       10,
				Term: isa.Terminator{
					Kind:     isa.TermCondBranch,
					Target:   0,
					Behavior: isa.Loop{Trip: trip},
				},
			},
			{
				Proc:        0,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       6,
				Term:        isa.Terminator{Kind: isa.TermReturn},
			},
			{
				Proc:        1,
				ClassCounts: counts(3, 0, 0, 0),
				Bytes:       16,
				Term:        isa.Terminator{Kind: isa.TermReturn},
			},
		},
		Main: 0,
	}
}

// Memory returns a program that streams through a global array and chases
// through a pool of heap objects, with a churn site that reallocates pool
// members. Layout of the pool objects is decided by the heap allocator, so
// this program is the unit-test vehicle for data-layout perturbation.
//
//	objects: 0 = 4KB global array, 1..4 = 1KB heap objects
//	main: b0: alloc all heap objects (prologue), fallthrough
//	      b1: 2 ALU; load stream over global; load chase over pool;
//	          churn-realloc one pool object; cond loop to b1 (trip)
//	      b2: return
func Memory(trip uint64) *isa.Program {
	pool := []isa.ObjectID{1, 2, 3, 4}
	return &isa.Program{
		Name: "testprog.memory",
		Seed: 3,
		Procs: []isa.Procedure{
			{Name: "main", Blocks: []isa.BlockID{0, 1, 2}},
		},
		Blocks: []isa.Block{
			{
				Proc:        0,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       10,
				Allocs: []isa.AllocOp{
					{Kind: isa.AllocNew, Pool: []isa.ObjectID{1}},
					{Kind: isa.AllocNew, Pool: []isa.ObjectID{2}},
					{Kind: isa.AllocNew, Pool: []isa.ObjectID{3}},
					{Kind: isa.AllocNew, Pool: []isa.ObjectID{4}},
				},
				Term: isa.Terminator{Kind: isa.TermFallthrough},
			},
			{
				Proc:        0,
				ClassCounts: counts(2, 0, 0, 0),
				Bytes:       30,
				Mems: []isa.MemOp{
					{Kind: isa.MemLoad, Pattern: isa.Stream{Object: 0, Stride: 8, Size: 4096}},
					{Kind: isa.MemLoad, Pattern: isa.PoolChase{Pool: pool, ObjSize: 1024, Skew: 1.0, Granule: 8}},
					{Kind: isa.MemStore, Pattern: isa.RandomInObject{Object: 0, Size: 4096, Granule: 8}},
				},
				Allocs: []isa.AllocOp{
					{Kind: isa.AllocNew, Pool: pool},
				},
				Term: isa.Terminator{
					Kind:     isa.TermCondBranch,
					Target:   1,
					Behavior: isa.Loop{Trip: trip},
				},
			},
			{
				Proc:        0,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       6,
				Term:        isa.Terminator{Kind: isa.TermReturn},
			},
		},
		Objects: []isa.ObjectMeta{
			{Size: 4096, Heap: false},
			{Size: 1024, Heap: true},
			{Size: 1024, Heap: true},
			{Size: 1024, Heap: true},
			{Size: 1024, Heap: true},
		},
		Main: 0,
	}
}

// Branchy returns a program with a mix of branch behaviours across two
// procedures, including an indirect call — the unit-test vehicle for
// branch-predictor models.
//
//	main:  b0: cond (biased 0.7) to b2; b1: cond (correlated) loop to b0;
//	       b2: indirect call to f or g; b3: cond (pattern) loop to b0;
//	       b4: return
//	f: b5: 2 ALU; return
//	g: b6: 5 ALU; return
func Branchy() *isa.Program {
	return &isa.Program{
		Name: "testprog.branchy",
		Seed: 4,
		Procs: []isa.Procedure{
			{Name: "main", Blocks: []isa.BlockID{0, 1, 2, 3, 4}},
			{Name: "f", Blocks: []isa.BlockID{5}},
			{Name: "g", Blocks: []isa.BlockID{6}},
		},
		Blocks: []isa.Block{
			{
				Proc: 0, ClassCounts: counts(2, 1, 0, 0), Bytes: 18,
				Term: isa.Terminator{Kind: isa.TermCondBranch, Target: 2, Behavior: isa.Biased{P: 0.7}},
			},
			{
				Proc: 0, ClassCounts: counts(1, 0, 1, 0), Bytes: 14,
				Term: isa.Terminator{Kind: isa.TermCondBranch, Target: 0, Behavior: isa.Correlated{Mask: 0x5, Noise: 0.02}},
			},
			{
				Proc: 0, ClassCounts: counts(1, 0, 0, 0), Bytes: 9,
				Term: isa.Terminator{Kind: isa.TermIndirectCall, Callees: []isa.ProcID{1, 2}, Behavior: isa.Biased{P: 0.8}},
			},
			{
				Proc: 0, ClassCounts: counts(2, 0, 0, 1), Bytes: 22,
				Term: isa.Terminator{Kind: isa.TermCondBranch, Target: 0, Behavior: isa.Pattern{Bits: 0b0110, Len: 4}},
			},
			{
				Proc: 0, ClassCounts: counts(1, 0, 0, 0), Bytes: 4,
				Term: isa.Terminator{Kind: isa.TermReturn},
			},
			{
				Proc: 1, ClassCounts: counts(2, 0, 0, 0), Bytes: 10,
				Term: isa.Terminator{Kind: isa.TermReturn},
			},
			{
				Proc: 2, ClassCounts: counts(5, 0, 0, 0), Bytes: 26,
				Term: isa.Terminator{Kind: isa.TermReturn},
			},
		},
		Main: 0,
	}
}

// ManyBranches returns a program with nProcs procedures, each containing
// a biased conditional branch, all called from a main loop. With a few
// hundred procedures the program has enough static branches to alias in
// predictor tables and enough code bytes to stress a 32KB L1I, so code
// layout perturbs its performance — the test vehicle for
// interferometry-scale layout sensitivity.
func ManyBranches(nProcs int, trip uint64) *isa.Program {
	p := &isa.Program{
		Name: "testprog.manybranches",
		Seed: 7,
		Main: 0,
	}
	// main: one call block per procedure, then a loop-back branch.
	mainBlocks := make([]isa.BlockID, 0, nProcs+2)
	for i := 0; i < nProcs; i++ {
		mainBlocks = append(mainBlocks, isa.BlockID(len(p.Blocks)))
		p.Blocks = append(p.Blocks, isa.Block{
			Proc:        0,
			ClassCounts: counts(1, 0, 0, 0),
			Bytes:       9,
			Term:        isa.Terminator{Kind: isa.TermCall, Callee: isa.ProcID(i + 1)},
		})
	}
	loopBlk := isa.BlockID(len(p.Blocks))
	mainBlocks = append(mainBlocks, loopBlk)
	p.Blocks = append(p.Blocks, isa.Block{
		Proc:        0,
		ClassCounts: counts(1, 0, 0, 0),
		Bytes:       10,
		Term: isa.Terminator{
			Kind:     isa.TermCondBranch,
			Target:   mainBlocks[0],
			Behavior: isa.Loop{Trip: trip},
		},
	})
	mainBlocks = append(mainBlocks, isa.BlockID(len(p.Blocks)))
	p.Blocks = append(p.Blocks, isa.Block{
		Proc:        0,
		ClassCounts: counts(1, 0, 0, 0),
		Bytes:       4,
		Term:        isa.Terminator{Kind: isa.TermReturn},
	})
	p.Procs = append(p.Procs, isa.Procedure{Name: "main", Blocks: mainBlocks})

	// Each callee: A (biased cond skipping B), B (filler), C (return).
	for i := 0; i < nProcs; i++ {
		pid := isa.ProcID(i + 1)
		a := isa.BlockID(len(p.Blocks))
		bias := 0.05 + 0.9*float64(i%7)/6 // varied biases across branches
		p.Blocks = append(p.Blocks,
			isa.Block{
				Proc:        pid,
				ClassCounts: counts(3, 0, 0, 0),
				Bytes:       40 + uint32(i%5)*8,
				Term: isa.Terminator{
					Kind:     isa.TermCondBranch,
					Target:   a + 2,
					Behavior: isa.Biased{P: bias},
				},
			},
			isa.Block{
				Proc:        pid,
				ClassCounts: counts(6, 1, 0, 0),
				Bytes:       70 + uint32(i%11)*6,
				Term:        isa.Terminator{Kind: isa.TermFallthrough},
			},
			isa.Block{
				Proc:        pid,
				ClassCounts: counts(1, 0, 0, 0),
				Bytes:       12,
				Term:        isa.Terminator{Kind: isa.TermReturn},
			},
		)
		p.Procs = append(p.Procs, isa.Procedure{
			Name:   "callee" + itoa(i),
			Blocks: []isa.BlockID{a, a + 1, a + 2},
		})
	}
	return p
}

// CacheStress returns a program whose data working set is dominated by
// many small heap objects, so that the randomizing allocator's placement
// decisions change L1D conflict misses — the test vehicle for
// data-layout sensitivity (§1.3).
func CacheStress(nObjects int, trip uint64) *isa.Program {
	const objSize = 256
	p := &isa.Program{
		Name: "testprog.cachestress",
		Seed: 8,
		Main: 0,
	}
	pool := make([]isa.ObjectID, nObjects)
	for i := range pool {
		pool[i] = isa.ObjectID(i + 1)
		p.Objects = append(p.Objects, isa.ObjectMeta{Size: objSize, Heap: true})
	}
	// Object 0 is a small global, placed by the linker.
	p.Objects = append([]isa.ObjectMeta{{Size: 4096, Heap: false}}, p.Objects...)
	for i := range pool {
		pool[i] = isa.ObjectID(i + 1)
	}
	prologue := isa.Block{
		Proc:        0,
		ClassCounts: counts(1, 0, 0, 0),
		Bytes:       10,
		Term:        isa.Terminator{Kind: isa.TermFallthrough},
	}
	for _, obj := range pool {
		prologue.Allocs = append(prologue.Allocs, isa.AllocOp{Kind: isa.AllocNew, Pool: []isa.ObjectID{obj}})
	}
	loop := isa.Block{
		Proc:        0,
		ClassCounts: counts(3, 0, 1, 0),
		Bytes:       60,
		Mems: []isa.MemOp{
			{Kind: isa.MemLoad, Pattern: isa.PoolChase{Pool: pool, ObjSize: objSize, Skew: 0.4, Granule: 8}},
			{Kind: isa.MemLoad, Pattern: isa.PoolChase{Pool: pool, ObjSize: objSize, Skew: 0.4, Granule: 8}},
			{Kind: isa.MemLoad, Pattern: isa.PoolChase{Pool: pool, ObjSize: objSize, Skew: 0.4, Granule: 8}},
			{Kind: isa.MemStore, Pattern: isa.Stream{Object: 0, Stride: 8, Size: 4096}},
		},
		Term: isa.Terminator{Kind: isa.TermCondBranch, Target: 1, Behavior: isa.Loop{Trip: trip}},
	}
	end := isa.Block{
		Proc:        0,
		ClassCounts: counts(1, 0, 0, 0),
		Bytes:       4,
		Term:        isa.Terminator{Kind: isa.TermReturn},
	}
	p.Blocks = []isa.Block{prologue, loop, end}
	p.Procs = []isa.Procedure{{Name: "main", Blocks: []isa.BlockID{0, 1, 2}}}
	return p
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func counts(intALU, intMul, fpAdd, fpMul uint16) [isa.NumInstrClasses]uint16 {
	var c [isa.NumInstrClasses]uint16
	c[isa.ClassIntALU] = intALU
	c[isa.ClassIntMul] = intMul
	c[isa.ClassFPAdd] = fpAdd
	c[isa.ClassFPMul] = fpMul
	return c
}
