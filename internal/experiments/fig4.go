package experiments

import (
	"fmt"
	"sort"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/uarch/branch"
)

// Fig4Result reproduces Figure 4: for every benchmark of the simulation
// suite, the percent error of estimating perfect-prediction CPI and
// L-TAGE CPI by linear regression over a sweep of imperfect predictor
// configurations (§3.2). The paper reports a 1.32% average error for
// perfect prediction and under 0.3% for L-TAGE.
type Fig4Result struct {
	// PerBenchmark is ordered by ascending perfect-prediction error, like
	// the figure's x axis.
	PerBenchmark []*core.LinearityResult
	// AvgPerfectErrPct and AvgLTAGEErrPct are the headline averages.
	AvgPerfectErrPct float64
	AvgLTAGEErrPct   float64
}

// Figure4 runs the linearity study over the simulation suite.
func Figure4(ctx *Context) (*Fig4Result, error) {
	configs := branch.ConfigSpace(ctx.Scale.Configs)
	res := &Fig4Result{}
	for _, spec := range progen.SimSuite() {
		prog, err := progen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", spec.Name, err)
		}
		lr, err := core.RunLinearityStudy(core.LinearityConfig{
			Program:   prog,
			InputSeed: 1,
			Budget:    ctx.Scale.SimBudget,
			Configs:   configs,
			Workers:   ctx.Workers,
			Obs:       ctx.Obs,
		})
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", spec.Name, err)
		}
		res.PerBenchmark = append(res.PerBenchmark, lr)
	}
	sort.Slice(res.PerBenchmark, func(i, j int) bool {
		return res.PerBenchmark[i].PerfectErrPct < res.PerBenchmark[j].PerfectErrPct
	})
	var pe, le []float64
	for _, lr := range res.PerBenchmark {
		pe = append(pe, lr.PerfectErrPct)
		le = append(le, lr.LTAGEErrPct)
	}
	res.AvgPerfectErrPct = stats.Mean(pe)
	res.AvgLTAGEErrPct = stats.Mean(le)
	return res, nil
}

// Render prints the per-benchmark error bars and the averages.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: % error estimating perfect and L-TAGE CPI by linear regression\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %10s %10s\n",
		"benchmark", "perfect-err%", "l-tage-err%", "r²", "configs")
	for _, lr := range r.PerBenchmark {
		fmt.Fprintf(&b, "%-16s %12.2f %12.2f %10.3f %10d\n",
			lr.Benchmark, lr.PerfectErrPct, lr.LTAGEErrPct, lr.Fit.R2, len(lr.Points))
	}
	fmt.Fprintf(&b, "%-16s %12.2f %12.2f   (paper: 1.32%% and <0.3%%)\n",
		"AVERAGE", r.AvgPerfectErrPct, r.AvgLTAGEErrPct)
	return b.String()
}
