package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/uarch/cache"
)

// ExtICacheBenchmark is the benchmark of the instruction-cache extension:
// the most L1I-blamed benchmark of the suite (Figure 6 attributes the
// bulk of gobmk's CPI variance to L1I misses).
const ExtICacheBenchmark = "445.gobmk"

// ICacheCandidates are the hypothetical instruction-cache geometries the
// extension evaluates; the 32KB 8-way entry is the modeled machine's own
// cache, which doubles as the validation point.
func ICacheCandidates() []cache.Config {
	return []cache.Config{
		{Name: "L1I-8KB-4w", SizeBytes: 8 * 1024, LineBytes: 64, Ways: 4},
		{Name: "L1I-16KB-8w", SizeBytes: 16 * 1024, LineBytes: 64, Ways: 8},
		{Name: "L1I-32KB-8w", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8},
		{Name: "L1I-64KB-8w", SizeBytes: 64 * 1024, LineBytes: 64, Ways: 8},
		{Name: "L1I-128KB-8w", SizeBytes: 128 * 1024, LineBytes: 64, Ways: 8},
	}
}

// ExtICacheResult is the instruction-cache interferometry study: the
// paper's §8 future work ("in future work we will extend this technique
// to other structures") realized with the same pipeline — fit CPI against
// L1I misses across layouts, simulate only the candidate caches, and map
// their miss rates through the model.
type ExtICacheResult struct {
	Benchmark string
	Model     *core.Model
	// MeasuredMPKI is the real cache's mean L1I MPKI; measured CPI comes
	// with its confidence interval.
	MeasuredMPKI float64
	MeasuredCPI  stats.Interval
	Evals        []core.CacheEval
	// ValidationErrPct compares the simulated 32KB candidate's MPKI with
	// the machine's measured L1I MPKI — they model the same cache, so a
	// small error validates the whole replay path.
	ValidationErrPct float64
}

// ExtICache runs the instruction-cache interferometry extension.
func ExtICache(ctx *Context) (*ExtICacheResult, error) {
	spec, ok := progen.ByName(ExtICacheBenchmark)
	if !ok {
		return nil, fmt.Errorf("ext-icache: unknown benchmark %s", ExtICacheBenchmark)
	}
	ds, err := ctx.Dataset(spec, heap.ModeBump)
	if err != nil {
		return nil, fmt.Errorf("ext-icache: %w", err)
	}
	model, err := ds.FitCPI(pmc.EvL1IMisses)
	if err != nil {
		return nil, fmt.Errorf("ext-icache: %w", err)
	}
	evals, err := ds.EvaluateICaches(model, ICacheCandidates())
	if err != nil {
		return nil, fmt.Errorf("ext-icache: %w", err)
	}
	res := &ExtICacheResult{
		Benchmark:    ds.Benchmark,
		Model:        model,
		MeasuredMPKI: stats.Mean(ds.PKIs(pmc.EvL1IMisses)),
		MeasuredCPI:  model.ConfidenceAt(stats.Mean(ds.PKIs(pmc.EvL1IMisses))),
		Evals:        evals,
	}
	for _, e := range evals {
		if e.Name == "L1I-32KB-8w" && res.MeasuredMPKI > 0 {
			d := (e.MPKI - res.MeasuredMPKI) / res.MeasuredMPKI * 100
			if d < 0 {
				d = -d
			}
			res.ValidationErrPct = d
		}
	}
	return res, nil
}

// Render prints the model, the candidates and the validation line.
func (r *ExtICacheResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: instruction-cache interferometry on %s\n", r.Benchmark)
	fmt.Fprintf(&b, "model: CPI = %.5f * L1I/KI + %.5f (r²=%.3f, p=%.3g)\n",
		r.Model.Fit.Slope, r.Model.Fit.Intercept, r.Model.Fit.R2, r.Model.Fit.PValue)
	fmt.Fprintf(&b, "measured: L1I %.3f misses/KI, CPI %.4f (95%% CI ±%.4f)\n\n",
		r.MeasuredMPKI, r.MeasuredCPI.Center, r.MeasuredCPI.Half())
	fmt.Fprintf(&b, "%-14s %10s %12s %24s\n", "candidate", "L1I/KI", "pred. CPI", "95% prediction interval")
	for _, e := range r.Evals {
		fmt.Fprintf(&b, "%-14s %10.3f %12.4f [%10.4f, %10.4f]\n",
			e.Name, e.MPKI, e.PredictedCPI.Center, e.PredictedCPI.Low, e.PredictedCPI.High)
	}
	fmt.Fprintf(&b, "\nvalidation: simulated 32KB-8w vs measured machine cache: %.2f%% MPKI error\n",
		r.ValidationErrPct)
	return b.String()
}
