package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
)

// Fig2Benchmarks are the two benchmarks of Figure 2.
var Fig2Benchmarks = []string{"400.perlbench", "471.omnetpp"}

// RegressionSeries is one benchmark's scatter + fitted line + interval
// band, the content of Figures 2 and 3.
type RegressionSeries struct {
	Benchmark string
	XLabel    string
	// Points are the measured (x, CPI) observations.
	X, CPI []float64
	Model  *core.Model
	// Band samples the fitted line with 95% confidence and prediction
	// intervals at evenly spaced x values (including x = 0, the perfect
	// structure).
	Band []BandPoint
}

// BandPoint is one sampled position of the interval band.
type BandPoint struct {
	X          float64
	Fit        float64
	Confidence stats.Interval
	Prediction stats.Interval
}

// buildSeries fits the model and samples the band.
func buildSeries(ds *core.Dataset, ev pmc.Event, xLabel string) (RegressionSeries, error) {
	model, err := ds.FitCPI(ev)
	if err != nil {
		return RegressionSeries{}, err
	}
	xs := ds.PKIs(ev)
	s := RegressionSeries{
		Benchmark: ds.Benchmark,
		XLabel:    xLabel,
		X:         xs,
		CPI:       ds.CPIs(),
		Model:     model,
	}
	hi := stats.Max(xs)
	const samples = 9
	for i := 0; i <= samples; i++ {
		x := hi * float64(i) / samples
		s.Band = append(s.Band, BandPoint{
			X:          x,
			Fit:        model.Fit.Predict(x),
			Confidence: model.ConfidenceAt(x),
			Prediction: model.PredictCPI(x),
		})
	}
	return s, nil
}

// Fig2Result reproduces Figure 2: CPI versus MPKI with least-squares
// lines, 95% confidence intervals and 95% prediction intervals for
// 400.perlbench and 471.omnetpp.
type Fig2Result struct {
	Series []RegressionSeries
}

// Figure2 runs the two campaigns and fits the models.
func Figure2(ctx *Context) (*Fig2Result, error) {
	res := &Fig2Result{}
	for _, name := range Fig2Benchmarks {
		spec, ok := progen.ByName(name)
		if !ok {
			return nil, fmt.Errorf("fig2: unknown benchmark %s", name)
		}
		ds, err := ctx.Dataset(spec, heap.ModeBump)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", name, err)
		}
		s, err := buildSeries(ds, pmc.EvBranchMispredicts, "MPKI")
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", name, err)
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// Render prints the fitted models and interval bands.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: performance vs branch prediction accuracy\n")
	for _, s := range r.Series {
		renderSeries(&b, s)
	}
	return b.String()
}

func renderSeries(b *strings.Builder, s RegressionSeries) {
	fmt.Fprintf(b, "\n%s  (n=%d observations)\n", s.Benchmark, len(s.X))
	fmt.Fprintf(b, "  CPI = %.5f * %s + %.5f   r=%.3f r²=%.3f p=%.3g\n",
		s.Model.Fit.Slope, s.XLabel, s.Model.Fit.Intercept,
		s.Model.Fit.R, s.Model.Fit.R2, s.Model.Fit.PValue)
	fmt.Fprintf(b, "  %8s %10s %23s %23s\n", s.XLabel, "fit", "95% confidence", "95% prediction")
	for _, p := range s.Band {
		fmt.Fprintf(b, "  %8.3f %10.4f [%9.4f,%9.4f] [%9.4f,%9.4f]\n",
			p.X, p.Fit, p.Confidence.Low, p.Confidence.High,
			p.Prediction.Low, p.Prediction.High)
	}
}
