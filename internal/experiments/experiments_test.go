package experiments_test

import (
	"strings"
	"sync"
	"testing"

	"interferometry/internal/experiments"
)

// sharedCtx caches the whole-suite campaigns across tests in this
// package; the drivers for Figures 1, 2, 6, 7, 8 and Table 1 all read
// from the same datasets.
var (
	ctxOnce sync.Once
	ctx     *experiments.Context
)

func testCtx() *experiments.Context {
	ctxOnce.Do(func() {
		ctx = experiments.NewContext(experiments.Small)
	})
	return ctx
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"small", "medium", "paper"} {
		s, ok := experiments.ScaleByName(n)
		if !ok || s.Name != n {
			t.Errorf("ScaleByName(%q) = %+v, %v", n, s, ok)
		}
	}
	if _, ok := experiments.ScaleByName("bogus"); ok {
		t.Error("bogus scale resolved")
	}
}

func TestFigure1(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale campaign sweep; skipped in -short runs")
	}
	res, err := experiments.Figure1(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violins) != 23 {
		t.Fatalf("fig1 has %d violins, want 23", len(res.Violins))
	}
	for _, v := range res.Violins {
		if v.Summary.N != experiments.Small.Layouts {
			t.Errorf("%s: %d observations", v.Label, v.Summary.N)
		}
		if v.Summary.Max <= v.Summary.Min {
			t.Errorf("%s: degenerate spread", v.Label)
		}
		// Violin deviations are centered on zero by construction.
		if v.Summary.Min > 0 || v.Summary.Max < 0 {
			t.Errorf("%s: deviations not centered: [%v, %v]", v.Label, v.Summary.Min, v.Summary.Max)
		}
	}
	name, max := res.MaxSpread()
	if name == "" || max <= 0 {
		t.Error("MaxSpread degenerate")
	}
	out := res.Render()
	if !strings.Contains(out, "400.perlbench") || !strings.Contains(out, "|") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestFigure2(t *testing.T) {
	res, err := experiments.Figure2(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("fig2 has %d series", len(res.Series))
	}
	for _, s := range res.Series {
		if s.Model.Fit.Slope <= 0 {
			t.Errorf("%s: slope %v not positive", s.Benchmark, s.Model.Fit.Slope)
		}
		if !s.Model.Significant() {
			t.Errorf("%s: model not significant (p=%v)", s.Benchmark, s.Model.Fit.PValue)
		}
		for _, p := range s.Band {
			if p.Prediction.Half() <= p.Confidence.Half() {
				t.Errorf("%s: PI not wider than CI at x=%v", s.Benchmark, p.X)
			}
			if !p.Confidence.Contains(p.Fit) {
				t.Errorf("%s: CI excludes the fit at x=%v", s.Benchmark, p.X)
			}
		}
	}
	if out := res.Render(); !strings.Contains(out, "471.omnetpp") {
		t.Error("render missing omnetpp")
	}
}

func TestFigure3(t *testing.T) {
	res, err := experiments.Figure3(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res.L1.Benchmark != experiments.Fig3Benchmark || res.L2.Benchmark != experiments.Fig3Benchmark {
		t.Error("fig3 series mislabeled")
	}
	if len(res.L1.X) != experiments.Small.Layouts {
		t.Errorf("fig3 L1 has %d points", len(res.L1.X))
	}
	// Cache misses must vary under heap randomization for the fit to
	// exist at all (FitCPI errors on a constant predictor).
	if res.L1.Model == nil || res.L2.Model == nil {
		t.Fatal("missing cache models")
	}
	// More cache misses never speed the machine up: the fitted slopes
	// should be positive for this cache-bound benchmark.
	if res.L1.Model.Fit.Slope <= 0 {
		t.Errorf("L1D slope %v not positive", res.L1.Model.Fit.Slope)
	}
	if out := res.Render(); !strings.Contains(out, "L1D misses/KI") || !strings.Contains(out, "L2 misses/KI") {
		t.Error("render missing series")
	}
}

func TestFigure4And5(t *testing.T) {
	res, err := experiments.Figure4(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerBenchmark) != 13 {
		t.Fatalf("fig4 covered %d benchmarks", len(res.PerBenchmark))
	}
	// Ordered ascending by perfect error, like the figure's x axis.
	for i := 1; i < len(res.PerBenchmark); i++ {
		if res.PerBenchmark[i].PerfectErrPct < res.PerBenchmark[i-1].PerfectErrPct {
			t.Error("fig4 rows not sorted by error")
		}
	}
	// The paper's shape: extrapolating to perfect prediction has a small
	// average error; estimating L-TAGE is even more accurate because it
	// is an interpolation near the data (§3.2).
	if res.AvgPerfectErrPct > 12 {
		t.Errorf("average perfect-extrapolation error %v%% too large", res.AvgPerfectErrPct)
	}
	if res.AvgLTAGEErrPct > res.AvgPerfectErrPct+1 {
		t.Errorf("L-TAGE error %v%% should not exceed perfect error %v%%",
			res.AvgLTAGEErrPct, res.AvgPerfectErrPct)
	}
	if !strings.Contains(res.Render(), "AVERAGE") {
		t.Error("fig4 render missing average")
	}

	f5, err := experiments.Figure5(testCtx(), res)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Linear) != 3 || len(f5.NonLinear) != 3 {
		t.Fatalf("fig5 panels %d/%d", len(f5.Linear), len(f5.NonLinear))
	}
	for _, s := range append(append([]experiments.Fig5Series{}, f5.Linear...), f5.NonLinear...) {
		if len(s.MPKI) != len(s.NormCPI) || len(s.MPKI) == 0 {
			t.Errorf("%s: bad series", s.Benchmark)
		}
		// Normalized CPI is CPI/perfectCPI, so every point sits at >= ~1.
		for _, v := range s.NormCPI {
			if v < 0.99 {
				t.Errorf("%s: normalized CPI %v below 1", s.Benchmark, v)
			}
		}
	}
	if !strings.Contains(f5.Render(), "178.galgel") {
		t.Error("fig5 render missing galgel")
	}
}

func TestFigure6(t *testing.T) {
	res, err := experiments.Figure6(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 23 {
		t.Fatalf("fig6 has %d rows", len(res.Rows))
	}
	// Branch mispredictions explain a sizeable share of CPI variance on
	// average (paper: 27%); our model sits in the same regime.
	if res.AvgBranch < 0.05 || res.AvgBranch > 0.95 {
		t.Errorf("average branch r² %v implausible", res.AvgBranch)
	}
	// The combined model's r² is at least each component's by least
	// squares, so its average dominates too.
	if res.AvgCombined < res.AvgBranch {
		t.Errorf("combined avg %v below branch avg %v", res.AvgCombined, res.AvgBranch)
	}
	if !strings.Contains(res.Render(), "combined") {
		t.Error("fig6 render missing combined column")
	}
}

func TestFigure7And8(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale predictor sweep; skipped in -short runs")
	}
	res, err := experiments.Figure7(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("fig7 has %d rows", len(res.Rows))
	}
	// Paper shape: L-TAGE beats the real predictor and every GAs; the GAs
	// family improves (weakly) with size.
	if res.Avg["l-tage"] >= res.Avg["real"] {
		t.Errorf("L-TAGE avg MPKI %v should beat the real predictor %v",
			res.Avg["l-tage"], res.Avg["real"])
	}
	if res.Avg["gas-16KB"] > res.Avg["gas-2KB"]+0.2 {
		t.Errorf("16KB GAs (%v) should not lose to 2KB GAs (%v)",
			res.Avg["gas-16KB"], res.Avg["gas-2KB"])
	}
	if res.Avg["l-tage"] >= res.Avg["gas-16KB"] {
		t.Errorf("L-TAGE (%v) should beat 16KB GAs (%v)",
			res.Avg["l-tage"], res.Avg["gas-16KB"])
	}
	if !strings.Contains(res.Render(), "AVERAGE") {
		t.Error("fig7 render missing averages")
	}

	f8, err := experiments.Figure8(testCtx(), res)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 20 {
		t.Fatalf("fig8 has %d rows", len(f8.Rows))
	}
	// Perfect prediction improves on the real predictor; L-TAGE sits in
	// between (paper: 11.8% and 4.8%).
	if f8.PerfectImprovementPct <= 0 || f8.PerfectImprovementPct > 40 {
		t.Errorf("perfect improvement %v%% out of range", f8.PerfectImprovementPct)
	}
	if f8.LTAGEImprovementPct <= 0 {
		t.Errorf("L-TAGE improvement %v%% not positive", f8.LTAGEImprovementPct)
	}
	if f8.LTAGEImprovementPct >= f8.PerfectImprovementPct {
		t.Errorf("L-TAGE improvement %v%% should be below perfect %v%%",
			f8.LTAGEImprovementPct, f8.PerfectImprovementPct)
	}
	if !strings.Contains(f8.Render(), "improvement") {
		t.Error("fig8 render missing improvements")
	}
}

func TestTable1(t *testing.T) {
	res, err := experiments.Table1(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("table1 has %d rows", len(res.Rows))
	}
	positive := 0
	for _, row := range res.Rows {
		if row.Low >= row.High {
			t.Errorf("%s: degenerate prediction interval", row.Benchmark)
		}
		if row.Intercept < row.Low || row.Intercept > row.High {
			t.Errorf("%s: intercept outside its own prediction interval", row.Benchmark)
		}
		if row.Slope > 0 {
			positive++
		}
	}
	// More mispredictions cost cycles: slopes are positive essentially
	// everywhere (small-scale noise may flip an outlier).
	if positive < len(res.Rows)-2 {
		t.Errorf("only %d/%d positive slopes", positive, len(res.Rows))
	}
	// Mean slope reflects the ~25-cycle flush penalty (0.025 CPI/MPKI).
	if ms := res.MeanSlope(); ms < 0.01 || ms > 0.06 {
		t.Errorf("mean slope %v far from the flush penalty", ms)
	}
	if !strings.Contains(res.Render(), "y-intercept") {
		t.Error("table1 render missing header")
	}
}

func TestSignificance(t *testing.T) {
	if testing.Short() {
		t.Skip("significance screen runs 23 escalating campaigns")
	}
	res, err := experiments.Significance(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 23 {
		t.Fatalf("screened %d benchmarks", res.Total)
	}
	// The paper's key count: 20 of 23 significant. At small scale a
	// borderline benchmark may miss, but the bulk must pass and the three
	// loop-dominated FP codes must fail.
	if res.SignificantCount < 15 {
		t.Errorf("only %d/23 significant", res.SignificantCount)
	}
	for _, row := range res.Rows {
		switch row.Benchmark {
		case "410.bwaves", "433.milc", "470.lbm":
			if row.Significant {
				t.Errorf("%s should fail the significance screen", row.Benchmark)
			}
		}
	}
	if !strings.Contains(res.Render(), "20 of 23") {
		t.Error("render missing paper reference")
	}
}
