package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/progen"
)

// SignificanceRow is one benchmark's outcome of the §4.6/§6.3 screen.
type SignificanceRow struct {
	Benchmark   string
	Layouts     int
	PValue      float64
	Significant bool
	// NormalityP is the Jarque-Bera p-value of the CPI sample (§5.8: the
	// t test assumes roughly normal CPIs).
	NormalityP float64
	// CombinedSignificant is the F-test verdict of the three-event model
	// (§6.4 observes it adds no benchmarks and loses two).
	CombinedSignificant bool
}

// SignificanceResult reproduces the §4.6/§6.2-6.4 findings: "for the 23
// SPEC CPU 2006 benchmarks that compiled in our infrastructure,
// estimating CPI with MPKI, the null hypothesis was rejected at p = 0.05
// or less for 20 benchmarks", with samples escalated in steps until
// rejection or the cap.
type SignificanceResult struct {
	Rows []SignificanceRow
	// Counts of significant benchmarks under the t test and the combined
	// F test.
	SignificantCount, CombinedCount, Total int
}

// Significance screens the whole suite with the escalation protocol.
func Significance(ctx *Context) (*SignificanceResult, error) {
	res := &SignificanceResult{}
	for _, spec := range suiteSpecs() {
		prog, err := progen.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("significance %s: %w", spec.Name, err)
		}
		cfg := core.CampaignConfig{
			Program:   prog,
			InputSeed: 1,
			Budget:    ctx.Scale.Budget,
			HeapMode:  heap.ModeBump,
			Fidelity:  ctx.Scale.Fidelity,
			BaseSeed:  ctx.BaseSeed,
			Workers:   ctx.Workers,
		}
		sr, err := core.ScreenSignificance(cfg, ctx.Scale.SignifStep, ctx.Scale.SignifMax)
		if err != nil {
			return nil, fmt.Errorf("significance %s: %w", spec.Name, err)
		}
		row := SignificanceRow{
			Benchmark:   spec.Name,
			Layouts:     sr.Layouts,
			PValue:      sr.PValue,
			Significant: sr.Significant,
			NormalityP:  sr.NormalityP,
		}
		if cm, ok := sr.Dataset.RobustCombined(); ok {
			row.CombinedSignificant = cm.Significant()
		}
		res.Rows = append(res.Rows, row)
		res.Total++
		if row.Significant {
			res.SignificantCount++
		}
		if row.CombinedSignificant {
			res.CombinedCount++
		}
	}
	return res, nil
}

// Render prints the screen outcome per benchmark.
func (r *SignificanceResult) Render() string {
	var b strings.Builder
	b.WriteString("Significance screen (Student t on CPI~MPKI; F test on the combined model)\n")
	fmt.Fprintf(&b, "%-16s %8s %12s %8s %12s %12s\n", "benchmark", "layouts", "p(t)", "t-sig", "F-sig(comb)", "p(normality)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8d %12.4g %8v %12v %12.3g\n",
			row.Benchmark, row.Layouts, row.PValue, row.Significant, row.CombinedSignificant, row.NormalityP)
	}
	fmt.Fprintf(&b, "significant: %d of %d (paper: 20 of 23); combined-model significant: %d\n",
		r.SignificantCount, r.Total, r.CombinedCount)
	return b.String()
}
