// Package experiments contains one driver per table and figure in the
// paper's evaluation. Each driver returns a structured result carrying
// the same rows or series the paper reports, plus a Render method that
// prints them as text. DESIGN.md maps every driver to the modules it
// exercises; EXPERIMENTS.md records the measured-vs-paper comparison.
//
// Drivers accept a Context, which fixes the experiment scale (layout
// counts, instruction budgets, predictor-sweep size) and caches campaign
// datasets so that figures sharing the same measurements (Table 1,
// Figures 6-8) do not recompute them.
package experiments

import (
	"fmt"
	"sync"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/obs"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

// Scale fixes the cost of an experiment run. The paper's own scale is 100+
// layouts of ~2-minute runs; Small keeps unit-test latency tolerable.
type Scale struct {
	Name string
	// Layouts is the number of code reorderings per benchmark campaign.
	Layouts int
	// Budget is the retired-instruction budget of one measured run.
	Budget uint64
	// SimBudget is the budget of the §3 simulation study (which runs 145
	// predictor configurations, so it is usually smaller).
	SimBudget uint64
	// Configs is the predictor-sweep size of the linearity study.
	Configs int
	// Fidelity selects the measurement protocol; the paper protocol is
	// the default everywhere except the smallest scale.
	Fidelity pmc.Fidelity
	// SignifStep and SignifMax drive the §6.3 sample escalation.
	SignifStep, SignifMax int
}

// The standard scales.
var (
	// Small is for unit tests and quick smoke runs.
	Small = Scale{
		Name: "small", Layouts: 30, Budget: 200_000, SimBudget: 80_000,
		Configs: 29, Fidelity: pmc.FidelityPaper, SignifStep: 30, SignifMax: 60,
	}
	// Medium is the default for the bench harness.
	Medium = Scale{
		Name: "medium", Layouts: 60, Budget: 300_000, SimBudget: 150_000,
		Configs: 72, Fidelity: pmc.FidelityPaper, SignifStep: 60, SignifMax: 120,
	}
	// Paper approximates the paper's own sample sizes (100 reorderings,
	// escalating to 300; 145 predictor configurations).
	Paper = Scale{
		Name: "paper", Layouts: 100, Budget: 1_000_000, SimBudget: 400_000,
		Configs: 145, Fidelity: pmc.FidelityPaper, SignifStep: 100, SignifMax: 300,
	}
)

// ScaleByName resolves "small", "medium" or "paper".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "small":
		return Small, true
	case "medium":
		return Medium, true
	case "paper":
		return Paper, true
	default:
		return Scale{}, false
	}
}

// Context carries the scale and a dataset cache across experiment
// drivers.
type Context struct {
	Scale    Scale
	BaseSeed uint64
	// Workers caps parallelism in campaigns (0 = GOMAXPROCS).
	Workers int
	// Obs, when set, instruments every campaign and sweep the drivers run
	// (metrics, spans, progress). Nil leaves the hot paths untouched.
	Obs *obs.Observer

	mu       sync.Mutex
	datasets map[string]*core.Dataset
}

// NewContext builds a context with the canonical base seed.
func NewContext(scale Scale) *Context {
	return &Context{Scale: scale, BaseSeed: 0x1f2e3d4c, datasets: make(map[string]*core.Dataset)}
}

// campaignConfig builds the standard campaign for a benchmark.
func (c *Context) campaignConfig(spec progen.Spec, mode heap.Mode) (core.CampaignConfig, error) {
	prog, err := progen.Generate(spec)
	if err != nil {
		return core.CampaignConfig{}, err
	}
	return core.CampaignConfig{
		Program:   prog,
		InputSeed: 1,
		Budget:    c.Scale.Budget,
		Layouts:   c.Scale.Layouts,
		HeapMode:  mode,
		Fidelity:  c.Scale.Fidelity,
		BaseSeed:  c.BaseSeed,
		Workers:   c.Workers,
		Obs:       c.Obs,
	}, nil
}

// Dataset returns the (cached) campaign dataset for a benchmark.
func (c *Context) Dataset(spec progen.Spec, mode heap.Mode) (*core.Dataset, error) {
	key := fmt.Sprintf("%s/%s", spec.Name, mode)
	c.mu.Lock()
	ds := c.datasets[key]
	c.mu.Unlock()
	if ds != nil {
		return ds, nil
	}
	cfg, err := c.campaignConfig(spec, mode)
	if err != nil {
		return nil, err
	}
	ds, err = core.RunCampaign(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.datasets[key] = ds
	c.mu.Unlock()
	return ds, nil
}

// newDefaultMachine builds the standard machine model instance.
func newDefaultMachine() *machine.Machine { return machine.New(machine.XeonE5440()) }

// newRunSpec wraps an executable and trace into a default run spec.
func newRunSpec(exe *toolchain.Executable, tr *interp.Trace) machine.RunSpec {
	return machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: 1}
}

// CachedDatasets returns a snapshot of the datasets the context has
// accumulated, keyed "benchmark/heapmode". Report writers use it to dump
// the raw observations behind the figures.
func (c *Context) CachedDatasets() map[string]*core.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]*core.Dataset, len(c.datasets))
	for k, v := range c.datasets {
		out[k] = v
	}
	return out
}

// suiteSpecs returns the full 23-benchmark suite.
func suiteSpecs() []progen.Spec { return progen.Suite() }

// table1Specs returns the 20 Table 1 benchmarks in paper order.
func table1Specs() []progen.Spec {
	var out []progen.Spec
	for _, name := range progen.Table1Names {
		spec, ok := progen.ByName(name)
		if !ok {
			panic("experiments: missing suite benchmark " + name)
		}
		out = append(out, spec)
	}
	return out
}
