package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/heap"
	"interferometry/internal/stats"
)

// Fig1Result reproduces Figure 1: violin plots of percent CPI variation
// across code reorderings for every benchmark in the suite. "Clearly,
// some benchmarks are greatly affected by differences in instruction
// addresses while some are less sensitive" (§1.1).
type Fig1Result struct {
	Violins []stats.Violin
}

// Figure1 runs the whole-suite campaign and builds one violin per
// benchmark from the percent deviations of CPI around its mean.
func Figure1(ctx *Context) (*Fig1Result, error) {
	res := &Fig1Result{}
	for _, spec := range suiteSpecs() {
		ds, err := ctx.Dataset(spec, heap.ModeBump)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", spec.Name, err)
		}
		v, err := stats.MakeViolin(spec.Name, stats.PercentDeviations(ds.CPIs()), 33)
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", spec.Name, err)
		}
		res.Violins = append(res.Violins, v)
	}
	return res, nil
}

// Render draws each violin as a horizontal ASCII density profile over the
// percent-deviation axis, with the min/max range and spread.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: %% CPI variation across code reorderings (violin densities)\n")
	for _, v := range r.Violins {
		maxD := v.MaxDensity()
		var bars strings.Builder
		for _, p := range v.Profile {
			bars.WriteByte(" .:-=+*#%@"[int(p.Density/maxD*9.999)%10])
		}
		fmt.Fprintf(&b, "%-16s [%+6.2f%% .. %+6.2f%%] |%s| spread=%.2f%%\n",
			v.Label, v.Summary.Min, v.Summary.Max, bars.String(), v.Summary.Max-v.Summary.Min)
	}
	return b.String()
}

// MaxSpread returns the largest percent spread across benchmarks, a
// headline of the figure.
func (r *Fig1Result) MaxSpread() (string, float64) {
	name, max := "", 0.0
	for _, v := range r.Violins {
		if s := v.Summary.Max - v.Summary.Min; s > max {
			max, name = s, v.Label
		}
	}
	return name, max
}
