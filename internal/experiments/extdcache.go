package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/uarch/cache"
)

// ExtDCacheBenchmark is the benchmark of the data-cache extension: the
// Figure 3 benchmark, whose CPI is almost entirely explained by L1D
// misses under heap randomization.
const ExtDCacheBenchmark = Fig3Benchmark

// DCacheCandidates are the hypothetical data-cache geometries; the 32KB
// 8-way entry is the machine's own cache (the validation point).
func DCacheCandidates() []cache.Config {
	return []cache.Config{
		{Name: "L1D-16KB-4w", SizeBytes: 16 * 1024, LineBytes: 64, Ways: 4},
		{Name: "L1D-32KB-4w", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 4},
		{Name: "L1D-32KB-8w", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8},
		{Name: "L1D-64KB-8w", SizeBytes: 64 * 1024, LineBytes: 64, Ways: 8},
	}
}

// ExtDCacheResult is the data-cache interferometry study: the same §7
// pipeline applied to the L1 data cache using heap-randomization-driven
// variance (§1.3 + §8 future work).
type ExtDCacheResult struct {
	Benchmark        string
	Model            *core.Model
	MeasuredMPKI     float64
	MeasuredCPI      stats.Interval
	Evals            []core.CacheEval
	ValidationErrPct float64
}

// ExtDCache runs the data-cache interferometry extension.
func ExtDCache(ctx *Context) (*ExtDCacheResult, error) {
	spec, ok := progen.ByName(ExtDCacheBenchmark)
	if !ok {
		return nil, fmt.Errorf("ext-dcache: unknown benchmark %s", ExtDCacheBenchmark)
	}
	ds, err := ctx.Dataset(spec, heap.ModeRandomized)
	if err != nil {
		return nil, fmt.Errorf("ext-dcache: %w", err)
	}
	model, err := ds.FitCPI(pmc.EvL1DMisses)
	if err != nil {
		return nil, fmt.Errorf("ext-dcache: %w", err)
	}
	evals, err := ds.EvaluateDCaches(model, DCacheCandidates())
	if err != nil {
		return nil, fmt.Errorf("ext-dcache: %w", err)
	}
	mean := stats.Mean(ds.PKIs(pmc.EvL1DMisses))
	res := &ExtDCacheResult{
		Benchmark:    ds.Benchmark,
		Model:        model,
		MeasuredMPKI: mean,
		MeasuredCPI:  model.ConfidenceAt(mean),
		Evals:        evals,
	}
	for _, e := range evals {
		if e.Name == "L1D-32KB-8w" && res.MeasuredMPKI > 0 {
			d := (e.MPKI - res.MeasuredMPKI) / res.MeasuredMPKI * 100
			if d < 0 {
				d = -d
			}
			res.ValidationErrPct = d
		}
	}
	return res, nil
}

// Render prints the model, candidates and validation line.
func (r *ExtDCacheResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: data-cache interferometry on %s (heap randomization)\n", r.Benchmark)
	fmt.Fprintf(&b, "model: CPI = %.5f * L1D/KI + %.5f (r²=%.3f, p=%.3g)\n",
		r.Model.Fit.Slope, r.Model.Fit.Intercept, r.Model.Fit.R2, r.Model.Fit.PValue)
	fmt.Fprintf(&b, "measured: L1D %.3f misses/KI, CPI %.4f (95%% CI ±%.4f)\n\n",
		r.MeasuredMPKI, r.MeasuredCPI.Center, r.MeasuredCPI.Half())
	fmt.Fprintf(&b, "%-14s %10s %12s %24s\n", "candidate", "L1D/KI", "pred. CPI", "95% prediction interval")
	for _, e := range r.Evals {
		fmt.Fprintf(&b, "%-14s %10.3f %12.4f [%10.4f, %10.4f]\n",
			e.Name, e.MPKI, e.PredictedCPI.Center, e.PredictedCPI.Low, e.PredictedCPI.High)
	}
	fmt.Fprintf(&b, "\nvalidation: simulated 32KB-8w vs measured machine cache: %.2f%% MPKI error\n",
		r.ValidationErrPct)
	return b.String()
}
