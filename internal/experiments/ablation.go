package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/pintool"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// This file holds the ablation studies for the reproduction's own design
// choices — the knobs that are not in the paper but had to be decided to
// build it. Each ablation quantifies what a choice buys:
//
//   - the median-of-five measurement protocol (§5.5) vs single runs;
//   - the fetch-block alignment heuristic in the linker (§4.1);
//   - the DieHard-style randomizing allocator vs a bump allocator (§1.3);
//   - the pintool's warmup pass (steady-state predictor simulation);
//   - the hybrid structure of the modeled machine predictor (§5.4).

// AblationResult is one ablation's before/after pair with a short
// explanation of what is varied.
type AblationResult struct {
	Name     string
	Metric   string
	Baseline float64 // with the design choice enabled (as shipped)
	Ablated  float64 // with the choice disabled/replaced
	Note     string
}

// renderAblations prints a slice of ablation rows.
func renderAblations(title string, rows []AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-26s %-26s %12s %12s  %s\n", "ablation", "metric", "shipped", "ablated", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %-26s %12.4f %12.4f  %s\n", r.Name, r.Metric, r.Baseline, r.Ablated, r.Note)
	}
	return b.String()
}

// AblationSuite runs all ablations on a single representative benchmark
// at the context's scale.
type AblationSuite struct {
	Benchmark string
	Rows      []AblationResult
}

// Ablations runs the whole ablation suite.
func Ablations(ctx *Context) (*AblationSuite, error) {
	const benchName = "400.perlbench"
	spec, ok := progen.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("ablation: missing benchmark %s", benchName)
	}
	res := &AblationSuite{Benchmark: benchName}

	if row, err := ablateProtocol(ctx, spec); err == nil {
		res.Rows = append(res.Rows, row)
	} else {
		return nil, err
	}
	if row, err := ablateAlignment(ctx, spec); err == nil {
		res.Rows = append(res.Rows, row)
	} else {
		return nil, err
	}
	if row, err := ablateAllocator(ctx); err == nil {
		res.Rows = append(res.Rows, row)
	} else {
		return nil, err
	}
	if row, err := ablateWarmup(ctx, spec); err == nil {
		res.Rows = append(res.Rows, row)
	} else {
		return nil, err
	}
	if rows, err := ablateMachinePredictor(ctx, spec); err == nil {
		res.Rows = append(res.Rows, rows...)
	} else {
		return nil, err
	}
	if row, err := ablatePrefetcher(ctx); err == nil {
		res.Rows = append(res.Rows, row)
	} else {
		return nil, err
	}
	if row, err := ablateIntervalMethod(ctx, spec); err == nil {
		res.Rows = append(res.Rows, row)
	} else {
		return nil, err
	}
	return res, nil
}

// ablateIntervalMethod cross-checks the parametric Student-t confidence
// interval at 0 MPKI against a paired-bootstrap percentile interval: the
// t machinery rests on the §5.8 normality assumption, and agreement here
// means the assumption carried no risk.
func ablateIntervalMethod(ctx *Context, spec progen.Spec) (AblationResult, error) {
	ds, err := ctx.Dataset(spec, heap.ModeBump)
	if err != nil {
		return AblationResult{}, err
	}
	model, err := ds.MPKIModel()
	if err != nil {
		return AblationResult{}, err
	}
	param, boot, err := model.BootstrapCheck(ds, 0, 2000, 97)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "interval method",
		Metric:   "CI half-width at 0 MPKI",
		Baseline: param.Half(),
		Ablated:  boot.Half(),
		Note:     "Student-t vs paired-bootstrap percentile",
	}, nil
}

// ablatePrefetcher measures the next-line L2 prefetcher on the streaming
// benchmark: with it enabled, part of the stream's L2 miss cost is
// hidden, so cycles drop (§3.1's prefetching interaction).
func ablatePrefetcher(ctx *Context) (AblationResult, error) {
	spec, ok := progen.ByName("462.libquantum")
	if !ok {
		return AblationResult{}, fmt.Errorf("ablation: missing 462.libquantum")
	}
	prog, err := progen.Generate(spec)
	if err != nil {
		return AblationResult{}, err
	}
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: ctx.Scale.Budget})
	if err != nil {
		return AblationResult{}, err
	}
	exe, err := toolchain.BuildLayout(prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		return AblationResult{}, err
	}
	cpiWith := func(prefetch bool) (float64, error) {
		cfg := machine.XeonE5440()
		cfg.NextLinePrefetch = prefetch
		m := machine.New(cfg)
		c, err := m.Run(machine.RunSpec{Exe: exe, Trace: tr, DisableNoise: true})
		if err != nil {
			return 0, err
		}
		return c.CPI(), nil
	}
	off, err := cpiWith(false)
	if err != nil {
		return AblationResult{}, err
	}
	on, err := cpiWith(true)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "next-line L2 prefetcher",
		Metric:   "libquantum CPI",
		Baseline: off, // the shipped model has no prefetcher
		Ablated:  on,
		Note:     "streaming misses partially hidden when enabled",
	}, nil
}

// Render prints the ablation table.
func (a *AblationSuite) Render() string {
	return renderAblations(fmt.Sprintf("Ablations on %s", a.Benchmark), a.Rows)
}

// residualSD is the standard deviation of CPI residuals around the MPKI
// fit — the noise the regression has to fight.
func residualSD(ds *core.Dataset) float64 {
	model, err := ds.MPKIModel()
	if err != nil {
		return stats.StdDev(ds.CPIs())
	}
	return model.Fit.ResidualSE
}

// ablateProtocol compares the §5.5 median-of-five protocol against
// single-run measurement: the protocol should shrink the CPI residual.
func ablateProtocol(ctx *Context, spec progen.Spec) (AblationResult, error) {
	cfgPaper, err := ctx.campaignConfig(spec, heap.ModeBump)
	if err != nil {
		return AblationResult{}, err
	}
	cfgPaper.Fidelity = pmc.FidelityPaper
	paper, err := core.RunCampaign(cfgPaper)
	if err != nil {
		return AblationResult{}, err
	}
	cfgFast := cfgPaper
	cfgFast.Fidelity = pmc.FidelityFast
	fast, err := core.RunCampaign(cfgFast)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "median-of-5 protocol",
		Metric:   "CPI residual SD",
		Baseline: residualSD(paper),
		Ablated:  residualSD(fast),
		Note:     "single runs keep the full system-noise spikes",
	}, nil
}

// ablateAlignment compares fetch-block target alignment on and off:
// alignment pads code, trading footprint for fetch efficiency; the
// observable is the L1I miss rate.
func ablateAlignment(ctx *Context, spec progen.Spec) (AblationResult, error) {
	prog, err := progen.Generate(spec)
	if err != nil {
		return AblationResult{}, err
	}
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: ctx.Scale.Budget})
	if err != nil {
		return AblationResult{}, err
	}
	measure := func(link toolchain.LinkConfig) (float64, error) {
		h := &pmc.Harness{Machine: newDefaultMachine(), Fidelity: pmc.FidelityFast}
		var total float64
		const n = 8
		for seed := uint64(1); seed <= n; seed++ {
			exe, err := toolchain.Link(prog, toolchain.Reorder(toolchain.Compile(prog, toolchain.CompileConfig{}), seed), seed, link)
			if err != nil {
				return 0, err
			}
			m, err := h.Measure(newRunSpec(exe, tr))
			if err != nil {
				return 0, err
			}
			total += m.PKI(pmc.EvL1IMisses)
		}
		return total / n, nil
	}
	aligned, err := measure(toolchain.LinkConfig{FetchAlign: 16})
	if err != nil {
		return AblationResult{}, err
	}
	unaligned, err := measure(toolchain.LinkConfig{})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "fetch-target alignment",
		Metric:   "L1I misses per KI",
		Baseline: aligned,
		Ablated:  unaligned,
		Note:     "alignment pads code; effect depends on footprint",
	}, nil
}

// ablateAllocator quantifies what the DieHard-style allocator adds: L1D
// miss variance across heap seeds on the cache-sensitive benchmark.
func ablateAllocator(ctx *Context) (AblationResult, error) {
	spec, ok := progen.ByName(Fig3Benchmark)
	if !ok {
		return AblationResult{}, fmt.Errorf("ablation: missing %s", Fig3Benchmark)
	}
	sdOf := func(mode heap.Mode) (float64, error) {
		cfg, err := ctx.campaignConfig(spec, mode)
		if err != nil {
			return 0, err
		}
		cfg.Layouts = min(cfg.Layouts, 20)
		cfg.Fidelity = pmc.FidelityFast
		ds, err := core.RunCampaign(cfg)
		if err != nil {
			return 0, err
		}
		return stats.StdDev(ds.PKIs(pmc.EvL1DMisses)), nil
	}
	random, err := sdOf(heap.ModeRandomized)
	if err != nil {
		return AblationResult{}, err
	}
	bump, err := sdOf(heap.ModeBump)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "randomizing allocator",
		Metric:   "sd(L1D misses per KI)",
		Baseline: random,
		Ablated:  bump,
		Note:     "bump placement cannot elicit data-cache variance",
	}, nil
}

// ablateWarmup measures the cold-start bias removed by the pintool's
// warmup pass, using the largest predictor (L-TAGE).
func ablateWarmup(ctx *Context, spec progen.Spec) (AblationResult, error) {
	prog, err := progen.Generate(spec)
	if err != nil {
		return AblationResult{}, err
	}
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: ctx.Scale.Budget})
	if err != nil {
		return AblationResult{}, err
	}
	exe, err := toolchain.BuildLayout(prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		return AblationResult{}, err
	}
	fac := []branch.Factory{{Name: "l-tage", New: func() branch.Predictor { return branch.NewLTAGEDefault() }}}
	warm, err := pintool.Run(tr, exe, fac, pintool.Config{Warmup: true})
	if err != nil {
		return AblationResult{}, err
	}
	cold, err := pintool.Run(tr, exe, fac, pintool.Config{})
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		Name:     "pintool warmup pass",
		Metric:   "L-TAGE MPKI",
		Baseline: warm[0].MPKI(),
		Ablated:  cold[0].MPKI(),
		Note:     "cold tables overstate mispredictions on short traces",
	}, nil
}

// ablateMachinePredictor swaps the modeled machine's hybrid predictor
// for its components: the hybrid should be at least as accurate as either
// component alone, supporting the paper's reverse-engineering guess.
func ablateMachinePredictor(ctx *Context, spec progen.Spec) ([]AblationResult, error) {
	prog, err := progen.Generate(spec)
	if err != nil {
		return nil, err
	}
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: ctx.Scale.Budget})
	if err != nil {
		return nil, err
	}
	exe, err := toolchain.BuildLayout(prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		return nil, err
	}
	fac := []branch.Factory{
		{Name: "hybrid (shipped)", New: func() branch.Predictor { return branch.NewXeonE5440() }},
		{Name: "gas only", New: func() branch.Predictor { return branch.NewGAs(5, 8) }},
		{Name: "bimodal only", New: func() branch.Predictor { return branch.NewBimodal(4096) }},
	}
	rs, err := pintool.Run(tr, exe, fac, pintool.Config{Warmup: true})
	if err != nil {
		return nil, err
	}
	hybrid := rs[0].MPKI()
	var rows []AblationResult
	for _, r := range rs[1:] {
		rows = append(rows, AblationResult{
			Name:     "machine predictor: " + r.Name,
			Metric:   "MPKI",
			Baseline: hybrid,
			Ablated:  r.MPKI(),
			Note:     "hybrid GAs+bimodal is the reverse-engineered guess (§5.4)",
		})
	}
	return rows, nil
}
