package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/stats"
)

// Fig8Row is one benchmark's predicted CPI per predictor with 95%
// prediction intervals, plus the measured real-predictor CPI with its
// tighter confidence interval (§7.2: "for the real branch predictor, the
// error bars indicate the tighter confidence interval since the data are
// observations and not predictions").
type Fig8Row struct {
	Benchmark string
	Real      stats.Interval
	Perfect   stats.Interval
	Predicted map[string]stats.Interval
}

// Fig8Result reproduces Figure 8 and the §7.2 headline numbers: the
// estimated improvement of perfect prediction (paper: 11.8% average,
// between 7% and 16%) and of L-TAGE (paper: 4.8% average).
type Fig8Result struct {
	Predictors []string
	Rows       []Fig8Row
	// Mean CPIs across benchmarks.
	AvgRealCPI    float64
	AvgPerfectCPI float64
	AvgLTAGECPI   float64
	// Improvement percentages vs the real predictor.
	PerfectImprovementPct float64
	LTAGEImprovementPct   float64
}

// Figure8 maps the Figure 7 MPKIs through each benchmark's regression
// model. It reuses a Fig7Result (computing one if necessary).
func Figure8(ctx *Context, fig7 *Fig7Result) (*Fig8Result, error) {
	if fig7 == nil {
		var err error
		fig7, err = Figure7(ctx)
		if err != nil {
			return nil, err
		}
	}
	res := &Fig8Result{Predictors: fig7.Predictors}
	var realCPIs, perfectCPIs, ltageCPIs []float64
	for _, row := range fig7.Rows {
		model := fig7.models[row.Benchmark]
		r8 := Fig8Row{
			Benchmark: row.Benchmark,
			Real:      fig7.real[row.Benchmark].CPI,
			Perfect:   model.PerfectPrediction(),
			Predicted: map[string]stats.Interval{},
		}
		for _, e := range fig7.evals[row.Benchmark] {
			r8.Predicted[e.Name] = e.PredictedCPI
		}
		res.Rows = append(res.Rows, r8)
		realCPIs = append(realCPIs, r8.Real.Center)
		perfectCPIs = append(perfectCPIs, r8.Perfect.Center)
		ltageCPIs = append(ltageCPIs, r8.Predicted["l-tage"].Center)
	}
	res.AvgRealCPI = stats.Mean(realCPIs)
	res.AvgPerfectCPI = stats.Mean(perfectCPIs)
	res.AvgLTAGECPI = stats.Mean(ltageCPIs)
	if res.AvgRealCPI > 0 {
		res.PerfectImprovementPct = (res.AvgRealCPI - res.AvgPerfectCPI) / res.AvgRealCPI * 100
		res.LTAGEImprovementPct = (res.AvgRealCPI - res.AvgLTAGECPI) / res.AvgRealCPI * 100
	}
	return res, nil
}

// Render prints the per-benchmark predicted CPIs and the headline
// improvements.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: predicted CPI of real and simulated branch predictors\n")
	fmt.Fprintf(&b, "%-16s %19s %19s", "benchmark", "real (95% CI)", "perfect (95% PI)")
	for _, p := range r.Predictors {
		fmt.Fprintf(&b, " %9s", p)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %6.3f±%-11.3f %6.3f±%-11.3f",
			row.Benchmark, row.Real.Center, row.Real.Half(),
			row.Perfect.Center, row.Perfect.Half())
		for _, p := range r.Predictors {
			fmt.Fprintf(&b, " %9.3f", row.Predicted[p].Center)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\naverage CPI: real %.3f, perfect %.3f (%.1f%% improvement), l-tage %.3f (%.1f%% improvement)\n",
		r.AvgRealCPI, r.AvgPerfectCPI, r.PerfectImprovementPct,
		r.AvgLTAGECPI, r.LTAGEImprovementPct)
	b.WriteString("(paper: perfect 11.8% improvement [7%..16%]; L-TAGE 4.8% [2.4%..6.8%])\n")
	return b.String()
}
