package experiments_test

import (
	"strings"
	"testing"

	"interferometry/internal/experiments"
)

func TestExtICache(t *testing.T) {
	res, err := experiments.ExtICache(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != experiments.ExtICacheBenchmark {
		t.Errorf("benchmark %q", res.Benchmark)
	}
	if len(res.Evals) != 5 {
		t.Fatalf("%d cache evals", len(res.Evals))
	}
	// Bigger caches miss less, so with a positive slope they predict
	// lower CPI.
	for i := 1; i < len(res.Evals); i++ {
		if res.Evals[i].MPKI > res.Evals[i-1].MPKI+1e-9 {
			t.Errorf("candidate %s misses more than smaller %s",
				res.Evals[i].Name, res.Evals[i-1].Name)
		}
	}
	if res.Model.Fit.Slope > 0 {
		first, last := res.Evals[0].PredictedCPI.Center, res.Evals[len(res.Evals)-1].PredictedCPI.Center
		if last >= first {
			t.Errorf("128KB predicted CPI %v should beat 8KB %v", last, first)
		}
	}
	// The 32KB candidate models the machine's own cache: its simulated
	// MPKI must validate against the measured counter.
	if res.ValidationErrPct > 15 {
		t.Errorf("32KB simulation disagrees with the measured cache by %.1f%%", res.ValidationErrPct)
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Error("render missing validation line")
	}
}

func TestExtDCache(t *testing.T) {
	res, err := experiments.ExtDCache(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evals) != 4 {
		t.Fatalf("%d cache evals", len(res.Evals))
	}
	byName := map[string]float64{}
	for _, e := range res.Evals {
		byName[e.Name] = e.MPKI
	}
	// Capacity: 64KB-8w beats 32KB-8w; associativity: 32KB-8w beats
	// 32KB-4w (the hot heap pool is conflict-bound).
	if byName["L1D-64KB-8w"] > byName["L1D-32KB-8w"] {
		t.Errorf("64KB (%v) should not miss more than 32KB (%v)",
			byName["L1D-64KB-8w"], byName["L1D-32KB-8w"])
	}
	if byName["L1D-32KB-8w"] > byName["L1D-32KB-4w"] {
		t.Errorf("8-way (%v) should not miss more than 4-way (%v)",
			byName["L1D-32KB-8w"], byName["L1D-32KB-4w"])
	}
	// The 32KB-8w candidate is the machine's own cache under the same
	// replay protocol; validation must be essentially exact.
	if res.ValidationErrPct > 1 {
		t.Errorf("validation error %.2f%%", res.ValidationErrPct)
	}
	// Figure 3(a) strength carries over: the L1D model is extremely
	// linear for this benchmark.
	if res.Model.Fit.R2 < 0.9 {
		t.Errorf("L1D model r² %v unexpectedly weak", res.Model.Fit.R2)
	}
	if !strings.Contains(res.Render(), "validation") {
		t.Error("render missing validation")
	}
}

func TestExtDepth(t *testing.T) {
	res, err := experiments.ExtDepth(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(experiments.ExtDepthBenchmarks) {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.DeepSlope <= row.CoreSlope {
			t.Errorf("%s: deep-pipeline slope %v should exceed core slope %v",
				row.Benchmark, row.DeepSlope, row.CoreSlope)
		}
	}
	// The mean fitted ratio should recover the configured penalty ratio
	// within a generous tolerance at small scale.
	if res.MeanRatio < res.TrueRatio*0.75 || res.MeanRatio > res.TrueRatio*1.35 {
		t.Errorf("mean slope ratio %.2f far from true penalty ratio %.2f",
			res.MeanRatio, res.TrueRatio)
	}
	if !strings.Contains(res.Render(), "penalty ratio") {
		t.Error("render missing ratio line")
	}
}

func TestAblations(t *testing.T) {
	res, err := experiments.Ablations(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("only %d ablation rows", len(res.Rows))
	}
	byName := map[string]experiments.AblationResult{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}

	// The median-of-five protocol must not worsen the residual, and
	// usually shrinks it.
	if r, ok := byName["median-of-5 protocol"]; !ok {
		t.Error("protocol ablation missing")
	} else if r.Baseline > r.Ablated*1.25 {
		t.Errorf("median-of-5 residual %v should not exceed single-run %v", r.Baseline, r.Ablated)
	}

	// The randomizing allocator is what elicits data-layout variance; the
	// bump allocator produces (almost) none.
	if r, ok := byName["randomizing allocator"]; !ok {
		t.Error("allocator ablation missing")
	} else if r.Baseline <= r.Ablated {
		t.Errorf("randomized L1D variance %v should exceed bump %v", r.Baseline, r.Ablated)
	}

	// Warmup removes cold-start mispredictions, so the warmed MPKI is
	// lower.
	if r, ok := byName["pintool warmup pass"]; !ok {
		t.Error("warmup ablation missing")
	} else if r.Baseline >= r.Ablated {
		t.Errorf("warmed L-TAGE MPKI %v should be below cold %v", r.Baseline, r.Ablated)
	}

	// The hybrid machine predictor should not lose badly to either of its
	// components.
	for _, name := range []string{"machine predictor: gas only", "machine predictor: bimodal only"} {
		if r, ok := byName[name]; !ok {
			t.Errorf("%s missing", name)
		} else if r.Baseline > r.Ablated*1.3 {
			t.Errorf("%s: hybrid MPKI %v much worse than component %v", name, r.Baseline, r.Ablated)
		}
	}

	out := res.Render()
	if !strings.Contains(out, "Ablations on") || !strings.Contains(out, "shipped") {
		t.Errorf("render:\n%s", out)
	}
}
