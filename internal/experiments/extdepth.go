package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/machine"
	"interferometry/internal/progen"
	"interferometry/internal/stats"
)

// ExtDepthBenchmarks are branch-sensitive benchmarks whose MPKI models
// are strong enough to compare slopes across machines.
var ExtDepthBenchmarks = []string{"400.perlbench", "444.namd", "456.hmmer"}

// ExtDepthRow compares one benchmark's fitted slope on the two machines.
type ExtDepthRow struct {
	Benchmark  string
	CoreSlope  float64 // fitted on the Core-like machine (25-cycle flush)
	DeepSlope  float64 // fitted on the deep-pipeline machine (39-cycle flush)
	SlopeRatio float64
}

// ExtDepthResult is the pipeline-depth experiment: §1.5 recalls that
// circa-2001 research simulated ever deeper pipelines and was "way off
// the mark". Interferometry does not guess — its regression slope is a
// *measurement* of the machine's effective misprediction cost. Here we
// run the same campaigns on a 25-cycle-flush machine and a 39-cycle-flush
// machine; the fitted slopes must track the penalties the models were
// built with, blind.
type ExtDepthResult struct {
	Rows []ExtDepthRow
	// MeanRatio is the mean fitted-slope ratio; TrueRatio is the
	// configured penalty ratio it should recover.
	MeanRatio float64
	TrueRatio float64
}

// ExtDepth runs the experiment. It uses its own (smaller) campaigns
// because the deep machine's datasets cannot be shared with the default
// context cache.
func ExtDepth(ctx *Context) (*ExtDepthResult, error) {
	coreCfg := machine.XeonE5440()
	deepCfg := machine.DeepPipeline()
	res := &ExtDepthResult{
		TrueRatio: deepCfg.MispredictPenalty / coreCfg.MispredictPenalty,
	}
	var ratios []float64
	for _, name := range ExtDepthBenchmarks {
		spec, ok := progen.ByName(name)
		if !ok {
			return nil, fmt.Errorf("ext-depth: unknown benchmark %s", name)
		}
		slopeOn := func(mcfg machine.Config) (float64, error) {
			cfg, err := ctx.campaignConfig(spec, 0)
			if err != nil {
				return 0, err
			}
			cfg.Machine = mcfg
			ds, err := core.RunCampaign(cfg)
			if err != nil {
				return 0, err
			}
			model, err := ds.MPKIModel()
			if err != nil {
				return 0, err
			}
			return model.Fit.Slope, nil
		}
		cs, err := slopeOn(coreCfg)
		if err != nil {
			return nil, fmt.Errorf("ext-depth %s: %w", name, err)
		}
		dsl, err := slopeOn(deepCfg)
		if err != nil {
			return nil, fmt.Errorf("ext-depth %s: %w", name, err)
		}
		row := ExtDepthRow{Benchmark: name, CoreSlope: cs, DeepSlope: dsl}
		if cs != 0 {
			row.SlopeRatio = dsl / cs
			ratios = append(ratios, row.SlopeRatio)
		}
		res.Rows = append(res.Rows, row)
	}
	res.MeanRatio = stats.Mean(ratios)
	return res, nil
}

// Render prints the slope comparison.
func (r *ExtDepthResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension: pipeline-depth sensitivity (the regression slope measures the flush cost)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %12s\n", "benchmark", "core slope", "deep slope", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12.4f %12.4f %12.2f\n",
			row.Benchmark, row.CoreSlope, row.DeepSlope, row.SlopeRatio)
	}
	fmt.Fprintf(&b, "mean fitted-slope ratio %.2f vs configured penalty ratio %.2f\n",
		r.MeanRatio, r.TrueRatio)
	return b.String()
}
