package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/heap"
	"interferometry/internal/stats"
)

// Table1Row is one row of the paper's Table 1: the least-squares model
// relating branch prediction to performance, with the 95% prediction
// interval for perfect prediction (0 MPKI).
type Table1Row struct {
	Benchmark string
	Slope     float64
	Intercept float64
	Low, High float64 // 95% prediction interval at 0 MPKI
	R2        float64
	PValue    float64
}

// Table1Result reproduces Table 1 for the 20 significant benchmarks.
type Table1Result struct {
	Rows []Table1Row
}

// Table1 fits every benchmark's MPKI model.
func Table1(ctx *Context) (*Table1Result, error) {
	res := &Table1Result{}
	for _, spec := range table1Specs() {
		ds, err := ctx.Dataset(spec, heap.ModeBump)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", spec.Name, err)
		}
		model, err := ds.MPKIModel()
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", spec.Name, err)
		}
		pi := model.PerfectPrediction()
		res.Rows = append(res.Rows, Table1Row{
			Benchmark: spec.Name,
			Slope:     model.Fit.Slope,
			Intercept: model.Fit.Intercept,
			Low:       pi.Low,
			High:      pi.High,
			R2:        model.Fit.R2,
			PValue:    model.Fit.PValue,
		})
	}
	return res, nil
}

// Render prints the table in the paper's column order.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: least-squares regression model relating branch prediction to performance\n")
	fmt.Fprintf(&b, "%-16s %8s %12s %8s %8s %8s %10s\n",
		"benchmark", "slope", "y-intercept", "low", "high", "r²", "p")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8.3f %12.3f %8.3f %8.3f %8.3f %10.3g\n",
			row.Benchmark, row.Slope, row.Intercept, row.Low, row.High, row.R2, row.PValue)
	}
	return b.String()
}

// MeanSlope returns the average slope, a sanity headline: with a ~25
// cycle flush penalty it should sit near 0.025 CPI per MPKI.
func (r *Table1Result) MeanSlope() float64 {
	var s []float64
	for _, row := range r.Rows {
		s = append(s, row.Slope)
	}
	return stats.Mean(s)
}
