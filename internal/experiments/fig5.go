package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
)

// Fig5LinearBenchmarks and Fig5NonLinearBenchmarks are the two panels of
// Figure 5: (a) highly linear benchmarks and (b) the three worst cases.
var (
	Fig5LinearBenchmarks    = []string{"473.astar", "401.bzip2", "458.sjeng"}
	Fig5NonLinearBenchmarks = []string{"456.hmmer", "252.eon", "178.galgel"}
)

// Fig5Series is one benchmark's simulated (MPKI, normalized CPI) points
// with the regression line. CPI is normalized to the perfect-prediction
// CPI, so the point (0, 1) is perfect prediction.
type Fig5Series struct {
	Benchmark  string
	MPKI       []float64
	NormCPI    []float64
	Slope      float64 // of normalized CPI per MPKI
	InterceptN float64 // normalized intercept; 1.0 means zero error at (0,1)
	ErrAtZero  float64 // percent error of the intercept vs perfect
}

// Fig5Result reproduces Figure 5 from the Figure 4 study results.
type Fig5Result struct {
	Linear    []Fig5Series
	NonLinear []Fig5Series
}

// Figure5 derives its series from the linearity study (it reuses the
// fig4 computation rather than re-simulating).
func Figure5(ctx *Context, fig4 *Fig4Result) (*Fig5Result, error) {
	if fig4 == nil {
		var err error
		fig4, err = Figure4(ctx)
		if err != nil {
			return nil, err
		}
	}
	byName := map[string]*core.LinearityResult{}
	for _, lr := range fig4.PerBenchmark {
		byName[lr.Benchmark] = lr
	}
	build := func(names []string) ([]Fig5Series, error) {
		var out []Fig5Series
		for _, n := range names {
			lr, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("fig5: benchmark %s missing from linearity study", n)
			}
			s := Fig5Series{Benchmark: n}
			for _, p := range lr.Points {
				s.MPKI = append(s.MPKI, p.MPKI)
				s.NormCPI = append(s.NormCPI, p.CPI/lr.PerfectCPI)
			}
			s.Slope = lr.Fit.Slope / lr.PerfectCPI
			s.InterceptN = lr.Fit.Intercept / lr.PerfectCPI
			s.ErrAtZero = lr.PerfectErrPct
			out = append(out, s)
		}
		return out, nil
	}
	lin, err := build(Fig5LinearBenchmarks)
	if err != nil {
		return nil, err
	}
	non, err := build(Fig5NonLinearBenchmarks)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Linear: lin, NonLinear: non}, nil
}

// Render prints both panels' regression lines and intercept errors.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: regression lines relating MPKI to normalized CPI (perfect = (0,1))\n")
	panel := func(title string, series []Fig5Series) {
		fmt.Fprintf(&b, "\n(%s)\n", title)
		for _, s := range series {
			fmt.Fprintf(&b, "  %-14s normCPI = %.5f*MPKI + %.4f  err@0 = %.2f%%  (%d points)\n",
				s.Benchmark, s.Slope, s.InterceptN, s.ErrAtZero, len(s.MPKI))
		}
	}
	panel("a: highly linear", r.Linear)
	panel("b: least linear", r.NonLinear)
	return b.String()
}
