package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/stats"
	"interferometry/internal/uarch/branch"
)

// Fig7Row is one benchmark's MPKI under the real predictor and each
// simulated candidate.
type Fig7Row struct {
	Benchmark string
	RealMPKI  float64
	// Simulated maps predictor name to mean MPKI over the campaign's
	// layouts (Pin runs once per reordering, §7.2).
	Simulated map[string]float64
}

// Fig7Result reproduces Figure 7: MPKI of the real branch predictor
// versus simulated GAs predictors from 2KB to 16KB and L-TAGE, averaged
// over the code reorderings. The paper's averages: real 6.306, 8KB GAs
// 5.729, 16KB GAs 5.542, L-TAGE 3.995.
type Fig7Result struct {
	Predictors []string
	Rows       []Fig7Row
	// Avg maps predictor name (and "real") to the cross-benchmark mean.
	Avg map[string]float64
	// evals and models are kept for Figure 8, which shares this data.
	evals  map[string][]core.PredictorEval
	models map[string]*core.Model
	real   map[string]core.RealPredictorSummary
}

// Figure7 simulates the paper predictors over every Table 1 benchmark's
// campaign layouts.
func Figure7(ctx *Context) (*Fig7Result, error) {
	factories := branch.PaperPredictors()
	res := &Fig7Result{
		Avg:    map[string]float64{},
		evals:  map[string][]core.PredictorEval{},
		models: map[string]*core.Model{},
		real:   map[string]core.RealPredictorSummary{},
	}
	for _, f := range factories {
		res.Predictors = append(res.Predictors, f.Name)
	}
	sums := map[string][]float64{}
	for _, spec := range table1Specs() {
		ds, err := ctx.Dataset(spec, heap.ModeBump)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", spec.Name, err)
		}
		model, err := ds.MPKIModel()
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", spec.Name, err)
		}
		evals, err := ds.EvaluatePredictors(model, factories)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", spec.Name, err)
		}
		row := Fig7Row{
			Benchmark: spec.Name,
			RealMPKI:  stats.Mean(ds.PKIs(pmc.EvBranchMispredicts)),
			Simulated: map[string]float64{},
		}
		for _, e := range evals {
			row.Simulated[e.Name] = e.MPKI
			sums[e.Name] = append(sums[e.Name], e.MPKI)
		}
		sums["real"] = append(sums["real"], row.RealMPKI)
		res.Rows = append(res.Rows, row)
		res.evals[spec.Name] = evals
		res.models[spec.Name] = model
		res.real[spec.Name] = ds.RealPredictor(model)
	}
	for name, vals := range sums {
		res.Avg[name] = stats.Mean(vals)
	}
	return res, nil
}

// Render prints the per-benchmark MPKI table.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: MPKI of real and simulated branch predictors (mean over reorderings)\n")
	fmt.Fprintf(&b, "%-16s %8s", "benchmark", "real")
	for _, p := range r.Predictors {
		fmt.Fprintf(&b, " %9s", p)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %8.3f", row.Benchmark, row.RealMPKI)
		for _, p := range r.Predictors {
			fmt.Fprintf(&b, " %9.3f", row.Simulated[p])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-16s %8.3f", "AVERAGE", r.Avg["real"])
	for _, p := range r.Predictors {
		fmt.Fprintf(&b, " %9.3f", r.Avg[p])
	}
	fmt.Fprintf(&b, "\n(paper averages: real 6.306, gas-8KB 5.729, gas-16KB 5.542, l-tage 3.995)\n")
	return b.String()
}
