package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/progen"
)

// Fig3Benchmark is the benchmark of Figure 3.
const Fig3Benchmark = "454.calculix"

// Fig3Result reproduces Figure 3: with heap randomization combined with
// code reordering, 454.calculix's CPI varies linearly with (a) L1 data
// cache misses and (b) L2 cache misses (§1.3).
type Fig3Result struct {
	L1 RegressionSeries
	L2 RegressionSeries
}

// Figure3 runs the calculix campaign under the randomizing allocator and
// fits the two cache-event models.
func Figure3(ctx *Context) (*Fig3Result, error) {
	spec, ok := progen.ByName(Fig3Benchmark)
	if !ok {
		return nil, fmt.Errorf("fig3: unknown benchmark %s", Fig3Benchmark)
	}
	ds, err := ctx.Dataset(spec, heap.ModeRandomized)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	l1, err := buildSeries(ds, pmc.EvL1DMisses, "L1D misses/KI")
	if err != nil {
		return nil, fmt.Errorf("fig3 L1: %w", err)
	}
	l2, err := buildSeries(ds, pmc.EvL2Misses, "L2 misses/KI")
	if err != nil {
		return nil, fmt.Errorf("fig3 L2: %w", err)
	}
	return &Fig3Result{L1: l1, L2: l2}, nil
}

// Render prints both cache-effect models.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: cache effects on performance under heap randomization + code reordering\n")
	renderSeries(&b, r.L1)
	renderSeries(&b, r.L2)
	return b.String()
}
