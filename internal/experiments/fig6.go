package experiments

import (
	"fmt"
	"strings"

	"interferometry/internal/core"
	"interferometry/internal/heap"
	"interferometry/internal/pmc"
	"interferometry/internal/stats"
)

// Fig6Result reproduces Figure 6: per benchmark, the r² of CPI against
// branch mispredictions, L1 instruction cache misses and L2 cache misses,
// plus the combined multi-linear model (§6.1). The paper's headline: "on
// average, 27% of the CPI difference between different code reorderings
// can be explained by branch misprediction", with 462.libquantum at
// 84.2%.
type Fig6Result struct {
	Rows []core.Blame
	// Averages per event over the suite.
	AvgBranch, AvgL1I, AvgL2, AvgCombined float64
}

// Figure6 runs the whole-suite blame analysis.
func Figure6(ctx *Context) (*Fig6Result, error) {
	res := &Fig6Result{}
	var br, l1i, l2, comb []float64
	for _, spec := range suiteSpecs() {
		ds, err := ctx.Dataset(spec, heap.ModeBump)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", spec.Name, err)
		}
		b := ds.BlameAnalysis()
		res.Rows = append(res.Rows, b)
		br = append(br, b.PerEvent[pmc.EvBranchMispredicts])
		l1i = append(l1i, b.PerEvent[pmc.EvL1IMisses])
		l2 = append(l2, b.PerEvent[pmc.EvL2Misses])
		comb = append(comb, b.CombinedR2)
	}
	res.AvgBranch = stats.Mean(br)
	res.AvgL1I = stats.Mean(l1i)
	res.AvgL2 = stats.Mean(l2)
	res.AvgCombined = stats.Mean(comb)
	return res, nil
}

// Render prints the cumulative-r² rows.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: r² of CPI vs microarchitectural events, per benchmark\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s\n", "benchmark", "branch", "L1I", "L2", "combined")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10.3f %10.3f %10.3f %10.3f\n",
			row.Benchmark,
			row.PerEvent[pmc.EvBranchMispredicts],
			row.PerEvent[pmc.EvL1IMisses],
			row.PerEvent[pmc.EvL2Misses],
			row.CombinedR2)
	}
	fmt.Fprintf(&b, "%-16s %10.3f %10.3f %10.3f %10.3f   (paper avg branch share: 0.27)\n",
		"AVERAGE", r.AvgBranch, r.AvgL1I, r.AvgL2, r.AvgCombined)
	return b.String()
}
