package xrand

import "math"

// Thin aliases keep the generator code compact while the package remains a
// plain consumer of the standard math library.
func sqrt(x float64) float64 { return math.Sqrt(x) }
func ln(x float64) float64   { return math.Log(x) }
func pow(x, y float64) float64 {
	return math.Pow(x, y)
}
