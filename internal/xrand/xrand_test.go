package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctKeysDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for distinct keys collided %d/1000 times", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 64)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed, draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestDeriveDoesNotConsumeState(t *testing.T) {
	a, b := New(99), New(99)
	_ = a.Derive(1, 2, 3)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("Derive perturbed parent stream at draw %d", i)
		}
	}
}

func TestDeriveIndependentStreams(t *testing.T) {
	r := New(5)
	d1 := r.Derive(1)
	d2 := r.Derive(2)
	d1again := r.Derive(1)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams with different tags should differ")
	}
	d1.Reseed(0)
	_ = d1
	// Same tags must give the same stream.
	x, y := d1again.Uint64(), r.Derive(1).Uint64()
	if x != y {
		t.Fatalf("Derive with same tags differs: %d vs %d", x, y)
	}
}

func TestMixStable(t *testing.T) {
	// Mix must be a pure function.
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, 2, 3) == Mix(3, 2, 1) {
		t.Fatal("Mix should be order-sensitive")
	}
	if Mix(0) == Mix(0, 0) {
		t.Fatal("Mix should be length-sensitive")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(123)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from %v", k, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(77)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(88)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(10)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(12)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first element %d appeared %d times, want ~%v", k, c, want)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(13)
	vals := []int{5, 5, 7, 9, 1, 1, 1}
	got := append([]int(nil), vals...)
	r.ShuffleInts(got)
	count := func(s []int) map[int]int {
		m := map[int]int{}
		for _, v := range s {
			m[v]++
		}
		return m
	}
	cg, cw := count(got), count(vals)
	for k, v := range cw {
		if cg[k] != v {
			t.Fatalf("shuffle changed multiset: %v vs %v", got, vals)
		}
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(14)
	p := 0.25
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // 3.0
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(15)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(16)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != draws {
		t.Fatalf("Zipf lost draws: %d", total)
	}
}

func TestZipfRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.Zipf(10, 0.9); v < 0 || v >= 10 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(18)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", f)
	}
}

func TestSplitDiverges(t *testing.T) {
	r := New(19)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("Split stream identical to parent")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Float64()
	}
	_ = sink
}
