// Package xrand provides the deterministic pseudo-random number generation
// used throughout the interferometry pipeline.
//
// Program interferometry depends on reproducibility: the paper's Camino
// toolchain "accepts a seed to a pseudorandom number generator to generate
// pseudo-random but reproducible orderings of procedures and object files"
// (§5.3), and the DieHard-style allocator likewise assigns random addresses
// that can be repeated by reusing the key (§1). Package xrand gives every
// stage of our pipeline an independent, stable stream derived from a single
// campaign key, so a (benchmark, layout seed, heap seed) triple always
// reproduces the same executable, the same heap placement, and the same
// counter readings.
//
// The generator is SplitMix64 (Steele, Lea & Flood 2014) for stream
// derivation plus xoshiro256** (Blackman & Vigna 2018) for bulk generation.
// Both are implemented here so the module stays stdlib-only and the streams
// are stable across Go releases, unlike math/rand's unspecified sources.
package xrand

import "math/bits"

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used both as a stand-alone mixer for key derivation and to seed
// the xoshiro state from a single 64-bit key.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix hashes a sequence of 64-bit values into a single well-distributed
// key. It is the basis for deriving independent streams: Mix(campaign,
// stageTag, index) gives each pipeline stage its own seed.
func Mix(vs ...uint64) uint64 {
	state := uint64(0x243f6a8885a308d3) // pi fractional bits
	for _, v := range vs {
		state ^= splitmix64(&state) ^ v*0x9e3779b97f4a7c15
		state = bits.RotateLeft64(state, 29)
	}
	return splitmix64(&state)
}

// Rand is a seeded xoshiro256** generator. The zero value is not usable;
// construct with New. Rand is not safe for concurrent use; derive one
// generator per goroutine with Derive or Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from key. Distinct keys yield streams that
// are independent for all practical purposes.
func New(key uint64) *Rand {
	var r Rand
	r.Reseed(key)
	return &r
}

// Reseed resets the generator to the state New(key) would produce.
func (r *Rand) Reseed(key uint64) {
	sm := key
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a nonzero state; splitmix64 outputs are zero with
	// probability 2^-256 for all four words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Derive returns a new generator whose stream is a pure function of this
// generator's seed key and the given tags, without consuming any state from
// r. Use it to hand independent streams to sub-stages so that inserting a
// new consumer does not shift the random numbers seen by existing ones.
func (r *Rand) Derive(tags ...uint64) *Rand {
	key := Mix(append([]uint64{r.s[0], r.s[1], r.s[2], r.s[3]}, tags...)...)
	return New(key)
}

// Split consumes state from r and returns a fresh generator seeded by it.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*ln(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -ln(u)
		}
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts performs an in-place Fisher-Yates shuffle of p.
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs an in-place Fisher-Yates shuffle of n elements using the
// provided swap function, matching the contract of math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a geometric variate (number of failures before the
// first success) with success probability p in (0, 1].
func (r *Rand) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("xrand: Geometric called with p <= 0")
	}
	// Inverse-CDF method.
	return int(ln(1-r.Float64()) / ln(1-p))
}

// Zipf returns a variate in [0, n) with probability proportional to
// 1/(k+1)^s, via rejection-free inverse CDF over a precomputed table-less
// approximation. For the modest n used in workload generation a direct
// cumulative walk is fast enough and exact.
func (r *Rand) Zipf(n int, s float64) int {
	if n <= 0 {
		panic("xrand: Zipf called with n <= 0")
	}
	// Direct method: draw u in (0, total] and walk. To avoid O(n) per call
	// callers that need many draws should use NewZipf.
	z := NewZipf(r, n, s)
	return z.Next()
}

// Zipfian is a reusable Zipf sampler over [0, n) with exponent s, using a
// precomputed cumulative table and binary search.
type Zipfian struct {
	r   *Rand
	cum []float64
}

// NewZipf builds a Zipf sampler. Probability of k is (k+1)^-s normalized.
func NewZipf(r *Rand, n int, s float64) *Zipfian {
	cum := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		total += pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipfian{r: r, cum: cum}
}

// Next draws the next Zipf variate.
func (z *Zipfian) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
