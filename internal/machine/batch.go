package machine

import (
	"errors"
	"fmt"
	"math/bits"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/uarch/branch"
	"interferometry/internal/uarch/cache"
)

// Batch is the batched replay engine: it loads up to K executables of
// the same program and walks the trace once, carrying K-wide
// structure-of-arrays microarchitectural state — one cache.Bank lane,
// one branch.XeonBank lane, one BTB lane and one heap allocator per
// layout. The trace decode, the per-block base-cycle accumulation and
// the allocation-event sequencing are shared across the batch; only the
// address-dependent work (cache set walks, predictor table indexing) is
// per lane.
//
// Every lane is pinned bit-identical to Machine.RunDeterministic on the
// same spec: identical counters and an identical raw cycle float,
// because each lane performs exactly the scalar path's sequence of
// floating-point additions (per-lane accumulators, never a shared base
// plus per-lane deltas — float addition is not associative) and exactly
// its sequence of table updates.
//
// A Batch is not safe for concurrent use; create one per goroutine. The
// layout-dependent tables are rebuilt on every Run, so a Batch never
// serves stale block tables. Like Machine, a steady-state Run performs
// no heap allocation.
type Batch struct {
	cfg      Config
	maxLanes int

	l1i, l1d, l2 *cache.Bank
	btb          *branch.BTBBank
	xeon         *branch.XeonBank
	table        *heap.PlacementTable

	// addrLimit is the largest address the cache banks' 32-bit packed
	// tags can represent (minus slack for prefetch look-ahead). Run
	// rejects executables whose segments reach it, and the walk rejects
	// heap placements that do — far beyond any simulated address space,
	// but enforced with an explicit error so the caller falls back to
	// the scalar path instead of the bank panicking.
	addrLimit uint64

	// Per-Run loaded state. shared is keyed by the program (layout
	// independent); the lane tables are rebuilt every Run. The
	// layout-dependent per-(block, lane) fetch state is kept as parallel
	// flat rows [bid*k + ki] (stride k = len(specs)) so the fetch walk
	// hands whole rows to cache.Bank.FetchRows: the block's code spans
	// lineN L1I lines starting at the line containing fetchFirst, and
	// beyond the first fetch block of each line there are extraHits
	// further fetch blocks — guaranteed L1I hits in the scalar access
	// order (nothing can evict a line between consecutive fetches of
	// it), so the walk bulk-counts them instead of re-walking the set.
	loadedProg *isa.Program
	shared     []batchShared
	fetchFirst []uint64
	lineN      []int32
	extraHits  []int32
	// termAddrs[bid*k + ki] is block bid's terminator PC in lane ki's
	// layout, kept as a flat row so the predictor banks can take a whole
	// row per resolved branch.
	termAddrs []uint64
	// calleeStart[bid] indexes the callee slot space; slot j of block bid
	// holds the K per-lane addresses at calleeAddrs[(start+j)*k ...].
	calleeStart []int32
	calleeAddrs []uint64

	// Per-lane run scratch, sized to maxLanes.
	cycles   []float64
	counters []Counters
	preds    []branch.Predictor // non-nil only for non-oracle overrides
	oracle   []bool
	uniform  bool // every lane on the banked Xeon predictor
	dets     []float64
	seeds    []uint64
	hcfgs    []heap.Config
	masks    []uint64 // FetchRows miss-mask scratch
}

// batchShared is the layout-independent per-block state, computed once
// per program. wide marks the rare block whose code could span more
// than 64 L1I lines in some layout; those blocks chunk their fetch walk
// through AccessSeq instead of one FetchRows call.
type batchShared struct {
	baseCycles   float64
	penaltyScale float64
	nMems        int32
	nAllocs      int32
	termKind     isa.TermKind
	wide         bool
}

// NewBatch builds a batched replay engine for up to maxLanes concurrent
// layouts. It returns an error for configurations the SoA state cannot
// represent (cache or BTB geometries over 8 ways); callers fall back to
// the scalar path.
func NewBatch(cfg Config, maxLanes int) (*Batch, error) {
	if maxLanes <= 0 {
		return nil, errors.New("machine: batch needs at least one lane")
	}
	if maxLanes > 64 {
		// The cache banks hand back per-lane miss bitmasks in one word.
		return nil, fmt.Errorf("machine: batch supports at most 64 lanes, got %d", maxLanes)
	}
	if cfg.FetchBytes == 0 {
		return nil, errors.New("machine: FetchBytes is zero")
	}
	l1i, err := cache.NewBank(cfg.L1I, maxLanes)
	if err != nil {
		return nil, err
	}
	l1d, err := cache.NewBank(cfg.L1D, maxLanes)
	if err != nil {
		return nil, err
	}
	l2, err := cache.NewBank(cfg.L2, maxLanes)
	if err != nil {
		return nil, err
	}
	btb, err := branch.NewBTBBank(cfg.BTBSets, cfg.BTBWays, maxLanes)
	if err != nil {
		return nil, err
	}
	lim := l1i.AddrLimit()
	if l := l1d.AddrLimit(); l < lim {
		lim = l
	}
	if l := l2.AddrLimit(); l < lim {
		lim = l
	}
	return &Batch{
		cfg:       cfg,
		maxLanes:  maxLanes,
		addrLimit: lim - 4096, // slack for next-line prefetch look-ahead
		l1i:       l1i,
		l1d:       l1d,
		l2:        l2,
		btb:       btb,
		xeon:      branch.NewXeonBank(maxLanes),
		table:     heap.NewPlacementTable(maxLanes),
		cycles:    make([]float64, maxLanes),
		counters:  make([]Counters, maxLanes),
		preds:     make([]branch.Predictor, maxLanes),
		oracle:    make([]bool, maxLanes),
		dets:      make([]float64, maxLanes),
		seeds:     make([]uint64, maxLanes),
		hcfgs:     make([]heap.Config, maxLanes),
		masks:     make([]uint64, maxLanes),
	}, nil
}

// Config returns the machine configuration.
func (b *Batch) Config() Config { return b.cfg }

// MaxLanes returns the batch capacity.
func (b *Batch) MaxLanes() int { return b.maxLanes }

// Invalidate drops the cached layout-independent program tables, for the
// (pathological) case of an isa.Program mutated in place between runs.
// The layout-dependent tables are rebuilt on every Run and need no
// invalidation.
func (b *Batch) Invalidate() { b.loadedProg = nil }

// Run replays the trace once against len(specs) layouts and returns one
// Counters and one raw (unrounded) deterministic cycle count per lane,
// exactly what Machine.RunDeterministic returns for each spec. The
// returned slices are reused by the next Run.
//
// All specs must share the same Trace and HeapMode; NoiseSeed and
// DisableNoise are ignored (a batch computes deterministic replays —
// callers synthesize noise with Machine.NoisyCycles, which needs no
// simulation state). Per-lane Predictor overrides are honored: nil uses
// the banked Xeon-model predictor, a branch.Oracle lane skips prediction
// entirely, and any other override runs as that lane's private scalar
// predictor — each non-oracle override must be a distinct instance, or
// lanes would corrupt each other's state.
func (b *Batch) Run(specs []RunSpec) ([]Counters, []float64, error) {
	k := len(specs)
	if k == 0 {
		return nil, nil, errors.New("machine: batch run needs at least one spec")
	}
	if k > b.maxLanes {
		return nil, nil, fmt.Errorf("machine: batch of %d exceeds %d lanes", k, b.maxLanes)
	}
	trace := specs[0].Trace
	mode := specs[0].HeapMode
	for i := range specs {
		s := &specs[i]
		if s.Exe == nil || s.Trace == nil {
			return nil, nil, errors.New("machine: RunSpec needs Exe and Trace")
		}
		if s.Trace != trace {
			return nil, nil, errors.New("machine: batch specs must share one trace")
		}
		if s.HeapMode != mode {
			return nil, nil, errors.New("machine: batch specs must share one heap mode")
		}
		if s.Trace.Program != s.Exe.Program {
			return nil, nil, errors.New("machine: trace and executable are from different programs")
		}
		if s.Exe.CodeLimit >= b.addrLimit || s.Exe.DataLimit >= b.addrLimit {
			return nil, nil, fmt.Errorf("machine: batch lane %d: executable segments reach %#x, beyond the bank address limit %#x",
				i, max64(s.Exe.CodeLimit, s.Exe.DataLimit), b.addrLimit)
		}
	}
	// Resolve per-lane predictors.
	b.uniform = true
	for ki := range specs {
		b.preds[ki], b.oracle[ki] = nil, false
		if p := specs[ki].Predictor; p != nil {
			b.uniform = false
			if _, ok := p.(branch.Oracle); ok {
				b.oracle[ki] = true
				continue
			}
			for kj := 0; kj < ki; kj++ {
				if b.preds[kj] == p {
					return nil, nil, fmt.Errorf("machine: batch lanes %d and %d share one predictor instance", kj, ki)
				}
			}
			b.preds[ki] = p
		}
	}
	if err := b.load(specs); err != nil {
		return nil, nil, err
	}

	// Power-on state for every lane.
	b.l1i.Flush()
	b.l1d.Flush()
	b.l2.Flush()
	b.btb.Reset()
	b.xeon.Reset()
	for ki := 0; ki < k; ki++ {
		if b.preds[ki] != nil {
			b.preds[ki].Reset()
		}
		b.cycles[ki] = 0
		b.counters[ki] = Counters{}
	}

	// Heap and global placement.
	prog := trace.Program
	for ki := 0; ki < k; ki++ {
		b.hcfgs[ki] = heap.Config{Base: specs[ki].Exe.DataLimit + 0x1000000}
		b.seeds[ki] = specs[ki].HeapSeed
	}
	b.table.Reset(len(prog.Objects), mode, b.seeds[:k], b.hcfgs[:k])
	for i := range prog.Objects {
		if !prog.Objects[i].Heap {
			row := b.table.Row(isa.ObjectID(i))
			for ki := 0; ki < k; ki++ {
				row[ki] = specs[ki].Exe.GlobalBase[i]
			}
			b.table.MarkPlaced(isa.ObjectID(i))
		}
	}

	if err := b.walk(trace, k); err != nil {
		return nil, nil, err
	}

	// Final counter readout, mirroring RunDeterministic.
	for ki := 0; ki < k; ki++ {
		c := &b.counters[ki]
		c.Instructions = trace.Instrs
		// Which branches retire is layout-independent; only the
		// mispredict counts vary per lane.
		c.CondBranches = trace.CondBranches
		c.IndirectBranches = trace.IndirectCalls
		c.BranchesRetired = c.CondBranches + c.IndirectBranches + trace.Calls + trace.Returns
		c.BranchMispredicts = c.CondMispredicts + c.IndirectMispreds
		c.L1IAccesses = b.l1i.Accesses(ki)
		c.L1IMisses = b.l1i.Misses(ki)
		c.L1DAccesses = b.l1d.Accesses(ki)
		c.L1DMisses = b.l1d.Misses(ki)
		c.L2Accesses = b.l2.Accesses(ki)
		c.L2Misses = b.l2.Misses(ki)
		c.Cycles = roundCycles(b.cycles[ki])
		b.dets[ki] = b.cycles[ki]
	}
	return b.counters[:k], b.dets[:k], nil
}

// walk is the shared trace walk: one decode of the block sequence and
// the per-block event streams feeds every lane. The per-lane work
// inside each event preserves the scalar path's operation order lane by
// lane, which is what makes the cycle floats bit-identical.
func (b *Batch) walk(trace *interp.Trace, k int) error {
	var (
		cfg       = &b.cfg
		l2pen     = cfg.L2MissPenalty * cfg.L2Overlap
		lineBytes = uint64(cfg.L1I.LineBytes)
		cycles    = b.cycles[:k]
		counters  = b.counters[:k]
		table     = b.table
		l1i, l1d  = b.l1i, b.l1d
		l2        = b.l2
		xeon      = b.xeon
		btb       = b.btb
		termAddrs = b.termAddrs
		uniform   = b.uniform
		condIdx   uint64
		indIdx    int
		memIdx    int
		allocIdx  int
	)
	for _, bid := range trace.BlockSeq {
		sh := &b.shared[bid]
		base := int(bid) * k
		firsts := b.fetchFirst[base : base+k]
		lineNs := b.lineN[base : base+k]
		extras := b.extraHits[base : base+k]

		// Instruction fetch, line-grouped: one fused L1I row walk per
		// block (all lanes' set walks in one FetchRows call), then per
		// lane the miss penalties and a bulk hit count for the further
		// fetch blocks in each line. Base cycles are added first, as in
		// the scalar loop; only the first access to a line can miss, so
		// the penalty sequence is exactly the scalar per-fetch-block one
		// — AccessSeq already resolved the full line mask before any L2
		// access, and the L2 walk never touches L1I state, so splitting
		// the phases across lanes changes nothing a lane can observe.
		if !sh.wide {
			masks := b.masks[:k]
			l1i.FetchRows(firsts, lineNs, masks)
			for ki := 0; ki < k; ki++ {
				cy := cycles[ki] + sh.baseCycles
				fa := firsts[ki]
				// Ascending mask-bit order keeps the penalty additions in
				// the scalar per-fetch-block sequence.
				for mask := masks[ki]; mask != 0; mask &= mask - 1 {
					j := bits.TrailingZeros64(mask)
					cy += cfg.L1IMissPenalty
					if !l2.Access(ki, fa+uint64(j)*lineBytes) {
						cy += l2pen
					}
				}
				l1i.AddHits(ki, uint64(extras[ki]))
				cycles[ki] = cy
			}
		} else {
			// A block wide enough to overflow the 64-bit miss mask in
			// some layout: chunk the line walk per lane.
			for ki := 0; ki < k; ki++ {
				cy := cycles[ki] + sh.baseCycles
				fa := firsts[ki]
				for rem := lineNs[ki]; rem > 0; {
					c := rem
					if c > 64 {
						c = 64
					}
					for mask := l1i.AccessSeq(ki, fa, c); mask != 0; mask &= mask - 1 {
						j := bits.TrailingZeros64(mask)
						cy += cfg.L1IMissPenalty
						if !l2.Access(ki, fa+uint64(j)*lineBytes) {
							cy += l2pen
						}
					}
					fa += uint64(c) * lineBytes
					rem -= c
				}
				l1i.AddHits(ki, uint64(extras[ki]))
				cycles[ki] = cy
			}
		}

		// Allocation events, decoded once and fanned across lanes. Heap
		// placements are bounds-checked against the bank address limit
		// here (allocation events are rare) so the access path needs no
		// per-access check.
		for i := int32(0); i < sh.nAllocs; i++ {
			obj, kind := trace.AllocObj[allocIdx], trace.AllocKind[allocIdx]
			allocIdx++
			if kind == isa.AllocNew {
				size := trace.Program.Objects[obj].Size
				table.Alloc(obj, size)
				row := table.Row(obj)
				for ki := 0; ki < k; ki++ {
					if row[ki]+size > b.addrLimit {
						return fmt.Errorf("machine: batch lane %d: heap placement %#x+%d of object %d beyond the bank address limit %#x",
							ki, row[ki], size, obj, b.addrLimit)
					}
				}
			} else {
				table.Free(obj)
			}
		}

		// Memory accesses.
		for i := int32(0); i < sh.nMems; i++ {
			obj, off := trace.MemObj[memIdx], uint64(trace.MemOff[memIdx])
			memIdx++
			if !table.Placed(obj) {
				return fmt.Errorf("machine: access to unplaced object %d in block %d", obj, bid)
			}
			row := table.Row(obj)
			for mask := l1d.AccessRow(row, off); mask != 0; mask &= mask - 1 {
				ki := bits.TrailingZeros64(mask)
				addr := row[ki] + off
				cycles[ki] += cfg.L1DMissPenalty
				if !l2.Access(ki, addr) {
					cycles[ki] += l2pen
				}
				if cfg.NextLinePrefetch {
					l2.Prefetch(ki, addr+64)
				}
			}
		}

		// Terminator. Branch retire counts are layout-independent and
		// filled in at readout; only mispredicts are tracked per lane.
		switch sh.termKind {
		case isa.TermCondBranch:
			taken := trace.TakenBits[condIdx>>6]>>(condIdx&63)&1 == 1
			condIdx++
			trow := termAddrs[int(bid)*k : int(bid)*k+k]
			penalty := cfg.MispredictPenalty * sh.penaltyScale
			if uniform {
				for mask := xeon.PredictUpdateRow(trow, taken); mask != 0; mask &= mask - 1 {
					ki := bits.TrailingZeros64(mask)
					counters[ki].CondMispredicts++
					cycles[ki] += penalty
				}
				continue
			}
			for ki := 0; ki < k; ki++ {
				if b.oracle[ki] {
					continue
				}
				var predicted bool
				if p := b.preds[ki]; p != nil {
					predicted = p.Predict(trow[ki])
					p.Update(trow[ki], taken)
				} else {
					predicted = xeon.PredictUpdate(ki, trow[ki], taken)
				}
				if predicted != taken {
					counters[ki].CondMispredicts++
					cycles[ki] += penalty
				}
			}
		case isa.TermIndirectCall:
			sel := int(trace.IndirectSel[indIdx])
			indIdx++
			trow := termAddrs[int(bid)*k : int(bid)*k+k]
			crow := b.calleeAddrs[(int(b.calleeStart[bid])+sel)*k:]
			for ki := 0; ki < k; ki++ {
				if !btb.PredictUpdate(ki, trow[ki], crow[ki]) {
					counters[ki].IndirectMispreds++
					cycles[ki] += cfg.BTBMissPenalty
				}
			}
		}
	}
	return nil
}

// load rebuilds the per-lane block tables (and, when the program
// changed, the shared layout-independent tables).
func (b *Batch) load(specs []RunSpec) error {
	prog := specs[0].Trace.Program
	k := len(specs)
	nb := len(prog.Blocks)
	fb := b.cfg.FetchBytes
	lineBytes := uint64(b.cfg.L1I.LineBytes)

	if b.loadedProg != prog {
		if cap(b.shared) < nb {
			b.shared = make([]batchShared, nb)
			b.calleeStart = make([]int32, nb)
		} else {
			b.shared = b.shared[:nb]
			b.calleeStart = b.calleeStart[:nb]
		}
		slot := int32(0)
		for id := range prog.Blocks {
			blk := &prog.Blocks[id]
			b.shared[id] = batchShared{
				baseCycles:   baseCyclesFor(&b.cfg, blk),
				penaltyScale: 1 / (1 + b.cfg.MispredictShadow*float64(len(blk.Mems))),
				nMems:        int32(len(blk.Mems)),
				nAllocs:      int32(len(blk.Allocs)),
				termKind:     blk.Term.Kind,
				// ceil(Bytes/line)+1 bounds the lines any layout's
				// placement of the block can touch, so wide is layout
				// independent.
				wide: (uint64(blk.Bytes)+lineBytes-1)/lineBytes+1 > 64,
			}
			if blk.Term.Kind == isa.TermIndirectCall {
				b.calleeStart[id] = slot
				slot += int32(len(blk.Term.Callees))
			} else {
				b.calleeStart[id] = -1
			}
		}
		b.loadedProg = prog
	}

	if need := nb * k; cap(b.fetchFirst) < need {
		b.fetchFirst = make([]uint64, need)
		b.lineN = make([]int32, need)
		b.extraHits = make([]int32, need)
		b.termAddrs = make([]uint64, need)
	} else {
		b.fetchFirst = b.fetchFirst[:need]
		b.lineN = b.lineN[:need]
		b.extraHits = b.extraHits[:need]
		b.termAddrs = b.termAddrs[:need]
	}
	nslots := 0
	for id := range prog.Blocks {
		if prog.Blocks[id].Term.Kind == isa.TermIndirectCall {
			nslots += len(prog.Blocks[id].Term.Callees)
		}
	}
	if need := nslots * k; cap(b.calleeAddrs) < need {
		b.calleeAddrs = make([]uint64, need)
	} else {
		b.calleeAddrs = b.calleeAddrs[:need]
	}
	for ki := 0; ki < k; ki++ {
		exe := specs[ki].Exe
		for id := range prog.Blocks {
			blk := &prog.Blocks[id]
			addr := exe.BlockAddr[id]
			end := addr + uint64(blk.Bytes)
			fetchFirst := addr &^ (fb - 1)
			fetchN := int32(((end-1)&^(fb-1)-fetchFirst)/fb) + 1
			lineN := int32(((end-1)&^(lineBytes-1)-addr&^(lineBytes-1))/lineBytes) + 1
			b.fetchFirst[id*k+ki] = fetchFirst
			b.lineN[id*k+ki] = lineN
			b.extraHits[id*k+ki] = fetchN - lineN
			b.termAddrs[id*k+ki] = exe.TermAddr(isa.BlockID(id))
			if start := b.calleeStart[id]; start >= 0 {
				for j, callee := range blk.Term.Callees {
					b.calleeAddrs[(int(start)+j)*k+ki] = exe.ProcAddr[callee]
				}
			}
		}
	}
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// baseCyclesFor is the layout-independent cycle cost of one execution of
// the block, identical to Machine.baseCycles.
func baseCyclesFor(cfg *Config, b *isa.Block) float64 {
	cy := 0.0
	for cls, n := range b.ClassCounts {
		cy += cfg.ClassCycles[cls] * float64(n)
	}
	cy += cfg.MemOpCycles * float64(len(b.Mems))
	cy += cfg.AllocCycles * float64(len(b.Allocs))
	if b.Term.Kind != isa.TermFallthrough {
		cy += cfg.TermCycles
	}
	return cy
}
