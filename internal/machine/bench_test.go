package machine_test

import (
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

// BenchmarkMachineRun measures the steady-state cost of one timing-model
// run, the unit the paper protocol multiplies by 15. The machine reuses
// its predictor, heap allocator, load tables and scratch slices, so
// allocs/op must report 0 in steady state for both heap modes.
func BenchmarkMachineRun(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		b.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
		b.Run(mode.String(), func(b *testing.B) {
			m := machine.New(machine.XeonE5440())
			rs := machine.RunSpec{Exe: exe, Trace: tr, HeapMode: mode, HeapSeed: 3}
			if _, err := m.Run(rs); err != nil { // warm the reusable state
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs.NoiseSeed = uint64(i)
				if _, err := m.Run(rs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestMachineRunZeroAlloc pins the benchmark's headline property in the
// ordinary test suite: after warmup, a machine run allocates nothing, in
// either heap mode. BenchmarkMachineRun reports the same number, but a
// plain test fails `go test ./...` the moment a change reintroduces a
// steady-state allocation.
func TestMachineRunZeroAlloc(t *testing.T) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
		m := machine.New(machine.XeonE5440())
		rs := machine.RunSpec{Exe: exe, Trace: tr, HeapMode: mode, HeapSeed: 3}
		if _, err := m.Run(rs); err != nil { // warm the reusable state
			t.Fatal(err)
		}
		noise := uint64(0)
		allocs := testing.AllocsPerRun(10, func() {
			noise++
			rs.NoiseSeed = noise
			if _, err := m.Run(rs); err != nil {
				t.Error(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per run, want 0", mode, allocs)
		}
	}
}

// BenchmarkReplay measures the timing model's replay throughput on a
// realistic benchmark trace, the inner loop of every campaign.
func BenchmarkReplay(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		b.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		b.Fatal(err)
	}
	m := machine.New(machine.XeonE5440())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tr.Instrs)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkTraceGeneration measures the interpreter's trace-generation
// throughput (paid once per benchmark, amortized over all layouts).
func BenchmarkTraceGeneration(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		tr, err := interp.Run(prog, uint64(i+1), interp.StopRule{Budget: 200000})
		if err != nil {
			b.Fatal(err)
		}
		instrs += tr.Instrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "Minstr/s")
}
