package machine

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
	"interferometry/internal/uarch/cache"
)

// Delta is the delta-replay engine: it walks the trace once per campaign
// into a recording (see recording.go) that classifies every cache event
// by how its outcome can depend on the layout, then measures each layout
// by re-simulating only the perturbed state. Per lane it pays a branch
// pre-pass over the shared conditional/indirect event streams (predictor
// indices are address-hashed, so they are genuinely per-layout), a walk
// over the recording's breakpoints with per-set "apply windows" bounding
// how much real cache state must be maintained, and one run of the
// shared cycle skeleton — instead of the full per-lane trace walk the
// batched engine performs.
//
// Every lane is pinned bit-identical to Machine.RunDeterministic on the
// same spec: the cycle accumulator performs exactly the scalar path's
// sequence of floating-point additions (the skeleton stores each shared
// addend individually, never pre-summed), and every per-lane cache or
// predictor probe replays against state built from exactly the scalar
// access sequence. Whenever a layout or configuration violates a
// recording assumption, Run returns an error and the caller falls back
// to the batched or scalar path; a defensive in-walk divergence check
// turns any classification bug into a fallback instead of a wrong
// number.
//
// A Delta is not safe for concurrent use; create one per goroutine.
// With a warm recording a Run performs no heap allocation at steady
// state.
type Delta struct {
	cfg      Config
	maxLanes int

	xeon *branch.XeonBank
	btb  *branch.BTBBank
	// Per-lane cache state is replayed lane by lane, so one scalar cache
	// per level is reused across lanes (flushed in between). Their
	// internal hit/miss counters are ignored: delta counters are derived
	// from the shared totals plus per-lane miss events.
	l1i, l1d, l2       *cache.Cache
	ixL1I, ixL1D, ixL2 cache.Indexer

	// One recording (or one failure) is cached per trace content.
	rec     *recording
	recErr  error
	failKey deltaKey

	// Branch pre-pass results: bit k of condMask[i] / indMask[i] is set
	// iff lane k mispredicted the i-th conditional / indirect event.
	condMask []uint64
	indMask  []uint64
	rowPCs   []uint64
	rowTgts  []uint64

	// Per-lane scratch, reused across lanes and runs.
	placeBase []uint64 // per alloc event: the lane's placement base
	l1iCut    []int32  // per L1I set: last sensitive event index, -1 none
	l1dCut    []int32
	l2Cut     []int32
	apply     []int64 // packed event<<8 | apply flags, sorted

	counters []Counters
	dets     []float64

	bumpHeap *heap.Bump
	randHeap *heap.Randomized
}

// deltaKey identifies trace content for the recording-failure cache.
type deltaKey struct {
	prog      *isa.Program
	inputSeed uint64
	instrs    uint64
	nBlockSeq int
	stoppedBy interp.StopReason
}

func keyOfTrace(t *interp.Trace) deltaKey {
	return deltaKey{
		prog:      t.Program,
		inputSeed: t.InputSeed,
		instrs:    t.Instrs,
		nBlockSeq: len(t.BlockSeq),
		stoppedBy: t.StoppedBy,
	}
}

// errDeltaDiverged marks a defensive in-walk check tripping: a per-lane
// replay disagreed with what the recording's classification guarantees.
// It should be unreachable; callers treat it like any other delta error
// and fall back to the batched or scalar engine, which preserves
// byte-identical campaign output.
var errDeltaDiverged = errors.New("machine: delta replay diverged from its recording")

// NewDelta builds a delta-replay engine for up to maxLanes concurrent
// layouts. Configurations outside the recording's proven geometry (see
// checkRecordingConfig) are rejected here so callers fall back early.
func NewDelta(cfg Config, maxLanes int) (*Delta, error) {
	if maxLanes <= 0 {
		return nil, errors.New("machine: delta needs at least one lane")
	}
	if maxLanes > 64 {
		// Branch mispredict masks are one word per event.
		return nil, fmt.Errorf("machine: delta supports at most 64 lanes, got %d", maxLanes)
	}
	if err := checkRecordingConfig(&cfg); err != nil {
		return nil, err
	}
	btb, err := branch.NewBTBBank(cfg.BTBSets, cfg.BTBWays, maxLanes)
	if err != nil {
		return nil, err
	}
	return &Delta{
		cfg:      cfg,
		maxLanes: maxLanes,
		xeon:     branch.NewXeonBank(maxLanes),
		btb:      btb,
		l1i:      cache.New(cfg.L1I),
		l1d:      cache.New(cfg.L1D),
		l2:       cache.New(cfg.L2),
		ixL1I:    cfg.L1I.Indexer(),
		ixL1D:    cfg.L1D.Indexer(),
		ixL2:     cfg.L2.Indexer(),
		rowPCs:   make([]uint64, maxLanes),
		rowTgts:  make([]uint64, maxLanes),
		l1iCut:   make([]int32, cfg.L1I.Sets()),
		l1dCut:   make([]int32, cfg.L1D.Sets()),
		l2Cut:    make([]int32, cfg.L2.Sets()),
		counters: make([]Counters, maxLanes),
		dets:     make([]float64, maxLanes),
	}, nil
}

// Config returns the machine configuration.
func (d *Delta) Config() Config { return d.cfg }

// MaxLanes returns the lane capacity.
func (d *Delta) MaxLanes() int { return d.maxLanes }

// Invalidate drops the cached recording, for a trace or program mutated
// in place between runs (the recording cache keys on program identity
// plus trace content fingerprints, so in-place mutation would otherwise
// be served a stale recording — the same escape hatch Machine.Invalidate
// and Batch.Invalidate provide).
func (d *Delta) Invalidate() {
	d.rec = nil
	d.recErr = nil
	d.failKey = deltaKey{}
}

// preflightMaxInstrs bounds the traces Preflight will gamble a recording
// build on. The build is itself a classified trace walk costing roughly
// a third of a full 32-lane batched walk, so preflighting a long trace
// that then declines would tax the default (auto) path measurably — and
// long traces never profit anyway: delta wins only where the layout-
// sensitive events die out early in absolute terms, and on the surveyed
// suite every winning workload sits under ~8k instructions (470.lbm wins
// 1.4× at 8k and loses past 10k; see DESIGN.md §15). Above the bound
// Preflight answers no without touching the trace; DeltaOn still forces
// a build regardless.
const preflightMaxInstrs = 8192

// Preflight reports whether the delta walk is estimated to outrun the
// batched engine on the spec's trace. Short traces get a real answer:
// the recording is built (or reused) and its profitability model
// consulted — and retained, so a Run that follows pays no further trace
// walk. Traces past preflightMaxInstrs are declined outright, without a
// walk. An error means delta cannot measure this trace at all (the
// caller should use the batched or scalar path).
func (d *Delta) Preflight(spec RunSpec) (bool, error) {
	if spec.Trace == nil {
		return false, errors.New("machine: RunSpec needs Exe and Trace")
	}
	if spec.Trace.Instrs > preflightMaxInstrs {
		return false, nil
	}
	rec, err := d.recording(spec.Trace)
	if err != nil {
		return false, err
	}
	return rec.profitable(), nil
}

func (d *Delta) recording(t *interp.Trace) (*recording, error) {
	if d.rec != nil && d.rec.matches(t) {
		return d.rec, nil
	}
	if d.recErr != nil && d.failKey == keyOfTrace(t) {
		return nil, d.recErr
	}
	rec, err := newRecording(&d.cfg, t)
	if err != nil {
		d.rec, d.recErr, d.failKey = nil, err, keyOfTrace(t)
		return nil, err
	}
	d.rec, d.recErr = rec, nil
	if n := len(rec.condProc); cap(d.condMask) < n {
		d.condMask = make([]uint64, n)
	} else {
		d.condMask = d.condMask[:n]
	}
	if n := len(rec.indProc); cap(d.indMask) < n {
		d.indMask = make([]uint64, n)
	} else {
		d.indMask = d.indMask[:n]
	}
	if n := len(rec.allocObj); cap(d.placeBase) < n {
		d.placeBase = make([]uint64, n)
	} else {
		d.placeBase = d.placeBase[:n]
	}
	return rec, nil
}

// Run measures the trace against len(specs) layouts and returns one
// Counters and one raw (unrounded) deterministic cycle count per lane,
// exactly what Machine.RunDeterministic returns for each spec. The
// returned slices are reused by the next Run.
//
// All specs must share the same Trace and HeapMode; NoiseSeed and
// DisableNoise are ignored (callers synthesize noise with
// Machine.NoisyCycles). Predictor overrides are not supported: an
// override changes which per-lane state the recording would have to
// track, so such specs return an error and the caller falls back.
func (d *Delta) Run(specs []RunSpec) ([]Counters, []float64, error) {
	k := len(specs)
	if k == 0 {
		return nil, nil, errors.New("machine: delta run needs at least one spec")
	}
	if k > d.maxLanes {
		return nil, nil, fmt.Errorf("machine: delta batch of %d exceeds %d lanes", k, d.maxLanes)
	}
	trace := specs[0].Trace
	mode := specs[0].HeapMode
	for i := range specs {
		s := &specs[i]
		if s.Exe == nil || s.Trace == nil {
			return nil, nil, errors.New("machine: RunSpec needs Exe and Trace")
		}
		if s.Trace != trace {
			return nil, nil, errors.New("machine: delta specs must share one trace")
		}
		if s.HeapMode != mode {
			return nil, nil, errors.New("machine: delta specs must share one heap mode")
		}
		if s.Trace.Program != s.Exe.Program {
			return nil, nil, errors.New("machine: trace and executable are from different programs")
		}
		if s.Predictor != nil {
			return nil, nil, errors.New("machine: delta does not support predictor overrides")
		}
	}
	rec, err := d.recording(trace)
	if err != nil {
		return nil, nil, err
	}
	for i := range specs {
		if err := verifyDeltaLayout(rec, specs[i].Exe); err != nil {
			return nil, nil, err
		}
	}
	d.branchPass(rec, specs)
	for ki := range specs {
		if err := d.lane(rec, &specs[ki], ki); err != nil {
			return nil, nil, err
		}
	}
	return d.counters[:k], d.dets[:k], nil
}

// verifyDeltaLayout checks the address-table assumptions the recording's
// canonical offsets were classified under. Any deviation (a fetch-
// aligned layout, an unaligned procedure or global) is not an error of
// the layout — it just needs the batched or scalar engine.
func verifyDeltaLayout(rec *recording, exe *toolchain.Executable) error {
	for p, a := range exe.ProcAddr {
		if a%16 != 0 {
			return fmt.Errorf("machine: delta needs 16-byte-aligned procedures; proc %d at %#x", p, a)
		}
	}
	prog := exe.Program
	for id := range prog.Blocks {
		if exe.BlockAddr[id] != exe.ProcAddr[prog.Blocks[id].Proc]+uint64(rec.canonOff[id]) {
			return fmt.Errorf("machine: delta needs contiguous in-procedure block layout; block %d deviates", id)
		}
	}
	for i := range prog.Objects {
		if !prog.Objects[i].Heap && exe.GlobalBase[i]%64 != 0 {
			return fmt.Errorf("machine: delta needs 64-byte-aligned globals; object %d at %#x", i, exe.GlobalBase[i])
		}
	}
	if exe.DataBase < exe.CodeLimit+64 {
		return errors.New("machine: delta needs a line-separated gap between code and data segments")
	}
	return nil
}

// branchPass resolves every conditional and indirect event for all lanes
// up front: predictor and BTB indices hash per-lane addresses, so this
// is real per-layout simulation — but banked row-at-a-time, exactly like
// the batched engine, and independent of the cache walk.
func (d *Delta) branchPass(rec *recording, specs []RunSpec) {
	k := len(specs)
	d.xeon.Reset()
	d.btb.Reset()
	pcs := d.rowPCs[:k]
	for e := range rec.condProc {
		p, off := rec.condProc[e], rec.condOff[e]
		for ki := 0; ki < k; ki++ {
			pcs[ki] = specs[ki].Exe.ProcAddr[p] + off
		}
		d.condMask[e] = d.xeon.PredictUpdateRow(pcs, rec.condTaken[e])
	}
	tgts := d.rowTgts[:k]
	for e := range rec.indProc {
		p, off, callee := rec.indProc[e], rec.indOff[e], rec.indCallee[e]
		for ki := 0; ki < k; ki++ {
			pcs[ki] = specs[ki].Exe.ProcAddr[p] + off
			tgts[ki] = specs[ki].Exe.ProcAddr[callee]
		}
		d.indMask[e] = d.btb.PredictUpdateRow(pcs, tgts)
	}
}

// nbrDeltas maps dclAddr neighbor-mask bits to wrapped byte offsets.
var nbrDeltas = [6]uint64{^uint64(47), ^uint64(31), ^uint64(15), 16, 32, 48}

func (d *Delta) unitAddr(rec *recording, exe *toolchain.Executable, u int32) uint64 {
	a := rec.unitA[u]
	off := uint64(rec.unitOff[u])
	if int(u) < rec.nCodeUnits {
		return exe.ProcAddr[a] + off
	}
	if a >= 0 {
		return d.placeBase[a] + off
	}
	return exe.GlobalBase[^a] + off
}

// lane measures one layout: replay heap placement, derive the apply
// windows from the sensitive events' per-lane sets, build and sort the
// apply list, then walk breakpoints + apply list over the shared
// skeleton.
func (d *Delta) lane(rec *recording, spec *RunSpec, ki int) error {
	exe := spec.Exe

	// Heap placement replay: the same allocator sequence the scalar path
	// performs, recorded per alloc event.
	hcfg := heap.Config{Base: exe.DataLimit + 0x1000000}
	var alloc heap.Allocator
	if spec.HeapMode == heap.ModeRandomized {
		if d.randHeap == nil {
			d.randHeap = heap.NewRandomized(spec.HeapSeed, hcfg)
		} else {
			d.randHeap.Reset(spec.HeapSeed, hcfg)
		}
		alloc = d.randHeap
	} else {
		if d.bumpHeap == nil {
			d.bumpHeap = heap.NewBump(hcfg)
		} else {
			d.bumpHeap.Reset(hcfg)
		}
		alloc = d.bumpHeap
	}
	for i := range rec.allocObj {
		obj := isa.ObjectID(rec.allocObj[i])
		if rec.allocNew[i] {
			base := alloc.Alloc(obj, rec.allocSize[i])
			if base%heap.PlacementAlign != 0 {
				return fmt.Errorf("machine: delta needs %d-byte-aligned heap placements; object %d at %#x",
					heap.PlacementAlign, obj, base)
			}
			d.placeBase[i] = base
		} else {
			alloc.Free(obj)
		}
	}

	// Apply windows: per cache set, the last sensitive event whose
	// per-lane address maps there. Cache state only needs to be
	// maintained in a set up to that point; afterwards every outcome in
	// the set is classification-guaranteed.
	for i := range d.l1iCut {
		d.l1iCut[i] = -1
	}
	for i := range d.l1dCut {
		d.l1dCut[i] = -1
	}
	for i := range d.l2Cut {
		d.l2Cut[i] = -1
	}
	for _, e := range rec.sensEvs {
		addr := d.unitAddr(rec, exe, rec.evUnit[e])
		if devKind(rec.evMeta[e]) == devFetch {
			d.l1iCut[d.ixL1I.Set(addr)] = e
		} else {
			d.l1dCut[d.ixL1D.Set(addr)] = e
		}
		d.l2Cut[d.ixL2.Set(addr)] = e
	}

	// Apply list: for every unit mapping into an active set, its events
	// up to the set's cutoff, flagged with which structures to replay.
	// Units are visited in first-touch order; no window extends past the
	// last sensitive event, so the scan stops at the first unit touched
	// after it and a sparse trace skips almost every unit.
	maxCut := int32(-1)
	if n := len(rec.sensEvs); n > 0 {
		maxCut = rec.sensEvs[n-1]
	}
	ap := d.apply[:0]
	for _, u := range rec.unitsByFirstEv {
		lo, hi := rec.unitEvStart[u], rec.unitEvStart[u+1]
		if rec.unitEvs[lo] > maxCut {
			break
		}
		addr := d.unitAddr(rec, exe, u)
		var cut1 int32
		if int(u) < rec.nCodeUnits {
			cut1 = d.l1iCut[d.ixL1I.Set(addr)]
		} else {
			cut1 = d.l1dCut[d.ixL1D.Set(addr)]
		}
		cut2 := d.l2Cut[d.ixL2.Set(addr)]
		cutMax := cut1
		if cut2 > cutMax {
			cutMax = cut2
		}
		if cutMax < 0 {
			continue
		}
		for _, e := range rec.unitEvs[lo:hi] {
			if e > cutMax {
				break
			}
			var fl int64
			if e <= cut1 {
				fl = applyL1
			}
			if e <= cut2 && devClass(rec.evMeta[e]) != dclHit {
				fl |= applyL2
			}
			if fl != 0 {
				ap = append(ap, int64(e)<<8|fl)
			}
		}
	}
	slices.Sort(ap)
	d.apply = ap

	// The walk: merge shared breakpoints with the lane's apply list,
	// running the skeleton between events — every float addition in the
	// exact scalar order.
	d.l1i.Flush()
	d.l1d.Flush()
	d.l2.Flush()
	var (
		cfg         = &d.cfg
		l2pen       = cfg.L2MissPenalty * cfg.L2Overlap
		skel        = rec.skel
		evSkel      = rec.evSkel
		sbp         = rec.sharedBPs
		laneBit     = uint64(1) << ki
		cy          float64
		misp        uint64
		indMisp     uint64
		l1iMiss     uint64
		l1dSensMiss uint64
		l2MissLane  uint64
		sp, si, ai  int
	)
	for si < len(sbp) || ai < len(ap) {
		var e int32
		var fl uint8
		if ai >= len(ap) || (si < len(sbp) && sbp[si] <= int32(ap[ai]>>8)) {
			e = sbp[si]
			si++
			if ai < len(ap) && int32(ap[ai]>>8) == e {
				fl = uint8(ap[ai])
				ai++
			}
		} else {
			e = int32(ap[ai] >> 8)
			fl = uint8(ap[ai])
			ai++
		}
		for t := int(evSkel[e]); sp < t; sp++ {
			cy += skel[sp]
		}
		meta := rec.evMeta[e]
		switch devKind(meta) {
		case devCond:
			if d.condMask[rec.evUnit[e]]&laneBit != 0 {
				misp++
				cy += rec.condPenalty[rec.evUnit[e]]
			}
		case devInd:
			if d.indMask[rec.evUnit[e]]&laneBit != 0 {
				indMisp++
				cy += cfg.BTBMissPenalty
			}
		case devFetch, devMem:
			addr := d.unitAddr(rec, exe, rec.evUnit[e])
			switch devClass(meta) {
			case dclHit:
				lc := d.l1d
				if devKind(meta) == devFetch {
					lc = d.l1i
				}
				if fl&applyL1 != 0 && !lc.Access(addr) {
					return fmt.Errorf("%w: guaranteed hit missed at event %d", errDeltaDiverged, e)
				}
			case dclCold:
				if fl&applyL1 != 0 && d.l1d.Access(addr) {
					return fmt.Errorf("%w: cold line resident in L1D at event %d", errDeltaDiverged, e)
				}
				if fl&applyL2 != 0 && d.l2.Access(addr) {
					return fmt.Errorf("%w: cold line resident in L2 at event %d", errDeltaDiverged, e)
				}
			case dclAddr:
				hit := false
				if fl&applyL1 != 0 {
					hit = d.l1i.Access(addr)
				} else {
					line := addr >> 6
					for m := rec.evNbr[e]; m != 0; m &= m - 1 {
						if (addr+nbrDeltas[bits.TrailingZeros8(m)])>>6 == line {
							hit = true
							break
						}
					}
				}
				if !hit {
					l1iMiss++
					cy += cfg.L1IMissPenalty
					if fl&applyL2 != 0 && d.l2.Access(addr) {
						return fmt.Errorf("%w: cold code line resident in L2 at event %d", errDeltaDiverged, e)
					}
					l2MissLane++
					cy += l2pen
				}
			default: // dclSens
				if fl&applyL1 == 0 {
					return fmt.Errorf("%w: sensitive event %d outside its own apply window", errDeltaDiverged, e)
				}
				lc := d.l1d
				isFetch := devKind(meta) == devFetch
				if isFetch {
					lc = d.l1i
				}
				if !lc.Access(addr) {
					if isFetch {
						l1iMiss++
						cy += cfg.L1IMissPenalty
					} else {
						l1dSensMiss++
						cy += cfg.L1DMissPenalty
					}
					if fl&applyL2 == 0 {
						return fmt.Errorf("%w: sensitive event %d outside its L2 apply window", errDeltaDiverged, e)
					}
					if !d.l2.Access(addr) {
						l2MissLane++
						cy += l2pen
					}
				}
			}
		}
	}
	for ; sp < len(skel); sp++ {
		cy += skel[sp]
	}

	trace := spec.Trace
	c := &d.counters[ki]
	*c = Counters{
		Instructions:     trace.Instrs,
		CondBranches:     trace.CondBranches,
		IndirectBranches: trace.IndirectCalls,
		CondMispredicts:  misp,
		IndirectMispreds: indMisp,
	}
	c.BranchesRetired = c.CondBranches + c.IndirectBranches + trace.Calls + trace.Returns
	c.BranchMispredicts = misp + indMisp
	c.L1IAccesses = rec.nFetch
	c.L1IMisses = l1iMiss
	c.L1DAccesses = rec.nMem
	c.L1DMisses = rec.coldData + l1dSensMiss
	c.L2Accesses = c.L1IMisses + c.L1DMisses
	c.L2Misses = rec.coldData + l2MissLane
	c.Cycles = roundCycles(cy)
	d.dets[ki] = cy
	return nil
}
