package machine_test

import (
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

// TestReusedMachineMatchesFresh drives one machine through an interleaved
// sequence of layouts, heap modes and noise seeds, and checks every run
// against a machine constructed fresh for that run. This is the contract
// that makes per-worker machine reuse (and the allocation-free fast path)
// safe: reused predictor tables, heap allocators and scratch state must be
// indistinguishable from power-on state.
func TestReusedMachineMatchesFresh(t *testing.T) {
	p := testprog.CacheStress(48, 150)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 30000})
	if err != nil {
		t.Fatal(err)
	}
	builder := toolchain.NewBuilder(p, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	exes := make([]*toolchain.Executable, 4)
	for i := range exes {
		if exes[i], err = builder.Build(uint64(i + 1)); err != nil {
			t.Fatal(err)
		}
	}
	reused := machine.New(machine.XeonE5440())
	specs := []machine.RunSpec{
		{Exe: exes[0], Trace: tr, NoiseSeed: 1},
		{Exe: exes[1], Trace: tr, HeapMode: heap.ModeRandomized, HeapSeed: 7, NoiseSeed: 2},
		{Exe: exes[0], Trace: tr, NoiseSeed: 3, DisableNoise: true},
		{Exe: exes[2], Trace: tr, HeapMode: heap.ModeRandomized, HeapSeed: 8, NoiseSeed: 4},
		{Exe: exes[3], Trace: tr, NoiseSeed: 5},
		{Exe: exes[1], Trace: tr, HeapMode: heap.ModeRandomized, HeapSeed: 7, NoiseSeed: 2},
	}
	for i, spec := range specs {
		got, err := reused.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := machine.New(machine.XeonE5440()).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d: reused machine diverged from fresh\nreused: %+v\nfresh:  %+v", i, got, want)
		}
	}
}

// TestRunDeterministicMatchesDisableNoise pins the contract between the
// two run APIs: RunDeterministic equals Run with DisableNoise, and
// NoisyCycles over its raw cycle count equals Run with noise on.
func TestRunDeterministicMatchesDisableNoise(t *testing.T) {
	p := testprog.Branchy()
	tr, err := interp.Run(p, 3, interp.StopRule{Budget: 10000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 4, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.XeonE5440())
	spec := machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: 42}

	det, raw, err := m.RunDeterministic(spec)
	if err != nil {
		t.Fatal(err)
	}
	quiet := spec
	quiet.DisableNoise = true
	want, err := m.Run(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if det != want {
		t.Fatalf("RunDeterministic %+v != Run(DisableNoise) %+v", det, want)
	}

	noisy, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NoisyCycles(spec, raw); got != noisy.Cycles {
		t.Fatalf("NoisyCycles = %d, Run cycles = %d", got, noisy.Cycles)
	}
	synth := det
	synth.Cycles = m.NoisyCycles(spec, raw)
	if synth != noisy {
		t.Fatalf("synthesized counters %+v != noisy run %+v", synth, noisy)
	}
}
