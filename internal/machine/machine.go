package machine

import (
	"errors"
	"fmt"
	"math"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
	"interferometry/internal/uarch/cache"
	"interferometry/internal/xrand"
)

// Machine is a reusable simulator instance. It is not safe for concurrent
// use; create one per goroutine.
//
// A machine reuses all per-run scratch state (the built-in predictor, the
// heap allocators, the object-placement tables and the per-block load
// tables), so steady-state runs perform no heap allocation; every piece of
// reused state is restored to its power-on value before each run, making a
// reused machine bit-identical to a fresh one.
type Machine struct {
	cfg Config

	l1i, l1d, l2 *cache.Cache
	btb          *branch.BTB

	// builtin is the reusable Xeon-model predictor used when RunSpec does
	// not override it; it is Reset before every run.
	builtin branch.Predictor

	// loaded caches the per-block precomputation for one (program,
	// executable) pair; reloading happens automatically when the
	// executable changes.
	loadedExe *toolchain.Executable
	blocks    []loadedBlock
	// callees is the flat backing array for the blocks' calleeAddrs
	// sub-slices, reused across loads.
	callees []uint64

	// objBase/objSet are per-run object placement scratch, sized to the
	// program.
	objBase []uint64
	objSet  []bool

	// Reusable allocators for the two heap modes.
	bumpHeap *heap.Bump
	randHeap *heap.Randomized
}

// loadedBlock is the precomputed per-block state for one executable.
type loadedBlock struct {
	fetchFirst uint64 // first fetch-block address
	fetchN     int    // number of fetch blocks spanned
	baseCycles float64
	termAddr   uint64
	termKind   isa.TermKind
	// penaltyScale is the effective misprediction penalty multiplier for
	// the block's terminator (see Config.MispredictShadow).
	penaltyScale float64
	nMems        int
	nAllocs      int
	calleeAddrs  []uint64 // indirect-call target addresses by selector index
}

// New builds a machine with the given configuration.
func New(cfg Config) *Machine {
	return &Machine{
		cfg: cfg,
		l1i: cache.New(cfg.L1I),
		l1d: cache.New(cfg.L1D),
		l2:  cache.New(cfg.L2),
		btb: branch.NewBTB(cfg.BTBSets, cfg.BTBWays),
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// RunSpec describes one measurement run.
type RunSpec struct {
	// Exe is the linked executable (code layout).
	Exe *toolchain.Executable
	// Trace is the recorded execution to replay.
	Trace *interp.Trace
	// HeapMode selects the allocator; HeapSeed seeds the randomized one.
	HeapMode heap.Mode
	HeapSeed uint64
	// NoiseSeed drives the system-noise model. Runs with the same
	// (layout, heap) but different noise seeds model repeated executions
	// of the same binary.
	NoiseSeed uint64
	// Predictor optionally overrides the machine's built-in Xeon-model
	// predictor, for predictor design studies (§3, §7). A
	// branch.Oracle implementation yields perfect prediction. Nil means
	// the built-in predictor.
	Predictor branch.Predictor
	// DisableNoise turns off the system-noise model, for the simulator
	// persona where "there is no variance in the simulation result"
	// (§7.2).
	DisableNoise bool
}

// Run replays the trace through the timing model and returns the counter
// readings.
func (m *Machine) Run(spec RunSpec) (Counters, error) {
	c, det, err := m.RunDeterministic(spec)
	if err != nil {
		return Counters{}, err
	}
	if !spec.DisableNoise {
		c.Cycles = m.NoisyCycles(spec, det)
	}
	return c, nil
}

// RunDeterministic replays the trace with the system-noise model off and
// returns the counters together with the raw (unrounded) cycle count. The
// raw count is what NoisyCycles needs to synthesize the noisy observation
// any NoiseSeed would have produced, without re-running the simulation:
// noise perturbs only the final cycle scalar, never the simulated
// microarchitectural state.
func (m *Machine) RunDeterministic(spec RunSpec) (Counters, float64, error) {
	if spec.Exe == nil || spec.Trace == nil {
		return Counters{}, 0, errors.New("machine: RunSpec needs Exe and Trace")
	}
	if spec.Trace.Program != spec.Exe.Program {
		return Counters{}, 0, errors.New("machine: trace and executable are from different programs")
	}
	if err := m.load(spec.Exe); err != nil {
		return Counters{}, 0, err
	}
	m.l1i.Flush()
	m.l1d.Flush()
	m.l2.Flush()
	m.btb.Reset()

	pred := spec.Predictor
	if pred == nil {
		if m.builtin == nil {
			m.builtin = branch.NewXeonE5440()
		}
		pred = m.builtin
	}
	pred.Reset()
	_, oracle := pred.(branch.Oracle)

	prog := spec.Exe.Program
	alloc := m.heapFor(spec)

	if n := len(prog.Objects); cap(m.objBase) < n {
		m.objBase = make([]uint64, n)
		m.objSet = make([]bool, n)
	} else {
		m.objBase = m.objBase[:n]
		m.objSet = m.objSet[:n]
	}
	var (
		cycles  float64
		c       Counters
		cfg     = &m.cfg
		cur     = spec.Trace.Cursor()
		objBase = m.objBase
		objSet  = m.objSet
	)
	for i := range prog.Objects {
		if !prog.Objects[i].Heap {
			objBase[i] = spec.Exe.GlobalBase[i]
			objSet[i] = true
		} else {
			objSet[i] = false
		}
	}

	for {
		bid, ok := cur.NextBlock()
		if !ok {
			break
		}
		lb := &m.blocks[bid]
		cycles += lb.baseCycles

		// Instruction fetch: one L1I access per fetch block spanned.
		fa := lb.fetchFirst
		for i := 0; i < lb.fetchN; i++ {
			if !m.l1i.Access(fa) {
				cycles += cfg.L1IMissPenalty
				if !m.l2.Access(fa) {
					cycles += cfg.L2MissPenalty * cfg.L2Overlap
				}
			}
			fa += cfg.FetchBytes
		}

		// Allocation events.
		for i := 0; i < lb.nAllocs; i++ {
			obj, kind := cur.NextAlloc()
			if kind == isa.AllocNew {
				objBase[obj] = alloc.Alloc(obj, prog.Objects[obj].Size)
				objSet[obj] = true
			} else {
				alloc.Free(obj)
			}
		}

		// Memory accesses.
		for i := 0; i < lb.nMems; i++ {
			obj, off := cur.NextMem()
			if !objSet[obj] {
				return Counters{}, 0, fmt.Errorf("machine: access to unplaced object %d in block %d", obj, bid)
			}
			addr := objBase[obj] + uint64(off)
			if !m.l1d.Access(addr) {
				cycles += cfg.L1DMissPenalty
				if !m.l2.Access(addr) {
					cycles += cfg.L2MissPenalty * cfg.L2Overlap
				}
				if cfg.NextLinePrefetch {
					// Install the sequentially next line into the L2
					// without charging cycles or counting the access.
					m.l2.Prefetch(addr + 64)
				}
			}
		}

		// Terminator.
		switch lb.termKind {
		case isa.TermCondBranch:
			taken := cur.NextTaken()
			c.CondBranches++
			if oracle {
				// Perfect prediction: no penalty, no update.
				break
			}
			predicted := pred.Predict(lb.termAddr)
			pred.Update(lb.termAddr, taken)
			if predicted != taken {
				c.CondMispredicts++
				cycles += cfg.MispredictPenalty * lb.penaltyScale
			}
		case isa.TermIndirectCall:
			sel := cur.NextIndirect()
			c.IndirectBranches++
			target := lb.calleeAddrs[sel]
			if !m.btb.Predict(lb.termAddr, target) {
				c.IndirectMispreds++
				cycles += cfg.BTBMissPenalty
			}
		}
	}

	c.Instructions = spec.Trace.Instrs
	c.BranchesRetired = c.CondBranches + c.IndirectBranches +
		spec.Trace.Calls + spec.Trace.Returns
	c.BranchMispredicts = c.CondMispredicts + c.IndirectMispreds
	c.L1IAccesses = m.l1i.Accesses()
	c.L1IMisses = m.l1i.Misses()
	c.L1DAccesses = m.l1d.Accesses()
	c.L1DMisses = m.l1d.Misses()
	c.L2Accesses = m.l2.Accesses()
	c.L2Misses = m.l2.Misses()

	c.Cycles = roundCycles(cycles)
	return c, cycles, nil
}

// NoisyCycles applies the system-noise model to a deterministic cycle
// count, exactly as Run would for the spec's NoiseSeed. Only observed
// quantities are perturbed, never the simulated microarchitectural state —
// which is why a single deterministic replay plus NoisyCycles per seed is
// bit-identical to re-running the full simulation per seed.
func (m *Machine) NoisyCycles(spec RunSpec, det float64) uint64 {
	var rng xrand.Rand
	rng.Reseed(xrand.Mix(spec.NoiseSeed, spec.Exe.Seed, spec.Trace.InputSeed, 0x6e6f6973))
	cycles := det
	cycles *= 1 + m.cfg.NoiseSigma*rng.NormFloat64()
	if rng.Bool(m.cfg.NoiseSpikeProb) {
		cycles += m.cfg.NoiseSpikeScale * sqrtF(cycles) * (1 + rng.Float64())
	}
	return roundCycles(cycles)
}

// roundCycles converts the accumulated cycle count to the counter reading.
func roundCycles(cycles float64) uint64 {
	if cycles < 0 {
		return 0
	}
	return uint64(cycles + 0.5)
}

// heapFor returns the run's allocator, reusing the machine's per-mode
// instance after restoring it to its freshly-constructed state.
func (m *Machine) heapFor(spec RunSpec) heap.Allocator {
	hcfg := heap.Config{Base: spec.Exe.DataLimit + 0x1000000}
	if spec.HeapMode == heap.ModeRandomized {
		if m.randHeap == nil {
			m.randHeap = heap.NewRandomized(spec.HeapSeed, hcfg)
		} else {
			m.randHeap.Reset(spec.HeapSeed, hcfg)
		}
		return m.randHeap
	}
	if m.bumpHeap == nil {
		m.bumpHeap = heap.NewBump(hcfg)
	} else {
		m.bumpHeap.Reset(hcfg)
	}
	return m.bumpHeap
}

// Invalidate drops the cached per-block precomputation, forcing the next
// run to reload its executable. The load cache keys on pointer identity,
// so an Executable mutated in place — e.g. a buffer re-decoded by an
// artifact cache, or a test rewriting BlockAddr — would otherwise be
// served stale block tables; callers that rebuild an executable in place
// must call Invalidate before the next run.
func (m *Machine) Invalidate() { m.loadedExe = nil }

// load precomputes per-block state for the executable. The block table and
// the callee-address backing array are reused across executables of the
// same (or smaller) program, so re-loading in a campaign's layout loop does
// not allocate after the first layout. The cache keys on pointer identity;
// see Invalidate for the in-place-mutation escape hatch.
func (m *Machine) load(exe *toolchain.Executable) error {
	if m.loadedExe == exe {
		return nil
	}
	prog := exe.Program
	fb := m.cfg.FetchBytes
	if fb == 0 {
		return errors.New("machine: FetchBytes is zero")
	}
	var blocks []loadedBlock
	if n := len(prog.Blocks); cap(m.blocks) >= n {
		blocks = m.blocks[:n]
	} else {
		blocks = make([]loadedBlock, n)
	}
	nCallees := 0
	for id := range prog.Blocks {
		if prog.Blocks[id].Term.Kind == isa.TermIndirectCall {
			nCallees += len(prog.Blocks[id].Term.Callees)
		}
	}
	callees := m.callees
	if cap(callees) < nCallees {
		callees = make([]uint64, 0, nCallees)
	} else {
		callees = callees[:0]
	}
	for id := range prog.Blocks {
		b := &prog.Blocks[id]
		addr := exe.BlockAddr[id]
		end := addr + uint64(b.Bytes)
		fetchFirst := addr &^ (fb - 1)
		lb := loadedBlock{
			fetchFirst:   fetchFirst,
			fetchN:       int(((end-1)&^(fb-1)-fetchFirst)/fb) + 1,
			baseCycles:   m.baseCycles(b),
			termAddr:     exe.TermAddr(isa.BlockID(id)),
			termKind:     b.Term.Kind,
			penaltyScale: 1 / (1 + m.cfg.MispredictShadow*float64(len(b.Mems))),
			nMems:        len(b.Mems),
			nAllocs:      len(b.Allocs),
		}
		if b.Term.Kind == isa.TermIndirectCall {
			start := len(callees)
			for _, callee := range b.Term.Callees {
				callees = append(callees, exe.ProcAddr[callee])
			}
			lb.calleeAddrs = callees[start:len(callees):len(callees)]
		}
		blocks[id] = lb
	}
	m.blocks = blocks
	m.callees = callees
	m.loadedExe = exe
	return nil
}

// baseCycles is the layout-independent cycle cost of one execution of the
// block: instruction-class costs plus memory and allocation base costs and
// the terminator.
func (m *Machine) baseCycles(b *isa.Block) float64 {
	return baseCyclesFor(&m.cfg, b)
}

func sqrtF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
