package machine

import (
	"errors"
	"fmt"
	"math"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
)

// The delta engine decomposes the trace into events and classifies each
// one, once per (config, trace), by how its cache outcome can depend on
// the layout. The classes:
//
//   - dclHit: guaranteed L1 hit in every admissible layout. Fewer
//     distinct other 2KB regions were touched (on the event's cache)
//     since the 16-byte unit's previous touch than the cache has ways,
//     so by the LRU stack property the unit's line is still resident no
//     matter which set the layout hashed it into.
//   - dclCold: guaranteed cold miss in every layout — the first touch of
//     a global's cache line (globals are 64-byte aligned, so the line is
//     private to the object and canonical). Misses L1D and L2; both
//     penalties live in the shared cycle skeleton.
//   - dclAddr: the first touch of an interior code unit whose line-mates
//     are all within ±48 bytes of it in the same procedure. Whether the
//     fetch hits is decided per lane by pure address arithmetic: it hits
//     iff some previously-touched, still-resident neighbor unit lands on
//     the same 64-byte line in that lane's layout, and a miss is a cold
//     L2 miss (code lines are touched through L1I only).
//   - dclSens: everything else — re-touches with too much interference,
//     code units within 48 bytes of a procedure edge, every heap first
//     touch. Resolved per lane against real per-lane cache state.
//
// The classification is computed against canonical intra-procedure /
// intra-object offsets only, so it is valid for every executable that
// passes Delta's per-lane gates.
const (
	devFetch = 0 // L1I access of one 16-byte fetch block
	devMem   = 1 // L1D access
	devCond  = 2 // conditional-branch terminator
	devInd   = 3 // indirect-call terminator

	dclHit  = 0
	dclCold = 1
	dclAddr = 2
	dclSens = 3

	applyL1 = 1 // apply-list flag: replay the event against L1 state
	applyL2 = 2 // apply-list flag: replay the event's L2 traffic
)

func devKind(m uint8) uint8  { return m & 3 }
func devClass(m uint8) uint8 { return m >> 2 & 3 }

// recording is the layout-independent reference built from one
// instrumented trace walk. It holds the canonical event stream, the
// shared cycle skeleton (every floating-point addition that is identical
// across layouts, in exact scalar order), the per-unit event index the
// per-lane apply lists are built from, and the branch event streams the
// predictor pre-pass consumes. A recording depends only on (Config,
// trace content); Delta caches one and rebuilds when the trace changes.
type recording struct {
	// Cache key: traces are rebuilt per campaign, but interpretation is
	// deterministic, so (program identity, input seed, length) identifies
	// the content without retaining the trace itself.
	prog      *isa.Program
	inputSeed uint64
	instrs    uint64
	nBlockSeq int
	stoppedBy interp.StopReason

	// Canonical code geometry: block offsets within their procedure and
	// the flat 16-byte-unit space (code units first, then data units
	// discovered during the walk).
	canonOff      []uint32 // per block: offset of the block within its procedure
	procUnitStart []int32  // per procedure: first code-unit id
	nCodeUnits    int

	// unitA is the unit's anchor: for code units the procedure id; for
	// data units the placing alloc-event index, or ^obj for globals.
	// unitOff is the unit's byte offset from the anchor's base address.
	unitA   []int32
	unitOff []uint32

	// Event stream, in exact scalar replay order.
	evMeta []uint8  // devKind | devClass<<2
	evUnit []int32  // cache events: unit id; branch events: sequence index
	evSkel []int32  // skeleton length before this event's own additions
	evNbr  []uint8  // dclAddr: touched-neighbor mask, bit i = delta (i-3 or i-2)*16

	// skel is the shared cycle skeleton: per-block base cycles plus the
	// dclCold penalty pairs, one float per scalar addition.
	skel []float64

	// CSR index: unitEvs[unitEvStart[u]:unitEvStart[u+1]] lists unit u's
	// cache events in trace order.
	unitEvStart []int32
	unitEvs     []int32

	// unitsByFirstEv lists every unit with at least one cache event,
	// ascending by first event index. Apply windows never extend past the
	// last sensitive event, so a lane's apply-list build scans only the
	// prefix of units whose first event precedes it — on a trace whose
	// perturbable events die out early, most units are never visited.
	unitsByFirstEv []int32

	// sharedBPs are the event indices every lane must visit (cond, ind,
	// dclAddr), ascending. sensEvs are the dclSens events, ascending —
	// the per-lane apply windows are seeded from them.
	sharedBPs []int32
	sensEvs   []int32

	// Conditional-branch stream: the terminator PC is
	// ProcAddr[condProc[i]] + condOff[i] (condOff is a wrapped signed
	// delta, so "end-4" underflow is exact), condPenalty the precomputed
	// MispredictPenalty*penaltyScale product the scalar path adds.
	condProc    []int32
	condOff     []uint64
	condTaken   []bool
	condPenalty []float64

	// Indirect-call stream: PC as above, target ProcAddr[indCallee[i]].
	indProc   []int32
	indOff    []uint64
	indCallee []int32

	// Allocation event stream, replayed per lane for heap placement.
	allocObj  []int32
	allocNew  []bool
	allocSize []uint64

	// Shared counter totals.
	nFetch   uint64
	nMem     uint64
	coldData uint64 // dclCold events: shared L1D misses and L2 cold misses

	// Profitability inputs, computed once: applyBound is the number of
	// events up to and including the last sensitive one (an upper bound
	// on any lane's apply list, since no apply window extends past it)
	// and candUnits the number of units first touched in that prefix (the
	// units a lane's apply-list build must scan).
	applyBound int
	candUnits  int
}

// fenwick is a binary indexed tree over event-time positions; the delta
// classifier keeps one marker per 2KB region at the region's last touch
// time, so a range sum counts distinct regions touched in a window.
type fenwick struct {
	t []int32
}

func (f *fenwick) reset(n int) {
	if cap(f.t) < n+1 {
		f.t = make([]int32, n+1)
		return
	}
	f.t = f.t[:n+1]
	clear(f.t)
}

func (f *fenwick) add(i int32, d int32) {
	for n := int32(len(f.t)); i < n; i += i & -i {
		f.t[i] += d
	}
}

func (f *fenwick) sum(i int32) int32 {
	s := int32(0)
	for ; i > 0; i -= i & -i {
		s += f.t[i]
	}
	return s
}

// recencyTracker carries the per-structure (L1I or L1D) interference
// clock: one fenwick over event time plus each region's and unit's last
// touch. Region ids are dense; unit last-touch lives in the shared
// unitLast slice owned by the builder.
type recencyTracker struct {
	bit        fenwick
	regionLast []int32
}

// othersSince counts the distinct regions other than r touched in event
// times (last, now-1]. By the region geometry (a 2KB region spans at
// most 34 consecutive lines, fewer than any gated cache's set count)
// each of those regions contributes at most one line to any given cache
// set in any lane, so this bounds the distinct other lines that entered
// the unit's set since its last touch.
func (rt *recencyTracker) othersSince(last, now int32, r int32) int32 {
	n := rt.bit.sum(now-1) - rt.bit.sum(last)
	if rt.regionLast[r] > last {
		n--
	}
	return n
}

func (rt *recencyTracker) touch(r, now int32) {
	if p := rt.regionLast[r]; p > 0 {
		rt.bit.add(p, -1)
	}
	rt.bit.add(now, 1)
	rt.regionLast[r] = now
}

// deltaRegionBytes is the interference-tracking granularity: small
// enough that counting regions instead of lines loses little precision,
// large enough that the tracking tables stay compact. A region spans at
// most deltaRegionBytes/64+2 consecutive lines including both partial
// edges, which must stay at or under every gated cache's set count for
// the one-line-per-set bound to hold.
const deltaRegionBytes = 2048

// checkRecordingConfig verifies the geometry assumptions the event
// classification is proven under. Violations are not errors of the
// machine — they just mean the delta engine must decline so the caller
// falls back to the batched or scalar path.
func checkRecordingConfig(cfg *Config) error {
	if cfg.FetchBytes != 16 {
		return fmt.Errorf("machine: delta needs 16-byte fetch blocks, got %d", cfg.FetchBytes)
	}
	for _, cc := range []struct {
		name string
		line int
		sets int
		ways int
	}{
		{"L1I", cfg.L1I.LineBytes, cfg.L1I.Sets(), cfg.L1I.Ways},
		{"L1D", cfg.L1D.LineBytes, cfg.L1D.Sets(), cfg.L1D.Ways},
		{"L2", cfg.L2.LineBytes, cfg.L2.Sets(), cfg.L2.Ways},
	} {
		if cc.line != 64 {
			return fmt.Errorf("machine: delta needs 64-byte %s lines, got %d", cc.name, cc.line)
		}
		if cc.ways < 1 {
			return fmt.Errorf("machine: delta needs a positive %s associativity", cc.name)
		}
		if cc.sets < deltaRegionBytes/64+2 || cc.sets&(cc.sets-1) != 0 {
			return fmt.Errorf("machine: delta needs a power-of-two %s set count of at least %d, got %d",
				cc.name, deltaRegionBytes/64+2, cc.sets)
		}
	}
	if cfg.NextLinePrefetch {
		return errors.New("machine: delta does not model the next-line prefetcher")
	}
	return nil
}

// newRecording builds the reference recording for one trace under cfg.
// It performs the only full trace walk a delta campaign pays; everything
// per-layout replays from the result.
func newRecording(cfg *Config, trace *interp.Trace) (*recording, error) {
	if err := checkRecordingConfig(cfg); err != nil {
		return nil, err
	}
	prog := trace.Program

	r := &recording{
		prog:      prog,
		inputSeed: trace.InputSeed,
		instrs:    trace.Instrs,
		nBlockSeq: len(trace.BlockSeq),
		stoppedBy: trace.StoppedBy,
	}

	// Canonical geometry: block offsets laid out in procedure order,
	// exactly as toolchain.Link does without fetch alignment. Layouts
	// that deviate (FetchAlign > 0) fail Delta's per-lane address gates.
	r.canonOff = make([]uint32, len(prog.Blocks))
	r.procUnitStart = make([]int32, len(prog.Procs)+1)
	procSpan := make([]uint32, len(prog.Procs))
	procRegionStart := make([]int32, len(prog.Procs)+1)
	units, regions := int32(0), int32(0)
	for p := range prog.Procs {
		r.procUnitStart[p] = units
		procRegionStart[p] = regions
		span := uint32(0)
		for _, bid := range prog.Procs[p].Blocks {
			r.canonOff[bid] = span
			span += prog.Blocks[bid].Bytes
		}
		procSpan[p] = span
		units += int32((span + 15) / 16)
		regions += int32((span + deltaRegionBytes - 1) / deltaRegionBytes)
	}
	r.procUnitStart[len(prog.Procs)] = units
	procRegionStart[len(prog.Procs)] = regions
	r.nCodeUnits = int(units)
	r.unitA = make([]int32, units, units+64)
	r.unitOff = make([]uint32, units, units+64)
	for p := range prog.Procs {
		for u := r.procUnitStart[p]; u < r.procUnitStart[p+1]; u++ {
			r.unitA[u] = int32(p)
			r.unitOff[u] = uint32(u-r.procUnitStart[p]) * 16
		}
	}

	// Pre-size the event stream from the block sequence.
	var nFetch, nMem, nCond, nInd, nAlloc int
	for _, bid := range trace.BlockSeq {
		blk := &prog.Blocks[bid]
		nFetch += canonFetchN(int64(r.canonOff[bid]), int64(blk.Bytes))
		nMem += len(blk.Mems)
		nAlloc += len(blk.Allocs)
		switch blk.Term.Kind {
		case isa.TermCondBranch:
			nCond++
		case isa.TermIndirectCall:
			nInd++
		}
	}
	nEvents := nFetch + nMem + nCond + nInd
	if nEvents >= math.MaxInt32 {
		return nil, fmt.Errorf("machine: delta supports traces up to %d events, got %d", math.MaxInt32, nEvents)
	}
	r.evMeta = make([]uint8, nEvents)
	r.evUnit = make([]int32, nEvents)
	r.evSkel = make([]int32, nEvents)
	r.evNbr = make([]uint8, nEvents)
	r.skel = make([]float64, 0, len(trace.BlockSeq)+16)
	r.condProc = make([]int32, 0, nCond)
	r.condOff = make([]uint64, 0, nCond)
	r.condTaken = make([]bool, 0, nCond)
	r.condPenalty = make([]float64, 0, nCond)
	r.allocObj = make([]int32, 0, nAlloc)
	r.allocNew = make([]bool, 0, nAlloc)
	r.allocSize = make([]uint64, 0, nAlloc)
	r.nFetch = uint64(nFetch)
	r.nMem = uint64(nMem)

	// Classification state.
	var code, data recencyTracker
	code.bit.reset(nFetch)
	data.bit.reset(nMem)
	code.regionLast = make([]int32, regions)
	unitLast := make([]int32, units, units+64)
	dataUnits := make(map[uint64]int32)   // (anchor, unit offset) -> unit id
	dataRegions := make(map[uint64]int32) // (anchor, region index) -> region id
	lastAlloc := make([]int32, len(prog.Objects))
	for i := range lastAlloc {
		lastAlloc[i] = -1
	}

	waysL1I := int32(cfg.L1I.Ways)
	waysL1D := int32(cfg.L1D.Ways)
	l2pen := cfg.L2MissPenalty * cfg.L2Overlap

	dataUnit := func(anchor int32, off uint32) int32 {
		key := uint64(uint32(anchor))<<32 | uint64(off)
		if u, ok := dataUnits[key]; ok {
			return u
		}
		u := int32(len(r.unitA))
		dataUnits[key] = u
		r.unitA = append(r.unitA, anchor)
		r.unitOff = append(r.unitOff, off)
		unitLast = append(unitLast, 0)
		return u
	}
	dataRegion := func(anchor int32, off uint32) int32 {
		key := uint64(uint32(anchor))<<32 | uint64(off/deltaRegionBytes)
		if rg, ok := dataRegions[key]; ok {
			return rg
		}
		rg := int32(len(data.regionLast))
		dataRegions[key] = rg
		data.regionLast = append(data.regionLast, 0)
		return rg
	}

	var (
		cur      = trace.Cursor()
		ev       int32
		fclock   int32
		mclock   int32
		allocSeq int32
	)
	emit := func(meta uint8, unit int32, nbr uint8) {
		r.evMeta[ev] = meta
		r.evUnit[ev] = unit
		r.evSkel[ev] = int32(len(r.skel))
		r.evNbr[ev] = nbr
		switch devClass(meta) {
		case dclSens:
			if devKind(meta) <= devMem {
				r.sensEvs = append(r.sensEvs, ev)
			}
		case dclAddr:
			r.sharedBPs = append(r.sharedBPs, ev)
		}
		if devKind(meta) >= devCond {
			r.sharedBPs = append(r.sharedBPs, ev)
		}
		ev++
	}

	for {
		bid, ok := cur.NextBlock()
		if !ok {
			break
		}
		blk := &prog.Blocks[bid]
		p := int32(blk.Proc)
		r.skel = append(r.skel, baseCyclesFor(cfg, blk))

		// Instruction fetch events.
		off0 := int64(r.canonOff[bid])
		first := off0 &^ 15
		fn := canonFetchN(off0, int64(blk.Bytes))
		span := procSpan[p]
		lastUi := int64(span-1) >> 4
		for i := 0; i < fn; i++ {
			uOff := first + int64(i)*16
			ui := uOff >> 4
			u := r.procUnitStart[p] + int32(ui)
			rg := procRegionStart[p] + int32(uOff/deltaRegionBytes)
			fclock++
			meta := uint8(devFetch)
			nbr := uint8(0)
			if last := unitLast[u]; last > 0 {
				if code.othersSince(last, fclock, rg) < waysL1I {
					meta |= dclHit << 2
				} else {
					meta |= dclSens << 2
				}
			} else if ui < 3 || ui > lastUi-3 {
				// A procedure-edge unit: its line can be shared with a
				// neighboring procedure placed adjacently by the layout.
				meta |= dclSens << 2
			} else {
				meta |= dclAddr << 2
				for d := int32(-3); d <= 3; d++ {
					if d == 0 {
						continue
					}
					lv := unitLast[u+d]
					if lv == 0 {
						continue
					}
					rv := procRegionStart[p] + int32((uOff+int64(d)*16)/deltaRegionBytes)
					if code.othersSince(lv, fclock, rv) >= waysL1I {
						// A touched line-mate candidate whose residency is
						// uncertain: fall back to stateful replay.
						meta = devFetch | dclSens<<2
						nbr = 0
						break
					}
					if d < 0 {
						nbr |= 1 << uint(d+3)
					} else {
						nbr |= 1 << uint(d+2)
					}
				}
			}
			code.touch(rg, fclock)
			unitLast[u] = fclock
			emit(meta, u, nbr)
		}

		// Allocation events.
		for i := 0; i < len(blk.Allocs); i++ {
			obj, kind := cur.NextAlloc()
			isNew := kind == isa.AllocNew
			r.allocObj = append(r.allocObj, int32(obj))
			r.allocNew = append(r.allocNew, isNew)
			r.allocSize = append(r.allocSize, prog.Objects[obj].Size)
			if isNew {
				lastAlloc[obj] = allocSeq
			}
			allocSeq++
		}

		// Memory access events.
		for i := 0; i < len(blk.Mems); i++ {
			obj, off := cur.NextMem()
			mclock++
			var anchor int32
			var uo uint32
			if prog.Objects[obj].Heap {
				anchor = lastAlloc[obj]
				if anchor < 0 {
					return nil, fmt.Errorf("machine: access to unplaced object %d in block %d", obj, bid)
				}
				uo = off &^ 15
			} else {
				anchor = ^int32(obj)
				uo = off &^ 63
			}
			u := dataUnit(anchor, uo)
			rg := dataRegion(anchor, off)
			meta := uint8(devMem)
			if last := unitLast[u]; last > 0 {
				if data.othersSince(last, mclock, rg) < waysL1D {
					meta |= dclHit << 2
				} else {
					meta |= dclSens << 2
				}
			} else if anchor < 0 {
				// First touch of a global's line: 64-byte-aligned globals
				// make the line private and canonical, so the miss and its
				// cold L2 miss are shared across every layout.
				meta |= dclCold << 2
				r.coldData++
			} else {
				// Heap first touch: the line may be shared with neighboring
				// placements, which vary per lane.
				meta |= dclSens << 2
			}
			data.touch(rg, mclock)
			unitLast[u] = mclock
			emit(meta, u, 0)
			if devClass(meta) == dclCold {
				r.skel = append(r.skel, cfg.L1DMissPenalty, l2pen)
			}
		}

		// Terminator events.
		switch blk.Term.Kind {
		case isa.TermCondBranch:
			taken := cur.NextTaken()
			seq := int32(len(r.condProc))
			r.condProc = append(r.condProc, p)
			r.condOff = append(r.condOff, uint64(off0+int64(blk.Bytes)-4))
			r.condTaken = append(r.condTaken, taken)
			scale := 1 / (1 + cfg.MispredictShadow*float64(len(blk.Mems)))
			r.condPenalty = append(r.condPenalty, cfg.MispredictPenalty*scale)
			emit(devCond, seq, 0)
		case isa.TermIndirectCall:
			sel := cur.NextIndirect()
			seq := int32(len(r.indProc))
			r.indProc = append(r.indProc, p)
			r.indOff = append(r.indOff, uint64(off0+int64(blk.Bytes)-4))
			r.indCallee = append(r.indCallee, int32(blk.Term.Callees[sel]))
			emit(devInd, seq, 0)
		}
	}

	// CSR index over cache events, naturally trace-ordered per unit.
	nUnits := len(r.unitA)
	r.unitEvStart = make([]int32, nUnits+1)
	for e := int32(0); e < ev; e++ {
		if devKind(r.evMeta[e]) <= devMem {
			r.unitEvStart[r.evUnit[e]+1]++
		}
	}
	for u := 0; u < nUnits; u++ {
		r.unitEvStart[u+1] += r.unitEvStart[u]
	}
	r.unitEvs = make([]int32, r.unitEvStart[nUnits])
	fill := make([]int32, nUnits)
	copy(fill, r.unitEvStart[:nUnits])
	for e := int32(0); e < ev; e++ {
		if devKind(r.evMeta[e]) <= devMem {
			u := r.evUnit[e]
			r.unitEvs[fill[u]] = e
			fill[u]++
		}
	}
	// Units in first-touch order: cache events visit units in exactly that
	// order, so one more pass over the stream yields the sorted list for
	// free (a unit's first event marks its position).
	r.unitsByFirstEv = make([]int32, 0, nUnits)
	seen := fill[:nUnits]
	for u := range seen {
		seen[u] = 0
	}
	for e := int32(0); e < ev; e++ {
		if devKind(r.evMeta[e]) <= devMem {
			if u := r.evUnit[e]; seen[u] == 0 {
				seen[u] = 1
				r.unitsByFirstEv = append(r.unitsByFirstEv, u)
			}
		}
	}
	if n := len(r.sensEvs); n > 0 {
		maxCut := r.sensEvs[n-1]
		r.applyBound = int(maxCut) + 1
		for _, u := range r.unitsByFirstEv {
			if r.unitEvs[r.unitEvStart[u]] > maxCut {
				break
			}
			r.candUnits++
		}
	}
	return r, nil
}

// canonFetchN is the scalar fetchN formula in canonical offset space:
// with a 16-aligned procedure base the two are equal term by term.
func canonFetchN(off, bytes int64) int {
	first := off &^ 15
	return int(((off+bytes-1)&^15-first)/16) + 1
}

// matches reports whether the recording describes the same trace
// content. Traces are rebuilt per campaign, but interpretation is
// deterministic, so program identity plus seed and length pin the
// content without retaining the trace.
func (r *recording) matches(t *interp.Trace) bool {
	return r.prog == t.Program && r.inputSeed == t.InputSeed &&
		r.instrs == t.Instrs && r.nBlockSeq == len(t.BlockSeq) &&
		r.stoppedBy == t.StoppedBy
}

// profitable estimates whether the per-lane delta walk beats the batched
// engine's per-lane trace walk. The dominant per-lane delta cost is the
// apply list: every cache event up to the last sensitive one is replayed
// against real scalar cache state (with window bookkeeping and a sort),
// an order of magnitude costlier per event than the batched engine's
// lockstep bank access — so the estimate charges each bounded apply
// event 8 batch-event units, plus the candidate-unit scan, skeleton
// drain and the per-lane branch rows both engines pay. Calibrated
// against the 23-workload suite (DESIGN.md §15): the factor-two margin
// admits delta only where it wins clearly — traces whose layout-
// sensitive events die out early — and every surveyed workload where
// delta measured slower is declined. An explicit DeltaOn overrides.
func (r *recording) profitable() bool {
	perLaneDelta := 8*r.applyBound + 2*r.candUnits + len(r.skel) +
		4*len(r.condProc) + len(r.allocObj)
	perLaneBatch := int(r.nFetch) + 2*int(r.nMem) + 4*len(r.condProc)
	return 2*perLaneDelta < perLaneBatch
}
