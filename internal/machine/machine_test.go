package machine_test

import (
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

func setup(t *testing.T, budget uint64) (*machine.Machine, machine.RunSpec) {
	t.Helper()
	p := testprog.Branchy()
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.XeonE5440())
	return m, machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: 1}
}

func TestRunBasicCounters(t *testing.T) {
	m, spec := setup(t, 20000)
	c, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Instructions != spec.Trace.Instrs {
		t.Errorf("Instructions %d != trace %d", c.Instructions, spec.Trace.Instrs)
	}
	if c.Cycles == 0 {
		t.Error("no cycles charged")
	}
	if c.CPI() < 0.2 || c.CPI() > 20 {
		t.Errorf("implausible CPI %v", c.CPI())
	}
	if c.CondBranches != spec.Trace.CondBranches {
		t.Errorf("cond branches %d != trace %d", c.CondBranches, spec.Trace.CondBranches)
	}
	if c.IndirectBranches != spec.Trace.IndirectCalls {
		t.Errorf("indirect %d != trace %d", c.IndirectBranches, spec.Trace.IndirectCalls)
	}
	if c.BranchesRetired < c.CondBranches {
		t.Error("BranchesRetired missing components")
	}
	if c.CondMispredicts == 0 {
		t.Error("Branchy program should cause some mispredictions")
	}
	if c.L1IAccesses == 0 || c.L2Accesses == 0 {
		t.Error("cache hierarchy not exercised")
	}
}

func TestRunDeterministicGivenSeeds(t *testing.T) {
	m, spec := setup(t, 20000)
	a, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical specs diverged:\n%+v\n%+v", a, b)
	}
}

func TestNoiseSeedPerturbsOnlyCycles(t *testing.T) {
	m, spec := setup(t, 20000)
	a, _ := m.Run(spec)
	spec.NoiseSeed = 2
	b, _ := m.Run(spec)
	if a.Cycles == b.Cycles {
		t.Error("different noise seeds should perturb cycles")
	}
	a.Cycles, b.Cycles = 0, 0
	if a != b {
		t.Fatalf("noise seed changed non-cycle counters:\n%+v\n%+v", a, b)
	}
}

func TestDisableNoise(t *testing.T) {
	m, spec := setup(t, 20000)
	spec.DisableNoise = true
	a, _ := m.Run(spec)
	spec.NoiseSeed = 99
	b, _ := m.Run(spec)
	if a != b {
		t.Fatal("noise-free runs should be identical across noise seeds")
	}
}

func TestLayoutPerturbsPerformanceNotSemantics(t *testing.T) {
	// The central claim of interferometry: different layouts change the
	// adverse-event counts (and so cycles) but never the retired
	// instruction count.
	p := testprog.ManyBranches(300, 500)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.XeonE5440())
	var counters []machine.Counters
	for seed := uint64(1); seed <= 12; seed++ {
		exe, err := toolchain.BuildLayout(p, seed, toolchain.CompileConfig{ProcsPerUnit: 1}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := m.Run(machine.RunSpec{Exe: exe, Trace: tr, NoiseSeed: 1, DisableNoise: true})
		if err != nil {
			t.Fatal(err)
		}
		counters = append(counters, c)
	}
	varied := false
	for _, c := range counters[1:] {
		if c.Instructions != counters[0].Instructions {
			t.Fatalf("layout changed retired instructions: %d vs %d",
				c.Instructions, counters[0].Instructions)
		}
		if c.CondBranches != counters[0].CondBranches {
			t.Fatal("layout changed dynamic branch count")
		}
		if c.Cycles != counters[0].Cycles || c.CondMispredicts != counters[0].CondMispredicts {
			varied = true
		}
	}
	if !varied {
		t.Error("12 layouts produced identical performance; perturbation is not reaching the microarchitecture")
	}
}

func TestPerfectPredictorZeroMispredicts(t *testing.T) {
	m, spec := setup(t, 30000)
	spec.Predictor = branch.Perfect{}
	spec.DisableNoise = true
	perfect, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.CondMispredicts != 0 {
		t.Fatalf("perfect predictor mispredicted %d times", perfect.CondMispredicts)
	}
	spec.Predictor = nil
	real, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.Cycles >= real.Cycles {
		t.Errorf("perfect prediction (%d cycles) should beat the real predictor (%d)",
			perfect.Cycles, real.Cycles)
	}
}

func TestBetterPredictorFewerCycles(t *testing.T) {
	m, spec := setup(t, 60000)
	spec.DisableNoise = true
	spec.Predictor = branch.NewBimodal(16) // tiny, conflict-ridden
	weak, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Predictor = branch.NewLTAGEDefault()
	strong, err := m.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if strong.CondMispredicts >= weak.CondMispredicts {
		t.Fatalf("L-TAGE mispredicts %d >= tiny bimodal %d",
			strong.CondMispredicts, weak.CondMispredicts)
	}
	if strong.Cycles >= weak.Cycles {
		t.Fatalf("L-TAGE cycles %d >= tiny bimodal %d", strong.Cycles, weak.Cycles)
	}
}

func TestHeapModeAffectsDataPlacement(t *testing.T) {
	p := testprog.CacheStress(260, 5000)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 120000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.XeonE5440())
	base := machine.RunSpec{Exe: exe, Trace: tr, DisableNoise: true, HeapMode: heap.ModeRandomized}

	// Different heap seeds must change only performance, not semantics.
	seen := map[uint64]bool{}
	var instrs uint64
	for seed := uint64(1); seed <= 8; seed++ {
		spec := base
		spec.HeapSeed = seed
		c, err := m.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		seen[c.Cycles] = true
		if instrs == 0 {
			instrs = c.Instructions
		} else if c.Instructions != instrs {
			t.Fatal("heap seed changed instruction count")
		}
	}
	if len(seen) < 2 {
		t.Error("heap randomization did not perturb cycles")
	}

	// Bump mode ignores the seed entirely.
	bump1, bump2 := base, base
	bump1.HeapMode, bump2.HeapMode = heap.ModeBump, heap.ModeBump
	bump1.HeapSeed, bump2.HeapSeed = 1, 99
	c1, err := m.Run(bump1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m.Run(bump2)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("bump allocator should be seed-insensitive")
	}
}

func TestRunValidation(t *testing.T) {
	m, spec := setup(t, 1000)
	bad := spec
	bad.Exe = nil
	if _, err := m.Run(bad); err == nil {
		t.Error("nil Exe accepted")
	}
	bad = spec
	bad.Trace = nil
	if _, err := m.Run(bad); err == nil {
		t.Error("nil Trace accepted")
	}
	// Mismatched program.
	other := testprog.Counting(3)
	otherTr, err := interp.Run(other, 1, interp.StopRule{Budget: 100})
	if err != nil {
		t.Fatal(err)
	}
	bad = spec
	bad.Trace = otherTr
	if _, err := m.Run(bad); err == nil {
		t.Error("cross-program trace accepted")
	}
}

func TestCountersDerivedMetrics(t *testing.T) {
	c := machine.Counters{
		Cycles:            1500,
		Instructions:      1000,
		BranchMispredicts: 5,
		L1IMisses:         3,
		L1DMisses:         7,
		L2Misses:          2,
	}
	if c.CPI() != 1.5 {
		t.Errorf("CPI = %v", c.CPI())
	}
	if c.MPKI() != 5 {
		t.Errorf("MPKI = %v", c.MPKI())
	}
	if c.L1IMPKI() != 3 {
		t.Errorf("L1IMPKI = %v", c.L1IMPKI())
	}
	if c.L1DMPKI() != 7 {
		t.Errorf("L1DMPKI = %v", c.L1DMPKI())
	}
	if c.L2MPKI() != 2 {
		t.Errorf("L2MPKI = %v", c.L2MPKI())
	}
	var zero machine.Counters
	if zero.CPI() != 0 || zero.MPKI() != 0 {
		t.Error("zero counters should give zero metrics")
	}
}

func TestMachineReusableAcrossExecutables(t *testing.T) {
	// One Machine must give the same answers whether it is fresh or
	// reused after running a different executable (no state leakage).
	p := testprog.Branchy()
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	exeA, _ := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	exeB, _ := toolchain.BuildLayout(p, 2, toolchain.CompileConfig{}, toolchain.LinkConfig{})

	fresh := machine.New(machine.XeonE5440())
	want, err := fresh.Run(machine.RunSpec{Exe: exeB, Trace: tr, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}

	reused := machine.New(machine.XeonE5440())
	if _, err := reused.Run(machine.RunSpec{Exe: exeA, Trace: tr, DisableNoise: true}); err != nil {
		t.Fatal(err)
	}
	got, err := reused.Run(machine.RunSpec{Exe: exeB, Trace: tr, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("machine state leaked across runs:\nfresh  %+v\nreused %+v", want, got)
	}
}

func TestNextLinePrefetchHelpsStreaming(t *testing.T) {
	// A streaming workload (Memory's stride-8 sweeps) benefits from the
	// next-line L2 prefetcher; a config with it enabled must not be
	// slower, and its L2 demand misses must drop.
	p := testprog.Memory(4000)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 120000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(prefetch bool) machine.Counters {
		cfg := machine.XeonE5440()
		cfg.NextLinePrefetch = prefetch
		c, err := machine.New(cfg).Run(machine.RunSpec{Exe: exe, Trace: tr, DisableNoise: true})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	off := run(false)
	on := run(true)
	if on.L2Misses > off.L2Misses {
		t.Errorf("prefetcher increased L2 misses: %d > %d", on.L2Misses, off.L2Misses)
	}
	if on.Cycles > off.Cycles {
		t.Errorf("prefetcher increased cycles: %d > %d", on.Cycles, off.Cycles)
	}
}
