package machine_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/machine"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// TestDeltaMatchesSequential is the delta-replay property test, the
// delta twin of TestBatchMatchesSequential: for every lane of every
// trial, Delta.Run must return exactly what the scalar
// Machine.RunDeterministic returns for that lane's spec — equal Counters
// and a bit-identical raw cycle float. Trials sweep programs, lane
// counts 1/2/7/K_max and both heap modes across ≥50 layout seeds.
// Predictor overrides are excluded: Delta declines those by contract
// (TestDeltaRunValidation pins that).
func TestDeltaMatchesSequential(t *testing.T) {
	trials := 52
	if testing.Short() {
		trials = 12
	}
	const kMax = 16
	cfg := machine.XeonE5440()
	delta, err := machine.NewDelta(cfg, kMax)
	if err != nil {
		t.Fatal(err)
	}
	seq := machine.New(cfg)
	progs := batchPrograms(t, 20000)
	sizes := []int{1, 2, 7, kMax}
	specs := make([]machine.RunSpec, kMax)

	for trial := 0; trial < trials; trial++ {
		pp := progs[trial%len(progs)]
		k := sizes[trial%len(sizes)]
		mode := heap.ModeBump
		if trial%2 == 1 {
			mode = heap.ModeRandomized
		}
		for ki := 0; ki < k; ki++ {
			layoutSeed := uint64(trial*kMax + ki + 1)
			exe, err := toolchain.BuildLayout(pp.prog, layoutSeed, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{})
			if err != nil {
				t.Fatalf("trial %d lane %d: %v", trial, ki, err)
			}
			specs[ki] = machine.RunSpec{
				Exe:      exe,
				Trace:    pp.trace,
				HeapMode: mode,
				HeapSeed: layoutSeed*3 + 1,
			}
		}
		gotC, gotD, err := delta.Run(specs[:k])
		if err != nil {
			t.Fatalf("trial %d (%s, k=%d, %s): %v", trial, pp.name, k, mode, err)
		}
		for ki := 0; ki < k; ki++ {
			wantC, wantD, err := seq.RunDeterministic(specs[ki])
			if err != nil {
				t.Fatalf("trial %d lane %d sequential: %v", trial, ki, err)
			}
			if gotC[ki] != wantC {
				t.Fatalf("trial %d (%s, k=%d, %s) lane %d counters diverged:\ndelta %+v\nseq   %+v",
					trial, pp.name, k, mode, ki, gotC[ki], wantC)
			}
			if math.Float64bits(gotD[ki]) != math.Float64bits(wantD) {
				t.Fatalf("trial %d (%s, k=%d, %s) lane %d det cycles diverged: delta %v (%#x), seq %v (%#x)",
					trial, pp.name, k, mode, ki, gotD[ki], math.Float64bits(gotD[ki]), wantD, math.Float64bits(wantD))
			}
		}
	}
}

// TestDeltaRunValidation pins the delta-lane error contract, including
// the unsupported-spec declines that make callers fall back.
func TestDeltaRunValidation(t *testing.T) {
	cfg := machine.XeonE5440()
	delta, err := machine.NewDelta(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchPrograms(t, 2000)
	branchy, memory := progs[0], progs[1]
	exe := func(p batchProgram, seed uint64) *toolchain.Executable {
		e, err := toolchain.BuildLayout(p.prog, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	base := machine.RunSpec{Exe: exe(branchy, 1), Trace: branchy.trace}

	if _, _, err := delta.Run(nil); err == nil {
		t.Error("empty run accepted")
	}
	if _, _, err := delta.Run(make([]machine.RunSpec, 5)); err == nil {
		t.Error("run over capacity accepted")
	}
	if _, _, err := delta.Run([]machine.RunSpec{base, {Exe: exe(memory, 1), Trace: memory.trace}}); err == nil {
		t.Error("mixed traces accepted")
	}
	if _, _, err := delta.Run([]machine.RunSpec{base, {Exe: exe(branchy, 2), Trace: branchy.trace, HeapMode: heap.ModeRandomized}}); err == nil {
		t.Error("mixed heap modes accepted")
	}
	if _, _, err := delta.Run([]machine.RunSpec{{Exe: exe(memory, 1), Trace: branchy.trace}}); err == nil {
		t.Error("trace/executable program mismatch accepted")
	}
	o := base
	o.Predictor = branch.Perfect{}
	_, _, err = delta.Run([]machine.RunSpec{o})
	if err == nil || !strings.Contains(err.Error(), "predictor overrides") {
		t.Errorf("predictor override: got %v, want decline", err)
	}
	// Layouts that break the canonical-geometry assumptions must be
	// declined by the per-lane gate rather than misclassified: a block
	// not at its program-order offset, and a global segment off the
	// 64-byte line grid.
	moved := exe(branchy, 3)
	moved.BlockAddr[len(moved.BlockAddr)-1] += 16
	if _, _, err := delta.Run([]machine.RunSpec{{Exe: moved, Trace: branchy.trace}}); err == nil {
		t.Error("non-canonical block offset accepted")
	}
	skewed := exe(memory, 4)
	for i := range skewed.GlobalBase {
		skewed.GlobalBase[i] += 32
	}
	if _, _, err := delta.Run([]machine.RunSpec{{Exe: skewed, Trace: memory.trace}}); err == nil {
		t.Error("misaligned global segment accepted")
	}
	// Unsupported geometry is rejected at construction.
	narrow := cfg
	narrow.FetchBytes = 32
	if _, err := machine.NewDelta(narrow, 4); err == nil {
		t.Error("32-byte fetch geometry accepted")
	}
	pf := cfg
	pf.NextLinePrefetch = true
	if _, err := machine.NewDelta(pf, 4); err == nil {
		t.Error("prefetching geometry accepted")
	}
}

// TestDeltaInvalidate is TestBatchInvalidate's contract for the
// recording cache: Invalidate must force a rebuild, and the rebuilt run
// must match sequential.
func TestDeltaInvalidate(t *testing.T) {
	cfg := machine.XeonE5440()
	delta, err := machine.NewDelta(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchPrograms(t, 20000)
	pp := progs[0]
	exe, err := toolchain.BuildLayout(pp.prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []machine.RunSpec{{Exe: exe, Trace: pp.trace}}
	if _, _, err := delta.Run(specs); err != nil {
		t.Fatal(err)
	}
	delta.Invalidate()
	c, d, err := delta.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	seq := machine.New(cfg)
	wantC, wantD, err := seq.RunDeterministic(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != wantC || math.Float64bits(d[0]) != math.Float64bits(wantD) {
		t.Fatal("post-Invalidate delta run diverged from sequential")
	}
}

// TestDeltaReuseAfterFallback is the delta half of the
// reuse-after-fallback regression: a Run that declines (here: a layout
// failing the address gates) must leave no state behind that perturbs
// the next successful Run — same counters, same raw cycle bits as a
// fresh engine and the scalar path.
func TestDeltaReuseAfterFallback(t *testing.T) {
	cfg := machine.XeonE5440()
	delta, err := machine.NewDelta(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchPrograms(t, 20000)
	pp := progs[0]
	mk := func(seed uint64) *toolchain.Executable {
		exe, err := toolchain.BuildLayout(pp.prog, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return exe
	}
	good := []machine.RunSpec{
		{Exe: mk(1), Trace: pp.trace, HeapMode: heap.ModeRandomized, HeapSeed: 7},
		{Exe: mk(2), Trace: pp.trace, HeapMode: heap.ModeRandomized, HeapSeed: 9},
	}
	if _, _, err := delta.Run(good); err != nil {
		t.Fatal(err)
	}
	// Sabotage one layout in place so the per-lane gate declines the
	// whole Run (the caller would fall back to the batched path), then
	// restore it.
	bad := good[0].Exe.BlockAddr[0]
	good[0].Exe.BlockAddr[0] = bad + 8
	if _, _, err := delta.Run(good); err == nil {
		t.Fatal("gate-violating layout accepted")
	}
	good[0].Exe.BlockAddr[0] = bad
	c, d, err := delta.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	seq := machine.New(cfg)
	for ki := range good {
		wantC, wantD, err := seq.RunDeterministic(good[ki])
		if err != nil {
			t.Fatal(err)
		}
		if c[ki] != wantC || math.Float64bits(d[ki]) != math.Float64bits(wantD) {
			t.Fatalf("lane %d diverged after fallback reuse:\ndelta %+v det %v\nseq   %+v det %v",
				ki, c[ki], d[ki], wantC, wantD)
		}
	}
}

// TestBatchReuseAfterFallback is the batch half of the same regression:
// a Run rejected mid-validation (predictor instance shared across
// lanes) must leave the engine's per-lane scratch and loaded tables in
// a state where the next Run still matches sequential exactly.
func TestBatchReuseAfterFallback(t *testing.T) {
	cfg := machine.XeonE5440()
	batch, err := machine.NewBatch(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchPrograms(t, 20000)
	pp := progs[0]
	mk := func(seed uint64) *toolchain.Executable {
		exe, err := toolchain.BuildLayout(pp.prog, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return exe
	}
	good := []machine.RunSpec{
		{Exe: mk(1), Trace: pp.trace, HeapMode: heap.ModeRandomized, HeapSeed: 7},
		{Exe: mk(2), Trace: pp.trace, HeapMode: heap.ModeRandomized, HeapSeed: 9},
	}
	if _, _, err := batch.Run(good); err != nil {
		t.Fatal(err)
	}
	shared := branch.NewGshare(1024, 8)
	saboteur := []machine.RunSpec{good[0], good[1]}
	saboteur[0].Predictor, saboteur[1].Predictor = shared, shared
	if _, _, err := batch.Run(saboteur); err == nil {
		t.Fatal("shared predictor instance accepted")
	}
	c, d, err := batch.Run(good)
	if err != nil {
		t.Fatal(err)
	}
	seq := machine.New(cfg)
	for ki := range good {
		wantC, wantD, err := seq.RunDeterministic(good[ki])
		if err != nil {
			t.Fatal(err)
		}
		if c[ki] != wantC || math.Float64bits(d[ki]) != math.Float64bits(wantD) {
			t.Fatalf("lane %d diverged after fallback reuse:\nbatch %+v det %v\nseq   %+v det %v",
				ki, c[ki], d[ki], wantC, wantD)
		}
	}
}

// TestDeltaRunZeroAlloc pins the steady-state zero-allocation contract
// of Delta.Run with a warm recording, in both heap modes.
func TestDeltaRunZeroAlloc(t *testing.T) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	const kMax = 8
	specs := make([]machine.RunSpec, kMax)
	for ki := range specs {
		exe, err := toolchain.BuildLayout(prog, uint64(ki+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		specs[ki] = machine.RunSpec{Exe: exe, Trace: tr, HeapSeed: 3}
	}
	for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
		delta, err := machine.NewDelta(machine.XeonE5440(), kMax)
		if err != nil {
			t.Fatal(err)
		}
		for ki := range specs {
			specs[ki].HeapMode = mode
		}
		if _, _, err := delta.Run(specs); err != nil { // warm recording and scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, _, err := delta.Run(specs); err != nil {
				t.Error(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per delta run, want 0", mode, allocs)
		}
	}
}

// BenchmarkDeltaRun measures the delta engine on the same
// 200k-instruction perlbench workload as BenchmarkBatchRun, across lane
// counts, with a warm recording (the per-campaign amortized case).
func BenchmarkDeltaRun(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		b.Fatal(err)
	}
	const kMax = 32
	specs := make([]machine.RunSpec, kMax)
	for ki := range specs {
		exe, err := toolchain.BuildLayout(prog, uint64(ki+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			b.Fatal(err)
		}
		specs[ki] = machine.RunSpec{Exe: exe, Trace: tr, HeapSeed: 3}
	}
	for _, k := range []int{8, 16, 32} {
		for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
			b.Run(fmt.Sprintf("%s/k=%d", mode, k), func(b *testing.B) {
				delta, err := machine.NewDelta(machine.XeonE5440(), k)
				if err != nil {
					b.Fatal(err)
				}
				for ki := range specs {
					specs[ki].HeapMode = mode
				}
				if _, _, err := delta.Run(specs[:k]); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := delta.Run(specs[:k]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
			})
		}
	}
}
