// Package machine is the "real hardware" of this reproduction: a
// trace-driven timing model of an out-of-order core in the spirit of the
// Intel Xeon E5440 the paper measures (§5.4). It replays an execution
// trace against a concrete code layout (from internal/toolchain) and data
// layout (from internal/heap), hashing the resulting addresses into its
// branch predictor, BTB and cache hierarchy, and charges penalty cycles
// for every adverse event. A seeded system-noise model perturbs the cycle
// count the way OS jitter perturbs real measurements, which is what makes
// the paper's median-of-five protocol (§5.5) meaningful here.
//
// The same model doubles as the cycle-accurate simulator of the linearity
// study (§3.2): RunWithPredictor swaps in any predictor from
// internal/uarch/branch, including the perfect oracle.
package machine

import (
	"interferometry/internal/isa"
	"interferometry/internal/uarch/cache"
)

// Config describes the modeled core. The zero value is not usable; start
// from XeonE5440() and override as needed.
type Config struct {
	Name string

	// Cache hierarchy. The L2 capacity is scaled down from the physical
	// part's 12MB in proportion to the scaled working sets of the
	// synthetic suite (see DESIGN.md): what matters for interferometry is
	// where each benchmark's working set falls relative to each level.
	L1I, L1D, L2 cache.Config

	// FetchBytes is the instruction-fetch block size; every fetch block a
	// basic block spans costs one L1I access (§4.1).
	FetchBytes uint64

	// ClassCycles is the amortized cycle cost per retired instruction of
	// each class, already accounting for superscalar issue.
	ClassCycles [isa.NumInstrClasses]float64
	// MemOpCycles is the base cost of a memory instruction that hits L1.
	MemOpCycles float64
	// AllocCycles is the allocator-call cost of one allocation event.
	AllocCycles float64
	// TermCycles is the cost of an explicit control-flow instruction.
	TermCycles float64

	// MispredictPenalty is the pipeline-flush cost of a conditional
	// misprediction, in cycles.
	MispredictPenalty float64
	// MispredictShadow scales down the effective misprediction penalty in
	// blocks with many memory operations (the flush hides under pending
	// misses). This mild heterogeneity across branch sites is what bends
	// the MPKI-CPI line for benchmarks whose branch population is
	// heterogeneous — the non-linearity §3.1 discusses.
	MispredictShadow float64
	// BTBMissPenalty is the cost of an indirect transfer whose target was
	// absent or stale in the BTB.
	BTBMissPenalty float64
	// L1IMissPenalty / L1DMissPenalty are the added cycles of an L1 miss
	// that hits L2.
	L1IMissPenalty, L1DMissPenalty float64
	// L2MissPenalty is the memory-access cost of an L2 miss.
	L2MissPenalty float64
	// L2Overlap is the exposed fraction of L2MissPenalty after
	// memory-level parallelism (1 = fully serialized).
	L2Overlap float64

	// BTBSets and BTBWays size the branch target buffer.
	BTBSets, BTBWays int

	// NextLinePrefetch enables a simple sequential prefetcher: every L1D
	// miss also installs the following line into the L2, hiding part of a
	// streaming workload's miss cost. §3.1 singles out prefetching as a
	// potential source of non-linearity ("some branch mispredictions
	// might cause prefetching into the cache, and others might cause
	// cache pollution"); the ablation quantifies its effect here. Off in
	// the default model.
	NextLinePrefetch bool

	// NoiseSigma is the relative standard deviation of multiplicative
	// system noise on measured cycles. NoiseSpikeProb and NoiseSpikeScale
	// model occasional interference events (a timer tick, a daemon) that
	// add NoiseSpikeScale * sqrt(cycles) extra cycles.
	NoiseSigma      float64
	NoiseSpikeProb  float64
	NoiseSpikeScale float64
}

// XeonE5440 returns the default machine configuration modeled on the
// paper's measurement platform: 32KB 8-way L1I and L1D, a large shared L2
// (scaled), a 16-byte fetch block, a ~14-cycle-deep Core-microarchitecture
// pipeline (we charge 14 cycles plus average refill), and the
// reverse-engineered hybrid GAs+bimodal predictor.
func XeonE5440() Config {
	return Config{
		Name:       "xeon-e5440-model",
		L1I:        cache.Config{Name: "L1I", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8},
		L1D:        cache.Config{Name: "L1D", SizeBytes: 32 * 1024, LineBytes: 64, Ways: 8},
		L2:         cache.Config{Name: "L2", SizeBytes: 512 * 1024, LineBytes: 64, Ways: 8},
		FetchBytes: 16,
		ClassCycles: [isa.NumInstrClasses]float64{
			isa.ClassIntALU: 0.33,
			isa.ClassIntMul: 1.10,
			isa.ClassFPAdd:  0.55,
			isa.ClassFPMul:  1.10,
		},
		MemOpCycles:       0.50,
		AllocCycles:       40,
		TermCycles:        0.40,
		MispredictPenalty: 25,
		MispredictShadow:  0.06,
		BTBMissPenalty:    22,
		L1IMissPenalty:    11,
		L1DMissPenalty:    11,
		L2MissPenalty:     190,
		L2Overlap:         0.62,
		BTBSets:           512,
		BTBWays:           4,
		NoiseSigma:        0.0018,
		NoiseSpikeProb:    0.08,
		NoiseSpikeScale:   2.0,
	}
}

// DeepPipeline returns a Netburst-flavored variant of the machine: the
// same caches and predictor but a much deeper pipeline, so branch flushes
// cost ~39 cycles instead of ~25. §1.5 discusses exactly this design
// uncertainty ("the trend in 2001 was toward deeper and deeper
// pipelines"); interferometry's slope estimate recovers whichever
// machine it actually measures, which the ext-depth experiment verifies.
func DeepPipeline() Config {
	cfg := XeonE5440()
	cfg.Name = "deep-pipeline-model"
	cfg.MispredictPenalty = 39
	cfg.BTBMissPenalty = 34
	return cfg
}

// Counters is the full set of performance-monitoring counters one run can
// expose. The real Xeon only lets two user events be read per run; that
// restriction is enforced by internal/pmc, not here — the machine always
// measures everything, and the harness decides what was "programmed".
type Counters struct {
	Cycles       uint64
	Instructions uint64
	// BranchesRetired counts all retired branch instructions
	// (conditional, calls, returns, indirect).
	BranchesRetired uint64
	// BranchMispredicts counts retired mispredicted branches: wrong
	// conditional directions plus wrong indirect targets, matching the
	// Xeon's "retired branches mispredicted" event (§5.5).
	BranchMispredicts uint64
	CondBranches      uint64
	CondMispredicts   uint64
	IndirectBranches  uint64
	IndirectMispreds  uint64
	L1IAccesses       uint64
	L1IMisses         uint64
	L1DAccesses       uint64
	L1DMisses         uint64
	L2Accesses        uint64
	L2Misses          uint64
}

// CPI returns cycles per retired instruction.
func (c Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}

// MPKI returns branch mispredictions per 1000 instructions.
func (c Counters) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.BranchMispredicts) / float64(c.Instructions) * 1000
}

// L1IMPKI returns L1 instruction-cache misses per 1000 instructions.
func (c Counters) L1IMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.L1IMisses) / float64(c.Instructions) * 1000
}

// L2MPKI returns L2 misses per 1000 instructions.
func (c Counters) L2MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.L2Misses) / float64(c.Instructions) * 1000
}

// L1DMPKI returns L1 data-cache misses per 1000 instructions.
func (c Counters) L1DMPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.L1DMisses) / float64(c.Instructions) * 1000
}
