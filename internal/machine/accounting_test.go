package machine_test

import (
	"math"
	"testing"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

// TestCycleAccountingExact reconstructs the machine's cycle count
// analytically for the fully-understood Counting program and demands an
// exact match. Any drift in the timing model's arithmetic (class costs,
// terminator costs, fetch accounting, penalty application) fails this
// test with a precise discrepancy.
func TestCycleAccountingExact(t *testing.T) {
	p := testprog.Counting(4)
	const budget = 50000
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.XeonE5440()
	m := machine.New(cfg)
	// Perfect predictor and no noise leave only base costs and I-fetch.
	c, err := m.Run(machine.RunSpec{
		Exe: exe, Trace: tr, Predictor: branch.Perfect{}, DisableNoise: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Analytic model: per executed block, the class costs plus the
	// terminator cost, plus fetch-block L1I accesses (all hits after the
	// first touch of each line: the program is two tiny blocks).
	var want float64
	fetches := map[uint64]int{}
	for _, bid := range tr.BlockSeq {
		b := &p.Blocks[bid]
		for cls, n := range b.ClassCounts {
			want += cfg.ClassCycles[cls] * float64(n)
		}
		if b.Term.Kind != isa.TermFallthrough {
			want += cfg.TermCycles
		}
		addr := exe.BlockAddr[bid]
		end := addr + uint64(b.Bytes)
		for fa := addr &^ (cfg.FetchBytes - 1); fa < end; fa += cfg.FetchBytes {
			fetches[fa>>6]++ // count distinct cache lines for cold misses
		}
	}
	// Cold L1I misses: one per distinct 64B line (the code is far smaller
	// than the cache, so no other I-misses can occur), each hitting...
	// missing the cold L2 as well.
	coldLines := float64(len(fetches))
	want += coldLines * (cfg.L1IMissPenalty + cfg.L2MissPenalty*cfg.L2Overlap)

	got := float64(c.Cycles)
	if math.Abs(got-want) > 1.0 { // rounding to integer cycles
		t.Fatalf("cycles = %v, analytic model says %v (diff %v)", got, want, got-want)
	}
	if c.L1IMisses != uint64(coldLines) {
		t.Fatalf("L1I misses %d, want %d cold lines", c.L1IMisses, int(coldLines))
	}
	if c.L2Misses != c.L1IMisses {
		t.Fatalf("every cold I-line should miss L2 once: %d vs %d", c.L2Misses, c.L1IMisses)
	}
}

// TestMispredictPenaltyExact verifies the flush-penalty application: with
// a never-taken static predictor on the Counting loop (always taken until
// the exit), mispredictions are exactly the taken branches, and the extra
// cycles versus the perfect run equal penalty * mispredicts (the loop
// block has no memory operations, so no shadow scaling applies).
func TestMispredictPenaltyExact(t *testing.T) {
	p := testprog.Counting(4)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	exe, err := toolchain.BuildLayout(p, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.XeonE5440()
	m := machine.New(cfg)
	perfect, err := m.Run(machine.RunSpec{Exe: exe, Trace: tr, Predictor: branch.Perfect{}, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	never, err := m.Run(machine.RunSpec{Exe: exe, Trace: tr, Predictor: branch.NeverTaken{}, DisableNoise: true})
	if err != nil {
		t.Fatal(err)
	}
	if never.CondMispredicts != tr.TakenBranches {
		t.Fatalf("never-taken mispredicts %d, want taken count %d",
			never.CondMispredicts, tr.TakenBranches)
	}
	extra := float64(never.Cycles) - float64(perfect.Cycles)
	want := cfg.MispredictPenalty * float64(never.CondMispredicts)
	if math.Abs(extra-want) > 1.0 {
		t.Fatalf("penalty cycles %v, want %v", extra, want)
	}
}
