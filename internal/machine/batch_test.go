package machine_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"interferometry/internal/heap"
	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/progen"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
	"interferometry/internal/uarch/branch"
)

type batchProgram struct {
	name  string
	prog  *isa.Program
	trace *interp.Trace
}

func batchPrograms(t testing.TB, budget uint64) []batchProgram {
	t.Helper()
	ps := []struct {
		name string
		prog *isa.Program
	}{
		{"branchy", testprog.Branchy()},
		{"memory", testprog.Memory(64)},
		{"cachestress", testprog.CacheStress(24, 48)},
	}
	out := make([]batchProgram, 0, len(ps))
	for _, p := range ps {
		tr, err := interp.Run(p.prog, 1, interp.StopRule{Budget: budget})
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		out = append(out, batchProgram{p.name, p.prog, tr})
	}
	return out
}

// TestBatchMatchesSequential is the batched-replay property test: for
// every lane of every trial, Batch.Run must return exactly what the
// scalar Machine.RunDeterministic returns for that lane's spec — equal
// Counters and a bit-identical raw cycle float (math.Float64bits, not an
// epsilon). Trials sweep programs, batch sizes 1/2/7/K_max, both heap
// modes, and predictor overrides (none, mixed oracle+scalar, all-scalar
// distinct instances) across ≥50 layout seeds.
func TestBatchMatchesSequential(t *testing.T) {
	trials := 52
	if testing.Short() {
		trials = 12
	}
	const kMax = 16
	cfg := machine.XeonE5440()
	batch, err := machine.NewBatch(cfg, kMax)
	if err != nil {
		t.Fatal(err)
	}
	seq := machine.New(cfg)
	progs := batchPrograms(t, 20000)
	sizes := []int{1, 2, 7, kMax}
	specs := make([]machine.RunSpec, kMax)

	for trial := 0; trial < trials; trial++ {
		pp := progs[trial%len(progs)]
		k := sizes[trial%len(sizes)]
		mode := heap.ModeBump
		if trial%2 == 1 {
			mode = heap.ModeRandomized
		}
		for ki := 0; ki < k; ki++ {
			layoutSeed := uint64(trial*kMax + ki + 1)
			exe, err := toolchain.BuildLayout(pp.prog, layoutSeed, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{})
			if err != nil {
				t.Fatalf("trial %d lane %d: %v", trial, ki, err)
			}
			specs[ki] = machine.RunSpec{
				Exe:      exe,
				Trace:    pp.trace,
				HeapMode: mode,
				HeapSeed: layoutSeed*3 + 1,
			}
			switch trial % 3 {
			case 1: // mixed lanes: built-in, oracle, private scalar override
				switch ki % 3 {
				case 1:
					specs[ki].Predictor = branch.Perfect{}
				case 2:
					specs[ki].Predictor = branch.NewGshare(4096, 12)
				}
			case 2: // every lane a distinct scalar override instance
				specs[ki].Predictor = branch.NewGshare(1024, 8)
			}
		}
		gotC, gotD, err := batch.Run(specs[:k])
		if err != nil {
			t.Fatalf("trial %d (%s, k=%d, %s): %v", trial, pp.name, k, mode, err)
		}
		for ki := 0; ki < k; ki++ {
			wantC, wantD, err := seq.RunDeterministic(specs[ki])
			if err != nil {
				t.Fatalf("trial %d lane %d sequential: %v", trial, ki, err)
			}
			if gotC[ki] != wantC {
				t.Fatalf("trial %d (%s, k=%d, %s) lane %d counters diverged:\nbatch %+v\nseq   %+v",
					trial, pp.name, k, mode, ki, gotC[ki], wantC)
			}
			if math.Float64bits(gotD[ki]) != math.Float64bits(wantD) {
				t.Fatalf("trial %d (%s, k=%d, %s) lane %d det cycles diverged: batch %v (%#x), seq %v (%#x)",
					trial, pp.name, k, mode, ki, gotD[ki], math.Float64bits(gotD[ki]), wantD, math.Float64bits(wantD))
			}
		}
	}
}

// TestBatchRunValidation pins the batch-lane error contract.
func TestBatchRunValidation(t *testing.T) {
	cfg := machine.XeonE5440()
	batch, err := machine.NewBatch(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchPrograms(t, 2000)
	branchy, memory := progs[0], progs[1]
	exe := func(p batchProgram, seed uint64) *toolchain.Executable {
		e, err := toolchain.BuildLayout(p.prog, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	base := machine.RunSpec{Exe: exe(branchy, 1), Trace: branchy.trace}

	if _, _, err := batch.Run(nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := batch.Run(make([]machine.RunSpec, 5)); err == nil {
		t.Error("batch over capacity accepted")
	}
	if _, _, err := batch.Run([]machine.RunSpec{base, {Exe: exe(memory, 1), Trace: memory.trace}}); err == nil {
		t.Error("mixed traces accepted")
	}
	if _, _, err := batch.Run([]machine.RunSpec{base, {Exe: exe(branchy, 2), Trace: branchy.trace, HeapMode: heap.ModeRandomized}}); err == nil {
		t.Error("mixed heap modes accepted")
	}
	if _, _, err := batch.Run([]machine.RunSpec{{Exe: exe(memory, 1), Trace: branchy.trace}}); err == nil {
		t.Error("trace/executable program mismatch accepted")
	}
	shared := branch.NewGshare(1024, 8)
	a, b := base, base
	a.Predictor, b.Predictor = shared, shared
	b.Exe = exe(branchy, 2)
	_, _, err = batch.Run([]machine.RunSpec{a, b})
	if err == nil || !strings.Contains(err.Error(), "share one predictor instance") {
		t.Errorf("shared predictor instance: got %v", err)
	}
	// Two oracle lanes are fine: Perfect{} is stateless.
	a.Predictor, b.Predictor = branch.Perfect{}, branch.Perfect{}
	if _, _, err := batch.Run([]machine.RunSpec{a, b}); err != nil {
		t.Errorf("two oracle lanes rejected: %v", err)
	}
}

// TestMachineInvalidate pins the stale-reload contract: Machine.load
// keys its per-block cache on executable pointer identity, so mutating
// an Executable in place is invisible until Invalidate drops the cache.
func TestMachineInvalidate(t *testing.T) {
	m, spec := setup(t, 20000)
	c1, d1, err := m.RunDeterministic(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the layout in place (the pathological case the
	// pointer-identity key cannot see). The shift varies per block: a
	// uniform shift would leave the cache conflict pattern isomorphic.
	for i := range spec.Exe.BlockAddr {
		spec.Exe.BlockAddr[i] += uint64(i%13) * 192
	}
	c2, d2, err := m.RunDeterministic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 || math.Float64bits(d2) != math.Float64bits(d1) {
		t.Fatal("in-place mutation without Invalidate changed the result; the pointer-identity cache key must have been replaced — update this test and Invalidate's doc")
	}
	fresh := machine.New(m.Config())
	c3, d3, err := fresh.RunDeterministic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(d3) == math.Float64bits(d1) {
		t.Fatal("layout mutation did not perturb timing; pick a different shift")
	}
	m.Invalidate()
	c4, d4, err := m.RunDeterministic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c4 != c3 || math.Float64bits(d4) != math.Float64bits(d3) {
		t.Fatalf("post-Invalidate run still stale:\ngot  %+v det %v\nwant %+v det %v", c4, d4, c3, d3)
	}
}

// TestBatchInvalidate is the same contract for Batch's program-keyed
// shared tables.
func TestBatchInvalidate(t *testing.T) {
	cfg := machine.XeonE5440()
	batch, err := machine.NewBatch(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchPrograms(t, 20000)
	pp := progs[0]
	exe, err := toolchain.BuildLayout(pp.prog, 1, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	specs := []machine.RunSpec{{Exe: exe, Trace: pp.trace}}
	if _, _, err := batch.Run(specs); err != nil {
		t.Fatal(err)
	}
	batch.Invalidate()
	c, d, err := batch.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	seq := machine.New(cfg)
	wantC, wantD, err := seq.RunDeterministic(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != wantC || math.Float64bits(d[0]) != math.Float64bits(wantD) {
		t.Fatal("post-Invalidate batch run diverged from sequential")
	}
}

// TestBatchRunZeroAlloc pins the steady-state zero-allocation contract
// of Batch.Run, in both heap modes, matching TestMachineRunZeroAlloc.
func TestBatchRunZeroAlloc(t *testing.T) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 100000})
	if err != nil {
		t.Fatal(err)
	}
	const kMax = 8
	specs := make([]machine.RunSpec, kMax)
	for ki := range specs {
		exe, err := toolchain.BuildLayout(prog, uint64(ki+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		specs[ki] = machine.RunSpec{Exe: exe, Trace: tr, HeapSeed: 3}
	}
	for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
		batch, err := machine.NewBatch(machine.XeonE5440(), kMax)
		if err != nil {
			t.Fatal(err)
		}
		for ki := range specs {
			specs[ki].HeapMode = mode
		}
		if _, _, err := batch.Run(specs); err != nil { // warm the reusable state
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, _, err := batch.Run(specs); err != nil {
				t.Error(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per batch run, want 0", mode, allocs)
		}
	}
}

// BenchmarkBatchRun measures the batched replay engine on the same
// 200k-instruction perlbench workload as BenchmarkMachineRun, across
// batch widths. ns/op covers all k layouts of one Run; layouts/s is
// reported as a custom metric for direct comparison with the scalar
// path (and across widths — wider batches amortize the shared trace
// decode further until the K-wide cache tags outgrow the host caches).
func BenchmarkBatchRun(b *testing.B) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		b.Fatal("missing spec")
	}
	prog := progen.MustGenerate(spec)
	tr, err := interp.Run(prog, 1, interp.StopRule{Budget: 200000})
	if err != nil {
		b.Fatal(err)
	}
	const kMax = 32
	specs := make([]machine.RunSpec, kMax)
	for ki := range specs {
		exe, err := toolchain.BuildLayout(prog, uint64(ki+1), toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			b.Fatal(err)
		}
		specs[ki] = machine.RunSpec{Exe: exe, Trace: tr, HeapSeed: 3}
	}
	for _, k := range []int{8, 16, 32} {
		for _, mode := range []heap.Mode{heap.ModeBump, heap.ModeRandomized} {
			b.Run(fmt.Sprintf("%s/k=%d", mode, k), func(b *testing.B) {
				batch, err := machine.NewBatch(machine.XeonE5440(), k)
				if err != nil {
					b.Fatal(err)
				}
				for ki := range specs {
					specs[ki].HeapMode = mode
				}
				if _, _, err := batch.Run(specs[:k]); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := batch.Run(specs[:k]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "layouts/s")
			})
		}
	}
}
