package obs

import "io"

// Observer bundles the three observability channels so instrumented
// packages take a single optional dependency. Any field — or the whole
// Observer — may be nil; every helper below degrades to a no-op, which
// keeps the uninstrumented hot path at one pointer check.
type Observer struct {
	Metrics  *Metrics
	Tracer   *Tracer
	Progress *Progress
}

// Counter resolves a counter from the observer's registry (nil-safe).
func (o *Observer) Counter(name, help string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name, help)
}

// Gauge resolves a gauge from the observer's registry (nil-safe).
func (o *Observer) Gauge(name, help string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name, help)
}

// Histogram resolves a histogram from the observer's registry (nil-safe).
func (o *Observer) Histogram(name, help string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name, help, bounds)
}

// StartSpan opens a span on the observer's tracer (nil-safe: the
// returned span is inert when no tracer is attached).
func (o *Observer) StartSpan(name string, id, parent uint64, tid int) Span {
	if o == nil {
		return Span{}
	}
	return o.Tracer.Start(name, id, parent, tid)
}

// Prog returns the progress reporter (nil when absent).
func (o *Observer) Prog() *Progress {
	if o == nil {
		return nil
	}
	return o.Progress
}

// WriteMetricsJSON exports the observer's registry as JSON (nil-safe).
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	if o == nil {
		return (*Metrics)(nil).WriteJSON(w)
	}
	return o.Metrics.WriteJSON(w)
}

// WriteMetricsPrometheus exports the observer's registry in Prometheus
// text format (nil-safe).
func (o *Observer) WriteMetricsPrometheus(w io.Writer) error {
	if o == nil {
		return nil
	}
	return o.Metrics.WritePrometheus(w)
}
