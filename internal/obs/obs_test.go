package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with fully deterministic contents so
// both export formats can be pinned byte-for-byte.
func goldenRegistry() *Metrics {
	m := NewMetrics()
	c := m.Counter("interferometry_layouts_done_total", "layouts measured successfully")
	c.Add(30)
	m.Counter("interferometry_layouts_failed_total", "layouts that exhausted retries").Add(2)
	m.Gauge("interferometry_workers", "configured worker count").Set(8)
	m.Gauge("interferometry_effective_n_ratio", "usable fraction of the dataset").Set(0.9375)
	h := m.Histogram("interferometry_stage_run_seconds", "machine-run stage latency", []float64{0.001, 0.01, 0.1, 1})
	for _, v := range []float64{0.0004, 0.002, 0.002, 0.05, 0.05, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	return m
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestMetricsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("export is not valid JSON:\n%s", buf.String())
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())
}

func TestMetricsPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Spot-check exposition-format requirements before pinning bytes.
	if !strings.Contains(out, "# TYPE interferometry_stage_run_seconds histogram") {
		t.Errorf("missing histogram TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `interferometry_stage_run_seconds_bucket{le="+Inf"} 8`) {
		t.Errorf("cumulative +Inf bucket should equal total count:\n%s", out)
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}

func TestCounterGaugeHistogram(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c", "")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := m.Counter("c", "other help"); again != c {
		t.Error("Counter should return the existing instrument")
	}
	g := m.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	h := m.Histogram("h", "", []float64{1, 10})
	for _, v := range []float64{0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 55.5 {
		t.Errorf("histogram count=%d sum=%v, want 3, 55.5", h.Count(), h.Sum())
	}
	// Boundary value lands in its own le bucket (le is inclusive).
	h.Observe(1)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Histograms map[string]struct {
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	b := out.Histograms["h"].Buckets
	if len(b) != 3 || b[0].LE != "1" || b[0].Count != 2 || b[2].LE != "+Inf" || b[2].Count != 1 {
		t.Errorf("unexpected buckets: %+v", b)
	}
}

func TestNilSafety(t *testing.T) {
	var m *Metrics
	m.Counter("x", "").Inc()
	m.Gauge("x", "").Set(1)
	m.Histogram("x", "", DurationBuckets).Observe(1)
	if err := m.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := m.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if m.Summary() != nil {
		t.Error("nil metrics summary should be nil")
	}

	var tr *Tracer
	tr.Start("x", 1, 0, 0).End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	(Span{}).End()

	var p *Progress
	p.Done()
	p.Fail()
	p.Retry()
	p.Repair()
	p.Finish()

	var o *Observer
	o.Counter("x", "").Inc()
	o.Gauge("x", "").Set(1)
	o.Histogram("x", "", nil).Observe(1)
	o.StartSpan("x", 1, 0, 0).End()
	o.Prog().Done()
	if err := o.WriteMetricsJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := o.WriteMetricsPrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSpanIDDeterministic(t *testing.T) {
	a := SpanID(0x1f2e3d4c, 7, 0x636f6d70)
	b := SpanID(0x1f2e3d4c, 7, 0x636f6d70)
	if a != b {
		t.Fatalf("same inputs gave %x vs %x", a, b)
	}
	if a == SpanID(0x1f2e3d4c, 8, 0x636f6d70) {
		t.Error("adjacent layout indices should not collide")
	}
	if a == SpanID(0x1f2e3d4d, 7, 0x636f6d70) {
		t.Error("different seeds should not collide")
	}
	if SpanID(1) == SpanID(1, 0) {
		t.Error("path length must be part of the identity")
	}
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := SpanID(42, 0)
	child := SpanID(root, 1)
	s1 := tr.Start("campaign", root, 0, 0)
	s2 := tr.Start("compile", child, root, 3)
	s2.End()
	s1.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("closed trace must be strict JSON:\n%s", buf.String())
	}
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	// Events are emitted at End, so the child comes first.
	if events[0].Name != "compile" || events[0].TID != 3 || events[1].Name != "campaign" {
		t.Errorf("unexpected events: %+v", events)
	}
	id, err := events[0].SpanID()
	if err != nil || id != child {
		t.Errorf("child span id = %x (%v), want %x", id, err, child)
	}
	pid, err := events[0].ParentID()
	if err != nil || pid != root {
		t.Errorf("child parent id = %x (%v), want %x", pid, err, root)
	}
	if events[0].Ph != "X" || events[0].Dur < 0 || events[1].TS > events[0].TS {
		t.Errorf("bad event shape: %+v", events)
	}
}

func TestReadTraceTruncated(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Start("a", 1, 0, 0).End()
	tr.Start("b", 2, 1, 0).End()
	tr.Close()
	full := buf.Bytes()
	// Cut mid-way through the second event, as a kill would.
	cut := bytes.LastIndex(full, []byte(`"name":"b"`)) + 5
	events, err := ReadTrace(bytes.NewReader(full[:cut]))
	if err != nil {
		t.Fatalf("truncated trace should parse: %v", err)
	}
	if len(events) != 1 || events[0].Name != "a" {
		t.Errorf("got %+v, want just event a", events)
	}
}

func TestProgressReporting(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "fig2", 4, time.Hour) // interval too long to auto-emit
	p.Done()
	p.Done()
	p.Retry()
	p.Fail()
	p.Repair()
	if buf.Len() != 0 {
		t.Fatalf("rate limit should suppress intermediate lines, got %q", buf.String())
	}
	p.Done()
	p.Finish()
	line := buf.String()
	for _, want := range []string{"fig2", "4/4", "1 failed", "1 retried", "1 repaired", "eta 0s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c", "")
	g := m.Gauge("g", "")
	h := m.Histogram("h", "", DurationBuckets)
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) * 0.001)
				tr.Start("op", SpanID(uint64(w), uint64(i)), 0, w).End()
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Value() != 1600 || g.Value() != 1600 || h.Count() != 1600 {
		t.Errorf("lost updates: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	events, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1600 {
		t.Errorf("got %d trace events, want 1600", len(events))
	}
}

func TestInstrumentAllocs(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c", "")
	g := m.Gauge("g", "")
	h := m.Histogram("h", "", DurationBuckets)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(0.5)
	}); n != 0 {
		t.Errorf("held instruments allocate %v per op, want 0", n)
	}
}

func TestSummary(t *testing.T) {
	s := goldenRegistry().Summary()
	if len(s) != 5 {
		t.Fatalf("got %d samples, want 5", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Errorf("summary not sorted: %q >= %q", s[i-1].Name, s[i].Name)
		}
	}
	for _, smp := range s {
		if smp.Name == "interferometry_stage_run_seconds" {
			if smp.Kind != "histogram" || smp.Value != 8 || !strings.Contains(smp.Detail, "mean") {
				t.Errorf("bad histogram sample: %+v", smp)
			}
		}
	}
}
