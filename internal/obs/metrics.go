// Package obs is the observability layer of the interferometry pipeline:
// a metrics registry (atomic counters, gauges and fixed-bucket
// histograms, exported as JSON and Prometheus text format), lightweight
// span tracing (campaign → layout → stage) emitted as a
// chrome://tracing-compatible JSONL trace with seeded-deterministic span
// IDs, and a campaign progress reporter.
//
// The package is stdlib-only and allocation-disciplined: every hot-path
// operation (Counter.Add, Gauge.Add, Histogram.Observe, Span emission)
// is a few atomic operations or appends into a reused buffer, and every
// type is nil-safe — a nil *Metrics, *Tracer, *Progress or *Observer
// turns the corresponding instrumentation into a no-op, so uninstrumented
// campaigns pay only a nil check. The 0 allocs/op machine-run path and
// the campaign fast path are guarded by benchmark assertions in
// internal/machine and internal/core.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a registry of named counters, gauges and histograms. All
// methods are safe for concurrent use; a nil *Metrics hands out nil
// instruments whose methods are no-ops.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Callers
// should resolve instruments once at setup time and hold the pointer:
// the lookup takes the registry lock, the held instrument does not.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{name: name, help: help}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{name: name, help: help}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending upper bucket bounds (an implicit +Inf bucket is
// always appended). Bounds are fixed at creation; later calls reuse the
// existing histogram regardless of the bounds argument.
func (m *Metrics) Histogram(name, help string, bounds []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = &Histogram{
			name:   name,
			help:   help,
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		m.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (zero for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can move both ways.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add accumulates v with a CAS loop. No-op on a nil gauge.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value (zero for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations in fixed buckets. Observations and the
// running sum use atomics only, so concurrent Observe calls never block
// each other.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64
	count      atomic.Uint64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (zero for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (zero for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets is the standard bucket set for stage latencies, in
// seconds: 100µs up to ~100s in half-decade steps.
var DurationBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100,
}

// snapshot is the export-stable view of the registry.
type snapshot struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
}

func (m *Metrics) snapshot() snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s snapshot
	for _, c := range m.counters {
		s.counters = append(s.counters, c)
	}
	for _, g := range m.gauges {
		s.gauges = append(s.gauges, g)
	}
	for _, h := range m.hists {
		s.hists = append(s.hists, h)
	}
	sort.Slice(s.counters, func(a, b int) bool { return s.counters[a].name < s.counters[b].name })
	sort.Slice(s.gauges, func(a, b int) bool { return s.gauges[a].name < s.gauges[b].name })
	sort.Slice(s.hists, func(a, b int) bool { return s.hists[a].name < s.hists[b].name })
	return s
}

// bucketJSON is one cumulative-free histogram bucket in the JSON export.
type bucketJSON struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

type histJSON struct {
	Buckets []bucketJSON `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   uint64       `json:"count"`
}

type metricsJSON struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]histJSON `json:"histograms"`
}

// WriteJSON writes the registry as indented JSON with sorted keys, a
// stable format suitable for golden-file tests and downstream tooling.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	s := m.snapshot()
	out := metricsJSON{
		Counters:   make(map[string]uint64, len(s.counters)),
		Gauges:     make(map[string]float64, len(s.gauges)),
		Histograms: make(map[string]histJSON, len(s.hists)),
	}
	for _, c := range s.counters {
		out.Counters[c.name] = c.Value()
	}
	for _, g := range s.gauges {
		out.Gauges[g.name] = g.Value()
	}
	for _, h := range s.hists {
		hj := histJSON{Sum: h.Sum(), Count: h.Count()}
		for i := range h.counts {
			hj.Buckets = append(hj.Buckets, bucketJSON{LE: leLabel(h.bounds, i), Count: h.counts[i].Load()})
		}
		out.Histograms[h.name] = hj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// leLabel formats bucket i's upper bound the way Prometheus does.
func leLabel(bounds []float64, i int) string {
	if i >= len(bounds) {
		return "+Inf"
	}
	return strconv.FormatFloat(bounds[i], 'g', -1, 64)
}

// familyOf strips a trailing {label="..."} block: instruments registered
// under a name like `depth{tenant="a"}` are members of the `depth`
// family and share its HELP/TYPE header in the Prometheus export. The
// registry itself has no label support — the full labeled string is the
// instrument's identity — so this is purely an export-time grouping.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (metric families sorted by name; histogram buckets cumulative,
// as the format requires). Instruments whose names carry a {label}
// suffix are grouped under one family header: name-sorted order keeps
// members adjacent, and HELP/TYPE are emitted once per family.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	s := m.snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	prevFam := ""
	for _, c := range s.counters {
		if fam := familyOf(c.name); fam != prevFam {
			prevFam = fam
			if c.help != "" {
				p("# HELP %s %s\n", fam, c.help)
			}
			p("# TYPE %s counter\n", fam)
		}
		p("%s %d\n", c.name, c.Value())
	}
	prevFam = ""
	for _, g := range s.gauges {
		if fam := familyOf(g.name); fam != prevFam {
			prevFam = fam
			if g.help != "" {
				p("# HELP %s %s\n", fam, g.help)
			}
			p("# TYPE %s gauge\n", fam)
		}
		p("%s %s\n", g.name, formatFloat(g.Value()))
	}
	for _, h := range s.hists {
		if h.help != "" {
			p("# HELP %s %s\n", h.name, h.help)
		}
		p("# TYPE %s histogram\n", h.name)
		cum := uint64(0)
		for i := range h.counts {
			cum += h.counts[i].Load()
			p("%s_bucket{le=%q} %d\n", h.name, leLabel(h.bounds, i), cum)
		}
		p("%s_sum %s\n%s_count %d\n", h.name, formatFloat(h.Sum()), h.name, h.Count())
	}
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one row of the human-readable metrics summary.
type Sample struct {
	Name  string
	Kind  string // "counter", "gauge" or "histogram"
	Value float64
	// Detail is extra per-kind context (histogram mean, for example).
	Detail string
}

// Summary returns every metric as a sorted sample list; histograms report
// their observation count with the mean in Detail. Command report embeds
// it as the metrics section of report.md.
func (m *Metrics) Summary() []Sample {
	if m == nil {
		return nil
	}
	s := m.snapshot()
	out := make([]Sample, 0, len(s.counters)+len(s.gauges)+len(s.hists))
	for _, c := range s.counters {
		out = append(out, Sample{Name: c.name, Kind: "counter", Value: float64(c.Value())})
	}
	for _, g := range s.gauges {
		out = append(out, Sample{Name: g.name, Kind: "gauge", Value: g.Value()})
	}
	for _, h := range s.hists {
		smp := Sample{Name: h.name, Kind: "histogram", Value: float64(h.Count())}
		if n := h.Count(); n > 0 {
			smp.Detail = fmt.Sprintf("mean %s", formatFloat(h.Sum()/float64(n)))
		}
		out = append(out, smp)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}
