package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// SpanID derives a deterministic span identifier from a seed and a path
// of parts (layout index, stage tag, ...). It is a pure function — the
// same campaign seeds always produce the same span tree — implemented as
// a splitmix64 chain so that nearby indices map to distant IDs. obs is
// dependency-free, so the mixer is inlined here rather than imported
// from internal/xrand.
func SpanID(seed uint64, parts ...uint64) uint64 {
	h := splitmix(seed ^ 0x6f627370616e6964) // "obspanid"
	for _, p := range parts {
		h = splitmix(h ^ p)
	}
	return h
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Tracer emits spans as one chrome://tracing-compatible JSON event per
// line. The output is a strict JSON array when the tracer is Closed; a
// trace cut short by a kill is still loadable, since the trace viewer
// tolerates a missing closing bracket. Spans nest by time within a tid
// lane (the worker index), which is how the viewer reconstructs the
// campaign → layout → stage tree; the deterministic span and parent IDs
// ride along in each event's args.
//
// A Tracer is safe for concurrent use. A nil *Tracer hands out inert
// spans, so instrumentation sites need no enablement checks.
type Tracer struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	base  time.Time
	buf   []byte
	first bool
	err   error
}

// NewTracer returns a tracer writing to w.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{bw: bufio.NewWriter(w), base: time.Now(), first: true}
	t.bw.WriteString("[")
	return t
}

// Span is one in-flight traced operation. The zero Span (and any span
// from a nil tracer) is inert.
type Span struct {
	tr         *Tracer
	name       string
	id, parent uint64
	tid        int
	start      time.Duration
}

// Start opens a span. name should be a short static stage name; id and
// parent are deterministic SpanID values; tid is the worker lane the
// viewer nests spans in (use 0 for campaign-level spans).
func (t *Tracer) Start(name string, id, parent uint64, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{tr: t, name: name, id: id, parent: parent, tid: tid, start: time.Since(t.base)}
}

// End emits the span as a complete ("ph":"X") trace event.
func (s Span) End() {
	t := s.tr
	if t == nil {
		return
	}
	end := time.Since(t.base)
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	if t.first {
		t.first = false
		b = append(b, '\n')
	} else {
		b = append(b, ',', '\n')
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, s.name)
	b = append(b, `,"cat":"interferometry","ph":"X","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(s.tid), 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, s.start)
	b = append(b, `,"dur":`...)
	b = appendMicros(b, end-s.start)
	b = append(b, `,"args":{"span":"`...)
	b = appendHex16(b, s.id)
	b = append(b, `","parent":"`...)
	b = appendHex16(b, s.parent)
	b = append(b, `"}}`...)
	t.buf = b
	if _, err := t.bw.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// appendMicros appends a duration as decimal microseconds with
// nanosecond precision.
func appendMicros(b []byte, d time.Duration) []byte {
	b = strconv.AppendInt(b, d.Nanoseconds()/1000, 10)
	if frac := d.Nanoseconds() % 1000; frac != 0 {
		b = append(b, '.')
		b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	}
	return b
}

func appendHex16(b []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b = append(b, digits[v>>uint(shift)&0xf])
	}
	return b
}

// Close terminates the JSON array and flushes, returning the first write
// error encountered.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.bw.WriteString("\n]\n")
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// TraceEvent is one parsed trace line.
type TraceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// SpanID returns the event's deterministic span ID from its args.
func (e *TraceEvent) SpanID() (uint64, error) {
	return strconv.ParseUint(e.Args["span"], 16, 64)
}

// ParentID returns the event's parent span ID from its args.
func (e *TraceEvent) ParentID() (uint64, error) {
	return strconv.ParseUint(e.Args["parent"], 16, 64)
}

// ReadTrace parses a trace written by Tracer, tolerating the truncated
// (kill-mid-campaign) form: the leading bracket, per-line separators and
// a missing terminator are all accepted.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var events []TraceEvent
	for lineNo, raw := range bytes.Split(data, []byte("\n")) {
		line := bytes.Trim(bytes.TrimSpace(raw), ",")
		if len(line) == 0 || bytes.Equal(line, []byte("[")) || bytes.Equal(line, []byte("]")) {
			continue
		}
		// A kill can leave a torn final line; ignore it like the viewer does.
		var ev TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			if lineNo == bytes.Count(data, []byte("\n")) {
				continue
			}
			return events, fmt.Errorf("obs: trace line %d: %w", lineNo+1, err)
		}
		events = append(events, ev)
	}
	return events, nil
}
