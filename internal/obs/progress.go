package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress reports campaign advancement (layouts done/failed/retried,
// outliers repaired, throughput, ETA) to a writer, rate-limited so a
// fast campaign doesn't flood the terminal. All counting methods are
// atomic and safe for concurrent workers; a nil *Progress is a no-op.
type Progress struct {
	w        io.Writer
	label    string
	start    time.Time
	interval time.Duration

	total    atomic.Int64
	done     atomic.Int64
	failed   atomic.Int64
	retried  atomic.Int64
	repaired atomic.Int64

	mu   sync.Mutex
	last time.Time
}

// NewProgress returns a reporter for total units of work (layouts),
// emitting at most one line per interval (0 means a 1s default).
func NewProgress(w io.Writer, label string, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	now := time.Now()
	p := &Progress{w: w, label: label, start: now, interval: interval, last: now}
	p.total.Store(int64(total))
	return p
}

// AddTotal grows the expected unit count; campaigns call it as they
// start, so a reporter created with total 0 still produces a meaningful
// ETA once work is underway.
func (p *Progress) AddTotal(n int) {
	if p != nil {
		p.total.Add(int64(n))
	}
}

// Done records one completed unit and maybe emits a progress line.
func (p *Progress) Done() {
	if p == nil {
		return
	}
	p.done.Add(1)
	p.maybeReport(false)
}

// Fail records one permanently failed unit and maybe emits a line.
func (p *Progress) Fail() {
	if p == nil {
		return
	}
	p.failed.Add(1)
	p.maybeReport(false)
}

// Retry records one retried attempt.
func (p *Progress) Retry() {
	if p != nil {
		p.retried.Add(1)
	}
}

// Repair records one outlier re-measurement.
func (p *Progress) Repair() {
	if p != nil {
		p.repaired.Add(1)
	}
}

// Finish emits the final summary line unconditionally.
func (p *Progress) Finish() {
	if p == nil {
		return
	}
	p.maybeReport(true)
}

func (p *Progress) maybeReport(force bool) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if !force && now.Sub(p.last) < p.interval {
		return
	}
	p.last = now
	done, failed, total := p.done.Load(), p.failed.Load(), p.total.Load()
	elapsed := now.Sub(p.start).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done+failed) / elapsed
	}
	eta := "?"
	if total > 0 {
		if left := total - done - failed; left <= 0 {
			eta = "0s"
		} else if rate > 0 {
			eta = time.Duration(float64(left) / rate * float64(time.Second)).Round(time.Millisecond).String()
		}
	}
	fmt.Fprintf(p.w, "%s: %d/%d layouts (%d failed, %d retried, %d repaired) %.1f layouts/s eta %s\n",
		p.label, done+failed, total, failed, p.retried.Load(), p.repaired.Load(), rate, eta)
}
