// Package progen generates the synthetic benchmark programs that stand in
// for SPEC CPU 2006 (and the SPEC 2000 benchmarks of the linearity
// study). A Spec captures the workload characteristics interferometry is
// sensitive to — static branch population and its behaviour mixture, code
// footprint, instruction mix, and memory working sets — and Generate
// deterministically expands it into a layout-free isa.Program. The named
// suites in suite.go mirror the paper's benchmark lists.
package progen

import (
	"fmt"
	"math"

	"interferometry/internal/isa"
	"interferometry/internal/xrand"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name string
	Seed uint64

	// Procs is the number of procedures besides main. BlocksMin/Max bound
	// the blocks per procedure.
	Procs                int
	BlocksMin, BlocksMax int

	// FPFraction and IntMulFraction shape the instruction mix of block
	// bodies (the remainder is simple integer ALU work).
	FPFraction     float64
	IntMulFraction float64
	// BytesPerInstr scales static code size (x86 instructions average
	// ~3.7 bytes; bloated code stresses the L1I).
	BytesPerInstr float64

	// Branch behaviour mixture weights (normalized internally).
	WBiased, WLoop, WPattern, WCorrelated float64
	// HardBiasFraction is the fraction of biased branches drawn from a
	// hard (near-0.5) bias instead of an easy (near-0/1) one.
	HardBiasFraction float64
	// CorrNoise is the flip probability of correlated branches.
	CorrNoise float64
	// CondDensity is the probability that a non-final block ends in a
	// conditional branch.
	CondDensity float64
	// CallDensity is the probability that a non-final block ends in a
	// call (when callees are available).
	CallDensity float64
	// IndirectSites is the number of polymorphic indirect call sites.
	IndirectSites int

	// MemFraction is the approximate fraction of retired instructions
	// that are memory operations.
	MemFraction float64
	// Memory accesses are split into two locality tiers, as in real
	// programs: HotFraction of accesses hit a small arena that lives in
	// the L1D; the remainder are cold accesses dispatched over the
	// pattern mixture below (big streams, pool chasing, whole-object
	// random access) and drive the L2 and memory traffic that sets each
	// benchmark's CPI level.
	HotFraction float64
	// HotBytes sizes the hot arena (default 12KB).
	HotBytes uint64
	// HotOnHeap places hot accesses on pool objects instead of a global
	// arena, making L1D conflicts depend on the allocator's placement —
	// the §1.3 heap-randomization effect (calculix-style).
	HotOnHeap bool
	// HotPoolObjects restricts HotOnHeap accesses to the first N pool
	// objects, so a benchmark can keep an L1-resident hot set on the heap
	// while cold accesses roam the whole (much larger) pool. Zero means
	// the entire pool.
	HotPoolObjects int
	// Loop trip-count ranges. Forward loop branches draw trips from
	// [FwdTripMin, FwdTripMax]; backward (loop-back) branches from
	// [BackTripMin, BackTripMax]. Zeros mean [2,61] and [2,12]. FP codes
	// with very long trip counts have almost no loop-exit mispredictions,
	// which is what makes them fail the significance screen.
	FwdTripMin, FwdTripMax   int
	BackTripMin, BackTripMax int
	// Globals and GlobalBytes size the statically placed cold data
	// objects (arena objects are created separately).
	Globals     int
	GlobalBytes uint64
	// HeapObjects and HeapObjBytes size the allocator-placed pool.
	HeapObjects  int
	HeapObjBytes uint64
	// BigHeapObjects and BigHeapBytes add a second pool of large
	// heap-placed arrays; when present, cold stream/random/blocked
	// patterns use them instead of globals, so the randomizing
	// allocator's page-phase decisions perturb their cache-set mapping
	// (the Figure 3 mechanism).
	BigHeapObjects int
	BigHeapBytes   uint64
	// Access pattern mixture weights.
	WStream, WRandom, WChase, WBlocked float64
	// PoolSkew is the Zipf exponent of pool accesses.
	PoolSkew float64
	// ChurnSites is the number of allocation sites that free and
	// re-allocate pool objects during execution.
	ChurnSites int
}

// normalized returns the four branch weights scaled to sum to 1.
func (s *Spec) branchWeights() [4]float64 {
	w := [4]float64{s.WBiased, s.WLoop, s.WPattern, s.WCorrelated}
	sum := w[0] + w[1] + w[2] + w[3]
	if sum == 0 {
		return [4]float64{1, 0, 0, 0}
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func (s *Spec) memWeights() [4]float64 {
	w := [4]float64{s.WStream, s.WRandom, s.WChase, s.WBlocked}
	sum := w[0] + w[1] + w[2] + w[3]
	if sum == 0 {
		return [4]float64{1, 0, 0, 0}
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Generation caps: far above every suite spec, low enough that a
// validated spec always generates in bounded time and memory.
const (
	maxProcs     = 20_000
	maxBlocks    = 1_000
	maxCount     = 1_000_000 // objects, sites, churn slots
	maxTrip      = 10_000_000
	maxObjBytes  = 1 << 32
	maxInstrSize = 64 // BytesPerInstr ceiling
)

// Validate rejects nonsensical specs: out-of-range shares, NaN/Inf
// floats, negative counts, and sizes large enough to stall generation.
// Every spec in Suite and SimSuite must pass.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("progen: spec needs a name")
	}
	if s.Procs < 1 || s.Procs > maxProcs {
		return fmt.Errorf("progen %s: Procs %d out of [1,%d]", s.Name, s.Procs, maxProcs)
	}
	if s.BlocksMin < 2 || s.BlocksMax < s.BlocksMin || s.BlocksMax > maxBlocks {
		return fmt.Errorf("progen %s: invalid block range [%d,%d]", s.Name, s.BlocksMin, s.BlocksMax)
	}
	if s.MemFraction < 0 || s.MemFraction > 0.6 || s.MemFraction != s.MemFraction {
		return fmt.Errorf("progen %s: MemFraction %v out of [0,0.6]", s.Name, s.MemFraction)
	}
	if s.Globals == 0 && s.HeapObjects == 0 && s.BigHeapObjects == 0 && s.MemFraction > 0 {
		return fmt.Errorf("progen %s: memory traffic with no objects", s.Name)
	}
	fractions := [...]struct {
		name string
		v    float64
	}{
		{"FPFraction", s.FPFraction}, {"IntMulFraction", s.IntMulFraction},
		{"HardBiasFraction", s.HardBiasFraction}, {"CorrNoise", s.CorrNoise},
		{"CondDensity", s.CondDensity}, {"CallDensity", s.CallDensity},
		{"HotFraction", s.HotFraction},
	}
	for _, f := range fractions {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("progen %s: %s %v out of [0,1]", s.Name, f.name, f.v)
		}
	}
	weights := [...]struct {
		name string
		v    float64
	}{
		{"WBiased", s.WBiased}, {"WLoop", s.WLoop}, {"WPattern", s.WPattern},
		{"WCorrelated", s.WCorrelated}, {"WStream", s.WStream}, {"WRandom", s.WRandom},
		{"WChase", s.WChase}, {"WBlocked", s.WBlocked},
	}
	for _, w := range weights {
		if math.IsNaN(w.v) || math.IsInf(w.v, 0) || w.v < 0 {
			return fmt.Errorf("progen %s: weight %s %v must be finite and >= 0", s.Name, w.name, w.v)
		}
	}
	if math.IsNaN(s.BytesPerInstr) || s.BytesPerInstr < 0 || s.BytesPerInstr > maxInstrSize {
		return fmt.Errorf("progen %s: BytesPerInstr %v out of [0,%d]", s.Name, s.BytesPerInstr, maxInstrSize)
	}
	if math.IsNaN(s.PoolSkew) || s.PoolSkew < 0 || s.PoolSkew > 16 {
		return fmt.Errorf("progen %s: PoolSkew %v out of [0,16]", s.Name, s.PoolSkew)
	}
	counts := [...]struct {
		name string
		v    int
	}{
		{"IndirectSites", s.IndirectSites}, {"Globals", s.Globals},
		{"HeapObjects", s.HeapObjects}, {"BigHeapObjects", s.BigHeapObjects},
		{"HotPoolObjects", s.HotPoolObjects}, {"ChurnSites", s.ChurnSites},
	}
	for _, c := range counts {
		if c.v < 0 || c.v > maxCount {
			return fmt.Errorf("progen %s: %s %d out of [0,%d]", s.Name, c.name, c.v, maxCount)
		}
	}
	trips := [...]struct {
		name     string
		min, max int
	}{
		{"forward trip", s.FwdTripMin, s.FwdTripMax},
		{"backward trip", s.BackTripMin, s.BackTripMax},
	}
	for _, tr := range trips {
		if tr.min < 0 || tr.max < 0 || tr.max > maxTrip || (tr.max != 0 && tr.min > tr.max) {
			return fmt.Errorf("progen %s: invalid %s range [%d,%d]", s.Name, tr.name, tr.min, tr.max)
		}
	}
	sizes := [...]struct {
		name string
		v    uint64
	}{
		{"HotBytes", s.HotBytes}, {"GlobalBytes", s.GlobalBytes},
		{"HeapObjBytes", s.HeapObjBytes}, {"BigHeapBytes", s.BigHeapBytes},
	}
	for _, z := range sizes {
		if z.v > maxObjBytes {
			return fmt.Errorf("progen %s: %s %d exceeds %d", s.Name, z.name, z.v, uint64(maxObjBytes))
		}
	}
	// Objects must hold at least one access granule: cold arrays are
	// streamed a cache line at a time, pool objects chased in 8-byte
	// words. (Zero HotBytes means the 12KB default.)
	if s.Globals > 0 && s.GlobalBytes < 64 {
		return fmt.Errorf("progen %s: GlobalBytes %d below one cache line", s.Name, s.GlobalBytes)
	}
	if s.BigHeapObjects > 0 && s.BigHeapBytes < 64 {
		return fmt.Errorf("progen %s: BigHeapBytes %d below one cache line", s.Name, s.BigHeapBytes)
	}
	if s.HeapObjects > 0 && s.HeapObjBytes < 8 {
		return fmt.Errorf("progen %s: HeapObjBytes %d below one granule", s.Name, s.HeapObjBytes)
	}
	if s.HotFraction > 0 && !s.HotOnHeap && s.HotBytes != 0 && s.HotBytes < 64 {
		return fmt.Errorf("progen %s: HotBytes %d below one cache line", s.Name, s.HotBytes)
	}
	return nil
}

// generator carries the in-progress program.
type generator struct {
	spec    *Spec
	rng     *xrand.Rand
	prog    *isa.Program
	pool    []isa.ObjectID // heap objects
	bigPool []isa.ObjectID // large heap arrays (cold tier)
	globals []isa.ObjectID // cold globals
	hot     isa.ObjectID   // hot arena (global), valid if hotSet
	hotSet  bool
}

// trips returns the spec's forward and backward trip ranges with
// defaults applied.
func (g *generator) trips() (fmin, fmax, bmin, bmax int) {
	s := g.spec
	fmin, fmax = s.FwdTripMin, s.FwdTripMax
	if fmin == 0 {
		fmin = 2
	}
	if fmax < fmin {
		fmax = fmin + 59
	}
	bmin, bmax = s.BackTripMin, s.BackTripMax
	if bmin == 0 {
		bmin = 2
	}
	if bmax < bmin {
		bmax = bmin + 10
	}
	return
}

// Generate expands the spec into a program. The same spec always yields
// the same program.
func Generate(spec Spec) (*isa.Program, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		spec: &spec,
		rng:  xrand.New(xrand.Mix(spec.Seed, 0x70726f67)),
		prog: &isa.Program{
			Name: spec.Name,
			Seed: xrand.Mix(spec.Seed, 0x62656861),
			Main: 0,
		},
	}
	g.makeObjects()

	// Procedures are generated from the highest ID down so that calls
	// (always to higher IDs) keep the call graph acyclic.
	nProcs := spec.Procs + 1
	bodies := make([][]isa.Block, nProcs)
	names := make([]string, nProcs)
	for pid := nProcs - 1; pid >= 1; pid-- {
		bodies[pid] = g.makeProc(pid, nProcs)
		names[pid] = fmt.Sprintf("proc_%03d", pid)
	}
	bodies[0] = g.makeMain(nProcs)
	names[0] = "main"

	// Flatten bodies into the program, assigning global block IDs.
	for pid := 0; pid < nProcs; pid++ {
		start := isa.BlockID(len(g.prog.Blocks))
		ids := make([]isa.BlockID, len(bodies[pid]))
		for i := range bodies[pid] {
			b := bodies[pid][i]
			b.Proc = isa.ProcID(pid)
			// Rebase intra-procedure targets from local to global IDs.
			switch b.Term.Kind {
			case isa.TermCondBranch, isa.TermJump:
				b.Term.Target += start
			}
			ids[i] = start + isa.BlockID(i)
			g.prog.Blocks = append(g.prog.Blocks, b)
		}
		g.prog.Procs = append(g.prog.Procs, isa.Procedure{Name: names[pid], Blocks: ids})
	}
	if err := g.prog.Validate(); err != nil {
		return nil, fmt.Errorf("progen: generated invalid program: %w", err)
	}
	return g.prog, nil
}

// MustGenerate is Generate for known-good specs (the built-in suites).
func MustGenerate(spec Spec) *isa.Program {
	p, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return p
}

func (g *generator) makeObjects() {
	s := g.spec
	if s.HotFraction > 0 && !s.HotOnHeap {
		hb := s.HotBytes
		if hb == 0 {
			hb = 12 * 1024
		}
		g.hot = isa.ObjectID(len(g.prog.Objects))
		g.hotSet = true
		g.prog.Objects = append(g.prog.Objects, isa.ObjectMeta{Size: hb, Heap: false})
	}
	for i := 0; i < s.Globals; i++ {
		g.globals = append(g.globals, isa.ObjectID(len(g.prog.Objects)))
		g.prog.Objects = append(g.prog.Objects, isa.ObjectMeta{Size: s.GlobalBytes, Heap: false})
	}
	for i := 0; i < s.HeapObjects; i++ {
		g.pool = append(g.pool, isa.ObjectID(len(g.prog.Objects)))
		g.prog.Objects = append(g.prog.Objects, isa.ObjectMeta{Size: s.HeapObjBytes, Heap: true})
	}
	for i := 0; i < s.BigHeapObjects; i++ {
		g.bigPool = append(g.bigPool, isa.ObjectID(len(g.prog.Objects)))
		g.prog.Objects = append(g.prog.Objects, isa.ObjectMeta{Size: s.BigHeapBytes, Heap: true})
	}
}

// coldArrays returns the objects cold stream/random/blocked patterns
// draw from: the big heap arrays when present, else the globals.
func (g *generator) coldArrays() []isa.ObjectID {
	if len(g.bigPool) > 0 {
		return g.bigPool
	}
	return g.globals
}

// hotOp builds an L1-resident access: a small strided or random window of
// the hot arena (or of pool objects under HotOnHeap, where placement —
// and therefore conflict behaviour — belongs to the allocator).
func (g *generator) hotOp(rng *xrand.Rand, kind isa.MemKind) isa.MemOp {
	s := g.spec
	if s.HotOnHeap && len(g.pool) > 0 {
		hotPool := g.pool
		if s.HotPoolObjects > 0 && s.HotPoolObjects < len(hotPool) {
			hotPool = hotPool[:s.HotPoolObjects]
		}
		k := 2
		if len(hotPool) > 2 && rng.Bool(0.5) {
			k = 3
		}
		objs := make([]isa.ObjectID, k)
		for i := range objs {
			objs[i] = hotPool[rng.Intn(len(hotPool))]
		}
		span := g.spec.HeapObjBytes
		if span > 1024 {
			span = 1024
		}
		return isa.MemOp{Kind: kind, Pattern: isa.Blocked{Objects: objs, Stride: 8, Span: span}}
	}
	hb := g.prog.Objects[g.hot].Size
	window := uint64(512)
	if rng.Bool(0.4) {
		window = 1024
	}
	if window > hb {
		window = hb
	}
	start := uint64(0)
	if hb > window {
		start = rng.Uint64n((hb-window)/64+1) * 64
	}
	if rng.Bool(0.3) {
		return isa.MemOp{Kind: kind, Pattern: isa.RandomInObject{
			Object: g.hot, Size: window, Granule: 8, Start: start,
		}}
	}
	return isa.MemOp{Kind: kind, Pattern: isa.Stream{
		Object: g.hot, Stride: 8, Size: window, Start: start,
	}}
}

// body fills class counts and memory ops for one block and returns it.
func (g *generator) body(pid, bi int) isa.Block {
	s := g.spec
	// The body and each memory site draw from their own derived streams,
	// so that changing one spec knob (say, HotFraction) does not re-roll
	// the branch structure of the whole program.
	rng := xrand.New(xrand.Mix(g.prog.Seed, 0x626f6479, uint64(pid), uint64(bi)))
	n := 2 + rng.Intn(10)
	var b isa.Block
	for i := 0; i < n; i++ {
		switch {
		case rng.Bool(s.FPFraction):
			if rng.Bool(0.45) {
				b.ClassCounts[isa.ClassFPMul]++
			} else {
				b.ClassCounts[isa.ClassFPAdd]++
			}
		case rng.Bool(s.IntMulFraction):
			b.ClassCounts[isa.ClassIntMul]++
		default:
			b.ClassCounts[isa.ClassIntALU]++
		}
	}
	// Memory operations: MemFraction of total retired instructions.
	if s.MemFraction > 0 {
		want := s.MemFraction / (1 - s.MemFraction) * float64(n)
		k := int(want)
		if rng.Float64() < want-float64(k) {
			k++
		}
		if k > 6 {
			k = 6
		}
		for i := 0; i < k; i++ {
			mrng := xrand.New(xrand.Mix(g.prog.Seed, 0x6d656d73, uint64(pid), uint64(bi), uint64(i)))
			b.Mems = append(b.Mems, g.memOp(mrng))
		}
	}
	total := n + len(b.Mems) + 1
	b.Bytes = uint32(float64(total)*s.BytesPerInstr + 1)
	return b
}

func (g *generator) memOp(rng *xrand.Rand) isa.MemOp {
	s := g.spec
	kind := isa.MemLoad
	if rng.Bool(0.3) {
		kind = isa.MemStore
	}

	// Locality tier dispatch.
	if rng.Float64() < s.HotFraction && (g.hotSet || (s.HotOnHeap && len(g.pool) > 0)) {
		return g.hotOp(rng, kind)
	}

	w := s.memWeights()
	r := rng.Float64()
	arrays := g.coldArrays()
	switch {
	case r < w[0] && len(arrays) > 0: // stream
		obj := arrays[rng.Intn(len(arrays))]
		stride := uint64(8)
		if rng.Bool(0.3) {
			stride = 16
		}
		// Each streaming site sweeps its own window, starting at a random
		// phase; without this, sites advancing in lockstep share cache
		// lines and the stream never misses.
		size := g.prog.Objects[obj].Size
		var start uint64
		if chunks := size / 64; chunks > 0 {
			start = rng.Uint64n(chunks) * 64
		}
		return isa.MemOp{Kind: kind, Pattern: isa.Stream{
			Object: obj, Stride: stride, Size: size - start, Start: start,
		}}
	case r < w[0]+w[1] && len(arrays) > 0: // random in object
		obj := arrays[rng.Intn(len(arrays))]
		return isa.MemOp{Kind: kind, Pattern: isa.RandomInObject{
			Object: obj, Size: g.prog.Objects[obj].Size, Granule: 8,
		}}
	case r < w[0]+w[1]+w[2] && len(g.pool) > 0: // pool chase
		// A contiguous slice of the pool, at least 4 objects when the
		// pool is that large.
		n := len(g.pool)
		sub := n
		if n > 4 {
			sub = 4 + rng.Intn(n-3)
		}
		start := 0
		if n > sub {
			start = rng.Intn(n - sub + 1)
		}
		return isa.MemOp{Kind: kind, Pattern: isa.PoolChase{
			Pool:    g.pool[start : start+sub],
			ObjSize: g.spec.HeapObjBytes,
			Skew:    s.PoolSkew,
			Granule: 8,
		}}
	case len(arrays) >= 2: // blocked over a few cold arrays
		k := 2 + rng.Intn(min(3, len(arrays)-1))
		objs := make([]isa.ObjectID, k)
		perm := rng.Perm(len(arrays))
		for i := 0; i < k; i++ {
			objs[i] = arrays[perm[i]]
		}
		span := g.prog.Objects[objs[0]].Size
		if span > 4096 {
			span = 4096
		}
		return isa.MemOp{Kind: kind, Pattern: isa.Blocked{
			Objects: objs, Stride: 8, Span: span,
		}}
	case len(arrays) > 0:
		obj := arrays[0]
		return isa.MemOp{Kind: kind, Pattern: isa.Stream{
			Object: obj, Stride: 8, Size: g.prog.Objects[obj].Size,
		}}
	default:
		// Heap-only benchmark: fall back to pool chase over everything.
		return isa.MemOp{Kind: kind, Pattern: isa.PoolChase{
			Pool:    g.pool,
			ObjSize: g.spec.HeapObjBytes,
			Skew:    s.PoolSkew,
			Granule: 8,
		}}
	}
}

// condBehavior draws a branch behaviour from the spec mixture. backward
// branches must terminate, so they are always bounded loop/pattern forms.
func (g *generator) condBehavior(pid, bi int, backward bool) isa.BranchBehavior {
	s := g.spec
	rng := xrand.New(xrand.Mix(g.prog.Seed, 0x636f6e64, uint64(pid), uint64(bi)))
	_, _, bmin, bmax := g.trips()
	if backward {
		if rng.Bool(0.7) || bmin > 16 {
			// Backward trips stay modest by default so nested loops
			// cannot make one procedure call dominate the whole trace.
			return isa.Loop{Trip: uint64(bmin + rng.Intn(bmax-bmin+1))}
		}
		// A pattern with a guaranteed not-taken bit bounds the loop.
		length := uint8(3 + rng.Intn(6))
		bits := rng.Uint64() &^ (1 << (length - 1))
		return isa.Pattern{Bits: bits, Len: length}
	}
	w := s.branchWeights()
	r := rng.Float64()
	switch {
	case r < w[0]: // biased
		var p float64
		if rng.Bool(s.HardBiasFraction) {
			p = 0.35 + 0.3*rng.Float64() // hard: near coin flip
		} else {
			p = 0.02 + 0.13*rng.Float64() // easy: strongly biased
			if rng.Bool(0.5) {
				p = 1 - p
			}
		}
		return isa.Biased{P: p}
	case r < w[0]+w[1]:
		fmin, fmax, _, _ := g.trips()
		return isa.Loop{Trip: uint64(fmin + rng.Intn(fmax-fmin+1))}
	case r < w[0]+w[1]+w[2]:
		length := uint8(2 + rng.Intn(7))
		return isa.Pattern{Bits: rng.Uint64(), Len: length}
	default:
		// Correlated on a few recent history bits.
		mask := uint64(0)
		for mask == 0 {
			mask = rng.Uint64() & ((1 << (2 + rng.Intn(10))) - 1)
		}
		return isa.Correlated{Mask: mask, Noise: s.CorrNoise, Flip: rng.Bool(0.5)}
	}
}

// makeProc builds the blocks of one non-main procedure with local block
// IDs (rebased by Generate).
func (g *generator) makeProc(pid, nProcs int) []isa.Block {
	s := g.spec
	rng := g.rng
	n := s.BlocksMin + rng.Intn(s.BlocksMax-s.BlocksMin+1)
	blocks := make([]isa.Block, n)
	backwardBudget := 2
	for bi := 0; bi < n; bi++ {
		blocks[bi] = g.body(pid, bi)
		last := bi == n-1
		if last {
			blocks[bi].Term = isa.Terminator{Kind: isa.TermReturn}
			continue
		}
		switch {
		case rng.Bool(s.CondDensity):
			backward := backwardBudget > 0 && bi > 0 && rng.Bool(0.35)
			var target isa.BlockID
			if backward {
				backwardBudget--
				target = isa.BlockID(rng.Intn(bi))
			} else {
				target = isa.BlockID(bi + 1 + rng.Intn(n-bi-1))
			}
			blocks[bi].Term = isa.Terminator{
				Kind:     isa.TermCondBranch,
				Target:   target,
				Behavior: g.condBehavior(pid, bi, backward),
			}
		case pid+1 < nProcs && rng.Bool(s.CallDensity):
			callee := pid + 1 + rng.Intn(nProcs-pid-1)
			blocks[bi].Term = isa.Terminator{Kind: isa.TermCall, Callee: isa.ProcID(callee)}
		case rng.Bool(0.08) && bi+2 < n:
			blocks[bi].Term = isa.Terminator{
				Kind:   isa.TermJump,
				Target: isa.BlockID(bi + 2 + rng.Intn(n-bi-2)),
			}
		default:
			blocks[bi].Term = isa.Terminator{Kind: isa.TermFallthrough}
		}
	}
	return blocks
}

// makeMain builds the driver procedure: a prologue allocating every heap
// object, a phase sequence of calls (some indirect, some with churn
// sites), and an effectively infinite outer loop.
func (g *generator) makeMain(nProcs int) []isa.Block {
	s := g.spec
	rng := g.rng
	var blocks []isa.Block

	prologue := g.body(0, 0)
	prologue.Mems = nil // keep the prologue cheap and allocation-only
	for _, obj := range append(append([]isa.ObjectID(nil), g.pool...), g.bigPool...) {
		prologue.Allocs = append(prologue.Allocs, isa.AllocOp{
			Kind: isa.AllocNew, Pool: []isa.ObjectID{obj},
		})
	}
	prologue.Term = isa.Terminator{Kind: isa.TermFallthrough}
	blocks = append(blocks, prologue)

	// Phase blocks: call each top-level procedure at least once, in a
	// shuffled order, plus indirect sites and churn sites.
	calls := rng.Perm(nProcs - 1)
	indirectLeft := s.IndirectSites
	churnLeft := s.ChurnSites
	for bi, c := range calls {
		b := g.body(0, bi+1)
		if indirectLeft > 0 && rng.Bool(0.5) {
			indirectLeft--
			k := 2 + rng.Intn(3)
			callees := make([]isa.ProcID, 0, k)
			for i := 0; i < k; i++ {
				callees = append(callees, isa.ProcID(1+rng.Intn(nProcs-1)))
			}
			b.Term = isa.Terminator{
				Kind:     isa.TermIndirectCall,
				Callees:  callees,
				Behavior: isa.Biased{P: 0.55 + 0.4*rng.Float64()},
			}
		} else {
			b.Term = isa.Terminator{Kind: isa.TermCall, Callee: isa.ProcID(c + 1)}
		}
		if churnLeft > 0 && len(g.pool) > 0 && rng.Bool(0.5) {
			churnLeft--
			n := len(g.pool)
			sub := 1 + rng.Intn(min(8, n))
			start := rng.Intn(n - sub + 1)
			b.Allocs = append(b.Allocs, isa.AllocOp{
				Kind: isa.AllocNew,
				Pool: g.pool[start : start+sub],
			})
		}
		blocks = append(blocks, b)
	}

	// Outer loop back to the first phase block, then return.
	loop := g.body(0, nProcs+1)
	loop.Term = isa.Terminator{
		Kind:     isa.TermCondBranch,
		Target:   1,
		Behavior: isa.Loop{Trip: 1 << 40},
	}
	blocks = append(blocks, loop)
	ret := g.body(0, nProcs+2)
	ret.Mems = nil
	ret.Term = isa.Terminator{Kind: isa.TermReturn}
	blocks = append(blocks, ret)
	return blocks
}
