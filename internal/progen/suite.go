package progen

// The benchmark suites. Suite returns the 23 SPEC CPU 2006 analogs — the
// benchmarks that "compile and run without errors with our compiler
// infrastructure" (§5.2): the 20 rows of Table 1 plus three
// branch-insensitive FP codes that fail the significance test (§4.6 says
// 20 of 23 reject the null hypothesis). SimSuite returns the
// MASE-compiled set of the linearity study (§3.2), which draws from both
// SPEC 2000 and 2006 and includes the Figure 5 benchmarks.
//
// Every spec is a qualitative analog: the name promises the *shape* of
// the original's behaviour (branchy integer code, pointer chasing,
// streaming FP, large code footprint), not its instruction stream. The
// hot/warm/cold tier fractions are calibrated so the machine model's CPI
// per benchmark lands near the paper's Table 1 y-intercepts;
// EXPERIMENTS.md records the measured-vs-paper comparison.

// Suite returns the 23-benchmark SPEC CPU 2006 analog suite.
func Suite() []Spec {
	return []Spec{
		{
			// Interpreter loop: moderate code, many hard branches.
			Name: "400.perlbench", Seed: 2400,
			Procs: 90, BlocksMin: 3, BlocksMax: 9,
			IntMulFraction: 0.04, BytesPerInstr: 4.2,
			WBiased: 0.55, WLoop: 0.2, WPattern: 0.1, WCorrelated: 0.15,
			HardBiasFraction: 0.06, CorrNoise: 0.04,
			CondDensity: 0.55, CallDensity: 0.3, IndirectSites: 6,
			MemFraction: 0.22,
			HotFraction: 0.985,
			Globals:     2, GlobalBytes: 32 * 1024,
			HeapObjects: 120, HeapObjBytes: 512,
			WStream: 0.2, WRandom: 0.2, WChase: 0.5, WBlocked: 0.1,
			PoolSkew: 0.9, ChurnSites: 4,
		},
		{
			// Compression: tight loops, data-dependent branches.
			Name: "401.bzip2", Seed: 2401,
			Procs: 35, BlocksMin: 3, BlocksMax: 8,
			IntMulFraction: 0.03, BytesPerInstr: 3.8,
			WBiased: 0.5, WLoop: 0.35, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.13, CorrNoise: 0.06,
			CondDensity: 0.6, CallDensity: 0.25,
			MemFraction: 0.24,
			HotFraction: 0.91,
			Globals:     4, GlobalBytes: 64 * 1024,
			WStream: 0.55, WRandom: 0.35, WChase: 0, WBlocked: 0.1,
		},
		{
			// Compiler: very large code footprint, branchy, big data.
			Name: "403.gcc", Seed: 2403,
			Procs: 320, BlocksMin: 4, BlocksMax: 11,
			IntMulFraction: 0.03, BytesPerInstr: 4.6,
			WBiased: 0.55, WLoop: 0.2, WPattern: 0.1, WCorrelated: 0.15,
			HardBiasFraction: 0.09, CorrNoise: 0.05,
			CondDensity: 0.55, CallDensity: 0.35, IndirectSites: 8,
			MemFraction: 0.26,
			HotFraction: 0.972,
			Globals:     4, GlobalBytes: 32 * 1024,
			HeapObjects: 1200, HeapObjBytes: 1024,
			WStream: 0.1, WRandom: 0.1, WChase: 0.7, WBlocked: 0.1,
			PoolSkew: 0.5, ChurnSites: 8,
		},
		{
			// Quantum chemistry (FORTRAN FP), small working set.
			Name: "416.gamess", Seed: 2416,
			Procs: 80, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.45, BytesPerInstr: 4.0,
			WBiased: 0.35, WLoop: 0.5, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.05, CorrNoise: 0.03,
			CondDensity: 0.45, CallDensity: 0.3,
			MemFraction: 0.2,
			HotFraction: 0.975,
			Globals:     2, GlobalBytes: 16 * 1024,
			WStream: 0.5, WRandom: 0.2, WChase: 0, WBlocked: 0.3,
		},
		{
			// Pointer chasing over a working set far beyond the L2.
			Name: "429.mcf", Seed: 2441,
			Procs: 12, BlocksMin: 3, BlocksMax: 6,
			IntMulFraction: 0.02, BytesPerInstr: 3.6,
			WBiased: 0.45, WLoop: 0.45, WPattern: 0.05, WCorrelated: 0.05,
			HardBiasFraction: 0.05, CorrNoise: 0.02,
			CondDensity: 0.6, CallDensity: 0.25,
			MemFraction: 0.3,
			HotFraction: 0.892,
			Globals:     1, GlobalBytes: 16 * 1024,
			HeapObjects: 1400, HeapObjBytes: 4096,
			WStream: 0.02, WRandom: 0.03, WChase: 0.9, WBlocked: 0.05,
			PoolSkew: 0.25, ChurnSites: 2,
		},
		{
			// CFD (FORTRAN FP): loop-dominated, streams over large grids.
			Name: "434.zeusmp", Seed: 2434,
			Procs: 40, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.5, BytesPerInstr: 4.1,
			WBiased: 0.15, WLoop: 0.75, WPattern: 0.05, WCorrelated: 0.05,
			HardBiasFraction: 0.015, CorrNoise: 0.02,
			CondDensity: 0.4, CallDensity: 0.25,
			MemFraction: 0.24,
			HotFraction: 0.92,
			Globals:     6, GlobalBytes: 192 * 1024,
			WStream: 0.7, WRandom: 0.05, WChase: 0, WBlocked: 0.25,
		},
		{
			// Molecular dynamics: small kernels, predictable.
			Name: "435.gromacs", Seed: 2435,
			Procs: 45, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.42, BytesPerInstr: 3.9,
			WBiased: 0.3, WLoop: 0.55, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.04, CorrNoise: 0.03,
			CondDensity: 0.45, CallDensity: 0.25,
			MemFraction: 0.22,
			HotFraction: 0.93,
			Globals:     3, GlobalBytes: 64 * 1024,
			WStream: 0.5, WRandom: 0.15, WChase: 0, WBlocked: 0.35,
		},
		{
			// Molecular dynamics (C++), compute-bound.
			Name: "444.namd", Seed: 9444,
			Procs: 30, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.48, BytesPerInstr: 3.8,
			WBiased: 0.3, WLoop: 0.55, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.035, CorrNoise: 0.03,
			CondDensity: 0.4, CallDensity: 0.25,
			MemFraction: 0.2,
			HotFraction: 0.965,
			Globals:     2, GlobalBytes: 32 * 1024,
			WStream: 0.6, WRandom: 0.2, WChase: 0, WBlocked: 0.2,
		},
		{
			// Go playing: extremely branchy, hard branches.
			Name: "445.gobmk", Seed: 2445,
			Procs: 140, BlocksMin: 3, BlocksMax: 9,
			IntMulFraction: 0.02, BytesPerInstr: 4.3,
			WBiased: 0.6, WLoop: 0.15, WPattern: 0.1, WCorrelated: 0.15,
			HardBiasFraction: 0.14, CorrNoise: 0.06,
			CondDensity: 0.65, CallDensity: 0.3, IndirectSites: 3,
			MemFraction: 0.2,
			HotFraction: 0.975,
			Globals:     2, GlobalBytes: 24 * 1024,
			WStream: 0.3, WRandom: 0.4, WChase: 0, WBlocked: 0.3,
		},
		{
			// LP solver: mixed FP/int, large matrices.
			Name: "450.soplex", Seed: 8450,
			Procs: 60, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.35, BytesPerInstr: 4.0,
			WBiased: 0.4, WLoop: 0.4, WPattern: 0.05, WCorrelated: 0.15,
			HardBiasFraction: 0.05, CorrNoise: 0.04,
			CondDensity: 0.5, CallDensity: 0.25,
			MemFraction: 0.28,
			HotFraction: 0.92,
			Globals:     3, GlobalBytes: 512 * 1024,
			WStream: 0.55, WRandom: 0.35, WChase: 0, WBlocked: 0.1,
		},
		{
			// Structural mechanics (FORTRAN FP): dense loop nests whose
			// arrays conflict in the caches — the Figure 3 benchmark. Hot
			// data lives on the heap so the randomizing allocator decides
			// L1D conflicts; the cold globals overflow the L2 slightly so
			// link order perturbs L2 conflicts.
			Name: "454.calculix", Seed: 2454,
			Procs: 50, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.4, BytesPerInstr: 4.0,
			WBiased: 0.2, WLoop: 0.65, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.02, CorrNoise: 0.02,
			CondDensity: 0.45, CallDensity: 0.25,
			MemFraction: 0.26,
			HotFraction: 0.965, HotOnHeap: true, HotPoolObjects: 15,
			Globals: 1, GlobalBytes: 16 * 1024,
			BigHeapObjects: 5, BigHeapBytes: 24 * 1024,
			HeapObjects: 300, HeapObjBytes: 2048,
			WStream: 0.45, WRandom: 0.25, WChase: 0.05, WBlocked: 0.25,
			PoolSkew: 0.3, ChurnSites: 6,
		},
		{
			// Sequence search: inner loop with data-dependent branches.
			Name: "456.hmmer", Seed: 2456,
			Procs: 25, BlocksMin: 3, BlocksMax: 7,
			IntMulFraction: 0.05, BytesPerInstr: 3.7,
			WBiased: 0.6, WLoop: 0.3, WPattern: 0.05, WCorrelated: 0.05,
			HardBiasFraction: 0.16, CorrNoise: 0.04,
			CondDensity: 0.6, CallDensity: 0.2,
			MemFraction: 0.22,
			HotFraction: 0.985,
			Globals:     1, GlobalBytes: 24 * 1024,
			WStream: 0.7, WRandom: 0.2, WChase: 0, WBlocked: 0.1,
		},
		{
			// FDTD solver (FORTRAN FP): streaming, few branches.
			Name: "459.GemsFDTD", Seed: 2459,
			Procs: 35, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.52, BytesPerInstr: 4.1,
			WBiased: 0.12, WLoop: 0.8, WPattern: 0.03, WCorrelated: 0.05,
			HardBiasFraction: 0.012, CorrNoise: 0.02,
			CondDensity: 0.4, CallDensity: 0.25,
			MemFraction: 0.28,
			HotFraction: 0.87,
			Globals:     6, GlobalBytes: 512 * 1024,
			WStream: 0.85, WRandom: 0.03, WChase: 0, WBlocked: 0.12,
		},
		{
			// Quantum simulation: pure streaming over huge arrays.
			Name: "462.libquantum", Seed: 6462,
			Procs: 12, BlocksMin: 3, BlocksMax: 6,
			IntMulFraction: 0.03, BytesPerInstr: 3.6,
			WBiased: 0.45, WLoop: 0.45, WPattern: 0.05, WCorrelated: 0.05,
			HardBiasFraction: 0.05, CorrNoise: 0.02,
			CondDensity: 0.6, CallDensity: 0.2,
			MemFraction: 0.25,
			HotFraction: 0.72,
			Globals:     2, GlobalBytes: 2 * 1024 * 1024,
			WStream: 0.95, WRandom: 0.03, WChase: 0, WBlocked: 0.02,
		},
		{
			// Video encoder: regular kernels + decision branches.
			Name: "464.h264ref", Seed: 2464,
			Procs: 70, BlocksMin: 3, BlocksMax: 9,
			IntMulFraction: 0.08, BytesPerInstr: 4.0,
			WBiased: 0.5, WLoop: 0.35, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.07, CorrNoise: 0.04,
			CondDensity: 0.5, CallDensity: 0.3, IndirectSites: 2,
			MemFraction: 0.24,
			HotFraction: 0.98,
			Globals:     2, GlobalBytes: 48 * 1024,
			WStream: 0.6, WRandom: 0.25, WChase: 0, WBlocked: 0.15,
		},
		{
			// Quantum crystallography (FORTRAN): mixed.
			Name: "465.tonto", Seed: 2465,
			Procs: 110, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.4, BytesPerInstr: 4.2,
			WBiased: 0.35, WLoop: 0.5, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.045, CorrNoise: 0.03,
			CondDensity: 0.45, CallDensity: 0.3,
			MemFraction: 0.22,
			HotFraction: 0.955,
			Globals:     3, GlobalBytes: 48 * 1024,
			WStream: 0.5, WRandom: 0.2, WChase: 0, WBlocked: 0.3,
		},
		{
			// Discrete-event simulation (C++): pointer-heavy, virtual
			// dispatch, poor locality — the second Figure 2 benchmark.
			Name: "471.omnetpp", Seed: 2471,
			Procs: 100, BlocksMin: 3, BlocksMax: 8,
			IntMulFraction: 0.02, BytesPerInstr: 4.4,
			WBiased: 0.5, WLoop: 0.2, WPattern: 0.1, WCorrelated: 0.2,
			HardBiasFraction: 0.10, CorrNoise: 0.05,
			CondDensity: 0.55, CallDensity: 0.35, IndirectSites: 10,
			MemFraction: 0.26,
			HotFraction: 0.955,
			Globals:     1, GlobalBytes: 16 * 1024,
			HeapObjects: 1100, HeapObjBytes: 2048,
			WStream: 0.05, WRandom: 0.05, WChase: 0.85, WBlocked: 0.05,
			PoolSkew: 0.4, ChurnSites: 10,
		},
		{
			// Path finding: data-dependent branches over a big graph.
			Name: "473.astar", Seed: 10473,
			Procs: 60, BlocksMin: 3, BlocksMax: 7,
			IntMulFraction: 0.02, BytesPerInstr: 3.7,
			WBiased: 0.45, WLoop: 0.4, WPattern: 0.05, WCorrelated: 0.15,
			HardBiasFraction: 0.07, CorrNoise: 0.06,
			CondDensity: 0.6, CallDensity: 0.25,
			MemFraction: 0.28,
			HotFraction: 0.925,
			Globals:     1, GlobalBytes: 32 * 1024,
			HeapObjects: 1100, HeapObjBytes: 2048,
			WStream: 0.02, WRandom: 0.08, WChase: 0.85, WBlocked: 0.05,
			PoolSkew: 0.3, ChurnSites: 2,
		},
		{
			// Speech recognition: FP scoring + search branches.
			Name: "482.sphinx3", Seed: 2482,
			Procs: 55, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.35, BytesPerInstr: 3.9,
			WBiased: 0.45, WLoop: 0.4, WPattern: 0.05, WCorrelated: 0.1,
			HardBiasFraction: 0.06, CorrNoise: 0.04,
			CondDensity: 0.5, CallDensity: 0.25,
			MemFraction: 0.24,
			HotFraction: 0.94,
			Globals:     3, GlobalBytes: 128 * 1024,
			WStream: 0.6, WRandom: 0.25, WChase: 0, WBlocked: 0.15,
		},
		{
			// XSLT processor: large code, virtual calls, pointer data.
			Name: "483.xalancbmk", Seed: 2483,
			Procs: 140, BlocksMin: 3, BlocksMax: 9,
			IntMulFraction: 0.02, BytesPerInstr: 4.5,
			WBiased: 0.35, WLoop: 0.35, WPattern: 0.1, WCorrelated: 0.2,
			HardBiasFraction: 0.04, CorrNoise: 0.05,
			CondDensity: 0.55, CallDensity: 0.35, IndirectSites: 12,
			MemFraction: 0.25,
			HotFraction: 0.93,
			Globals:     2, GlobalBytes: 24 * 1024,
			HeapObjects: 900, HeapObjBytes: 1024,
			WStream: 0.05, WRandom: 0.1, WChase: 0.8, WBlocked: 0.05,
			PoolSkew: 0.45, ChurnSites: 8,
		},
		// --- The three branch-insensitive codes that fail the
		// significance screen (§4.6: 20 of 23 reject the null) ---
		{
			Name: "410.bwaves", Seed: 2410,
			Procs: 20, BlocksMin: 3, BlocksMax: 7,
			FPFraction: 0.55, BytesPerInstr: 4.0,
			WBiased: 0.02, WLoop: 0.96, WPattern: 0.01, WCorrelated: 0.01,
			HardBiasFraction: 0, CorrNoise: 0.01,
			FwdTripMin: 300, FwdTripMax: 3000, BackTripMin: 80, BackTripMax: 400,
			CondDensity: 0.35, CallDensity: 0.2,
			MemFraction: 0.26,
			HotFraction: 0.91,
			Globals:     4, GlobalBytes: 256 * 1024,
			WStream: 0.85, WRandom: 0.03, WChase: 0, WBlocked: 0.12,
		},
		{
			Name: "433.milc", Seed: 2433,
			Procs: 25, BlocksMin: 3, BlocksMax: 7,
			FPFraction: 0.55, BytesPerInstr: 3.9,
			WBiased: 0.02, WLoop: 0.96, WPattern: 0.01, WCorrelated: 0.01,
			HardBiasFraction: 0, CorrNoise: 0.01,
			FwdTripMin: 300, FwdTripMax: 3000, BackTripMin: 80, BackTripMax: 400,
			CondDensity: 0.35, CallDensity: 0.2,
			MemFraction: 0.28,
			HotFraction: 0.965,
			Globals:     4, GlobalBytes: 320 * 1024,
			WStream: 0.9, WRandom: 0.02, WChase: 0, WBlocked: 0.08,
		},
		{
			Name: "470.lbm", Seed: 2470,
			Procs: 10, BlocksMin: 3, BlocksMax: 6,
			FPFraction: 0.6, BytesPerInstr: 3.8,
			WBiased: 0.02, WLoop: 0.97, WPattern: 0.005, WCorrelated: 0.005,
			HardBiasFraction: 0, CorrNoise: 0.01,
			FwdTripMin: 300, FwdTripMax: 3000, BackTripMin: 80, BackTripMax: 400,
			CondDensity: 0.3, CallDensity: 0.2,
			MemFraction: 0.3,
			HotFraction: 0.89,
			Globals:     3, GlobalBytes: 512 * 1024,
			WStream: 0.93, WRandom: 0.02, WChase: 0, WBlocked: 0.05,
		},
	}
}

// SimSuite returns the benchmark set of the simulation-based linearity
// study (§3.2), which compiled SPEC 2000 and 2006 benchmarks under MASE.
// It includes the six benchmarks of Figure 5: 473.astar, 401.bzip2 and
// 458.sjeng (highly linear) and 456.hmmer, 252.eon and 178.galgel (the
// worst cases). The eon and galgel analogs are given heterogeneous branch
// populations — branches in memory-heavy blocks whose flush cost
// partially hides under misses — so their MPKI-CPI relation bends, as the
// paper observed.
func SimSuite() []Spec {
	suite := Suite()
	byName := map[string]Spec{}
	for _, s := range suite {
		byName[s.Name] = s
	}
	picks := []string{
		"400.perlbench", "401.bzip2", "403.gcc", "429.mcf", "445.gobmk",
		"456.hmmer", "462.libquantum", "464.h264ref", "471.omnetpp", "473.astar",
	}
	out := make([]Spec, 0, len(picks)+3)
	for _, n := range picks {
		out = append(out, byName[n])
	}
	out = append(out,
		Spec{
			// Chess: deep search, extremely branchy but well-predicted
			// patterns — a highly linear Figure 5(a) benchmark.
			Name: "458.sjeng", Seed: 2458,
			Procs: 60, BlocksMin: 3, BlocksMax: 8,
			IntMulFraction: 0.02, BytesPerInstr: 3.9,
			WBiased: 0.55, WLoop: 0.2, WPattern: 0.1, WCorrelated: 0.15,
			HardBiasFraction: 0.12, CorrNoise: 0.05,
			CondDensity: 0.65, CallDensity: 0.3,
			MemFraction: 0.18,
			HotFraction: 0.97,
			Globals:     2, GlobalBytes: 32 * 1024,
			WStream: 0.3, WRandom: 0.5, WChase: 0, WBlocked: 0.2,
		},
		Spec{
			// Ray tracer (SPEC 2000, C++): branches concentrated in
			// memory-heavy shading blocks -> heterogeneous flush costs.
			Name: "252.eon", Seed: 2252,
			Procs: 45, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.3, BytesPerInstr: 4.1,
			WBiased: 0.5, WLoop: 0.25, WPattern: 0.05, WCorrelated: 0.2,
			HardBiasFraction: 0.10, CorrNoise: 0.05,
			CondDensity: 0.55, CallDensity: 0.3, IndirectSites: 4,
			MemFraction: 0.34,
			HotFraction: 0.94,
			Globals:     2, GlobalBytes: 64 * 1024,
			HeapObjects: 400, HeapObjBytes: 1024,
			WStream: 0.3, WRandom: 0.3, WChase: 0.3, WBlocked: 0.1,
			PoolSkew: 0.4, ChurnSites: 2,
		},
		Spec{
			// Galerkin FEM (SPEC 2000 FORTRAN): FP loop nests with the
			// same heterogeneity; the other Figure 5(b) outlier.
			Name: "178.galgel", Seed: 2178,
			Procs: 35, BlocksMin: 3, BlocksMax: 8,
			FPFraction: 0.5, BytesPerInstr: 4.0,
			WBiased: 0.35, WLoop: 0.45, WPattern: 0.05, WCorrelated: 0.15,
			HardBiasFraction: 0.06, CorrNoise: 0.05,
			CondDensity: 0.5, CallDensity: 0.25,
			MemFraction: 0.36,
			HotFraction: 0.93,
			Globals:     3, GlobalBytes: 192 * 1024,
			WStream: 0.5, WRandom: 0.2, WChase: 0, WBlocked: 0.3,
		},
	)
	return out
}

// ByName finds a spec in the union of both suites.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range SimSuite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Table1Names lists the 20 benchmarks of the paper's Table 1 (the
// significant ones), in the paper's order.
var Table1Names = []string{
	"400.perlbench", "401.bzip2", "403.gcc", "416.gamess", "429.mcf",
	"434.zeusmp", "435.gromacs", "444.namd", "445.gobmk", "450.soplex",
	"454.calculix", "456.hmmer", "459.GemsFDTD", "462.libquantum",
	"464.h264ref", "465.tonto", "471.omnetpp", "473.astar", "482.sphinx3",
	"483.xalancbmk",
}
