package progen_test

import (
	"reflect"
	"testing"

	"interferometry/internal/interp"
	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

func TestSuiteHas23Benchmarks(t *testing.T) {
	suite := progen.Suite()
	if len(suite) != 23 {
		t.Fatalf("suite has %d benchmarks, the paper compiled 23", len(suite))
	}
	names := map[string]bool{}
	for _, s := range suite {
		if names[s.Name] {
			t.Errorf("duplicate benchmark %q", s.Name)
		}
		names[s.Name] = true
	}
	for _, n := range progen.Table1Names {
		if !names[n] {
			t.Errorf("Table 1 benchmark %q missing from suite", n)
		}
	}
	if len(progen.Table1Names) != 20 {
		t.Errorf("Table 1 should list 20 benchmarks, got %d", len(progen.Table1Names))
	}
}

func TestSimSuiteHasFigure5Benchmarks(t *testing.T) {
	names := map[string]bool{}
	for _, s := range progen.SimSuite() {
		names[s.Name] = true
	}
	for _, n := range []string{"473.astar", "401.bzip2", "458.sjeng", "456.hmmer", "252.eon", "178.galgel"} {
		if !names[n] {
			t.Errorf("Figure 5 benchmark %q missing from SimSuite", n)
		}
	}
}

func TestGenerateAllSuiteSpecs(t *testing.T) {
	for _, s := range append(progen.Suite(), progen.SimSuite()...) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			p, err := progen.Generate(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
			if p.StaticBranchCount() < 5 {
				t.Errorf("only %d static branches", p.StaticBranchCount())
			}
			if p.CodeBytes() < 1500 {
				t.Errorf("implausibly small code: %d bytes", p.CodeBytes())
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := progen.ByName("429.mcf")
	a := progen.MustGenerate(spec)
	b := progen.MustGenerate(spec)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different programs")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	spec, _ := progen.ByName("401.bzip2")
	a := progen.MustGenerate(spec)
	spec.Seed++
	b := progen.MustGenerate(spec)
	if reflect.DeepEqual(a.Blocks, b.Blocks) {
		t.Fatal("different seeds generated identical programs")
	}
}

func TestGeneratedProgramsExecute(t *testing.T) {
	for _, name := range []string{"400.perlbench", "429.mcf", "462.libquantum", "470.lbm"} {
		spec, ok := progen.ByName(name)
		if !ok {
			t.Fatalf("missing spec %q", name)
		}
		p := progen.MustGenerate(spec)
		tr, err := interp.Run(p, 1, interp.StopRule{Budget: 50000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Instrs < 50000 {
			t.Errorf("%s: trace too short (%d)", name, tr.Instrs)
		}
		if tr.CondBranches == 0 {
			t.Errorf("%s: no conditional branches executed", name)
		}
		if spec.MemFraction > 0 && tr.MemAccesses() == 0 {
			t.Errorf("%s: no memory accesses recorded", name)
		}
		// Memory fraction should be in the right ballpark.
		frac := float64(tr.MemAccesses()) / float64(tr.Instrs)
		if frac < spec.MemFraction*0.4 || frac > spec.MemFraction*1.8 {
			t.Errorf("%s: memory fraction %.3f far from spec %.3f", name, frac, spec.MemFraction)
		}
	}
}

func TestGeneratedProgramsLink(t *testing.T) {
	for _, name := range []string{"403.gcc", "483.xalancbmk"} {
		spec, _ := progen.ByName(name)
		p := progen.MustGenerate(spec)
		exe, err := toolchain.BuildLayout(p, 5, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Large-code benchmarks must overflow the 32KB L1I for layout
		// sensitivity of instruction fetch.
		if exe.CodeBytes() < 40*1024 {
			t.Errorf("%s: code footprint %d too small to stress L1I", name, exe.CodeBytes())
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []progen.Spec{
		{},
		{Name: "x", Procs: 0, BlocksMin: 2, BlocksMax: 4},
		{Name: "x", Procs: 5, BlocksMin: 1, BlocksMax: 4},
		{Name: "x", Procs: 5, BlocksMin: 4, BlocksMax: 2},
		{Name: "x", Procs: 5, BlocksMin: 2, BlocksMax: 4, MemFraction: 0.9, Globals: 1, GlobalBytes: 64},
		{Name: "x", Procs: 5, BlocksMin: 2, BlocksMax: 4, MemFraction: 0.2},
	}
	for i, s := range bad {
		if _, err := progen.Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := progen.ByName("429.mcf"); !ok {
		t.Error("429.mcf not found")
	}
	if _, ok := progen.ByName("252.eon"); !ok {
		t.Error("252.eon not found in sim suite")
	}
	if _, ok := progen.ByName("999.nothing"); ok {
		t.Error("unknown name found")
	}
}

func TestInputSeedVariesTraces(t *testing.T) {
	spec, _ := progen.ByName("445.gobmk")
	p := progen.MustGenerate(spec)
	a, err := interp.Run(p, 1, interp.StopRule{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(p, 2, interp.StopRule{Budget: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.TakenBits, b.TakenBits) {
		t.Error("different input seeds gave identical branch behaviour")
	}
}
