package progen

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzProgenSpec drives arbitrary byte strings through a fixed-layout
// Spec decoder and pins two properties: Validate never panics, whatever
// the field values (NaN, Inf, negatives, huge counts), and every spec
// Validate accepts generates a program that passes isa validation.
func FuzzProgenSpec(f *testing.F) {
	for _, spec := range []Spec{Suite()[0], Suite()[7], SimSuite()[2]} {
		f.Add(specBytes(&spec))
	}
	nan := Suite()[0]
	nan.HotFraction = math.NaN()
	nan.WLoop = math.Inf(1)
	f.Add(specBytes(&nan))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec := specFromBytes(data)
		if err := spec.Validate(); err != nil {
			return // rejected: the property is only that rejection is graceful
		}
		if spec.Procs*spec.BlocksMax > 50_000 {
			t.Skip("valid but too large to generate under fuzz")
		}
		prog, err := Generate(spec)
		if err != nil {
			t.Fatalf("validated spec failed to generate: %v\nspec: %+v", err, spec)
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("generated program fails isa validation: %v\nspec: %+v", err, spec)
		}
	})
}

// The codec below maps Spec to a flat byte string: 8-byte little-endian
// words for seeds/sizes/floats (floats as raw IEEE bits, so mutation
// reaches NaN and Inf), 4 bytes for counts, 1 for bools. specFromBytes
// zero-fills when data runs out, so truncated inputs decode too.

type specReader struct {
	data []byte
}

func (r *specReader) u64() uint64 {
	var b [8]byte
	copy(b[:], r.data)
	if len(r.data) > 8 {
		r.data = r.data[8:]
	} else {
		r.data = nil
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (r *specReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *specReader) i32() int {
	var b [4]byte
	copy(b[:], r.data)
	if len(r.data) > 4 {
		r.data = r.data[4:]
	} else {
		r.data = nil
	}
	return int(int32(binary.LittleEndian.Uint32(b[:])))
}

func (r *specReader) flag() bool {
	if len(r.data) == 0 {
		return false
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v&1 != 0
}

func specFromBytes(data []byte) Spec {
	r := &specReader{data: data}
	return Spec{
		Name: "fuzz",
		Seed: r.u64(),

		Procs:     r.i32(),
		BlocksMin: r.i32(),
		BlocksMax: r.i32(),

		FPFraction:     r.f64(),
		IntMulFraction: r.f64(),
		BytesPerInstr:  r.f64(),

		WBiased:          r.f64(),
		WLoop:            r.f64(),
		WPattern:         r.f64(),
		WCorrelated:      r.f64(),
		HardBiasFraction: r.f64(),
		CorrNoise:        r.f64(),
		CondDensity:      r.f64(),
		CallDensity:      r.f64(),
		IndirectSites:    r.i32(),

		MemFraction:    r.f64(),
		HotFraction:    r.f64(),
		HotBytes:       r.u64(),
		HotOnHeap:      r.flag(),
		HotPoolObjects: r.i32(),

		FwdTripMin:  r.i32(),
		FwdTripMax:  r.i32(),
		BackTripMin: r.i32(),
		BackTripMax: r.i32(),

		Globals:        r.i32(),
		GlobalBytes:    r.u64(),
		HeapObjects:    r.i32(),
		HeapObjBytes:   r.u64(),
		BigHeapObjects: r.i32(),
		BigHeapBytes:   r.u64(),

		WStream:    r.f64(),
		WRandom:    r.f64(),
		WChase:     r.f64(),
		WBlocked:   r.f64(),
		PoolSkew:   r.f64(),
		ChurnSites: r.i32(),
	}
}

// specBytes is the encoder half of the codec, used to seed the corpus
// with real suite specs.
func specBytes(s *Spec) []byte {
	var out []byte
	u64 := func(v uint64) { out = binary.LittleEndian.AppendUint64(out, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	i32 := func(v int) { out = binary.LittleEndian.AppendUint32(out, uint32(int32(v))) }
	flag := func(v bool) {
		if v {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	u64(s.Seed)
	i32(s.Procs)
	i32(s.BlocksMin)
	i32(s.BlocksMax)
	f64(s.FPFraction)
	f64(s.IntMulFraction)
	f64(s.BytesPerInstr)
	f64(s.WBiased)
	f64(s.WLoop)
	f64(s.WPattern)
	f64(s.WCorrelated)
	f64(s.HardBiasFraction)
	f64(s.CorrNoise)
	f64(s.CondDensity)
	f64(s.CallDensity)
	i32(s.IndirectSites)
	f64(s.MemFraction)
	f64(s.HotFraction)
	u64(s.HotBytes)
	flag(s.HotOnHeap)
	i32(s.HotPoolObjects)
	i32(s.FwdTripMin)
	i32(s.FwdTripMax)
	i32(s.BackTripMin)
	i32(s.BackTripMax)
	i32(s.Globals)
	u64(s.GlobalBytes)
	i32(s.HeapObjects)
	u64(s.HeapObjBytes)
	i32(s.BigHeapObjects)
	u64(s.BigHeapBytes)
	f64(s.WStream)
	f64(s.WRandom)
	f64(s.WChase)
	f64(s.WBlocked)
	f64(s.PoolSkew)
	i32(s.ChurnSites)
	return out
}

// TestSpecCodecRoundTrip keeps the fuzz codec honest: every suite spec
// survives encode→decode unchanged (modulo the fuzz name).
func TestSpecCodecRoundTrip(t *testing.T) {
	for _, s := range append(Suite(), SimSuite()...) {
		got := specFromBytes(specBytes(&s))
		want := s
		want.Name = "fuzz"
		if got != want {
			t.Fatalf("codec round trip changed %s:\n got %+v\nwant %+v", s.Name, got, want)
		}
	}
}
