package toolchain_test

import (
	"reflect"
	"sync"
	"testing"

	"interferometry/internal/progen"
	"interferometry/internal/toolchain"
)

// TestBuilderMatchesBuildLayout verifies the shared-compile fast path: a
// Builder's executables must be bit-identical to per-layout BuildLayout
// for the same seeds, for default and non-default configs.
func TestBuilderMatchesBuildLayout(t *testing.T) {
	spec, ok := progen.ByName("400.perlbench")
	if !ok {
		t.Fatal("missing spec")
	}
	p := progen.MustGenerate(spec)
	configs := []struct {
		name string
		ccfg toolchain.CompileConfig
		lcfg toolchain.LinkConfig
	}{
		{"defaults", toolchain.CompileConfig{}, toolchain.LinkConfig{}},
		{"small-units-aligned", toolchain.CompileConfig{ProcsPerUnit: 3}, toolchain.LinkConfig{FetchAlign: 16}},
	}
	for _, tc := range configs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			b := toolchain.NewBuilder(p, tc.ccfg, tc.lcfg)
			for seed := uint64(0); seed < 12; seed++ {
				got, err := b.Build(seed)
				if err != nil {
					t.Fatal(err)
				}
				want, err := toolchain.BuildLayout(p, seed, tc.ccfg, tc.lcfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d: builder executable differs from BuildLayout", seed)
				}
			}
		})
	}
}

// TestBuilderConcurrentBuilds checks that Reorder leaves the shared units
// untouched: concurrent Build calls over the same Builder must produce the
// same executables as sequential ones (run under -race in CI).
func TestBuilderConcurrentBuilds(t *testing.T) {
	spec, ok := progen.ByName("401.bzip2")
	if !ok {
		t.Fatal("missing spec")
	}
	p := progen.MustGenerate(spec)
	b := toolchain.NewBuilder(p, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	const n = 16
	sequential := make([]*toolchain.Executable, n)
	for i := range sequential {
		exe, err := b.Build(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = exe
	}
	concurrent := make([]*toolchain.Executable, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			concurrent[i], errs[i] = b.Build(uint64(i))
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !reflect.DeepEqual(concurrent[i], sequential[i]) {
			t.Fatalf("seed %d: concurrent build differs from sequential", i)
		}
	}
}
