package toolchain_test

import (
	"reflect"
	"testing"

	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

// mapCache is an in-memory LayoutCache for exercising CachedBuilder.
type mapCache struct {
	m    map[string][]byte
	gets int
	hits int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: map[string][]byte{}} }

func (c *mapCache) id(key string, seed uint64) string {
	return key + "/" + string(rune(seed))
}

func (c *mapCache) Get(key string, seed uint64) ([]byte, bool) {
	c.gets++
	data, ok := c.m[c.id(key, seed)]
	if ok {
		c.hits++
	}
	return data, ok
}

func (c *mapCache) Put(key string, seed uint64, data []byte) {
	c.puts++
	c.m[c.id(key, seed)] = data
}

func TestLayoutCodecRoundTrip(t *testing.T) {
	p := testprog.Branchy()
	b := toolchain.NewBuilder(p, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{})
	for _, seed := range []uint64{0, 1, 0xdeadbeef} {
		exe, err := b.Build(seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := toolchain.DecodeLayout(toolchain.EncodeLayout(exe), p)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got, exe) {
			t.Fatalf("seed %d: decoded executable differs from original", seed)
		}
	}
}

func TestDecodeLayoutRejectsDamage(t *testing.T) {
	p := testprog.Branchy()
	b := toolchain.NewBuilder(p, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{})
	exe, err := b.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	good := toolchain.EncodeLayout(exe)

	t.Run("empty", func(t *testing.T) {
		if _, err := toolchain.DecodeLayout(nil, p); err == nil {
			t.Fatal("decoded empty data")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if _, err := toolchain.DecodeLayout(bad, p); err == nil {
			t.Fatal("decoded flipped magic")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{1, 8, len(good) / 2, len(good) - 1} {
			if _, err := toolchain.DecodeLayout(good[:n], p); err == nil {
				t.Fatalf("decoded %d-byte truncation", n)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		if _, err := toolchain.DecodeLayout(append(append([]byte(nil), good...), 0), p); err == nil {
			t.Fatal("decoded with trailing bytes")
		}
	})
	t.Run("wrong program", func(t *testing.T) {
		if _, err := toolchain.DecodeLayout(good, testprog.Memory(3)); err == nil {
			t.Fatal("decoded against a program of a different shape")
		}
	})
}

func TestCachedBuilderHitIsIdentical(t *testing.T) {
	p := testprog.Branchy()
	cache := newMapCache()
	ccfg := toolchain.CompileConfig{ProcsPerUnit: 2}

	cold := toolchain.NewCachedBuilder(toolchain.NewBuilder(p, ccfg, toolchain.LinkConfig{}), cache)
	want, err := cold.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	if cache.puts != 1 || cache.hits != 0 {
		t.Fatalf("cold build: %d puts, %d hits; want 1, 0", cache.puts, cache.hits)
	}

	// A second builder over the same program and config shares the key
	// and must serve the identical executable from cache.
	warm := toolchain.NewCachedBuilder(toolchain.NewBuilder(p, ccfg, toolchain.LinkConfig{}), cache)
	got, err := warm.Build(42)
	if err != nil {
		t.Fatal(err)
	}
	if cache.hits != 1 {
		t.Fatalf("warm build missed the cache (%d hits)", cache.hits)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cache hit is not bit-identical to the original build")
	}
}

func TestCachedBuilderCorruptEntryRebuilds(t *testing.T) {
	p := testprog.Branchy()
	cache := newMapCache()
	cb := toolchain.NewCachedBuilder(toolchain.NewBuilder(p, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{}), cache)

	cache.Put(cb.Key(), 9, []byte("not a layout"))
	exe, err := cb.Build(9)
	if err != nil {
		t.Fatalf("corrupt entry should fall through to a rebuild, got %v", err)
	}
	if err := toolchain.CheckExecutable(exe, 0); err != nil {
		t.Fatal(err)
	}
	// The rebuild overwrites the damaged entry with a decodable one.
	data, ok := cache.Get(cb.Key(), 9)
	if !ok {
		t.Fatal("rebuilt artifact was not stored")
	}
	if _, err := toolchain.DecodeLayout(data, p); err != nil {
		t.Fatalf("overwritten entry still undecodable: %v", err)
	}
}

func TestCachedBuilderNilCacheBuilds(t *testing.T) {
	p := testprog.Branchy()
	cb := toolchain.NewCachedBuilder(toolchain.NewBuilder(p, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{}), nil)
	exe, err := cb.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := toolchain.CheckExecutable(exe, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCacheKeyInvalidation(t *testing.T) {
	branchy := testprog.Branchy()
	ccfg := toolchain.CompileConfig{ProcsPerUnit: 2}
	base := toolchain.NewBuilder(branchy, ccfg, toolchain.LinkConfig{}).CacheKey()

	same := toolchain.NewBuilder(testprog.Branchy(), ccfg, toolchain.LinkConfig{}).CacheKey()
	if same != base {
		t.Error("equal program and config produced different keys")
	}
	if k := toolchain.NewBuilder(testprog.Memory(3), ccfg, toolchain.LinkConfig{}).CacheKey(); k == base {
		t.Error("different program shares the key")
	}
	if k := toolchain.NewBuilder(branchy, toolchain.CompileConfig{ProcsPerUnit: 1}, toolchain.LinkConfig{}).CacheKey(); k == base {
		t.Error("different unit partition shares the key")
	}
	if k := toolchain.NewBuilder(branchy, ccfg, toolchain.LinkConfig{FetchAlign: 128}).CacheKey(); k == base {
		t.Error("different link config shares the key")
	}
}

// BenchmarkCachedBuild isolates what the artifact cache saves: a cache
// hit replaces the Reorder+Link pipeline with a decode of ~2KB of
// address tables.
func BenchmarkCachedBuild(b *testing.B) {
	p := testprog.Branchy()
	ccfg := toolchain.CompileConfig{ProcsPerUnit: 2}
	b.Run("link", func(b *testing.B) {
		cb := toolchain.NewCachedBuilder(toolchain.NewBuilder(p, ccfg, toolchain.LinkConfig{}), nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cb.Build(uint64(i) + 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		cache := newMapCache()
		cb := toolchain.NewCachedBuilder(toolchain.NewBuilder(p, ccfg, toolchain.LinkConfig{}), cache)
		for i := 0; i < b.N; i++ {
			if _, err := cb.Build(uint64(i) + 1); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cb.Build(uint64(i) + 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}
