package toolchain

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"interferometry/internal/isa"
)

// LayoutCache stores encoded executables keyed by (artifact key, layout
// seed). internal/artifactcache implements it with a bounded on-disk
// store; the interface lives here so the toolchain does not depend on
// any particular backing. Implementations must be safe for concurrent
// use — CachedBuilder is shared across measurement workers.
type LayoutCache interface {
	Get(key string, seed uint64) ([]byte, bool)
	Put(key string, seed uint64, data []byte)
}

// CachedBuilder wraps a Builder with a LayoutCache: Build serves the
// encoded address tables from the cache when present and links (then
// stores) otherwise. Because linking is deterministic, a hit is
// bit-identical to a rebuild; a corrupt or stale entry fails decoding
// and falls through to a rebuild that overwrites it, so a damaged cache
// degrades to slower, never to wrong.
type CachedBuilder struct {
	b     *Builder
	cache LayoutCache
	key   string
}

// NewCachedBuilder attaches cache to b. A nil cache returns a wrapper
// that just builds, so callers can wire it unconditionally.
func NewCachedBuilder(b *Builder, cache LayoutCache) *CachedBuilder {
	return &CachedBuilder{b: b, cache: cache, key: b.CacheKey()}
}

// Program returns the program the underlying builder compiles.
func (cb *CachedBuilder) Program() *isa.Program { return cb.b.Program() }

// Key returns the artifact key all of this builder's layouts share.
func (cb *CachedBuilder) Key() string { return cb.key }

// Build links the layout for one seed, consulting the cache first.
func (cb *CachedBuilder) Build(seed uint64) (*Executable, error) {
	if cb.cache == nil {
		return cb.b.Build(seed)
	}
	if data, ok := cb.cache.Get(cb.key, seed); ok {
		if exe, err := DecodeLayout(data, cb.b.Program()); err == nil {
			return exe, nil
		}
		// Undecodable entry: rebuild below and overwrite it.
	}
	exe, err := cb.b.Build(seed)
	if err != nil {
		return nil, err
	}
	cb.cache.Put(cb.key, seed, EncodeLayout(exe))
	return exe, nil
}

// CacheKey fingerprints everything that determines the builder's output
// for a given seed: the layout-relevant program shape (block sizes,
// procedure structure, branch targets — which drive fetch alignment —
// and global object sizes), the compile-time unit partition, and the
// link configuration. Two builders with equal keys produce identical
// executables for every seed, so the key is safe to share across
// processes; any change to program or toolchain config changes the key
// and silently invalidates old entries.
func (b *Builder) CacheKey() string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	ws := func(s string) {
		wu(uint64(len(s)))
		h.Write([]byte(s))
	}
	p := b.prog
	ws("interferometry-layout-v1")
	ws(p.Name)
	wu(p.Seed)
	wu(uint64(p.Main))
	wu(uint64(len(p.Blocks)))
	for i := range p.Blocks {
		blk := &p.Blocks[i]
		wu(uint64(blk.Proc))
		wu(uint64(blk.Bytes))
		wu(uint64(blk.Term.Kind))
		wu(uint64(blk.Term.Target))
	}
	wu(uint64(len(p.Procs)))
	for i := range p.Procs {
		ws(p.Procs[i].Name)
		wu(uint64(len(p.Procs[i].Blocks)))
		for _, bid := range p.Procs[i].Blocks {
			wu(uint64(bid))
		}
	}
	wu(uint64(len(p.Objects)))
	for i := range p.Objects {
		wu(p.Objects[i].Size)
		if p.Objects[i].Heap {
			wu(1)
		} else {
			wu(0)
		}
	}
	wu(uint64(len(b.units)))
	for i := range b.units {
		u := &b.units[i]
		ws(u.Name)
		wu(uint64(len(u.Procs)))
		for _, pid := range u.Procs {
			wu(uint64(pid))
		}
		wu(uint64(len(u.Globals)))
		for _, obj := range u.Globals {
			wu(uint64(obj))
		}
	}
	lcfg := b.lcfg
	lcfg.fillDefaults()
	wu(lcfg.CodeBase)
	wu(lcfg.DataBase)
	wu(lcfg.ProcAlign)
	wu(lcfg.FetchAlign)
	wu(lcfg.GlobalAlign)
	return hex.EncodeToString(h.Sum(nil))
}

// Layout codec. The encoding is the executable's address tables — the
// only part of an Executable that depends on the seed — in fixed-width
// little-endian words behind a magic/version header. DecodeLayout
// rebinds the caller's Program, so a cached artifact never smuggles
// program structure across processes; it only carries addresses.
const (
	layoutMagic   uint64 = 0x494e544c41594f55 // "INTLAYOU"
	layoutVersion uint64 = 1
)

// EncodeLayout serializes an executable's address tables for a
// LayoutCache.
func EncodeLayout(e *Executable) []byte {
	n := 8 * (11 + len(e.BlockAddr) + len(e.ProcAddr) + len(e.GlobalBase) + len(e.LinkOrder))
	out := make([]byte, 0, n)
	wu := func(v uint64) {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	wu(layoutMagic)
	wu(layoutVersion)
	wu(e.Seed)
	wu(e.CodeBase)
	wu(e.CodeLimit)
	wu(e.DataBase)
	wu(e.DataLimit)
	wu(uint64(len(e.BlockAddr)))
	for _, a := range e.BlockAddr {
		wu(a)
	}
	wu(uint64(len(e.ProcAddr)))
	for _, a := range e.ProcAddr {
		wu(a)
	}
	wu(uint64(len(e.GlobalBase)))
	for _, a := range e.GlobalBase {
		wu(a)
	}
	wu(uint64(len(e.LinkOrder)))
	for _, pid := range e.LinkOrder {
		wu(uint64(pid))
	}
	return out
}

// DecodeLayout parses an encoded layout and binds it to p. Any header,
// shape or length mismatch is an error — callers treat that as a cache
// miss and rebuild.
func DecodeLayout(data []byte, p *isa.Program) (*Executable, error) {
	d := layoutDecoder{data: data}
	if d.u64() != layoutMagic || d.u64() != layoutVersion {
		return nil, fmt.Errorf("toolchain: cached layout: bad header")
	}
	exe := &Executable{
		Program:  p,
		Seed:     d.u64(),
		CodeBase: d.u64(),
	}
	exe.CodeLimit = d.u64()
	exe.DataBase = d.u64()
	exe.DataLimit = d.u64()
	exe.BlockAddr = d.addrs(len(p.Blocks), "blocks")
	exe.ProcAddr = d.addrs(len(p.Procs), "procedures")
	exe.GlobalBase = d.addrs(len(p.Objects), "globals")
	order := d.addrs(len(p.Procs), "link order")
	if d.err != nil {
		return nil, d.err
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("toolchain: cached layout: %d trailing bytes", len(d.data))
	}
	exe.LinkOrder = make([]isa.ProcID, len(order))
	for i, v := range order {
		if v >= uint64(len(p.Procs)) {
			return nil, fmt.Errorf("toolchain: cached layout: link order references procedure %d of %d", v, len(p.Procs))
		}
		exe.LinkOrder[i] = isa.ProcID(v)
	}
	return exe, nil
}

// layoutDecoder reads fixed-width words, latching the first error so
// DecodeLayout can check once at the end.
type layoutDecoder struct {
	data []byte
	err  error
}

func (d *layoutDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.err = fmt.Errorf("toolchain: cached layout: truncated")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

// addrs reads a length-prefixed table, requiring it to match the bound
// program's shape.
func (d *layoutDecoder) addrs(want int, what string) []uint64 {
	n := d.u64()
	if d.err != nil {
		return nil
	}
	if n != uint64(want) {
		d.err = fmt.Errorf("toolchain: cached layout: %d %s, program has %d", n, what, want)
		return nil
	}
	if uint64(len(d.data)) < 8*n {
		d.err = fmt.Errorf("toolchain: cached layout: truncated")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(d.data[8*i:])
	}
	d.data = d.data[8*n:]
	return out
}
