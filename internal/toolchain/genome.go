package toolchain

import (
	"encoding/binary"
	"fmt"
	"time"

	"interferometry/internal/isa"
	"interferometry/internal/xrand"
)

// A Genome is an explicit point in the layout space the seeded Reorder
// pipeline samples implicitly: a permutation of the compilation units
// (the link line) plus a permutation of each unit's procedures. Where a
// layout seed can only *sample* the space, a genome can *move* through
// it — mutation and crossover perturb one permutation at a time — which
// is what turns the measurement infrastructure into layout optimization
// (ROADMAP item 2). Applying a genome through the ordinary Link path
// yields an Executable indistinguishable from a seed-built one, so the
// whole measurement stack (machine model, batched replay, caches) works
// on genomes unchanged.
type Genome struct {
	// Units is the link order: a permutation of the compile-time unit
	// indices.
	Units []int
	// Procs[u] is the procedure order of compile-time unit u, indexed by
	// the unit's original (compile-time) position, not its link
	// position: a permutation of that unit's procedures.
	Procs [][]isa.ProcID
}

// IdentityGenome is the unperturbed layout: units and procedures in
// compile order, the genome analog of Reorder seed 0.
func IdentityGenome(units []Unit) Genome {
	g := Genome{
		Units: make([]int, len(units)),
		Procs: make([][]isa.ProcID, len(units)),
	}
	for i := range units {
		g.Units[i] = i
		g.Procs[i] = append([]isa.ProcID(nil), units[i].Procs...)
	}
	return g
}

// GenomeOf derives the genome the seeded Reorder produces: the same
// per-unit procedure shuffles (tag 0x70) and unit shuffle (tag 0x75)
// applied to explicit permutations. ApplyGenome(units, GenomeOf(units,
// seed)) lays out exactly like Reorder(units, seed), which is how a
// search's generation-zero population embeds the seeded layout space.
func GenomeOf(units []Unit, seed uint64) Genome {
	g := IdentityGenome(units)
	if seed == 0 {
		return g
	}
	rng := xrand.New(seed)
	for i := range g.Procs {
		pr := rng.Derive(tagProcShuffle, uint64(i))
		pr.Shuffle(len(g.Procs[i]), func(a, b int) {
			g.Procs[i][a], g.Procs[i][b] = g.Procs[i][b], g.Procs[i][a]
		})
	}
	ur := rng.Derive(tagUnitShuffle)
	ur.Shuffle(len(g.Units), func(a, b int) { g.Units[a], g.Units[b] = g.Units[b], g.Units[a] })
	return g
}

// Clone deep-copies the genome.
func (g Genome) Clone() Genome {
	out := Genome{
		Units: append([]int(nil), g.Units...),
		Procs: make([][]isa.ProcID, len(g.Procs)),
	}
	for i := range g.Procs {
		out.Procs[i] = append([]isa.ProcID(nil), g.Procs[i]...)
	}
	return out
}

// Validate checks the genome against the compile-time units: the unit
// order must permute [0,len(units)) and each per-unit procedure order
// must permute exactly that unit's procedures. A genome that validates
// always links (ApplyGenome + Link cannot fail structurally).
func (g Genome) Validate(units []Unit) error {
	if len(g.Units) != len(units) || len(g.Procs) != len(units) {
		return fmt.Errorf("toolchain: genome shape %d/%d units, program has %d", len(g.Units), len(g.Procs), len(units))
	}
	seen := make([]bool, len(units))
	for _, u := range g.Units {
		if u < 0 || u >= len(units) || seen[u] {
			return fmt.Errorf("toolchain: genome unit order is not a permutation (unit %d)", u)
		}
		seen[u] = true
	}
	for u := range units {
		if len(g.Procs[u]) != len(units[u].Procs) {
			return fmt.Errorf("toolchain: genome unit %d has %d procedures, compile produced %d", u, len(g.Procs[u]), len(units[u].Procs))
		}
		want := make(map[isa.ProcID]bool, len(units[u].Procs))
		for _, p := range units[u].Procs {
			want[p] = true
		}
		for _, p := range g.Procs[u] {
			if !want[p] {
				return fmt.Errorf("toolchain: genome unit %d reorders procedure %d it does not own (or repeats one)", u, p)
			}
			delete(want, p)
		}
	}
	return nil
}

// ApplyGenome produces the perturbed link line the genome encodes, the
// explicit-permutation analog of Reorder. The input units are copied,
// never mutated.
func ApplyGenome(units []Unit, g Genome) ([]Unit, error) {
	if err := g.Validate(units); err != nil {
		return nil, err
	}
	out := make([]Unit, len(units))
	for k, u := range g.Units {
		cp := units[u]
		cp.Procs = append([]isa.ProcID(nil), g.Procs[u]...)
		cp.Globals = append([]isa.ObjectID(nil), units[u].Globals...)
		out[k] = cp
	}
	return out, nil
}

// fingerprintTag salts genome fingerprints so they cannot collide with
// the hash inputs of any other derived stream.
const fingerprintTag uint64 = 0x67656e6f // "geno"

// Fingerprint is the genome's 64-bit identity: a seed-grade hash of the
// full permutation content. It plays the role a layout seed plays for
// sampled layouts — it stamps the built Executable, keys the artifact
// cache, and derives the genome's heap and noise streams — so it is
// forced even: campaign layout seeds are forced odd, which keeps
// genome-built artifacts in a disjoint keyspace of a shared layout
// cache.
func (g Genome) Fingerprint() uint64 {
	vs := make([]uint64, 0, 2+len(g.Units)*2)
	vs = append(vs, fingerprintTag, uint64(len(g.Units)))
	for _, u := range g.Units {
		vs = append(vs, uint64(u))
	}
	for _, ps := range g.Procs {
		vs = append(vs, uint64(len(ps)))
		for _, p := range ps {
			vs = append(vs, uint64(p))
		}
	}
	fp := xrand.Mix(vs...) &^ 1
	if fp == 0 {
		fp = 2
	}
	return fp
}

// MutateGenome returns a copy of g with one seeded point mutation: a
// swap of two procedures within one unit, or a swap of two units on the
// link line — the two degrees of freedom the paper's Camino perturbation
// has (§5.3), applied as a minimal move instead of a full reshuffle.
// Units with fewer than two procedures are not eligible for a procedure
// swap. A genome with no eligible move returns unchanged.
func MutateGenome(g Genome, rng *xrand.Rand) Genome {
	out := g.Clone()
	var eligible []int
	for u, ps := range out.Procs {
		if len(ps) >= 2 {
			eligible = append(eligible, u)
		}
	}
	unitSwap := len(out.Units) >= 2
	procSwap := len(eligible) > 0
	switch {
	case !unitSwap && !procSwap:
		return out
	case unitSwap && (!procSwap || rng.Bool(0.5)):
		a := rng.Intn(len(out.Units))
		b := rng.Intn(len(out.Units) - 1)
		if b >= a {
			b++
		}
		out.Units[a], out.Units[b] = out.Units[b], out.Units[a]
	default:
		ps := out.Procs[eligible[rng.Intn(len(eligible))]]
		a := rng.Intn(len(ps))
		b := rng.Intn(len(ps) - 1)
		if b >= a {
			b++
		}
		ps[a], ps[b] = ps[b], ps[a]
	}
	return out
}

// CrossoverGenomes combines two parents: the unit order uses order
// crossover (a seeded prefix of a's link line, completed in b's order),
// and each unit's procedure order is inherited wholesale from one
// parent, chosen per unit. Both inheritance rules preserve permutation
// validity by construction, so a crossover of valid parents is always a
// valid genome. The parents must have the same shape (same compile).
func CrossoverGenomes(a, b Genome, rng *xrand.Rand) Genome {
	child := Genome{
		Units: make([]int, 0, len(a.Units)),
		Procs: make([][]isa.ProcID, len(a.Procs)),
	}
	cut := rng.Intn(len(a.Units) + 1)
	taken := make(map[int]bool, len(a.Units))
	for _, u := range a.Units[:cut] {
		child.Units = append(child.Units, u)
		taken[u] = true
	}
	for _, u := range b.Units {
		if !taken[u] {
			child.Units = append(child.Units, u)
		}
	}
	for u := range a.Procs {
		src := a.Procs[u]
		if rng.Bool(0.5) {
			src = b.Procs[u]
		}
		child.Procs[u] = append([]isa.ProcID(nil), src...)
	}
	return child
}

// Genome codec. Genomes travel through the coordinator/worker lease
// protocol, live in per-generation search checkpoints, and may be
// embedded in WAL records, so the encoding is versioned and
// checksummed: like the artifact cache's layout codec, a damaged genome
// must fail decoding — never decode to a wrong-but-valid layout.
const (
	genomeMagic   uint64 = 0x49464745_4e4f4d45 // "IFGENOME"
	genomeVersion uint64 = 1
)

// EncodeGenome serializes a genome as fixed-width little-endian words
// behind a magic/version header, terminated by a content checksum. The
// encoding is canonical: Decode(Encode(g)) re-encodes byte-identically.
func EncodeGenome(g Genome) []byte {
	n := 8 * (4 + len(g.Units))
	for _, ps := range g.Procs {
		n += 8 * (1 + len(ps))
	}
	out := make([]byte, 0, n)
	wu := func(v uint64) {
		out = binary.LittleEndian.AppendUint64(out, v)
	}
	wu(genomeMagic)
	wu(genomeVersion)
	wu(uint64(len(g.Units)))
	for _, u := range g.Units {
		wu(uint64(u))
	}
	for _, ps := range g.Procs {
		wu(uint64(len(ps)))
		for _, p := range ps {
			wu(uint64(p))
		}
	}
	wu(genomeChecksum(out))
	return out
}

// genomeChecksum mixes every encoded word (header included) into one
// 64-bit digest. A flipped bit anywhere in the body changes the digest,
// so corruption is detected before a genome can link a layout.
func genomeChecksum(body []byte) uint64 {
	vs := make([]uint64, 0, len(body)/8+1)
	vs = append(vs, fingerprintTag)
	for off := 0; off+8 <= len(body); off += 8 {
		vs = append(vs, binary.LittleEndian.Uint64(body[off:]))
	}
	return xrand.Mix(vs...)
}

// DecodeGenome parses an encoded genome. Any header, shape, length or
// checksum mismatch is an error; a successfully decoded genome is
// internally consistent (its unit order is a permutation and its
// procedure lists are duplicate-free), though only Validate can check it
// against a particular compile.
func DecodeGenome(data []byte) (Genome, error) {
	if len(data) < 8*4 || len(data)%8 != 0 {
		return Genome{}, fmt.Errorf("toolchain: encoded genome: truncated (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if genomeChecksum(body) != sum {
		return Genome{}, fmt.Errorf("toolchain: encoded genome: checksum mismatch")
	}
	d := layoutDecoder{data: body}
	if d.u64() != genomeMagic || d.u64() != genomeVersion {
		return Genome{}, fmt.Errorf("toolchain: encoded genome: bad header")
	}
	nUnits := d.u64()
	if d.err == nil && nUnits > uint64(len(body)/8) {
		return Genome{}, fmt.Errorf("toolchain: encoded genome: implausible unit count %d", nUnits)
	}
	g := Genome{}
	seen := make([]bool, nUnits)
	for i := uint64(0); i < nUnits && d.err == nil; i++ {
		u := d.u64()
		if d.err != nil {
			break
		}
		if u >= nUnits || seen[u] {
			return Genome{}, fmt.Errorf("toolchain: encoded genome: unit order is not a permutation")
		}
		seen[u] = true
		g.Units = append(g.Units, int(u))
	}
	for i := uint64(0); i < nUnits && d.err == nil; i++ {
		nProcs := d.u64()
		if d.err != nil {
			break
		}
		if nProcs > uint64(len(body)/8) {
			return Genome{}, fmt.Errorf("toolchain: encoded genome: implausible procedure count %d", nProcs)
		}
		ps := make([]isa.ProcID, 0, nProcs)
		dup := make(map[uint64]bool, nProcs)
		for j := uint64(0); j < nProcs && d.err == nil; j++ {
			p := d.u64()
			if d.err != nil {
				break
			}
			if dup[p] {
				return Genome{}, fmt.Errorf("toolchain: encoded genome: duplicate procedure %d in unit %d", p, i)
			}
			dup[p] = true
			ps = append(ps, isa.ProcID(p))
		}
		g.Procs = append(g.Procs, ps)
	}
	if d.err != nil {
		return Genome{}, fmt.Errorf("toolchain: encoded genome: %w", d.err)
	}
	if len(d.data) != 0 {
		return Genome{}, fmt.Errorf("toolchain: encoded genome: %d trailing bytes", len(d.data))
	}
	return g, nil
}

// Units returns a deep copy of the builder's compile-time units, the
// shape a genome permutes. Search engines use it to seed and validate
// populations without recompiling.
func (b *Builder) Units() []Unit {
	out := make([]Unit, len(b.units))
	for i, u := range b.units {
		cp := u
		cp.Procs = append([]isa.ProcID(nil), u.Procs...)
		cp.Globals = append([]isa.ObjectID(nil), u.Globals...)
		out[i] = cp
	}
	return out
}

// BuildGenome links the layout a genome encodes, stamping the
// executable with the genome's fingerprint where seed-built layouts
// carry their seed. Like Build, it is deterministic and safe for
// concurrent use.
func (b *Builder) BuildGenome(g Genome) (*Executable, error) {
	units, err := ApplyGenome(b.units, g)
	if err != nil {
		return nil, err
	}
	if m := b.metrics; m != nil {
		t0 := time.Now()
		exe, err := Link(b.prog, units, g.Fingerprint(), b.lcfg)
		m.BuildSeconds.Observe(time.Since(t0).Seconds())
		m.Builds.Inc()
		return exe, err
	}
	return Link(b.prog, units, g.Fingerprint(), b.lcfg)
}

// BuildGenome links a genome through the cache, keyed by (artifact key,
// genome fingerprint) — the genome analog of Build's (key, seed).
// Fingerprints are forced even and layout seeds forced odd, so the two
// families never collide in a shared store. A corrupt or stale entry
// fails decoding and falls through to a rebuild, identical to Build.
func (cb *CachedBuilder) BuildGenome(g Genome) (*Executable, error) {
	if cb.cache == nil {
		return cb.b.BuildGenome(g)
	}
	fp := g.Fingerprint()
	if data, ok := cb.cache.Get(cb.key, fp); ok {
		if exe, err := DecodeLayout(data, cb.b.Program()); err == nil && exe.Seed == fp {
			return exe, nil
		}
	}
	exe, err := cb.b.BuildGenome(g)
	if err != nil {
		return nil, err
	}
	cb.cache.Put(cb.key, fp, EncodeLayout(exe))
	return exe, nil
}
