package toolchain_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/machine"
	"interferometry/internal/progen"
	"interferometry/internal/testprog"
	"interferometry/internal/toolchain"
)

func mustBuild(t *testing.T, p *isa.Program, seed uint64) *toolchain.Executable {
	t.Helper()
	exe, err := toolchain.BuildLayout(p, seed, toolchain.CompileConfig{ProcsPerUnit: 2}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestCompilePartition(t *testing.T) {
	p := testprog.Branchy() // 3 procs
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 2})
	if len(units) != 2 {
		t.Fatalf("unit count = %d, want 2", len(units))
	}
	seen := map[isa.ProcID]bool{}
	for _, u := range units {
		for _, pid := range u.Procs {
			if seen[pid] {
				t.Fatalf("procedure %d in two units", pid)
			}
			seen[pid] = true
		}
	}
	if len(seen) != len(p.Procs) {
		t.Fatalf("units cover %d procs, want %d", len(seen), len(p.Procs))
	}
}

func TestCompileAssignsGlobals(t *testing.T) {
	p := testprog.Memory(3) // object 0 is global
	units := toolchain.Compile(p, toolchain.CompileConfig{})
	total := 0
	for _, u := range units {
		total += len(u.Globals)
	}
	if total != 1 {
		t.Fatalf("globals assigned %d times, want 1", total)
	}
}

func TestReorderSeedZeroIsIdentity(t *testing.T) {
	p := testprog.Branchy()
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 1})
	re := toolchain.Reorder(units, 0)
	if !reflect.DeepEqual(units, re) {
		t.Fatal("seed 0 should be the identity layout")
	}
}

func TestReorderDoesNotMutateInput(t *testing.T) {
	p := testprog.Branchy()
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 3})
	before := make([][]isa.ProcID, len(units))
	for i, u := range units {
		before[i] = append([]isa.ProcID(nil), u.Procs...)
	}
	toolchain.Reorder(units, 12345)
	for i, u := range units {
		if !reflect.DeepEqual(before[i], u.Procs) {
			t.Fatal("Reorder mutated its input")
		}
	}
}

func TestReorderReproducible(t *testing.T) {
	p := testprog.Branchy()
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 1})
	a := toolchain.Reorder(units, 77)
	b := toolchain.Reorder(units, 77)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed should give the same ordering")
	}
}

func TestReorderPreservesMultiset(t *testing.T) {
	p := testprog.Branchy()
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 2})
	check := func(seed uint64) bool {
		re := toolchain.Reorder(units, seed)
		seen := map[isa.ProcID]int{}
		for _, u := range re {
			for _, pid := range u.Procs {
				seen[pid]++
			}
		}
		if len(seen) != len(p.Procs) {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAddressesSound(t *testing.T) {
	p := testprog.Memory(3)
	check := func(seed uint64) bool {
		exe, err := toolchain.BuildLayout(p, seed, toolchain.CompileConfig{ProcsPerUnit: 1}, toolchain.LinkConfig{})
		if err != nil {
			return false
		}
		// Block address ranges must be disjoint and inside the text
		// segment; blocks within a procedure must be ascending.
		type span struct{ lo, hi uint64 }
		var spans []span
		for bid := range p.Blocks {
			lo := exe.BlockAddr[bid]
			hi := exe.BlockEnd(isa.BlockID(bid))
			if lo < exe.CodeBase || hi > exe.CodeLimit || lo >= hi {
				return false
			}
			spans = append(spans, span{lo, hi})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					return false // overlap
				}
			}
		}
		// Procedure entry must equal its first block's address.
		for pi := range p.Procs {
			if exe.ProcAddr[pi] != exe.BlockAddr[p.Procs[pi].Entry()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkAlignment(t *testing.T) {
	p := testprog.Branchy()
	exe, err := toolchain.BuildLayout(p, 5, toolchain.CompileConfig{ProcsPerUnit: 1},
		toolchain.LinkConfig{ProcAlign: 32, FetchAlign: 16})
	if err != nil {
		t.Fatal(err)
	}
	for pi, addr := range exe.ProcAddr {
		if addr%32 != 0 {
			t.Errorf("proc %d entry %#x not 32-aligned", pi, addr)
		}
	}
	// Block 0 is a branch target (b1 and b3 loop back to it).
	if exe.BlockAddr[0]%16 != 0 {
		t.Errorf("branch target block not fetch-aligned: %#x", exe.BlockAddr[0])
	}
}

func TestLinkGlobalPlacement(t *testing.T) {
	p := testprog.Memory(3)
	exe := mustBuild(t, p, 9)
	if exe.GlobalBase[0] < exe.DataBase || exe.GlobalBase[0]+4096 > exe.DataLimit {
		t.Errorf("global 0 at %#x outside data segment [%#x,%#x)",
			exe.GlobalBase[0], exe.DataBase, exe.DataLimit)
	}
	if exe.GlobalBase[0]%64 != 0 {
		t.Errorf("global not cache-line aligned: %#x", exe.GlobalBase[0])
	}
	for obj := 1; obj <= 4; obj++ {
		if exe.GlobalBase[obj] != 0 {
			t.Errorf("heap object %d was given a linker address", obj)
		}
	}
}

func TestDifferentSeedsDifferentLayouts(t *testing.T) {
	p := testprog.Branchy()
	a := mustBuild(t, p, 1)
	b := mustBuild(t, p, 2)
	if reflect.DeepEqual(a.BlockAddr, b.BlockAddr) {
		t.Fatal("different seeds produced identical code layouts")
	}
	// Same seed: identical layout (reproducibility, §5.3).
	c := mustBuild(t, p, 1)
	if !reflect.DeepEqual(a.BlockAddr, c.BlockAddr) {
		t.Fatal("same seed produced different layouts")
	}
}

func TestLayoutDoesNotChangeCodeContent(t *testing.T) {
	// The multiset of (block -> bytes) is layout-invariant; only addresses
	// move. This is the semantic-equivalence guarantee at link level.
	p := testprog.Branchy()
	a := mustBuild(t, p, 3)
	for bid := range p.Blocks {
		if a.BlockEnd(isa.BlockID(bid))-a.BlockAddr[bid] != uint64(p.Blocks[bid].Bytes) {
			t.Fatalf("block %d size changed by linking", bid)
		}
	}
}

func TestLinkRejectsDuplicateProc(t *testing.T) {
	p := testprog.Branchy()
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 3})
	units[0].Procs = append(units[0].Procs, units[0].Procs[0])
	if _, err := toolchain.Link(p, units, 1, toolchain.LinkConfig{}); err == nil {
		t.Fatal("duplicate procedure accepted")
	}
}

func TestLinkRejectsMissingProc(t *testing.T) {
	p := testprog.Branchy()
	units := toolchain.Compile(p, toolchain.CompileConfig{ProcsPerUnit: 3})
	units[0].Procs = units[0].Procs[:len(units[0].Procs)-1]
	if _, err := toolchain.Link(p, units, 1, toolchain.LinkConfig{}); err == nil {
		t.Fatal("missing procedure accepted")
	}
}

func TestTermAddrInsideBlock(t *testing.T) {
	p := testprog.Branchy()
	exe := mustBuild(t, p, 4)
	for bid := range p.Blocks {
		ta := exe.TermAddr(isa.BlockID(bid))
		if ta < exe.BlockAddr[bid] || ta >= exe.BlockEnd(isa.BlockID(bid)) {
			t.Errorf("terminator address %#x outside block %d [%#x,%#x)",
				ta, bid, exe.BlockAddr[bid], exe.BlockEnd(isa.BlockID(bid)))
		}
	}
}

func TestFindLimiter(t *testing.T) {
	p := testprog.CallChain(50)
	lim, err := toolchain.FindLimiter(p, 1, toolchain.LimiterConfig{Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if lim.Instrs == 0 {
		t.Fatal("limiter records no instruction count")
	}
	// The rule must reproduce exactly the same instruction count on every
	// run — the paper's "same number of user instructions" invariant.
	for run := 0; run < 3; run++ {
		tr, err := interp.Run(p, 1, lim.Rule())
		if err != nil {
			t.Fatal(err)
		}
		if tr.Instrs != lim.Instrs {
			t.Fatalf("run %d retired %d instructions, want %d", run, tr.Instrs, lim.Instrs)
		}
	}
	// The chosen procedure should be "low dynamic count": not the helper
	// that runs every iteration.
	tr, _ := interp.Run(p, 1, interp.StopRule{Budget: 5000})
	var total uint64
	for _, n := range tr.ProcEntries {
		total += n
	}
	if frac := float64(tr.ProcEntries[lim.StopProc]) / float64(total); frac > 0.5 {
		t.Errorf("stop procedure accounts for %.0f%% of entries; expected a cold one", frac*100)
	}
}

func TestFindLimiterNeedsBudget(t *testing.T) {
	if _, err := toolchain.FindLimiter(testprog.Counting(3), 1, toolchain.LimiterConfig{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestLimiterInstrsNearBudget(t *testing.T) {
	p := testprog.CallChain(10)
	const budget = 20000
	lim, err := toolchain.FindLimiter(p, 1, toolchain.LimiterConfig{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if lim.Instrs < budget/2 || lim.Instrs > budget*2 {
		t.Errorf("limited run retires %d instructions, far from budget %d", lim.Instrs, budget)
	}
}

func TestHotOrderUnits(t *testing.T) {
	p := testprog.ManyBranches(60, 300)
	prof, err := interp.Run(p, 1, interp.StopRule{Budget: 60000})
	if err != nil {
		t.Fatal(err)
	}
	units := toolchain.HotOrderUnits(p, prof, toolchain.CompileConfig{ProcsPerUnit: 8})
	// Every procedure appears exactly once.
	seen := map[isa.ProcID]int{}
	var flat []isa.ProcID
	for _, u := range units {
		for _, pid := range u.Procs {
			seen[pid]++
			flat = append(flat, pid)
		}
	}
	if len(seen) != len(p.Procs) {
		t.Fatalf("hot order covers %d procs, want %d", len(seen), len(p.Procs))
	}
	for pid, n := range seen {
		if n != 1 {
			t.Fatalf("procedure %d appears %d times", pid, n)
		}
	}
	// Entry counts are non-increasing along the layout.
	for i := 1; i < len(flat); i++ {
		if prof.ProcEntries[flat[i]] > prof.ProcEntries[flat[i-1]] {
			t.Fatalf("hot order violated at %d: %d entries after %d",
				i, prof.ProcEntries[flat[i]], prof.ProcEntries[flat[i-1]])
		}
	}
	// The layout links successfully.
	exe, err := toolchain.Link(p, units, 0, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The hottest procedure sits first in the text segment.
	hottest := flat[0]
	if exe.ProcAddr[hottest] != exe.CodeBase {
		t.Errorf("hottest procedure at %#x, text base %#x", exe.ProcAddr[hottest], exe.CodeBase)
	}
}

func TestBuildHotLayoutBeatsAverageRandom(t *testing.T) {
	// Pettis-Hansen-style packing should, on an I-cache-pressured program
	// with *skewed* procedure hotness, produce fewer L1I misses than a
	// typical random layout. (On a program whose procedures are uniformly
	// hot there is nothing for the heuristic to exploit.)
	spec, ok := progen.ByName("445.gobmk")
	if !ok {
		t.Fatal("gobmk spec missing")
	}
	p := progen.MustGenerate(spec)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 150000})
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.XeonE5440())
	missesOf := func(exe *toolchain.Executable) uint64 {
		c, err := m.Run(machine.RunSpec{Exe: exe, Trace: tr, DisableNoise: true})
		if err != nil {
			t.Fatal(err)
		}
		return c.L1IMisses
	}
	var randomTotal uint64
	const n = 10
	for seed := uint64(1); seed <= n; seed++ {
		exe, err := toolchain.BuildLayout(p, seed, toolchain.CompileConfig{}, toolchain.LinkConfig{})
		if err != nil {
			t.Fatal(err)
		}
		randomTotal += missesOf(exe)
	}
	pgo, err := toolchain.BuildHotLayout(p, tr, toolchain.CompileConfig{}, toolchain.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pgoMisses := missesOf(pgo)
	avg := randomTotal / n
	if pgoMisses > avg {
		t.Errorf("hot-first layout misses %d, average random layout %d", pgoMisses, avg)
	}
}

func TestCheckExecutable(t *testing.T) {
	p := testprog.CallChain(10)
	exe := mustBuild(t, p, 3)
	if err := toolchain.CheckExecutable(exe, 0); err != nil {
		t.Fatalf("clean build failed the check: %v", err)
	}

	// Each corruption below models a distinct linker bug the campaign
	// supervisor must catch before measurement.
	corrupt := func(name string, mutate func(*toolchain.Executable)) {
		cp := *exe
		cp.BlockAddr = append([]uint64(nil), exe.BlockAddr...)
		cp.ProcAddr = append([]uint64(nil), exe.ProcAddr...)
		cp.GlobalBase = append([]uint64(nil), exe.GlobalBase...)
		cp.LinkOrder = append([]isa.ProcID(nil), exe.LinkOrder...)
		mutate(&cp)
		err := toolchain.CheckExecutable(&cp, 5)
		if err == nil {
			t.Errorf("%s: corruption passed the check", name)
		} else {
			// Every failure names the layout index and seed, making it
			// reproducible from the message alone.
			for _, want := range []string{"layout 5", fmt.Sprintf("%#x", cp.Seed)} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("%s: error %q missing %q", name, err, want)
				}
			}
		}
	}
	corrupt("block outside text", func(e *toolchain.Executable) { e.BlockAddr[0] = e.CodeLimit + 0x1000 })
	corrupt("proc outside text", func(e *toolchain.Executable) { e.ProcAddr[0] = 0 })
	corrupt("truncated tables", func(e *toolchain.Executable) { e.BlockAddr = e.BlockAddr[:1] })
	corrupt("inverted segment", func(e *toolchain.Executable) { e.CodeLimit = e.CodeBase - 1; e.CodeBase = e.CodeLimit + 2 })
	corrupt("repeated link order", func(e *toolchain.Executable) { e.LinkOrder[1] = e.LinkOrder[0] })
	corrupt("short link order", func(e *toolchain.Executable) { e.LinkOrder = e.LinkOrder[:1] })
	if len(p.Objects) > 0 {
		corrupt("global outside data", func(e *toolchain.Executable) { e.GlobalBase[0] = e.DataLimit + 1 })
	}
	if err := toolchain.CheckExecutable(nil, -1); err == nil {
		t.Error("nil executable passed the check")
	}
	if err := toolchain.CheckExecutable(&toolchain.Executable{}, -1); err == nil {
		t.Error("empty executable passed the check")
	}
	// Outside a campaign (layout < 0) the message still carries the seed.
	cp := *exe
	cp.LinkOrder = cp.LinkOrder[:1]
	if err := toolchain.CheckExecutable(&cp, -1); err == nil || !strings.Contains(err.Error(), fmt.Sprintf("%#x", exe.Seed)) {
		t.Errorf("anonymous check error missing layout seed: %v", err)
	}
}
