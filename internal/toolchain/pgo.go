package toolchain

import (
	"sort"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
)

// Profile-guided code placement, after Pettis & Hansen (the paper's §2.2
// lineage: "many code-improving transformations have been proposed based
// on code placement"). §2.2 also makes a testable claim about
// interferometry itself: "if thoughtful code placement optimizations like
// those mentioned above were widely adopted, our results would show less
// variance in execution behavior". HotOrderUnits produces such a
// thoughtful layout — procedures sorted by dynamic execution count so the
// hot ones pack together — and the codeplacement example shows where it
// falls within the random-layout CPI distribution.

// HotOrderUnits builds a link line with procedures ordered by descending
// dynamic entry count (ties broken by procedure ID for determinism), in
// units of the configured size. Globals keep their Compile assignment.
func HotOrderUnits(p *isa.Program, prof *interp.Trace, cfg CompileConfig) []Unit {
	base := Compile(p, cfg)
	order := make([]isa.ProcID, len(p.Procs))
	for i := range order {
		order[i] = isa.ProcID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ea, eb := uint64(0), uint64(0)
		if int(order[a]) < len(prof.ProcEntries) {
			ea = prof.ProcEntries[order[a]]
		}
		if int(order[b]) < len(prof.ProcEntries) {
			eb = prof.ProcEntries[order[b]]
		}
		if ea != eb {
			return ea > eb
		}
		return order[a] < order[b]
	})

	per := cfg.ProcsPerUnit
	if per <= 0 {
		per = 8
	}
	units := make([]Unit, 0, len(base))
	for start := 0; start < len(order); start += per {
		end := start + per
		if end > len(order) {
			end = len(order)
		}
		units = append(units, Unit{
			Name:  base[min(start/per, len(base)-1)].Name,
			Procs: append([]isa.ProcID(nil), order[start:end]...),
		})
	}
	// Reattach globals to the first unit holding any of their original
	// owners; simplest correct policy: hand all globals to unit 0 in
	// their original order.
	var globals []isa.ObjectID
	for _, u := range base {
		globals = append(globals, u.Globals...)
	}
	units[0].Globals = globals
	return units
}

// BuildHotLayout profiles nothing itself: it lays out the program hot
// first using an existing profile trace and links it.
func BuildHotLayout(p *isa.Program, prof *interp.Trace, ccfg CompileConfig, lcfg LinkConfig) (*Executable, error) {
	return Link(p, HotOrderUnits(p, prof, ccfg), 0, lcfg)
}
