package toolchain

import (
	"errors"
	"fmt"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
)

// This file implements the paper's two-pass profiling and instrumentation
// pass (§5.7). SPEC benchmarks run for over 30 minutes on ref inputs; the
// paper instruments them so that "under native execution they run for up
// to approximately two minutes each": a first pass profiles procedure
// entry counts over the time budget, then a low-frequency procedure
// executed near the end of the budget is instrumented to terminate the
// program after the same number of entries. Because procedure entries are
// counted rather than elapsed time, "each run of a benchmark executes the
// same number of user instructions" — the invariant interferometry needs.

// LimiterConfig tunes the stop-procedure search.
type LimiterConfig struct {
	// Budget is the profiling instruction budget (the "two minutes").
	Budget uint64
	// MaxEntryFraction caps how frequently the chosen procedure may
	// execute, as a fraction of total profiled entries: the paper wants a
	// "procedure with a low dynamic count" so the two added instructions
	// have negligible overhead. Zero means 0.05.
	MaxEntryFraction float64
	// TailFraction requires the procedure's last profiled entry to fall in
	// the final fraction of the run ("executed near the end"). Zero means
	// 0.10.
	TailFraction float64
}

// Limiter is the chosen run-limiter: stop when StopProc has been entered
// StopCount times. Instrs records the exact retired-instruction count the
// rule reproduces.
type Limiter struct {
	StopProc  isa.ProcID
	StopCount uint64
	Instrs    uint64
}

// Rule converts the limiter to an interpreter stop rule.
func (l Limiter) Rule() interp.StopRule {
	return interp.StopRule{StopProc: l.StopProc, StopCount: l.StopCount}
}

// FindLimiter runs the profiling pass and selects the stop procedure.
// Among procedures whose entry count is positive, at most
// MaxEntryFraction of all entries, and whose most recent entry falls in
// the tail of the run, it picks the one entered latest; ties break toward
// the lower entry count. If no procedure qualifies, the tail constraint is
// progressively relaxed before giving up.
func FindLimiter(p *isa.Program, inputSeed uint64, cfg LimiterConfig) (Limiter, error) {
	if cfg.Budget == 0 {
		return Limiter{}, errors.New("toolchain: limiter needs a profiling budget")
	}
	if cfg.MaxEntryFraction <= 0 {
		cfg.MaxEntryFraction = 0.05
	}
	if cfg.TailFraction <= 0 {
		cfg.TailFraction = 0.10
	}
	prof, err := interp.Run(p, inputSeed, interp.StopRule{Budget: cfg.Budget})
	if err != nil {
		return Limiter{}, err
	}

	var total uint64
	for _, n := range prof.ProcEntries {
		total += n
	}
	if total == 0 {
		return Limiter{}, errors.New("toolchain: profile recorded no procedure entries")
	}
	// Each relaxation round doubles the permissible entry count and widens
	// the tail window; tiny programs with only a couple of procedures may
	// need several rounds before any procedure qualifies.
	for relax := 0; relax < 6; relax++ {
		maxEntries := uint64(float64(total) * cfg.MaxEntryFraction * float64(uint64(1)<<relax))
		if maxEntries == 0 {
			maxEntries = 1
		}
		tailStart := uint64(float64(prof.Instrs) * (1 - cfg.TailFraction*float64(relax+1)))
		best := -1
		for pi := range p.Procs {
			n := prof.ProcEntries[pi]
			if n == 0 || n > maxEntries {
				continue
			}
			if prof.ProcLastEntry[pi] < tailStart {
				continue
			}
			if best == -1 ||
				prof.ProcLastEntry[pi] > prof.ProcLastEntry[best] ||
				(prof.ProcLastEntry[pi] == prof.ProcLastEntry[best] && n < prof.ProcEntries[best]) {
				best = pi
			}
		}
		if best >= 0 {
			lim := Limiter{StopProc: isa.ProcID(best), StopCount: prof.ProcEntries[best]}
			// Re-run under the rule to record the exact instruction count
			// it reproduces (the "second pass").
			check, err := interp.Run(p, inputSeed, lim.Rule())
			if err != nil {
				return Limiter{}, fmt.Errorf("toolchain: limiter verification failed: %w", err)
			}
			lim.Instrs = check.Instrs
			return lim, nil
		}
	}
	return Limiter{}, fmt.Errorf("toolchain: no suitable stop procedure in %s (all %d procedures too hot or too early)",
		p.Name, len(p.Procs))
}
