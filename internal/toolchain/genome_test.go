package toolchain

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"interferometry/internal/progen"
	"interferometry/internal/xrand"
)

func genomeTestUnits(t testing.TB) ([]Unit, *Builder) {
	t.Helper()
	spec, ok := progen.ByName("429.mcf")
	if !ok {
		t.Fatalf("progen: no 429.mcf spec")
	}
	p, err := progen.Generate(spec)
	if err != nil {
		t.Fatalf("progen: %v", err)
	}
	b := NewBuilder(p, CompileConfig{}, LinkConfig{})
	return b.Units(), b
}

// GenomeOf must reproduce exactly the permutations the seeded Reorder
// applies: linking the applied genome lays out every block and procedure
// at the same address as the seed-built layout.
func TestGenomeOfMatchesReorder(t *testing.T) {
	units, b := genomeTestUnits(t)
	for _, seed := range []uint64{0, 1, 0x9e3779b97f4a7c15, 42} {
		ref, err := b.Build(seed)
		if err != nil {
			t.Fatalf("Build(%#x): %v", seed, err)
		}
		g := GenomeOf(units, seed)
		if err := g.Validate(units); err != nil {
			t.Fatalf("GenomeOf(%#x) invalid: %v", seed, err)
		}
		applied, err := ApplyGenome(units, g)
		if err != nil {
			t.Fatalf("ApplyGenome(%#x): %v", seed, err)
		}
		exe, err := Link(b.Program(), applied, seed, LinkConfig{})
		if err != nil {
			t.Fatalf("Link(%#x): %v", seed, err)
		}
		if !reflect.DeepEqual(ref.BlockAddr, exe.BlockAddr) ||
			!reflect.DeepEqual(ref.ProcAddr, exe.ProcAddr) ||
			!reflect.DeepEqual(ref.LinkOrder, exe.LinkOrder) {
			t.Fatalf("seed %#x: genome layout differs from Reorder layout", seed)
		}
	}
}

// BuildGenome stamps the executable with the genome fingerprint and
// passes the structural checks; fingerprints are even while campaign
// layout seeds are odd, so the two artifact namespaces never collide.
func TestBuildGenome(t *testing.T) {
	units, b := genomeTestUnits(t)
	g := GenomeOf(units, 7)
	fp := g.Fingerprint()
	if fp&1 != 0 {
		t.Fatalf("fingerprint %#x is odd; must be even to stay disjoint from layout seeds", fp)
	}
	exe, err := b.BuildGenome(g)
	if err != nil {
		t.Fatalf("BuildGenome: %v", err)
	}
	if exe.Seed != fp {
		t.Fatalf("exe.Seed = %#x, want fingerprint %#x", exe.Seed, fp)
	}
	if err := CheckExecutable(exe, -1); err != nil {
		t.Fatalf("CheckExecutable: %v", err)
	}
}

// The fingerprint must depend on every permutation element: any single
// mutation moves it, and a clone preserves it.
func TestGenomeFingerprintSensitivity(t *testing.T) {
	units, _ := genomeTestUnits(t)
	g := GenomeOf(units, 3)
	if got := g.Clone().Fingerprint(); got != g.Fingerprint() {
		t.Fatalf("clone fingerprint %#x != %#x", got, g.Fingerprint())
	}
	rng := xrand.New(99)
	seen := map[uint64][]byte{g.Fingerprint(): EncodeGenome(g)}
	cur := g
	for i := 0; i < 64; i++ {
		next := MutateGenome(cur, rng)
		enc := EncodeGenome(next)
		if prev, ok := seen[next.Fingerprint()]; ok && !bytes.Equal(prev, enc) {
			t.Fatalf("mutation %d: distinct genomes share fingerprint %#x", i, next.Fingerprint())
		}
		seen[next.Fingerprint()] = enc
		cur = next
	}
	if len(seen) < 8 {
		t.Fatalf("mutations barely moved the fingerprint: %d distinct values", len(seen))
	}
}

// Mutation and crossover must preserve genome validity — the closure
// property the whole search rests on.
func TestGenomeOperatorsPreserveValidity(t *testing.T) {
	units, _ := genomeTestUnits(t)
	rng := xrand.New(5)
	a, b := GenomeOf(units, 11), GenomeOf(units, 13)
	for i := 0; i < 200; i++ {
		child := CrossoverGenomes(a, b, rng)
		if err := child.Validate(units); err != nil {
			t.Fatalf("crossover %d: %v", i, err)
		}
		child = MutateGenome(child, rng)
		if err := child.Validate(units); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
		a, b = b, child
	}
}

// The codec must round-trip canonically and reject corruption: a genome
// that decodes is exactly the genome that was encoded, and a damaged
// encoding errors rather than decoding to a wrong-but-valid layout
// (the artifactcache damage policy).
func TestGenomeCodecRoundTrip(t *testing.T) {
	units, _ := genomeTestUnits(t)
	for _, seed := range []uint64{0, 1, 17, 0xdeadbeef} {
		g := GenomeOf(units, seed)
		data := EncodeGenome(g)
		got, err := DecodeGenome(data)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if !reflect.DeepEqual(got, g) {
			t.Fatalf("seed %d: round trip mutated the genome", seed)
		}
		if !bytes.Equal(EncodeGenome(got), data) {
			t.Fatalf("seed %d: re-encoding is not canonical", seed)
		}
	}
}

// Every single-bit flip of a valid encoding must fail to decode.
func TestGenomeCodecDetectsCorruption(t *testing.T) {
	units, _ := genomeTestUnits(t)
	data := EncodeGenome(GenomeOf(units, 23))
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), data...)
			bad[i] ^= 1 << bit
			if _, err := DecodeGenome(bad); err == nil {
				t.Fatalf("flip byte %d bit %d: corrupt genome decoded without error", i, bit)
			}
		}
	}
	for _, trunc := range []int{0, 7, 8, len(data) - 8, len(data) - 1} {
		if _, err := DecodeGenome(data[:trunc]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", trunc)
		}
	}
	if _, err := DecodeGenome(append(append([]byte(nil), data...), make([]byte, 8)...)); err == nil {
		t.Fatalf("trailing bytes decoded without error")
	}
}

// A cached genome build must return the identical layout, and a damaged
// cache entry must degrade to a rebuild — slower, never wrong.
func TestCachedBuildGenome(t *testing.T) {
	units, b := genomeTestUnits(t)
	cache := &mapCache{m: map[string][]byte{}}
	cb := NewCachedBuilder(b, cache)
	g := GenomeOf(units, 31)
	first, err := cb.BuildGenome(g)
	if err != nil {
		t.Fatalf("BuildGenome: %v", err)
	}
	hit, err := cb.BuildGenome(g)
	if err != nil {
		t.Fatalf("BuildGenome (cached): %v", err)
	}
	if !reflect.DeepEqual(first.BlockAddr, hit.BlockAddr) || first.Seed != hit.Seed {
		t.Fatalf("cache hit returned a different layout")
	}
	for k := range cache.m {
		cache.m[k] = []byte("garbage")
	}
	rebuilt, err := cb.BuildGenome(g)
	if err != nil {
		t.Fatalf("BuildGenome (damaged cache): %v", err)
	}
	if !reflect.DeepEqual(first.BlockAddr, rebuilt.BlockAddr) {
		t.Fatalf("damaged cache changed the layout")
	}
}

type mapCache struct{ m map[string][]byte }

func (c *mapCache) Get(key string, seed uint64) ([]byte, bool) {
	v, ok := c.m[fmt.Sprintf("%s/%d", key, seed)]
	return v, ok
}
func (c *mapCache) Put(key string, seed uint64, data []byte) {
	c.m[fmt.Sprintf("%s/%d", key, seed)] = append([]byte(nil), data...)
}

// FuzzGenomeRoundTrip drives the codec with arbitrary bytes: anything
// that decodes must be internally consistent, re-encode to the identical
// bytes (the encoding is canonical), and fingerprint deterministically.
// Anything else must error — never decode to a wrong-but-valid genome.
func FuzzGenomeRoundTrip(f *testing.F) {
	spec, ok := progen.ByName("429.mcf")
	if !ok {
		f.Fatalf("progen: no 429.mcf spec")
	}
	p, err := progen.Generate(spec)
	if err != nil {
		f.Fatalf("progen: %v", err)
	}
	units := NewBuilder(p, CompileConfig{}, LinkConfig{}).Units()
	for _, seed := range []uint64{0, 1, 42} {
		f.Add(EncodeGenome(GenomeOf(units, seed)))
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeGenome(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeGenome(g), data) {
			t.Fatalf("decoded genome does not re-encode canonically")
		}
		if g.Fingerprint() != g.Clone().Fingerprint() {
			t.Fatalf("fingerprint is not deterministic")
		}
		seen := make(map[int]bool, len(g.Units))
		for _, u := range g.Units {
			if u < 0 || u >= len(g.Units) || seen[u] {
				t.Fatalf("decoded unit order is not a permutation")
			}
			seen[u] = true
		}
	})
}
