// Package toolchain reproduces the layout-perturbation pipeline of the
// paper's Camino compiler infrastructure (§5.1, §5.3): a program is
// "compiled" once into assembly units, procedures are reordered within
// each unit, units are assembled into object files, the object files are
// pseudo-randomly reordered, and the linker lays code out "in the order in
// which it is encountered on the command line" — so every seed yields a
// different but semantically identical executable.
//
// The output of linking is an Executable: the original Program plus a
// concrete address for every block, procedure and global object. Those
// addresses are the only thing that varies between layouts, and they are
// exactly what the microarchitectural models in internal/machine hash.
package toolchain

import (
	"fmt"
	"time"

	"interferometry/internal/isa"
	"interferometry/internal/obs"
	"interferometry/internal/xrand"
)

// Stream-derivation tags for the layout PRNG.
const (
	tagProcShuffle uint64 = 0x70
	tagUnitShuffle uint64 = 0x75
)

// Unit is one compilation unit (one assembly/object file): a named group
// of procedures and the global objects whose definitions live in it.
type Unit struct {
	Name    string
	Procs   []isa.ProcID
	Globals []isa.ObjectID
}

// CompileConfig controls how a program is split into units.
type CompileConfig struct {
	// ProcsPerUnit is the target number of procedures per unit; the last
	// unit may be smaller. Zero means 8.
	ProcsPerUnit int
}

// Compile partitions a program into compilation units the way a build of
// many source files would: contiguous runs of procedures per unit, with
// each global object assigned to the unit of the first procedure that
// references it (or round-robin if unreferenced). Compile is deterministic
// and performs no randomization — perturbation happens at reorder time.
func Compile(p *isa.Program, cfg CompileConfig) []Unit {
	per := cfg.ProcsPerUnit
	if per <= 0 {
		per = 8
	}
	nUnits := (len(p.Procs) + per - 1) / per
	units := make([]Unit, nUnits)
	procUnit := make([]int, len(p.Procs))
	for i := range p.Procs {
		u := i / per
		units[u].Procs = append(units[u].Procs, isa.ProcID(i))
		procUnit[i] = u
	}
	for u := range units {
		units[u].Name = fmt.Sprintf("%s_%03d.o", p.Name, u)
	}

	// Assign globals to the unit of the first referencing procedure.
	owner := make([]int, len(p.Objects))
	for i := range owner {
		owner[i] = -1
	}
	for bi := range p.Blocks {
		b := &p.Blocks[bi]
		u := procUnit[b.Proc]
		for _, m := range b.Mems {
			for _, obj := range patternObjects(m.Pattern) {
				if !p.Objects[obj].Heap && owner[obj] == -1 {
					owner[obj] = u
				}
			}
		}
	}
	rr := 0
	for obj := range p.Objects {
		if p.Objects[obj].Heap {
			continue
		}
		u := owner[obj]
		if u == -1 {
			u = rr % nUnits
			rr++
		}
		units[u].Globals = append(units[u].Globals, isa.ObjectID(obj))
	}
	return units
}

// patternObjects lists the objects a pattern can touch.
func patternObjects(pat isa.AccessPattern) []isa.ObjectID {
	switch pt := pat.(type) {
	case isa.Stream:
		return []isa.ObjectID{pt.Object}
	case isa.RandomInObject:
		return []isa.ObjectID{pt.Object}
	case isa.PoolChase:
		return pt.Pool
	case isa.Blocked:
		return pt.Objects
	default:
		return nil
	}
}

// Reorder produces the perturbed link line for the given seed: procedures
// are shuffled within each unit and the unit order itself is permuted,
// exactly the two randomizations Camino applies (§5.3). Seed zero is
// defined as the identity layout (no perturbation), which serves as the
// "as-compiled" baseline.
func Reorder(units []Unit, seed uint64) []Unit {
	out := make([]Unit, len(units))
	for i, u := range units {
		cp := u
		cp.Procs = append([]isa.ProcID(nil), u.Procs...)
		cp.Globals = append([]isa.ObjectID(nil), u.Globals...)
		out[i] = cp
	}
	if seed == 0 {
		return out
	}
	rng := xrand.New(seed)
	for i := range out {
		pr := rng.Derive(tagProcShuffle, uint64(i))
		pr.Shuffle(len(out[i].Procs), func(a, b int) {
			out[i].Procs[a], out[i].Procs[b] = out[i].Procs[b], out[i].Procs[a]
		})
	}
	ur := rng.Derive(tagUnitShuffle)
	ur.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// LinkConfig controls address assignment.
type LinkConfig struct {
	// CodeBase is the address of the first instruction byte. Zero means
	// 0x400000 (the conventional ELF text base).
	CodeBase uint64
	// DataBase is the address of the first global data byte. Zero means
	// 0x10000000.
	DataBase uint64
	// ProcAlign aligns procedure entry points. Zero means 16.
	ProcAlign uint64
	// FetchAlign aligns branch-target blocks to fetch-block boundaries,
	// the compiler heuristic described in §4.1. Zero disables it.
	FetchAlign uint64
	// GlobalAlign aligns each global object. Zero means 64 (a cache line).
	GlobalAlign uint64
}

func (c *LinkConfig) fillDefaults() {
	if c.CodeBase == 0 {
		c.CodeBase = 0x400000
	}
	if c.DataBase == 0 {
		c.DataBase = 0x10000000
	}
	if c.ProcAlign == 0 {
		c.ProcAlign = 16
	}
	if c.GlobalAlign == 0 {
		c.GlobalAlign = 64
	}
}

// Executable is a linked program: the layout-free Program plus concrete
// addresses. It is the unit of measurement in an interferometry campaign —
// "each combined executable is like a single telescope" (§4.3).
type Executable struct {
	Program *isa.Program
	// Seed is the layout seed that produced this executable.
	Seed uint64
	// BlockAddr is the address of each block's first instruction byte.
	BlockAddr []uint64
	// ProcAddr is the entry address of each procedure.
	ProcAddr []uint64
	// GlobalBase is the base address of each non-heap object (zero for
	// heap objects, which are placed by the allocator at run time).
	GlobalBase []uint64
	// CodeBase/CodeLimit bound the text segment; DataBase/DataLimit bound
	// the global data segment.
	CodeBase, CodeLimit uint64
	DataBase, DataLimit uint64
	// LinkOrder is the final procedure layout order.
	LinkOrder []isa.ProcID
}

// Link lays out the reordered units into an executable. Within a unit,
// procedures appear in their (already shuffled) unit order; within a
// procedure, blocks keep program order, since basic-block order inside a
// procedure is fixed by its control flow.
func Link(p *isa.Program, units []Unit, seed uint64, cfg LinkConfig) (*Executable, error) {
	cfg.fillDefaults()
	exe := &Executable{
		Program:    p,
		Seed:       seed,
		BlockAddr:  make([]uint64, len(p.Blocks)),
		ProcAddr:   make([]uint64, len(p.Procs)),
		GlobalBase: make([]uint64, len(p.Objects)),
		CodeBase:   cfg.CodeBase,
		DataBase:   cfg.DataBase,
	}

	seenProc := make([]bool, len(p.Procs))
	addr := cfg.CodeBase
	for _, u := range units {
		for _, pid := range u.Procs {
			if int(pid) >= len(p.Procs) {
				return nil, fmt.Errorf("toolchain: unit %q references missing procedure %d", u.Name, pid)
			}
			if seenProc[pid] {
				return nil, fmt.Errorf("toolchain: procedure %d appears in multiple units", pid)
			}
			seenProc[pid] = true
			addr = align(addr, cfg.ProcAlign)
			exe.ProcAddr[pid] = addr
			proc := &p.Procs[pid]
			for _, bid := range proc.Blocks {
				if cfg.FetchAlign > 1 && isBranchTarget(p, bid) {
					addr = align(addr, cfg.FetchAlign)
				}
				exe.BlockAddr[bid] = addr
				addr += uint64(p.Blocks[bid].Bytes)
			}
			exe.LinkOrder = append(exe.LinkOrder, pid)
		}
	}
	for i, seen := range seenProc {
		if !seen {
			return nil, fmt.Errorf("toolchain: procedure %d (%s) missing from link line", i, p.Procs[i].Name)
		}
	}
	exe.CodeLimit = addr

	daddr := cfg.DataBase
	seenObj := make([]bool, len(p.Objects))
	for _, u := range units {
		for _, obj := range u.Globals {
			if int(obj) >= len(p.Objects) {
				return nil, fmt.Errorf("toolchain: unit %q references missing object %d", u.Name, obj)
			}
			if p.Objects[obj].Heap {
				return nil, fmt.Errorf("toolchain: heap object %d in unit global list", obj)
			}
			if seenObj[obj] {
				return nil, fmt.Errorf("toolchain: object %d appears in multiple units", obj)
			}
			seenObj[obj] = true
			daddr = align(daddr, cfg.GlobalAlign)
			exe.GlobalBase[obj] = daddr
			daddr += p.Objects[obj].Size
		}
	}
	for i := range p.Objects {
		if !p.Objects[i].Heap && !seenObj[i] {
			return nil, fmt.Errorf("toolchain: global object %d missing from all units", i)
		}
	}
	exe.DataLimit = daddr
	return exe, nil
}

// Builder compiles a program once and links arbitrarily many layouts from
// the shared units. Compilation is layout-independent, so a campaign that
// measures hundreds of layouts should pay for it exactly once; only the
// Reorder+Link steps depend on the seed. Reorder copies the shared units
// before shuffling, so a Builder is safe for concurrent Build calls from
// many workers.
type Builder struct {
	prog    *isa.Program
	units   []Unit
	lcfg    LinkConfig
	metrics *BuilderMetrics
}

// BuilderMetrics are the builder's observability instruments, resolved
// by the caller (internal/core builds them from its obs registry). Any
// field — or the whole struct — may be nil.
type BuilderMetrics struct {
	// Builds counts Build calls.
	Builds *obs.Counter
	// BuildSeconds is the reorder+link latency distribution.
	BuildSeconds *obs.Histogram
}

// Observe attaches metrics to the builder. Call before sharing the
// builder across workers: Build reads the pointer without a lock.
func (b *Builder) Observe(m *BuilderMetrics) { b.metrics = m }

// NewBuilder compiles the program and returns a Builder that links layouts
// from the shared compilation.
func NewBuilder(p *isa.Program, ccfg CompileConfig, lcfg LinkConfig) *Builder {
	return &Builder{prog: p, units: Compile(p, ccfg), lcfg: lcfg}
}

// Program returns the program the builder compiles.
func (b *Builder) Program() *isa.Program { return b.prog }

// Build links the layout for one seed. The result is bit-identical to
// BuildLayout with the same program, seed and configs.
func (b *Builder) Build(seed uint64) (*Executable, error) {
	if m := b.metrics; m != nil {
		t0 := time.Now()
		exe, err := Link(b.prog, Reorder(b.units, seed), seed, b.lcfg)
		m.BuildSeconds.Observe(time.Since(t0).Seconds())
		m.Builds.Inc()
		return exe, err
	}
	return Link(b.prog, Reorder(b.units, seed), seed, b.lcfg)
}

// BuildLayout is the convenience pipeline: compile once, reorder with the
// seed, link. It is what one-shot callers use; campaign code holds a
// Builder so the compile is shared across all layouts.
func BuildLayout(p *isa.Program, seed uint64, ccfg CompileConfig, lcfg LinkConfig) (*Executable, error) {
	return NewBuilder(p, ccfg, lcfg).Build(seed)
}

// CheckExecutable validates the structural invariants a linked
// executable must satisfy: every block and procedure address lies inside
// the text segment, every non-heap global lies inside the data segment,
// and the link order covers each procedure exactly once. Link upholds all
// of these by construction; the check exists for the campaign
// supervisor, which revalidates executables at the build seam so that a
// corrupted build (fault injection in tests, bit rot or a future buggy
// layout transform in production) is caught and retried instead of
// silently measured. layout is the campaign layout index (negative for
// "not part of a campaign"); it and the executable's layout seed are
// embedded in every message so a failed invariant is reproducible from
// the error string alone.
func CheckExecutable(e *Executable, layout int) error {
	if e == nil || e.Program == nil {
		return fmt.Errorf("toolchain: %s: nil executable", layoutRef(layout, 0))
	}
	ref := layoutRef(layout, e.Seed)
	p := e.Program
	if len(e.BlockAddr) != len(p.Blocks) || len(e.ProcAddr) != len(p.Procs) || len(e.GlobalBase) != len(p.Objects) {
		return fmt.Errorf("toolchain: %s: executable tables do not match program shape", ref)
	}
	if e.CodeLimit < e.CodeBase || e.DataLimit < e.DataBase {
		return fmt.Errorf("toolchain: %s: inverted segment bounds", ref)
	}
	for id := range p.Blocks {
		addr := e.BlockAddr[id]
		if addr < e.CodeBase || addr+uint64(p.Blocks[id].Bytes) > e.CodeLimit {
			return fmt.Errorf("toolchain: %s: block %d at %#x outside text segment [%#x,%#x)", ref, id, addr, e.CodeBase, e.CodeLimit)
		}
	}
	for id := range p.Procs {
		if a := e.ProcAddr[id]; a < e.CodeBase || a >= e.CodeLimit {
			return fmt.Errorf("toolchain: %s: procedure %d at %#x outside text segment", ref, id, a)
		}
	}
	for id := range p.Objects {
		if p.Objects[id].Heap {
			continue
		}
		base := e.GlobalBase[id]
		if base < e.DataBase || base+p.Objects[id].Size > e.DataLimit {
			return fmt.Errorf("toolchain: %s: global %d at %#x outside data segment", ref, id, base)
		}
	}
	if len(e.LinkOrder) != len(p.Procs) {
		return fmt.Errorf("toolchain: %s: link order covers %d of %d procedures", ref, len(e.LinkOrder), len(p.Procs))
	}
	seen := make([]bool, len(p.Procs))
	for _, pid := range e.LinkOrder {
		if int(pid) >= len(seen) || seen[pid] {
			return fmt.Errorf("toolchain: %s: link order repeats or exceeds procedure %d", ref, pid)
		}
		seen[pid] = true
	}
	return nil
}

// layoutRef renders the (layout index, layout seed) identity used in
// CheckExecutable messages.
func layoutRef(layout int, seed uint64) string {
	if layout < 0 {
		return fmt.Sprintf("layout seed %#x", seed)
	}
	return fmt.Sprintf("layout %d (layout seed %#x)", layout, seed)
}

// isBranchTarget reports whether any terminator in the block's procedure
// targets it (the alignment heuristic only applies to explicit targets,
// not fallthrough successors).
func isBranchTarget(p *isa.Program, bid isa.BlockID) bool {
	proc := &p.Procs[p.Blocks[bid].Proc]
	for _, other := range proc.Blocks {
		t := &p.Blocks[other].Term
		switch t.Kind {
		case isa.TermCondBranch, isa.TermJump:
			if t.Target == bid {
				return true
			}
		}
	}
	return false
}

func align(addr, a uint64) uint64 {
	if a <= 1 {
		return addr
	}
	return (addr + a - 1) &^ (a - 1)
}

// BlockEnd returns one past the last code byte of the block.
func (e *Executable) BlockEnd(id isa.BlockID) uint64 {
	return e.BlockAddr[id] + uint64(e.Program.Blocks[id].Bytes)
}

// TermAddr returns the address of the block's terminator instruction,
// approximated as the last 4 bytes of the block. This is the PC the branch
// predictor and BTB hash.
func (e *Executable) TermAddr(id isa.BlockID) uint64 {
	end := e.BlockEnd(id)
	if end >= 4 {
		return end - 4
	}
	return end
}

// CodeBytes returns the linked text size including alignment padding.
func (e *Executable) CodeBytes() uint64 { return e.CodeLimit - e.CodeBase }
