package interp_test

import (
	"reflect"
	"testing"

	"interferometry/internal/interp"
	"interferometry/internal/isa"
	"interferometry/internal/testprog"
)

func TestRunCountingExactTrace(t *testing.T) {
	// Counting(3): b0 executes 3 times per loop instance (5 instrs each),
	// then b1 (2 instrs), then main restarts.
	p := testprog.Counting(3)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 17})
	if err != nil {
		t.Fatal(err)
	}
	// Sequence: b0(5) b0(10) b0(15) b1(17) -> budget reached exactly.
	want := []isa.BlockID{0, 0, 0, 1}
	if !reflect.DeepEqual(tr.BlockSeq, want) {
		t.Fatalf("BlockSeq = %v, want %v", tr.BlockSeq, want)
	}
	if tr.Instrs != 17 {
		t.Fatalf("Instrs = %d, want 17", tr.Instrs)
	}
	if tr.CondBranches != 3 || tr.TakenBranches != 2 {
		t.Fatalf("branches %d taken %d, want 3/2", tr.CondBranches, tr.TakenBranches)
	}
	if !tr.Taken(0) || !tr.Taken(1) || tr.Taken(2) {
		t.Fatal("taken bits should be T,T,N")
	}
	if tr.StoppedBy != interp.StopBudget {
		t.Fatalf("StoppedBy = %v", tr.StoppedBy)
	}
	if tr.Returns != 1 {
		t.Fatalf("Returns = %d, want 1", tr.Returns)
	}
}

func TestRunStopsAtBlockBoundary(t *testing.T) {
	p := testprog.Counting(3)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 6})
	if err != nil {
		t.Fatal(err)
	}
	// First block retires 5 < 6, second reaches 10 >= 6.
	if tr.Instrs != 10 {
		t.Fatalf("Instrs = %d, want 10 (whole blocks only)", tr.Instrs)
	}
}

func TestRunDeterminism(t *testing.T) {
	p := testprog.Branchy()
	a, err := interp.Run(p, 42, interp.StopRule{Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(p, 42, interp.StopRule{Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.BlockSeq, b.BlockSeq) {
		t.Error("block sequences differ between identical runs")
	}
	if !reflect.DeepEqual(a.TakenBits, b.TakenBits) {
		t.Error("branch outcomes differ between identical runs")
	}
	if !reflect.DeepEqual(a.IndirectSel, b.IndirectSel) {
		t.Error("indirect selections differ between identical runs")
	}
	if a.Instrs != b.Instrs {
		t.Error("instruction counts differ between identical runs")
	}
}

func TestRunInputSeedChangesBehaviour(t *testing.T) {
	p := testprog.Branchy()
	a, err := interp.Run(p, 1, interp.StopRule{Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Run(p, 2, interp.StopRule{Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.TakenBits, b.TakenBits) {
		t.Error("different input seeds should perturb stochastic branches")
	}
}

func TestRunCallChain(t *testing.T) {
	p := testprog.CallChain(4)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 200})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Calls == 0 {
		t.Fatal("no calls recorded")
	}
	// Each loop iteration: b0 (call), b3 (helper), b1 (cond). Helper
	// entered once per iteration.
	if tr.ProcEntries[1] != tr.Calls {
		t.Fatalf("helper entries %d != calls %d", tr.ProcEntries[1], tr.Calls)
	}
	// Block sequence alternates b0, b3, b1.
	for i := 0; i+2 < len(tr.BlockSeq); i += 3 {
		if tr.BlockSeq[i] != 0 || tr.BlockSeq[i+1] != 3 {
			// Loop exit path inserts b2 and a restart; just check the
			// first two iterations strictly.
			if i < 6 {
				t.Fatalf("unexpected sequence at %d: %v", i, tr.BlockSeq[:9])
			}
			break
		}
	}
}

func TestRunStopProcCount(t *testing.T) {
	p := testprog.CallChain(4)
	tr, err := interp.Run(p, 1, interp.StopRule{StopProc: 1, StopCount: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ProcEntries[1] != 7 {
		t.Fatalf("helper entries = %d, want exactly 7", tr.ProcEntries[1])
	}
	if tr.StoppedBy != interp.StopProcCount {
		t.Fatalf("StoppedBy = %v", tr.StoppedBy)
	}

	// The run-limiter guarantee: the same stop rule retires the same
	// instruction count on every run (and for every layout, since layout
	// is not an input at all).
	tr2, err := interp.Run(p, 1, interp.StopRule{StopProc: 1, StopCount: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instrs != tr2.Instrs {
		t.Fatalf("run-limited instruction counts differ: %d vs %d", tr.Instrs, tr2.Instrs)
	}
}

func TestRunStopProcNeverReached(t *testing.T) {
	p := testprog.CallChain(2)
	// Procedure 0 is main: it is entered once at startup; ask for an
	// impossible count on a procedure that is never re-entered... main is
	// re-entered on restart, so use a count that cannot be reached within
	// the cap by pointing at a proc with no calls. Here every proc is
	// reachable, so instead verify the error path with a huge count via a
	// tiny budget-derived cap.
	_, err := interp.Run(p, 1, interp.StopRule{Budget: 10, StopProc: 1, StopCount: 1 << 40})
	if err == nil {
		t.Fatal("expected error when stop count is unreachable")
	}
}

func TestRunMemoryEvents(t *testing.T) {
	p := testprog.Memory(5)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.MemObj) != len(tr.MemOff) {
		t.Fatal("mem streams out of sync")
	}
	if len(tr.MemObj) == 0 {
		t.Fatal("no memory events recorded")
	}
	// Prologue allocates objects 1-4 before any pool access.
	if len(tr.AllocObj) < 4 {
		t.Fatalf("expected prologue allocations, got %d", len(tr.AllocObj))
	}
	for i := 0; i < 4; i++ {
		if tr.AllocObj[i] != isa.ObjectID(i+1) || tr.AllocKind[i] != isa.AllocNew {
			t.Fatalf("prologue alloc %d = (%d,%d)", i, tr.AllocObj[i], tr.AllocKind[i])
		}
	}
	// Every accessed heap object must have an allocation at or before its
	// first access. Walk blocks consuming events like a replayer.
	live := map[isa.ObjectID]bool{}
	cur := tr.NewCursor()
	for {
		id, ok := cur.NextBlock()
		if !ok {
			break
		}
		b := &p.Blocks[id]
		for range b.Allocs {
			obj, kind := cur.NextAlloc()
			if kind == isa.AllocNew {
				live[obj] = true
			} else {
				delete(live, obj)
			}
		}
		for range b.Mems {
			obj, _ := cur.NextMem()
			if p.Objects[obj].Heap && !live[obj] {
				t.Fatalf("access to heap object %d before allocation", obj)
			}
		}
	}
}

func TestRunRejectsInvalidProgram(t *testing.T) {
	p := testprog.Counting(3)
	p.Blocks[0].Bytes = 0
	if _, err := interp.Run(p, 1, interp.StopRule{Budget: 10}); err == nil {
		t.Fatal("invalid program accepted")
	}
}

func TestRunRejectsEmptyStopRule(t *testing.T) {
	if _, err := interp.Run(testprog.Counting(3), 1, interp.StopRule{}); err == nil {
		t.Fatal("empty stop rule accepted")
	}
}

func TestRunRejectsBadStopProc(t *testing.T) {
	if _, err := interp.Run(testprog.Counting(3), 1, interp.StopRule{StopProc: 9, StopCount: 1}); err == nil {
		t.Fatal("out-of-range stop proc accepted")
	}
}

func TestCursorConsumesWholeTrace(t *testing.T) {
	p := testprog.Branchy()
	tr, err := interp.Run(p, 3, interp.StopRule{Budget: 3000})
	if err != nil {
		t.Fatal(err)
	}
	cur := tr.NewCursor()
	blocks, conds, inds := 0, uint64(0), 0
	for {
		id, ok := cur.NextBlock()
		if !ok {
			break
		}
		blocks++
		b := &p.Blocks[id]
		switch b.Term.Kind {
		case isa.TermCondBranch:
			cur.NextTaken()
			conds++
		case isa.TermIndirectCall:
			cur.NextIndirect()
			inds++
		}
	}
	if blocks != len(tr.BlockSeq) {
		t.Errorf("cursor saw %d blocks, trace has %d", blocks, len(tr.BlockSeq))
	}
	if conds != tr.CondBranches {
		t.Errorf("cursor saw %d cond branches, trace says %d", conds, tr.CondBranches)
	}
	if uint64(inds) != tr.IndirectCalls {
		t.Errorf("cursor saw %d indirect calls, trace says %d", inds, tr.IndirectCalls)
	}
}

func TestPeekBlock(t *testing.T) {
	p := testprog.Counting(2)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 12})
	if err != nil {
		t.Fatal(err)
	}
	cur := tr.NewCursor()
	first, ok := cur.PeekBlock()
	if !ok {
		t.Fatal("peek at start failed")
	}
	got, _ := cur.NextBlock()
	if got != first {
		t.Fatal("peek and next disagree")
	}
}

func TestMPKIUpperBound(t *testing.T) {
	p := testprog.Counting(3)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 17})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(tr.CondBranches) / float64(tr.Instrs) * 1000
	if got := tr.MPKIUpperBound(); got != want {
		t.Fatalf("MPKIUpperBound = %v, want %v", got, want)
	}
}

func TestInstrsMatchBlockSum(t *testing.T) {
	p := testprog.Branchy()
	tr, err := interp.Run(p, 9, interp.StopRule{Budget: 4000})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, id := range tr.BlockSeq {
		sum += uint64(p.Blocks[id].NInstr())
	}
	if sum != tr.Instrs {
		t.Fatalf("block-sum %d != Instrs %d", sum, tr.Instrs)
	}
}

func TestStopReasonString(t *testing.T) {
	if interp.StopBudget.String() != "budget" || interp.StopProcCount.String() != "proc-count" {
		t.Error("StopReason strings wrong")
	}
	if interp.StopReason(9).String() == "" {
		t.Error("unknown StopReason should still render")
	}
}

func TestComputeFootprint(t *testing.T) {
	p := testprog.Memory(50)
	tr, err := interp.Run(p, 1, interp.StopRule{Budget: 5000})
	if err != nil {
		t.Fatal(err)
	}
	fp := tr.ComputeFootprint()
	if fp.BlocksExecuted == 0 || fp.BlocksExecuted > len(p.Blocks) {
		t.Errorf("BlocksExecuted = %d of %d static", fp.BlocksExecuted, len(p.Blocks))
	}
	if fp.HotCodeBytes == 0 || fp.HotCodeBytes > p.CodeBytes() {
		t.Errorf("HotCodeBytes = %d of %d static", fp.HotCodeBytes, p.CodeBytes())
	}
	if fp.ObjectsTouched == 0 || fp.ObjectsTouched > len(p.Objects) {
		t.Errorf("ObjectsTouched = %d of %d", fp.ObjectsTouched, len(p.Objects))
	}
	if fp.DataGranules == 0 {
		t.Error("no data granules recorded")
	}
	// The global 4KB array is stream-swept, so its 64 granules appear.
	if fp.DataBytes() < 4096 {
		t.Errorf("data footprint %d below the swept global array", fp.DataBytes())
	}
	// Footprint is a pure function of the trace.
	if tr.ComputeFootprint() != fp {
		t.Error("footprint not deterministic")
	}
}
