package interp

import (
	"errors"
	"fmt"

	"interferometry/internal/isa"
	"interferometry/internal/xrand"
)

// Stream-derivation tags for the per-site PRNGs, so branch, memory and
// allocation sites never share random state.
const (
	tagBranch uint64 = 0x42
	tagMem    uint64 = 0x4d
	tagAlloc  uint64 = 0x41
)

// Run executes the program with the given input seed until the stop rule
// fires and returns the recorded trace. Execution is deterministic: the
// same (program, inputSeed, stop) triple always yields an identical trace,
// and nothing about code or data layout is consulted — the semantic
// invariance at the heart of interferometry.
func Run(p *isa.Program, inputSeed uint64, stop StopRule) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if stop.Budget == 0 && stop.StopCount == 0 {
		return nil, errors.New("interp: stop rule has neither budget nor proc count")
	}
	if stop.StopCount > 0 && int(stop.StopProc) >= len(p.Procs) {
		return nil, fmt.Errorf("interp: stop procedure %d out of range", stop.StopProc)
	}

	st := newSiteState(p, inputSeed)
	tr := &Trace{
		Program:       p,
		InputSeed:     inputSeed,
		ProcEntries:   make([]uint64, len(p.Procs)),
		ProcLastEntry: make([]uint64, len(p.Procs)),
	}

	var stack []isa.BlockID
	enterProc := func(id isa.ProcID) {
		tr.ProcEntries[id]++
		tr.ProcLastEntry[id] = tr.Instrs
	}

	pc := p.Procs[p.Main].Entry()
	enterProc(p.Main)

	// Hard cap guards against pathological programs whose stop rule never
	// fires (e.g. a stop procedure that is never called).
	maxInstrs := stop.Budget * 64
	if maxInstrs == 0 {
		maxInstrs = 1 << 34
	}

	for {
		b := &p.Blocks[pc]
		tr.BlockSeq = append(tr.BlockSeq, pc)
		tr.Instrs += uint64(b.NInstr())

		// Memory accesses.
		if len(b.Mems) > 0 {
			ms := st.memStates[pc]
			for i := range b.Mems {
				obj, off := b.Mems[i].Pattern.Next(&ms[i])
				tr.MemObj = append(tr.MemObj, obj)
				tr.MemOff = append(tr.MemOff, uint32(off))
			}
		}
		// Allocation events.
		if len(b.Allocs) > 0 {
			rng := st.allocRngs[pc]
			for i := range b.Allocs {
				a := &b.Allocs[i]
				obj := a.Pool[0]
				if len(a.Pool) > 1 {
					obj = a.Pool[rng.Intn(len(a.Pool))]
				}
				tr.AllocObj = append(tr.AllocObj, obj)
				tr.AllocKind = append(tr.AllocKind, a.Kind)
			}
		}

		// Terminator.
		next := pc + 1
		switch b.Term.Kind {
		case isa.TermFallthrough:
			// next already correct.
		case isa.TermCondBranch:
			ctx := &st.branchCtxs[pc]
			taken := b.Term.Behavior.Next(ctx)
			ctx.Count++
			*ctx.History = *ctx.History<<1 | boolBit(taken)
			tr.appendTaken(taken)
			if taken {
				next = b.Term.Target
			}
		case isa.TermJump:
			next = b.Term.Target
		case isa.TermCall:
			tr.Calls++
			stack = append(stack, pc+1)
			next = p.Procs[b.Term.Callee].Entry()
			enterProc(b.Term.Callee)
		case isa.TermIndirectCall:
			tr.IndirectCalls++
			ctx := &st.branchCtxs[pc]
			idx := b.Term.Behavior.Select(ctx, len(b.Term.Callees))
			ctx.Count++
			callee := b.Term.Callees[idx]
			tr.IndirectSel = append(tr.IndirectSel, uint8(idx))
			stack = append(stack, pc+1)
			next = p.Procs[callee].Entry()
			enterProc(callee)
		case isa.TermReturn:
			tr.Returns++
			if len(stack) > 0 {
				next = stack[len(stack)-1]
				stack = stack[:len(stack)-1]
			} else {
				// Main returned: the harness immediately re-invokes it, so
				// a benchmark's steady-state loop may live in main itself.
				next = p.Procs[p.Main].Entry()
				enterProc(p.Main)
			}
		}

		// Stop checks run at block boundaries only, so the set of retired
		// instructions is always a whole number of blocks.
		if stop.StopCount > 0 {
			if tr.ProcEntries[stop.StopProc] >= stop.StopCount {
				tr.StoppedBy = StopProcCount
				return tr, nil
			}
			if tr.Instrs >= maxInstrs {
				return nil, fmt.Errorf("interp: stop procedure %q never reached count %d after %d instructions",
					p.Procs[stop.StopProc].Name, stop.StopCount, tr.Instrs)
			}
		} else if tr.Instrs >= stop.Budget {
			tr.StoppedBy = StopBudget
			return tr, nil
		}
		pc = next
	}
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// siteState holds the per-static-site mutable state of one execution.
type siteState struct {
	history    uint64
	branchCtxs []isa.BehaviorCtx
	memStates  map[isa.BlockID][]isa.PatternState
	allocRngs  map[isa.BlockID]*xrand.Rand
}

func newSiteState(p *isa.Program, inputSeed uint64) *siteState {
	st := &siteState{
		branchCtxs: make([]isa.BehaviorCtx, len(p.Blocks)),
		memStates:  make(map[isa.BlockID][]isa.PatternState),
		allocRngs:  make(map[isa.BlockID]*xrand.Rand),
	}
	for id := range p.Blocks {
		b := &p.Blocks[id]
		bid := isa.BlockID(id)
		switch b.Term.Kind {
		case isa.TermCondBranch, isa.TermIndirectCall:
			st.branchCtxs[id] = isa.BehaviorCtx{
				Rand:    xrand.New(xrand.Mix(p.Seed, inputSeed, uint64(id), tagBranch)),
				History: &st.history,
			}
		}
		if len(b.Mems) > 0 {
			states := make([]isa.PatternState, len(b.Mems))
			for i := range states {
				states[i].Rand = xrand.New(xrand.Mix(p.Seed, inputSeed, uint64(id), uint64(i), tagMem))
			}
			st.memStates[bid] = states
		}
		if len(b.Allocs) > 0 {
			st.allocRngs[bid] = xrand.New(xrand.Mix(p.Seed, inputSeed, uint64(id), tagAlloc))
		}
	}
	return st
}
