// Package interp executes isa.Programs and records their behaviour as
// layout-independent traces.
//
// A Trace captures everything about one run that is invariant across code
// and data layouts: the sequence of basic blocks executed, every
// conditional-branch outcome, every indirect-call selection, every memory
// access as an (object, offset) pair, and every allocation event. The
// timing models in internal/machine and the predictor instrumentation in
// internal/pintool replay traces against a concrete layout — this mirrors
// the paper's separation between a program's semantics (identical in all
// perturbed executables, §4) and the address-dependent microarchitectural
// events those executables suffer.
package interp

import (
	"fmt"

	"interferometry/internal/isa"
)

// Trace is the recorded behaviour of one program execution.
type Trace struct {
	Program   *isa.Program
	InputSeed uint64

	// BlockSeq is the executed block sequence.
	BlockSeq []isa.BlockID
	// TakenBits records conditional-branch outcomes in execution order,
	// bit-packed LSB-first within each word.
	TakenBits []uint64
	// IndirectSel records the selected target index of each indirect call
	// in execution order.
	IndirectSel []uint8
	// MemObj/MemOff are the object and byte offset of each memory access
	// in execution order; a block execution consumes len(block.Mems)
	// consecutive entries.
	MemObj []isa.ObjectID
	MemOff []uint32
	// AllocObj/AllocKind are allocation events in execution order; a block
	// execution consumes len(block.Allocs) consecutive entries.
	AllocObj  []isa.ObjectID
	AllocKind []isa.AllocKind

	// Instrs is the total number of retired instructions.
	Instrs uint64
	// CondBranches and TakenBranches count dynamic conditional branches.
	CondBranches  uint64
	TakenBranches uint64
	// Calls, IndirectCalls and Returns count control transfers.
	Calls, IndirectCalls, Returns uint64

	// ProcEntries counts entries per procedure; ProcLastEntry records the
	// retired-instruction index of each procedure's most recent entry.
	// Both feed the Camino-style run-limiter instrumentation (§5.7).
	ProcEntries   []uint64
	ProcLastEntry []uint64

	// StoppedBy describes which stop rule ended the run.
	StoppedBy StopReason
}

// StopReason says why trace generation ended.
type StopReason uint8

// Stop reasons.
const (
	// StopBudget means the instruction budget was exhausted.
	StopBudget StopReason = iota
	// StopProcCount means the designated procedure reached its entry count
	// (run-limiter semantics).
	StopProcCount
)

func (r StopReason) String() string {
	switch r {
	case StopBudget:
		return "budget"
	case StopProcCount:
		return "proc-count"
	default:
		return fmt.Sprintf("StopReason(%d)", uint8(r))
	}
}

// StopRule tells Run when to end execution. Exactly one mechanism applies:
// if StopCount > 0 the run ends when procedure StopProc has been entered
// StopCount times; otherwise it ends at the first block boundary at or
// beyond Budget retired instructions.
type StopRule struct {
	Budget    uint64
	StopProc  isa.ProcID
	StopCount uint64
}

// appendTaken records one conditional outcome.
func (t *Trace) appendTaken(taken bool) {
	bit := t.CondBranches & 63
	if bit == 0 {
		t.TakenBits = append(t.TakenBits, 0)
	}
	if taken {
		t.TakenBits[len(t.TakenBits)-1] |= 1 << bit
	}
	t.CondBranches++
	if taken {
		t.TakenBranches++
	}
}

// Taken returns the outcome of the i-th dynamic conditional branch.
func (t *Trace) Taken(i uint64) bool {
	return t.TakenBits[i>>6]>>(i&63)&1 == 1
}

// MemAccesses returns the number of recorded memory accesses.
func (t *Trace) MemAccesses() int { return len(t.MemObj) }

// MPKIUpperBound returns dynamic conditional branches per 1000
// instructions — the misprediction rate a predictor that always guesses
// wrong would achieve.
func (t *Trace) MPKIUpperBound() float64 {
	if t.Instrs == 0 {
		return 0
	}
	return float64(t.CondBranches) / float64(t.Instrs) * 1000
}

// Cursor iterates a trace for replay: the machine and pintool walk blocks
// and consume the per-block event streams through it.
type Cursor struct {
	t        *Trace
	blockIdx int
	condIdx  uint64
	indIdx   int
	memIdx   int
	allocIdx int
}

// NewCursor returns a cursor positioned at the start of the trace.
func (t *Trace) NewCursor() *Cursor { return &Cursor{t: t} }

// Cursor returns a cursor value positioned at the start of the trace. Hot
// replay loops use it to keep the cursor on the caller's stack.
func (t *Trace) Cursor() Cursor { return Cursor{t: t} }

// NextBlock returns the next executed block ID, or false at end of trace.
func (c *Cursor) NextBlock() (isa.BlockID, bool) {
	if c.blockIdx >= len(c.t.BlockSeq) {
		return 0, false
	}
	id := c.t.BlockSeq[c.blockIdx]
	c.blockIdx++
	return id, true
}

// PeekBlock returns the block that will be executed after the current one,
// without advancing. ok is false at the end of the trace.
func (c *Cursor) PeekBlock() (isa.BlockID, bool) {
	if c.blockIdx >= len(c.t.BlockSeq) {
		return 0, false
	}
	return c.t.BlockSeq[c.blockIdx], true
}

// NextTaken consumes one conditional-branch outcome.
func (c *Cursor) NextTaken() bool {
	v := c.t.Taken(c.condIdx)
	c.condIdx++
	return v
}

// NextIndirect consumes one indirect-call selection.
func (c *Cursor) NextIndirect() int {
	v := int(c.t.IndirectSel[c.indIdx])
	c.indIdx++
	return v
}

// NextMem consumes one memory access.
func (c *Cursor) NextMem() (isa.ObjectID, uint32) {
	obj, off := c.t.MemObj[c.memIdx], c.t.MemOff[c.memIdx]
	c.memIdx++
	return obj, off
}

// NextAlloc consumes one allocation event.
func (c *Cursor) NextAlloc() (isa.ObjectID, isa.AllocKind) {
	obj, kind := c.t.AllocObj[c.allocIdx], c.t.AllocKind[c.allocIdx]
	c.allocIdx++
	return obj, kind
}

// Footprint summarizes the working set a trace touches, independent of
// any layout: distinct executed blocks and their code bytes (the hot code
// footprint the L1I sees) and distinct 64-byte data granules per object
// (the data footprint the L1D/L2 see). Campaign calibration uses it to
// judge where a benchmark's working set sits relative to the cache
// hierarchy.
type Footprint struct {
	// BlocksExecuted is the number of distinct static blocks executed;
	// HotCodeBytes is their total code size.
	BlocksExecuted int
	HotCodeBytes   uint64
	// DataGranules is the number of distinct (object, 64-byte granule)
	// pairs accessed; DataBytes is that count times 64.
	DataGranules int
	// ObjectsTouched is the number of distinct objects accessed.
	ObjectsTouched int
}

// DataBytes returns the data footprint in bytes.
func (f Footprint) DataBytes() uint64 { return uint64(f.DataGranules) * 64 }

// ComputeFootprint walks the trace once and returns its footprint.
func (t *Trace) ComputeFootprint() Footprint {
	var fp Footprint
	seenBlock := make(map[isa.BlockID]bool)
	for _, bid := range t.BlockSeq {
		if !seenBlock[bid] {
			seenBlock[bid] = true
			fp.HotCodeBytes += uint64(t.Program.Blocks[bid].Bytes)
		}
	}
	fp.BlocksExecuted = len(seenBlock)
	seenData := make(map[uint64]bool)
	seenObj := make(map[isa.ObjectID]bool)
	for i := range t.MemObj {
		seenObj[t.MemObj[i]] = true
		key := uint64(t.MemObj[i])<<40 | uint64(t.MemOff[i]>>6)
		seenData[key] = true
	}
	fp.DataGranules = len(seenData)
	fp.ObjectsTouched = len(seenObj)
	return fp
}
