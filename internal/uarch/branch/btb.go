package branch

import "fmt"

// BTB is a set-associative branch target buffer, used for indirect calls
// and jumps: "a branch target buffer (BTB) or indirect branch predictor
// would use lower-order bits of the branch address to index a table of
// branch targets" (§4.1). A lookup that misses, or hits with a stale
// target, costs a misprediction.
type BTB struct {
	sets, ways int
	setMask    uint64
	tags       []uint64
	targets    []uint64
	valid      []bool
	order      []uint8

	hits, misses, wrongTarget uint64
}

// NewBTB builds a BTB with the given geometry (both powers of two... ways
// may be any positive count).
func NewBTB(sets, ways int) *BTB {
	checkPow2(sets, "BTB sets")
	if ways <= 0 {
		panic("branch: BTB ways must be positive")
	}
	b := &BTB{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*ways),
		targets: make([]uint64, sets*ways),
		valid:   make([]bool, sets*ways),
		order:   make([]uint8, sets*ways),
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < ways; w++ {
			b.order[s*ways+w] = uint8(w)
		}
	}
	return b
}

// Predict looks up the target for the transfer at pc, then installs or
// corrects the entry with the actual target. It returns true when the
// predicted target matched actual (a correct prediction).
func (b *BTB) Predict(pc, actual uint64) bool {
	h := hashPC(pc)
	set := int(h & b.setMask)
	tag := h / (b.setMask + 1) // the address bits above the set index
	base := set * b.ways
	ord := b.order[base : base+b.ways]
	for i := 0; i < b.ways; i++ {
		w := int(ord[i])
		if b.valid[base+w] && b.tags[base+w] == tag {
			copy(ord[1:], ord[:i])
			ord[0] = uint8(w)
			if b.targets[base+w] == actual {
				b.hits++
				return true
			}
			b.wrongTarget++
			b.targets[base+w] = actual
			return false
		}
	}
	b.misses++
	victim := int(ord[b.ways-1])
	b.tags[base+victim] = tag
	b.targets[base+victim] = actual
	b.valid[base+victim] = true
	copy(ord[1:], ord[:b.ways-1])
	ord[0] = uint8(victim)
	return false
}

// Mispredictions returns misses plus wrong-target hits.
func (b *BTB) Mispredictions() uint64 { return b.misses + b.wrongTarget }

// Hits returns correct-target lookups.
func (b *BTB) Hits() uint64 { return b.hits }

// SizeBits returns the storage budget (tag 48 + target 48 per entry,
// approximating full-width fields).
func (b *BTB) SizeBits() int { return b.sets * b.ways * 96 }

// Reset restores power-on state.
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
	for s := 0; s < b.sets; s++ {
		for w := 0; w < b.ways; w++ {
			b.order[s*b.ways+w] = uint8(w)
		}
	}
	b.hits, b.misses, b.wrongTarget = 0, 0, 0
}

// String describes the geometry.
func (b *BTB) String() string { return fmt.Sprintf("btb-%dx%d", b.sets, b.ways) }
